package farron

import (
	"testing"
	"time"
)

func TestSimulationWorld(t *testing.T) {
	sim := NewSimulation(5)
	if sim.Seed() != 5 {
		t.Errorf("seed = %d", sim.Seed())
	}
	if got := len(sim.Suite().Testcases); got != 633 {
		t.Errorf("suite size = %d", got)
	}
	if got := len(sim.StudyProfiles()); got != 27 {
		t.Errorf("study size = %d", got)
	}
	if sim.Profile("MIX1") == nil {
		t.Error("MIX1 missing")
	}
	if sim.Profile("nope") != nil {
		t.Error("unknown profile resolved")
	}
}

func TestFaultyProcessorFactory(t *testing.T) {
	sim := NewSimulation(6)
	proc := sim.FaultyProcessor("CNST1")
	if !proc.Faulty() {
		t.Error("CNST1 not faulty")
	}
	class, ok := proc.DefectClass()
	if !ok || class != ClassConsistency {
		t.Errorf("class = %v/%v", class, ok)
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown processor id should panic")
		}
	}()
	sim.FaultyProcessor("bogus")
}

func TestHealthyProcessorFactory(t *testing.T) {
	sim := NewSimulation(7)
	proc := sim.HealthyProcessor("h1", "M3", 20, 2)
	if proc.Faulty() || proc.LogicalCores() != 40 {
		t.Error("healthy processor wrong")
	}
	runner := sim.Runner(proc)
	res := runner.Run(sim.Suite().Testcases[0], RunOpts{Core: 0, Duration: 30 * time.Second})
	if res.Failed {
		t.Error("healthy processor failed a testcase")
	}
}

func TestEndToEndMitigation(t *testing.T) {
	sim := NewSimulation(8)
	profile := sim.Profile("FPU2")
	proc := sim.FaultyProcessor("FPU2")
	runner := sim.Runner(proc)
	mit := NewFarron(DefaultConfig(), runner, DefectFeatures(profile), nil)
	rep := mit.PreProduction()
	if len(rep.DetectedTestcases) == 0 {
		t.Fatal("pre-production missed FPU2")
	}
	if proc.Deprecated() {
		t.Error("single-core defect deprecated whole processor")
	}
	if proc.MaskedCount() != 1 {
		t.Errorf("masked %d cores, want 1", proc.MaskedCount())
	}
}

func TestBaselineFacade(t *testing.T) {
	sim := NewSimulation(9)
	proc := sim.FaultyProcessor("SIMD1")
	runner := sim.Runner(proc)
	base := NewBaseline(runner, time.Minute)
	rep := base.RegularRound()
	if rep.Duration < 10*time.Hour {
		t.Errorf("baseline round = %v, want ~10.55h", rep.Duration)
	}
	if len(rep.DetectedTestcases) > 0 && !proc.Deprecated() {
		t.Error("baseline detection must deprecate")
	}
}

func TestFleetFacade(t *testing.T) {
	sim := NewSimulation(10)
	res, err := sim.Fleet(100_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Population != 100_000 {
		t.Errorf("population = %d", res.Population)
	}
	if res.FaultyTotal == 0 {
		t.Error("no faulty processors in 100k CPUs")
	}
}

func TestExperimentsFacade(t *testing.T) {
	sim := NewSimulation(11)
	ctx := sim.Experiments()
	if len(ctx.Study) != 27 {
		t.Errorf("experiment study size = %d", len(ctx.Study))
	}
}

func TestFrameworkFacade(t *testing.T) {
	sim := NewSimulation(12)
	proc := sim.FaultyProcessor("FPU3")
	fw := NewFramework(sim.Runner(proc))
	results := fw.Execute(Spec{
		Select:      func(tc *Testcase) bool { return tc.Feature == FeatureFPU },
		PerTestcase: 5 * time.Second,
	}, sim.LifecycleRng("fw"))
	if len(results) != 150 {
		t.Errorf("framework ran %d testcases, want 150 FPU ones", len(results))
	}
}

func TestLifecycleFacade(t *testing.T) {
	sim := NewSimulation(13)
	profile := sim.Profile("FPU1")
	proc := sim.FaultyProcessor("FPU1")
	cfg := DefaultConfig()
	cfg.RegularPeriod = 6 * time.Hour
	mit := NewFarron(cfg, sim.Runner(proc), DefectFeatures(profile), nil)
	lc := NewLifecycle(LifecycleConfig{
		Farron:  cfg,
		App:     DefaultAppProfile(),
		Horizon: 12 * time.Hour,
	}, mit, sim.LifecycleRng("lc"))
	rep := lc.Run()
	if rep.FinalState.String() == "" {
		t.Error("empty final state")
	}
	if rep.TestTime <= 0 {
		t.Error("no test time recorded")
	}
}
