module farron

go 1.22
