// Thermal guard: the adaptive temperature boundary in action. SIMD2 is a
// "tricky" defect — it only corrupts above 62 ℃ and fires so rarely that
// test rounds miss it. Farron learns the protected application's normal
// operating temperature, then clips the hot bursts that would cross the
// triggering threshold, trading a fraction of a second of backoff per hour
// for zero silent corruptions.
//
// Run with:
//
//	go run ./examples/thermal-guard
package main

import (
	"fmt"
	"log"
	"time"

	"farron"
	"farron/internal/simrand"
)

func main() {
	log.SetFlags(0)
	sim := farron.NewSimulation(23)
	profile := sim.Profile("SIMD2")
	d := profile.Defects[0]
	fmt.Printf("SIMD2: tricky defect on core %d — min triggering temp %.0f degC, base freq %.2g/min\n",
		profile.Defects[0].Cores[0], d.MinTempC, d.BaseFreqPerMin)

	app := farron.DefaultAppProfile()
	app.Stress = 1.0 // the impacted workload leans on the defective instruction
	app.BurstProb = 0.002
	app.BurstTicks = 18

	run := func(protect bool, salt string) farron.OnlineReport {
		proc := sim.FaultyProcessor("SIMD2")
		runner := sim.Runner(proc)
		mit := farron.NewFarron(farron.DefaultConfig(), runner,
			farron.DefectFeatures(profile), nil)
		return mit.Online(96*time.Hour, app, protect, simrand.New(23).Derive("guard", salt))
	}

	unprotected := run(false, "u")
	fmt.Printf("\nwithout temperature control (96 h):\n")
	fmt.Printf("  max temp %.1f degC, silent corruptions: %d\n",
		unprotected.Backoff.MaxTempC, unprotected.SDCs)

	protected := run(true, "p")
	fmt.Printf("\nwith Farron's adaptive boundary (96 h):\n")
	fmt.Printf("  boundary learned up to %.1f degC after %d adaptations\n",
		protected.BoundaryFinalC, protected.BoundaryRaises)
	fmt.Printf("  max temp %.1f degC, backoff %.3f s/hour (%d activations)\n",
		protected.Backoff.MaxTempC, protected.Backoff.BackoffSecondsPerHour(),
		protected.Backoff.Events)
	fmt.Printf("  silent corruptions: %d\n", protected.SDCs)

	if protected.SDCs >= unprotected.SDCs && unprotected.SDCs > 0 {
		log.Fatal("temperature control failed to reduce SDC exposure")
	}
}
