// Fleet screening: push a synthetic CPU population through the paper's
// test-timing pipeline (factory → datacenter → re-installation → regular
// rounds), then show what Farron's fine-grained decommission would save
// compared to whole-processor deprecation.
//
// Run with:
//
//	go run ./examples/fleet-screening [population]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"farron"
	"farron/internal/fleet"
	"farron/internal/model"
	"farron/internal/simrand"
)

func main() {
	log.SetFlags(0)
	population := 250_000
	if len(os.Args) > 1 {
		n, err := strconv.Atoi(os.Args[1])
		if err != nil || n <= 0 {
			log.Fatalf("invalid population %q", os.Args[1])
		}
		population = n
	}

	sim := farron.NewSimulation(11)

	// The fleet's physical layout (Section 2.1): 28 datacenters across 14
	// countries, hundreds of clusters.
	topo := fleet.DefaultTopology(simrand.New(11), population)
	fmt.Printf("topology: %d machines in %d clusters, %d datacenters, %d countries\n",
		topo.Machines(), topo.ClusterCount(), len(topo.Datacenters), topo.Countries())
	sched := fleet.NewGroupSchedule(6, 14*24*time.Hour)
	fmt.Printf("regular testing: %d groups x 2 weeks; a full fleet pass takes %.0f weeks\n\n",
		sched.Groups, sched.CycleDur().Hours()/(24*7))

	res, err := sim.Fleet(population)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("population: %d processors, %d faulty (%.3f per 10k)\n",
		res.Population, res.FaultyTotal, 1e4*float64(res.FaultyTotal)/float64(res.Population))
	fmt.Printf("detected:   %d (%.3f per 10k), escaped all screens: %d\n",
		res.DetectedTotal(), res.OverallRate()*1e4, res.Escaped)
	for _, s := range model.AllStages() {
		fmt.Printf("  %-11s %5d detections (%.3f per 10k)\n",
			s, res.DetectedByStage[s], res.StageRate(s)*1e4)
	}

	// Decommission policy comparison: the baseline deprecates the whole
	// processor; Farron masks single defective cores (Observation 4:
	// about half of faulty processors have just one).
	var wholeCores, savedCores int
	singleCore := 0
	for _, p := range res.FaultyProfiles {
		wholeCores += p.TotalPCores
		if p.DefectivePCores <= 2 {
			singleCore++
			savedCores += p.TotalPCores - p.DefectivePCores
		}
	}
	fmt.Printf("\ndecommission policy over %d detected faulty processors:\n", len(res.FaultyProfiles))
	fmt.Printf("  baseline (whole-processor): %d cores retired\n", wholeCores)
	fmt.Printf("  Farron (fine-grained):      %d cores retired, %d healthy cores kept serving (%d processors fail-in-place)\n",
		wholeCores-savedCores, savedCores, singleCore)
	fmt.Printf("  ineffective testcases: %d of 633 never detected anything (Observation 11)\n",
		633-len(res.EffectiveTestcases))
}
