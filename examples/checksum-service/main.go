// The Section 2.2 storage-application scenario: a faulty processor's
// checksum-calculation instruction gives wrong results intermittently. The
// service flags perfectly good data as corrupted, triggering repeated
// requests — the production incident that motivated the study. Farron then
// detects the defect, masks the core, and the flood stops.
//
// It also demonstrates the coherence and transactional-memory incidents
// over the MESI and STM substrates.
//
// Run with:
//
//	go run ./examples/checksum-service
package main

import (
	"fmt"
	"log"

	"farron"
	"farron/internal/model"
	"farron/internal/simrand"
	"farron/internal/workload"
)

func main() {
	log.SetFlags(0)
	sim := farron.NewSimulation(7)
	rng := simrand.New(7)

	// --- Case 1: defective checksum calculation (MIX1-style) -----------
	profile := sim.Profile("MIX1")
	defect := profile.Defects[0]
	// Build the corruption hook from the defect's own corruptor for the
	// uint32 results the CRC path produces, firing at the defect's
	// occurrence probability per operation at a working temperature.
	corruptor := defect.Corruptor(model.DTUint32, rng)
	frng := rng.Derive("checksum-fault")
	perOpProb := 0.002 // ~the defect's per-checksum chance at 56 degC
	hook := func(dt model.DataType, lo uint64, hi uint16) (uint64, uint16, bool) {
		if dt != model.DTUint32 || !frng.Bool(perOpProb) {
			return lo, hi, false
		}
		nl, nh := corruptor.Corrupt(frng, lo, hi)
		return nl, nh, true
	}

	rep := workload.ChecksumService(rng, 20000, 128, hook)
	fmt.Printf("storage service on faulty CPU: %d requests, %d false invalid-data reports\n",
		rep.Requests, rep.MismatchReports)
	if rep.MismatchReports == 0 {
		log.Fatal("expected checksum mismatch flood")
	}

	// Farron screens the processor, masks what it can, and the service is
	// re-placed on reliable cores — the hook disappears with the core.
	proc := sim.FaultyProcessor("MIX1")
	runner := sim.Runner(proc)
	mit := farron.NewFarron(farron.DefaultConfig(), runner, farron.DefectFeatures(profile), nil)
	pre := mit.PreProduction()
	fmt.Printf("Farron pre-production: %d failing testcases; state=%v deprecated=%v\n",
		len(pre.DetectedTestcases), mit.State(), proc.Deprecated())

	clean := workload.ChecksumService(rng, 20000, 128, nil)
	fmt.Printf("after mitigation (healthy placement): %d false reports\n\n", clean.MismatchReports)

	// --- Case 2: defective cache coherence (CNST1-style) ---------------
	cohRep := workload.SharedBuffer(rng, 3000, 8, 0.01)
	fmt.Printf("shared buffer with defective coherence: %d handoffs, %d stale reads, %d checksum errors\n",
		cohRep.Handoffs, cohRep.StaleReads, cohRep.ChecksumErrors)
	healthyCoh := workload.SharedBuffer(rng, 3000, 8, 0)
	fmt.Printf("with healthy coherence: %d checksum errors\n\n", healthyCoh.ChecksumErrors)

	// --- Case 3: defective transactional memory (CNST2/Meta-style) -----
	metaRep := workload.MetaStore(rng, 5000, 0.03)
	fmt.Printf("metadata service with torn transactional commits: %d assertion failures, %d phantom zero-size files\n",
		metaRep.AssertionFailures, metaRep.ZeroSizeFiles)
	healthyMeta := workload.MetaStore(rng, 5000, 0)
	fmt.Printf("with healthy transactional memory: %d assertion failures\n\n",
		healthyMeta.AssertionFailures)

	// --- Case 4: defective hashing (the hash-map metadata case) --------
	hashHook := workload.HashCorruptHook(rng.Derive("hash-fault"), 0.02, 1<<5)
	hashRep := workload.HashMapService(rng, 3000, hashHook)
	fmt.Printf("hash-map metadata service with defective hashing: %d/%d keys unfindable (%d corrupt hashes)\n",
		hashRep.LostKeys, hashRep.Inserted, hashRep.HashCorruptions)
	healthyHash := workload.HashMapService(rng, 3000, nil)
	fmt.Printf("with healthy hashing: %d keys lost\n", healthyHash.LostKeys)
}
