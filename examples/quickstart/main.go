// Quickstart: create a simulation world, test a faulty processor with the
// toolchain, and mitigate it with Farron.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"farron"
)

func main() {
	log.SetFlags(0)

	// A deterministic world: the 633-testcase toolchain plus the paper's
	// 27 studied faulty processors.
	sim := farron.NewSimulation(42)

	// FPU1: a single defective core whose arctangent instruction gives
	// wrong results (Table 3).
	proc := sim.FaultyProcessor("FPU1")
	fmt.Printf("processor: %v, defective cores: %v\n", proc, proc.DefectiveCores())

	runner := sim.Runner(proc)
	profile := sim.Profile("FPU1")

	// Farron: pre-production testing finds the defect and masks the
	// defective core; the processor keeps serving on the healthy cores.
	mit := farron.NewFarron(farron.DefaultConfig(), runner,
		farron.DefectFeatures(profile), nil)
	rep := mit.PreProduction()
	fmt.Printf("pre-production: %d failing testcases, %d SDC records, max temp %.1f degC\n",
		len(rep.DetectedTestcases), len(rep.Records), rep.MaxTempC)
	fmt.Printf("state: %v, masked cores: %d, active cores: %d\n",
		mit.State(), proc.MaskedCount(), len(proc.ActiveCores()))

	// A regular round three months later: prioritized testcases only,
	// roughly one hour instead of the baseline's 10.55.
	round := mit.RegularRound()
	fmt.Printf("regular round: %v of testing, %d detections\n",
		round.Duration.Round(1e9), len(round.DetectedTestcases))

	if proc.Deprecated() {
		log.Fatal("unexpected: single-core defect should not deprecate the processor")
	}
	fmt.Println("done: defective core masked, processor still in service")
}
