// Suspect hunt: the Section 4.1 debugging workflow. A processor fails
// testcases intermittently; which instruction is broken? The toolchain
// sometimes preserves context and names the instruction directly (SIMD1's
// vector multiply-add); otherwise we instrument every testcase Pin-style,
// count instruction executions, and intersect the failing runs' profiles
// statistically (FPU1's arctangent).
//
// Run with:
//
//	go run ./examples/suspect-hunt
package main

import (
	"fmt"
	"log"
	"time"

	"farron"
	"farron/internal/testkit"
)

func main() {
	log.SetFlags(0)
	sim := farron.NewSimulation(99)

	// --- Case 1: the toolchain preserved context (SIMD1) ---------------
	fmt.Println("== SIMD1: context-preserving detection ==")
	simd1 := sim.FaultyProcessor("SIMD1")
	runner := sim.Runner(simd1)
	hot := 64.0
	var results []farron.RunResult
	for _, tc := range sim.Suite().ByFeature(farron.FeatureVecUnit) {
		results = append(results, runner.Run(tc, farron.RunOpts{
			Core: 5, Duration: 5 * time.Minute, FixedTempC: &hot,
		}))
	}
	ctxSuspects := testkit.ContextSuspects(results)
	if len(ctxSuspects) == 0 {
		log.Fatal("no context records; SIMD1 should report its instruction")
	}
	fmt.Printf("toolchain reports incorrect instruction(s): %v\n", ctxSuspects)
	fmt.Printf("ground truth: %v\n\n", sim.Profile("SIMD1").Defects[0].SortedInstrs())

	// --- Case 2: statistical narrowing (FPU1) --------------------------
	fmt.Println("== FPU1: Pin-style statistical attribution ==")
	fpu1 := sim.FaultyProcessor("FPU1")
	runner2 := sim.Runner(fpu1)
	var results2 []farron.RunResult
	failing := 0
	for _, tc := range sim.Suite().ByFeature(farron.FeatureFPU) {
		res := runner2.Run(tc, farron.RunOpts{
			Core: 0, Duration: 8 * time.Minute, FixedTempC: &hot,
		})
		if res.Failed {
			failing++
		}
		results2 = append(results2, res)
	}
	fmt.Printf("%d of %d FPU testcases failed\n", failing, len(results2))
	for i, s := range testkit.RankSuspects(results2, 5) {
		fmt.Printf("  suspect #%d: %-14v in %d failing runs, usage failing/passing = %.2g/%.2g\n",
			i+1, s.ID, s.FailingRuns, s.FailingMean, s.PassingMean)
	}
	fmt.Printf("ground truth: %v\n", sim.Profile("FPU1").Defects[0].SortedInstrs())
	fmt.Println("\nObservation 10: failing testcases use the defective instruction")
	fmt.Println("orders of magnitude more often than passing testcases that touch it.")

	// Also show the strict-intersection report for comparison.
	rep := testkit.AttributeSuspects(results2)
	fmt.Printf("strict intersection: %d strong, %d weak suspects (%d failing / %d passing runs)\n",
		len(rep.Suspects), len(rep.WeakSuspects), rep.FailingCount, rep.PassingCount)
}
