// Command sdctrace analyzes a raw SDC record corpus (JSON lines, as written
// by `sdcstudy -dump`): summary statistics, per-datatype bitflip position
// histograms and direction split, and per-setting occurrence counts —
// offline re-analysis of the study's evidence without re-running the
// simulation.
//
// Usage:
//
//	sdctrace records.jsonl
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"farron/internal/inject"
	"farron/internal/model"
	"farron/internal/report"
	"farron/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sdctrace: ")
	if len(os.Args) != 2 {
		log.Fatal("usage: sdctrace <records.jsonl>")
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	records, err := trace.Read(f)
	if err != nil {
		log.Fatal(err)
	}
	summary := trace.Summarize(records)
	fmt.Println(summary)
	fmt.Println()

	// Per-datatype bitflip analysis.
	type flipStats struct {
		positions *positionCounter
		z2o, o2z  int
	}
	byDT := map[model.DataType]*flipStats{}
	for i := range records {
		r := &records[i]
		if r.Consistency {
			continue
		}
		st := byDT[r.DataType]
		if st == nil {
			st = &flipStats{positions: newPositionCounter(r.DataType.Bits())}
			byDT[r.DataType] = st
		}
		maskLo, maskHi := r.Mask(), r.MaskHi()
		for pos := 0; pos < r.DataType.Bits(); pos++ {
			if !inject.BitAt(maskLo, maskHi, pos) {
				continue
			}
			st.positions.add(pos)
			if inject.BitAt(r.Expected, r.ExpectedHi, pos) {
				st.o2z++
			} else {
				st.z2o++
			}
		}
	}
	var dts []model.DataType
	for dt := range byDT {
		dts = append(dts, dt)
	}
	sort.Slice(dts, func(i, j int) bool { return dts[i] < dts[j] })
	for _, dt := range dts {
		st := byDT[dt]
		total := st.z2o + st.o2z
		if total == 0 {
			continue
		}
		fmt.Print(st.positions.render(fmt.Sprintf(
			"%s — %d flips, %.1f%% zero-to-one", dt, total,
			100*float64(st.z2o)/float64(total))))
		fmt.Println()
	}

	// Per-setting record counts (top 10).
	counts := map[model.Setting]int{}
	for i := range records {
		r := &records[i]
		counts[model.Setting{ProcessorID: r.ProcessorID, TestcaseID: r.TestcaseID, Core: r.Core}]++
	}
	type kv struct {
		s model.Setting
		n int
	}
	var all []kv
	for s, n := range counts {
		all = append(all, kv{s, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].s.String() < all[j].s.String()
	})
	t := report.NewTable("top settings by record count", "setting", "records")
	for i, e := range all {
		if i >= 10 {
			break
		}
		t.AddRow(e.s.String(), fmt.Sprintf("%d", e.n))
	}
	fmt.Println(t.String())
}

// positionCounter buckets flip positions into 8 groups for display.
type positionCounter struct {
	bits   int
	counts []int
}

func newPositionCounter(bits int) *positionCounter {
	return &positionCounter{bits: bits, counts: make([]int, bits)}
}

func (p *positionCounter) add(pos int) { p.counts[pos]++ }

func (p *positionCounter) render(title string) string {
	groups := 8
	if p.bits < groups {
		groups = p.bits
	}
	labels := make([]string, groups)
	values := make([]float64, groups)
	total := 0
	for _, c := range p.counts {
		total += c
	}
	for g := 0; g < groups; g++ {
		lo := g * p.bits / groups
		hi := (g+1)*p.bits/groups - 1
		labels[g] = fmt.Sprintf("bit %2d-%2d", lo, hi)
		sum := 0
		for i := lo; i <= hi; i++ {
			sum += p.counts[i]
		}
		if total > 0 {
			values[g] = float64(sum) / float64(total)
		}
	}
	return report.Bars(title, labels, values, 40)
}
