// Command sdcbench regenerates every table and figure of the paper's
// evaluation in one run and writes the full report — the data source for
// EXPERIMENTS.md. Experiments run concurrently on the engine's sharded
// pool; the rendered report is byte-identical at any -workers value, and
// -cache reuses content-addressed results from previous runs (warm output
// is byte-identical to cold).
//
// Usage:
//
//	sdcbench [-seed seed] [-workers n] [-quick] [-cache] [-cache-dir dir] [-fanout n] [-hosts a:p,b:p] [-screener strategy] [-n population] [-o output] [-json]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"farron/internal/engine"
	"farron/internal/engine/cliflags"
	"farron/internal/engine/wallclock"
	"farron/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sdcbench: ")
	var (
		cfg      = cliflags.Register(flag.CommandLine)
		n        = flag.Int("n", 0, "fleet population size (default: the scale's)")
		out      = flag.String("o", "", "output file (default stdout)")
		jsonOut  = flag.Bool("json", false, "write the run's timing/allocs report to BENCH_<date>.json")
		jsonPath = flag.String("jsonpath", "", "override the -json report path")
	)
	flag.Parse()

	// All failures route through run so file closes are not skipped by
	// log.Fatal's os.Exit.
	if err := run(cfg, *n, *out, *jsonOut, *jsonPath); err != nil {
		log.Fatal(err)
	}
}

func run(cfg *cliflags.RunConfig, n int, out string, jsonOut bool, jsonPath string) (err error) {
	exps := experiments.Registry()
	if cfg.WorkerMode() {
		return cfg.ServeWorker(exps)
	}
	if cfg.DaemonMode() {
		return cfg.ServeDaemon(exps)
	}
	stopProf, err := cfg.StartProfiles()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()
	sc := cfg.Scale()
	if n > 0 {
		sc.Population = n
	}

	runner, err := cfg.Runner()
	if err != nil {
		return err
	}
	sections, rep, err := runner.Run(exps, sc)
	if err != nil {
		return err
	}
	if err := writeReport(out, sections); err != nil {
		return err
	}

	if jsonOut || jsonPath != "" {
		rep.Quick = cfg.Quick
		rep.ShardBench = engine.ShardBench(rep.EntryCosts(), []int{1, 2, 4, 8, 16})
		rep.StrategyBench = rep.StrategyRows()
		rep.SweepShardBench = engine.ShardBench(rep.SweepCosts(), []int{1, 2, 4})
		path := jsonPath
		if path == "" {
			path = "BENCH_" + wallclock.Date() + ".json"
		}
		if err := writeJSON(path, rep); err != nil {
			return err
		}
		msg := fmt.Sprintf("bench report: %s (wall %.2fs, workers %d", path, rep.WallSeconds, rep.Workers)
		if cfg.Cache {
			msg += fmt.Sprintf(", cache %d hits / %d misses", rep.CacheHits, rep.CacheMisses)
		}
		if rep.Fanout > 1 {
			msg += fmt.Sprintf(", fanout %d procs / %d recomputed", rep.Fanout, rep.RecomputedShards)
		}
		log.Print(msg + ")")
	}
	return nil
}

// writeReport writes the rendered sections to path (stdout when empty),
// checking every write and closing explicitly on the success path so a
// full disk surfaces as an error instead of a silently truncated report.
func writeReport(path string, sections []engine.Section) error {
	if path == "" {
		return engine.WriteSections(os.Stdout, sections, true)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // backstop for error returns; success path closes below
	if err := engine.WriteSections(f, sections, true); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close %s: %w", path, err)
	}
	return nil
}

// writeJSON writes the run report to path with the same write/close
// discipline as writeReport.
func writeJSON(path string, rep *engine.RunReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rep.WriteJSON(f); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close %s: %w", path, err)
	}
	return nil
}
