// Command sdcbench regenerates every table and figure of the paper's
// evaluation in one run and writes the full report — the data source for
// EXPERIMENTS.md.
//
// Usage:
//
//	sdcbench [-seed seed] [-n population] [-o output]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"farron/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sdcbench: ")
	var (
		seed = flag.Uint64("seed", 1, "simulation seed")
		n    = flag.Int("n", 1_000_000, "fleet population size")
		out  = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}

	ctx := experiments.NewContext(*seed)
	section := func(name string, body string) {
		fmt.Fprintf(w, "== %s ==\n%s\n", name, body)
	}

	t1, err := experiments.Table1(ctx, *n)
	check(err)
	section("Table 1", t1.Render())

	t2, err := experiments.Table2(ctx, *n)
	check(err)
	section("Table 2", t2.Render())

	section("Table 3", experiments.Table3(ctx).Render())
	section("Figure 2", experiments.Fig2(ctx).Render())
	section("Figure 3", experiments.Fig3(ctx).Render())
	section("Figure 4", experiments.Fig4(ctx, 10_000).Render())
	section("Figure 5", experiments.Fig5(ctx, 10_000).Render())
	section("Figure 6", experiments.Fig6(ctx, 500).Render())
	section("Figure 7", experiments.Fig7(ctx, 1000).Render())

	f8, err := experiments.Fig8(ctx)
	check(err)
	section("Figure 8", f8.Render())

	f9, err := experiments.Fig9(ctx)
	check(err)
	section("Figure 9", f9.Render())

	section("Observation 9", experiments.Obs9(ctx, 62).Render())

	o11, err := experiments.Obs11(ctx, 40_000)
	check(err)
	section("Observation 11", o11.Render())

	section("Figure 11", experiments.Fig11(ctx).Render())
	section("Table 4", experiments.Table4(ctx, 72*time.Hour).Render())
	section("Observation 12", experiments.Obs12(ctx, 10_000).Render())
	section("Ablation", experiments.Ablation(ctx).Render())

	sep, err := experiments.Separation(ctx)
	check(err)
	section("Section 5 separation", sep.Render())
	section("Section 4.1 attribution", experiments.Attribution(ctx).Render())

	anom, err := experiments.Anomalies(ctx)
	check(err)
	section("Observation 10 anomalies", anom.Render())
	section("Lifecycle", experiments.Lifecycle(ctx).Render())
	section("Exposure window", experiments.Exposure(ctx, 6, 14*24*time.Hour, 5000).Render())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
