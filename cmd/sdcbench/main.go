// Command sdcbench regenerates every table and figure of the paper's
// evaluation in one run and writes the full report — the data source for
// EXPERIMENTS.md. Experiments run concurrently on the engine's sharded
// pool; the rendered report is byte-identical at any -workers value.
//
// Usage:
//
//	sdcbench [-seed seed] [-workers n] [-quick] [-n population] [-o output] [-json]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"farron/internal/engine"
	"farron/internal/engine/cliflags"
	"farron/internal/engine/wallclock"
	"farron/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sdcbench: ")
	var (
		common   = cliflags.Register(flag.CommandLine)
		n        = flag.Int("n", 0, "fleet population size (default: the scale's)")
		out      = flag.String("o", "", "output file (default stdout)")
		jsonOut  = flag.Bool("json", false, "write the run's timing/allocs report to BENCH_<date>.json")
		jsonPath = flag.String("jsonpath", "", "override the -json report path")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}

	ctx := common.Context()
	sc := common.Scale()
	if *n > 0 {
		sc.Population = *n
	}

	sections, rep, err := engine.RunExperiments(ctx, experiments.Registry(), sc)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range sections {
		fmt.Fprintf(w, "== %s ==\n%s\n", s.Name, s.Body)
	}

	if *jsonOut || *jsonPath != "" {
		rep.Quick = common.Quick
		path := *jsonPath
		if path == "" {
			path = "BENCH_" + wallclock.Date() + ".json"
		}
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("bench report: %s (wall %.2fs, workers %d)", path, rep.WallSeconds, rep.Workers)
	}
}
