// Command sdcstudy runs the detailed per-processor SDC study on the
// 27-processor study set: the faulty-processor inventory (Table 3), the
// software-symptom figures (Figures 2-7) and the reproducibility figures
// (Figures 8-9, Observation 9).
//
// Usage:
//
//	sdcstudy [-seed seed] [-records n] [-reftemp degC]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"farron/internal/cpu"
	"farron/internal/experiments"
	"farron/internal/model"
	"farron/internal/simrand"
	"farron/internal/testkit"
	"farron/internal/thermal"
	"farron/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sdcstudy: ")
	var (
		seed    = flag.Uint64("seed", 1, "simulation seed")
		records = flag.Int("records", 10_000, "SDC records per datatype for Figures 4-5")
		refTemp = flag.Float64("reftemp", 62, "reference test temperature for Observation 9")
		dump    = flag.String("dump", "", "write the raw SDC record corpus (JSON lines) to this file")
	)
	flag.Parse()

	ctx := experiments.NewContext(*seed)
	out := os.Stdout

	fmt.Fprintln(out, experiments.Table3(ctx).Render())
	fmt.Fprintln(out, experiments.Fig2(ctx).Render())
	fmt.Fprintln(out, experiments.Fig3(ctx).Render())
	fmt.Fprintln(out, experiments.Fig4(ctx, *records).Render())
	fmt.Fprintln(out, experiments.Fig5(ctx, *records).Render())
	fmt.Fprintln(out, experiments.Fig6(ctx, 500).Render())
	fmt.Fprintln(out, experiments.Fig7(ctx, 1000).Render())

	fig8, err := experiments.Fig8(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(out, fig8.Render())

	fig9, err := experiments.Fig9(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(out, fig9.Render())

	fmt.Fprintln(out, experiments.Obs9(ctx, *refTemp).Render())

	sep, err := experiments.Separation(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(out, sep.Render())

	fmt.Fprintln(out, experiments.Attribution(ctx).Render())

	anom, err := experiments.Anomalies(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(out, anom.Render())

	if *dump != "" {
		if err := dumpCorpus(ctx, *dump); err != nil {
			log.Fatal(err)
		}
	}
}

// dumpCorpus runs every named faulty processor's failing testcases hot and
// long enough to collect a raw record corpus, then writes it as JSON lines
// (the study's "more than ten thousand SDC records").
func dumpCorpus(ctx *experiments.Context, path string) error {
	var records []model.SDCRecord
	hot := 66.0
	rng := simrand.New(ctx.Seed)
	for _, p := range ctx.Library {
		proc := cpu.FromProfile(p)
		pkg := thermal.New(thermal.DefaultConfig(), proc.PhysCores, rng.Derive("dump", p.CPUID))
		runner := testkit.NewRunner(ctx.Suite, proc, pkg)
		for _, tc := range ctx.Suite.FailingTestcases(p) {
			for _, core := range proc.DefectiveCores() {
				res := runner.Run(tc, testkit.RunOpts{
					Core: core, Duration: 5 * time.Minute, FixedTempC: &hot,
				})
				records = append(records, res.Records...)
			}
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Write(f, records); err != nil {
		return err
	}
	fmt.Printf("corpus: %s -> %s\n", trace.Summarize(records), path)
	return nil
}
