// Command sdcstudy runs the detailed per-processor SDC study on the
// 27-processor study set: the faulty-processor inventory (Table 3), the
// software-symptom figures (Figures 2-7), the reproducibility figures
// (Figures 8-9, Observation 9) and the Section 4/5 analyses. It runs the
// engine registry's "study" group.
//
// Usage:
//
//	sdcstudy [-seed seed] [-workers n] [-quick] [-cache] [-cache-dir dir] [-fanout n] [-hosts a:p,b:p] [-records n] [-reftemp degC] [-dump file]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"farron/internal/cpu"
	"farron/internal/engine"
	"farron/internal/engine/cliflags"
	"farron/internal/experiments"
	"farron/internal/model"
	"farron/internal/simrand"
	"farron/internal/testkit"
	"farron/internal/thermal"
	"farron/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sdcstudy: ")
	var (
		cfg     = cliflags.Register(flag.CommandLine)
		records = flag.Int("records", 0, "SDC records per datatype for Figures 4-5 (default: the scale's)")
		refTemp = flag.Float64("reftemp", 0, "reference test temperature for Observation 9 (default: the scale's)")
		dump    = flag.String("dump", "", "write the raw SDC record corpus (JSON lines) to this file")
	)
	flag.Parse()

	if err := run(cfg, *records, *refTemp, *dump); err != nil {
		log.Fatal(err)
	}
}

func run(cfg *cliflags.RunConfig, records int, refTemp float64, dump string) (err error) {
	exps := engine.Filter(experiments.Registry(), engine.GroupStudy)
	if cfg.WorkerMode() {
		return cfg.ServeWorker(exps)
	}
	if cfg.DaemonMode() {
		return cfg.ServeDaemon(exps)
	}
	stopProf, err := cfg.StartProfiles()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()
	sc := cfg.Scale()
	if records > 0 {
		sc.Records = records
	}
	if refTemp > 0 {
		sc.RefTempC = refTemp
	}

	runner, err := cfg.Runner()
	if err != nil {
		return err
	}
	sections, _, err := runner.Run(exps, sc)
	if err != nil {
		return err
	}
	if err := engine.WriteSections(os.Stdout, sections, false); err != nil {
		return err
	}

	if dump != "" {
		return dumpCorpus(runner.Ctx(), dump)
	}
	return nil
}

// dumpCorpus runs every named faulty processor's failing testcases hot and
// long enough to collect a raw record corpus, then writes it as JSON lines
// (the study's "more than ten thousand SDC records"). Writes and the close
// are checked so a full disk cannot silently truncate the corpus.
func dumpCorpus(ctx *experiments.Context, path string) error {
	var records []model.SDCRecord
	hot := 66.0
	rng := simrand.New(ctx.Seed)
	for _, p := range ctx.Library {
		proc := cpu.FromProfile(p)
		pkg := thermal.New(thermal.DefaultConfig(), proc.PhysCores, rng.Derive("dump", p.CPUID))
		runner := testkit.NewRunner(ctx.Suite, proc, pkg)
		for _, tc := range ctx.Failing(p) {
			for _, core := range proc.DefectiveCores() {
				res := runner.Run(tc, testkit.RunOpts{
					Core: core, Duration: 5 * time.Minute, FixedTempC: &hot,
				})
				records = append(records, res.Records...)
			}
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // backstop for error returns; success path closes below
	if err := trace.Write(f, records); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close %s: %w", path, err)
	}
	fmt.Printf("corpus: %s -> %s\n", trace.Summarize(records), path)
	return nil
}
