// Command sdcfleet runs the fleet-scale SDC study: the test-timing pipeline
// of Figure 1 over a synthetic CPU population, reproducing Table 1 (failure
// rate by test timing), Table 2 (failure rate by micro-architecture) and
// Observation 11 (ineffective testcases).
//
// Usage:
//
//	sdcfleet [-n population] [-sub subpopulation] [-seed seed]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"farron/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sdcfleet: ")
	var (
		n    = flag.Int("n", 1_000_000, "fleet population size")
		sub  = flag.Int("sub", 40_000, "sub-fleet size for the Observation 11 detailed-log study")
		seed = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()

	ctx := experiments.NewContext(*seed)

	t1, err := experiments.Table1(ctx, *n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(os.Stdout, t1.Render())

	t2, err := experiments.Table2(ctx, *n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(os.Stdout, t2.Render())

	o11, err := experiments.Obs11(ctx, *sub)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(os.Stdout, o11.Render())

	fmt.Fprintln(os.Stdout, experiments.Exposure(ctx, 6, 14*24*time.Hour, 5000).Render())
}
