// Command sdcfleet runs the fleet-scale SDC study: the test-timing pipeline
// of Figure 1 over a synthetic CPU population, reproducing Table 1 (failure
// rate by test timing), Table 2 (failure rate by micro-architecture),
// Observation 11 (ineffective testcases) and the production exposure
// window. It runs the engine registry's "fleet" group.
//
// Usage:
//
//	sdcfleet [-seed seed] [-workers n] [-quick] [-cache] [-cache-dir dir] [-fanout n] [-hosts a:p,b:p] [-screener strategy] [-n population] [-sub subpopulation]
//	sdcfleet -serve host:port   (run as a cluster worker daemon for -hosts parents)
package main

import (
	"flag"
	"log"
	"os"

	"farron/internal/engine"
	"farron/internal/engine/cliflags"
	"farron/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sdcfleet: ")
	var (
		cfg = cliflags.Register(flag.CommandLine)
		n   = flag.Int("n", 0, "fleet population size (default: the scale's)")
		sub = flag.Int("sub", 0, "Observation 11 sub-fleet size (default: the scale's)")
	)
	flag.Parse()

	if err := run(cfg, *n, *sub); err != nil {
		log.Fatal(err)
	}
}

func run(cfg *cliflags.RunConfig, n, sub int) (err error) {
	exps := engine.Filter(experiments.Registry(), engine.GroupFleet)
	if cfg.WorkerMode() {
		return cfg.ServeWorker(exps)
	}
	if cfg.DaemonMode() {
		return cfg.ServeDaemon(exps)
	}
	stopProf, err := cfg.StartProfiles()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()
	sc := cfg.Scale()
	if n > 0 {
		sc.Population = n
	}
	if sub > 0 {
		sc.SubPopulation = sub
	}

	runner, err := cfg.Runner()
	if err != nil {
		return err
	}
	sections, _, err := runner.Run(exps, sc)
	if err != nil {
		return err
	}
	return engine.WriteSections(os.Stdout, sections, false)
}
