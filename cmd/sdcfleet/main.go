// Command sdcfleet runs the fleet-scale SDC study: the test-timing pipeline
// of Figure 1 over a synthetic CPU population, reproducing Table 1 (failure
// rate by test timing), Table 2 (failure rate by micro-architecture),
// Observation 11 (ineffective testcases) and the production exposure
// window. It runs the engine registry's "fleet" group.
//
// Usage:
//
//	sdcfleet [-seed seed] [-workers n] [-quick] [-n population] [-sub subpopulation]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"farron/internal/engine"
	"farron/internal/engine/cliflags"
	"farron/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sdcfleet: ")
	var (
		common = cliflags.Register(flag.CommandLine)
		n      = flag.Int("n", 0, "fleet population size (default: the scale's)")
		sub    = flag.Int("sub", 0, "Observation 11 sub-fleet size (default: the scale's)")
	)
	flag.Parse()

	ctx := common.Context()
	sc := common.Scale()
	if *n > 0 {
		sc.Population = *n
	}
	if *sub > 0 {
		sc.SubPopulation = *sub
	}

	exps := engine.Filter(experiments.Registry(), engine.GroupFleet)
	sections, _, err := engine.RunExperiments(ctx, exps, sc)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range sections {
		fmt.Fprintln(os.Stdout, s.Body)
	}
}
