// Command sdcfleet runs the fleet-scale SDC study: the test-timing pipeline
// of Figure 1 over a synthetic CPU population, reproducing Table 1 (failure
// rate by test timing), Table 2 (failure rate by micro-architecture),
// Observation 11 (ineffective testcases) and the production exposure
// window. It runs the engine registry's "fleet" group.
//
// Usage:
//
//	sdcfleet [-seed seed] [-workers n] [-quick] [-cache] [-cache-dir dir] [-n population] [-sub subpopulation]
package main

import (
	"flag"
	"log"
	"os"

	"farron/internal/engine"
	"farron/internal/engine/cliflags"
	"farron/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sdcfleet: ")
	var (
		common = cliflags.Register(flag.CommandLine)
		n      = flag.Int("n", 0, "fleet population size (default: the scale's)")
		sub    = flag.Int("sub", 0, "Observation 11 sub-fleet size (default: the scale's)")
	)
	flag.Parse()

	if err := run(common, *n, *sub); err != nil {
		log.Fatal(err)
	}
}

func run(common *cliflags.Common, n, sub int) error {
	rc, err := common.ResultCache()
	if err != nil {
		return err
	}
	ctx := common.Context()
	sc := common.Scale()
	if n > 0 {
		sc.Population = n
	}
	if sub > 0 {
		sc.SubPopulation = sub
	}

	exps := engine.Filter(experiments.Registry(), engine.GroupFleet)
	sections, _, err := engine.RunExperimentsCached(ctx, exps, sc, rc)
	if err != nil {
		return err
	}
	return engine.WriteSections(os.Stdout, sections, false)
}
