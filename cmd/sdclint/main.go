// Command sdclint runs the repo's determinism & safety static-analysis
// pass (see internal/lint and the "Determinism contract" section of
// DESIGN.md). It exits 0 when clean, 1 on findings, 2 on load errors.
//
// Usage:
//
//	go run ./cmd/sdclint ./...
package main

import (
	"os"

	"farron/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
