// Command farronctl evaluates the Farron mitigation system against the
// Alibaba Cloud baseline: one-round regular-testing coverage (Figure 11),
// testing + temperature-control overhead (Table 4), the fault-tolerance
// comparison (Observation 12), the design-choice ablation and the
// long-horizon lifecycle. It runs the engine registry's "mitigation" group.
//
// Usage:
//
//	farronctl [-seed seed] [-workers n] [-quick] [-cache] [-cache-dir dir] [-online duration]
package main

import (
	"flag"
	"log"
	"os"
	"time"

	"farron/internal/engine"
	"farron/internal/engine/cliflags"
	"farron/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("farronctl: ")
	var (
		common = cliflags.Register(flag.CommandLine)
		online = flag.Duration("online", 0, "simulated online operation per processor for Table 4 (default: the scale's)")
	)
	flag.Parse()

	if err := run(common, *online); err != nil {
		log.Fatal(err)
	}
}

func run(common *cliflags.Common, online time.Duration) error {
	rc, err := common.ResultCache()
	if err != nil {
		return err
	}
	ctx := common.Context()
	sc := common.Scale()
	if online > 0 {
		sc.Online = online
	}

	exps := engine.Filter(experiments.Registry(), engine.GroupMitigation)
	sections, _, err := engine.RunExperimentsCached(ctx, exps, sc, rc)
	if err != nil {
		return err
	}
	return engine.WriteSections(os.Stdout, sections, false)
}
