// Command farronctl evaluates the Farron mitigation system against the
// Alibaba Cloud baseline: one-round regular-testing coverage (Figure 11),
// testing + temperature-control overhead (Table 4), the fault-tolerance
// comparison (Observation 12), the design-choice ablation and the
// long-horizon lifecycle. It runs the engine registry's "mitigation" group.
//
// Usage:
//
//	farronctl [-seed seed] [-workers n] [-quick] [-cache] [-cache-dir dir] [-fanout n] [-hosts a:p,b:p] [-screener strategy] [-online duration]
package main

import (
	"flag"
	"log"
	"os"
	"time"

	"farron/internal/engine"
	"farron/internal/engine/cliflags"
	"farron/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("farronctl: ")
	var (
		cfg    = cliflags.Register(flag.CommandLine)
		online = flag.Duration("online", 0, "simulated online operation per processor for Table 4 (default: the scale's)")
	)
	flag.Parse()

	if err := run(cfg, *online); err != nil {
		log.Fatal(err)
	}
}

func run(cfg *cliflags.RunConfig, online time.Duration) (err error) {
	exps := engine.Filter(experiments.Registry(), engine.GroupMitigation)
	if cfg.WorkerMode() {
		return cfg.ServeWorker(exps)
	}
	if cfg.DaemonMode() {
		return cfg.ServeDaemon(exps)
	}
	stopProf, err := cfg.StartProfiles()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()
	sc := cfg.Scale()
	if online > 0 {
		sc.Online = online
	}

	runner, err := cfg.Runner()
	if err != nil {
		return err
	}
	sections, _, err := runner.Run(exps, sc)
	if err != nil {
		return err
	}
	return engine.WriteSections(os.Stdout, sections, false)
}
