// Command farronctl evaluates the Farron mitigation system against the
// Alibaba Cloud baseline: one-round regular-testing coverage (Figure 11)
// and testing + temperature-control overhead (Table 4).
//
// Usage:
//
//	farronctl [-seed seed] [-online duration]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"farron/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("farronctl: ")
	var (
		seed   = flag.Uint64("seed", 1, "simulation seed")
		online = flag.Duration("online", 72*time.Hour, "simulated online operation per processor for Table 4")
	)
	flag.Parse()

	ctx := experiments.NewContext(*seed)
	out := os.Stdout

	fmt.Fprintln(out, experiments.Fig11(ctx).Render())
	fmt.Fprintln(out, experiments.Table4(ctx, *online).Render())
	fmt.Fprintln(out, experiments.Obs12(ctx, 4000).Render())
	fmt.Fprintln(out, experiments.Ablation(ctx).Render())
	fmt.Fprintln(out, experiments.Lifecycle(ctx).Render())
	_ = log.Default()
}
