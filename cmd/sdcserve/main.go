// Command sdcserve runs the continuous screening service: the batch fleet
// harness turned into a long-running daemon. A synthetic CPU population
// lives on a discrete-event clock — processors join and leave, latent
// defects ripen in the field — and a screening campaign fires every
// -campaign-period of virtual time, executing through the same engine
// runner the batch commands use (-workers, -cache and -fanout compose
// unchanged). An HTTP status API (-serve-addr) exposes /status, /metrics,
// /fleet and /campaigns/<n>.
//
// Headless mode (-steps N, no -serve-addr) runs N campaigns and exits; at
// a fixed -seed the emitted campaign history (-history-out) is
// byte-identical across runs, hosts and -workers values — CI double-runs
// it and diffs.
//
// Usage:
//
//	sdcserve [-seed s] [-workers n] [-quick] [-cache] [-fanout n] [-screener strategy] [-n population]
//	         [-serve-addr host:port] [-campaign-period d] [-sim-speed v]
//	         [-steps n] [-history count] [-history-out path]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"farron/internal/engine/cliflags"
	"farron/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sdcserve: ")
	var (
		cfg        = cliflags.Register(flag.CommandLine)
		scfg       = cliflags.RegisterServe(flag.CommandLine)
		n          = flag.Int("n", 0, "fleet population size (default: the scale's)")
		historyOut = flag.String("history-out", "", "write the campaign history JSON here at exit (\"-\" for stdout)")
	)
	flag.Parse()
	if err := run(cfg, scfg, *n, *historyOut); err != nil {
		log.Fatal(err)
	}
}

func run(cfg *cliflags.RunConfig, scfg *cliflags.ServeConfig, n int, historyOut string) (err error) {
	if cfg.WorkerMode() {
		// Campaign entries are dynamic (names carry the campaign index), so
		// a fan-out worker serves an empty registry: every order is refused
		// at the handshake and the parent recomputes locally.
		return cfg.ServeWorker(nil)
	}
	if cfg.DaemonMode() {
		// Same story over TCP: a cluster daemon for dynamic campaign entries
		// refuses every hello and each parent recomputes locally.
		return cfg.ServeDaemon(nil)
	}
	stopProf, err := cfg.StartProfiles()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()

	runner, err := cfg.Runner()
	if err != nil {
		return err
	}
	svc, err := serve.New(runner, serve.Config{
		FleetSize:      n,
		CampaignPeriod: scfg.CampaignPeriod,
		SimSpeed:       scfg.SimSpeed,
		Steps:          scfg.Steps,
		History:        scfg.History,
		Scale:          cfg.Scale(),
	})
	if err != nil {
		return err
	}

	if scfg.Addr != "" {
		addr, shutdown, err := svc.StartHTTP(scfg.Addr)
		if err != nil {
			return err
		}
		log.Printf("status API on http://%s", addr)
		defer func() {
			if serr := shutdown(); serr != nil && err == nil {
				err = serr
			}
		}()
	}

	// SIGINT/SIGTERM end the campaign loop cleanly: the current campaign
	// finishes, the history is flushed, the HTTP listener drains.
	stop := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		signal.Stop(sigc)
		close(stop)
	}()

	if err := svc.Run(stop); err != nil {
		return err
	}
	log.Printf("ran %d campaigns", svc.Campaigns())
	return writeHistory(historyOut, svc)
}

// writeHistory flushes the retained campaign history JSON to path ("-" for
// stdout, empty for nowhere).
func writeHistory(path string, svc *serve.Service) error {
	if path == "" {
		return nil
	}
	b, err := svc.HistoryJSON()
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err := os.Stdout.Write(b)
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	return nil
}
