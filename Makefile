GO ?= go

.PHONY: build test race vet fmt lint lint-json lint-fast bench bench-cached bench-fanout bench-quick bench-compare alloc-pins serve serve-smoke cluster-smoke screeners-smoke check

## build: compile every package
build:
	$(GO) build ./...

## test: tier-1 test suite
test:
	$(GO) test ./...

## race: test suite under the race detector
race:
	$(GO) test -race ./...

## vet: go vet over the module
vet:
	$(GO) vet ./...

## fmt: fail if any file needs gofmt
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

## lint: sdclint determinism & safety pass (see DESIGN.md)
lint:
	$(GO) run ./cmd/sdclint ./...

## lint-json: the same pass with machine-readable output (sorted, stable —
## byte-identical across runs over the same tree)
lint-json:
	$(GO) run ./cmd/sdclint -json ./...

## lint-fast: sdclint over only the packages with changed Go files (working
## tree + last commit); testdata fixtures are excluded — they contain
## deliberate findings
lint-fast:
	@dirs=$$( (git diff --name-only HEAD~1 -- '*.go' 2>/dev/null; \
	           git diff --name-only -- '*.go'; \
	           git ls-files --others --exclude-standard -- '*.go') \
	          | grep -v testdata | xargs -r -n1 dirname | sort -u); \
	pkgs=""; for d in $$dirs; do [ -d "$$d" ] && pkgs="$$pkgs ./$$d"; done; \
	if [ -z "$$pkgs" ]; then echo "lint-fast: no changed Go packages"; exit 0; fi; \
	echo "sdclint$$pkgs"; $(GO) run ./cmd/sdclint $$pkgs

## bench: paper-scale sdcbench run with a timing/allocs JSON report
bench:
	$(GO) run ./cmd/sdcbench -n 1000000 -o bench_report.txt -json

## bench-cached: bench reusing the content-addressed result cache; warm
## reruns serve unchanged entries from .farron-cache and report hit counts
bench-cached:
	$(GO) run ./cmd/sdcbench -n 1000000 -o bench_report.txt -json -cache

## bench-fanout: bench distributed over 4 worker subprocesses; output is
## byte-identical to the serial run, the JSON adds per-worker accounting
bench-fanout:
	$(GO) run ./cmd/sdcbench -n 1000000 -o bench_report.txt -json -fanout 4

## bench-quick: quick-scale bench smoke with a JSON report at a throwaway
## path — the fast schema/regression probe CI runs on every push
bench-quick:
	$(GO) run ./cmd/sdcbench -quick -o /dev/null -jsonpath bench_quick.json

## bench-compare: hot-path micro-benchmarks at BASE (default HEAD~1, via a
## throwaway worktree) vs the working tree, compared with benchstat when
## installed, side by side otherwise
BASE ?= HEAD~1
BENCHES ?= BenchmarkRunnerStep|BenchmarkRunTestcase|BenchmarkScreenCPU|BenchmarkStatsColumnar
bench-compare:
	@rm -rf /tmp/farron-bench-base
	git worktree add -q --detach /tmp/farron-bench-base $(BASE)
	cd /tmp/farron-bench-base && $(GO) test -run '^$$' -bench '$(BENCHES)' -benchmem -count 6 \
		./internal/testkit ./internal/fleet ./internal/stats > /tmp/farron-bench-old.txt 2>/dev/null || \
		$(GO) test -run '^$$' -bench '$(BENCHES)' -benchmem -count 6 \
		./internal/testkit ./internal/fleet > /tmp/farron-bench-old.txt
	$(GO) test -run '^$$' -bench '$(BENCHES)' -benchmem -count 6 \
		./internal/testkit ./internal/fleet ./internal/stats > /tmp/farron-bench-new.txt
	git worktree remove --force /tmp/farron-bench-base
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat /tmp/farron-bench-old.txt /tmp/farron-bench-new.txt; \
	else \
		echo "benchstat not installed; raw results:"; \
		echo "--- old ($(BASE)) ---"; grep '^Benchmark' /tmp/farron-bench-old.txt; \
		echo "--- new (worktree) ---"; grep '^Benchmark' /tmp/farron-bench-new.txt; \
	fi

## alloc-pins: the zero-allocation regression pins (run twice to shake out
## warm-up effects) — the compiled run path, the per-round screening walk
## and the columnar stats reductions must stay allocation-free
alloc-pins:
	$(GO) test -run 'TestRunStepAllocs|TestScreenCPUAllocs|TestStatsColumnarAllocs|TestPlanDetectAllocs' \
		-count=2 ./internal/testkit ./internal/fleet ./internal/stats

## serve: run the continuous screening service with its status API on
## :8731, one virtual day per wall second (ctrl-C shuts down cleanly)
serve:
	$(GO) run ./cmd/sdcserve -serve-addr 127.0.0.1:8731 -campaign-period 24h -sim-speed 86400

## serve-smoke: headless determinism check — two sdcserve runs at the same
## seed but different worker budgets must emit byte-identical campaign
## histories
serve-smoke:
	$(GO) build -o /tmp/sdcserve ./cmd/sdcserve
	/tmp/sdcserve -quick -seed 7 -n 20000 -steps 4 -history-out /tmp/sdcserve-h1.json
	/tmp/sdcserve -quick -seed 7 -n 20000 -steps 4 -workers 4 -history-out /tmp/sdcserve-h2.json
	cmp /tmp/sdcserve-h1.json /tmp/sdcserve-h2.json
	@echo "serve-smoke: campaign histories byte-identical"

## cluster-smoke: cluster determinism check — an sdcfleet run distributed
## over two loopback worker daemons must be byte-identical to the serial
## run, and a rerun against the killed daemons must degrade to local
## recompute with the same bytes (daemons are killed before any diff so a
## failing assertion cannot leak processes)
cluster-smoke:
	$(GO) build -o /tmp/sdcfleet ./cmd/sdcfleet
	/tmp/sdcfleet -quick -seed 7 -workers 1 > /tmp/fleet-serial.txt
	/tmp/sdcfleet -serve 127.0.0.1:19401 & echo $$! > /tmp/sdcfleet-d1.pid
	/tmp/sdcfleet -serve 127.0.0.1:19402 & echo $$! > /tmp/sdcfleet-d2.pid
	sleep 1
	/tmp/sdcfleet -quick -seed 7 -hosts 127.0.0.1:19401,127.0.0.1:19402 > /tmp/fleet-cluster.txt
	kill $$(cat /tmp/sdcfleet-d1.pid) $$(cat /tmp/sdcfleet-d2.pid)
	/tmp/sdcfleet -quick -seed 7 -hosts 127.0.0.1:19401,127.0.0.1:19402 > /tmp/fleet-dead.txt 2> /tmp/fleet-dead.log
	diff /tmp/fleet-serial.txt /tmp/fleet-cluster.txt
	diff /tmp/fleet-serial.txt /tmp/fleet-dead.txt
	grep -q recomputing /tmp/fleet-dead.log
	@echo "cluster-smoke: cluster bytes identical; daemon loss degraded to local recompute"

## screeners-smoke: screening-strategy determinism check — every -screener
## strategy double-runs at quick scale and each pair must be byte-identical
## (the evolving-corpus and inline strategies are deterministic too, not
## just the fixed kits)
screeners-smoke:
	$(GO) build -o /tmp/sdcfleet ./cmd/sdcfleet
	@for s in farron baseline silifuzz ithica; do \
		echo "screeners-smoke: $$s"; \
		/tmp/sdcfleet -quick -seed 7 -workers 1 -screener $$s > /tmp/fleet-$$s-a.txt || exit 1; \
		/tmp/sdcfleet -quick -seed 7 -workers 4 -screener $$s > /tmp/fleet-$$s-b.txt || exit 1; \
		cmp /tmp/fleet-$$s-a.txt /tmp/fleet-$$s-b.txt || exit 1; \
	done
	@echo "screeners-smoke: all strategies byte-identical across double runs"

## check: everything CI runs — the one-command tier-1 verify
check: build vet fmt test race lint
