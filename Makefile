GO ?= go

.PHONY: build test race vet fmt lint bench bench-cached bench-fanout bench-quick check

## build: compile every package
build:
	$(GO) build ./...

## test: tier-1 test suite
test:
	$(GO) test ./...

## race: test suite under the race detector
race:
	$(GO) test -race ./...

## vet: go vet over the module
vet:
	$(GO) vet ./...

## fmt: fail if any file needs gofmt
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

## lint: sdclint determinism & safety pass (see DESIGN.md)
lint:
	$(GO) run ./cmd/sdclint ./...

## bench: paper-scale sdcbench run with a timing/allocs JSON report
bench:
	$(GO) run ./cmd/sdcbench -n 1000000 -o bench_report.txt -json

## bench-cached: bench reusing the content-addressed result cache; warm
## reruns serve unchanged entries from .farron-cache and report hit counts
bench-cached:
	$(GO) run ./cmd/sdcbench -n 1000000 -o bench_report.txt -json -cache

## bench-fanout: bench distributed over 4 worker subprocesses; output is
## byte-identical to the serial run, the JSON adds per-worker accounting
bench-fanout:
	$(GO) run ./cmd/sdcbench -n 1000000 -o bench_report.txt -json -fanout 4

## bench-quick: quick-scale bench smoke with a JSON report at a throwaway
## path — the fast schema/regression probe CI runs on every push
bench-quick:
	$(GO) run ./cmd/sdcbench -quick -o /dev/null -jsonpath bench_quick.json

## check: everything CI runs — the one-command tier-1 verify
check: build vet fmt test race lint
