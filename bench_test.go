package farron

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation section. Each benchmark regenerates its experiment end to end
// (workload generation, simulation, measurement) and reports the headline
// quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. Shapes, not absolute numbers, are the
// contract: who wins, by what factor, where the thresholds sit.

import (
	"testing"
	"time"

	"farron/internal/experiments"
	"farron/internal/model"
)

// benchSeed keeps all benchmarks on one deterministic world.
const benchSeed = 987654321

// benchCtx is shared: context construction (suite generation + calibration)
// is itself measured by BenchmarkContextSetup.
var benchCtx = experiments.NewContext(benchSeed)

// benchPopulation keeps fleet benchmarks tractable per iteration while
// preserving rate resolution (the paper's population is 1e6; rates are per
// 1e4, so 2e5 retains the shape).
const benchPopulation = 200_000

func BenchmarkContextSetup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ctx := experiments.NewContext(benchSeed)
		if len(ctx.Study) != 27 {
			b.Fatal("bad study set")
		}
	}
}

func BenchmarkTable1TestTimings(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(benchCtx, benchPopulation, "")
		if err != nil {
			b.Fatal(err)
		}
		total = res.Total
	}
	b.ReportMetric(total*1e4, "rate‱")
}

func BenchmarkTable2MicroArch(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(benchCtx, benchPopulation, "")
		if err != nil {
			b.Fatal(err)
		}
		worst = res.Measured["M8"]
	}
	b.ReportMetric(worst*1e4, "M8‱")
}

func BenchmarkTable3Inventory(b *testing.B) {
	var errs int
	for i := 0; i < b.N; i++ {
		res := experiments.Table3(benchCtx)
		errs = 0
		for _, row := range res.Rows {
			errs += row.MeasuredErrs
		}
	}
	b.ReportMetric(float64(errs), "total#err")
}

func BenchmarkFig2Features(b *testing.B) {
	var fpu float64
	for i := 0; i < b.N; i++ {
		fpu = experiments.Fig2(benchCtx).Proportions[model.FeatureFPU]
	}
	b.ReportMetric(fpu, "FPUshare")
}

func BenchmarkFig3Datatypes(b *testing.B) {
	var f64 float64
	for i := 0; i < b.N; i++ {
		f64 = experiments.Fig3(benchCtx).Proportions[model.DTFloat64]
	}
	b.ReportMetric(f64, "f64share")
}

func BenchmarkFig4Bitflips(b *testing.B) {
	var z2o float64
	for i := 0; i < b.N; i++ {
		res := experiments.Fig4(benchCtx, 10_000)
		z2o = res.Stats[model.DTFloat64].ZeroToOneShare
	}
	b.ReportMetric(z2o, "0to1share")
}

func BenchmarkFig5NonNumeric(b *testing.B) {
	var records int
	for i := 0; i < b.N; i++ {
		res := experiments.Fig5(benchCtx, 10_000)
		records = res.Stats[model.DTBin64].Records
	}
	b.ReportMetric(float64(records), "records")
}

func BenchmarkFig6Patterns(b *testing.B) {
	var settings int
	for i := 0; i < b.N; i++ {
		res := experiments.Fig6(benchCtx, 500)
		settings = len(res.RowLabels) * len(res.ColLabels)
	}
	b.ReportMetric(float64(settings), "settings")
}

func BenchmarkFig7FlipCounts(b *testing.B) {
	var single float64
	for i := 0; i < b.N; i++ {
		res := experiments.Fig7(benchCtx, 1000)
		single = res.Proportions[model.DTFloat64][0]
	}
	b.ReportMetric(single, "1bitShare")
}

func BenchmarkFig8TempSweep(b *testing.B) {
	var r float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		r = res.Settings[0].Fit.R
	}
	b.ReportMetric(r, "pearsonR")
}

func BenchmarkFig9MinTemp(b *testing.B) {
	var r float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		r = res.PearsonR
	}
	b.ReportMetric(r, "pearsonR")
}

func BenchmarkObs9Reproducibility(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		share = experiments.Obs9(benchCtx, 62).ShareAboveOncePerMin
	}
	b.ReportMetric(share, "shareAbove1")
}

func BenchmarkObs11Ineffective(b *testing.B) {
	var ineffective int
	for i := 0; i < b.N; i++ {
		res, err := experiments.Obs11(benchCtx, 40_000, "")
		if err != nil {
			b.Fatal(err)
		}
		ineffective = res.Ineffective
	}
	b.ReportMetric(float64(ineffective), "ineffective")
}

func BenchmarkFig11Coverage(b *testing.B) {
	var farronMean float64
	for i := 0; i < b.N; i++ {
		res := experiments.Fig11(benchCtx)
		farronMean = 0
		for _, row := range res.Rows {
			farronMean += row.Farron
		}
		farronMean /= float64(len(res.Rows))
	}
	b.ReportMetric(farronMean, "coverage")
}

func BenchmarkObs12Techniques(b *testing.B) {
	var recall float64
	for i := 0; i < b.N; i++ {
		res := experiments.Obs12(benchCtx, 4000)
		recall = res.PredictRecall
	}
	b.ReportMetric(recall, "predRecall")
}

func BenchmarkAblation(b *testing.B) {
	var full float64
	for i := 0; i < b.N; i++ {
		res := experiments.Ablation(benchCtx)
		full = res.CoverageOf("full")
	}
	b.ReportMetric(full, "fullCoverage")
}

func BenchmarkTable4Overhead(b *testing.B) {
	var worstTotal float64
	for i := 0; i < b.N; i++ {
		res := experiments.Table4(benchCtx, 24*time.Hour)
		worstTotal = 0
		for _, row := range res.Rows {
			if row.Total > worstTotal {
				worstTotal = row.Total
			}
		}
	}
	b.ReportMetric(worstTotal*100, "worst%")
}

func BenchmarkSec5Separation(b *testing.B) {
	var r float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Separation(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		r = res.UtilFreqCorrelation
	}
	b.ReportMetric(r, "utilCorr")
}

func BenchmarkSec41Attribution(b *testing.B) {
	var hits int
	for i := 0; i < b.N; i++ {
		res := experiments.Attribution(benchCtx)
		hits = 0
		for _, row := range res.Rows {
			if row.Hit {
				hits++
			}
		}
	}
	b.ReportMetric(float64(hits), "hits")
}

func BenchmarkLifecycle(b *testing.B) {
	var saved int
	for i := 0; i < b.N; i++ {
		saved = experiments.Lifecycle(benchCtx).TotalCoresSaved()
	}
	b.ReportMetric(float64(saved), "coresSaved")
}

func BenchmarkExposureWindow(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		mean = experiments.Exposure(benchCtx, 6, 14*24*time.Hour, 5000).MeanDays
	}
	b.ReportMetric(mean, "meanDays")
}

func BenchmarkObs10Anomalies(b *testing.B) {
	var hot int
	for i := 0; i < b.N; i++ {
		res, err := experiments.Anomalies(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		hot = res.YAfterX
	}
	b.ReportMetric(float64(hot), "yAfterX")
}
