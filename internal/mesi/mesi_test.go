package mesi

import (
	"testing"
	"testing/quick"

	"farron/internal/simrand"
)

func TestReadMissThenExclusive(t *testing.T) {
	s := NewSystem(4, 8)
	if got := s.Read(0, 100); got != 0 {
		t.Errorf("cold read = %d", got)
	}
	if st := s.LineState(0, 100); st != Exclusive {
		t.Errorf("state after lone read = %v, want E", st)
	}
}

func TestSecondReaderShares(t *testing.T) {
	s := NewSystem(4, 8)
	s.Read(0, 100)
	s.Read(1, 100)
	if st := s.LineState(0, 100); st != Shared {
		t.Errorf("first reader state = %v, want S", st)
	}
	if st := s.LineState(1, 100); st != Shared {
		t.Errorf("second reader state = %v, want S", st)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	s := NewSystem(4, 8)
	s.Read(0, 100)
	s.Read(1, 100)
	s.Write(2, 100, 42)
	if st := s.LineState(0, 100); st != Invalid {
		t.Errorf("sharer 0 state = %v, want I", st)
	}
	if st := s.LineState(1, 100); st != Invalid {
		t.Errorf("sharer 1 state = %v, want I", st)
	}
	if st := s.LineState(2, 100); st != Modified {
		t.Errorf("writer state = %v, want M", st)
	}
	if got := s.Read(0, 100); got != 42 {
		t.Errorf("reader after write sees %d, want 42", got)
	}
	// The M holder supplying data downgrades to S and memory is updated.
	if st := s.LineState(2, 100); st != Shared {
		t.Errorf("writer after remote read = %v, want S", st)
	}
	if got := s.MemValue(100); got != 42 {
		t.Errorf("memory after writeback = %d", got)
	}
}

func TestSilentEToMUpgrade(t *testing.T) {
	s := NewSystem(2, 8)
	s.Read(0, 7)
	before := s.Stats().BusRdX
	s.Write(0, 7, 9)
	if s.Stats().BusRdX != before {
		t.Error("E->M upgrade should not issue BusRdX")
	}
	if st := s.LineState(0, 7); st != Modified {
		t.Errorf("state = %v, want M", st)
	}
}

func TestWritebackOnEviction(t *testing.T) {
	s := NewSystem(1, 2)
	s.Write(0, 1, 11)
	s.Write(0, 2, 22)
	s.Write(0, 3, 33) // evicts LRU (addr 1)
	if got := s.Stats().Evictions; got != 1 {
		t.Errorf("evictions = %d", got)
	}
	if got := s.MemValue(1); got != 11 {
		t.Errorf("evicted dirty line not written back: mem=%d", got)
	}
	if got := s.Read(0, 1); got != 11 {
		t.Errorf("re-read evicted = %d", got)
	}
}

func TestSequentialConsistencyHealthy(t *testing.T) {
	// Single-location coherence: a read always returns the last write,
	// from any core.
	s := NewSystem(4, 16)
	rng := simrand.New(1)
	var last uint64
	for i := 0; i < 5000; i++ {
		core := rng.Intn(4)
		if rng.Bool(0.4) {
			last = rng.Uint64()
			s.Write(core, 55, last)
		} else if got := s.Read(core, 55); got != last {
			t.Fatalf("step %d: core %d read %d, want %d", i, core, got, last)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}

func TestInvariantsHoldUnderRandomTraffic(t *testing.T) {
	f := func(seed uint64) bool {
		s := NewSystem(4, 4)
		rng := simrand.New(seed)
		for i := 0; i < 500; i++ {
			core := rng.Intn(4)
			addr := uint64(rng.Intn(10))
			if rng.Bool(0.5) {
				s.Write(core, addr, rng.Uint64())
			} else {
				s.Read(core, addr)
			}
		}
		return s.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDroppedInvalidationCausesStaleRead(t *testing.T) {
	// The CNST1 scenario: cache 1's invalidation is delayed, so it
	// serves a stale value after core 0's write, then recovers when the
	// late message lands.
	s := NewSystem(2, 8)
	s.Write(0, 100, 1)
	s.Read(1, 100) // both now S
	s.SetFault(func(target int, addr uint64) bool { return target == 1 && addr == 100 })

	s.Write(0, 100, 2)
	if err := s.CheckInvariants(); err == nil {
		t.Error("invariants hold while a stale copy is pending")
	}
	if got := s.Read(1, 100); got != 1 {
		t.Fatalf("stale reader got %d, want stale 1", got)
	}
	// The delayed invalidation has landed: the next read is coherent.
	s.SetFault(nil)
	if got := s.Read(1, 100); got != 2 {
		t.Fatalf("post-recovery read got %d, want 2", got)
	}
	if got := s.Read(0, 100); got != 2 {
		t.Fatalf("writer reads %d, want 2", got)
	}
	if s.Stats().DroppedInvalidation == 0 {
		t.Error("drop not counted")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Errorf("invariants should hold after recovery: %v", err)
	}
}

func TestFlush(t *testing.T) {
	s := NewSystem(2, 8)
	s.Write(0, 5, 77)
	s.Flush()
	if got := s.MemValue(5); got != 77 {
		t.Errorf("flush did not write back: %d", got)
	}
	if st := s.LineState(0, 5); st != Invalid {
		t.Errorf("state after flush = %v", st)
	}
}

func TestStatsCounts(t *testing.T) {
	s := NewSystem(2, 8)
	s.Read(0, 1)     // miss
	s.Read(0, 1)     // hit
	s.Write(1, 1, 5) // miss + invalidation of core 0's copy
	st := s.Stats()
	if st.Misses != 2 || st.Hits != 1 {
		t.Errorf("hits/misses = %d/%d", st.Hits, st.Misses)
	}
	if st.Invalidations != 1 {
		t.Errorf("invalidations = %d", st.Invalidations)
	}
	if st.BusReads != 1 || st.BusRdX != 1 {
		t.Errorf("bus = %d/%d", st.BusReads, st.BusRdX)
	}
}

func TestStateString(t *testing.T) {
	want := map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M"}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
}

func TestNewSystemPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid shape accepted")
		}
	}()
	NewSystem(0, 4)
}

func TestOutOfRangeCorePanics(t *testing.T) {
	s := NewSystem(2, 4)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range core accepted")
		}
	}()
	s.Read(2, 0)
}

func TestCapacityRespected(t *testing.T) {
	s := NewSystem(1, 4)
	for a := uint64(0); a < 100; a++ {
		s.Write(0, a, a)
	}
	valid := 0
	for a := uint64(0); a < 100; a++ {
		if s.LineState(0, a) != Invalid {
			valid++
		}
	}
	if valid > 4 {
		t.Errorf("%d valid lines exceed capacity 4", valid)
	}
	// All evicted dirty data must be in memory.
	for a := uint64(0); a < 100; a++ {
		if got := s.Read(0, a); got != a {
			t.Fatalf("lost write: addr %d = %d", a, got)
		}
	}
}
