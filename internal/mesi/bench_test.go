package mesi

import "testing"

func BenchmarkReadHit(b *testing.B) {
	s := NewSystem(4, 64)
	s.Write(0, 7, 42)
	for i := 0; i < b.N; i++ {
		s.Read(0, 7)
	}
}

func BenchmarkWriteInvalidate(b *testing.B) {
	s := NewSystem(4, 64)
	for i := 0; i < b.N; i++ {
		core := i & 3
		s.Read((core+1)&3, 5) // ensure a sharer exists
		s.Write(core, 5, uint64(i))
	}
}

func BenchmarkMixedTraffic(b *testing.B) {
	s := NewSystem(8, 32)
	for i := 0; i < b.N; i++ {
		core := i & 7
		addr := uint64(i % 48)
		if i&3 == 0 {
			s.Write(core, addr, uint64(i))
		} else {
			s.Read(core, addr)
		}
	}
}
