// Package mesi implements a bus-snooping MESI cache-coherence protocol
// simulator: per-core caches over a shared memory, with Modified /
// Exclusive / Shared / Invalid line states and snoop-driven transitions.
//
// It is the substrate behind the paper's cache-coherence defect cases
// (CNST1 and the second production example of Section 2.2, where a daemon
// thread read inconsistent data from a buffer shared with a client thread).
// A healthy system satisfies the MESI invariants checked by
// CheckInvariants; an injected fault — a dropped invalidation — lets a
// stale Shared copy survive a remote write, which is exactly how a
// defective coherence implementation silently corrupts readers.
package mesi

import (
	"errors"
	"fmt"
	"slices"
)

// State is a MESI cache-line state.
type State int

const (
	// Invalid: the line holds no valid data.
	Invalid State = iota
	// Shared: clean copy, other caches may also hold it.
	Shared
	// Exclusive: clean copy, no other cache holds it.
	Exclusive
	// Modified: dirty copy, no other cache holds it; memory is stale.
	Modified
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// line is one cache line (word granularity: protocol behaviour, not spatial
// locality, is what the substrate models).
type line struct {
	addr  uint64
	state State
	data  uint64
	// lru is a monotone use stamp for eviction.
	lru uint64
	// doomed marks a line whose invalidation was dropped/delayed by the
	// injected coherence defect: it serves one more (stale) access and
	// then invalidates when the late message finally lands.
	doomed bool
}

// Cache is one core's private cache.
type Cache struct {
	id       int
	capacity int
	lines    map[uint64]*line
}

func newCache(id, capacity int) *Cache {
	return &Cache{id: id, capacity: capacity, lines: map[uint64]*line{}}
}

// lookup returns the line for addr if present and valid.
func (c *Cache) lookup(addr uint64) *line {
	l := c.lines[addr]
	if l == nil || l.state == Invalid {
		return nil
	}
	return l
}

// Stats counts protocol events.
type Stats struct {
	Hits, Misses        uint64
	Invalidations       uint64
	DroppedInvalidation uint64
	Writebacks          uint64
	BusReads, BusRdX    uint64
	Evictions           uint64
}

// FaultFn decides whether the invalidation sent to cache target for addr is
// dropped (the injected coherence defect). A nil FaultFn means healthy.
type FaultFn func(target int, addr uint64) bool

// System is a multi-core coherent memory system.
type System struct {
	caches []*Cache
	mem    map[uint64]uint64
	stats  Stats
	fault  FaultFn
	clock  uint64
}

// NewSystem creates a system with nCores private caches of capacityLines
// lines each.
func NewSystem(nCores, capacityLines int) *System {
	if nCores <= 0 || capacityLines <= 0 {
		panic("mesi: invalid system shape")
	}
	s := &System{mem: map[uint64]uint64{}}
	for i := 0; i < nCores; i++ {
		s.caches = append(s.caches, newCache(i, capacityLines))
	}
	return s
}

// SetFault installs the invalidation-drop fault (nil = healthy).
func (s *System) SetFault(f FaultFn) { s.fault = f }

// NCores returns the number of caches.
func (s *System) NCores() int { return len(s.caches) }

// Stats returns a copy of the event counters.
func (s *System) Stats() Stats { return s.stats }

func (s *System) cache(core int) *Cache {
	if core < 0 || core >= len(s.caches) {
		panic(fmt.Sprintf("mesi: core %d out of range", core))
	}
	return s.caches[core]
}

// touch stamps a line for LRU.
func (s *System) touch(l *line) {
	s.clock++
	l.lru = s.clock
}

// evictIfNeeded makes room in cache c, writing back a dirty victim.
func (s *System) evictIfNeeded(c *Cache) {
	valid := 0
	for _, l := range c.lines {
		if l.state != Invalid {
			valid++
		}
	}
	if valid < c.capacity {
		return
	}
	var victim *line
	for _, l := range c.lines {
		if l.state == Invalid {
			continue
		}
		// Tie-break equal LRU stamps by address so the evicted victim does
		// not depend on map iteration order.
		if victim == nil || l.lru < victim.lru ||
			(l.lru == victim.lru && l.addr < victim.addr) {
			victim = l
		}
	}
	if victim == nil {
		return
	}
	if victim.state == Modified {
		s.mem[victim.addr] = victim.data
		s.stats.Writebacks++
	}
	victim.state = Invalid
	s.stats.Evictions++
}

// install places (addr, data, state) into cache c.
func (s *System) install(c *Cache, addr, data uint64, st State) *line {
	l := c.lines[addr]
	if l == nil {
		s.evictIfNeeded(c)
		l = &line{addr: addr}
		c.lines[addr] = l
	} else if l.state == Invalid {
		s.evictIfNeeded(c)
	}
	l.data = data
	l.state = st
	l.doomed = false
	s.touch(l)
	return l
}

// Read performs a coherent load by core from addr.
func (s *System) Read(core int, addr uint64) uint64 {
	c := s.cache(core)
	if l := c.lookup(addr); l != nil {
		s.stats.Hits++
		s.touch(l)
		data := l.data
		if l.doomed {
			// The delayed invalidation lands after this stale
			// access (the injected coherence defect's visible
			// window).
			l.state = Invalid
			l.doomed = false
			s.stats.Invalidations++
		}
		return data
	}
	s.stats.Misses++
	s.stats.BusReads++

	// BusRd: snoop other caches. An M holder supplies data and
	// writes back, downgrading to S. E holders downgrade to S.
	data, found := s.mem[addr], false
	shared := false
	for _, o := range s.caches {
		if o == c {
			continue
		}
		ol := o.lookup(addr)
		if ol == nil {
			continue
		}
		shared = true
		switch ol.state {
		case Modified:
			s.mem[addr] = ol.data
			s.stats.Writebacks++
			data, found = ol.data, true
			ol.state = Shared
		case Exclusive:
			ol.state = Shared
			data, found = ol.data, true
		case Shared:
			if !found {
				data = ol.data
			}
		}
	}
	st := Exclusive
	if shared {
		st = Shared
	}
	l := s.install(c, addr, data, st)
	return l.data
}

// Write performs a coherent store by core to addr.
func (s *System) Write(core int, addr, value uint64) {
	c := s.cache(core)
	l := c.lookup(addr)
	if l != nil && (l.state == Modified || l.state == Exclusive) {
		// Silent upgrade E->M or write hit in M.
		s.stats.Hits++
		l.data = value
		l.state = Modified
		s.touch(l)
		return
	}

	// Need BusRdX (or BusUpgr if we hold S): invalidate all other copies.
	if l != nil {
		s.stats.Hits++
	} else {
		s.stats.Misses++
	}
	s.stats.BusRdX++
	for _, o := range s.caches {
		if o == c {
			continue
		}
		ol := o.lookup(addr)
		if ol == nil {
			continue
		}
		// The injected coherence defect: the invalidation to this
		// cache is delayed, leaving a stale copy readable for one more
		// access before the late message lands.
		if s.fault != nil && s.fault(o.id, addr) {
			s.stats.DroppedInvalidation++
			ol.doomed = true
			// The stale copy is no longer authoritative whatever
			// its previous state claimed.
			ol.state = Shared
			continue
		}
		if ol.state == Modified {
			s.mem[addr] = ol.data
			s.stats.Writebacks++
		}
		ol.state = Invalid
		s.stats.Invalidations++
	}
	s.install(c, addr, value, Modified)
}

// Flush writes back all dirty lines and invalidates every cache (used at
// barriers and when checking against memory).
func (s *System) Flush() {
	for _, c := range s.caches {
		for _, l := range c.lines {
			if l.state == Modified {
				s.mem[l.addr] = l.data
				s.stats.Writebacks++
			}
			l.state = Invalid
		}
	}
}

// MemValue returns memory's current value for addr (not coherent: dirty
// cached copies are not consulted).
func (s *System) MemValue(addr uint64) uint64 { return s.mem[addr] }

// ErrIncoherent is returned by CheckInvariants when a MESI invariant is
// violated (expected only under fault injection).
var ErrIncoherent = errors.New("mesi: coherence invariant violated")

// sortedLines returns a cache's lines in ascending address order, for
// deterministic iteration where the visit order is observable.
func sortedLines(lines map[uint64]*line) []*line {
	addrs := make([]uint64, 0, len(lines))
	for a := range lines {
		addrs = append(addrs, a)
	}
	slices.Sort(addrs)
	out := make([]*line, len(addrs))
	for i, a := range addrs {
		out[i] = lines[a]
	}
	return out
}

// CheckInvariants verifies the MESI single-writer / no-stale-copy
// invariants:
//
//  1. at most one cache holds a line in M or E;
//  2. if any cache holds M or E, no other cache holds a valid copy;
//  3. all S copies of a line hold identical data.
func (s *System) CheckInvariants() error {
	type holders struct {
		me     int
		shared []uint64
		total  int
	}
	byAddr := map[uint64]*holders{}
	var addrs []uint64
	for _, c := range s.caches {
		for _, l := range sortedLines(c.lines) {
			if l.state == Invalid {
				continue
			}
			h := byAddr[l.addr]
			if h == nil {
				h = &holders{}
				byAddr[l.addr] = h
				addrs = append(addrs, l.addr)
			}
			h.total++
			switch l.state {
			case Modified, Exclusive:
				h.me++
			case Shared:
				h.shared = append(h.shared, l.data)
			}
		}
	}
	// Sorted order makes the reported violation stable when several
	// addresses are incoherent at once.
	slices.Sort(addrs)
	for _, addr := range addrs {
		h := byAddr[addr]
		if h.me > 1 {
			return fmt.Errorf("%w: addr %#x has %d M/E holders", ErrIncoherent, addr, h.me)
		}
		if h.me == 1 && h.total > 1 {
			return fmt.Errorf("%w: addr %#x has M/E holder plus %d other copies", ErrIncoherent, addr, h.total-1)
		}
		for _, d := range h.shared {
			if d != h.shared[0] {
				return fmt.Errorf("%w: addr %#x shared copies disagree", ErrIncoherent, addr)
			}
		}
	}
	return nil
}

// LineState reports core's state for addr (Invalid when absent).
func (s *System) LineState(core int, addr uint64) State {
	l := s.cache(core).lookup(addr)
	if l == nil {
		return Invalid
	}
	return l.state
}
