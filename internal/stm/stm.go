// Package stm implements a TL2-style software transactional memory over a
// fixed array of 64-bit words: a global version clock, striped versioned
// write-locks, lazy write buffering, and commit-time read-set validation.
//
// It is the substrate behind the paper's transactional-memory defect cases
// (CNST1, CNST2). A healthy Store guarantees serializability — concurrent
// bank-transfer transactions conserve the total balance. The injected
// defect corrupts commit: with SkipValidation the transaction commits
// despite a stale read set (broken conflict detection), and with TornCommit
// only a prefix of the write set reaches memory (broken transactional
// region management, the CNST2 suspect). Both produce silent,
// application-visible corruption.
package stm

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
)

// FaultKind selects the injected commit defect for one transaction.
type FaultKind int

const (
	// FaultNone commits correctly.
	FaultNone FaultKind = iota
	// FaultSkipValidation commits without validating the read set.
	FaultSkipValidation
	// FaultTornCommit writes only part of the write set.
	FaultTornCommit
)

// FaultFn is consulted once per commit attempt; nil means healthy.
type FaultFn func() FaultKind

// ErrStopped is returned by Atomically when the callback returns a non-nil
// error; the transaction is discarded without committing.
var errConflict = errors.New("stm: conflict")

// lockWord layout: bit 0 = locked, bits 1.. = version.
type lockWord struct{ v atomic.Uint64 }

func (l *lockWord) load() (version uint64, locked bool) {
	w := l.v.Load()
	return w >> 1, w&1 == 1
}

func (l *lockWord) tryLock() (version uint64, ok bool) {
	w := l.v.Load()
	if w&1 == 1 {
		return 0, false
	}
	if l.v.CompareAndSwap(w, w|1) {
		return w >> 1, true
	}
	return 0, false
}

func (l *lockWord) unlockTo(version uint64) { l.v.Store(version << 1) }

func (l *lockWord) unlockSame(version uint64) { l.v.Store(version << 1) }

// Store is a transactional memory of Size words.
type Store struct {
	clock atomic.Uint64
	data  []atomic.Uint64
	locks []lockWord
	fault atomic.Pointer[FaultFn]

	// Aborts counts commit-time aborts (conflict retries).
	aborts atomic.Uint64
	// Commits counts successful commits.
	commits atomic.Uint64
	// FaultsInjected counts commits that executed with a fault.
	faultsInjected atomic.Uint64
}

// stripes is the lock-striping factor.
const stripes = 1024

// New creates a Store of size words, all zero.
func New(size int) *Store {
	if size <= 0 {
		panic("stm: non-positive size")
	}
	return &Store{
		data:  make([]atomic.Uint64, size),
		locks: make([]lockWord, stripes),
	}
}

// Size returns the word count.
func (s *Store) Size() int { return len(s.data) }

// SetFault installs a fault function (nil = healthy). Safe to call
// concurrently with transactions.
func (s *Store) SetFault(f FaultFn) {
	if f == nil {
		s.fault.Store(nil)
		return
	}
	s.fault.Store(&f)
}

// Commits returns the number of successful commits.
func (s *Store) Commits() uint64 { return s.commits.Load() }

// Aborts returns the number of conflict aborts (each triggering a retry).
func (s *Store) Aborts() uint64 { return s.aborts.Load() }

// FaultsInjected returns how many commits ran with an injected fault.
func (s *Store) FaultsInjected() uint64 { return s.faultsInjected.Load() }

func (s *Store) lockFor(addr int) *lockWord { return &s.locks[addr%stripes] }

// ReadDirect returns the committed value of addr outside any transaction
// (for checking results after quiescence).
func (s *Store) ReadDirect(addr int) uint64 { return s.data[addr].Load() }

// WriteDirect stores a value outside any transaction (initialization only;
// not safe concurrently with transactions).
func (s *Store) WriteDirect(addr int, v uint64) { s.data[addr].Store(v) }

// Tx is one transaction attempt. It is created by Atomically and must not
// escape the callback.
type Tx struct {
	s      *Store
	rv     uint64
	reads  []int
	writes map[int]uint64
}

// Load returns addr's value as of this transaction.
func (t *Tx) Load(addr int) (uint64, error) {
	if v, ok := t.writes[addr]; ok {
		return v, nil
	}
	lk := t.s.lockFor(addr)
	v1, locked := lk.load()
	if locked || v1 > t.rv {
		return 0, errConflict
	}
	val := t.s.data[addr].Load()
	v2, locked2 := lk.load()
	if locked2 || v1 != v2 {
		return 0, errConflict
	}
	t.reads = append(t.reads, addr)
	return val, nil
}

// Store buffers a write of v to addr.
func (t *Tx) Store(addr int, v uint64) {
	if t.writes == nil {
		t.writes = map[int]uint64{}
	}
	t.writes[addr] = v
}

// commit attempts the TL2 commit protocol.
func (t *Tx) commit() error {
	if len(t.writes) == 0 {
		// Read-only transactions are already consistent at rv.
		return nil
	}
	kind := FaultNone
	if fp := t.s.fault.Load(); fp != nil {
		kind = (*fp)()
	}

	// Lock the write set in address order (deadlock freedom). Multiple
	// addresses can share a stripe; lock each stripe once.
	addrs := make([]int, 0, len(t.writes))
	for a := range t.writes {
		addrs = append(addrs, a)
	}
	sort.Ints(addrs)
	lockedStripes := make([]*lockWord, 0, len(addrs))
	lockedVers := make([]uint64, 0, len(addrs))
	seen := map[*lockWord]bool{}
	abort := func() error {
		for i, lk := range lockedStripes {
			lk.unlockSame(lockedVers[i])
		}
		t.s.aborts.Add(1)
		return errConflict
	}
	for _, a := range addrs {
		lk := t.s.lockFor(a)
		if seen[lk] {
			continue
		}
		ver, ok := lk.tryLock()
		if !ok {
			return abort()
		}
		if ver > t.rv {
			lockedVers = append(lockedVers, ver)
			lockedStripes = append(lockedStripes, lk)
			return abort()
		}
		seen[lk] = true
		lockedStripes = append(lockedStripes, lk)
		lockedVers = append(lockedVers, ver)
	}

	wv := t.s.clock.Add(1)

	// Validate the read set — unless the defect skips it.
	if kind != FaultSkipValidation && wv != t.rv+1 {
		for _, a := range t.reads {
			lk := t.s.lockFor(a)
			ver, locked := lk.load()
			if locked && !seen[lk] {
				return abort()
			}
			if !locked && ver > t.rv {
				return abort()
			}
			if locked && seen[lk] {
				// We hold it; recover its pre-lock version.
				for i, l2 := range lockedStripes {
					if l2 == lk && lockedVers[i] > t.rv {
						return abort()
					}
				}
			}
		}
	}

	// Write back. A torn commit drops the tail of the write set.
	writeCount := len(addrs)
	if kind == FaultTornCommit && writeCount > 1 {
		writeCount = writeCount / 2
	}
	for i, a := range addrs {
		if i >= writeCount {
			break
		}
		t.s.data[a].Store(t.writes[a])
	}
	for _, lk := range lockedStripes {
		lk.unlockTo(wv)
	}
	if kind != FaultNone {
		t.s.faultsInjected.Add(1)
	}
	t.s.commits.Add(1)
	return nil
}

// Atomically runs fn transactionally, retrying on conflicts until it
// commits. If fn returns a non-nil error the transaction is discarded and
// the error returned. fn may be invoked multiple times and must be
// side-effect free apart from Tx operations.
func (s *Store) Atomically(fn func(*Tx) error) error {
	for {
		t := &Tx{s: s, rv: s.clock.Load()}
		err := fn(t)
		if err != nil {
			if errors.Is(err, errConflict) {
				s.aborts.Add(1)
				continue
			}
			return err
		}
		if err := t.commit(); err == nil {
			return nil
		}
	}
}

// Transfer is a convenience transaction moving amount from one word to
// another, failing with ErrInsufficient when the source is too small. It is
// the canonical multi-word invariant workload (total is conserved on
// healthy hardware).
func (s *Store) Transfer(from, to int, amount uint64) error {
	return s.Atomically(func(t *Tx) error {
		src, err := t.Load(from)
		if err != nil {
			return err
		}
		if src < amount {
			return ErrInsufficient
		}
		dst, err := t.Load(to)
		if err != nil {
			return err
		}
		t.Store(from, src-amount)
		t.Store(to, dst+amount)
		return nil
	})
}

// ErrInsufficient reports a transfer from an underfunded word.
var ErrInsufficient = fmt.Errorf("stm: insufficient balance")

// Sum returns the direct (non-transactional) sum of all words; call only at
// quiescence.
func (s *Store) Sum() uint64 {
	var total uint64
	for i := range s.data {
		total += s.data[i].Load()
	}
	return total
}
