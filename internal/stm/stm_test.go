package stm

import (
	"errors"
	"sync"
	"testing"

	"farron/internal/simrand"
)

func TestBasicReadWrite(t *testing.T) {
	s := New(10)
	err := s.Atomically(func(tx *Tx) error {
		tx.Store(3, 42)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ReadDirect(3); got != 42 {
		t.Errorf("ReadDirect = %d", got)
	}
	var read uint64
	err = s.Atomically(func(tx *Tx) error {
		v, err := tx.Load(3)
		read = v
		return err
	})
	if err != nil || read != 42 {
		t.Errorf("transactional read = %d, %v", read, err)
	}
}

func TestReadYourOwnWrites(t *testing.T) {
	s := New(4)
	err := s.Atomically(func(tx *Tx) error {
		tx.Store(0, 7)
		v, err := tx.Load(0)
		if err != nil {
			return err
		}
		if v != 7 {
			t.Errorf("read-own-write = %d", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUserErrorAborts(t *testing.T) {
	s := New(4)
	s.WriteDirect(0, 5)
	sentinel := errors.New("nope")
	err := s.Atomically(func(tx *Tx) error {
		tx.Store(0, 99)
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if got := s.ReadDirect(0); got != 5 {
		t.Errorf("aborted tx leaked write: %d", got)
	}
}

func TestTransferConservesTotal(t *testing.T) {
	const accounts = 16
	const workers = 8
	const transfersPerWorker = 2000
	s := New(accounts)
	for i := 0; i < accounts; i++ {
		s.WriteDirect(i, 1000)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := simrand.New(seed)
			for i := 0; i < transfersPerWorker; i++ {
				from := rng.Intn(accounts)
				to := rng.Intn(accounts)
				if from == to {
					continue
				}
				err := s.Transfer(from, to, uint64(1+rng.Intn(50)))
				if err != nil && !errors.Is(err, ErrInsufficient) {
					t.Errorf("transfer error: %v", err)
					return
				}
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	if got := s.Sum(); got != accounts*1000 {
		t.Errorf("total = %d, want %d (serializability violated on healthy store)", got, accounts*1000)
	}
	if s.Commits() == 0 {
		t.Error("no commits recorded")
	}
}

func TestConcurrentCountersExact(t *testing.T) {
	// Many goroutines increment the same word; the result must be exact.
	s := New(1)
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				err := s.Atomically(func(tx *Tx) error {
					v, err := tx.Load(0)
					if err != nil {
						return err
					}
					tx.Store(0, v+1)
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := s.ReadDirect(0); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if s.Aborts() == 0 {
		t.Log("warning: no conflicts observed (possible but unlikely)")
	}
}

func TestSkipValidationFaultBreaksCounter(t *testing.T) {
	// Observation: a defective conflict check silently loses updates.
	s := New(1)
	s.SetFault(func() FaultKind { return FaultSkipValidation })
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				_ = s.Atomically(func(tx *Tx) error {
					v, err := tx.Load(0)
					if err != nil {
						return err
					}
					tx.Store(0, v+1)
					return nil
				})
			}
		}()
	}
	wg.Wait()
	got := s.ReadDirect(0)
	if got == workers*perWorker {
		t.Skip("no interleaving hit the fault window; inherently racy check")
	}
	if got > workers*perWorker {
		t.Errorf("counter overshot: %d", got)
	}
	if s.FaultsInjected() == 0 {
		t.Error("fault never injected")
	}
}

func TestTornCommitBreaksTransferInvariant(t *testing.T) {
	s := New(2)
	s.WriteDirect(0, 1000)
	s.WriteDirect(1, 1000)
	s.SetFault(func() FaultKind { return FaultTornCommit })
	if err := s.Transfer(0, 1, 100); err != nil {
		t.Fatal(err)
	}
	// A torn commit wrote only the debit, losing the credit.
	if got := s.Sum(); got == 2000 {
		t.Errorf("torn commit conserved total %d; expected corruption", got)
	}
}

func TestFaultNoneIsHealthy(t *testing.T) {
	s := New(2)
	s.WriteDirect(0, 500)
	s.SetFault(func() FaultKind { return FaultNone })
	if err := s.Transfer(0, 1, 200); err != nil {
		t.Fatal(err)
	}
	if got := s.Sum(); got != 500 {
		t.Errorf("total = %d", got)
	}
	s.SetFault(nil) // clearing must be safe
	if err := s.Transfer(1, 0, 50); err != nil {
		t.Fatal(err)
	}
	if got := s.Sum(); got != 500 {
		t.Errorf("total after clear = %d", got)
	}
}

func TestInsufficientBalance(t *testing.T) {
	s := New(2)
	s.WriteDirect(0, 10)
	err := s.Transfer(0, 1, 100)
	if !errors.Is(err, ErrInsufficient) {
		t.Errorf("err = %v", err)
	}
	if s.ReadDirect(0) != 10 || s.ReadDirect(1) != 0 {
		t.Error("failed transfer mutated state")
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) accepted")
		}
	}()
	New(0)
}

func TestReadOnlyTransactionsSeeConsistentSnapshot(t *testing.T) {
	// Two words always updated together; a reader must never observe
	// them out of sync.
	s := New(2)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = s.Atomically(func(tx *Tx) error {
				tx.Store(0, i)
				tx.Store(1, i)
				return nil
			})
		}
	}()
	for i := 0; i < 5000; i++ {
		var a, b uint64
		err := s.Atomically(func(tx *Tx) error {
			var err error
			if a, err = tx.Load(0); err != nil {
				return err
			}
			b, err = tx.Load(1)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("inconsistent snapshot: %d != %d", a, b)
		}
	}
	close(stop)
	wg.Wait()
}
