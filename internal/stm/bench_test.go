package stm

import "testing"

func BenchmarkAtomicIncrement(b *testing.B) {
	s := New(16)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_ = s.Atomically(func(tx *Tx) error {
				v, err := tx.Load(3)
				if err != nil {
					return err
				}
				tx.Store(3, v+1)
				return nil
			})
		}
	})
}

func BenchmarkTransfer(b *testing.B) {
	s := New(64)
	for i := 0; i < 64; i++ {
		s.WriteDirect(i, 1<<40)
	}
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			_ = s.Transfer(i%64, (i+7)%64, 1)
		}
	})
}

func BenchmarkReadOnlyTx(b *testing.B) {
	s := New(64)
	for i := 0; i < b.N; i++ {
		_ = s.Atomically(func(tx *Tx) error {
			for a := 0; a < 8; a++ {
				if _, err := tx.Load(a); err != nil {
					return err
				}
			}
			return nil
		})
	}
}
