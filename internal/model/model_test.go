package model

import (
	"strings"
	"testing"
)

func TestFeatureString(t *testing.T) {
	want := map[Feature]string{
		FeatureALU:     "ALU",
		FeatureVecUnit: "VecUnit",
		FeatureFPU:     "FPU",
		FeatureCache:   "Cache",
		FeatureTrxMem:  "TrxMem",
	}
	for f, s := range want {
		if got := f.String(); got != s {
			t.Errorf("Feature(%d).String() = %q, want %q", int(f), got, s)
		}
	}
	if got := Feature(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown feature string = %q", got)
	}
}

func TestAllFeaturesCount(t *testing.T) {
	fs := AllFeatures()
	if len(fs) != NumFeatures {
		t.Fatalf("AllFeatures returned %d features, want %d", len(fs), NumFeatures)
	}
	seen := map[Feature]bool{}
	for _, f := range fs {
		if seen[f] {
			t.Errorf("duplicate feature %v", f)
		}
		seen[f] = true
	}
}

func TestClassOf(t *testing.T) {
	cases := []struct {
		f    Feature
		want DefectClass
	}{
		{FeatureALU, ClassComputation},
		{FeatureVecUnit, ClassComputation},
		{FeatureFPU, ClassComputation},
		{FeatureCache, ClassConsistency},
		{FeatureTrxMem, ClassConsistency},
	}
	for _, c := range cases {
		if got := ClassOf(c.f); got != c.want {
			t.Errorf("ClassOf(%v) = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestDefectClassString(t *testing.T) {
	if ClassComputation.String() != "computation" {
		t.Errorf("ClassComputation = %q", ClassComputation.String())
	}
	if ClassConsistency.String() != "consistency" {
		t.Errorf("ClassConsistency = %q", ClassConsistency.String())
	}
}

func TestDataTypeBits(t *testing.T) {
	cases := []struct {
		d    DataType
		bits int
	}{
		{DTBit, 1}, {DTByte, 8}, {DTBin8, 8},
		{DTInt16, 16}, {DTBin16, 16},
		{DTInt32, 32}, {DTUint32, 32}, {DTFloat32, 32}, {DTBin32, 32},
		{DTFloat64, 64}, {DTBin64, 64},
		{DTFloat64x, 80},
	}
	for _, c := range cases {
		if got := c.d.Bits(); got != c.bits {
			t.Errorf("%v.Bits() = %d, want %d", c.d, got, c.bits)
		}
	}
}

func TestDataTypeNumericFloat(t *testing.T) {
	numeric := map[DataType]bool{
		DTInt16: true, DTInt32: true, DTUint32: true,
		DTFloat32: true, DTFloat64: true, DTFloat64x: true,
	}
	floats := map[DataType]bool{DTFloat32: true, DTFloat64: true, DTFloat64x: true}
	for _, d := range AllDataTypes() {
		if got := d.Numeric(); got != numeric[d] {
			t.Errorf("%v.Numeric() = %v, want %v", d, got, numeric[d])
		}
		if got := d.Float(); got != floats[d] {
			t.Errorf("%v.Float() = %v, want %v", d, got, floats[d])
		}
	}
}

func TestAllDataTypesUnique(t *testing.T) {
	ds := AllDataTypes()
	if len(ds) != NumDataTypes {
		t.Fatalf("AllDataTypes returned %d, want %d", len(ds), NumDataTypes)
	}
	seen := map[DataType]bool{}
	for _, d := range ds {
		if seen[d] {
			t.Errorf("duplicate datatype %v", d)
		}
		seen[d] = true
	}
}

func TestStageString(t *testing.T) {
	want := map[Stage]string{
		StageFactory:    "factory",
		StageDatacenter: "datacenter",
		StageReinstall:  "re-install",
		StageRegular:    "regular",
	}
	for s, str := range want {
		if got := s.String(); got != str {
			t.Errorf("%d.String() = %q, want %q", int(s), got, str)
		}
	}
}

func TestStagePreProduction(t *testing.T) {
	for _, s := range AllStages() {
		want := s != StageRegular
		if got := s.PreProduction(); got != want {
			t.Errorf("%v.PreProduction() = %v, want %v", s, got, want)
		}
	}
}

func TestSDCRecordMask(t *testing.T) {
	r := SDCRecord{Expected: 0b1010, Actual: 0b0110}
	if got := r.Mask(); got != 0b1100 {
		t.Errorf("Mask() = %b, want 1100", got)
	}
	r80 := SDCRecord{ExpectedHi: 0x8001, ActualHi: 0x0001}
	if got := r80.MaskHi(); got != 0x8000 {
		t.Errorf("MaskHi() = %x, want 8000", got)
	}
}

func TestSettingString(t *testing.T) {
	s := Setting{ProcessorID: "MIX1", TestcaseID: "C", Core: 0}
	if got := s.String(); got != "MIX1/C/pcore0" {
		t.Errorf("Setting.String() = %q", got)
	}
}

func TestPerTenThousand(t *testing.T) {
	if got := PerTenThousand(3.61e-4); got != "3.610‱" {
		t.Errorf("PerTenThousand = %q", got)
	}
}

func TestInstrClassStrings(t *testing.T) {
	seen := map[string]bool{}
	for ic := InstrClass(0); int(ic) < NumInstrClasses; ic++ {
		s := ic.String()
		if s == "" || strings.HasPrefix(s, "InstrClass(") {
			t.Errorf("InstrClass %d has no name", int(ic))
		}
		if seen[s] {
			t.Errorf("duplicate instruction class name %q", s)
		}
		seen[s] = true
	}
}

func TestAllMicroArchs(t *testing.T) {
	archs := AllMicroArchs()
	if len(archs) != 9 {
		t.Fatalf("want 9 micro-architectures, got %d", len(archs))
	}
	if archs[0] != "M1" || archs[8] != "M9" {
		t.Errorf("unexpected arch ordering: %v", archs)
	}
}
