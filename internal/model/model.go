// Package model defines the shared vocabulary of the SDC study: processor
// features, defect types, operation datatypes, instruction classes, test
// stages, and the record types exchanged between the simulation substrates.
//
// Keeping these definitions in a leaf package lets the defect model, the
// thermal model, the testcase toolchain and the Farron mitigation engine
// agree on terminology without import cycles.
package model

import (
	"fmt"
	"time"
)

// Feature identifies a processor feature that a testcase targets and a
// defect may corrupt. The paper identifies five vulnerable features
// (Observation 5).
type Feature int

const (
	// FeatureALU is arithmetic logic computation (integer/bit operations).
	FeatureALU Feature = iota
	// FeatureVecUnit is vector (SIMD) computation.
	FeatureVecUnit
	// FeatureFPU is scalar floating point calculation.
	FeatureFPU
	// FeatureCache is the cache hierarchy including coherence machinery.
	FeatureCache
	// FeatureTrxMem is hardware transactional memory.
	FeatureTrxMem

	// NumFeatures is the number of distinct features.
	NumFeatures = int(FeatureTrxMem) + 1
)

// String returns the paper's short name for the feature.
func (f Feature) String() string {
	switch f {
	case FeatureALU:
		return "ALU"
	case FeatureVecUnit:
		return "VecUnit"
	case FeatureFPU:
		return "FPU"
	case FeatureCache:
		return "Cache"
	case FeatureTrxMem:
		return "TrxMem"
	default:
		return fmt.Sprintf("Feature(%d)", int(f))
	}
}

// AllFeatures lists every feature in display order.
func AllFeatures() []Feature {
	return []Feature{FeatureALU, FeatureVecUnit, FeatureFPU, FeatureCache, FeatureTrxMem}
}

// DefectClass splits defects into the two categories of Section 4.1:
// computation defects corrupt arithmetic results; consistency defects break
// coherence or transactional guarantees. A faulty processor's defective
// features always belong to a single class (Observation 5).
type DefectClass int

const (
	// ClassComputation covers ALU, VecUnit and FPU defects.
	ClassComputation DefectClass = iota
	// ClassConsistency covers Cache and TrxMem defects.
	ClassConsistency
)

// String implements fmt.Stringer.
func (c DefectClass) String() string {
	switch c {
	case ClassComputation:
		return "computation"
	case ClassConsistency:
		return "consistency"
	default:
		return fmt.Sprintf("DefectClass(%d)", int(c))
	}
}

// ClassOf returns the defect class a feature belongs to.
func ClassOf(f Feature) DefectClass {
	switch f {
	case FeatureCache, FeatureTrxMem:
		return ClassConsistency
	default:
		return ClassComputation
	}
}

// DataType identifies the operand datatype of a corrupted operation. The
// bin* types are opaque non-numerical blobs of the given bit width
// (Figure 5); the others are numerical (Figure 4).
type DataType int

const (
	DTInt16 DataType = iota
	DTInt32
	DTUint32
	DTFloat32
	DTFloat64
	DTFloat64x // 80-bit extended double precision
	DTBit
	DTByte
	DTBin8
	DTBin16
	DTBin32
	DTBin64

	// NumDataTypes is the number of distinct datatypes.
	NumDataTypes = int(DTBin64) + 1
)

// String returns the paper's abbreviation for the datatype.
func (d DataType) String() string {
	switch d {
	case DTInt16:
		return "i16"
	case DTInt32:
		return "i32"
	case DTUint32:
		return "ui32"
	case DTFloat32:
		return "f32"
	case DTFloat64:
		return "f64"
	case DTFloat64x:
		return "f64x"
	case DTBit:
		return "bit"
	case DTByte:
		return "byte"
	case DTBin8:
		return "bin8"
	case DTBin16:
		return "bin16"
	case DTBin32:
		return "bin32"
	case DTBin64:
		return "bin64"
	default:
		return fmt.Sprintf("DataType(%d)", int(d))
	}
}

// AllDataTypes lists every datatype in the display order of Figure 3.
func AllDataTypes() []DataType {
	return []DataType{
		DTInt16, DTInt32, DTUint32, DTFloat32, DTFloat64, DTFloat64x,
		DTBit, DTByte, DTBin8, DTBin16, DTBin32, DTBin64,
	}
}

// Bits returns the width in bits of the datatype's representation.
func (d DataType) Bits() int {
	switch d {
	case DTBit:
		return 1
	case DTByte, DTBin8:
		return 8
	case DTInt16, DTBin16:
		return 16
	case DTInt32, DTUint32, DTFloat32, DTBin32:
		return 32
	case DTFloat64, DTBin64:
		return 64
	case DTFloat64x:
		return 80
	default:
		return 0
	}
}

// Numeric reports whether the datatype is numerical, i.e. whether the
// location-preference bitflip model of Observation 7 applies.
func (d DataType) Numeric() bool {
	switch d {
	case DTInt16, DTInt32, DTUint32, DTFloat32, DTFloat64, DTFloat64x:
		return true
	default:
		return false
	}
}

// Float reports whether the datatype is an IEEE-754 (or extended) float.
func (d DataType) Float() bool {
	switch d {
	case DTFloat32, DTFloat64, DTFloat64x:
		return true
	default:
		return false
	}
}

// InstrClass is a coarse instruction classification used by the Pin-style
// instrumentation (Section 4.1) to attribute SDCs to suspected instructions.
type InstrClass int

const (
	InstrIntArith  InstrClass = iota // integer add/sub/mul/div
	InstrBitOp                       // shifts, masks, popcount
	InstrVecMulAdd                   // vector fused multiply-add (SIMD1 suspect)
	InstrVecMisc                     // other vector operations
	InstrFPArith                     // scalar FP add/mul/div
	InstrFPTrig                      // trigonometric/transcendental (FPU1/FPU2 suspect: arctangent)
	InstrLoadStore                   // memory traffic
	InstrAtomic                      // locked/atomic operations
	InstrTrxRegion                   // transactional region begin/end/abort (CNST2 suspect)
	InstrBranch                      // control flow

	// NumInstrClasses is the number of distinct instruction classes.
	NumInstrClasses = int(InstrBranch) + 1
)

// String implements fmt.Stringer.
func (ic InstrClass) String() string {
	switch ic {
	case InstrIntArith:
		return "int-arith"
	case InstrBitOp:
		return "bit-op"
	case InstrVecMulAdd:
		return "vec-muladd"
	case InstrVecMisc:
		return "vec-misc"
	case InstrFPArith:
		return "fp-arith"
	case InstrFPTrig:
		return "fp-trig"
	case InstrLoadStore:
		return "load-store"
	case InstrAtomic:
		return "atomic"
	case InstrTrxRegion:
		return "trx-region"
	case InstrBranch:
		return "branch"
	default:
		return fmt.Sprintf("InstrClass(%d)", int(ic))
	}
}

// InstrVariants is the number of virtual instructions modeled per
// instruction class. A "virtual instruction" stands for one concrete opcode
// (e.g. a fused multiply-add with a particular width); defects affect a few
// virtual instructions, and a testcase exercises a subset with a per-loop
// usage count — this granularity is what lets the Pin-style statistical
// attribution of Section 4.1 narrow the suspect set.
const InstrVariants = 48

// InstrID names one virtual instruction: a (class, variant) pair.
type InstrID struct {
	Class   InstrClass
	Variant int
}

// String implements fmt.Stringer.
func (id InstrID) String() string {
	return fmt.Sprintf("%s:%d", id.Class, id.Variant)
}

// Stage is a point in the fleet test pipeline (Figure 1).
type Stage int

const (
	// StageFactory is testing after factory delivery.
	StageFactory Stage = iota
	// StageDatacenter is testing after datacenter delivery.
	StageDatacenter
	// StageReinstall is testing after system re-installation, the last
	// gate before production.
	StageReinstall
	// StageRegular is periodic testing during production.
	StageRegular

	// NumStages is the number of pipeline stages.
	NumStages = int(StageRegular) + 1
)

// String implements fmt.Stringer.
func (s Stage) String() string {
	switch s {
	case StageFactory:
		return "factory"
	case StageDatacenter:
		return "datacenter"
	case StageReinstall:
		return "re-install"
	case StageRegular:
		return "regular"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// PreProduction reports whether the stage happens before production.
func (s Stage) PreProduction() bool { return s != StageRegular }

// AllStages lists the pipeline stages in order.
func AllStages() []Stage {
	return []Stage{StageFactory, StageDatacenter, StageReinstall, StageRegular}
}

// MicroArch names a processor micro-architecture. The paper anonymizes the
// nine architectures in its fleet as M1..M9 (Table 2).
type MicroArch string

// AllMicroArchs lists the nine micro-architectures of Table 2.
func AllMicroArchs() []MicroArch {
	return []MicroArch{"M1", "M2", "M3", "M4", "M5", "M6", "M7", "M8", "M9"}
}

// SDCRecord is one observed silent data corruption: a mismatch between the
// expected and actual result of an operation, with its context.
type SDCRecord struct {
	// ProcessorID identifies the faulty processor.
	ProcessorID string
	// Core is the physical core index the corrupting operation ran on.
	Core int
	// TestcaseID identifies the testcase (workload) that caught the SDC.
	TestcaseID string
	// DataType is the operand datatype of the corrupted operation.
	DataType DataType
	// Expected and Actual are the bit patterns of the correct and the
	// corrupted result, right-aligned in the low Bits() bits.
	Expected, Actual uint64
	// ExpectedHi/ActualHi carry bits 64..79 for 80-bit values; zero
	// otherwise.
	ExpectedHi, ActualHi uint16
	// Temperature is the core temperature (deg C) at corruption time.
	Temperature float64
	// When is the simulation time of the corruption.
	When time.Duration
	// Consistency marks records produced by consistency (cache/TrxMem)
	// defects; these carry no deterministic value pattern (Section 4.2).
	Consistency bool
	// HasContext reports whether the toolchain preserved execution
	// context for this SDC and pointed out the incorrect instruction
	// (Section 4.1: "For some of these errors, the toolchain preserves
	// the context and points out the incorrect instructions", e.g.
	// SIMD1's vector multiply-add).
	HasContext bool
	// ContextInstr is the incorrect instruction when HasContext is set.
	ContextInstr InstrID
}

// Mask returns the XOR of expected and actual low-64 bit patterns: the set
// of flipped positions (Observation 8 uses this as the bitflip mask).
func (r *SDCRecord) Mask() uint64 { return r.Expected ^ r.Actual }

// MaskHi returns the XOR of the high 16 bits for 80-bit values.
func (r *SDCRecord) MaskHi() uint16 { return r.ExpectedHi ^ r.ActualHi }

// TempRecord is one temperature monitoring sample (read, in production, from
// the kernel cooling-device file; here from the thermal simulator).
type TempRecord struct {
	When time.Duration
	// Celsius is the sampled core/package temperature.
	Celsius float64
}

// Setting identifies a (testcase, processor[, core]) combination — the unit
// at which the paper measures occurrence frequency and bitflip patterns.
type Setting struct {
	ProcessorID string
	TestcaseID  string
	Core        int
}

// String implements fmt.Stringer.
func (s Setting) String() string {
	return fmt.Sprintf("%s/%s/pcore%d", s.ProcessorID, s.TestcaseID, s.Core)
}

// PerTenThousand formats a rate as the paper's ‱ (per ten thousand) unit.
func PerTenThousand(rate float64) string {
	return fmt.Sprintf("%.3f‱", rate*1e4)
}
