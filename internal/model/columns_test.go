package model

import (
	"reflect"
	"testing"
	"time"
)

func sampleRecords() []SDCRecord {
	return []SDCRecord{
		{
			ProcessorID: "cpu-1", Core: 3, TestcaseID: "MIX1",
			DataType: DTInt32, Expected: 0xDEAD, Actual: 0xBEEF,
			Temperature: 61.5, When: 90 * time.Second,
		},
		{
			ProcessorID: "cpu-2", Core: 0, TestcaseID: "FPU2",
			DataType: DTFloat64x, Expected: 1, Actual: 2,
			ExpectedHi: 0x7FFF, ActualHi: 0x7FFE,
			Temperature: 48.0, When: time.Minute,
			HasContext: true, ContextInstr: InstrID{Class: InstrIntArith, Variant: 1},
		},
		{
			ProcessorID: "cpu-1", Core: 3, TestcaseID: "CNST1",
			Consistency: true, Temperature: 55.25, When: 2 * time.Hour,
		},
	}
}

// TestColumnsRoundTrip pins that Append → Row/AppendRowsTo is a lossless
// round trip for every SDCRecord field.
func TestColumnsRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var c RecordColumns
	for i := range recs {
		c.Append(&recs[i])
	}
	if c.Len() != len(recs) {
		t.Fatalf("Len = %d, want %d", c.Len(), len(recs))
	}
	for i := range recs {
		if got := c.Row(i); !reflect.DeepEqual(got, recs[i]) {
			t.Fatalf("Row(%d) = %+v, want %+v", i, got, recs[i])
		}
	}
	back := c.AppendRowsTo(nil)
	if !reflect.DeepEqual(back, recs) {
		t.Fatalf("AppendRowsTo = %+v, want %+v", back, recs)
	}
	if c.Mask(0) != recs[0].Mask() {
		t.Fatalf("Mask(0) = %#x, want %#x", c.Mask(0), recs[0].Mask())
	}
}

// TestColumnsStayParallel fails if SDCRecord grows a field RecordColumns
// doesn't carry: the round trip above checks values, this checks shape.
func TestColumnsStayParallel(t *testing.T) {
	rowFields := reflect.TypeOf(SDCRecord{}).NumField()
	colFields := reflect.TypeOf(RecordColumns{}).NumField()
	if rowFields != colFields {
		t.Fatalf("SDCRecord has %d fields but RecordColumns has %d columns; keep them parallel", rowFields, colFields)
	}
}

func TestColumnsResetKeepsCapacity(t *testing.T) {
	recs := sampleRecords()
	var c RecordColumns
	for i := range recs {
		c.Append(&recs[i])
	}
	capBefore := cap(c.Core)
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("Len after Reset = %d", c.Len())
	}
	if cap(c.Core) != capBefore {
		t.Fatalf("Reset dropped capacity: %d -> %d", capBefore, cap(c.Core))
	}
	c.Append(&recs[0])
	if !reflect.DeepEqual(c.Row(0), recs[0]) {
		t.Fatal("append after Reset corrupted data")
	}
}

func TestColumnsAppendColumnsAndClone(t *testing.T) {
	recs := sampleRecords()
	var a, b RecordColumns
	a.Append(&recs[0])
	for i := 1; i < len(recs); i++ {
		b.Append(&recs[i])
	}
	a.AppendColumns(&b)
	if !reflect.DeepEqual(a.AppendRowsTo(nil), recs) {
		t.Fatal("AppendColumns lost records")
	}
	cl := a.Clone()
	a.Reset()
	if !reflect.DeepEqual(cl.AppendRowsTo(nil), recs) {
		t.Fatal("Clone aliased the source columns")
	}
	var nilCols *RecordColumns
	if nilCols.Clone() != nil {
		t.Fatal("Clone of nil should be nil")
	}
}
