package model

import "time"

// RecordColumns is the structure-of-arrays form of []SDCRecord: one
// parallel slice per field, index i across all slices describing record i.
// The compiled run path appends records here natively so the stats
// pipeline can aggregate over contiguous columns (sum a []float64, count a
// []bool) instead of striding through 96-byte row structs; the row form
// remains the interchange representation — reference implementations,
// JSON output, and the wire/cache schema all stay row-oriented (see
// DESIGN.md "Arenas & columnar records").
//
// A RecordColumns is reusable: Reset truncates every column in place,
// keeping capacity, so an arena-held instance reaches zero steady-state
// allocations once warmed.
type RecordColumns struct {
	ProcessorID  []string
	Core         []int
	TestcaseID   []string
	DataType     []DataType
	Expected     []uint64
	Actual       []uint64
	ExpectedHi   []uint16
	ActualHi     []uint16
	Temperature  []float64
	When         []time.Duration
	Consistency  []bool
	HasContext   []bool
	ContextInstr []InstrID
}

// Len returns the number of records held.
func (c *RecordColumns) Len() int { return len(c.Core) }

// Reset truncates all columns to length zero, retaining capacity.
func (c *RecordColumns) Reset() {
	c.ProcessorID = c.ProcessorID[:0]
	c.Core = c.Core[:0]
	c.TestcaseID = c.TestcaseID[:0]
	c.DataType = c.DataType[:0]
	c.Expected = c.Expected[:0]
	c.Actual = c.Actual[:0]
	c.ExpectedHi = c.ExpectedHi[:0]
	c.ActualHi = c.ActualHi[:0]
	c.Temperature = c.Temperature[:0]
	c.When = c.When[:0]
	c.Consistency = c.Consistency[:0]
	c.HasContext = c.HasContext[:0]
	c.ContextInstr = c.ContextInstr[:0]
}

// Append adds one record to every column.
func (c *RecordColumns) Append(r *SDCRecord) {
	c.ProcessorID = append(c.ProcessorID, r.ProcessorID)
	c.Core = append(c.Core, r.Core)
	c.TestcaseID = append(c.TestcaseID, r.TestcaseID)
	c.DataType = append(c.DataType, r.DataType)
	c.Expected = append(c.Expected, r.Expected)
	c.Actual = append(c.Actual, r.Actual)
	c.ExpectedHi = append(c.ExpectedHi, r.ExpectedHi)
	c.ActualHi = append(c.ActualHi, r.ActualHi)
	c.Temperature = append(c.Temperature, r.Temperature)
	c.When = append(c.When, r.When)
	c.Consistency = append(c.Consistency, r.Consistency)
	c.HasContext = append(c.HasContext, r.HasContext)
	c.ContextInstr = append(c.ContextInstr, r.ContextInstr)
}

// AppendColumns bulk-appends every record of src.
func (c *RecordColumns) AppendColumns(src *RecordColumns) {
	c.ProcessorID = append(c.ProcessorID, src.ProcessorID...)
	c.Core = append(c.Core, src.Core...)
	c.TestcaseID = append(c.TestcaseID, src.TestcaseID...)
	c.DataType = append(c.DataType, src.DataType...)
	c.Expected = append(c.Expected, src.Expected...)
	c.Actual = append(c.Actual, src.Actual...)
	c.ExpectedHi = append(c.ExpectedHi, src.ExpectedHi...)
	c.ActualHi = append(c.ActualHi, src.ActualHi...)
	c.Temperature = append(c.Temperature, src.Temperature...)
	c.When = append(c.When, src.When...)
	c.Consistency = append(c.Consistency, src.Consistency...)
	c.HasContext = append(c.HasContext, src.HasContext...)
	c.ContextInstr = append(c.ContextInstr, src.ContextInstr...)
}

// Row materializes record i back into row form.
func (c *RecordColumns) Row(i int) SDCRecord {
	return SDCRecord{
		ProcessorID:  c.ProcessorID[i],
		Core:         c.Core[i],
		TestcaseID:   c.TestcaseID[i],
		DataType:     c.DataType[i],
		Expected:     c.Expected[i],
		Actual:       c.Actual[i],
		ExpectedHi:   c.ExpectedHi[i],
		ActualHi:     c.ActualHi[i],
		Temperature:  c.Temperature[i],
		When:         c.When[i],
		Consistency:  c.Consistency[i],
		HasContext:   c.HasContext[i],
		ContextInstr: c.ContextInstr[i],
	}
}

// AppendRowsTo materializes every record into dst in row form and returns
// the extended slice (append semantics).
func (c *RecordColumns) AppendRowsTo(dst []SDCRecord) []SDCRecord {
	for i := 0; i < c.Len(); i++ {
		dst = append(dst, c.Row(i))
	}
	return dst
}

// Mask returns the bitflip mask of record i (Expected XOR Actual), the
// columnar counterpart of SDCRecord.Mask.
func (c *RecordColumns) Mask(i int) uint64 { return c.Expected[i] ^ c.Actual[i] }

// Clone returns a deep copy with exactly-sized columns, for callers that
// retain results past the owning arena's next reset.
func (c *RecordColumns) Clone() *RecordColumns {
	if c == nil {
		return nil
	}
	d := &RecordColumns{
		ProcessorID:  append([]string(nil), c.ProcessorID...),
		Core:         append([]int(nil), c.Core...),
		TestcaseID:   append([]string(nil), c.TestcaseID...),
		DataType:     append([]DataType(nil), c.DataType...),
		Expected:     append([]uint64(nil), c.Expected...),
		Actual:       append([]uint64(nil), c.Actual...),
		ExpectedHi:   append([]uint16(nil), c.ExpectedHi...),
		ActualHi:     append([]uint16(nil), c.ActualHi...),
		Temperature:  append([]float64(nil), c.Temperature...),
		When:         append([]time.Duration(nil), c.When...),
		Consistency:  append([]bool(nil), c.Consistency...),
		HasContext:   append([]bool(nil), c.HasContext...),
		ContextInstr: append([]InstrID(nil), c.ContextInstr...),
	}
	return d
}
