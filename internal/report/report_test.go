package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("title", "a", "bb", "ccc")
	tb.AddRow("1", "22", "333")
	tb.AddRow("longer")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "title" {
		t.Errorf("first line = %q", lines[0])
	}
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("line count = %d: %q", len(lines), out)
	}
	if !strings.Contains(lines[1], "a") || !strings.Contains(lines[2], "-") {
		t.Error("header/separator malformed")
	}
	// Short row padded without panic; widths consistent.
	if len([]rune(lines[3])) == 0 {
		t.Error("row missing")
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "x")
	tb.AddRow("v")
	if strings.HasPrefix(tb.String(), "\n") {
		t.Error("empty title produced leading newline")
	}
}

func TestBars(t *testing.T) {
	out := Bars("chart", []string{"aa", "b"}, []float64{0.5, 1.0}, 10)
	if !strings.Contains(out, "chart") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	// Full-scale bar has width 10; half-scale 5.
	if strings.Count(lines[2], "#") != 10 {
		t.Errorf("max bar = %q", lines[2])
	}
	if strings.Count(lines[1], "#") != 5 {
		t.Errorf("half bar = %q", lines[1])
	}
}

func TestBarsZeroValues(t *testing.T) {
	out := Bars("", []string{"z"}, []float64{0}, 10)
	if strings.Contains(out, "#") {
		t.Error("zero value produced bars")
	}
}

func TestBarsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched lengths accepted")
		}
	}()
	Bars("", []string{"a"}, []float64{1, 2}, 10)
}

func TestScatter(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{0, 1, 2, 3}
	out := Scatter("sc", xs, ys, 4, 8)
	if !strings.Contains(out, "sc") || strings.Count(out, "*") != 4 {
		t.Errorf("scatter output:\n%s", out)
	}
	if !strings.Contains(out, "x: 0 .. 3") {
		t.Errorf("x range missing:\n%s", out)
	}
}

func TestScatterEmpty(t *testing.T) {
	out := Scatter("e", nil, nil, 4, 8)
	if !strings.Contains(out, "no data") {
		t.Error("empty scatter not handled")
	}
}

func TestScatterConstant(t *testing.T) {
	// Constant series must not divide by zero.
	out := Scatter("c", []float64{5, 5}, []float64{1, 1}, 4, 8)
	if !strings.Contains(out, "*") {
		t.Error("constant scatter lost points")
	}
}

func TestCDFPlot(t *testing.T) {
	out := CDFPlot("cdf", []float64{1, 2}, []float64{0.5, 1}, 10)
	if !strings.Contains(out, "cdf") || !strings.Contains(out, "1.000") {
		t.Errorf("cdf output:\n%s", out)
	}
}

func TestHeatmap(t *testing.T) {
	out := Heatmap("hm", []string{"r1", "r2"}, []string{"c1"},
		[][]float64{{0.5}, {math.NaN()}})
	if !strings.Contains(out, "0.500") {
		t.Error("value missing")
	}
	if !strings.Contains(out, "-") {
		t.Error("NaN placeholder missing")
	}
}

func TestFormatters(t *testing.T) {
	if got := Percent(0.00488); got != "0.488%" {
		t.Errorf("Percent = %q", got)
	}
	if got := PerTenThousand(3.61e-4); got != "3.610‱" {
		t.Errorf("PerTenThousand = %q", got)
	}
}
