// Package report renders experiment results as aligned ASCII tables and
// simple text charts (histograms, scatter plots, CDFs) so every table and
// figure of the paper can be regenerated on a terminal and diffed in CI.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple aligned-text table builder.
type Table struct {
	title  string
	header []string
	rows   [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// AddRow appends a row; short rows are padded.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len([]rune(h))
	}
	for _, r := range t.rows {
		for i, c := range r {
			if n := len([]rune(c)); n > widths[i] {
				widths[i] = n
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteByte('\n')
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

func pad(s string, w int) string {
	n := len([]rune(s))
	if n >= w {
		return s
	}
	return s + strings.Repeat(" ", w-n)
}

// Bars renders a labeled horizontal bar chart with values normalized to the
// maximum, suitable for Figures 2, 3 and 7.
func Bars(title string, labels []string, values []float64, width int) string {
	if len(labels) != len(values) {
		panic("report: labels/values length mismatch")
	}
	if width <= 0 {
		width = 40
	}
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if n := len([]rune(labels[i])); n > maxL {
			maxL = n
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for i, v := range values {
		n := 0
		if maxV > 0 {
			n = int(math.Round(float64(width) * v / maxV))
		}
		fmt.Fprintf(&b, "%s  %s %0.4f\n", pad(labels[i], maxL), strings.Repeat("#", n), v)
	}
	return b.String()
}

// Scatter renders an x/y scatter plot on a rows×cols character grid with
// axis ranges annotated — used for Figures 8 and 9.
func Scatter(title string, xs, ys []float64, rows, cols int) string {
	if len(xs) != len(ys) {
		panic("report: xs/ys length mismatch")
	}
	if rows <= 0 {
		rows = 16
	}
	if cols <= 0 {
		cols = 60
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	if len(xs) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	minX, maxX := minMax(xs)
	minY, maxY := minMax(ys)
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols))
	}
	for i := range xs {
		c := int(float64(cols-1) * (xs[i] - minX) / (maxX - minX))
		r := int(float64(rows-1) * (ys[i] - minY) / (maxY - minY))
		grid[rows-1-r][c] = '*'
	}
	fmt.Fprintf(&b, "y: %.3g .. %.3g\n", minY, maxY)
	for _, row := range grid {
		fmt.Fprintf(&b, "|%s\n", string(row))
	}
	fmt.Fprintf(&b, "+%s\n", strings.Repeat("-", cols))
	fmt.Fprintf(&b, " x: %.3g .. %.3g\n", minX, maxX)
	return b.String()
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// CDFPlot renders (x, P) pairs as two aligned columns plus a coarse curve —
// used for Figure 4's precision-loss CDFs.
func CDFPlot(title string, xs, ps []float64, width int) string {
	if len(xs) != len(ps) {
		panic("report: xs/ps length mismatch")
	}
	if width <= 0 {
		width = 40
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for i := range xs {
		n := int(math.Round(float64(width) * ps[i]))
		fmt.Fprintf(&b, "%12.4g  %s %.3f\n", xs[i], strings.Repeat("#", n), ps[i])
	}
	return b.String()
}

// Heatmap renders a matrix with row/column labels, values formatted to 2
// decimals — used for Figure 6's per-setting pattern proportions.
func Heatmap(title string, rowLabels, colLabels []string, values [][]float64) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	w := 7
	maxRL := 0
	for _, l := range rowLabels {
		if len(l) > maxRL {
			maxRL = len(l)
		}
	}
	b.WriteString(pad("", maxRL))
	for _, c := range colLabels {
		b.WriteString("  " + pad(c, w))
	}
	b.WriteByte('\n')
	for i, rl := range rowLabels {
		b.WriteString(pad(rl, maxRL))
		for j := range colLabels {
			v := math.NaN()
			if i < len(values) && j < len(values[i]) {
				v = values[i][j]
			}
			cell := "   -"
			if !math.IsNaN(v) {
				cell = fmt.Sprintf("%.3f", v)
			}
			b.WriteString("  " + pad(cell, w))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Percent formats a fraction as a percentage.
func Percent(f float64) string { return fmt.Sprintf("%.3f%%", f*100) }

// PerTenThousand formats a rate in the paper's ‱ unit.
func PerTenThousand(f float64) string { return fmt.Sprintf("%.3f‱", f*1e4) }
