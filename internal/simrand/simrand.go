// Package simrand provides the deterministic randomness used throughout the
// simulation. Every random decision flows from a Source seeded explicitly,
// and independent substreams are derived by hashing string keys, so any
// experiment is exactly reproducible from its seed regardless of the order
// in which other components consume randomness.
package simrand

import (
	"math"
)

// Source is a deterministic pseudo-random number generator based on
// SplitMix64 (Steele et al., "Fast splittable pseudorandom number
// generators"). It is small, fast, passes BigCrush, and — crucially for a
// simulation — is trivially splittable into independent substreams.
//
// A Source is not safe for concurrent use; derive one substream per
// goroutine instead.
type Source struct {
	state uint64
	// seed is the immutable creation seed; Derive hashes keys against it
	// rather than against the advancing state, so derivation is stable
	// regardless of how much randomness the parent has consumed.
	seed uint64
	// spare holds a cached second normal variate from the Box-Muller
	// transform.
	spare    float64
	hasSpare bool
	// block, when non-nil, buffers pre-drawn Uint64 values (see SetBlock):
	// Uint64 serves block[bpos:] and refills the buffer in one tight loop
	// when it runs dry. The observed sequence is identical to unbuffered
	// draws; only the raw generator state runs ahead by the unserved tail.
	block []uint64
	bpos  int
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed, seed: seed}
}

// golden is the SplitMix64 increment (floor(2^64/phi), odd).
const golden = 0x9E3779B97F4A7C15

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	if s.block != nil {
		if s.bpos == len(s.block) {
			s.fillRaw(s.block)
			s.bpos = 0
		}
		v := s.block[s.bpos]
		s.bpos++
		return v
	}
	s.state += golden
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// fillRaw fills dst with successive SplitMix64 outputs, hoisting the state
// into a local for the whole block. It bypasses any block buffer — it IS
// the refill primitive.
func (s *Source) fillRaw(dst []uint64) {
	st := s.state
	for i := range dst {
		st += golden
		z := st
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		dst[i] = z ^ (z >> 31)
	}
	s.state = st
}

// Uint64Block fills dst with the next len(dst) values of the stream —
// exactly the sequence len(dst) successive Uint64 calls would produce —
// amortizing per-call overhead by keeping the generator state in a
// register across the block.
func (s *Source) Uint64Block(dst []uint64) {
	if s.block != nil {
		// Buffered mode: serve through the buffer so the observed
		// sequence stays aligned with interleaved scalar draws.
		for i := range dst {
			dst[i] = s.Uint64()
		}
		return
	}
	s.fillRaw(dst)
}

// FloatBlock fills dst with the next len(dst) uniform values in [0, 1),
// consuming exactly the draws len(dst) successive Float64 calls would.
func (s *Source) FloatBlock(dst []float64) {
	if s.block != nil {
		for i := range dst {
			dst[i] = s.Float64()
		}
		return
	}
	st := s.state
	for i := range dst {
		st += golden
		z := st
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		dst[i] = float64((z^(z>>31))>>11) / (1 << 53)
	}
	s.state = st
}

// SetBlock puts the Source into buffered mode using buf as scratch: draws
// are served from buf and the buffer is refilled len(buf) values at a time
// via one tight loop. The sequence every consumer observes is identical to
// unbuffered operation; the only difference is that up to len(buf)-1
// pre-drawn values are discarded when the Source is re-derived or
// abandoned, so buffered mode is ONLY for discard-after-use streams (a
// per-run substream that is re-derived before its next use), never for a
// persistent stream whose future draws matter. SetBlock(nil) returns the
// Source to unbuffered mode. Re-deriving into the Source (DeriveInto)
// clears the buffer; callers re-apply SetBlock after each derivation.
func (s *Source) SetBlock(buf []uint64) {
	if len(buf) == 0 {
		s.block, s.bpos = nil, 0
		return
	}
	s.block = buf
	s.bpos = len(buf) // empty: first draw triggers a refill
}

// Derive returns an independent substream keyed by the given strings. The
// parent stream is not advanced, so the derived stream's values do not
// depend on how much randomness the parent has already produced.
func (s *Source) Derive(keys ...string) *Source {
	d := &Source{}
	s.DeriveInto(d, keys...)
	return d
}

// DeriveInto is Derive writing the substream into *dst in place, so a hot
// loop that derives one substream per iteration (the testcase runner) can
// reuse a scratch Source instead of allocating. dst is overwritten
// wholesale — any cached Box-Muller spare is discarded, exactly as a fresh
// Source carries none — and the produced stream is identical to Derive's.
// dst must not be shared across goroutines.
func (s *Source) DeriveInto(dst *Source, keys ...string) {
	h := s.seed ^ 0x51_7C_C1_B7_27_22_0A_95
	for _, k := range keys {
		for i := 0; i < len(k); i++ {
			h ^= uint64(k[i])
			h *= 0x100000001B3 // FNV-64 prime
		}
		h ^= 0xFF // key separator so ("ab","c") != ("a","bc")
		h *= 0x100000001B3
	}
	// Run the mixed hash through one SplitMix64 step so poor keys still
	// yield well-distributed states.
	*dst = Source{state: h}
	dst.state = dst.Uint64()
	dst.seed = dst.state
}

// DeriveIntoBytes is DeriveInto with one additional trailing key supplied
// as raw bytes, so a caller that formats the final key into a reusable
// buffer (the runner's virtual-clock stamp) avoids the string allocation.
// The produced stream is identical to
// DeriveInto(dst, append(keys, string(tail))...).
func (s *Source) DeriveIntoBytes(dst *Source, tail []byte, keys ...string) {
	h := s.seed ^ 0x51_7C_C1_B7_27_22_0A_95
	for _, k := range keys {
		for i := 0; i < len(k); i++ {
			h ^= uint64(k[i])
			h *= 0x100000001B3
		}
		h ^= 0xFF
		h *= 0x100000001B3
	}
	for i := 0; i < len(tail); i++ {
		h ^= uint64(tail[i])
		h *= 0x100000001B3
	}
	h ^= 0xFF
	h *= 0x100000001B3
	*dst = Source{state: h}
	dst.state = dst.Uint64()
	dst.seed = dst.state
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("simrand: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling would be overkill
	// here; modulo bias for n << 2^64 is negligible for simulation use,
	// but use multiply-shift to avoid it anyway.
	hi, _ := mul64(s.Uint64(), uint64(n))
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xFFFFFFFF
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a0 * b0
	lo = t & mask
	c := t >> 32
	t = a1*b0 + c
	c = t >> 32
	m := t & mask
	t = a0*b1 + m
	lo |= (t & mask) << 32
	hi = a1*b1 + c + t>>32
	return hi, lo
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Range returns a uniform value in [lo, hi).
func (s *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Norm returns a normally distributed value with the given mean and
// standard deviation, via the Box-Muller transform.
func (s *Source) Norm(mean, stddev float64) float64 {
	if s.hasSpare {
		s.hasSpare = false
		return mean + stddev*s.spare
	}
	var u, v, r2 float64
	for {
		u = 2*s.Float64() - 1
		v = 2*s.Float64() - 1
		r2 = u*u + v*v
		if r2 > 0 && r2 < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(r2) / r2)
	s.spare = v * f
	s.hasSpare = true
	return mean + stddev*u*f
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (s *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("simrand: Exp with non-positive rate")
	}
	// 1-Float64() is in (0,1], avoiding log(0).
	return -math.Log(1-s.Float64()) / rate
}

// Poisson returns a Poisson-distributed count with the given mean. For
// small means it uses Knuth's product method; for large means a
// normal approximation with continuity correction (adequate for counting
// simulated SDC events).
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= s.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	n := s.Norm(mean, math.Sqrt(mean))
	if n < 0 {
		return 0
	}
	return int(n + 0.5)
}

// LogUniform returns a value whose base-10 logarithm is uniform in
// [log10(lo), log10(hi)). Both bounds must be positive.
func (s *Source) LogUniform(lo, hi float64) float64 {
	if lo <= 0 || hi <= lo {
		panic("simrand: LogUniform requires 0 < lo < hi")
	}
	return math.Pow(10, s.Range(math.Log10(lo), math.Log10(hi)))
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher-Yates).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders n elements using the provided swap
// function (same contract as math/rand.Shuffle).
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// WeightedChoice returns an index in [0, len(weights)) drawn proportionally
// to the (non-negative) weights. It panics if all weights are zero or the
// slice is empty.
func (s *Source) WeightedChoice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("simrand: negative weight")
		}
		total += w
	}
	if total == 0 {
		panic("simrand: WeightedChoice with zero total weight")
	}
	x := s.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// PickN returns k distinct indices uniformly sampled from [0, n) in random
// order. It panics if k > n.
func (s *Source) PickN(n, k int) []int {
	if k > n {
		panic("simrand: PickN with k > n")
	}
	return s.Perm(n)[:k]
}
