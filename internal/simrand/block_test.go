package simrand

import "testing"

// TestUint64BlockMatchesStepped pins the batched-draw contract: one
// Uint64Block call consumes exactly the draw sequence N scalar Uint64
// calls would, and the source state afterwards is identical.
func TestUint64BlockMatchesStepped(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 257} {
		a := New(42)
		b := New(42)
		want := make([]uint64, n)
		for i := range want {
			want[i] = a.Uint64()
		}
		got := make([]uint64, n)
		b.Uint64Block(got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: block[%d] = %#x, stepped = %#x", n, i, got[i], want[i])
			}
		}
		if a.Uint64() != b.Uint64() {
			t.Fatalf("n=%d: state diverged after block fill", n)
		}
	}
}

func TestFloatBlockMatchesStepped(t *testing.T) {
	a := New(99)
	b := New(99)
	want := make([]float64, 100)
	for i := range want {
		want[i] = a.Float64()
	}
	got := make([]float64, 100)
	b.FloatBlock(got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("block[%d] = %v, stepped = %v", i, got[i], want[i])
		}
	}
	if a.Float64() != b.Float64() {
		t.Fatal("state diverged after float block fill")
	}
}

// TestSetBlockSequenceIdentical runs a mixed draw script (every scalar
// draw kind plus interleaved block fills) against a buffered and an
// unbuffered source and requires the observed values to match exactly:
// buffered mode must be invisible to consumers.
func TestSetBlockSequenceIdentical(t *testing.T) {
	script := func(s *Source) []float64 {
		var out []float64
		for i := 0; i < 200; i++ {
			switch i % 7 {
			case 0:
				out = append(out, float64(s.Uint64()>>32))
			case 1:
				out = append(out, s.Float64())
			case 2:
				if s.Bool(0.4) {
					out = append(out, 1)
				} else {
					out = append(out, 0)
				}
			case 3:
				out = append(out, float64(s.Intn(1000)))
			case 4:
				out = append(out, s.Norm(10, 3))
			case 5:
				out = append(out, float64(s.Poisson(4.5)))
			default:
				blk := make([]float64, 5)
				s.FloatBlock(blk)
				out = append(out, blk...)
			}
		}
		return out
	}
	plain := New(7)
	buffered := New(7)
	buffered.SetBlock(make([]uint64, 32))
	want := script(plain)
	got := script(buffered)
	if len(got) != len(want) {
		t.Fatalf("length mismatch: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("draw %d: buffered %v, plain %v", i, got[i], want[i])
		}
	}
}

// TestSetBlockClearedByDerive pins that DeriveInto resets buffered mode
// (the struct is overwritten wholesale), so a reused scratch source
// cannot leak one run's pre-drawn tail into the next derivation.
func TestSetBlockClearedByDerive(t *testing.T) {
	parent := New(3)
	var scratch Source
	parent.DeriveInto(&scratch, "a")
	scratch.SetBlock(make([]uint64, 16))
	_ = scratch.Uint64() // force a refill so the buffer holds live values

	var fresh Source
	parent.DeriveInto(&fresh, "b")
	parent.DeriveInto(&scratch, "b")
	if scratch.block != nil {
		t.Fatal("DeriveInto left the block buffer attached")
	}
	for i := 0; i < 10; i++ {
		if scratch.Uint64() != fresh.Uint64() {
			t.Fatalf("draw %d diverged after re-derivation", i)
		}
	}
}

// TestDeriveIntoBytesMatchesDeriveInto pins that the byte-tail variant
// hashes exactly like DeriveInto with the tail as a final string key.
func TestDeriveIntoBytesMatchesDeriveInto(t *testing.T) {
	parent := New(12345)
	cases := []struct {
		keys []string
		tail string
	}{
		{[]string{"run", "cpu-7", "tc-3"}, "1m30s"},
		{[]string{"run"}, ""},
		{nil, "5s"},
		{[]string{"a", "b"}, "µ±ß"}, // multi-byte UTF-8 in the tail
	}
	for _, c := range cases {
		var a, b Source
		parent.DeriveInto(&a, append(append([]string{}, c.keys...), c.tail)...)
		parent.DeriveIntoBytes(&b, []byte(c.tail), c.keys...)
		for i := 0; i < 8; i++ {
			if a.Uint64() != b.Uint64() {
				t.Fatalf("keys=%v tail=%q: draw %d diverged", c.keys, c.tail, i)
			}
		}
	}
}

func BenchmarkUint64Block(b *testing.B) {
	s := New(1)
	buf := make([]uint64, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Uint64Block(buf)
	}
}

func BenchmarkUint64Stepped(b *testing.B) {
	s := New(1)
	buf := make([]uint64, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := range buf {
			buf[j] = s.Uint64()
		}
	}
}
