package simrand

import (
	"sync"
	"testing"
)

// TestSubstreamsRaceFreeAcrossGoroutines exercises the Source-per-goroutine
// rule that the srcshare analyzer enforces statically (see internal/lint):
// two substreams Derived from one parent are independent owned states, so
// two goroutines drawing from them concurrently are race-free under -race —
// and, because Derive is keyed rather than order-sensitive, each goroutine's
// draws are bit-for-bit the same as a sequential replay of its substream.
//
// The forbidden counterpart — both goroutines sharing the parent Source —
// is deliberately NOT runnable here (it is a real data race); it lives in
// internal/lint/testdata/src/srcshare, where the analyzer's golden test
// proves it is flagged.
func TestSubstreamsRaceFreeAcrossGoroutines(t *testing.T) {
	const draws = 10000

	// Sequential reference: replay each substream on its own.
	replay := func(key string) []uint64 {
		s := New(424242).Derive("worker", key)
		out := make([]uint64, draws)
		for i := range out {
			out[i] = s.Uint64()
		}
		return out
	}
	wantA, wantB := replay("a"), replay("b")

	parent := New(424242)
	subA := parent.Derive("worker", "a")
	subB := parent.Derive("worker", "b")

	gotA := make([]uint64, draws)
	gotB := make([]uint64, draws)
	var wg sync.WaitGroup
	for _, st := range []struct {
		src *Source
		out []uint64
	}{{subA, gotA}, {subB, gotB}} {
		wg.Add(1)
		go func(src *Source, out []uint64) {
			defer wg.Done()
			for i := range out {
				out[i] = src.Uint64()
			}
		}(st.src, st.out)
	}
	wg.Wait()

	for i := range wantA {
		if gotA[i] != wantA[i] || gotB[i] != wantB[i] {
			t.Fatalf("draw %d diverged from sequential replay: got (%#x, %#x), want (%#x, %#x)",
				i, gotA[i], gotB[i], wantA[i], wantB[i])
		}
	}

	// The two substreams must also be distinct streams, or "independence"
	// would be vacuous.
	same := 0
	for i := range wantA {
		if wantA[i] == wantB[i] {
			same++
		}
	}
	if same > draws/100 {
		t.Fatalf("substreams 'a' and 'b' agree on %d/%d draws; Derive keys are not separating streams", same, draws)
	}
}
