package simrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical values", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	parent := New(7)
	d1 := parent.Derive("thermal", "pkg0")
	// Consuming parent randomness must not change what a later Derive
	// with the same keys produces.
	for i := 0; i < 10; i++ {
		parent.Uint64()
	}
	d2 := parent.Derive("thermal", "pkg0")
	for i := 0; i < 100; i++ {
		if d1.Uint64() != d2.Uint64() {
			t.Fatalf("derived streams with same keys diverged at step %d", i)
		}
	}
}

func TestDeriveKeySeparation(t *testing.T) {
	parent := New(7)
	a := parent.Derive("ab", "c")
	b := parent.Derive("a", "bc")
	if a.Uint64() == b.Uint64() {
		t.Error("key boundary collision: (ab,c) == (a,bc)")
	}
}

func TestDeriveDistinctKeys(t *testing.T) {
	parent := New(7)
	a := parent.Derive("x")
	b := parent.Derive("y")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("distinct keys share %d values", same)
	}
}

func TestFloat64Bounds(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn bucket %d count %d far from uniform 10000", i, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	s := New(6)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Norm(10, 3)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("Norm mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Errorf("Norm stddev = %v, want ~3", math.Sqrt(variance))
	}
}

func TestExpMean(t *testing.T) {
	s := New(8)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.Exp(2)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Exp(2) mean = %v, want ~0.5", mean)
	}
}

func TestPoissonMoments(t *testing.T) {
	for _, mean := range []float64{0.5, 3, 12, 50, 200} {
		s := New(uint64(100 + mean))
		const n = 50000
		sum, sumsq := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := float64(s.Poisson(mean))
			sum += v
			sumsq += v * v
		}
		m := sum / n
		variance := sumsq/n - m*m
		if math.Abs(m-mean) > 0.05*mean+0.1 {
			t.Errorf("Poisson(%v) mean = %v", mean, m)
		}
		if math.Abs(variance-mean) > 0.1*mean+0.3 {
			t.Errorf("Poisson(%v) variance = %v", mean, variance)
		}
	}
}

func TestPoissonZeroMean(t *testing.T) {
	s := New(1)
	if got := s.Poisson(0); got != 0 {
		t.Errorf("Poisson(0) = %d", got)
	}
	if got := s.Poisson(-1); got != 0 {
		t.Errorf("Poisson(-1) = %d", got)
	}
}

func TestLogUniformRange(t *testing.T) {
	s := New(9)
	for i := 0; i < 10000; i++ {
		v := s.LogUniform(0.01, 100)
		if v < 0.01 || v >= 100 {
			t.Fatalf("LogUniform out of range: %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(10)
	f := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := s.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeightedChoiceDistribution(t *testing.T) {
	s := New(11)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[s.WeightedChoice(weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
}

func TestWeightedChoicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("WeightedChoice with zero weights did not panic")
		}
	}()
	New(1).WeightedChoice([]float64{0, 0})
}

func TestPickN(t *testing.T) {
	s := New(12)
	got := s.PickN(10, 4)
	if len(got) != 4 {
		t.Fatalf("PickN returned %d values", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("PickN invalid sample %v", got)
		}
		seen[v] = true
	}
}

func TestBool(t *testing.T) {
	s := New(13)
	if s.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !s.Bool(1) {
		t.Error("Bool(1) returned false")
	}
	trues := 0
	for i := 0; i < 100000; i++ {
		if s.Bool(0.3) {
			trues++
		}
	}
	frac := float64(trues) / 100000
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v", frac)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	s := New(14)
	xs := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 21 {
		t.Errorf("Shuffle lost elements: %v", xs)
	}
}

func TestMul64(t *testing.T) {
	hi, lo := mul64(math.MaxUint64, math.MaxUint64)
	// (2^64-1)^2 = 2^128 - 2^65 + 1
	if hi != math.MaxUint64-1 || lo != 1 {
		t.Errorf("mul64 overflow case: hi=%x lo=%x", hi, lo)
	}
	hi, lo = mul64(1<<32, 1<<32)
	if hi != 1 || lo != 0 {
		t.Errorf("mul64(2^32,2^32): hi=%x lo=%x", hi, lo)
	}
}
