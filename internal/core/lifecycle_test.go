package core

import (
	"testing"
	"time"
)

// lifecycleConfig compresses the cadence so multi-round lifecycles fit in a
// test (the production 90-day period would need millions of online ticks).
func lifecycleConfig(horizonPeriods int) LifecycleConfig {
	cfg := DefaultConfig()
	cfg.RegularPeriod = 12 * time.Hour
	return LifecycleConfig{
		Farron:  cfg,
		App:     DefaultAppProfile(),
		Horizon: time.Duration(horizonPeriods) * cfg.RegularPeriod,
	}
}

func TestLifecycleHealthyProcessor(t *testing.T) {
	f := newEvalFixture(t)
	// A healthy processor: pre-production passes, several uneventful
	// rounds, always online, never decommissioned.
	proc := f.healthyRunner(t)
	fa := New(lifecycleConfig(4).Farron, proc, nil, nil)
	lc := NewLifecycle(lifecycleConfig(4), fa, f.rng.Derive("lc-healthy"))
	rep := lc.Run()
	if rep.Deprecated || rep.MaskedCores != 0 {
		t.Errorf("healthy processor decommissioned: %+v", rep)
	}
	if rep.Detections != 0 {
		t.Errorf("healthy processor had %d detections", rep.Detections)
	}
	if rep.Rounds < 2 {
		t.Errorf("only %d rounds in 4 periods", rep.Rounds)
	}
	if rep.FinalState != StateOnline {
		t.Errorf("final state = %v", rep.FinalState)
	}
	if rep.OnlineTime <= 0 || rep.TestTime <= 0 {
		t.Errorf("times = online %v test %v", rep.OnlineTime, rep.TestTime)
	}
	// Test overhead across the whole lifecycle stays far below the
	// baseline's 0.488%... scaled: with a 12h period the ratio is
	// inflated, so just require testing ≪ online.
	if rep.TestTime > rep.OnlineTime {
		t.Errorf("test time %v exceeds online time %v", rep.TestTime, rep.OnlineTime)
	}
}

func TestLifecycleApparentDefect(t *testing.T) {
	f := newEvalFixture(t)
	r := f.runner(t, "FPU2")
	cfg := lifecycleConfig(3)
	fa := New(cfg.Farron, r, appFeaturesFor(f.profiles["FPU2"]), f.fleetActive())
	lc := NewLifecycle(cfg, fa, f.rng.Derive("lc-fpu2"))
	rep := lc.Run()
	// Pre-production catches FPU2 and masks core 8; the lifecycle then
	// proceeds online on the remaining cores.
	if rep.MaskedCores != 1 {
		t.Errorf("masked cores = %d, want 1", rep.MaskedCores)
	}
	if rep.Deprecated {
		t.Error("FPU2 deprecated despite single defective core")
	}
	if rep.FinalState != StateOnline {
		t.Errorf("final state = %v", rep.FinalState)
	}
	// The defective core is masked, so the app absorbs no SDCs.
	if rep.SDCs != 0 {
		t.Errorf("SDCs = %d after masking", rep.SDCs)
	}
	// Transitions must start at pre-production and include online.
	if rep.Transitions[0].State != StatePreProduction {
		t.Errorf("first transition = %v", rep.Transitions[0].State)
	}
	sawOnline := false
	for _, tr := range rep.Transitions {
		if tr.State == StateOnline {
			sawOnline = true
		}
	}
	if !sawOnline {
		t.Errorf("no online transition: %v", rep.Transitions)
	}
}

func TestLifecycleAllCoreDefectDeprecates(t *testing.T) {
	f := newEvalFixture(t)
	r := f.runner(t, "MIX1")
	cfg := lifecycleConfig(3)
	fa := New(cfg.Farron, r, appFeaturesFor(f.profiles["MIX1"]), f.fleetActive())
	lc := NewLifecycle(cfg, fa, f.rng.Derive("lc-mix1"))
	rep := lc.Run()
	if !rep.Deprecated || rep.FinalState != StateDeprecated {
		t.Errorf("MIX1 lifecycle ended %v (deprecated=%v)", rep.FinalState, rep.Deprecated)
	}
	if rep.Rounds != 0 {
		t.Errorf("deprecated processor ran %d regular rounds", rep.Rounds)
	}
	if rep.OnlineTime != 0 {
		t.Errorf("deprecated processor served %v online", rep.OnlineTime)
	}
}

func TestLifecycleClockAdvances(t *testing.T) {
	f := newEvalFixture(t)
	proc := f.healthyRunner(t)
	cfg := lifecycleConfig(2)
	fa := New(cfg.Farron, proc, nil, nil)
	lc := NewLifecycle(cfg, fa, f.rng.Derive("lc-clock"))
	rep := lc.Run()
	// The clock must cover at least the horizon (plus testing time).
	if lc.Clock().Now() < cfg.Horizon {
		t.Errorf("clock = %v, horizon %v", lc.Clock().Now(), cfg.Horizon)
	}
	if got := rep.OnlineTime + rep.TestTime; lc.Clock().Now() != got {
		t.Errorf("clock %v != online+test %v", lc.Clock().Now(), got)
	}
}

func TestLifecycleValidation(t *testing.T) {
	assertPanics(t, func() {
		NewLifecycle(LifecycleConfig{Farron: DefaultConfig()}, nil, nil)
	}, "zero horizon")
	bad := lifecycleConfig(1)
	bad.Farron.RegularPeriod = 0
	assertPanics(t, func() { NewLifecycle(bad, nil, nil) }, "zero period")
}
