package core

import (
	"time"

	"farron/internal/model"
	"farron/internal/simrand"
	"farron/internal/testkit"
)

// State is a processor's position in the Farron workflow (Figure 10).
type State int

const (
	// StatePreProduction: adequate testing before service.
	StatePreProduction State = iota
	// StateOnline: serving applications under triggering-condition
	// control, with regular tests.
	StateOnline
	// StateSuspected: a regular test failed; targeted in-depth testing
	// decides decommission scope.
	StateSuspected
	// StateDeprecated: the processor is out of service.
	StateDeprecated
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StatePreProduction:
		return "pre-production"
	case StateOnline:
		return "online"
	case StateSuspected:
		return "suspected"
	case StateDeprecated:
		return "deprecated"
	default:
		return "unknown"
	}
}

// Config parameterizes Farron.
type Config struct {
	Boundary BoundaryConfig
	Planner  PlannerConfig
	// RegularPeriod is the interval between regular test rounds (both
	// Farron and the baseline test every three months).
	RegularPeriod time.Duration
	// PreProdPerTestcase is the adequate pre-production duration per
	// testcase.
	PreProdPerTestcase time.Duration
	// TargetedPerTestcase is the per-testcase duration of in-depth
	// suspected-state validation runs.
	TargetedPerTestcase time.Duration
	// DisableBurnIn turns off the burn-in testing environment (ablation
	// knob: Section 7.1 argues burn-in is needed to cover the
	// application execution temperature).
	DisableBurnIn bool
}

// DefaultConfig returns the evaluation configuration.
func DefaultConfig() Config {
	return Config{
		Boundary:            DefaultBoundaryConfig(),
		Planner:             DefaultPlannerConfig(),
		RegularPeriod:       90 * 24 * time.Hour,
		PreProdPerTestcase:  2 * time.Minute,
		TargetedPerTestcase: 2 * time.Minute,
	}
}

// RoundReport summarizes one test round (pre-production, regular or
// targeted).
type RoundReport struct {
	// DetectedTestcases are testcase IDs that observed at least one SDC.
	DetectedTestcases map[string]bool
	// FailedCores are physical cores that produced SDCs.
	FailedCores map[int]bool
	// Duration is total test time consumed.
	Duration time.Duration
	// MaxTempC is the hottest core temperature reached while testing.
	MaxTempC float64
	// Records carries every SDC observed.
	Records []model.SDCRecord
}

func newRoundReport() *RoundReport {
	return &RoundReport{
		DetectedTestcases: map[string]bool{},
		FailedCores:       map[int]bool{},
	}
}

func (r *RoundReport) absorb(res testkit.RunResult) {
	r.Duration += res.Duration
	if res.MaxTempC > r.MaxTempC {
		r.MaxTempC = res.MaxTempC
	}
	if res.Failed {
		r.DetectedTestcases[res.TestcaseID] = true
		// Compiled runs expose the columnar form: scan the contiguous
		// core column instead of striding through row structs.
		if cols := res.Columns; cols != nil {
			for _, c := range cols.Core {
				r.FailedCores[c] = true
			}
		} else {
			for _, rec := range res.Records {
				r.FailedCores[rec.Core] = true
			}
		}
	}
	// Row values are copied out of the run's arena, so the report owns
	// its records.
	r.Records = append(r.Records, res.Records...)
}

// Coverage returns the fraction of known errors (failing testcases) the
// round detected — Figure 11's metric: "the ratio of detected errors to the
// total known errors in the faulty processor".
func (r *RoundReport) Coverage(knownErrs []string) float64 {
	if len(knownErrs) == 0 {
		return 1
	}
	hit := 0
	for _, id := range knownErrs {
		if r.DetectedTestcases[id] {
			hit++
		}
	}
	return float64(hit) / float64(len(knownErrs))
}

// TestOverhead converts a round duration into Table 4's testing overhead:
// round duration over the regular period.
func TestOverhead(round, period time.Duration) float64 {
	if period <= 0 {
		return 0
	}
	return round.Seconds() / period.Seconds()
}

// Farron orchestrates mitigation for one processor.
type Farron struct {
	cfg      Config
	runner   *testkit.Runner
	planner  *Planner
	boundary *Boundary
	pool     *ReliablePool
	entry    *PoolEntry
	state    State
}

// New creates a Farron instance for the runner's processor. appFeatures
// lists the protected application's processor features; fleetActive seeds
// the active-priority testcases from fleet history (Observation 11's
// lesson: history should guide testing).
func New(cfg Config, runner *testkit.Runner, appFeatures []model.Feature, fleetActive []string) *Farron {
	f := &Farron{
		cfg:      cfg,
		runner:   runner,
		planner:  NewPlanner(cfg.Planner, runner.Suite(), appFeatures),
		boundary: NewBoundary(cfg.Boundary),
		pool:     NewReliablePool(),
		state:    StatePreProduction,
	}
	f.entry = f.pool.Admit(runner.Processor())
	for _, id := range fleetActive {
		f.planner.MarkActive(id)
	}
	return f
}

// State returns the workflow state.
func (f *Farron) State() State { return f.state }

// Planner exposes the testcase planner (for inspection).
func (f *Farron) Planner() *Planner { return f.planner }

// Boundary exposes the adaptive temperature boundary.
func (f *Farron) Boundary() *Boundary { return f.boundary }

// Entry exposes the processor's reliable-pool entry.
func (f *Farron) Entry() *PoolEntry { return f.entry }

// PreProduction runs the adequate pre-production tests: every testcase,
// full duration, all cores simultaneously with burn-in heat. Detected
// testcases become suspected; failing cores go through the decommission
// policy. The processor transitions to Online (or Deprecated).
func (f *Farron) PreProduction() *RoundReport {
	rep := newRoundReport()
	cores := f.entry.ReliableCores()
	if len(cores) == 0 {
		f.state = StateDeprecated
		return rep
	}
	for _, tc := range f.runner.Suite().Testcases {
		res := f.runner.RunParallel(tc, f.entry.ReliableCores(), testkit.RunOpts{
			Duration: f.cfg.PreProdPerTestcase,
			BurnIn:   true,
		})
		rep.absorb(res)
		if res.Failed {
			f.planner.MarkSuspected(tc.ID)
		}
	}
	f.applyCoreFailures(rep)
	if f.entry.Deprecated() {
		f.state = StateDeprecated
	} else {
		f.state = StateOnline
	}
	return rep
}

// RegularRound runs one prioritized regular test round (Section 7.1):
// burn-in testing environment, suspected+active testcases at full duration
// (scaled by the adaptive boundary), the rest best-effort. A detection
// moves the workflow to Suspected.
func (f *Farron) RegularRound() *RoundReport {
	rep := newRoundReport()
	cores := f.entry.ReliableCores()
	if len(cores) == 0 {
		f.state = StateDeprecated
		return rep
	}
	for _, alloc := range f.planner.Plan(f.boundary.TestDurationScale()) {
		res := f.runner.RunParallel(alloc.Testcase, f.entry.ReliableCores(), testkit.RunOpts{
			Duration: alloc.Duration,
			BurnIn:   !f.cfg.DisableBurnIn,
		})
		rep.absorb(res)
		if res.Failed {
			f.planner.MarkSuspected(alloc.Testcase.ID)
		}
	}
	if len(rep.DetectedTestcases) > 0 {
		f.state = StateSuspected
	}
	return rep
}

// TargetedValidation is the Suspected-state in-depth pass: accumulated
// suspected testcases run per core at adequate duration, validating each
// remaining core cheaply (Observation 4: sibling cores fail the same
// testcases). Failing cores are masked or the processor deprecated; the
// survivor returns Online.
func (f *Farron) TargetedValidation() *RoundReport {
	rep := newRoundReport()
	suspected := f.planner.SuspectedIDs()
	for _, core := range f.entry.ReliableCores() {
		for _, id := range suspected {
			tc := f.runner.Suite().ByID(id)
			res := f.runner.RunParallel(tc, []int{core}, testkit.RunOpts{
				Duration: f.cfg.TargetedPerTestcase,
				BurnIn:   true,
			})
			rep.absorb(res)
		}
	}
	f.applyCoreFailures(rep)
	validated := map[int]bool{}
	for _, core := range f.entry.ReliableCores() {
		if !rep.FailedCores[core] {
			validated[core] = true
			f.entry.RecordCoreValidated(core)
		}
	}
	if f.entry.Deprecated() {
		f.state = StateDeprecated
	} else {
		f.state = StateOnline
	}
	return rep
}

// applyCoreFailures pushes a report's failed cores through the
// decommission policy.
func (f *Farron) applyCoreFailures(rep *RoundReport) {
	for core := range rep.FailedCores {
		if f.entry.Deprecated() {
			return
		}
		if !f.entry.FailedCores[core] {
			f.entry.RecordCoreFailure(core)
		}
	}
}

// AppProfile describes the protected application's execution behaviour for
// the online simulation.
type AppProfile struct {
	// BaseUtil and BurstUtil are steady and burst core utilizations.
	BaseUtil, BurstUtil float64
	// BurstProb is the per-sample probability a burst episode starts;
	// BurstTicks is its length in samples.
	BurstProb  float64
	BurstTicks int
	// Intensity is the workload's heat intensity.
	Intensity float64
	// Stress is the application's usage stress on defective instructions
	// (how hard it leans on the vulnerable feature).
	Stress float64
	// Cores is how many reliable cores the application occupies
	// (0 = all). Production services are provisioned per-core; the
	// evaluation workload runs on a handful.
	Cores int
}

// DefaultAppProfile models the toolchain-simulated impacted workload of the
// evaluation: moderate sustained load with occasional hot bursts.
func DefaultAppProfile() AppProfile {
	return AppProfile{
		BaseUtil:   0.6,
		BurstUtil:  1.0,
		BurstProb:  0.00008,
		BurstTicks: 12,
		Intensity:  1.0,
		Stress:     0.5,
		Cores:      4,
	}
}

// OnlineReport summarizes an online-operation simulation.
type OnlineReport struct {
	Backoff BackoffStats
	// SDCs is the number of silent corruptions the application
	// experienced.
	SDCs int
	// BoundaryFinalC is the adaptive boundary after the run.
	BoundaryFinalC float64
	// BoundaryRaises counts adaptations.
	BoundaryRaises int
}

// onlineTick is the monitoring sample interval.
const onlineTick = 10 * time.Second

// Online simulates serving the application for the given wall time on the
// processor's reliable cores, with Farron's temperature control active
// (protect=true) or disabled (protect=false, the unprotected comparison).
// It returns backoff accounting and the SDC count the application absorbed.
func (f *Farron) Online(dur time.Duration, app AppProfile, protect bool, rng *simrand.Source) OnlineReport {
	var rep OnlineReport
	cores := f.entry.ReliableCores()
	if len(cores) == 0 {
		return rep
	}
	if app.Cores > 0 && app.Cores < len(cores) {
		// Prefer placing the app on defective-but-undetected cores:
		// the adversarial case temperature control must protect.
		chosen := make([]int, 0, app.Cores)
		for _, c := range cores {
			if f.runner.Processor().CoreDefective(c) {
				chosen = append(chosen, c)
			}
		}
		for _, c := range cores {
			if len(chosen) >= app.Cores {
				break
			}
			if !f.runner.Processor().CoreDefective(c) {
				chosen = append(chosen, c)
			}
		}
		cores = chosen[:app.Cores]
	}
	pkg := f.runner.Thermal()
	proc := f.runner.Processor()
	pkg.ClearLoads()

	burstLeft := 0
	backingOff := false
	for elapsed := time.Duration(0); elapsed < dur; elapsed += onlineTick {
		// Decide this tick's utilization.
		util := app.BaseUtil
		if burstLeft > 0 {
			util = app.BurstUtil
			burstLeft--
		} else if rng.Bool(app.BurstProb) {
			burstLeft = app.BurstTicks
			util = app.BurstUtil
		}
		if backingOff {
			// Workload backoff: throttle hard until the
			// temperature drops below the boundary.
			util *= 0.1
		}
		for _, c := range cores {
			pkg.SetLoad(c, util, app.Intensity)
		}
		pkg.Step(onlineTick)

		// Hottest reliable core drives the controller.
		var temp float64
		for _, c := range cores {
			if t := pkg.CoreTempC(c); t > temp {
				temp = t
			}
		}
		action := ActionNone
		if protect {
			action = f.boundary.Record(temp)
			backingOff = action == ActionBackoff || action == ActionCooling
		}
		rep.Backoff.Observe(action, onlineTick, temp)

		// SDC exposure: each defect on a reliable core fires at its
		// rate under the application's stress and the current
		// temperature.
		minutes := onlineTick.Minutes()
		for _, d := range proc.Defects() {
			for _, c := range cores {
				rate := d.RatePerMin(c, pkg.CoreTempC(c), app.Stress*util)
				rep.SDCs += rng.Poisson(rate * minutes)
			}
		}
	}
	pkg.ClearLoads()
	rep.BoundaryFinalC = f.boundary.Current()
	rep.BoundaryRaises = f.boundary.Raises()
	return rep
}

// Baseline is the existing Alibaba Cloud strategy (Section 7): every three
// months, all 633 testcases sequentially with equal resources — the
// per-testcase minute is divided across cores, tested one core at a time,
// with no burn-in — and any detection deprecates the whole processor.
type Baseline struct {
	runner *testkit.Runner
	// PerTestcase is the equal allocation (60 s in the evaluation, i.e.
	// a 10.55 h round).
	PerTestcase time.Duration
}

// NewBaseline creates the baseline strategy.
func NewBaseline(runner *testkit.Runner, perTestcase time.Duration) *Baseline {
	return &Baseline{runner: runner, PerTestcase: perTestcase}
}

// RegularRound runs one baseline round and reports detections. Any
// detection means the processor is deprecated whole.
func (b *Baseline) RegularRound() *RoundReport {
	rep := newRoundReport()
	proc := b.runner.Processor()
	nCores := proc.PhysCores
	perCore := b.PerTestcase / time.Duration(nCores)
	if perCore <= 0 {
		perCore = time.Second
	}
	for _, tc := range b.runner.Suite().Testcases {
		for c := 0; c < nCores; c++ {
			res := b.runner.Run(tc, testkit.RunOpts{
				Core:     c,
				Duration: perCore,
			})
			rep.absorb(res)
		}
	}
	if len(rep.DetectedTestcases) > 0 {
		proc.Deprecate()
	}
	return rep
}
