package core

import (
	"testing"

	"farron/internal/cpu"
)

func TestPoolAdmitAndReliableCores(t *testing.T) {
	pool := NewReliablePool()
	proc := cpu.NewHealthy("p1", "M2", 8, 2)
	e := pool.Admit(proc)
	if pool.Size() != 1 || pool.Entry("p1") != e {
		t.Fatal("admit bookkeeping wrong")
	}
	if got := e.ReliableCores(); len(got) != 8 {
		t.Errorf("reliable cores = %v", got)
	}
}

func TestRecordCoreFailureMasks(t *testing.T) {
	pool := NewReliablePool()
	proc := cpu.NewHealthy("p2", "M2", 8, 2)
	e := pool.Admit(proc)
	if deprecated := e.RecordCoreFailure(3); deprecated {
		t.Fatal("first failure deprecated the processor")
	}
	if !proc.Masked(3) {
		t.Error("failed core not masked")
	}
	cores := e.ReliableCores()
	if len(cores) != 7 {
		t.Errorf("reliable cores = %v", cores)
	}
	for _, c := range cores {
		if c == 3 {
			t.Error("failed core still reliable")
		}
	}
}

func TestThresholdDeprecation(t *testing.T) {
	pool := NewReliablePool()
	proc := cpu.NewHealthy("p3", "M2", 8, 2)
	e := pool.Admit(proc)
	e.RecordCoreFailure(0)
	e.RecordCoreFailure(1)
	if proc.Deprecated() {
		t.Fatal("deprecated at threshold, want above threshold")
	}
	if !e.RecordCoreFailure(2) {
		t.Fatal("third failure did not deprecate (>2 rule)")
	}
	if !proc.Deprecated() {
		t.Error("processor not deprecated")
	}
	if got := e.ReliableCores(); len(got) != 0 {
		t.Errorf("deprecated processor has reliable cores %v", got)
	}
}

func TestValidationBookkeeping(t *testing.T) {
	pool := NewReliablePool()
	proc := cpu.NewHealthy("p4", "M2", 8, 2)
	e := pool.Admit(proc)
	e.RecordCoreValidated(5)
	if !e.ValidatedCores[5] {
		t.Error("validation not recorded")
	}
	e.RecordCoreFailure(5)
	if e.ValidatedCores[5] {
		t.Error("failed core still validated")
	}
	// Validating a failed core is refused.
	e.RecordCoreValidated(5)
	if e.ValidatedCores[5] {
		t.Error("failed core re-validated")
	}
}

func TestPoolRemove(t *testing.T) {
	pool := NewReliablePool()
	proc := cpu.NewHealthy("p5", "M2", 4, 2)
	pool.Admit(proc)
	pool.Remove("p5")
	if pool.Size() != 0 || pool.Entry("p5") != nil {
		t.Error("remove failed")
	}
}

func TestDuplicateFailureIdempotent(t *testing.T) {
	pool := NewReliablePool()
	proc := cpu.NewHealthy("p6", "M2", 8, 2)
	e := pool.Admit(proc)
	e.RecordCoreFailure(1)
	e.FailedCores[1] = true
	e.RecordCoreFailure(1) // re-recording must not push toward deprecation
	e.RecordCoreFailure(2)
	if proc.Deprecated() {
		t.Error("duplicate failures triggered deprecation")
	}
}
