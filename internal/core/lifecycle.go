package core

import (
	"time"

	"farron/internal/sched"
	"farron/internal/simrand"
)

// LifecycleConfig parameterizes a long-horizon simulation of the Figure 10
// workflow: pre-production testing, online operation under temperature
// control, regular test rounds on a fixed cadence, and suspected-state
// validation after detections.
type LifecycleConfig struct {
	// Farron is the mitigation configuration (its RegularPeriod sets the
	// test cadence).
	Farron Config
	// App is the protected application's profile.
	App AppProfile
	// Horizon is total simulated wall time.
	Horizon time.Duration
}

// LifecycleReport aggregates a whole lifecycle run.
type LifecycleReport struct {
	// Rounds is the number of regular rounds executed.
	Rounds int
	// Detections counts rounds that found SDCs.
	Detections int
	// Validations counts suspected-state targeted passes.
	Validations int
	// TestTime is total time spent testing (pre-production + regular +
	// targeted).
	TestTime time.Duration
	// OnlineTime is total time serving the application.
	OnlineTime time.Duration
	// SDCs is corruptions absorbed by the application while online.
	SDCs int
	// Backoff aggregates temperature-control activity across the whole
	// online span.
	Backoff BackoffStats
	// FinalState is the workflow state at the horizon.
	FinalState State
	// MaskedCores and Deprecated snapshot the decommission outcome.
	MaskedCores int
	Deprecated  bool
	// Transitions logs (virtual time, state) pairs.
	Transitions []Transition
}

// Transition is one workflow state change.
type Transition struct {
	At    time.Duration
	State State
}

// Lifecycle drives a Farron instance through simulated months using the
// discrete-event clock: regular tests fire on their cadence; the processor
// serves the application in between; a detection routes through targeted
// validation before returning online.
//
// The model advances incrementally: Start runs pre-production, each
// StepRound consumes one online-span-plus-regular-round period, and Report
// snapshots the aggregate at any boundary. Run is the one-shot composition
// of those steps, so a caller stepping campaign by campaign (the continuous
// screening service) draws the exact sequence a one-shot run draws.
type Lifecycle struct {
	cfg     LifecycleConfig
	farron  *Farron
	clock   *sched.Clock
	rng     *simrand.Source
	report  LifecycleReport
	started bool
}

// NewLifecycle wraps a Farron instance.
func NewLifecycle(cfg LifecycleConfig, f *Farron, rng *simrand.Source) *Lifecycle {
	if cfg.Horizon <= 0 {
		panic("core: lifecycle needs a positive horizon")
	}
	if cfg.Farron.RegularPeriod <= 0 {
		panic("core: lifecycle needs a positive regular period")
	}
	return &Lifecycle{cfg: cfg, farron: f, clock: sched.NewClock(), rng: rng}
}

// Clock exposes the virtual clock (read-only use).
func (l *Lifecycle) Clock() *sched.Clock { return l.clock }

// Run executes the whole lifecycle and returns the aggregate report: Start,
// StepRound until done, Report. Byte-for-byte this is what stepping the
// same instance externally produces — the equivalence the incremental API
// is pinned against (internal/experiments TestLifecycleStepperMatchesRun).
func (l *Lifecycle) Run() LifecycleReport {
	l.Start()
	for l.StepRound() {
	}
	return l.Report()
}

// Start runs the pre-production phase: burn-in style testing before the
// processor enters service. It is idempotent; the first call consumes the
// pre-production randomness, later calls do nothing.
func (l *Lifecycle) Start() {
	if l.started {
		return
	}
	l.started = true
	l.transition(StatePreProduction)
	pre := l.farron.PreProduction()
	l.report.TestTime += pre.Duration
	l.clock.Advance(pre.Duration)
	l.transition(l.farron.State())
}

// Done reports whether the lifecycle has reached its horizon or the
// processor was deprecated; a done lifecycle draws no further randomness.
func (l *Lifecycle) Done() bool {
	if !l.started {
		return false
	}
	return l.clock.Now() >= l.cfg.Horizon || l.farron.State() == StateDeprecated
}

// StepRound advances the model by one period: an online span serving the
// application, then (horizon permitting) one regular test round with
// targeted validation after a detection. It returns false — consuming no
// randomness — once the lifecycle is done, so callers may drive it with a
// plain for loop or campaign by campaign from an external ticker.
func (l *Lifecycle) StepRound() bool {
	l.Start()
	if l.Done() {
		return false
	}
	period := l.cfg.Farron.RegularPeriod
	deadline := l.cfg.Horizon

	// Online until the next regular round (or the horizon).
	span := period
	if rem := deadline - l.clock.Now(); rem < span {
		span = rem
	}
	if span > 0 {
		online := l.farron.Online(span, l.cfg.App, true, l.rng.Derive("online", l.clock.Now().String()))
		l.report.OnlineTime += span
		l.report.SDCs += online.SDCs
		l.absorbBackoff(online.Backoff)
		l.clock.Advance(span)
	}
	if l.clock.Now() >= deadline {
		return true // horizon reached mid-period; next call reports done
	}

	// Regular round.
	round := l.farron.RegularRound()
	l.report.Rounds++
	l.report.TestTime += round.Duration
	l.clock.Advance(round.Duration)
	if len(round.DetectedTestcases) > 0 {
		l.report.Detections++
		l.transition(StateSuspected)
		val := l.farron.TargetedValidation()
		l.report.Validations++
		l.report.TestTime += val.Duration
		l.clock.Advance(val.Duration)
	}
	l.transition(l.farron.State())
	return true
}

// Report snapshots the aggregate at the current boundary. It may be called
// between steps — the returned value is a copy — and equals Run's return
// value once the lifecycle is done.
func (l *Lifecycle) Report() LifecycleReport {
	l.snapshot()
	return l.report
}

func (l *Lifecycle) transition(s State) {
	n := len(l.report.Transitions)
	if n > 0 && l.report.Transitions[n-1].State == s {
		return
	}
	l.report.Transitions = append(l.report.Transitions, Transition{At: l.clock.Now(), State: s})
}

func (l *Lifecycle) absorbBackoff(b BackoffStats) {
	l.report.Backoff.BackoffTime += b.BackoffTime
	l.report.Backoff.TotalTime += b.TotalTime
	l.report.Backoff.Events += b.Events
	if b.MaxTempC > l.report.Backoff.MaxTempC {
		l.report.Backoff.MaxTempC = b.MaxTempC
	}
}

func (l *Lifecycle) snapshot() {
	proc := l.farron.runner.Processor()
	l.report.FinalState = l.farron.State()
	l.report.MaskedCores = proc.MaskedCount()
	l.report.Deprecated = proc.Deprecated()
}
