package core

import (
	"testing"
	"time"

	"farron/internal/model"
	"farron/internal/simrand"
	"farron/internal/testkit"
)

func newTestSuite() *testkit.Suite {
	return testkit.NewSuite(simrand.New(3001))
}

func TestPlannerPriorities(t *testing.T) {
	s := newTestSuite()
	p := NewPlanner(DefaultPlannerConfig(), s, nil)
	tc := s.Testcases[0].ID
	if p.Priority(tc) != PriorityBasic {
		t.Error("default priority not basic")
	}
	p.MarkActive(tc)
	if p.Priority(tc) != PriorityActive {
		t.Error("MarkActive failed")
	}
	p.MarkSuspected(tc)
	if p.Priority(tc) != PrioritySuspected {
		t.Error("MarkSuspected failed")
	}
	// Active must not demote suspected.
	p.MarkActive(tc)
	if p.Priority(tc) != PrioritySuspected {
		t.Error("MarkActive demoted a suspected testcase")
	}
}

func TestPlanOrderingAndDurations(t *testing.T) {
	s := newTestSuite()
	cfg := DefaultPlannerConfig()
	p := NewPlanner(cfg, s, nil)
	p.MarkSuspected(s.Testcases[10].ID)
	p.MarkActive(s.Testcases[20].ID)
	plan := p.Plan(1)
	if len(plan) != testkit.SuiteSize {
		t.Fatalf("plan covers %d testcases", len(plan))
	}
	if plan[0].Testcase.ID != s.Testcases[10].ID || plan[0].Priority != PrioritySuspected {
		t.Errorf("plan head = %v/%v, want suspected first", plan[0].Testcase.ID, plan[0].Priority)
	}
	if plan[0].Duration != cfg.SuspectedDur {
		t.Errorf("suspected duration = %v", plan[0].Duration)
	}
	if plan[1].Testcase.ID != s.Testcases[20].ID || plan[1].Priority != PriorityActive {
		t.Errorf("second slot = %v/%v, want active", plan[1].Testcase.ID, plan[1].Priority)
	}
	for _, a := range plan[2:] {
		if a.Priority != PriorityBasic || a.Duration != cfg.BasicDur {
			t.Fatalf("tail slot %s priority %v duration %v", a.Testcase.ID, a.Priority, a.Duration)
		}
	}
}

func TestPlanAppFeatureFiltering(t *testing.T) {
	s := newTestSuite()
	p := NewPlanner(DefaultPlannerConfig(), s, []model.Feature{model.FeatureFPU})
	// Mark one FPU and one ALU testcase active.
	fpu := s.ByFeature(model.FeatureFPU)[0]
	alu := s.ByFeature(model.FeatureALU)[0]
	p.MarkActive(fpu.ID)
	p.MarkActive(alu.ID)
	plan := p.Plan(1)
	prio := map[string]Priority{}
	for _, a := range plan {
		prio[a.Testcase.ID] = a.Priority
	}
	if prio[fpu.ID] != PriorityActive {
		t.Error("app-matching active testcase not prioritized")
	}
	// The ALU testcase is active but its feature is unused by the app:
	// best-effort slot.
	for _, a := range plan {
		if a.Testcase.ID == alu.ID && a.Duration != DefaultPlannerConfig().BasicDur {
			t.Errorf("non-matching active testcase got %v", a.Duration)
		}
	}
	// Suspected testcases are always prioritized, app match or not.
	p.MarkSuspected(alu.ID)
	plan = p.Plan(1)
	if plan[0].Testcase.ID != alu.ID {
		t.Error("suspected non-matching testcase not first")
	}
}

func TestPlanDurationScale(t *testing.T) {
	s := newTestSuite()
	cfg := DefaultPlannerConfig()
	p := NewPlanner(cfg, s, nil)
	p.MarkSuspected(s.Testcases[0].ID)
	plan := p.Plan(2)
	if plan[0].Duration != 2*cfg.SuspectedDur {
		t.Errorf("scaled duration = %v", plan[0].Duration)
	}
	// Basic slots are not scaled (best-effort stays best-effort).
	if plan[5].Duration != cfg.BasicDur {
		t.Errorf("basic duration scaled to %v", plan[5].Duration)
	}
	// Non-positive scale falls back to 1.
	plan = p.Plan(0)
	if plan[0].Duration != cfg.SuspectedDur {
		t.Errorf("zero-scale duration = %v", plan[0].Duration)
	}
}

func TestFarronRoundMuchShorterThanBaseline(t *testing.T) {
	// The headline overhead claim: Farron ~1 h vs baseline 10.55 h.
	s := newTestSuite()
	p := NewPlanner(DefaultPlannerConfig(), s, []model.Feature{model.FeatureFPU})
	// A realistic history: ~70 fleet-active testcases, 3 suspected.
	for i, tc := range s.ByFeature(model.FeatureFPU) {
		if i >= 70 {
			break
		}
		p.MarkActive(tc.ID)
	}
	for i := 0; i < 3; i++ {
		p.MarkSuspected(s.ByFeature(model.FeatureFPU)[i].ID)
	}
	farron := PlanDuration(p.Plan(1))
	baseline := time.Duration(testkit.SuiteSize) * time.Minute
	if farron >= baseline/5 {
		t.Errorf("Farron round %v not ≪ baseline %v", farron, baseline)
	}
	if farron < 30*time.Minute || farron > 3*time.Hour {
		t.Errorf("Farron round %v outside the ~1h regime", farron)
	}
}

func TestSuspectedIDsOrdered(t *testing.T) {
	s := newTestSuite()
	p := NewPlanner(DefaultPlannerConfig(), s, nil)
	p.MarkSuspected(s.Testcases[30].ID)
	p.MarkSuspected(s.Testcases[5].ID)
	ids := p.SuspectedIDs()
	if len(ids) != 2 || ids[0] != s.Testcases[5].ID || ids[1] != s.Testcases[30].ID {
		t.Errorf("SuspectedIDs = %v", ids)
	}
}

func TestPriorityString(t *testing.T) {
	if PriorityBasic.String() != "basic" || PriorityActive.String() != "active" || PrioritySuspected.String() != "suspected" {
		t.Error("priority strings wrong")
	}
}
