package core

import (
	"sort"

	"farron/internal/cpu"
)

// MaxDefectiveCores is Farron's fine-grained decommission threshold: a
// processor with more than this many defective cores is deprecated whole
// (Section 7.1, following Observation 4's bimodal one-core/all-cores
// pattern); otherwise the defective cores are masked and the rest keep
// serving.
const MaxDefectiveCores = 2

// PoolEntry tracks one processor's standing in the reliable resource pool.
type PoolEntry struct {
	Proc *cpu.Processor
	// ValidatedCores are cores that passed targeted ("suspected") tests.
	ValidatedCores map[int]bool
	// FailedCores are cores confirmed defective.
	FailedCores map[int]bool
}

// ReliablePool manages unaffected cores of (possibly faulty) processors —
// the Hyrax-style fail-in-place substrate Farron uses instead of whole-
// processor deprecation.
type ReliablePool struct {
	entries map[string]*PoolEntry
}

// NewReliablePool returns an empty pool.
func NewReliablePool() *ReliablePool {
	return &ReliablePool{entries: map[string]*PoolEntry{}}
}

// Admit registers a processor, with all active cores provisionally
// reliable.
func (p *ReliablePool) Admit(proc *cpu.Processor) *PoolEntry {
	e := &PoolEntry{
		Proc:           proc,
		ValidatedCores: map[int]bool{},
		FailedCores:    map[int]bool{},
	}
	p.entries[proc.ID] = e
	return e
}

// Entry returns a processor's pool entry, or nil.
func (p *ReliablePool) Entry(id string) *PoolEntry { return p.entries[id] }

// Remove drops a processor from the pool (deprecation).
func (p *ReliablePool) Remove(id string) { delete(p.entries, id) }

// Size returns the number of pooled processors.
func (p *ReliablePool) Size() int { return len(p.entries) }

// ReliableCores returns a processor's in-service cores that are not
// confirmed defective, sorted.
func (e *PoolEntry) ReliableCores() []int {
	var out []int
	for _, c := range e.Proc.ActiveCores() {
		if !e.FailedCores[c] {
			out = append(out, c)
		}
	}
	sort.Ints(out)
	return out
}

// RecordCoreFailure marks a core defective and applies Farron's
// decommission policy: mask the core, or deprecate the whole processor once
// more than MaxDefectiveCores cores have failed. It returns true if the
// processor was deprecated.
func (e *PoolEntry) RecordCoreFailure(core int) bool {
	e.FailedCores[core] = true
	delete(e.ValidatedCores, core)
	if len(e.FailedCores) > MaxDefectiveCores {
		e.Proc.Deprecate()
		return true
	}
	e.Proc.MaskCore(core)
	return false
}

// RecordCoreValidated marks a core as having passed targeted tests.
func (e *PoolEntry) RecordCoreValidated(core int) {
	if !e.FailedCores[core] {
		e.ValidatedCores[core] = true
	}
}

// Deprecated reports whether the processor is out of service.
func (e *PoolEntry) Deprecated() bool { return e.Proc.Deprecated() }
