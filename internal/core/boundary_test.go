package core

import (
	"testing"
	"time"
)

func TestBoundaryLearnsNormalTemperature(t *testing.T) {
	b := NewBoundary(DefaultBoundaryConfig())
	start := b.Current()
	// Application normally runs at 58: most samples above the initial
	// 50 boundary, so it must rise past 58 and stop adapting.
	for i := 0; i < 2000; i++ {
		b.Record(58)
	}
	if b.Current() < 58 {
		t.Errorf("boundary = %v, want learned >= 58", b.Current())
	}
	if b.Current() > 62 {
		t.Errorf("boundary = %v, overshot normal temperature", b.Current())
	}
	if b.Raises() == 0 {
		t.Error("no raises recorded")
	}
	if b.Current() <= start {
		t.Error("boundary did not move")
	}
}

func TestBoundaryExcursionTriggersBackoff(t *testing.T) {
	b := NewBoundary(DefaultBoundaryConfig())
	// Learn a normal temperature of ~55.
	for i := 0; i < 2000; i++ {
		b.Record(55)
	}
	learned := b.Current()
	// A rare excursion above the boundary: backoff, not adaptation.
	got := b.Record(learned + 5)
	if got != ActionBackoff {
		t.Errorf("excursion action = %v, want backoff", got)
	}
	// Back under the boundary: no action.
	if got := b.Record(learned - 3); got != ActionNone {
		t.Errorf("normal action = %v", got)
	}
}

func TestBoundaryDoesNotExceedMax(t *testing.T) {
	cfg := DefaultBoundaryConfig()
	cfg.MaxC = 60
	b := NewBoundary(cfg)
	for i := 0; i < 5000; i++ {
		b.Record(80)
	}
	if b.Current() > 60 {
		t.Errorf("boundary %v exceeded max 60", b.Current())
	}
	// Above max the controller keeps backing off rather than adapting.
	if got := b.Record(80); got != ActionBackoff {
		t.Errorf("action at capped boundary = %v", got)
	}
}

func TestBoundaryCoolingAction(t *testing.T) {
	b := NewBoundary(DefaultBoundaryConfig())
	if got := b.Record(90); got != ActionCooling {
		t.Errorf("action at 90 = %v, want cooling", got)
	}
}

func TestBoundaryValidation(t *testing.T) {
	cfg := DefaultBoundaryConfig()
	cfg.Window = 0
	assertPanics(t, func() { NewBoundary(cfg) }, "zero window")
	cfg = DefaultBoundaryConfig()
	cfg.CoolingC = cfg.InitialC - 1
	assertPanics(t, func() { NewBoundary(cfg) }, "cooling below backoff")
}

func assertPanics(t *testing.T, fn func(), name string) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	fn()
}

func TestTestDurationScale(t *testing.T) {
	b := NewBoundary(DefaultBoundaryConfig())
	if got := b.TestDurationScale(); got != 1 {
		t.Errorf("initial scale = %v", got)
	}
	for i := 0; i < 5000; i++ {
		b.Record(80) // drive to max
	}
	if got := b.TestDurationScale(); got != 2 {
		t.Errorf("scale at max boundary = %v, want 2", got)
	}
}

func TestBackoffStats(t *testing.T) {
	var s BackoffStats
	tick := 10 * time.Second
	s.Observe(ActionNone, tick, 50)
	s.Observe(ActionBackoff, tick, 62)
	s.Observe(ActionBackoff, tick, 61)
	s.Observe(ActionNone, tick, 55)
	s.Observe(ActionBackoff, tick, 63)
	if s.Events != 2 {
		t.Errorf("events = %d, want 2 activations", s.Events)
	}
	if s.BackoffTime != 30*time.Second {
		t.Errorf("backoff time = %v", s.BackoffTime)
	}
	if s.MaxTempC != 63 {
		t.Errorf("max temp = %v", s.MaxTempC)
	}
	wantOv := 30.0 / 50.0
	if got := s.Overhead(); got != wantOv {
		t.Errorf("overhead = %v, want %v", got, wantOv)
	}
	// 30 s of backoff in 50 s → 2160 s/h.
	if got := s.BackoffSecondsPerHour(); got < 2159 || got > 2161 {
		t.Errorf("s/h = %v", got)
	}
}

func TestBackoffStatsEmpty(t *testing.T) {
	var s BackoffStats
	if s.Overhead() != 0 || s.BackoffSecondsPerHour() != 0 {
		t.Error("empty stats should be zero")
	}
}

func TestActionString(t *testing.T) {
	if ActionNone.String() != "none" || ActionBackoff.String() != "backoff" || ActionCooling.String() != "cooling" {
		t.Error("action strings wrong")
	}
}
