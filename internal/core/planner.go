package core

import (
	"time"

	"farron/internal/model"
	"farron/internal/testkit"
)

// Priority is a testcase's Farron priority level (Section 7.1).
type Priority int

const (
	// PriorityBasic: designed for a feature but never detected a fault
	// in large-scale tests; run best-effort.
	PriorityBasic Priority = iota
	// PriorityActive: a proven track record of identifying defective
	// features anywhere in the fleet.
	PriorityActive
	// PrioritySuspected: has detected errors on the current processor's
	// cores.
	PrioritySuspected
)

// String implements fmt.Stringer.
func (p Priority) String() string {
	switch p {
	case PriorityBasic:
		return "basic"
	case PriorityActive:
		return "active"
	case PrioritySuspected:
		return "suspected"
	default:
		return "unknown"
	}
}

// PlannerConfig sets the per-priority test durations.
type PlannerConfig struct {
	// SuspectedDur and ActiveDur are full test durations for prioritized
	// testcases; BasicDur is the best-effort slice for everything else.
	SuspectedDur, ActiveDur, BasicDur time.Duration
}

// DefaultPlannerConfig matches the evaluation's ~1h rounds against the
// baseline's 633 × 60 s = 10.55 h.
func DefaultPlannerConfig() PlannerConfig {
	return PlannerConfig{
		SuspectedDur: 90 * time.Second,
		ActiveDur:    45 * time.Second,
		BasicDur:     1500 * time.Millisecond,
	}
}

// Planner assigns priorities and builds prioritized regular-test plans.
type Planner struct {
	cfg        PlannerConfig
	suite      *testkit.Suite
	priorities map[string]Priority
	// appFeatures are the processor features the protected application
	// uses; Farron mainly allocates resources to matching testcases.
	appFeatures map[model.Feature]bool
}

// NewPlanner creates a planner over the suite. appFeatures lists the
// features the protected application engages (empty = assume all).
func NewPlanner(cfg PlannerConfig, suite *testkit.Suite, appFeatures []model.Feature) *Planner {
	p := &Planner{
		cfg:        cfg,
		suite:      suite,
		priorities: map[string]Priority{},
		appFeatures: func() map[model.Feature]bool {
			m := map[model.Feature]bool{}
			for _, f := range appFeatures {
				m[f] = true
			}
			return m
		}(),
	}
	return p
}

// Priority returns a testcase's current priority (basic by default).
func (p *Planner) Priority(tcID string) Priority { return p.priorities[tcID] }

// MarkActive promotes a testcase to active (fleet history: it has found
// SDCs before). Suspected testcases are not demoted.
func (p *Planner) MarkActive(tcID string) {
	if p.priorities[tcID] < PriorityActive {
		p.priorities[tcID] = PriorityActive
	}
}

// MarkSuspected promotes a testcase to suspected (it failed on this
// processor).
func (p *Planner) MarkSuspected(tcID string) { p.priorities[tcID] = PrioritySuspected }

// SuspectedIDs returns all suspected testcases in suite order.
func (p *Planner) SuspectedIDs() []string {
	var out []string
	for _, tc := range p.suite.Testcases {
		if p.priorities[tc.ID] == PrioritySuspected {
			out = append(out, tc.ID)
		}
	}
	return out
}

// appMatch reports whether the testcase's targeted feature is used by the
// protected application.
func (p *Planner) appMatch(tc *testkit.Testcase) bool {
	if len(p.appFeatures) == 0 {
		return true
	}
	return p.appFeatures[tc.Feature]
}

// Alloc is one planned testcase execution.
type Alloc struct {
	Testcase *testkit.Testcase
	Duration time.Duration
	Priority Priority
}

// Plan builds the regular-round schedule: suspected testcases first, then
// active testcases whose feature the application uses, then everything else
// best-effort. durationScale stretches prioritized durations per the
// adaptive boundary (Section 7.1).
func (p *Planner) Plan(durationScale float64) []Alloc {
	if durationScale <= 0 {
		durationScale = 1
	}
	var suspected, active, basic []Alloc
	for _, tc := range p.suite.Testcases {
		switch {
		case p.priorities[tc.ID] == PrioritySuspected:
			suspected = append(suspected, Alloc{tc,
				scaleDur(p.cfg.SuspectedDur, durationScale), PrioritySuspected})
		case p.priorities[tc.ID] == PriorityActive && p.appMatch(tc):
			active = append(active, Alloc{tc,
				scaleDur(p.cfg.ActiveDur, durationScale), PriorityActive})
		default:
			basic = append(basic, Alloc{tc, p.cfg.BasicDur, PriorityBasic})
		}
	}
	out := make([]Alloc, 0, len(suspected)+len(active)+len(basic))
	out = append(out, suspected...)
	out = append(out, active...)
	out = append(out, basic...)
	return out
}

// PlanDuration sums a plan's durations.
func PlanDuration(plan []Alloc) time.Duration {
	var d time.Duration
	for _, a := range plan {
		d += a.Duration
	}
	return d
}

func scaleDur(d time.Duration, s float64) time.Duration {
	return time.Duration(float64(d) * s)
}
