package core

import (
	"testing"
	"time"

	"farron/internal/cpu"
	"farron/internal/defect"
	"farron/internal/model"
	"farron/internal/simrand"
	"farron/internal/testkit"
	"farron/internal/thermal"
)

// evalFixture builds the calibrated library plus suite shared by the
// evaluation tests.
type evalFixture struct {
	suite    *testkit.Suite
	profiles map[string]*defect.Profile
	rng      *simrand.Source
}

func newEvalFixture(t *testing.T) *evalFixture {
	t.Helper()
	rng := simrand.New(4001)
	suite := testkit.NewSuite(rng)
	f := &evalFixture{suite: suite, profiles: map[string]*defect.Profile{}, rng: rng}
	for _, p := range defect.Library(rng) {
		suite.CalibrateProfile(p)
		f.profiles[p.CPUID] = p
	}
	return f
}

func (f *evalFixture) healthyRunner(t *testing.T) *testkit.Runner {
	t.Helper()
	proc := cpu.NewHealthy("healthy-lc", "M3", 20, 2)
	pkg := thermal.New(thermal.DefaultConfig(), proc.PhysCores, f.rng.Derive("th-healthy"))
	return testkit.NewRunner(f.suite, proc, pkg)
}

func (f *evalFixture) runner(t *testing.T, id string) *testkit.Runner {
	t.Helper()
	p := f.profiles[id]
	if p == nil {
		t.Fatalf("no profile %s", id)
	}
	proc := cpu.FromProfile(p)
	pkg := thermal.New(thermal.DefaultConfig(), proc.PhysCores, f.rng.Derive("th", id))
	return testkit.NewRunner(f.suite, proc, pkg)
}

// knownErrs returns the processor's calibrated failing-testcase IDs.
func (f *evalFixture) knownErrs(id string) []string {
	var out []string
	for _, tc := range f.suite.FailingTestcases(f.profiles[id]) {
		out = append(out, tc.ID)
	}
	return out
}

// fleetActive simulates the fleet history feed: every library processor's
// failing testcases are "testcases with a proven track record".
func (f *evalFixture) fleetActive() []string {
	seen := map[string]bool{}
	var out []string
	for id := range f.profiles {
		for _, tc := range f.knownErrs(id) {
			if !seen[tc] {
				seen[tc] = true
				out = append(out, tc)
			}
		}
	}
	return out
}

func appFeaturesFor(p *defect.Profile) []model.Feature { return p.Features() }

func TestFarronWorkflowStates(t *testing.T) {
	f := newEvalFixture(t)
	r := f.runner(t, "FPU1")
	fa := New(DefaultConfig(), r, appFeaturesFor(f.profiles["FPU1"]), f.fleetActive())
	if fa.State() != StatePreProduction {
		t.Fatalf("initial state = %v", fa.State())
	}
	rep := fa.PreProduction()
	if fa.State() != StateOnline {
		t.Fatalf("state after pre-production = %v", fa.State())
	}
	// FPU1 is an apparent defect: pre-production must catch it.
	if len(rep.DetectedTestcases) == 0 {
		t.Fatal("pre-production missed FPU1")
	}
	// Its single defective core (0, per the Table 3 library) must now be
	// masked.
	if !r.Processor().Masked(0) {
		t.Error("defective core 0 not masked after pre-production")
	}
	if r.Processor().Deprecated() {
		t.Error("single-core defect deprecated the whole processor")
	}
}

func TestFarronDeprecatesManyCoreDefects(t *testing.T) {
	f := newEvalFixture(t)
	r := f.runner(t, "MIX1") // all 16 cores defective
	fa := New(DefaultConfig(), r, appFeaturesFor(f.profiles["MIX1"]), f.fleetActive())
	fa.PreProduction()
	if !r.Processor().Deprecated() {
		t.Error("MIX1 (16 defective cores) not deprecated")
	}
	if fa.State() != StateDeprecated {
		t.Errorf("state = %v", fa.State())
	}
}

func TestFarronCoverageBeatsBaseline(t *testing.T) {
	// Figure 11: one round of regular testing, Farron coverage higher
	// than baseline on every evaluated processor.
	f := newEvalFixture(t)
	for _, id := range []string{"SIMD1", "FPU1", "FPU2", "CNST1"} {
		id := id
		t.Run(id, func(t *testing.T) {
			known := f.knownErrs(id)
			if len(known) == 0 {
				t.Fatal("no known errors")
			}

			rFar := f.runner(t, id)
			fa := New(DefaultConfig(), rFar, appFeaturesFor(f.profiles[id]), f.fleetActive())
			farRound := fa.RegularRound()
			farCov := farRound.Coverage(known)

			rBase := f.runner(t, id)
			base := NewBaseline(rBase, time.Minute)
			baseRound := base.RegularRound()
			baseCov := baseRound.Coverage(known)

			if farCov < baseCov {
				t.Errorf("Farron coverage %.2f < baseline %.2f", farCov, baseCov)
			}
			if farCov < 0.5 {
				t.Errorf("Farron coverage only %.2f", farCov)
			}
			// And at far lower cost (1.02h vs 10.55h in the paper).
			if farRound.Duration >= baseRound.Duration/3 {
				t.Errorf("Farron round %v vs baseline %v: insufficient speedup",
					farRound.Duration, baseRound.Duration)
			}
		})
	}
}

func TestBaselineRoundDuration(t *testing.T) {
	f := newEvalFixture(t)
	r := f.runner(t, "FPU3")
	base := NewBaseline(r, time.Minute)
	rep := base.RegularRound()
	want := time.Duration(testkit.SuiteSize) * time.Minute // 10.55 h
	if rep.Duration < want-time.Minute || rep.Duration > want+time.Minute {
		t.Errorf("baseline round = %v, want ~%v", rep.Duration, want)
	}
	// Baseline deprecates whole processors on any detection.
	if len(rep.DetectedTestcases) > 0 && !r.Processor().Deprecated() {
		t.Error("baseline detection did not deprecate")
	}
}

func TestRegularRoundMovesToSuspected(t *testing.T) {
	f := newEvalFixture(t)
	r := f.runner(t, "FPU2")
	fa := New(DefaultConfig(), r, appFeaturesFor(f.profiles["FPU2"]), f.fleetActive())
	rep := fa.RegularRound()
	if len(rep.DetectedTestcases) == 0 {
		t.Fatal("regular round missed FPU2")
	}
	if fa.State() != StateSuspected {
		t.Fatalf("state = %v, want suspected", fa.State())
	}
	// Targeted validation masks the defective core and returns online.
	val := fa.TargetedValidation()
	if fa.State() != StateOnline {
		t.Fatalf("state after validation = %v", fa.State())
	}
	if !r.Processor().Masked(8) {
		t.Error("core 8 not masked after targeted validation")
	}
	// The other cores were validated.
	if len(fa.Entry().ValidatedCores) < r.Processor().PhysCores-2 {
		t.Errorf("validated %d cores", len(fa.Entry().ValidatedCores))
	}
	_ = val
}

func TestOnlineProtectionAgainstTrickyDefect(t *testing.T) {
	// The Table-4 scenario: a tricky defect (SIMD2: Tmin 62, passes
	// tests) in production. With Farron's temperature control the
	// workload stays under the boundary and absorbs no SDCs; without it,
	// hot bursts cross the triggering temperature.
	f := newEvalFixture(t)

	app := DefaultAppProfile()
	app.Stress = 1.0
	// An adversarial bursty workload so the unprotected exposure is
	// statistically solid within the simulated horizon.
	app.BurstProb = 0.002
	app.BurstTicks = 18

	run := func(protect bool) OnlineReport {
		r := f.runner(t, "SIMD2")
		fa := New(DefaultConfig(), r, appFeaturesFor(f.profiles["SIMD2"]), nil)
		fa.state = StateOnline
		return fa.Online(96*time.Hour, app, protect, f.rng.Derive("online", map[bool]string{true: "p", false: "u"}[protect]))
	}

	protected := run(true)
	unprotected := run(false)

	if unprotected.SDCs == 0 {
		t.Fatal("unprotected run absorbed no SDCs; scenario is vacuous")
	}
	if protected.SDCs >= unprotected.SDCs {
		t.Errorf("protected SDCs %d not below unprotected %d", protected.SDCs, unprotected.SDCs)
	}
	// Backoff engaged but rarely (paper: 0.864 s/hour).
	sph := protected.Backoff.BackoffSecondsPerHour()
	if protected.Backoff.Events == 0 {
		t.Error("backoff never engaged")
	}
	if sph > 120 {
		t.Errorf("backoff %v s/h too disruptive", sph)
	}
	// The boundary learned the workload's normal temperature.
	if protected.BoundaryRaises == 0 {
		t.Error("boundary never adapted")
	}
}

func TestOnlineUnprotectedNoBackoff(t *testing.T) {
	f := newEvalFixture(t)
	r := f.runner(t, "FPU4")
	fa := New(DefaultConfig(), r, appFeaturesFor(f.profiles["FPU4"]), nil)
	fa.state = StateOnline
	rep := fa.Online(6*time.Hour, DefaultAppProfile(), false, f.rng.Derive("u2"))
	if rep.Backoff.BackoffTime != 0 {
		t.Error("unprotected run recorded backoff")
	}
}

func TestStateString(t *testing.T) {
	states := map[State]string{
		StatePreProduction: "pre-production",
		StateOnline:        "online",
		StateSuspected:     "suspected",
		StateDeprecated:    "deprecated",
	}
	for s, w := range states {
		if s.String() != w {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
}

func TestTestOverhead(t *testing.T) {
	period := 90 * 24 * time.Hour
	// Baseline: 10.55 h per 90 d = 0.488%.
	got := TestOverhead(633*time.Minute, period)
	if got < 0.0048 || got > 0.0050 {
		t.Errorf("baseline overhead = %v, want ~0.00488", got)
	}
	if TestOverhead(time.Hour, 0) != 0 {
		t.Error("zero period should be 0")
	}
}
