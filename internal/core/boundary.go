// Package core implements Farron, the paper's SDC mitigation approach
// (Section 7): prioritized SDC testing for highly reproducible ("apparent")
// defects, adaptive temperature-boundary control with workload backoff for
// less reproducible ("tricky") defects, fine-grained processor
// decommission, and a reliable resource pool — plus the Alibaba Cloud
// baseline strategy it is evaluated against.
package core

import (
	"math"
	"time"
)

// Action is the boundary controller's verdict for one temperature sample.
type Action int

const (
	// ActionNone: temperature acceptable, keep running.
	ActionNone Action = iota
	// ActionBackoff: throttle the workload until temperature drops below
	// the boundary.
	ActionBackoff
	// ActionCooling: engage the cooling device (separate, higher
	// boundary; "the former has no impact on application performance,
	// but it is not widely applicable in Alibaba Cloud yet").
	ActionCooling
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case ActionNone:
		return "none"
	case ActionBackoff:
		return "backoff"
	case ActionCooling:
		return "cooling"
	default:
		return "unknown"
	}
}

// BoundaryConfig configures the adaptive temperature boundary.
type BoundaryConfig struct {
	// InitialC is the starting workload-backoff boundary.
	InitialC float64
	// CoolingC is the fixed cooling-device boundary (above the backoff
	// boundary; reaching it means backoff failed to contain heat).
	CoolingC float64
	// Window is the number of recent temperature records examined.
	Window int
	// RaiseStepC is how far the boundary rises per adaptation.
	RaiseStepC float64
	// MaxC caps the adaptive boundary (never learn past the processor's
	// allowable range).
	MaxC float64
}

// DefaultBoundaryConfig matches the evaluation setup: the boundary starts
// just above idle temperature and is allowed to learn up to 75 ℃; the
// paper's evaluation kept the protected workload under 59 ℃.
func DefaultBoundaryConfig() BoundaryConfig {
	return BoundaryConfig{
		InitialC:   50,
		CoolingC:   85,
		Window:     60,
		RaiseStepC: 1,
		MaxC:       75,
	}
}

// Boundary is Farron's adaptive temperature boundary (Section 7.1). It
// tracks a sliding window of temperature records. When more than half the
// window exceeds the current boundary, the temperature is evidently normal
// for the application, so the boundary rises (avoiding excessive backoff —
// application performance has the highest priority). Otherwise a sample
// above the boundary is an excursion and triggers workload backoff until
// the temperature is back below the boundary.
// During the first full window (the warm-up), only the cooling boundary is
// enforced: backing off before the controller has seen the application's
// steady temperature would pin the workload at the initial boundary and
// prevent any learning.
type Boundary struct {
	cfg     BoundaryConfig
	window  []float64
	next    int
	filled  bool
	current float64
	raises  int
}

// NewBoundary creates a boundary controller.
func NewBoundary(cfg BoundaryConfig) *Boundary {
	if cfg.Window <= 0 {
		panic("core: boundary window must be positive")
	}
	if cfg.CoolingC < cfg.InitialC {
		panic("core: cooling boundary below backoff boundary")
	}
	return &Boundary{
		cfg:     cfg,
		window:  make([]float64, cfg.Window),
		current: cfg.InitialC,
	}
}

// Current returns the present workload-backoff boundary.
func (b *Boundary) Current() float64 { return b.current }

// Raises returns how many times the boundary has adapted upward.
func (b *Boundary) Raises() int { return b.raises }

// Record ingests one temperature sample and returns the action to take.
func (b *Boundary) Record(tempC float64) Action {
	b.window[b.next] = tempC
	b.next++
	if b.next == len(b.window) {
		b.next = 0
		b.filled = true
	}

	n := b.next
	if b.filled {
		n = len(b.window)
	}
	exceed := 0
	for i := 0; i < n; i++ {
		if b.window[i] > b.current {
			exceed++
		}
	}

	// More than half the window above the boundary: this is the
	// application's normal operating temperature — learn it.
	if exceed*2 > n && b.current < b.cfg.MaxC {
		b.current = math.Min(b.current+b.cfg.RaiseStepC, b.cfg.MaxC)
		b.raises++
		// Re-examine with the raised boundary; a single raise step is
		// at most one adaptation per sample by design (iterative
		// learning, Section 7.1).
	}

	switch {
	case tempC > b.cfg.CoolingC:
		return ActionCooling
	case tempC > b.current && b.filled:
		return ActionBackoff
	default:
		return ActionNone
	}
}

// WarmedUp reports whether the controller has seen a full window and is
// enforcing the backoff boundary.
func (b *Boundary) WarmedUp() bool { return b.filled }

// TestDurationScale maps the learned boundary to a regular-test duration
// multiplier (Section 7.1: a lower temperature boundary is allocated less
// test duration, because settings whose minimum triggering temperature lies
// above the boundary can never fire in production and need no test
// coverage). The scale is 1 at the default initial boundary and grows
// linearly to 2 at the maximum.
func (b *Boundary) TestDurationScale() float64 {
	span := b.cfg.MaxC - b.cfg.InitialC
	if span <= 0 {
		return 1
	}
	return 1 + (b.current-b.cfg.InitialC)/span
}

// BackoffStats accumulates workload-backoff accounting during online
// operation (Table 4's temperature-control overhead).
type BackoffStats struct {
	// Total time the workload spent backed off, and total observed time.
	BackoffTime, TotalTime time.Duration
	// Events counts distinct backoff activations.
	Events int
	// MaxTempC is the hottest sample observed.
	MaxTempC  float64
	inBackoff bool
}

// Observe folds one sample interval into the stats.
func (s *BackoffStats) Observe(action Action, dt time.Duration, tempC float64) {
	s.TotalTime += dt
	if tempC > s.MaxTempC {
		s.MaxTempC = tempC
	}
	if action == ActionBackoff || action == ActionCooling {
		s.BackoffTime += dt
		if !s.inBackoff {
			s.Events++
			s.inBackoff = true
		}
	} else {
		s.inBackoff = false
	}
}

// Overhead returns backoff time over total time.
func (s *BackoffStats) Overhead() float64 {
	if s.TotalTime == 0 {
		return 0
	}
	return s.BackoffTime.Seconds() / s.TotalTime.Seconds()
}

// BackoffSecondsPerHour is the paper's Table-4 unit: seconds of backoff per
// hour of operation (evaluation: 0.864 s/h).
func (s *BackoffStats) BackoffSecondsPerHour() float64 {
	if s.TotalTime == 0 {
		return 0
	}
	return s.BackoffTime.Seconds() / s.TotalTime.Hours()
}
