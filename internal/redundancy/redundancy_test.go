package redundancy

import (
	"testing"

	"farron/internal/model"
	"farron/internal/simrand"
	"farron/internal/workload"
)

func alwaysCorrupt(mask uint64) workload.CorruptFn {
	return func(dt model.DataType, lo uint64, hi uint16) (uint64, uint16, bool) {
		return lo ^ mask, hi, true
	}
}

func TestDualExecuteHealthy(t *testing.T) {
	var s Stats
	rng := simrand.New(1)
	for i := 0; i < 100; i++ {
		v, ok := DualExecute(ChecksumWork, rng.Uint64(), [2]workload.CorruptFn{nil, nil}, &s)
		if !ok {
			t.Fatal("healthy replicas disagreed")
		}
		_ = v
	}
	if s.Agreements != 100 || s.Mismatches != 0 || s.SilentEscapes != 0 {
		t.Errorf("stats = %+v", s)
	}
	if s.CostFactor() != 2 {
		t.Errorf("dual cost = %v, want 2x", s.CostFactor())
	}
}

func TestDualExecuteDetectsOneFaultyReplica(t *testing.T) {
	var s Stats
	rng := simrand.New(2)
	detected := 0
	for i := 0; i < 200; i++ {
		_, ok := DualExecute(ChecksumWork, rng.Uint64(),
			[2]workload.CorruptFn{alwaysCorrupt(1 << 9), nil}, &s)
		if !ok {
			detected++
		}
	}
	if detected != 200 {
		t.Errorf("detected %d/200 corruptions", detected)
	}
}

func TestDualExecuteSilentEscapeOnSharedDefect(t *testing.T) {
	// Both replicas scheduled on the same defective core with a fixed
	// pattern: they agree on the wrong answer. Observation 8's
	// deterministic patterns make this a real failure mode.
	var s Stats
	rng := simrand.New(3)
	hook := alwaysCorrupt(1 << 5)
	for i := 0; i < 50; i++ {
		_, ok := DualExecute(ChecksumWork, rng.Uint64(), [2]workload.CorruptFn{hook, hook}, &s)
		if !ok {
			t.Fatal("identical corruption should agree")
		}
	}
	if s.SilentEscapes != 50 {
		t.Errorf("silent escapes = %d, want 50", s.SilentEscapes)
	}
}

func TestTMRCorrects(t *testing.T) {
	var s Stats
	rng := simrand.New(4)
	for i := 0; i < 100; i++ {
		input := rng.Uint64()
		want := ChecksumWork(input, nil)
		got, ok := TMRExecute(ChecksumWork, input,
			[3]workload.CorruptFn{alwaysCorrupt(1 << 3), nil, nil}, &s)
		if !ok || got != want {
			t.Fatalf("TMR failed to mask a single faulty replica: %v %x vs %x", ok, got, want)
		}
	}
	if s.Corrected != 100 {
		t.Errorf("corrected = %d", s.Corrected)
	}
	if s.CostFactor() != 3 {
		t.Errorf("TMR cost = %v, want 3x", s.CostFactor())
	}
}

func TestTMRVoteFailure(t *testing.T) {
	var s Stats
	rng := simrand.New(5)
	_, ok := TMRExecute(ChecksumWork, rng.Uint64(),
		[3]workload.CorruptFn{alwaysCorrupt(1), alwaysCorrupt(2), alwaysCorrupt(4)}, &s)
	if ok {
		t.Error("three-way disagreement voted successfully")
	}
	if s.VoteFailures != 1 {
		t.Errorf("vote failures = %d", s.VoteFailures)
	}
}

func TestRandomCorruptProbability(t *testing.T) {
	rng := simrand.New(6)
	hook := RandomCorrupt(rng, 0.25, 1<<7)
	fired := 0
	for i := 0; i < 10000; i++ {
		_, _, ok := hook(model.DTBin64, 0, 0)
		if ok {
			fired++
		}
	}
	frac := float64(fired) / 10000
	if frac < 0.22 || frac > 0.28 {
		t.Errorf("fire rate = %v, want ~0.25", frac)
	}
}

func TestChecksumWorkDeterministic(t *testing.T) {
	if ChecksumWork(12345, nil) != ChecksumWork(12345, nil) {
		t.Error("ChecksumWork not deterministic")
	}
	if ChecksumWork(1, nil) == ChecksumWork(2, nil) {
		t.Error("ChecksumWork constant across inputs")
	}
}

func TestOutcomeString(t *testing.T) {
	for o, s := range map[Outcome]string{
		Agree: "agree", DetectedMismatch: "mismatch",
		CorrectedByVote: "corrected", VoteFailed: "vote-failed",
	} {
		if o.String() != s {
			t.Errorf("%d = %q", int(o), o.String())
		}
	}
}
