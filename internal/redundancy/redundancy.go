// Package redundancy implements replica-based SDC detection and tolerance:
// dual execution with comparison (detect-only, DCLS-style) and triple
// modular redundancy with majority voting (detect and correct) — the
// replication techniques of Section 6.2, which work against CPU SDCs but
// cost full re-execution, "too costly to be applied to every application,
// though suitable for a small number of critical applications".
package redundancy

import (
	"fmt"

	"farron/internal/model"
	"farron/internal/simrand"
	"farron/internal/workload"
)

// Outcome classifies one redundant execution.
type Outcome int

const (
	// Agree: all replicas matched.
	Agree Outcome = iota
	// DetectedMismatch: replicas disagreed (dual mode stops here).
	DetectedMismatch
	// CorrectedByVote: a majority vote masked the corrupt replica.
	CorrectedByVote
	// VoteFailed: no majority (two or more replicas corrupted apart).
	VoteFailed
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Agree:
		return "agree"
	case DetectedMismatch:
		return "mismatch"
	case CorrectedByVote:
		return "corrected"
	case VoteFailed:
		return "vote-failed"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Stats aggregates a redundant execution run.
type Stats struct {
	Executions int
	// WorkUnits counts total computation performed; redundancy's cost is
	// WorkUnits / Executions (2× for dual, 3× for TMR).
	WorkUnits                                       int
	Agreements, Mismatches, Corrected, VoteFailures int
	// SilentEscapes counts corrupted results that were accepted (both
	// replicas corrupted identically — possible when the same defective
	// core runs both replicas with a fixed bitflip pattern!).
	SilentEscapes int
}

// CostFactor returns work performed relative to unprotected execution.
func (s *Stats) CostFactor() float64 {
	if s.Executions == 0 {
		return 0
	}
	return float64(s.WorkUnits) / float64(s.Executions)
}

// Compute is a deterministic unit of work returning a 64-bit result. The
// corrupt hook models running on a defective core.
type Compute func(input uint64, corrupt workload.CorruptFn) uint64

// DualExecute runs fn twice and compares — SDC detection by re-execution.
// replicaCorrupt[i] is the corruption hook of the core replica i runs on
// (nil = healthy core). It returns the accepted result, ok=false when a
// mismatch was detected.
func DualExecute(fn Compute, input uint64, replicaCorrupt [2]workload.CorruptFn, s *Stats) (uint64, bool) {
	a := fn(input, replicaCorrupt[0])
	b := fn(input, replicaCorrupt[1])
	s.Executions++
	s.WorkUnits += 2
	if a == b {
		s.Agreements++
		// Identical corruption on both replicas escapes silently
		// (same fixed pattern, same defective core — Observation 8's
		// deterministic patterns make this real).
		ref := fn(input, nil)
		if a != ref {
			s.SilentEscapes++
		}
		return a, true
	}
	s.Mismatches++
	return 0, false
}

// TMRExecute runs fn three times and votes.
func TMRExecute(fn Compute, input uint64, replicaCorrupt [3]workload.CorruptFn, s *Stats) (uint64, bool) {
	r := [3]uint64{
		fn(input, replicaCorrupt[0]),
		fn(input, replicaCorrupt[1]),
		fn(input, replicaCorrupt[2]),
	}
	s.Executions++
	s.WorkUnits += 3
	switch {
	case r[0] == r[1] && r[1] == r[2]:
		s.Agreements++
		ref := fn(input, nil)
		if r[0] != ref {
			s.SilentEscapes++
		}
		return r[0], true
	case r[0] == r[1] || r[0] == r[2]:
		s.Corrected++
		return r[0], true
	case r[1] == r[2]:
		s.Corrected++
		return r[1], true
	default:
		s.VoteFailures++
		return 0, false
	}
}

// ChecksumWork is a realistic Compute: CRC32 over a buffer derived from the
// input (the checksum path of the paper's first production case).
func ChecksumWork(input uint64, corrupt workload.CorruptFn) uint64 {
	var buf [64]byte
	x := input
	for i := range buf {
		x = x*6364136223846793005 + 1442695040888963407
		buf[i] = byte(x >> 33)
	}
	sum, _ := workload.CRC32Faulty(buf[:], corrupt)
	return uint64(sum)
}

// RandomCorrupt builds a corruption hook firing with probability p per
// operation, flipping a fixed mask (a deterministic defect pattern).
func RandomCorrupt(rng *simrand.Source, p float64, mask uint64) workload.CorruptFn {
	return func(dt model.DataType, lo uint64, hi uint16) (uint64, uint16, bool) {
		if !rng.Bool(p) {
			return lo, hi, false
		}
		return lo ^ mask, hi, true
	}
}
