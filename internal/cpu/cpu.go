// Package cpu models processors: physical cores, SMT logical cores, the
// micro-architecture identity, and per-core health state (masking and
// decommission, the "fine-grained processor decommission" substrate of
// Farron's design, Section 7.1).
package cpu

import (
	"fmt"
	"sort"

	"farron/internal/defect"
	"farron/internal/model"
)

// Processor is one CPU package.
type Processor struct {
	// ID is the processor serial / anonymized name.
	ID string
	// Arch is the micro-architecture.
	Arch model.MicroArch
	// PhysCores is the number of physical cores.
	PhysCores int
	// ThreadsPerCore is the SMT width.
	ThreadsPerCore int
	// AgeYears is the deployment age.
	AgeYears float64

	defects    []*defect.Defect
	masked     map[int]bool
	deprecated bool
}

// NewHealthy returns a defect-free processor.
func NewHealthy(id string, arch model.MicroArch, physCores, threadsPerCore int) *Processor {
	if physCores <= 0 || threadsPerCore <= 0 {
		panic("cpu: invalid core counts")
	}
	return &Processor{
		ID: id, Arch: arch,
		PhysCores: physCores, ThreadsPerCore: threadsPerCore,
		masked: map[int]bool{},
	}
}

// FromProfile instantiates a faulty processor from a defect profile.
func FromProfile(p *defect.Profile) *Processor {
	proc := NewHealthy(p.CPUID, p.Arch, p.TotalPCores, p.ThreadsPerCore)
	proc.AgeYears = p.AgeYears
	proc.defects = append(proc.defects, p.Defects...)
	return proc
}

// Defects returns the processor's hardware defects (nil for healthy CPUs).
func (p *Processor) Defects() []*defect.Defect { return p.defects }

// Faulty reports whether the processor has any defect.
func (p *Processor) Faulty() bool { return len(p.defects) > 0 }

// LogicalCores returns the total number of hardware threads.
func (p *Processor) LogicalCores() int { return p.PhysCores * p.ThreadsPerCore }

// PhysicalOf maps a logical core (hardware thread) to its physical core.
// SMT siblings share every execution resource, which is why "all the
// logical cores sharing the same defective physical core are affected and
// fail the same testcases with a similar frequency" (Observation 4): the
// defect model operates at physical-core granularity and this mapping is
// how schedulers translate.
func (p *Processor) PhysicalOf(logical int) int {
	if logical < 0 || logical >= p.LogicalCores() {
		panic(fmt.Sprintf("cpu: logical core %d out of range [0,%d) on %s",
			logical, p.LogicalCores(), p.ID))
	}
	return logical % p.PhysCores
}

// SiblingThreads returns the logical cores backed by physical core idx.
func (p *Processor) SiblingThreads(idx int) []int {
	p.checkCore(idx)
	out := make([]int, 0, p.ThreadsPerCore)
	for t := 0; t < p.ThreadsPerCore; t++ {
		out = append(out, t*p.PhysCores+idx)
	}
	return out
}

// DefectClass returns the processor's defect class; ok is false for healthy
// processors.
func (p *Processor) DefectClass() (class model.DefectClass, ok bool) {
	if len(p.defects) == 0 {
		return 0, false
	}
	return p.defects[0].Class, true
}

// DefectiveCores returns the sorted union of defective physical cores.
func (p *Processor) DefectiveCores() []int {
	set := map[int]bool{}
	for _, d := range p.defects {
		for _, c := range d.DefectiveCores(p.PhysCores) {
			set[c] = true
		}
	}
	out := make([]int, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// CoreDefective reports whether physical core idx carries a defect.
func (p *Processor) CoreDefective(idx int) bool {
	for _, d := range p.defects {
		if d.AffectsCore(idx) {
			return true
		}
	}
	return false
}

// MaskCore removes physical core idx from service (fine-grained
// decommission). Masking an out-of-range core panics.
func (p *Processor) MaskCore(idx int) {
	p.checkCore(idx)
	p.masked[idx] = true
}

// UnmaskCore returns a core to service.
func (p *Processor) UnmaskCore(idx int) {
	p.checkCore(idx)
	delete(p.masked, idx)
}

// Masked reports whether physical core idx is out of service.
func (p *Processor) Masked(idx int) bool {
	p.checkCore(idx)
	return p.masked[idx]
}

// MaskedCount returns how many physical cores are masked.
func (p *Processor) MaskedCount() int { return len(p.masked) }

// ActiveCores returns in-service physical core indices in order. A
// deprecated processor has none.
func (p *Processor) ActiveCores() []int {
	if p.deprecated {
		return nil
	}
	out := make([]int, 0, p.PhysCores-len(p.masked))
	for c := 0; c < p.PhysCores; c++ {
		if !p.masked[c] {
			out = append(out, c)
		}
	}
	return out
}

// Deprecate takes the whole processor out of service (the coarse-grained
// policy of the baseline, or Farron's >2-defective-core rule).
func (p *Processor) Deprecate() { p.deprecated = true }

// Deprecated reports whether the processor is fully out of service.
func (p *Processor) Deprecated() bool { return p.deprecated }

func (p *Processor) checkCore(idx int) {
	if idx < 0 || idx >= p.PhysCores {
		panic(fmt.Sprintf("cpu: core %d out of range [0,%d) on %s", idx, p.PhysCores, p.ID))
	}
}

// String implements fmt.Stringer.
func (p *Processor) String() string {
	state := "healthy"
	if p.Faulty() {
		class, _ := p.DefectClass()
		state = class.String()
	}
	if p.deprecated {
		state += ",deprecated"
	}
	return fmt.Sprintf("%s(%s %dc%s)", p.ID, p.Arch, p.PhysCores, "/"+state)
}
