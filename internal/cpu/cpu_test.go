package cpu

import (
	"testing"

	"farron/internal/defect"
	"farron/internal/model"
	"farron/internal/simrand"
)

func TestNewHealthy(t *testing.T) {
	p := NewHealthy("cpu-1", "M3", 20, 2)
	if p.Faulty() {
		t.Error("healthy processor reports faulty")
	}
	if p.LogicalCores() != 40 {
		t.Errorf("logical cores = %d, want 40", p.LogicalCores())
	}
	if _, ok := p.DefectClass(); ok {
		t.Error("healthy processor has defect class")
	}
	if got := p.DefectiveCores(); len(got) != 0 {
		t.Errorf("healthy DefectiveCores = %v", got)
	}
	if len(p.ActiveCores()) != 20 {
		t.Errorf("active cores = %d", len(p.ActiveCores()))
	}
}

func TestNewHealthyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid core counts accepted")
		}
	}()
	NewHealthy("x", "M1", 0, 2)
}

func libProc(t *testing.T, id string) *Processor {
	t.Helper()
	for _, p := range defect.Library(simrand.New(1)) {
		if p.CPUID == id {
			return FromProfile(p)
		}
	}
	t.Fatalf("profile %s not found", id)
	return nil
}

func TestFromProfile(t *testing.T) {
	p := libProc(t, "FPU2")
	if !p.Faulty() {
		t.Fatal("FPU2 not faulty")
	}
	if p.Arch != "M5" || p.PhysCores != 24 || p.AgeYears != 1.83 {
		t.Errorf("FPU2 identity wrong: %v %d %v", p.Arch, p.PhysCores, p.AgeYears)
	}
	class, ok := p.DefectClass()
	if !ok || class != model.ClassComputation {
		t.Errorf("FPU2 class = %v/%v", class, ok)
	}
	cores := p.DefectiveCores()
	if len(cores) != 1 || cores[0] != 8 {
		t.Errorf("FPU2 defective cores = %v, want [8]", cores)
	}
	if !p.CoreDefective(8) || p.CoreDefective(9) {
		t.Error("CoreDefective wrong")
	}
}

func TestAllCoreProfile(t *testing.T) {
	p := libProc(t, "MIX1")
	if got := len(p.DefectiveCores()); got != 16 {
		t.Errorf("MIX1 defective cores = %d, want 16", got)
	}
	for c := 0; c < 16; c++ {
		if !p.CoreDefective(c) {
			t.Errorf("core %d not defective", c)
		}
	}
}

func TestMasking(t *testing.T) {
	p := NewHealthy("cpu-2", "M1", 8, 2)
	p.MaskCore(3)
	if !p.Masked(3) || p.Masked(4) {
		t.Error("mask state wrong")
	}
	if p.MaskedCount() != 1 {
		t.Errorf("MaskedCount = %d", p.MaskedCount())
	}
	active := p.ActiveCores()
	if len(active) != 7 {
		t.Fatalf("active = %v", active)
	}
	for _, c := range active {
		if c == 3 {
			t.Error("masked core still active")
		}
	}
	p.UnmaskCore(3)
	if p.Masked(3) {
		t.Error("unmask failed")
	}
}

func TestMaskOutOfRangePanics(t *testing.T) {
	p := NewHealthy("cpu-3", "M1", 4, 2)
	defer func() {
		if recover() == nil {
			t.Error("mask out of range accepted")
		}
	}()
	p.MaskCore(4)
}

func TestDeprecate(t *testing.T) {
	p := NewHealthy("cpu-4", "M1", 8, 2)
	if p.Deprecated() {
		t.Error("fresh processor deprecated")
	}
	p.Deprecate()
	if !p.Deprecated() {
		t.Error("Deprecate did not stick")
	}
	if got := p.ActiveCores(); got != nil {
		t.Errorf("deprecated processor has active cores: %v", got)
	}
}

func TestStringer(t *testing.T) {
	p := libProc(t, "CNST1")
	s := p.String()
	if s == "" {
		t.Error("empty String()")
	}
	p.Deprecate()
	if p.String() == s {
		t.Error("String does not reflect deprecation")
	}
}

func TestLogicalPhysicalMapping(t *testing.T) {
	p := NewHealthy("smt", "M2", 8, 2)
	// Round trip: every logical core maps to a physical core whose
	// sibling list contains it.
	for l := 0; l < p.LogicalCores(); l++ {
		phys := p.PhysicalOf(l)
		if phys < 0 || phys >= p.PhysCores {
			t.Fatalf("logical %d -> physical %d out of range", l, phys)
		}
		found := false
		for _, sib := range p.SiblingThreads(phys) {
			if sib == l {
				found = true
			}
		}
		if !found {
			t.Fatalf("logical %d missing from siblings of %d", l, phys)
		}
	}
	// Observation 4: SMT siblings share the defective physical core.
	sibs := p.SiblingThreads(3)
	if len(sibs) != 2 {
		t.Fatalf("siblings = %v", sibs)
	}
	if p.PhysicalOf(sibs[0]) != 3 || p.PhysicalOf(sibs[1]) != 3 {
		t.Errorf("siblings %v do not map back to physical 3", sibs)
	}
}

func TestPhysicalOfPanics(t *testing.T) {
	p := NewHealthy("smt2", "M2", 4, 2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range logical core accepted")
		}
	}()
	p.PhysicalOf(8)
}
