// Resumable screening state. The one-shot Simulator.Run pushes every faulty
// CPU through the whole Figure 1 pipeline in a single call; the continuous
// screening service (internal/serve) instead needs to run pre-production at
// a CPU's birth and then one regular round per campaign, against a fleet
// that churns between campaigns. CPUScreen is that split: the per-CPU
// pipeline state — profile, compiled detection plan and the serial-keyed
// substream — packaged so screening can stop and resume at any round
// boundary. The one-shot path is expressed through the same state machine
// (see Simulator.screen), so batch and campaign-stepped screening share one
// draw discipline.
package fleet

import (
	"farron/internal/defect"
	"farron/internal/model"
	"farron/internal/simrand"
	"farron/internal/testkit"
)

// CPUScreen is one faulty processor's resumable screening state: which
// pipeline stages it has consumed, whether (and where) it was detected, and
// the substream the remaining rounds will draw from. All randomness derives
// from the CPU's serial, so a screen advanced campaign-by-campaign draws
// the same sequence regardless of how many campaigns separate the rounds.
type CPUScreen struct {
	// Serial is the CPU's fleet serial (also its substream key).
	Serial string
	// Arch is the micro-architecture the profile was generated for.
	Arch model.MicroArch
	// Profile is the generated defect profile.
	Profile *defect.Profile

	// Detected reports whether any consumed round caught the processor;
	// Stage and TestcaseID identify the first detection.
	Detected   bool
	Stage      model.Stage
	TestcaseID string
	// Rounds counts regular rounds consumed so far.
	Rounds int
	// PreProduced reports whether the pre-production stages have run.
	PreProduced bool

	sim     *Simulator
	rng     *simrand.Source
	plan    detectionPlan
	failing []*testkit.Testcase // reference-suite path only
}

// NewCPUScreen generates the faulty processor keyed by serial and returns
// its resumable screening state. Profile and substream derive from the
// serial exactly as the one-shot Run derives them, so a serve-driven fleet
// and a batch fleet generate identical processors for identical serials.
func (s *Simulator) NewCPUScreen(serial string, arch model.MicroArch) *CPUScreen {
	p := defect.FleetFaulty(s.rng, serial, arch)
	return s.newScreenState(serial, arch, p, s.rng.Derive("screen", serial))
}

// newScreenState wires an existing profile and substream into screening
// state; the failing set and compiled plan are pure functions of the
// profile, built once for the CPU's whole pipeline.
func (s *Simulator) newScreenState(serial string, arch model.MicroArch, p *defect.Profile, rng *simrand.Source) *CPUScreen {
	cs := &CPUScreen{Serial: serial, Arch: arch, Profile: p, sim: s, rng: rng}
	cs.failing = s.suite.FailingTestcases(p)
	if !s.suite.Reference() {
		cs.plan = s.compilePlan(p, cs.failing)
	}
	return cs
}

// round consumes one stage round: the stage temperature draw plus one
// detection draw per live (testcase, defect) setting, via the compiled plan
// or — under a reference suite — the retained naive scan. A detected screen
// consumes no further randomness: resumed or not, the draw sequence ends at
// the detecting round.
func (cs *CPUScreen) round(sp StageProfile) bool {
	if cs.Detected {
		return false
	}
	var tcID string
	var hit bool
	if cs.sim.suite.Reference() {
		tcID, hit = cs.sim.stageDetect(cs.rng, cs.Profile, cs.failing, sp)
	} else {
		tcID, hit = cs.plan.detect(cs.rng, sp)
	}
	if hit {
		cs.Detected = true
		cs.Stage = sp.Stage
		cs.TestcaseID = tcID
	}
	return hit
}

// PreProduction consumes every pre-production stage (factory, datacenter,
// re-installation — all configured stages except regular testing) in
// pipeline order, stopping at the first detection. It runs at most once;
// repeated calls report the stored outcome without drawing.
func (cs *CPUScreen) PreProduction() bool {
	if cs.PreProduced {
		return cs.Detected
	}
	cs.PreProduced = true
	for _, sp := range cs.sim.cfg.Stages {
		if sp.Stage == model.StageRegular {
			continue
		}
		if cs.round(sp) {
			return true
		}
	}
	return false
}

// PassPreProduction marks the pre-production stages consumed without
// drawing or detecting. It models a defect that develops in the field: the
// factory, datacenter and re-installation screens all ran at birth, but
// there was nothing there yet to catch — regular in-production rounds are
// the only chance left (the paper's motivation for in-field testing).
func (cs *CPUScreen) PassPreProduction() { cs.PreProduced = true }

// RegularRound consumes one regular in-production test round. Calling it on
// an already-detected screen is a no-op (no draws), so a campaign loop may
// sweep its whole fleet without tracking detection state itself.
func (cs *CPUScreen) RegularRound() bool {
	if cs.Detected {
		return false
	}
	sp, ok := cs.sim.RegularStage()
	if !ok {
		return false
	}
	cs.Rounds++
	return cs.round(sp)
}

// RegularStage returns the configured regular-testing stage profile,
// cached at construction (stages are frozen once the simulator is built).
func (s *Simulator) RegularStage() (StageProfile, bool) {
	return s.regularSP, s.hasRegular
}

// Mix returns the simulator's micro-architecture composition.
func (s *Simulator) Mix() []ArchShare { return s.cfg.Mix }

// Config returns the simulator's configuration.
func (s *Simulator) Config() Config { return s.cfg }
