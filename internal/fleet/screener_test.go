package fleet

import (
	"fmt"
	"sort"
	"testing"

	"farron/internal/model"
	"farron/internal/simrand"
	"farron/internal/testkit"
)

// resultFingerprint flattens everything a Result asserts — counts, stage
// split, per-arch aggregates in mix order, effective testcases, profile
// identities in merge order — into one comparable string, so two runs are
// byte-equal iff their fingerprints match.
func resultFingerprint(cfg Config, res *Result) string {
	s := fmt.Sprintf("pop=%d strat=%s faulty=%d escaped=%d|",
		res.Population, res.Strategy, res.FaultyTotal, res.Escaped)
	for st := model.Stage(0); int(st) < model.NumStages; st++ {
		s += fmt.Sprintf("s%d=%d|", st, res.DetectedByStage[st])
	}
	for _, m := range cfg.Mix {
		ar := res.ByArch[m.Arch]
		s += fmt.Sprintf("%s=%d/%d/%d|", m.Arch, ar.Population, ar.Faulty, ar.Detected)
	}
	var eff []string
	for id := range res.EffectiveTestcases {
		eff = append(eff, id)
	}
	sort.Strings(eff)
	for _, id := range eff {
		s += id + ","
	}
	s += "|"
	for _, p := range res.FaultyProfiles {
		s += string(p.Arch) + ":" + p.CPUID + ","
	}
	return s
}

// TestStrategiesByteIdenticalAcrossWorkers pins the interface's central
// determinism contract: every screening strategy — including the
// feedback-driven evolving corpus — produces byte-identical results at any
// worker count, because all per-CPU draws come from serial-keyed substreams
// and corpus evolution happens only at serial round boundaries.
func TestStrategiesByteIdenticalAcrossWorkers(t *testing.T) {
	for _, strategy := range Strategies() {
		t.Run(strategy, func(t *testing.T) {
			cfg := smallConfig(23)
			cfg.Processors = 100_000
			cfg.Strategy = strategy

			cfg.Workers = 1
			serial := resultFingerprint(cfg, newSim(t, cfg).Run())
			cfg.Workers = 4
			parallel := resultFingerprint(cfg, newSim(t, cfg).Run())
			if serial != parallel {
				t.Errorf("%s: workers=1 and workers=4 runs differ:\n%s\nvs\n%s",
					strategy, serial, parallel)
			}
		})
	}
}

// TestStrategiesScreenSameDefectPopulation: profiles derive from serials
// through the unsalted stream, so every strategy screens the same generated
// faulty population — rows of the strategy sweep differ in detection, never
// in what there was to detect.
func TestStrategiesScreenSameDefectPopulation(t *testing.T) {
	cfg := smallConfig(24)
	cfg.Processors = 100_000
	var faulty []int
	for _, strategy := range Strategies() {
		cfg.Strategy = strategy
		res := newSim(t, cfg).Run()
		faulty = append(faulty, res.FaultyTotal)
	}
	for i := 1; i < len(faulty); i++ {
		if faulty[i] != faulty[0] {
			t.Errorf("strategy %s generated %d faulty CPUs, %s generated %d — populations must match",
				Strategies()[i], faulty[i], Strategies()[0], faulty[0])
		}
	}
}

// runStepped re-enacts Simulator.Run through the exported Screener API,
// serially, one round at a time — the call pattern of the continuous
// screening service (internal/serve), which steps campaigns individually
// instead of batching the horizon.
func runStepped(sim *Simulator) *Result {
	res := &Result{
		Population:         sim.cfg.Processors,
		Strategy:           sim.scr.Strategy(),
		ByArch:             map[model.MicroArch]*ArchResult{},
		EffectiveTestcases: map[string]bool{},
	}
	for _, m := range sim.cfg.Mix {
		res.ByArch[m.Arch] = &ArchResult{}
	}
	counts := apportion(sim.cfg.Processors, sim.cfg.Mix)
	type job struct {
		arch   model.MicroArch
		serial string
	}
	var jobs []job
	for i, m := range sim.cfg.Mix {
		ar := res.ByArch[m.Arch]
		ar.Population = counts[i]
		arng := sim.rng.Derive("arch", string(m.Arch))
		scale := sim.cfg.TrueFaultScale
		if scale <= 0 {
			scale = 1
		}
		n := arng.Poisson(float64(counts[i]) * m.FaultyRate * scale)
		ar.Faulty = n
		res.FaultyTotal += n
		for f := 0; f < n; f++ {
			jobs = append(jobs, job{m.Arch, faultySerial(m.Arch, f)})
		}
	}
	scr := sim.Screener()
	screens := make([]Screen, len(jobs))
	for j := range jobs {
		screens[j] = scr.NewScreen(jobs[j].serial, jobs[j].arch)
		screens[j].PreProduction()
	}
	for round := 0; round < sim.cfg.RegularRounds; round++ {
		for j := range screens {
			if !screens[j].RegularRound() {
				continue
			}
			o := screens[j].Outcome()
			scr.Observe(Detection{Serial: jobs[j].serial, Arch: jobs[j].arch,
				Stage: o.Stage, TestcaseID: o.TestcaseID, Round: round})
		}
		scr.EndRound(round)
	}
	for j := range screens {
		o := screens[j].Outcome()
		if !o.Detected {
			res.Escaped++
			continue
		}
		res.DetectedByStage[o.Stage]++
		res.ByArch[jobs[j].arch].Detected++
		res.FaultyProfiles = append(res.FaultyProfiles, o.Profile)
		if o.TestcaseID != "" {
			res.EffectiveTestcases[o.TestcaseID] = true
		}
	}
	return res
}

// TestSiliFuzzSteppedMatchesOneShot: the evolving corpus draws the same
// sequence whether the fleet runs batched through Simulator.Run on a pool
// or stepped serially round by round through the Screener API — corpus
// evolution depends only on the round index and the merge-ordered
// detections, never on scheduling. The corpus fingerprints and generation
// counters must agree, not just the aggregate outcome.
func TestSiliFuzzSteppedMatchesOneShot(t *testing.T) {
	cfg := smallConfig(25)
	cfg.Processors = 100_000
	cfg.Strategy = StrategySiliFuzz
	cfg.Workers = 4

	batch := newSim(t, cfg)
	batchFP := resultFingerprint(cfg, batch.Run())
	bf := batch.Screener().(*siliFuzzScreener)

	stepped := newSim(t, cfg)
	steppedFP := resultFingerprint(cfg, runStepped(stepped))
	sf := stepped.Screener().(*siliFuzzScreener)

	if batchFP != steppedFP {
		t.Errorf("batch and stepped silifuzz runs differ:\n%s\nvs\n%s", batchFP, steppedFP)
	}
	if bf.Generations() != sf.Generations() {
		t.Errorf("generations differ: batch %d, stepped %d", bf.Generations(), sf.Generations())
	}
	if bf.CorpusFingerprint() != sf.CorpusFingerprint() {
		t.Errorf("corpus fingerprints differ: batch %s, stepped %s",
			bf.CorpusFingerprint(), sf.CorpusFingerprint())
	}
	if bf.Generations() != cfg.RegularRounds {
		t.Errorf("generations = %d, want one per regular round (%d)",
			bf.Generations(), cfg.RegularRounds)
	}
}

// TestSiliFuzzCorpusEvolves: a full run must change the seeded corpus
// composition — at minimum the stale-decay path replaces entries that went
// siliStaleRounds rounds without catching anything, so a fingerprint frozen
// across ten rounds means evolution is dead code.
func TestSiliFuzzCorpusEvolves(t *testing.T) {
	cfg := smallConfig(26)
	cfg.Processors = 100_000
	cfg.Strategy = StrategySiliFuzz

	sim := newSim(t, cfg)
	f := sim.Screener().(*siliFuzzScreener)
	seedFP := f.CorpusFingerprint()
	sim.Run()
	if f.Generations() != cfg.RegularRounds {
		t.Errorf("generations = %d, want %d", f.Generations(), cfg.RegularRounds)
	}
	if f.CorpusFingerprint() == seedFP {
		t.Error("corpus fingerprint unchanged after a full run")
	}
}

// TestSiliFuzzFeedbackPromotesAndMutates drives the evolution step directly:
// a detection through a corpus entry must promote it (hit counted, idle
// reset) and spawn a stress-sharpened child over a stale slot, and the
// catching entry must survive the stale sweep that reaps everything else.
func TestSiliFuzzFeedbackPromotesAndMutates(t *testing.T) {
	cfg := smallConfig(29)
	cfg.Processors = 1000
	cfg.Strategy = StrategySiliFuzz
	f := newSim(t, cfg).Screener().(*siliFuzzScreener)

	caught := f.corpus[0].tc.ID
	f.Observe(Detection{Serial: "M1-flt-00000", Arch: "M1", Stage: model.StageRegular,
		TestcaseID: caught, Round: 0})
	f.EndRound(0)

	if f.corpus[0].hits != 1 || f.corpus[0].idle != 0 {
		t.Errorf("catching entry hits=%d idle=%d, want 1/0", f.corpus[0].hits, f.corpus[0].idle)
	}
	mutants := 0
	for i := range f.corpus {
		if f.corpus[i].tc.ID == caught && f.corpus[i].boost > 1 {
			mutants++
			if f.corpus[i].boost < siliBoostLo || f.corpus[i].boost > siliBoostHi {
				t.Errorf("first-generation mutant boost %v outside [%v,%v]",
					f.corpus[i].boost, siliBoostLo, siliBoostHi)
			}
		}
	}
	if mutants != 1 {
		t.Errorf("found %d sharpened mutants of the catching entry, want 1", mutants)
	}

	// Pre-production detections carry no testcase and must not feed back.
	f.Observe(Detection{Serial: "M1-flt-00001", Arch: "M1", Stage: model.StageReinstall})
	if len(f.pending) != 0 {
		t.Error("testcase-less detection queued for evolution")
	}
}

// TestStrategyValidation pins the name surface: every listed strategy
// constructs, the empty string is the default, junk is refused.
func TestStrategyValidation(t *testing.T) {
	if got := NormalizeStrategy(""); got != StrategyFarron {
		t.Errorf("NormalizeStrategy(\"\") = %q, want %q", got, StrategyFarron)
	}
	if ValidStrategy("no-such-screener") {
		t.Error("junk strategy validated")
	}
	cfg := smallConfig(27)
	cfg.Processors = 1000
	for _, strategy := range Strategies() {
		cfg.Strategy = strategy
		sim := newSim(t, cfg)
		if got := sim.Screener().Strategy(); got != strategy {
			t.Errorf("Screener().Strategy() = %q, want %q", got, strategy)
		}
	}
	cfg.Strategy = "no-such-screener"
	if _, err := NewSimulator(cfg, testkit.NewSuite(simrand.New(cfg.Seed))); err == nil {
		t.Error("unknown strategy accepted")
	}
}

// TestCostModels pins each strategy's cost shape: the kit strategies bill
// dedicated round minutes (farron about a tenth of the baseline, Figure
// 11's 1.02 h vs 10.55 h), the inline checker bills an always-on fraction
// and no rounds at all.
func TestCostModels(t *testing.T) {
	cfg := smallConfig(28)
	cfg.Processors = 1000
	costs := map[string]CostModel{}
	for _, strategy := range Strategies() {
		cfg.Strategy = strategy
		costs[strategy] = newSim(t, cfg).Screener().Cost()
	}
	base := costs[StrategyBaseline]
	if base.RoundMinutes != 633 { // 633 testcases × 1 min (Table 4's 10.55 h round)
		t.Errorf("baseline round = %v min, want 633", base.RoundMinutes)
	}
	far := costs[StrategyFarron]
	if far.RoundMinutes <= 0 || far.RoundMinutes >= base.RoundMinutes/9 {
		t.Errorf("farron round = %v min, want about a tenth of baseline's %v",
			far.RoundMinutes, base.RoundMinutes)
	}
	sili := costs[StrategySiliFuzz]
	if sili.RoundMinutes != far.RoundMinutes {
		t.Errorf("silifuzz round = %v min, want farron's cost point %v",
			sili.RoundMinutes, far.RoundMinutes)
	}
	ith := costs[StrategyITHICA]
	if ith.RoundMinutes != 0 || ith.AlwaysOnOverhead != ITHICAOverhead() {
		t.Errorf("ithica cost = %+v, want always-on %v and no rounds", ith, ITHICAOverhead())
	}
	// OverheadFraction folds both shapes into the Table 4 metric.
	if got := base.OverheadFraction(DefaultRegularPeriodMin); got <= 0 || got > 0.006 {
		t.Errorf("baseline overhead = %v, want near the paper's 0.488%%", got)
	}
	if got := ith.OverheadFraction(DefaultRegularPeriodMin); got != ITHICAOverhead() {
		t.Errorf("ithica overhead = %v, want the always-on %v", got, ITHICAOverhead())
	}
}
