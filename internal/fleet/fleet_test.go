package fleet

import (
	"math"
	"testing"

	"farron/internal/model"
	"farron/internal/simrand"
	"farron/internal/testkit"
)

// smallConfig keeps tests fast: 200k CPUs is plenty for rate shape.
func smallConfig(seed uint64) Config {
	cfg := DefaultConfig()
	cfg.Processors = 200_000
	cfg.Seed = seed
	return cfg
}

func newSim(t *testing.T, cfg Config) *Simulator {
	t.Helper()
	suite := testkit.NewSuite(simrand.New(cfg.Seed))
	sim, err := NewSimulator(cfg, suite)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestDefaultMixSumsToOne(t *testing.T) {
	total := 0.0
	weighted := 0.0
	for _, m := range DefaultMix() {
		total += m.Share
		weighted += m.Share * m.FaultyRate
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("shares sum to %v", total)
	}
	// Weighted mean must match the paper's 3.61 per-10k within noise.
	if math.Abs(weighted*1e4-3.61) > 0.1 {
		t.Errorf("weighted rate = %v per 10k, want ~3.61", weighted*1e4)
	}
}

func TestApportionExact(t *testing.T) {
	mix := DefaultMix()
	counts := apportion(1_000_003, mix)
	sum := 0
	for _, c := range counts {
		sum += c
	}
	if sum != 1_000_003 {
		t.Errorf("apportion total = %d", sum)
	}
	for i, c := range counts {
		want := float64(1_000_003) * mix[i].Share
		if math.Abs(float64(c)-want) > 1 {
			t.Errorf("arch %s count %d, want ~%v", mix[i].Arch, c, want)
		}
	}
}

func TestSimulatorValidation(t *testing.T) {
	suite := testkit.NewSuite(simrand.New(1))
	bad := DefaultConfig()
	bad.Processors = 0
	if _, err := NewSimulator(bad, suite); err == nil {
		t.Error("zero population accepted")
	}
	bad = DefaultConfig()
	bad.Mix = []ArchShare{{"M1", 0.5, 1e-4}}
	if _, err := NewSimulator(bad, suite); err == nil {
		t.Error("shares not summing to 1 accepted")
	}
	bad = DefaultConfig()
	bad.Stages = nil
	if _, err := NewSimulator(bad, suite); err == nil {
		t.Error("no stages accepted")
	}
}

func TestRunOverallRateNearPaper(t *testing.T) {
	sim := newSim(t, smallConfig(11))
	res := sim.Run()
	rate := res.OverallRate() * 1e4
	// Paper: 3.61 per 10k detected. Allow generous tolerance for
	// binomial noise at 200k CPUs (~72 faulty) and detection escapes.
	if rate < 2.2 || rate > 4.5 {
		t.Errorf("overall detected rate = %.3f per 10k, want ~3.61", rate)
	}
	if res.FaultyTotal < res.DetectedTotal() {
		t.Error("detected more than exist")
	}
}

func TestReinstallDominatesDetection(t *testing.T) {
	// Table 1 shape: re-install ≫ factory > regular > datacenter.
	sim := newSim(t, smallConfig(12))
	res := sim.Run()
	ri := res.DetectedByStage[model.StageReinstall]
	fa := res.DetectedByStage[model.StageFactory]
	dc := res.DetectedByStage[model.StageDatacenter]
	if ri <= fa || ri <= dc {
		t.Errorf("re-install %d not dominant (factory %d, dc %d)", ri, fa, dc)
	}
	if fa <= dc {
		t.Errorf("factory %d not above datacenter %d", fa, dc)
	}
	// Pre-production dominates overall (paper: 90.36%).
	pre := fa + dc + ri
	if total := res.DetectedTotal(); total > 0 {
		frac := float64(pre) / float64(total)
		if frac < 0.75 {
			t.Errorf("pre-production share = %.2f, want ≥ 0.75 (paper 0.90)", frac)
		}
	}
}

func TestArchOrderingPreserved(t *testing.T) {
	// Table 2 shape: M8 worst, M4 best. Compare detected rates.
	cfg := smallConfig(13)
	cfg.Processors = 400_000
	sim := newSim(t, cfg)
	res := sim.Run()
	m8 := res.ByArch["M8"].FailureRate()
	m4 := res.ByArch["M4"].FailureRate()
	m1 := res.ByArch["M1"].FailureRate()
	if m8 <= m1 || m8 <= m4 {
		t.Errorf("M8 rate %.6f not the worst (M1 %.6f, M4 %.6f)", m8, m1, m4)
	}
	if m4 >= m1 {
		t.Errorf("M4 rate %.6f not below M1 %.6f", m4, m1)
	}
}

func TestPopulationAccounting(t *testing.T) {
	sim := newSim(t, smallConfig(14))
	res := sim.Run()
	pop := 0
	faulty := 0
	for _, ar := range res.ByArch {
		pop += ar.Population
		faulty += ar.Faulty
	}
	if pop != res.Population {
		t.Errorf("arch populations sum to %d, want %d", pop, res.Population)
	}
	if faulty != res.FaultyTotal {
		t.Errorf("arch faulty sum %d != total %d", faulty, res.FaultyTotal)
	}
	if res.DetectedTotal()+res.Escaped != res.FaultyTotal {
		t.Errorf("detected %d + escaped %d != faulty %d",
			res.DetectedTotal(), res.Escaped, res.FaultyTotal)
	}
	if len(res.FaultyProfiles) != res.DetectedTotal() {
		t.Errorf("profiles %d != detected %d", len(res.FaultyProfiles), res.DetectedTotal())
	}
}

func TestEffectiveTestcasesMinority(t *testing.T) {
	// Observation 11: the vast majority of testcases never detect
	// anything.
	sim := newSim(t, smallConfig(15))
	res := sim.Run()
	eff := len(res.EffectiveTestcases)
	if eff == 0 {
		t.Fatal("no effective testcases at all")
	}
	if eff > testkit.SuiteSize/3 {
		t.Errorf("effective testcases = %d/633, want a small minority (paper 73)", eff)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := newSim(t, smallConfig(16)).Run()
	b := newSim(t, smallConfig(16)).Run()
	if a.FaultyTotal != b.FaultyTotal || a.DetectedTotal() != b.DetectedTotal() {
		t.Error("fleet simulation not deterministic")
	}
	for s := model.Stage(0); int(s) < model.NumStages; s++ {
		if a.DetectedByStage[s] != b.DetectedByStage[s] {
			t.Errorf("stage %v differs", s)
		}
	}
}

func TestBestCore(t *testing.T) {
	profiles := newSim(t, smallConfig(17)) // unused, for suite seed parity
	_ = profiles
	sim := newSim(t, smallConfig(18))
	res := sim.Run()
	for _, p := range res.FaultyProfiles {
		for _, d := range p.Defects {
			c := bestCore(d, p.TotalPCores)
			if c < 0 || c >= p.TotalPCores {
				t.Fatalf("bestCore %d out of range", c)
			}
			if d.CoreMultiplier(c) <= 0 {
				t.Fatalf("bestCore has zero multiplier")
			}
		}
	}
}
