package fleet

import (
	"testing"
	"time"

	"farron/internal/simrand"
)

func TestDefaultTopologyShape(t *testing.T) {
	topo := DefaultTopology(simrand.New(1), 1_000_000)
	if got := len(topo.Datacenters); got != 28 {
		t.Errorf("datacenters = %d, want 28 (Section 2.1)", got)
	}
	if got := topo.Countries(); got != 14 {
		t.Errorf("countries = %d, want 14", got)
	}
	if got := topo.Machines(); got != 1_000_000 {
		t.Errorf("machines = %d, want exact total", got)
	}
	if got := topo.ClusterCount(); got < 100 {
		t.Errorf("clusters = %d, want hundreds", got)
	}
	for _, dc := range topo.Datacenters {
		for _, c := range dc.Clusters {
			if c.Machines <= 0 || c.Machines > 6000 {
				t.Fatalf("cluster %s size %d out of range", c.Name, c.Machines)
			}
		}
	}
}

func TestDefaultTopologyDeterministic(t *testing.T) {
	a := DefaultTopology(simrand.New(7), 500_000)
	b := DefaultTopology(simrand.New(7), 500_000)
	if a.ClusterCount() != b.ClusterCount() {
		t.Error("topology not deterministic")
	}
}

func TestTopologyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero machines accepted")
		}
	}()
	DefaultTopology(simrand.New(1), 0)
}

func TestGroupScheduleBasics(t *testing.T) {
	s := NewGroupSchedule(6, 14*24*time.Hour) // 6 groups × 2 weeks = 12-week cycle
	if s.CycleDur() != 84*24*time.Hour {
		t.Errorf("cycle = %v", s.CycleDur())
	}
	// Stable group assignment within [0, Groups).
	for m := 0; m < 1000; m++ {
		g := s.GroupOf(m)
		if g < 0 || g >= 6 {
			t.Fatalf("machine %d group %d", m, g)
		}
		if g != s.GroupOf(m) {
			t.Fatal("group assignment unstable")
		}
	}
	// Groups roughly balanced.
	counts := make([]int, 6)
	for m := 0; m < 60000; m++ {
		counts[s.GroupOf(m)]++
	}
	for g, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("group %d has %d machines, want ~10000", g, c)
		}
	}
}

func TestNextTestStart(t *testing.T) {
	day := 24 * time.Hour
	s := NewGroupSchedule(4, 14*day) // cycle 56 days
	// Find a machine in group 2 (window opens at day 28).
	m := 0
	for s.GroupOf(m) != 2 {
		m++
	}
	if got := s.NextTestStart(m, 0); got != 28*day {
		t.Errorf("next from 0 = %v, want 28d", got)
	}
	if got := s.NextTestStart(m, 28*day); got != 28*day {
		t.Errorf("next from window start = %v", got)
	}
	if got := s.NextTestStart(m, 29*day); got != 84*day {
		t.Errorf("next from 29d = %v, want 84d (next cycle)", got)
	}
}

func TestExposureUntilDetection(t *testing.T) {
	day := 24 * time.Hour
	s := NewGroupSchedule(6, 14*day)
	rng := simrand.New(5)
	// Certain detection: exposure = wait until the window + half window.
	exp, ok := s.ExposureUntilDetection(rng, 123, 0, 1, 10)
	if !ok {
		t.Fatal("certain detection failed")
	}
	want := s.NextTestStart(123, 0) + s.GroupDur/2
	if exp != want {
		t.Errorf("exposure = %v, want %v", exp, want)
	}
	// Zero probability: never detected.
	if _, ok := s.ExposureUntilDetection(rng, 1, 0, 0, 10); ok {
		t.Error("zero probability detected")
	}
	// Partial probability: mean exposure grows with 1/p cycles.
	// (Accumulate in float64 days: a time.Duration sum of 2000 samples
	// of ~100 days overflows int64 nanoseconds.)
	var sumDays float64
	n := 0
	for i := 0; i < 2000; i++ {
		if e, ok := s.ExposureUntilDetection(rng, i, 0, 0.5, 50); ok {
			sumDays += e.Hours() / 24
			n++
		}
	}
	mean := sumDays / float64(n)
	// Expected ≈ mean window wait (~½ cycle 42d) + (1/p − 1)·cycle (84d)
	// + ½ group (7d) ≈ 133d.
	if mean < 80 || mean > 190 {
		t.Errorf("mean exposure = %.0f days, want ~133", mean)
	}
}

func TestGroupSchedulePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid schedule accepted")
		}
	}()
	NewGroupSchedule(0, time.Hour)
}
