// Package fleet models the production CPU population and the test-timing
// pipeline of Figure 1: factory delivery → datacenter delivery → system
// re-installation → regular in-production testing.
//
// The population reproduces Table 2's per-micro-architecture failure rates
// (0.082‱ … 9.29‱, fleet average 3.61‱) and the pipeline's stage
// detection split reproduces Table 1 (factory 0.776‱, datacenter 0.18‱,
// re-install 2.306‱, regular 0.348‱).
//
// Simulating a million CPUs with full per-testcase thermal runs would be
// needlessly slow: healthy processors never fail, so they are counted, not
// executed. Each faulty processor gets an analytic per-stage detection
// probability derived from its defect parameters and the stage's test
// duration and temperature profile — the same quantities the full runner
// integrates, collapsed in closed form.
package fleet

import (
	"fmt"
	"math"
	"strconv"

	"farron/internal/defect"
	"farron/internal/engine"
	"farron/internal/model"
	"farron/internal/simrand"
	"farron/internal/testkit"
)

// ArchShare describes one micro-architecture's slice of the population.
type ArchShare struct {
	Arch model.MicroArch
	// Share is the fraction of the fleet (shares sum to 1).
	Share float64
	// FaultyRate is the fraction of this arch's CPUs that are faulty
	// (Table 2, expressed as a plain fraction, not ‱).
	FaultyRate float64
}

// DefaultMix returns the fleet composition calibrated so the share-weighted
// mean failure rate is 3.61‱ with the per-arch rates of Table 2.
func DefaultMix() []ArchShare {
	return []ArchShare{
		{"M1", 0.13, 4.619e-4},
		{"M2", 0.09, 0.352e-4},
		{"M3", 0.12, 2.649e-4},
		{"M4", 0.06, 0.082e-4},
		{"M5", 0.12, 0.759e-4},
		{"M6", 0.10, 3.251e-4},
		{"M7", 0.10, 1.599e-4},
		{"M8", 0.17, 9.290e-4},
		{"M9", 0.11, 4.646e-4},
	}
}

// StageProfile describes the testing conditions of one pipeline stage.
type StageProfile struct {
	Stage model.Stage
	// PerTestcaseMin is the duration allocated per testcase, in minutes
	// (equal allocation, Section 2.4).
	PerTestcaseMin float64
	// MeanTempC is the typical core temperature reached while testing
	// at this stage (burn-in style testing runs hot; short screens run
	// cooler).
	MeanTempC float64
	// TempSpreadC is the random spread of the achieved temperature.
	TempSpreadC float64
}

// DefaultStages returns stage profiles calibrated against Table 1's
// detection split. Re-installation testing is the long, hot, thorough gate
// (it catches ~64% of all faulty CPUs); factory and datacenter screens are
// brief; regular tests are periodic and moderate.
func DefaultStages() []StageProfile {
	return []StageProfile{
		{model.StageFactory, 0.02, 51, 3},
		{model.StageDatacenter, 0.015, 52, 3},
		{model.StageReinstall, 5, 66, 3},
		{model.StageRegular, 1, 62, 5},
	}
}

// DefaultTrueFaultScale converts Table 2's *detected* failure rates into
// true underlying fault rates: the pipeline's measured end-to-end detection
// probability is ~0.65 (tricky defects with triggering temperatures above
// what any stage reaches escape every screen — exactly why the paper's
// production incidents of Section 2.2 happened despite all that testing).
const DefaultTrueFaultScale = 1.55

// Config configures a fleet simulation.
type Config struct {
	// Processors is the population size (paper: >1,000,000).
	Processors int
	// Mix is the micro-architecture composition.
	Mix []ArchShare
	// Stages is the pipeline.
	Stages []StageProfile
	// RegularRounds is how many regular-test rounds run after the
	// pre-production stages (the study spans 32 months ≈ 10 quarterly
	// rounds).
	RegularRounds int
	// TrueFaultScale multiplies Mix fault rates to convert detected
	// rates (what Table 2 reports) into true underlying rates.
	TrueFaultScale float64
	// Strategy selects the screening strategy for the regular
	// in-production rounds (one of Strategies; "" means StrategyFarron).
	// Pre-production gates are strategy-independent.
	Strategy string
	// RegularPeriodMin is the production time between regular rounds in
	// minutes (values <= 0 mean DefaultRegularPeriodMin, the quarterly
	// cadence). It scales always-on strategies' detection exposure and
	// converts round costs into Table 4 overhead fractions.
	RegularPeriodMin float64
	// Seed drives all randomness.
	Seed uint64
	// Workers bounds the screening goroutines. Results are identical at
	// any worker count: each faulty CPU owns a serial-keyed substream and
	// outcomes merge in serial order. Values < 1 mean serial.
	Workers int
}

// DefaultRegularPeriodMin is the quarterly regular-testing cadence in
// minutes (90 days — the study's ~10 rounds over 32 months).
const DefaultRegularPeriodMin = 90 * 24 * 60

// DefaultConfig returns the paper-scale configuration.
func DefaultConfig() Config {
	return Config{
		Processors:       1_000_000,
		Mix:              DefaultMix(),
		Stages:           DefaultStages(),
		RegularRounds:    10,
		TrueFaultScale:   DefaultTrueFaultScale,
		Strategy:         StrategyFarron,
		RegularPeriodMin: DefaultRegularPeriodMin,
		Seed:             1,
	}
}

// Result summarizes a fleet simulation.
type Result struct {
	// Population is the simulated processor count.
	Population int
	// Strategy is the screening strategy the fleet ran under.
	Strategy string
	// FaultyTotal is how many processors carry defects.
	FaultyTotal int
	// DetectedByStage counts first detections per stage.
	DetectedByStage [model.NumStages]int
	// Escaped counts faulty processors never detected in any stage.
	Escaped int
	// ByArch aggregates per micro-architecture.
	ByArch map[model.MicroArch]*ArchResult
	// FaultyProfiles holds the generated profiles of detected faulty
	// processors (inputs for deeper study).
	FaultyProfiles []*defect.Profile
	// EffectiveTestcases is the set of testcase IDs that detected at
	// least one fault anywhere in the fleet (Observation 11).
	EffectiveTestcases map[string]bool
}

// ArchResult is the per-architecture aggregate.
type ArchResult struct {
	Population int
	Faulty     int
	Detected   int
}

// FailureRate returns detected faulty CPUs over population.
func (a *ArchResult) FailureRate() float64 {
	if a.Population == 0 {
		return 0
	}
	return float64(a.Detected) / float64(a.Population)
}

// DetectedTotal sums detections across stages.
func (r *Result) DetectedTotal() int {
	t := 0
	for _, n := range r.DetectedByStage {
		t += n
	}
	return t
}

// OverallRate returns total detected over population.
func (r *Result) OverallRate() float64 {
	if r.Population == 0 {
		return 0
	}
	return float64(r.DetectedTotal()) / float64(r.Population)
}

// StageRate returns a stage's detections over population.
func (r *Result) StageRate(s model.Stage) float64 {
	if r.Population == 0 {
		return 0
	}
	return float64(r.DetectedByStage[s]) / float64(r.Population)
}

// Simulator runs fleet-scale screening.
type Simulator struct {
	cfg   Config
	suite *testkit.Suite
	rng   *simrand.Source
	scr   Screener
	// regularSP caches the regular-testing stage profile (hasRegular
	// false when none is configured): every screen consults it every
	// round, and cfg.Stages is frozen after NewSimulator, so the
	// per-round linear scan is hoisted here.
	regularSP  StageProfile
	hasRegular bool
}

// NewSimulator builds a simulator; the suite is used to derive per-defect
// detectability (how many testcases can catch it and at what stress).
func NewSimulator(cfg Config, suite *testkit.Suite) (*Simulator, error) {
	if cfg.Processors <= 0 {
		return nil, fmt.Errorf("fleet: non-positive population")
	}
	total := 0.0
	for _, m := range cfg.Mix {
		if m.Share < 0 || m.FaultyRate < 0 {
			return nil, fmt.Errorf("fleet: negative share or rate for %s", m.Arch)
		}
		total += m.Share
	}
	if math.Abs(total-1) > 1e-9 {
		return nil, fmt.Errorf("fleet: shares sum to %v, want 1", total)
	}
	if len(cfg.Stages) == 0 {
		return nil, fmt.Errorf("fleet: no stages")
	}
	cfg.Strategy = NormalizeStrategy(cfg.Strategy)
	if cfg.RegularPeriodMin <= 0 {
		cfg.RegularPeriodMin = DefaultRegularPeriodMin
	}
	s := &Simulator{cfg: cfg, suite: suite, rng: simrand.New(cfg.Seed).Derive("fleet")}
	for _, sp := range cfg.Stages {
		if sp.Stage == model.StageRegular {
			s.regularSP, s.hasRegular = sp, true
			break
		}
	}
	scr, err := newScreener(s, cfg.Strategy)
	if err != nil {
		return nil, err
	}
	s.scr = scr
	return s, nil
}

// Screener returns the simulator's screening strategy.
func (s *Simulator) Screener() Screener { return s.scr }

// Run executes the simulation. Faulty-CPU screening is sharded per CPU:
// each processor's profile and pipeline randomness derive from its serial,
// so the result is identical at any Workers value. Healthy processors are
// counted, never executed.
//
// The loop is round-major so feedback-driven strategies work: screens are
// built and pre-produced in parallel, then each regular round sweeps the
// whole fleet in parallel, feeds the round's detections to the screener in
// serial merge order, and lets it evolve (EndRound) before the next round
// begins. For per-CPU-substream strategies this draws the exact sequence
// the old CPU-major loop drew, so the default strategy's results are
// byte-identical to the pre-interface simulator.
func (s *Simulator) Run() *Result {
	res := &Result{
		Population:         s.cfg.Processors,
		Strategy:           s.scr.Strategy(),
		ByArch:             map[model.MicroArch]*ArchResult{},
		EffectiveTestcases: map[string]bool{},
	}
	for _, m := range s.cfg.Mix {
		res.ByArch[m.Arch] = &ArchResult{}
	}

	// Allocate population counts per arch (largest-remainder rounding).
	counts := apportion(s.cfg.Processors, s.cfg.Mix)

	// Serial prologue: per-arch faulty-CPU counts (one cheap Poisson draw
	// per arch), then the flat shard list of every faulty CPU — counted
	// first so the list is allocated once at its final size.
	type job struct {
		archIdx int
		serial  string
	}
	faulty := make([]int, len(s.cfg.Mix))
	for i, m := range s.cfg.Mix {
		ar := res.ByArch[m.Arch]
		ar.Population = counts[i]
		// Draw the number of faulty CPUs binomially via Poisson
		// approximation (rate ≤ 1e-3, population ~1e5: excellent).
		arng := s.rng.Derive("arch", string(m.Arch))
		scale := s.cfg.TrueFaultScale
		if scale <= 0 {
			scale = 1
		}
		nFaulty := arng.Poisson(float64(counts[i]) * m.FaultyRate * scale)
		faulty[i] = nFaulty
		ar.Faulty = nFaulty
		res.FaultyTotal += nFaulty
	}
	jobs := make([]job, 0, res.FaultyTotal)
	for i, m := range s.cfg.Mix {
		for f := 0; f < faulty[i]; f++ {
			jobs = append(jobs, job{i, faultySerial(m.Arch, f)})
		}
	}

	// Parallel screen construction and pre-production: the CPU's serial
	// keys both its generated profile and its screening substream.
	pool := engine.NewPool(s.cfg.Workers)
	screens := engine.MapPlain(pool, len(jobs), func(j int) Screen {
		return s.scr.NewScreen(jobs[j].serial, s.cfg.Mix[jobs[j].archIdx].Arch)
	})
	pool.Run(len(screens), func(j int) { screens[j].PreProduction() })

	// Regular rounds, fleet-wide: parallel sweep, then the round's
	// detections to the screener in serial merge order (arch order, then
	// serial), then the strategy's evolution step. Detected screens'
	// later RegularRound calls are draw-free no-ops. The hit vector is
	// allocated once and rewritten per round (every slot is assigned
	// every round, so no clearing is needed).
	hits := make([]bool, len(screens))
	for round := 0; round < s.cfg.RegularRounds; round++ {
		pool.Run(len(screens), func(j int) {
			hits[j] = screens[j].RegularRound()
		})
		for j, hit := range hits {
			if !hit {
				continue
			}
			o := screens[j].Outcome()
			s.scr.Observe(Detection{
				Serial:     jobs[j].serial,
				Arch:       s.cfg.Mix[jobs[j].archIdx].Arch,
				Stage:      o.Stage,
				TestcaseID: o.TestcaseID,
				Round:      round,
			})
		}
		s.scr.EndRound(round)
	}

	// Deterministic merge in serial order.
	for j := range screens {
		o := screens[j].Outcome()
		if !o.Detected {
			res.Escaped++
			continue
		}
		res.DetectedByStage[o.Stage]++
		res.ByArch[s.cfg.Mix[jobs[j].archIdx].Arch].Detected++
		res.FaultyProfiles = append(res.FaultyProfiles, o.Profile)
		if o.TestcaseID != "" {
			res.EffectiveTestcases[o.TestcaseID] = true
		}
	}
	return res
}

// faultySerial formats a faulty CPU's serial ("M1-flt-00042"). It matches
// the original "%s-flt-%05d" byte for byte at every index width — five
// digits zero-padded, wider indexes printed in full — without fmt's
// interface boxing on the hot prologue path.
func faultySerial(arch model.MicroArch, f int) string {
	buf := make([]byte, 0, len(arch)+16)
	buf = append(buf, arch...)
	buf = append(buf, "-flt-"...)
	for pow := int64(10_000); int64(f) < pow && pow >= 10; pow /= 10 {
		buf = append(buf, '0')
	}
	buf = strconv.AppendInt(buf, int64(f), 10)
	return string(buf)
}

// screen pushes one faulty processor through the whole pipeline and returns
// the first detecting stage and testcase. It is the one-shot expression of
// the resumable CPUScreen state machine (campaign.go): stages run in
// configured order, the regular stage for RegularRounds rounds, drawing
// from the same serial-keyed substream a campaign-stepped screen would —
// so batch results are byte-identical to a screen resumed round by round.
func (s *Simulator) screen(rng *simrand.Source, p *defect.Profile) (model.Stage, string, bool) {
	cs := s.newScreenState("", "", p, rng)
	for _, sp := range s.cfg.Stages {
		rounds := 1
		if sp.Stage == model.StageRegular {
			rounds = s.cfg.RegularRounds
		}
		for round := 0; round < rounds; round++ {
			if cs.round(sp) {
				return cs.Stage, cs.TestcaseID, true
			}
		}
	}
	return 0, "", false
}

// stageDetect computes whether one stage's test round catches the
// processor: for each (testcase, defect) setting it evaluates the analytic
// detection probability 1−exp(−λ·t) at the stage's achieved temperature,
// using the defect's most detectable core.
func (s *Simulator) stageDetect(rng *simrand.Source, p *defect.Profile, failing []*testkit.Testcase, sp StageProfile) (string, bool) {
	temp := rng.Norm(sp.MeanTempC, sp.TempSpreadC)
	for _, d := range p.Defects {
		core := bestCore(d, p.TotalPCores)
		for _, tc := range failing {
			if !testkit.DetectableBy(tc, d) {
				continue
			}
			stress := testkit.SettingStress(tc, d)
			rate := d.RatePerMin(core, temp, stress)
			if rate <= 0 {
				continue
			}
			pDetect := 1 - math.Exp(-rate*sp.PerTestcaseMin)
			if rng.Bool(pDetect) {
				return tc.ID, true
			}
		}
	}
	return "", false
}

// bestCore returns the defective core with the highest rate multiplier.
func bestCore(d *defect.Defect, totalCores int) int {
	best, bestM := -1, 0.0
	for _, c := range d.DefectiveCores(totalCores) {
		if m := d.CoreMultiplier(c); m > bestM {
			best, bestM = c, m
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

// apportion distributes n across shares with largest-remainder rounding.
func apportion(n int, mix []ArchShare) []int {
	counts := make([]int, len(mix))
	type rem struct {
		idx  int
		frac float64
	}
	var rems []rem
	assigned := 0
	for i, m := range mix {
		exact := float64(n) * m.Share
		counts[i] = int(exact)
		assigned += counts[i]
		rems = append(rems, rem{i, exact - float64(counts[i])})
	}
	// Hand out remaining units to the largest fractional parts.
	for assigned < n {
		best := 0
		for i := 1; i < len(rems); i++ {
			if rems[i].frac > rems[best].frac {
				best = i
			}
		}
		counts[rems[best].idx]++
		rems[best].frac = -1
		assigned++
	}
	return counts
}
