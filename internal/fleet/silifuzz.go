// The SiliFuzz-style strategy: instead of sweeping the fixed 633-case
// manufacturer kit every round, screening runs a small corpus of proxy
// testcases that *evolves* from detection feedback ("SiliFuzz: Fuzzing
// CPUs by proxy"). A detection promotes the catching corpus entry and
// spawns a stress-sharpened mutant of it; entries that go rounds without
// catching anything decay back into fresh random picks from the kit, so
// the corpus keeps exploring.
//
// Determinism contract (see DESIGN.md "Screening strategies"): the corpus
// is read-only while a round's screens run in parallel — every CPU in a
// round sees the same suite — and mutates only in EndRound, on the serial
// merge path, from a substream keyed on the round index. Detections arrive
// in fleet serial order regardless of worker count, so corpus evolution —
// and therefore every later round's draw sequence — is byte-identical at a
// fixed seed across -workers, -fanout and -hosts.

package fleet

import (
	"hash/fnv"
	"math"
	"strconv"

	"farron/internal/defect"
	"farron/internal/model"
	"farron/internal/testkit"
)

const (
	// siliCorpusSize is the live corpus size — SiliFuzz keeps a small
	// distilled corpus per microarchitecture, not the whole kit.
	siliCorpusSize = 64
	// siliStaleRounds is how many consecutive rounds an entry may go
	// without a detection before it decays into a fresh random pick.
	siliStaleRounds = 3
	// siliBoostLo/Hi bound the per-mutation stress sharpening; siliBoostMax
	// caps the accumulated boost (the occurrence-rate cap makes further
	// sharpening pointless anyway).
	siliBoostLo  = 1.05
	siliBoostHi  = 1.50
	siliBoostMax = 8.0
)

// siliEntry is one corpus testcase: the kit testcase it proxies, the
// stress boost accumulated through mutation, and its feedback bookkeeping.
type siliEntry struct {
	tc    *testkit.Testcase
	boost float64
	hits  int
	idle  int
}

// siliFuzzScreener holds the evolving corpus. Screens hold a pointer to
// the screener and walk f.corpus live each round, so evolution between
// rounds is visible to every screen's next round.
type siliFuzzScreener struct {
	sim *Simulator
	// corpus is read-only during a round; mutated only in EndRound.
	corpus []siliEntry
	// pending are this round's detections (testcase IDs) in merge order.
	pending []string
	// generations counts EndRound evolutions applied so far.
	generations int
	// mutations counts EndRound steps that actually changed the corpus
	// composition (a spawned mutant or a stale-decay replacement). Screens
	// key their compiled per-CPU plans on it: generations advances every
	// round, but a plan only goes stale when an entry's testcase or boost
	// changed.
	mutations int
	// perEntryMin is the test time per corpus entry per round: the
	// farron-sized round budget spread over the corpus, so silifuzz
	// competes at farron's cost point with evolved (not fixed) coverage.
	perEntryMin  float64
	roundMinutes float64
}

func newSiliFuzzScreener(s *Simulator) *siliFuzzScreener {
	f := &siliFuzzScreener{sim: s, roundMinutes: s.KitRoundMinutes() * FarronRoundShare}
	tcs := s.suiteTestcases()
	k := siliCorpusSize
	if k > len(tcs) {
		k = len(tcs)
	}
	if k > 0 {
		rng := s.rng.Derive("silifuzz", "seed")
		f.corpus = make([]siliEntry, 0, k)
		for _, idx := range rng.PickN(len(tcs), k) {
			f.corpus = append(f.corpus, siliEntry{tc: tcs[idx], boost: 1})
		}
		f.perEntryMin = f.roundMinutes / float64(k)
	}
	return f
}

func (f *siliFuzzScreener) Strategy() string { return StrategySiliFuzz }

func (f *siliFuzzScreener) NewScreen(serial string, arch model.MicroArch) Screen {
	p := defect.FleetFaulty(f.sim.rng, serial, arch)
	cs := f.sim.newScreenState(serial, arch, p, f.sim.screenRng(StrategySiliFuzz, serial))
	ss := &siliScreen{CPUScreen: cs, scr: f, planGen: -1}
	if !f.sim.suite.Reference() {
		ss.compileCoefs()
	}
	return ss
}

func (f *siliFuzzScreener) Observe(d Detection) {
	// Pre-production detections come from the kit gates, not the corpus;
	// only corpus catches feed evolution.
	if d.TestcaseID == "" {
		return
	}
	f.pending = append(f.pending, d.TestcaseID)
}

// EndRound applies this round's feedback: promote catching entries, spawn
// sharpened mutants over the weakest slots, then decay stale entries into
// fresh kit picks. All randomness comes from a substream keyed on the
// round index — independent of how the round's screens were scheduled.
func (f *siliFuzzScreener) EndRound(round int) {
	if len(f.corpus) == 0 {
		return
	}
	rng := f.sim.rng.Derive("silifuzz", "evolve", strconv.Itoa(round))
	for i := range f.corpus {
		f.corpus[i].idle++
	}
	for _, id := range f.pending {
		i := f.entryByID(id)
		if i < 0 {
			continue // the catching entry was already evolved away this round
		}
		f.corpus[i].hits++
		f.corpus[i].idle = 0
		child := siliEntry{
			tc:    f.corpus[i].tc,
			boost: math.Min(f.corpus[i].boost*rng.Range(siliBoostLo, siliBoostHi), siliBoostMax),
		}
		if w := f.weakest(); w >= 0 {
			f.corpus[w] = child
			f.mutations++
		}
	}
	f.pending = f.pending[:0]
	tcs := f.sim.suiteTestcases()
	for i := range f.corpus {
		if f.corpus[i].idle >= siliStaleRounds {
			f.corpus[i] = siliEntry{tc: tcs[rng.Intn(len(tcs))], boost: 1}
			f.mutations++
		}
	}
	f.generations++
}

func (f *siliFuzzScreener) Cost() CostModel { return CostModel{RoundMinutes: f.roundMinutes} }

// entryByID returns the first corpus index proxying the testcase, -1 if
// the entry has been evolved away.
func (f *siliFuzzScreener) entryByID(id string) int {
	for i := range f.corpus {
		if f.corpus[i].tc.ID == id {
			return i
		}
	}
	return -1
}

// weakest returns the replacement slot for a spawned mutant: the entry
// longest without a detection, lowest hit count breaking ties, lowest
// index breaking those — never an entry promoted or spawned this round
// (idle 0). Returns -1 when every slot is hot.
func (f *siliFuzzScreener) weakest() int {
	best := -1
	for i := range f.corpus {
		if f.corpus[i].idle == 0 {
			continue
		}
		if best < 0 ||
			f.corpus[i].idle > f.corpus[best].idle ||
			(f.corpus[i].idle == f.corpus[best].idle && f.corpus[i].hits < f.corpus[best].hits) {
			best = i
		}
	}
	return best
}

// Generations reports how many evolution steps the corpus has applied.
func (f *siliFuzzScreener) Generations() int { return f.generations }

// CorpusFingerprint hashes the corpus composition (testcase IDs, boosts,
// hit counts, in slot order) — the determinism probe the stepped-vs-batch
// tests compare.
func (f *siliFuzzScreener) CorpusFingerprint() string {
	h := fnv.New64a()
	for i := range f.corpus {
		e := &f.corpus[i]
		h.Write([]byte(e.tc.ID))
		h.Write([]byte{0})
		h.Write([]byte(strconv.FormatFloat(e.boost, 'g', -1, 64)))
		h.Write([]byte{0})
		h.Write([]byte(strconv.Itoa(e.hits)))
		h.Write([]byte{1})
	}
	return strconv.FormatUint(h.Sum64(), 16)
}

// siliScreen screens one CPU against the live corpus. Pre-production runs
// the kit gates through the embedded CPUScreen (the factory/datacenter/
// re-installation pipeline is strategy-independent); regular rounds walk
// the corpus instead of the kit.
type siliScreen struct {
	*CPUScreen
	scr *siliFuzzScreener
	// coefs are the profile's temperature-independent per-defect rate
	// coefficients (best-core leading factor and saturation), compiled
	// once per CPU so re-compiling the corpus plan after an evolution
	// never re-derives them. Compiled-suite path only.
	coefs []siliDefectCoef
	// plan is the live corpus compiled against this CPU's profile into
	// the kit detection plan's entry form (plan.go); planGen is the
	// screener mutation count it was compiled at. The corpus is frozen
	// while a round's screens run, so the plan only goes stale when
	// EndRound actually changes corpus composition — idle rounds re-walk
	// the cached entries without touching DetectableBy or SettingStress.
	plan    detectionPlan
	planGen int
}

// siliDefectCoef is one profile defect's compiled rate coefficients: bm is
// BaseFreqPerMin·CoreMultiplier(bestCore), exactly planEntry's leading
// factor.
type siliDefectCoef struct {
	d   *defect.Defect
	bm  float64
	sat float64
}

// compileCoefs builds the per-defect coefficient table, dropping defects
// whose best-core multiplier is zero (their naive rate is identically zero
// at any temperature and stress, so they never consumed a draw).
func (ss *siliScreen) compileCoefs() {
	p := ss.Profile
	ss.coefs = make([]siliDefectCoef, 0, len(p.Defects))
	for _, d := range p.Defects {
		m := d.CoreMultiplier(bestCore(d, p.TotalPCores))
		if m == 0 {
			continue
		}
		ss.coefs = append(ss.coefs, siliDefectCoef{
			d: d, bm: d.BaseFreqPerMin * m, sat: d.EffectiveSatDecades(),
		})
	}
}

// compilePlan compiles the current corpus against the screen's profile, in
// the naive draw order (corpus slots outer, defects inner). Every dropped
// setting — undetectable pair, non-positive boosted stress — had an
// identically-zero naive rate, so the compiled walk consumes the same
// draws. prev recycles the previous compilation's backing array.
func (ss *siliScreen) compilePlan(prev []planEntry) detectionPlan {
	entries := prev[:0]
	for i := range ss.scr.corpus {
		e := &ss.scr.corpus[i]
		for _, c := range ss.coefs {
			if !testkit.DetectableBy(e.tc, c.d) {
				continue
			}
			stress := testkit.SettingStress(e.tc, c.d) * e.boost
			if stress <= 0 {
				continue
			}
			entries = append(entries, planEntry{
				tcID: e.tc.ID, bm: c.bm, stress: stress,
				minTempC: c.d.MinTempC, slope: c.d.TempSlope, sat: c.sat,
			})
		}
	}
	return detectionPlan{entries: entries}
}

// RegularRound executes the current corpus against the processor: one
// stage temperature draw, then per (entry, defect) setting one detection
// draw at the entry's boosted stress over the per-entry time slice. Draw
// order is corpus slot order (a fuzzing run executes its corpus in order),
// defects inner — deterministic because the corpus is frozen for the
// round. The compiled path evaluates the cached plan through
// detectionPlan.detect under a synthetic profile carrying the per-entry
// time slice; a reference suite runs the retained naive walk.
func (ss *siliScreen) RegularRound() bool {
	cs := ss.CPUScreen
	if cs.Detected {
		return false
	}
	sp, ok := cs.sim.RegularStage()
	if !ok {
		return false
	}
	cs.Rounds++
	if cs.sim.suite.Reference() {
		return ss.naiveRound(sp)
	}
	if ss.planGen != ss.scr.mutations {
		ss.plan = ss.compilePlan(ss.plan.entries)
		ss.planGen = ss.scr.mutations
	}
	tcID, hit := ss.plan.detect(cs.rng, StageProfile{
		Stage:          sp.Stage,
		PerTestcaseMin: ss.scr.perEntryMin,
		MeanTempC:      sp.MeanTempC,
		TempSpreadC:    sp.TempSpreadC,
	})
	if hit {
		cs.Detected = true
		cs.Stage = sp.Stage
		cs.TestcaseID = tcID
	}
	return hit
}

// naiveRound is the retained reference-suite round: the per-pair
// RatePerMin walk the compiled plan reproduces draw-for-draw.
func (ss *siliScreen) naiveRound(sp StageProfile) bool {
	cs := ss.CPUScreen
	temp := cs.rng.Norm(sp.MeanTempC, sp.TempSpreadC)
	for i := range ss.scr.corpus {
		e := &ss.scr.corpus[i]
		for _, d := range cs.Profile.Defects {
			if !testkit.DetectableBy(e.tc, d) {
				continue
			}
			stress := testkit.SettingStress(e.tc, d) * e.boost
			rate := d.RatePerMin(bestCore(d, cs.Profile.TotalPCores), temp, stress)
			if rate <= 0 {
				continue
			}
			pDetect := 1 - math.Exp(-rate*ss.scr.perEntryMin)
			if cs.rng.Bool(pDetect) {
				cs.Detected = true
				cs.Stage = sp.Stage
				cs.TestcaseID = e.tc.ID
				return true
			}
		}
	}
	return false
}
