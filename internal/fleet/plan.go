// Hot-path compilation, fleet side (see DESIGN.md "Hot-path compilation"):
// the per-CPU detection plan. A faulty processor's pipeline outcome is a
// walk over its (testcase, defect) settings once per stage round; every
// temperature-independent factor of the analytic detection probability is
// a pure function of the profile, so screen compiles them into a flat
// entry list once and each round only draws the stage temperature and
// evaluates the per-entry rate.

package fleet

import (
	"math"

	"farron/internal/defect"
	"farron/internal/simrand"
	"farron/internal/testkit"
)

// planEntry is one (testcase, defect) setting that can consume a detection
// draw: positive stress and a positive multiplier on the defect's best
// core. bm is BaseFreqPerMin·CoreMultiplier(bestCore) — the leading factor
// of Defect.RatePerMin in its exact association, so compiled rates are
// bit-identical to the naive ones.
type planEntry struct {
	tcID     string
	bm       float64
	stress   float64
	minTempC float64
	slope    float64
	sat      float64
}

// detectionPlan is a faulty CPU's compiled screening plan, in the naive
// iteration order (profile defects outer, failing testcases inner).
//
//sdclint:frozen read-only once compilePlan returns
type detectionPlan struct {
	entries []planEntry
}

// compilePlan builds the detection plan for one faulty processor. The
// simrand draw sequence is untouched: every dropped setting had an
// identically-zero rate at any temperature, and stageDetect never drew for
// zero rates.
func (s *Simulator) compilePlan(p *defect.Profile, failing []*testkit.Testcase) detectionPlan {
	entries := make([]planEntry, 0, len(failing))
	for _, d := range p.Defects {
		core := bestCore(d, p.TotalPCores)
		m := d.CoreMultiplier(core)
		if m == 0 {
			continue
		}
		bm := d.BaseFreqPerMin * m
		sat := d.EffectiveSatDecades()
		for _, tc := range failing {
			if !testkit.DetectableBy(tc, d) {
				continue
			}
			stress := testkit.SettingStress(tc, d)
			if stress <= 0 {
				continue
			}
			entries = append(entries, planEntry{
				tcID: tc.ID, bm: bm, stress: stress,
				minTempC: d.MinTempC, slope: d.TempSlope, sat: sat,
			})
		}
	}
	return detectionPlan{entries: entries}
}

// detect evaluates one stage round over the plan: draw the achieved
// temperature, then for each entry evaluate 1−exp(−λ·t) and draw, exactly
// the stageDetect draws in the stageDetect order.
func (pl detectionPlan) detect(rng *simrand.Source, sp StageProfile) (string, bool) {
	temp := rng.Norm(sp.MeanTempC, sp.TempSpreadC)
	for i := range pl.entries {
		e := &pl.entries[i]
		if temp < e.minTempC {
			continue
		}
		expo := e.slope * (temp - e.minTempC)
		if expo > e.sat {
			expo = e.sat
		}
		rate := math.Min(e.bm*math.Pow(10, expo)*e.stress, defect.MaxFreqPerMin)
		if rate <= 0 {
			continue
		}
		pDetect := 1 - math.Exp(-rate*sp.PerTestcaseMin)
		if rng.Bool(pDetect) {
			return e.tcID, true
		}
	}
	return "", false
}
