// The ITHICA-style strategy: no dedicated test rounds at all. Every
// duplicable instruction of the production stream executes twice inside
// the same thread and the results are compared, so a defect that fires
// during real work is caught at its first miscompare. The model follows
// the paper's framing: detection happens at *production* operating
// conditions (an inline checker cannot heat the package to a burn-in
// profile or force adversarial data patterns), continuously over the whole
// period between campaign boundaries, at a large always-on throughput
// overhead derived analytically below instead of by golden recompute.
//
// What inline duplication structurally cannot catch: consistency-class
// defects. Re-executing an instruction in the same thread reproduces the
// same cache-coherence interleaving, so a cross-thread consistency
// violation compares equal — only computation-class defects are checkable.
// High-MinTempC defects also escape, because production silicon never
// reaches the triggering temperature a re-installation burn-in would.

package fleet

import (
	"math"

	"farron/internal/defect"
	"farron/internal/model"
	"farron/internal/testkit"
)

// The overhead coefficient: overhead = δ · (1 + c) · (1 − η).
const (
	// ithicaDupFraction (δ) is the duplicable fraction of the dynamic
	// instruction stream — loads, stores and serializing operations
	// cannot be re-executed in place.
	ithicaDupFraction = 0.85
	// ithicaCheckCost (c) is the extra compare-and-branch work per
	// duplicated instruction.
	ithicaCheckCost = 0.25
	// ithicaAbsorb (η) is the share of duplicate micro-ops absorbed by
	// spare superscalar issue slots — duplicated work that costs no
	// wall time because the pipeline had idle bandwidth anyway.
	ithicaAbsorb = 0.65
)

// Production operating conditions the inline checker runs under.
const (
	// ithicaProdTempC / ithicaProdSpreadC model the per-period mean core
	// temperature of production service — well below every test stage's
	// burn-in profile.
	ithicaProdTempC   = 52.0
	ithicaProdSpreadC = 4.0
	// ithicaDuty is the fleet's production utilization: the fraction of
	// the period a CPU spends executing checked work.
	ithicaDuty = 0.70
	// ithicaStressScale scales a defect's dedicated-test stress down to
	// what ordinary production instruction mixes exercise: test kits
	// concentrate adversarial patterns on the defective unit; production
	// code touches it incidentally.
	ithicaStressScale = 0.05
)

// ITHICAOverhead returns the modeled always-on throughput overhead of
// inline duplicate execution: δ·(1+c)·(1−η) ≈ 0.37 — the strategy's whole
// cost story. Exported so the strategy-sweep table and DESIGN.md quote the
// same number.
func ITHICAOverhead() float64 {
	return ithicaDupFraction * (1 + ithicaCheckCost) * (1 - ithicaAbsorb)
}

// ithicaCheck is one compiled inline-check setting: a checkable defect,
// its best defective core, and the production-mix stress it is exercised
// at.
type ithicaCheck struct {
	d      *defect.Defect
	core   int
	stress float64
}

type ithicaScreener struct {
	sim *Simulator
	// prodSP is the synthetic production-conditions stage profile every
	// round detects under: the production temperature distribution in
	// place of a burn-in profile, and the period's checked machine time
	// (period × duty × δ) in place of a per-testcase slice. Every factor
	// is a config or model constant, so it is compiled once here — the
	// old per-round exposure recomputation was loop-invariant waste.
	prodSP StageProfile
}

func newITHICAScreener(s *Simulator) *ithicaScreener {
	return &ithicaScreener{sim: s, prodSP: StageProfile{
		Stage:          model.StageRegular,
		PerTestcaseMin: s.cfg.RegularPeriodMin * ithicaDuty * ithicaDupFraction,
		MeanTempC:      ithicaProdTempC,
		TempSpreadC:    ithicaProdSpreadC,
	}}
}

func (t *ithicaScreener) Strategy() string { return StrategyITHICA }

func (t *ithicaScreener) NewScreen(serial string, arch model.MicroArch) Screen {
	p := defect.FleetFaulty(t.sim.rng, serial, arch)
	cs := t.sim.newScreenState(serial, arch, p, t.sim.screenRng(StrategyITHICA, serial))
	is := &ithicaScreen{CPUScreen: cs, scr: t}
	// Compile the checkable settings once per CPU, like the detection
	// plan: computation-class defects only, at the mean production-mix
	// stress over the testcases that exercise the defect (the proxy for
	// how often production code touches the defective unit).
	for _, d := range p.Defects {
		if d.Class != model.ClassComputation {
			continue
		}
		sum, n := 0.0, 0
		for _, tc := range cs.failing {
			if !testkit.DetectableBy(tc, d) {
				continue
			}
			sum += testkit.SettingStress(tc, d)
			n++
		}
		if n == 0 {
			continue
		}
		is.checks = append(is.checks, ithicaCheck{
			d:      d,
			core:   bestCore(d, p.TotalPCores),
			stress: sum / float64(n) * ithicaStressScale,
		})
	}
	// Compiled suites further lower the checks into detection-plan entry
	// form so a round is one detectionPlan.detect walk. Dropped checks —
	// zero best-core multiplier, non-positive production stress — had an
	// identically-zero naive rate, so the draw sequence is untouched. The
	// tcID stays empty: a hit is a duplicate-execution miscompare, not a
	// testcase.
	if !t.sim.suite.Reference() {
		entries := make([]planEntry, 0, len(is.checks))
		for _, ck := range is.checks {
			m := ck.d.CoreMultiplier(ck.core)
			if m == 0 || ck.stress <= 0 {
				continue
			}
			entries = append(entries, planEntry{
				bm: ck.d.BaseFreqPerMin * m, stress: ck.stress,
				minTempC: ck.d.MinTempC, slope: ck.d.TempSlope,
				sat: ck.d.EffectiveSatDecades(),
			})
		}
		is.plan = detectionPlan{entries: entries}
	}
	return is
}

func (t *ithicaScreener) Observe(Detection) {}
func (t *ithicaScreener) EndRound(int)      {}

func (t *ithicaScreener) Cost() CostModel {
	return CostModel{AlwaysOnOverhead: ITHICAOverhead()}
}

// ithicaScreen is one CPU under inline checking. Pre-production runs the
// standard kit gates through the embedded CPUScreen (the manufacturing
// pipeline is strategy-independent); a "regular round" models the whole
// production period since the last campaign boundary under continuous
// duplicate execution.
type ithicaScreen struct {
	*CPUScreen
	scr    *ithicaScreener
	checks []ithicaCheck
	// plan is the checks lowered into detection-plan entries (compiled
	// suites only); the retained naive walk over checks serves reference
	// suites.
	plan detectionPlan
}

// RegularRound draws the period's mean production temperature, then one
// detection draw per checkable defect over the period's checked machine
// time (period × duty × δ). TestcaseID stays empty on detection: the
// signal is a duplicate-execution miscompare, not a testcase.
func (is *ithicaScreen) RegularRound() bool {
	cs := is.CPUScreen
	if cs.Detected {
		return false
	}
	if _, ok := cs.sim.RegularStage(); !ok {
		return false
	}
	cs.Rounds++
	if cs.sim.suite.Reference() {
		return is.naiveRound()
	}
	if _, hit := is.plan.detect(cs.rng, is.scr.prodSP); hit {
		cs.Detected = true
		cs.Stage = model.StageRegular
		return true
	}
	return false
}

// naiveRound is the retained reference-suite round: the per-check
// RatePerMin walk the compiled plan reproduces draw-for-draw.
func (is *ithicaScreen) naiveRound() bool {
	cs := is.CPUScreen
	temp := cs.rng.Norm(ithicaProdTempC, ithicaProdSpreadC)
	for i := range is.checks {
		ck := &is.checks[i]
		rate := ck.d.RatePerMin(ck.core, temp, ck.stress)
		if rate <= 0 {
			continue
		}
		pDetect := 1 - math.Exp(-rate*is.scr.prodSP.PerTestcaseMin)
		if cs.rng.Bool(pDetect) {
			cs.Detected = true
			cs.Stage = model.StageRegular
			return true
		}
	}
	return false
}
