// The ITHICA-style strategy: no dedicated test rounds at all. Every
// duplicable instruction of the production stream executes twice inside
// the same thread and the results are compared, so a defect that fires
// during real work is caught at its first miscompare. The model follows
// the paper's framing: detection happens at *production* operating
// conditions (an inline checker cannot heat the package to a burn-in
// profile or force adversarial data patterns), continuously over the whole
// period between campaign boundaries, at a large always-on throughput
// overhead derived analytically below instead of by golden recompute.
//
// What inline duplication structurally cannot catch: consistency-class
// defects. Re-executing an instruction in the same thread reproduces the
// same cache-coherence interleaving, so a cross-thread consistency
// violation compares equal — only computation-class defects are checkable.
// High-MinTempC defects also escape, because production silicon never
// reaches the triggering temperature a re-installation burn-in would.

package fleet

import (
	"math"

	"farron/internal/defect"
	"farron/internal/model"
	"farron/internal/testkit"
)

// The overhead coefficient: overhead = δ · (1 + c) · (1 − η).
const (
	// ithicaDupFraction (δ) is the duplicable fraction of the dynamic
	// instruction stream — loads, stores and serializing operations
	// cannot be re-executed in place.
	ithicaDupFraction = 0.85
	// ithicaCheckCost (c) is the extra compare-and-branch work per
	// duplicated instruction.
	ithicaCheckCost = 0.25
	// ithicaAbsorb (η) is the share of duplicate micro-ops absorbed by
	// spare superscalar issue slots — duplicated work that costs no
	// wall time because the pipeline had idle bandwidth anyway.
	ithicaAbsorb = 0.65
)

// Production operating conditions the inline checker runs under.
const (
	// ithicaProdTempC / ithicaProdSpreadC model the per-period mean core
	// temperature of production service — well below every test stage's
	// burn-in profile.
	ithicaProdTempC   = 52.0
	ithicaProdSpreadC = 4.0
	// ithicaDuty is the fleet's production utilization: the fraction of
	// the period a CPU spends executing checked work.
	ithicaDuty = 0.70
	// ithicaStressScale scales a defect's dedicated-test stress down to
	// what ordinary production instruction mixes exercise: test kits
	// concentrate adversarial patterns on the defective unit; production
	// code touches it incidentally.
	ithicaStressScale = 0.05
)

// ITHICAOverhead returns the modeled always-on throughput overhead of
// inline duplicate execution: δ·(1+c)·(1−η) ≈ 0.37 — the strategy's whole
// cost story. Exported so the strategy-sweep table and DESIGN.md quote the
// same number.
func ITHICAOverhead() float64 {
	return ithicaDupFraction * (1 + ithicaCheckCost) * (1 - ithicaAbsorb)
}

// ithicaCheck is one compiled inline-check setting: a checkable defect,
// its best defective core, and the production-mix stress it is exercised
// at.
type ithicaCheck struct {
	d      *defect.Defect
	core   int
	stress float64
}

type ithicaScreener struct {
	sim *Simulator
}

func newITHICAScreener(s *Simulator) *ithicaScreener { return &ithicaScreener{sim: s} }

func (t *ithicaScreener) Strategy() string { return StrategyITHICA }

func (t *ithicaScreener) NewScreen(serial string, arch model.MicroArch) Screen {
	p := defect.FleetFaulty(t.sim.rng, serial, arch)
	cs := t.sim.newScreenState(serial, arch, p, t.sim.screenRng(StrategyITHICA, serial))
	is := &ithicaScreen{CPUScreen: cs, scr: t}
	// Compile the checkable settings once per CPU, like the detection
	// plan: computation-class defects only, at the mean production-mix
	// stress over the testcases that exercise the defect (the proxy for
	// how often production code touches the defective unit).
	for _, d := range p.Defects {
		if d.Class != model.ClassComputation {
			continue
		}
		sum, n := 0.0, 0
		for _, tc := range cs.failing {
			if !testkit.DetectableBy(tc, d) {
				continue
			}
			sum += testkit.SettingStress(tc, d)
			n++
		}
		if n == 0 {
			continue
		}
		is.checks = append(is.checks, ithicaCheck{
			d:      d,
			core:   bestCore(d, p.TotalPCores),
			stress: sum / float64(n) * ithicaStressScale,
		})
	}
	return is
}

func (t *ithicaScreener) Observe(Detection) {}
func (t *ithicaScreener) EndRound(int)      {}

func (t *ithicaScreener) Cost() CostModel {
	return CostModel{AlwaysOnOverhead: ITHICAOverhead()}
}

// ithicaScreen is one CPU under inline checking. Pre-production runs the
// standard kit gates through the embedded CPUScreen (the manufacturing
// pipeline is strategy-independent); a "regular round" models the whole
// production period since the last campaign boundary under continuous
// duplicate execution.
type ithicaScreen struct {
	*CPUScreen
	scr    *ithicaScreener
	checks []ithicaCheck
}

// RegularRound draws the period's mean production temperature, then one
// detection draw per checkable defect over the period's checked machine
// time (period × duty × δ). TestcaseID stays empty on detection: the
// signal is a duplicate-execution miscompare, not a testcase.
func (is *ithicaScreen) RegularRound() bool {
	cs := is.CPUScreen
	if cs.Detected {
		return false
	}
	if _, ok := cs.sim.RegularStage(); !ok {
		return false
	}
	cs.Rounds++
	temp := cs.rng.Norm(ithicaProdTempC, ithicaProdSpreadC)
	exposure := cs.sim.cfg.RegularPeriodMin * ithicaDuty * ithicaDupFraction
	for i := range is.checks {
		ck := &is.checks[i]
		rate := ck.d.RatePerMin(ck.core, temp, ck.stress)
		if rate <= 0 {
			continue
		}
		pDetect := 1 - math.Exp(-rate*exposure)
		if cs.rng.Bool(pDetect) {
			cs.Detected = true
			cs.Stage = model.StageRegular
			return true
		}
	}
	return false
}
