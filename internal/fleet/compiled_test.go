package fleet

import (
	"testing"

	"farron/internal/simrand"
	"farron/internal/testkit"
)

// newRefSim builds a Simulator over a reference suite, which routes every
// screen through the retained naive round implementations.
func newRefSim(t *testing.T, cfg Config) *Simulator {
	t.Helper()
	suite := testkit.NewReferenceSuite(simrand.New(cfg.Seed))
	sim, err := NewSimulator(cfg, suite)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// TestCompiledStrategiesMatchReferenceSuite cross-checks every strategy's
// compiled round against the retained naive implementation at full
// simulation scope: a compiled-suite run and a reference-suite run at the
// same seed must be fingerprint-identical. For the evolving corpus this
// also proves the mutation-keyed plan cache tracks corpus composition
// exactly — one stale plan entry would shift every later draw and fork the
// whole run.
func TestCompiledStrategiesMatchReferenceSuite(t *testing.T) {
	for _, strategy := range Strategies() {
		t.Run(strategy, func(t *testing.T) {
			cfg := smallConfig(30)
			cfg.Processors = 100_000
			cfg.Strategy = strategy

			compiled := newSim(t, cfg)
			compiledFP := resultFingerprint(cfg, compiled.Run())
			ref := newRefSim(t, cfg)
			refFP := resultFingerprint(cfg, ref.Run())
			if compiledFP != refFP {
				t.Errorf("compiled and reference runs differ:\n%s\nvs\n%s",
					compiledFP, refFP)
			}
			if strategy == StrategySiliFuzz {
				cf := compiled.Screener().(*siliFuzzScreener)
				rf := ref.Screener().(*siliFuzzScreener)
				if cf.CorpusFingerprint() != rf.CorpusFingerprint() {
					t.Errorf("corpus fingerprints differ: compiled %s, reference %s",
						cf.CorpusFingerprint(), rf.CorpusFingerprint())
				}
			}
		})
	}
}

// screenStateOf unwraps a strategy Screen to the embedded CPUScreen (every
// strategy in this package builds on it).
func screenStateOf(t *testing.T, sc Screen) *CPUScreen {
	t.Helper()
	switch s := sc.(type) {
	case *CPUScreen:
		return s
	case *siliScreen:
		return s.CPUScreen
	case *ithicaScreen:
		return s.CPUScreen
	}
	t.Fatalf("unknown screen type %T", sc)
	return nil
}

// TestScreenCPUAllocs pins the per-round screening walk at zero heap
// allocations for every compiled strategy: the kit plan compiles at screen
// construction, the ithica checks at screen construction, and the silifuzz
// corpus plan once per corpus mutation — steady-state rounds only draw and
// walk cached entries. The measured round is forced to re-walk the full
// plan by clearing the detection latch each iteration.
func TestScreenCPUAllocs(t *testing.T) {
	for _, strategy := range []string{StrategyFarron, StrategySiliFuzz, StrategyITHICA} {
		t.Run(strategy, func(t *testing.T) {
			cfg := smallConfig(31)
			cfg.Processors = 1000
			cfg.Strategy = strategy
			sim := newSim(t, cfg)

			// Find a serial whose compiled plan is non-empty so the
			// measured walk is not vacuous.
			var sc Screen
			var cs *CPUScreen
			for f := 0; f < 50 && sc == nil; f++ {
				cand := sim.Screener().NewScreen(faultySerial("M8", f), "M8")
				ccs := screenStateOf(t, cand)
				ccs.PassPreProduction()
				cand.RegularRound() // warm: compiles the corpus plan lazily
				entries := 0
				switch s := cand.(type) {
				case *CPUScreen:
					entries = len(s.plan.entries)
				case *siliScreen:
					entries = len(s.plan.entries)
				case *ithicaScreen:
					entries = len(s.plan.entries)
				}
				if entries > 0 {
					sc, cs = cand, ccs
				}
			}
			if sc == nil {
				t.Fatal("no serial with a non-empty compiled plan in 50 tries")
			}

			allocs := testing.AllocsPerRun(100, func() {
				cs.Detected = false
				sc.RegularRound()
			})
			if allocs != 0 {
				t.Errorf("%s RegularRound allocates %v objects, want 0", strategy, allocs)
			}
		})
	}
}
