package fleet

import (
	"fmt"
	"testing"

	"farron/internal/defect"
	"farron/internal/simrand"
	"farron/internal/testkit"
)

// TestFaultySerialMatchesSprintf pins faultySerial against the original
// fmt format at every width: five digits zero-padded, wider indexes
// printed in full (the old %05d is width-independent past 99999 too).
func TestFaultySerialMatchesSprintf(t *testing.T) {
	for _, f := range []int{0, 1, 9, 10, 42, 99, 100, 999, 1000, 9999,
		10_000, 12_345, 99_999, 100_000, 123_456, 1_000_000} {
		want := fmt.Sprintf("%s-flt-%05d", "M8", f)
		if got := faultySerial("M8", f); got != want {
			t.Errorf("faultySerial(M8, %d) = %q, want %q", f, got, want)
		}
	}
	if got := faultySerial("M1", 7); got != "M1-flt-00007" {
		t.Errorf("faultySerial(M1, 7) = %q", got)
	}
}

// planFixture builds a simulator plus one fleet-faulty profile whose
// compiled plan has entries (the stress and rate coefficients of a real
// screening walk).
func planFixture(t testing.TB) (*Simulator, *defect.Profile, detectionPlan) {
	t.Helper()
	cfg := smallConfig(3)
	suite := testkit.NewSuite(simrand.New(cfg.Seed))
	sim, err := NewSimulator(cfg, suite)
	if err != nil {
		t.Fatal(err)
	}
	rng := simrand.New(cfg.Seed).Derive("fleet")
	for f := 0; f < 50; f++ {
		p := defect.FleetFaulty(rng, faultySerial("M8", f), "M8")
		failing := suite.FailingTestcases(p)
		if plan := sim.compilePlan(p, failing); len(plan.entries) > 0 {
			return sim, p, plan
		}
	}
	t.Fatal("no fleet-faulty profile with plan entries in 50 serials")
	return nil, nil, detectionPlan{}
}

// TestPlanDetectAllocs pins the screening inner loop at zero heap
// allocations per stage round: everything allocation-bearing happens at
// plan compile time, once per CPU.
func TestPlanDetectAllocs(t *testing.T) {
	sim, _, plan := planFixture(t)
	sp := sim.cfg.Stages[0]
	rng := simrand.New(99).Derive("alloc-probe")
	allocs := testing.AllocsPerRun(200, func() {
		plan.detect(rng, sp)
	})
	if allocs != 0 {
		t.Errorf("detectionPlan.detect allocates %v objects per round, want 0", allocs)
	}
}

// TestPlanMatchesStageDetect cross-checks the compiled round against the
// retained naive stageDetect on identical substreams: same detection
// verdict, same detecting testcase.
func TestPlanMatchesStageDetect(t *testing.T) {
	sim, p, plan := planFixture(t)
	failing := sim.suite.FailingTestcases(p)
	for round := 0; round < 64; round++ {
		for _, sp := range sim.cfg.Stages {
			key := fmt.Sprintf("round-%d", round)
			rngA := simrand.New(7).Derive("cmp", key, sp.Stage.String())
			rngB := simrand.New(7).Derive("cmp", key, sp.Stage.String())
			tcA, hitA := plan.detect(rngA, sp)
			tcB, hitB := sim.stageDetect(rngB, p, failing, sp)
			if tcA != tcB || hitA != hitB {
				t.Fatalf("stage %v round %d: plan (%q,%v) vs naive (%q,%v)",
					sp.Stage, round, tcA, hitA, tcB, hitB)
			}
		}
	}
}

// BenchmarkScreenCPU measures one faulty CPU's full pipeline screening —
// profile generation, plan compilation and every stage round.
func BenchmarkScreenCPU(b *testing.B) {
	cfg := smallConfig(3)
	suite := testkit.NewSuite(simrand.New(cfg.Seed))
	sim, err := NewSimulator(cfg, suite)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serial := faultySerial("M8", i%100)
		p := defect.FleetFaulty(sim.rng, serial, "M8")
		crng := sim.rng.Derive("screen", serial)
		sim.screen(crng, p)
	}
}
