package fleet

import (
	"fmt"
	"time"

	"farron/internal/simrand"
)

// Topology models the physical layout of the fleet: Alibaba Cloud operates
// "hundreds of clusters deployed in 28 data centers across 14 countries"
// (Section 2.1). Machines host one processor each for the purposes of the
// SDC study.
type Topology struct {
	Datacenters []*Datacenter
}

// Datacenter is one facility.
type Datacenter struct {
	Name     string
	Country  string
	Clusters []*Cluster
}

// Cluster is one deployment unit.
type Cluster struct {
	Name     string
	Machines int
}

// DefaultTopology distributes totalMachines across 28 datacenters in 14
// countries with a realistic skew (large regions host several DCs and the
// biggest clusters).
func DefaultTopology(rng *simrand.Source, totalMachines int) *Topology {
	if totalMachines <= 0 {
		panic("fleet: topology needs machines")
	}
	r := rng.Derive("topology")
	const nDCs = 28
	const nCountries = 14
	topo := &Topology{}

	// Zipf-ish weights: a few big regions, a long tail.
	weights := make([]float64, nDCs)
	total := 0.0
	for i := range weights {
		weights[i] = 1 / float64(i+1)
		total += weights[i]
	}
	assigned := 0
	for i := 0; i < nDCs; i++ {
		share := weights[i] / total
		machines := int(float64(totalMachines) * share)
		if i == nDCs-1 {
			machines = totalMachines - assigned
		}
		assigned += machines
		dc := &Datacenter{
			Name:    fmt.Sprintf("dc-%02d", i+1),
			Country: fmt.Sprintf("country-%02d", i%nCountries+1),
		}
		// Clusters of ~2000-6000 machines.
		rem := machines
		c := 0
		for rem > 0 {
			size := 2000 + r.Intn(4000)
			if size > rem {
				size = rem
			}
			dc.Clusters = append(dc.Clusters, &Cluster{
				Name:     fmt.Sprintf("%s-c%02d", dc.Name, c),
				Machines: size,
			})
			rem -= size
			c++
		}
		topo.Datacenters = append(topo.Datacenters, dc)
	}
	return topo
}

// Machines returns the total machine count.
func (t *Topology) Machines() int {
	n := 0
	for _, dc := range t.Datacenters {
		for _, c := range dc.Clusters {
			n += c.Machines
		}
	}
	return n
}

// ClusterCount returns the number of clusters ("hundreds").
func (t *Topology) ClusterCount() int {
	n := 0
	for _, dc := range t.Datacenters {
		n += len(dc.Clusters)
	}
	return n
}

// Countries returns the number of distinct countries.
func (t *Topology) Countries() int {
	seen := map[string]bool{}
	for _, dc := range t.Datacenters {
		seen[dc.Country] = true
	}
	return len(seen)
}

// GroupSchedule staggers regular testing across the fleet: "in production,
// machines will be regularly tested in groups. Testing for each group lasts
// about 2 weeks, and testing for the whole fleet needs months"
// (Section 2.4). The schedule is cyclic: after the last group, the first
// group's next round begins.
type GroupSchedule struct {
	// Groups is the number of test groups.
	Groups int
	// GroupDur is how long one group's testing takes (~2 weeks).
	GroupDur time.Duration
}

// NewGroupSchedule validates and builds a schedule.
func NewGroupSchedule(groups int, groupDur time.Duration) *GroupSchedule {
	if groups <= 0 || groupDur <= 0 {
		panic("fleet: invalid group schedule")
	}
	return &GroupSchedule{Groups: groups, GroupDur: groupDur}
}

// CycleDur is the full fleet pass (months, per the paper).
func (s *GroupSchedule) CycleDur() time.Duration {
	return time.Duration(s.Groups) * s.GroupDur
}

// GroupOf assigns a machine to its test group (stable hash partition).
func (s *GroupSchedule) GroupOf(machine int) int {
	h := uint64(machine) * 0x9E3779B97F4A7C15
	return int(h % uint64(s.Groups))
}

// NextTestStart returns when machine's next group-test window opens at or
// after time t.
func (s *GroupSchedule) NextTestStart(machine int, t time.Duration) time.Duration {
	g := time.Duration(s.GroupOf(machine)) * s.GroupDur
	cycle := s.CycleDur()
	if t <= g {
		return g
	}
	elapsed := t - g
	cycles := (elapsed + cycle - 1) / cycle
	return g + cycles*cycle
}

// ExposureUntilDetection returns how long a defect manifesting on machine
// at time onset stays undetected, given that each group-test round detects
// it independently with probability pDetect. The draw walks successive
// windows geometrically.
func (s *GroupSchedule) ExposureUntilDetection(rng *simrand.Source, machine int, onset time.Duration, pDetect float64, maxRounds int) (time.Duration, bool) {
	if pDetect <= 0 {
		return 0, false
	}
	next := s.NextTestStart(machine, onset)
	for round := 0; round < maxRounds; round++ {
		if rng.Bool(pDetect) {
			// Detected midway through the group's window on average.
			return next - onset + s.GroupDur/2, true
		}
		next += s.CycleDur()
	}
	return 0, false
}
