package fleet

import (
	"fmt"
	"testing"

	"farron/internal/defect"
	"farron/internal/model"
)

// TestCampaignSteppedMatchesOneShot pins the resumable-screening refactor:
// advancing a CPUScreen stage by stage and round by round must reproduce
// the one-shot screen() outcome draw for draw — same detecting stage, same
// testcase, same escapes — for every serial.
func TestCampaignSteppedMatchesOneShot(t *testing.T) {
	sim := newSim(t, smallConfig(21))
	detected, escaped := 0, 0
	for i := 0; i < 60; i++ {
		serial := fmt.Sprintf("M8-flt-%05d", i)
		p := defect.FleetFaulty(sim.rng, serial, "M8")
		stage, tcID, hit := sim.screen(sim.rng.Derive("screen", serial), p)

		cs := sim.NewCPUScreen(serial, "M8")
		cs.PreProduction()
		for r := 0; r < sim.cfg.RegularRounds; r++ {
			cs.RegularRound()
		}
		if cs.Detected != hit {
			t.Fatalf("%s: stepped detected=%v, one-shot=%v", serial, cs.Detected, hit)
		}
		if hit {
			detected++
			if cs.Stage != stage || cs.TestcaseID != tcID {
				t.Errorf("%s: stepped (%v, %s), one-shot (%v, %s)",
					serial, cs.Stage, cs.TestcaseID, stage, tcID)
			}
		} else {
			escaped++
		}
	}
	// The pin only demonstrates equivalence if both outcomes occur.
	if detected == 0 || escaped == 0 {
		t.Fatalf("degenerate sample: %d detected, %d escaped", detected, escaped)
	}
}

// TestCPUScreenResumableIndependence checks that interleaving rounds across
// CPUs does not change any CPU's outcome: each screen owns a serial-keyed
// substream, so scheduling order between campaigns is irrelevant.
func TestCPUScreenResumableIndependence(t *testing.T) {
	simA := newSim(t, smallConfig(22))
	simB := newSim(t, smallConfig(22))
	serials := []string{"M1-flt-00000", "M8-flt-00001", "M9-flt-00002"}

	// A: each CPU runs its full pipeline before the next CPU starts.
	outA := make(map[string]string)
	for _, sn := range serials {
		cs := simA.NewCPUScreen(sn, "M8")
		cs.PreProduction()
		for r := 0; r < simA.cfg.RegularRounds; r++ {
			cs.RegularRound()
		}
		outA[sn] = fmt.Sprintf("%v/%v/%s", cs.Detected, cs.Stage, cs.TestcaseID)
	}

	// B: campaign order — all pre-productions, then round-robin rounds.
	screens := make([]*CPUScreen, len(serials))
	for i, sn := range serials {
		screens[i] = simB.NewCPUScreen(sn, "M8")
		screens[i].PreProduction()
	}
	for r := 0; r < simB.cfg.RegularRounds; r++ {
		for _, cs := range screens {
			cs.RegularRound()
		}
	}
	for i, sn := range serials {
		cs := screens[i]
		got := fmt.Sprintf("%v/%v/%s", cs.Detected, cs.Stage, cs.TestcaseID)
		if got != outA[sn] {
			t.Errorf("%s: interleaved %s, sequential %s", sn, got, outA[sn])
		}
	}
}

// TestCPUScreenDetectedRoundsAreNoOps: once detected, further rounds draw
// nothing and change nothing.
func TestCPUScreenDetectedRoundsAreNoOps(t *testing.T) {
	sim := newSim(t, smallConfig(23))
	// Find a serial detected during pre-production.
	for i := 0; i < 200; i++ {
		serial := fmt.Sprintf("M8-flt-%05d", i)
		cs := sim.NewCPUScreen(serial, "M8")
		if !cs.PreProduction() {
			continue
		}
		stage, tcID, rounds := cs.Stage, cs.TestcaseID, cs.Rounds
		before := cs.rng.Uint64() // sentinel: next value the stream would produce
		cs2 := sim.NewCPUScreen(serial, "M8")
		cs2.PreProduction()
		cs2.RegularRound()
		cs2.RegularRound()
		if cs2.Stage != stage || cs2.TestcaseID != tcID || cs2.Rounds != rounds {
			t.Fatalf("%s: post-detection rounds mutated state", serial)
		}
		if got := cs2.rng.Uint64(); got != before {
			t.Fatalf("%s: post-detection rounds consumed randomness", serial)
		}
		return
	}
	t.Skip("no pre-production detection in 200 serials")
}

// TestRegularStage returns the configured regular profile and reports
// absence when the pipeline has none.
func TestRegularStage(t *testing.T) {
	sim := newSim(t, smallConfig(24))
	sp, ok := sim.RegularStage()
	if !ok || sp.Stage != model.StageRegular {
		t.Fatalf("RegularStage = %+v, %v", sp, ok)
	}
	cfg := smallConfig(24)
	cfg.Stages = []StageProfile{{model.StageFactory, 0.02, 51, 3}}
	sim2 := newSim(t, cfg)
	if _, ok := sim2.RegularStage(); ok {
		t.Error("RegularStage reported a regular stage in a pipeline without one")
	}
}
