// The pluggable screening layer. The paper's evaluation compares exactly
// two fixed tools — Farron and the manufacturer's toolchain baseline — but
// the related work proposes structurally different strategies: SiliFuzz
// evolves its testcase corpus from detection feedback instead of running a
// fixed kit, and ITHICA checks every instruction inline by duplicate
// execution instead of running dedicated test rounds at all. Screener is
// the seam that lets one fleet simulation run any of them: a strategy owns
// per-CPU screen construction, sees every regular-round detection in merge
// order, and may evolve its suite between rounds — under the same
// determinism contract as everything else (all randomness from keyed
// simrand substreams, corpus mutation only at serial round boundaries), so
// every strategy is byte-identical at a fixed seed across -workers,
// -fanout and -hosts.
package fleet

import (
	"fmt"

	"farron/internal/defect"
	"farron/internal/engine"
	"farron/internal/model"
	"farron/internal/simrand"
	"farron/internal/testkit"
)

// Strategy names. StrategyFarron is the default (engine.DefaultStrategy)
// and reproduces the pre-interface behavior draw for draw.
const (
	StrategyFarron   = engine.DefaultStrategy
	StrategyBaseline = "baseline"
	StrategySiliFuzz = "silifuzz"
	StrategyITHICA   = "ithica"
)

// Strategies lists every screening strategy in its canonical order (a
// slice, not a map: iteration order is part of rendered output).
func Strategies() []string {
	return []string{StrategyFarron, StrategyBaseline, StrategySiliFuzz, StrategyITHICA}
}

// NormalizeStrategy maps the empty string to the default strategy and
// returns every other name unchanged (validity is checked by NewSimulator).
func NormalizeStrategy(s string) string {
	if s == "" {
		return StrategyFarron
	}
	return s
}

// ValidStrategy reports whether s names a known strategy ("" counts as the
// default).
func ValidStrategy(s string) bool {
	s = NormalizeStrategy(s)
	for _, k := range Strategies() {
		if k == s {
			return true
		}
	}
	return false
}

// Outcome is a screen's pipeline outcome so far: whether (and where) the
// processor was caught, how many regular rounds it has consumed, and the
// generated profile it was screened against. TestcaseID is empty for
// strategies that do not detect through a testcase (ITHICA's inline
// duplicate-execution miscompares).
type Outcome struct {
	Detected   bool
	Stage      model.Stage
	TestcaseID string
	Rounds     int
	Profile    *defect.Profile
}

// Screen is one faulty processor's resumable screening state under some
// strategy. The call discipline mirrors CPUScreen (its reference
// implementation): pre-production once at birth, then one RegularRound per
// campaign; a detected screen consumes no further randomness.
type Screen interface {
	// PreProduction consumes the pre-production stages (factory,
	// datacenter, re-installation) once, reporting detection.
	PreProduction() bool
	// PassPreProduction marks pre-production consumed without drawing —
	// a defect that develops in the field.
	PassPreProduction()
	// RegularRound consumes one regular in-production round, reporting
	// whether this round detected the processor.
	RegularRound() bool
	// Outcome reports the screen's state so far.
	Outcome() Outcome
}

// Detection is one regular-round detection event, fed back to the strategy
// in deterministic merge order (fleet serial order within a round).
type Detection struct {
	Serial     string
	Arch       model.MicroArch
	Stage      model.Stage
	TestcaseID string
	// Round is the regular-round index the detection happened in.
	Round int
}

// CostModel is a strategy's screening cost in machine time.
type CostModel struct {
	// RoundMinutes is the dedicated test time per CPU per regular round
	// (zero for inline checkers — they have no dedicated rounds).
	RoundMinutes float64
	// AlwaysOnOverhead is the fraction of all production compute the
	// strategy consumes continuously (inline duplicate execution); zero
	// for dedicated-round strategies.
	AlwaysOnOverhead float64
}

// OverheadFraction converts the cost model into the paper's Table 4
// metric — the fraction of fleet machine time spent screening — for a
// given production period between regular rounds.
func (c CostModel) OverheadFraction(periodMinutes float64) float64 {
	frac := c.AlwaysOnOverhead
	if periodMinutes > 0 {
		frac += c.RoundMinutes / periodMinutes
	}
	return frac
}

// Screener is a pluggable screening strategy. NewScreen may run
// concurrently across CPUs; Observe and EndRound are called serially
// between rounds (detections in merge order), which is the only window
// where a strategy may mutate shared state such as an evolving corpus —
// during a round the corpus must be read-only so parallel screens see one
// consistent suite.
type Screener interface {
	// Strategy returns the strategy name (one of Strategies).
	Strategy() string
	// NewScreen generates the faulty processor keyed by serial and
	// returns its screening state under this strategy.
	NewScreen(serial string, arch model.MicroArch) Screen
	// Observe feeds one regular-round detection back to the strategy.
	Observe(d Detection)
	// EndRound marks the end of regular round `round`; feedback-driven
	// strategies evolve their suite here, from substreams keyed on the
	// round index so evolution is independent of worker scheduling.
	EndRound(round int)
	// Cost returns the strategy's screening cost model.
	Cost() CostModel
}

// newScreener builds the named strategy for a simulator. The farron
// screener draws from the legacy "screen"/serial substream so the default
// strategy is byte-identical to the pre-interface simulator; every other
// strategy salts its substreams with its name, screening the *same*
// generated defect population (profiles derive from the unsalted stream)
// with independent detection randomness.
func newScreener(s *Simulator, strategy string) (Screener, error) {
	switch NormalizeStrategy(strategy) {
	case StrategyFarron:
		return &kitScreener{sim: s, name: StrategyFarron, salt: "",
			roundMinutes: s.KitRoundMinutes() * FarronRoundShare}, nil
	case StrategyBaseline:
		return &kitScreener{sim: s, name: StrategyBaseline, salt: StrategyBaseline,
			roundMinutes: s.KitRoundMinutes()}, nil
	case StrategySiliFuzz:
		return newSiliFuzzScreener(s), nil
	case StrategyITHICA:
		return newITHICAScreener(s), nil
	default:
		return nil, fmt.Errorf("fleet: unknown screening strategy %q (want one of %v)", strategy, Strategies())
	}
}

// FarronRoundShare is Farron's regular-round duration relative to the
// toolchain baseline's equal-allocation round: the paper's Figure 11 cost
// comparison (1.02 h per round against 10.55 h) — right-sized, prioritized
// test selection covering the same defect space in roughly a tenth of the
// machine time.
const FarronRoundShare = 1.02 / 10.55

// KitRoundMinutes is the machine time of one full equal-allocation kit
// round: every suite testcase at the regular stage's per-testcase budget
// (633 testcases × 1 min = 10.55 h — the paper's baseline round).
func (s *Simulator) KitRoundMinutes() float64 {
	sp, ok := s.RegularStage()
	if !ok {
		return 0
	}
	return float64(len(s.suite.Testcases)) * sp.PerTestcaseMin
}

// screenRng returns the per-CPU screening substream for a strategy salt.
// The empty salt is the legacy farron stream; named salts give each
// strategy an independent detection draw sequence for the same CPU.
func (s *Simulator) screenRng(salt, serial string) *simrand.Source {
	if salt == "" {
		return s.rng.Derive("screen", serial)
	}
	return s.rng.Derive("screen", salt, serial)
}

// kitScreener runs the fixed 633-case kit through the CPUScreen state
// machine — both reference strategies. Farron and the baseline share the
// detection engine (the paper's claim is precisely that Farron reaches
// comparable coverage, Figure 11) and differ in cost: the baseline spends
// the full equal-allocation round, farron a tenth of it.
type kitScreener struct {
	sim          *Simulator
	name         string
	salt         string
	roundMinutes float64
}

func (k *kitScreener) Strategy() string { return k.name }

func (k *kitScreener) NewScreen(serial string, arch model.MicroArch) Screen {
	p := defect.FleetFaulty(k.sim.rng, serial, arch)
	return k.sim.newScreenState(serial, arch, p, k.sim.screenRng(k.salt, serial))
}

func (k *kitScreener) Observe(Detection) {}
func (k *kitScreener) EndRound(int)      {}

func (k *kitScreener) Cost() CostModel { return CostModel{RoundMinutes: k.roundMinutes} }

// Outcome makes CPUScreen satisfy Screen.
func (cs *CPUScreen) Outcome() Outcome {
	return Outcome{
		Detected:   cs.Detected,
		Stage:      cs.Stage,
		TestcaseID: cs.TestcaseID,
		Rounds:     cs.Rounds,
		Profile:    cs.Profile,
	}
}

// suiteTestcases exposes the suite's testcase list to strategy
// implementations in this package.
func (s *Simulator) suiteTestcases() []*testkit.Testcase { return s.suite.Testcases }
