// Package predict implements prediction-based SDC detection: a runtime
// range predictor that flags a result as a silent error when it falls
// outside the predicted interval (the approach of Bautista-Gomez &
// Cappello and Di et al., Section 6.2).
//
// The substrate exists to demonstrate the paper's critique: real CPU SDCs
// on floats mostly flip fraction bits, causing *minor* precision losses
// (Observation 7), which sit comfortably inside any usable prediction
// interval — so accuracy-based detectors miss them, while tightening the
// interval to catch them drowns in false positives.
package predict

import "math"

// RangeDetector predicts the next value of a smooth series from its recent
// history (linear extrapolation from the last two points, the lightweight
// scheme of the HPC literature) and flags values outside
// prediction ± tolerance·scale.
type RangeDetector struct {
	// Tolerance is the relative half-width of the acceptance interval.
	Tolerance float64
	hist      []float64
	// counters
	Observed, Flagged int
}

// NewRangeDetector creates a detector with the given relative tolerance.
func NewRangeDetector(tolerance float64) *RangeDetector {
	if tolerance <= 0 {
		panic("predict: tolerance must be positive")
	}
	return &RangeDetector{Tolerance: tolerance}
}

// predict returns the extrapolated next value and whether a prediction is
// available (needs two points of history).
func (d *RangeDetector) predict() (float64, bool) {
	n := len(d.hist)
	if n < 2 {
		return 0, false
	}
	return 2*d.hist[n-1] - d.hist[n-2], true
}

// Observe feeds the next observed value; it returns true when the value is
// flagged as a suspected silent error. Flagged values are not added to the
// history (the application would re-compute them).
func (d *RangeDetector) Observe(v float64) bool {
	d.Observed++
	pred, ok := d.predict()
	if ok {
		scale := math.Max(math.Abs(pred), math.SmallestNonzeroFloat64)
		if math.Abs(v-pred) > d.Tolerance*scale {
			d.Flagged++
			return true
		}
	}
	d.push(v)
	return false
}

func (d *RangeDetector) push(v float64) {
	d.hist = append(d.hist, v)
	if len(d.hist) > 4 {
		d.hist = d.hist[len(d.hist)-4:]
	}
}

// Reset clears history and counters.
func (d *RangeDetector) Reset() {
	d.hist = d.hist[:0]
	d.Observed = 0
	d.Flagged = 0
}

// EvalReport summarizes a detector evaluation on a corrupted series.
type EvalReport struct {
	// TruePositives: corrupted values flagged. FalseNegatives: corrupted
	// values accepted (the Observation 7 escape). FalsePositives: clean
	// values flagged (the cost of tightening the interval).
	TruePositives, FalseNegatives, FalsePositives, TrueNegatives int
}

// Recall returns the fraction of corruptions caught.
func (r EvalReport) Recall() float64 {
	total := r.TruePositives + r.FalseNegatives
	if total == 0 {
		return 0
	}
	return float64(r.TruePositives) / float64(total)
}

// FalsePositiveRate returns clean values flagged over all clean values.
func (r EvalReport) FalsePositiveRate() float64 {
	total := r.FalsePositives + r.TrueNegatives
	if total == 0 {
		return 0
	}
	return float64(r.FalsePositives) / float64(total)
}

// Evaluate runs the detector over a smooth series where corrupted[i]
// indicates values carrying an injected relative error.
func Evaluate(d *RangeDetector, values []float64, corrupted []bool) EvalReport {
	if len(values) != len(corrupted) {
		panic("predict: values/corrupted length mismatch")
	}
	var rep EvalReport
	for i, v := range values {
		flagged := d.Observe(v)
		switch {
		case corrupted[i] && flagged:
			rep.TruePositives++
		case corrupted[i] && !flagged:
			rep.FalseNegatives++
		case !corrupted[i] && flagged:
			rep.FalsePositives++
		default:
			rep.TrueNegatives++
		}
	}
	return rep
}
