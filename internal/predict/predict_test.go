package predict

import (
	"math"
	"testing"

	"farron/internal/inject"
	"farron/internal/model"
	"farron/internal/simrand"
)

// smoothSeries builds a slowly-varying HPC-style series.
func smoothSeries(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		x := float64(i) * 0.01
		out[i] = 100 + 10*math.Sin(x) + 0.5*x
	}
	return out
}

func TestCleanSeriesNotFlagged(t *testing.T) {
	d := NewRangeDetector(0.05)
	for _, v := range smoothSeries(500) {
		if d.Observe(v) {
			t.Fatal("clean smooth series flagged")
		}
	}
}

func TestLargeCorruptionCaught(t *testing.T) {
	d := NewRangeDetector(0.05)
	series := smoothSeries(100)
	for i, v := range series {
		if i == 50 {
			v *= 3 // a gross corruption (e.g. integer-style loss)
			if !d.Observe(v) {
				t.Fatal("3x corruption not flagged")
			}
			continue
		}
		if d.Observe(v) {
			t.Fatalf("clean value %d flagged", i)
		}
	}
}

func TestObservation7EscapesDetection(t *testing.T) {
	// Fraction-bit flips cause relative losses far below any usable
	// tolerance: the detector misses essentially all of them.
	rng := simrand.New(1)
	series := smoothSeries(2000)
	corrupted := make([]bool, len(series))
	for i := range series {
		if i > 10 && rng.Bool(0.1) {
			bits := math.Float64bits(series[i])
			pos := inject.SamplePosition(rng, model.DTFloat64)
			series[i] = math.Float64frombits(bits ^ 1<<uint(pos))
			corrupted[i] = true
		}
	}
	d := NewRangeDetector(0.05) // a realistic 5% interval
	rep := Evaluate(d, series, corrupted)
	if rep.TruePositives+rep.FalseNegatives == 0 {
		t.Fatal("no corruptions injected")
	}
	if rep.Recall() > 0.1 {
		t.Errorf("recall = %.2f; Observation 7 says fraction-bit flips escape range detection", rep.Recall())
	}
	if rep.FalsePositiveRate() > 0.02 {
		t.Errorf("false positive rate = %.3f on a clean smooth series", rep.FalsePositiveRate())
	}
}

func TestTighteningToleranceExplodes(t *testing.T) {
	// Chasing Observation 7's tiny losses with a tiny tolerance floods
	// the detector with false positives on a noisy-but-healthy series.
	rng := simrand.New(2)
	n := 2000
	series := make([]float64, n)
	corrupted := make([]bool, n)
	for i := range series {
		x := float64(i) * 0.01
		series[i] = 100 + 10*math.Sin(x) + rng.Norm(0, 0.01) // 0.01% noise
	}
	d := NewRangeDetector(1e-6) // tight enough for fraction flips
	rep := Evaluate(d, series, corrupted)
	if rep.FalsePositiveRate() < 0.5 {
		t.Errorf("false positive rate = %.3f; tight tolerance should flood", rep.FalsePositiveRate())
	}
}

func TestResetAndCounters(t *testing.T) {
	d := NewRangeDetector(0.1)
	for _, v := range smoothSeries(50) {
		d.Observe(v)
	}
	if d.Observed != 50 {
		t.Errorf("observed = %d", d.Observed)
	}
	d.Reset()
	if d.Observed != 0 || d.Flagged != 0 {
		t.Error("reset failed")
	}
	if _, ok := d.predict(); ok {
		t.Error("prediction available after reset")
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero tolerance accepted")
		}
	}()
	NewRangeDetector(0)
}

func TestEvaluatePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch accepted")
		}
	}()
	Evaluate(NewRangeDetector(0.1), []float64{1}, []bool{true, false})
}
