package serve

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"farron/internal/engine"
)

// ripenessBuckets is the histogram resolution of the defect-development
// distribution: four quarter buckets for ripening defects plus the ripe
// bucket.
const ripenessBuckets = 5

// ArchCampaign is one micro-architecture's slice of a campaign record.
type ArchCampaign struct {
	Arch         string `json:"arch"`
	Population   int    `json:"population"`
	ActiveFaulty int    `json:"active_faulty"`
	// Ripe counts tracked processors whose defect had developed by this
	// campaign (and were therefore screened).
	Ripe int `json:"ripe"`
	// Births / FaultyBirths / PreDetected / Decommissions / Escapes cover
	// the window since the previous campaign.
	Births        int `json:"births"`
	FaultyBirths  int `json:"faulty_births"`
	PreDetected   int `json:"pre_detected"`
	Decommissions int `json:"decommissions"`
	Escapes       int `json:"escapes"`
	// Detected is this campaign's regular-testing detections; CumDetected
	// and CumEscaped accumulate since service start.
	Detected      int     `json:"detected"`
	CumDetected   int     `json:"cum_detected"`
	CumEscaped    int     `json:"cum_escaped"`
	DetectionRate float64 `json:"detection_rate"`
}

// LifecycleState is one cohort processor's lifecycle position after a
// campaign's step.
type LifecycleState struct {
	CPUID      string        `json:"cpu_id"`
	Rounds     int           `json:"rounds"`
	Detections int           `json:"detections"`
	SDCs       int           `json:"sdcs"`
	TestTime   time.Duration `json:"test_time_ns"`
	OnlineTime time.Duration `json:"online_time_ns"`
	State      string        `json:"state"`
	Done       bool          `json:"done"`
}

// CampaignRecord is one campaign's full outcome. It carries only virtual
// quantities — virtual timestamps, counts, rates — never wall time, so the
// history of a run is byte-identical across runs, hosts and worker
// budgets. The headless determinism test diffs two runs' marshalled
// histories byte for byte.
type CampaignRecord struct {
	Index       int           `json:"index"`
	VirtualTime time.Duration `json:"virtual_time_ns"`
	Period      time.Duration `json:"period_ns"`
	// Strategy is the screening strategy the campaign ran under
	// (-screener; constant for a service's lifetime).
	Strategy     string `json:"strategy"`
	FleetSize    int    `json:"fleet_size"`
	ActiveFaulty int    `json:"active_faulty"`
	// Detected is this campaign's detections (regular rounds plus
	// pre-production catches of the window's births).
	Detected    int `json:"detected"`
	CumDetected int `json:"cum_detected"`
	CumEscaped  int `json:"cum_escaped"`
	// Ripeness is the defect-development histogram over the still-tracked
	// fleet: four quarter buckets plus the ripe bucket.
	Ripeness [ripenessBuckets]int `json:"ripeness"`
	// TestCostMinutes is the campaign's screening budget under the
	// strategy's cost model: per-CPU round minutes plus any always-on
	// overhead taken over the campaign period.
	TestCostMinutes float64          `json:"test_cost_minutes"`
	Arches          []ArchCampaign   `json:"arches"`
	Lifecycle       []LifecycleState `json:"lifecycle"`
	// Entries is how many render entries the campaign executed through the
	// engine runner; Rendered is their concatenated terminal rendering.
	Entries  int    `json:"entries"`
	Rendered string `json:"rendered"`
}

// HistoryJSON marshals the retained campaign history as indented JSON —
// the byte-stable artifact the CI smoke double-runs and diffs.
func (s *Service) HistoryJSON() ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return json.MarshalIndent(s.history, "", "  ")
}

// Status is the service-level snapshot /status serves.
type Status struct {
	Seed            uint64        `json:"seed"`
	Workers         int           `json:"workers"`
	Strategy        string        `json:"strategy"`
	FleetSize       int           `json:"fleet_size"`
	CampaignPeriod  time.Duration `json:"campaign_period_ns"`
	Campaigns       int           `json:"campaigns"`
	DroppedHistory  int           `json:"dropped_history"`
	VirtualTime     time.Duration `json:"virtual_time_ns"`
	ActiveFaulty    int           `json:"active_faulty"`
	CumDetected     int           `json:"cum_detected"`
	CumEscaped      int           `json:"cum_escaped"`
	TestCostMinutes float64       `json:"test_cost_minutes"`
}

// StatusSnapshot returns the current service status.
func (s *Service) StatusSnapshot() Status {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Status{
		Seed:           s.runner.Ctx().Seed,
		Workers:        s.runner.Ctx().Workers,
		Strategy:       s.sim.Screener().Strategy(),
		FleetSize:      s.cfg.FleetSize,
		CampaignPeriod: s.cfg.CampaignPeriod,
		Campaigns:      s.dropped + len(s.history),
		DroppedHistory: s.dropped,
	}
	if n := len(s.history); n > 0 {
		last := &s.history[n-1]
		st.VirtualTime = last.VirtualTime
		st.ActiveFaulty = last.ActiveFaulty
		st.CumDetected = last.CumDetected
		st.CumEscaped = last.CumEscaped
		st.TestCostMinutes = last.TestCostMinutes
	}
	return st
}

// Metrics is the accounting snapshot /metrics serves: engine totals across
// every campaign run plus the per-arch cumulative detection rates. Wall
// times live here (operational metadata), never in the campaign history.
type Metrics struct {
	Campaigns int              `json:"campaigns"`
	Totals    engine.RunTotals `json:"totals"`
	Arches    []ArchCampaign   `json:"arches"`
}

// MetricsSnapshot returns the accumulated engine accounting.
func (s *Service) MetricsSnapshot() Metrics {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m := Metrics{Campaigns: s.dropped + len(s.history), Totals: s.totals}
	if n := len(s.history); n > 0 {
		m.Arches = append(m.Arches, s.history[n-1].Arches...)
	}
	return m
}

// CampaignAt returns the record of campaign index, if still retained.
func (s *Service) CampaignAt(index int) (*CampaignRecord, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i := index - s.dropped
	if i < 0 || i >= len(s.history) {
		return nil, false
	}
	rec := s.history[i]
	return &rec, true
}

// renderFleet / renderRipeness / renderLifecycle are the campaign's render
// entries: pure terminal renderings of an already-computed record, executed
// through engine.Runner so worker pools, the result cache and fan-out all
// exercise the same machinery the batch commands use.
type renderFleet struct{ rec *CampaignRecord }

func (r renderFleet) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign %d [%s] at %v: fleet %d, %d tracked faulty, %d detected (cum %d, escaped %d)\n",
		r.rec.Index, r.rec.Strategy, r.rec.VirtualTime, r.rec.FleetSize, r.rec.ActiveFaulty,
		r.rec.Detected, r.rec.CumDetected, r.rec.CumEscaped)
	fmt.Fprintf(&b, "%-5s %10s %7s %5s %7s %6s %9s\n",
		"arch", "pop", "faulty", "ripe", "det", "cum", "rate")
	for _, a := range r.rec.Arches {
		fmt.Fprintf(&b, "%-5s %10d %7d %5d %7d %6d %9.5f%%\n",
			a.Arch, a.Population, a.ActiveFaulty, a.Ripe, a.Detected, a.CumDetected, a.DetectionRate*100)
	}
	fmt.Fprintf(&b, "test cost: %.0f testcase-minutes\n", r.rec.TestCostMinutes)
	return b.String()
}

type renderRipeness struct{ rec *CampaignRecord }

func (r renderRipeness) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "defect ripeness after campaign %d:\n", r.rec.Index)
	labels := []string{"<25%", "<50%", "<75%", "<100%", "ripe"}
	for i, n := range r.rec.Ripeness {
		fmt.Fprintf(&b, "  %-6s %d\n", labels[i], n)
	}
	return b.String()
}

type renderLifecycle struct{ rec *CampaignRecord }

func (r renderLifecycle) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "lifecycle cohort after campaign %d:\n", r.rec.Index)
	for _, l := range r.rec.Lifecycle {
		fmt.Fprintf(&b, "  %-6s rounds %2d det %d sdc %d state %s\n",
			l.CPUID, l.Rounds, l.Detections, l.SDCs, l.State)
	}
	return b.String()
}
