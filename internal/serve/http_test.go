package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"farron/internal/engine"
)

// getJSON fetches a path from the test server and decodes it into out,
// asserting status 200 and a JSON content type.
func getJSON(t *testing.T, srv *httptest.Server, path string, out any) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("GET %s: content type %q", path, ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, out); err != nil {
		t.Fatalf("GET %s: invalid JSON: %v\n%s", path, err, b)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	runner := engine.NewRunner(engine.RunOptions{Seed: 7, Workers: 2})
	cfg := testConfig(3)
	svc, err := New(runner, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// Before any campaign: /status serves, /fleet has nothing yet.
	var st Status
	getJSON(t, srv, "/status", &st)
	if st.Campaigns != 0 || st.FleetSize != cfg.FleetSize {
		t.Errorf("pre-campaign status = %+v", st)
	}
	if resp, err := http.Get(srv.URL + "/fleet"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("/fleet before any campaign: status %d, want 404", resp.StatusCode)
		}
	}

	for i := 0; i < cfg.Steps; i++ {
		if _, err := svc.StepCampaign(); err != nil {
			t.Fatal(err)
		}
	}

	getJSON(t, srv, "/status", &st)
	if st.Campaigns != 3 || st.VirtualTime != 3*cfg.CampaignPeriod {
		t.Errorf("status = %+v", st)
	}
	var m Metrics
	getJSON(t, srv, "/metrics", &m)
	if m.Campaigns != 3 || m.Totals.Runs != 3 || len(m.Arches) == 0 {
		t.Errorf("metrics = %+v", m)
	}
	var fl CampaignRecord
	getJSON(t, srv, "/fleet", &fl)
	if fl.Index != 2 {
		t.Errorf("/fleet serves campaign %d, want the latest (2)", fl.Index)
	}
	var rec CampaignRecord
	getJSON(t, srv, "/campaigns/1", &rec)
	if rec.Index != 1 {
		t.Errorf("/campaigns/1 served index %d", rec.Index)
	}

	for path, want := range map[string]int{
		"/campaigns/99":  http.StatusNotFound,
		"/campaigns/-1":  http.StatusNotFound,
		"/campaigns/abc": http.StatusBadRequest,
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
}

func TestStartHTTP(t *testing.T) {
	runner := engine.NewRunner(engine.RunOptions{Seed: 7, Workers: 1})
	svc, err := New(runner, testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	addr, shutdown, err := svc.StartHTTP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d", resp.StatusCode)
	}
	if err := shutdown(); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}
