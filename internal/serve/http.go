// The service's transport edge: the HTTP status API. This file is the only
// place in the module allowed to import net/http (sdclint's quarantine
// restricts the import to internal/serve), and nothing here feeds back into
// the simulation — handlers are pure reads of the published snapshots, so a
// scrape can never perturb a deterministic run.
package serve

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Handler returns the status API:
//
//	/status        service configuration and current fleet position
//	/metrics       engine accounting totals and per-arch detection rates
//	/fleet         latest campaign's full record (fleet view)
//	/campaigns/<n> record of campaign n (404 once evicted from history)
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.StatusSnapshot())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.MetricsSnapshot())
	})
	mux.HandleFunc("/fleet", func(w http.ResponseWriter, r *http.Request) {
		rec, ok := s.CampaignAt(s.Campaigns() - 1)
		if !ok {
			http.Error(w, `{"error":"no campaign has completed yet"}`, http.StatusNotFound)
			return
		}
		writeJSON(w, rec)
	})
	mux.HandleFunc("/campaigns/", func(w http.ResponseWriter, r *http.Request) {
		idx, err := strconv.Atoi(strings.TrimPrefix(r.URL.Path, "/campaigns/"))
		if err != nil {
			http.Error(w, `{"error":"campaign index must be an integer"}`, http.StatusBadRequest)
			return
		}
		rec, ok := s.CampaignAt(idx)
		if !ok {
			http.Error(w, `{"error":"campaign not retained"}`, http.StatusNotFound)
			return
		}
		writeJSON(w, rec)
	})
	return mux
}

// writeJSON emits v as indented JSON — the same stable marshalling the
// campaign history uses, so scraped payloads are diffable too.
func writeJSON(w http.ResponseWriter, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, `{"error":"encode failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	//sdclint:ignore errsink client disconnects during a scrape are not service errors
	_, _ = w.Write(append(b, '\n'))
}

// StartHTTP binds addr and serves the status API in the background. It
// returns the bound address (useful with a ":0" port) and a shutdown
// function that drains in-flight scrapes and closes the listener. The
// simulation keeps its own goroutine; scrapes only read snapshots.
func (s *Service) StartHTTP(addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	shutdown := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-errc; err != nil && err != http.ErrServerClosed {
			return err
		}
		return nil
	}
	return ln.Addr().String(), shutdown, nil
}
