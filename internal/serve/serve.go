// Package serve is the continuous screening service: the batch harness
// turned into a long-running fleet daemon. A Service owns a synthetic CPU
// population driven on internal/sched's discrete-event clock — processors
// join and leave on birth/decommission events, latent defects ripen over a
// CPU's lifetime — and fires a screening campaign every CampaignPeriod of
// virtual time. Each campaign advances the resumable per-CPU screening
// state (fleet.CPUScreen), steps the lifecycle cohort one regular period,
// and executes its render entries through the existing engine.Runner, so
// -workers, -cache and -fanout compose exactly as they do for the batch
// commands.
//
// Everything in this file is deterministic: all randomness flows through
// serial-keyed simrand substreams, campaign state advances on one
// goroutine, and campaign records carry only virtual quantities — so the
// full campaign history of a run at a given seed is byte-identical across
// runs, worker budgets and hosts. The HTTP status API lives in http.go,
// the package's transport edge and the module's only net/http importer
// (enforced by sdclint's quarantine).
package serve

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"farron/internal/engine"
	"farron/internal/experiments"
	"farron/internal/fleet"
	"farron/internal/model"
	"farron/internal/sched"
	"farron/internal/simrand"
)

// Config sizes and paces the service. The zero value of any field takes
// the documented default.
type Config struct {
	// FleetSize is the population size (default: Scale.Population, or the
	// quick-scale population if that is zero too).
	FleetSize int
	// Mix is the micro-architecture composition (default fleet.DefaultMix).
	Mix []fleet.ArchShare
	// CampaignPeriod is the virtual time between screening campaigns
	// (default 14 days — the paper's exposure-window group duration).
	CampaignPeriod time.Duration
	// MeanLifetime is the mean CPU service lifetime; decommission ages draw
	// uniformly from [0.5, 1.5]× this (default 2 years).
	MeanLifetime time.Duration
	// MeanOnset is the mean ripening age of a defect that develops in the
	// field; onset ages draw uniformly from [0, 2]× this (default 6
	// months). A defect is undetectable before its onset age.
	MeanOnset time.Duration
	// BornFaultyShare is the fraction of faulty CPUs whose defect is
	// present at birth (onset 0) and therefore exposed to pre-production
	// screening; the rest ripen in the field and sail through it
	// (default 0.55).
	BornFaultyShare float64
	// Steps caps the run at this many campaigns (0: run until stopped).
	Steps int
	// History caps the in-memory campaign history on unbounded runs;
	// Steps > 0 keeps everything so the full history can be diffed
	// (default 1024).
	History int
	// SimSpeed paces Run: virtual seconds advanced per wall second
	// (0: unpaced free-run).
	SimSpeed float64
	// LifecycleRounds is the lifecycle cohort's horizon in regular periods
	// (default max(Steps, 16)).
	LifecycleRounds int
	// Scale is the engine scale forwarded to Runner.Run for the campaign
	// render entries (part of the result-cache key).
	Scale engine.Scale
}

// withDefaults returns cfg with every zero field defaulted.
func (c Config) withDefaults() Config {
	if c.Mix == nil {
		c.Mix = fleet.DefaultMix()
	}
	if c.Scale == (engine.Scale{}) {
		c.Scale = engine.QuickScale()
	}
	if c.FleetSize <= 0 {
		c.FleetSize = c.Scale.Population
	}
	if c.CampaignPeriod <= 0 {
		c.CampaignPeriod = 14 * 24 * time.Hour
	}
	if c.MeanLifetime <= 0 {
		c.MeanLifetime = 2 * 365 * 24 * time.Hour
	}
	if c.MeanOnset <= 0 {
		c.MeanOnset = 182 * 24 * time.Hour
	}
	if c.BornFaultyShare <= 0 {
		c.BornFaultyShare = 0.55
	}
	if c.History <= 0 {
		c.History = 1024
	}
	if c.LifecycleRounds <= 0 {
		c.LifecycleRounds = c.Steps
		if c.LifecycleRounds < 16 {
			c.LifecycleRounds = 16
		}
	}
	return c
}

// trackedCPU is one live faulty processor: its resumable screening state
// (under the service's configured strategy) plus the service-level lifetime
// bookkeeping (when it was born, when its defect ripens, when it leaves the
// fleet).
type trackedCPU struct {
	serial string
	screen fleet.Screen
	birth  time.Duration
	onset  time.Duration // age at which the defect becomes detectable
	life   time.Duration // age at decommission
	decom  *sched.Event
	gone   bool // decommissioned or detected-and-replaced
}

// ripeness is how far along the defect's development is, in [0, 1].
func (t *trackedCPU) ripeness(now time.Duration) float64 {
	if t.onset <= 0 {
		return 1
	}
	age := now - t.birth
	if age >= t.onset {
		return 1
	}
	return float64(age) / float64(t.onset)
}

// archState is one micro-architecture's slice of the live fleet. Healthy
// processors are counted in aggregate (they never fail, exactly as in the
// batch simulator); faulty processors are tracked individually.
type archState struct {
	arch     model.MicroArch
	pop      int
	rate     float64
	churnRng *simrand.Source // sequential per-arch stream for churn draws
	faulty   []*trackedCPU
	birthSeq int

	// Cumulative counters since service start.
	cumBirths, cumFaultyBirths   int
	cumDecommissions, cumEscapes int
	cumDetected, cumPreDetected  int
	// Pending counters accumulated since the previous campaign record.
	pendBirths, pendFaultyBirths   int
	pendDecommissions, pendEscapes int
	pendPreDetected                int
}

// Service is the long-running screening daemon over a synthetic fleet.
// All simulation state advances on the caller's goroutine (StepCampaign /
// Run); the published snapshot and history behind mu are what the HTTP
// handlers read.
type Service struct {
	cfg    Config
	runner *engine.Runner
	sim    *fleet.Simulator
	clock  *sched.Clock
	rng    *simrand.Source // root "serve" stream (distinct from the fleet sim's)
	arches []*archState
	cohort []*experiments.LifecycleStepper
	fp     string // config fingerprint woven into campaign entry names

	campaigns int
	err       error

	mu      sync.RWMutex
	history []CampaignRecord
	dropped int // records evicted from history on unbounded runs
	totals  engine.RunTotals
}

// New builds the service: the initial fleet is generated, pre-production
// screening runs for every born-faulty processor, and decommission events
// are scheduled — but no campaign has fired yet. The runner supplies the
// seed, worker budget, cache and fan-out exactly as for the batch commands.
func New(runner *engine.Runner, cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	ctx := runner.Ctx()
	fcfg := fleet.DefaultConfig()
	fcfg.Processors = cfg.FleetSize
	fcfg.Mix = cfg.Mix
	fcfg.Seed = ctx.Seed
	fcfg.Workers = ctx.Workers
	fcfg.Strategy = cfg.Scale.Strategy
	fcfg.RegularPeriodMin = cfg.CampaignPeriod.Minutes()
	sim, err := fleet.NewSimulator(fcfg, ctx.Suite)
	if err != nil {
		return nil, err
	}
	if _, ok := sim.RegularStage(); !ok {
		return nil, errors.New("serve: fleet pipeline has no regular stage")
	}
	s := &Service{
		cfg:    cfg,
		runner: runner,
		sim:    sim,
		clock:  sched.NewClock(),
		rng:    simrand.New(ctx.Seed).Derive("serve"),
		cohort: experiments.LifecycleCohort(ctx, cfg.LifecycleRounds),
	}
	s.fp = s.fingerprint()

	counts := archCounts(cfg.FleetSize, cfg.Mix)
	scale := fcfg.TrueFaultScale
	for i, m := range cfg.Mix {
		a := &archState{
			arch:     m.Arch,
			pop:      counts[i],
			rate:     m.FaultyRate * scale,
			churnRng: s.rng.Derive("churn", string(m.Arch)),
		}
		s.arches = append(s.arches, a)
		n := s.rng.Derive("init", string(m.Arch)).Poisson(float64(a.pop) * a.rate)
		for f := 0; f < n; f++ {
			s.birth(a, 0)
		}
	}
	s.clock.Every(cfg.CampaignPeriod, "campaign", s.campaignTick)
	return s, nil
}

// fingerprint hashes the run-shaping configuration into the short token
// campaign entry names carry, so result-cache keys from differently
// configured services never collide.
func (s *Service) fingerprint() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%s|%v|%v|%v|%v", s.runner.Ctx().Seed, s.cfg.FleetSize,
		s.sim.Screener().Strategy(),
		s.cfg.CampaignPeriod, s.cfg.MeanLifetime, s.cfg.MeanOnset, s.cfg.BornFaultyShare)
	for _, m := range s.cfg.Mix {
		fmt.Fprintf(h, "|%s:%v:%v", m.Arch, m.Share, m.FaultyRate)
	}
	return fmt.Sprintf("%08x", h.Sum64()&0xffffffff)
}

// birth creates one faulty processor at the given virtual time: serial and
// all lifetime parameters derive from the per-arch birth sequence, so the
// fleet's composition is a pure function of the seed and the campaign
// count. Healthy births are never materialized — the population count
// already stands for them.
func (s *Service) birth(a *archState, now time.Duration) {
	serial := fmt.Sprintf("%s-svc-%06d", a.arch, a.birthSeq)
	a.birthSeq++
	a.pendFaultyBirths++
	a.cumFaultyBirths++

	crng := s.rng.Derive("cpu", serial)
	t := &trackedCPU{
		serial: serial,
		birth:  now,
		life:   time.Duration(crng.Range(0.5, 1.5) * float64(s.cfg.MeanLifetime)),
	}
	if crng.Float64() >= s.cfg.BornFaultyShare {
		t.onset = time.Duration(crng.Range(0, 2) * float64(s.cfg.MeanOnset))
	}
	t.screen = s.sim.Screener().NewScreen(serial, a.arch)
	if t.onset > 0 {
		// The defect ripens in the field: pre-production ran, there was
		// nothing there to catch yet.
		t.screen.PassPreProduction()
	} else if t.screen.PreProduction() {
		// Caught before production: the unit is swapped at delivery and a
		// (healthy) replacement takes its slot — nothing left to track.
		a.pendPreDetected++
		a.cumPreDetected++
		a.cumDetected++
		return
	}
	t.decom = s.clock.At(now+t.life, "decommission "+serial, func(time.Duration) {
		t.gone = true
		a.pendDecommissions++
		a.cumDecommissions++
		if !t.screen.Outcome().Detected {
			a.pendEscapes++
			a.cumEscapes++
		}
	})
	a.faulty = append(a.faulty, t)
}

// campaignTick is the sched.Ticker callback: one screening campaign over
// the live fleet. Order is fixed — churn, then screening in arch-and-birth
// order, then the lifecycle cohort, then rendering through the runner — so
// the draw sequence is identical on every run.
func (s *Service) campaignTick(now time.Duration) {
	if s.err != nil {
		return
	}
	// Fleet churn: replacements keep each arch's population constant;
	// the faulty share of the new cohort enters as tracked processors.
	for _, a := range s.arches {
		births := float64(a.pop) * float64(s.cfg.CampaignPeriod) / float64(s.cfg.MeanLifetime)
		a.pendBirths += int(births)
		a.cumBirths += int(births)
		for f := a.churnRng.Poisson(births * a.rate); f > 0; f-- {
			s.birth(a, now)
		}
	}

	// Screening: one regular round for every live, ripe, undetected
	// processor. Detection retires the unit (its slot is refilled by a
	// healthy replacement), so its decommission event dies with it.
	scr := s.sim.Screener()
	rec := CampaignRecord{
		Index:       s.campaigns,
		VirtualTime: now,
		Period:      s.cfg.CampaignPeriod,
		Strategy:    scr.Strategy(),
	}
	for _, a := range s.arches {
		ac := ArchCampaign{Arch: string(a.arch), Population: a.pop}
		live := a.faulty[:0]
		for _, t := range a.faulty {
			if t.gone {
				continue
			}
			r := t.ripeness(now)
			if r >= 1 {
				ac.Ripe++
			}
			if r >= 1 && t.screen.RegularRound() {
				o := t.screen.Outcome()
				scr.Observe(fleet.Detection{
					Serial:     t.serial,
					Arch:       a.arch,
					Stage:      o.Stage,
					TestcaseID: o.TestcaseID,
					Round:      s.campaigns,
				})
				ac.Detected++
				a.cumDetected++
				t.gone = true
				s.clock.Cancel(t.decom)
				continue
			}
			rec.Ripeness[ripenessBucket(r)]++
			live = append(live, t)
		}
		// Clear the recycled tail so retired entries are collectable.
		for i := len(live); i < len(a.faulty); i++ {
			a.faulty[i] = nil
		}
		a.faulty = live

		ac.ActiveFaulty = len(a.faulty)
		ac.Births = a.pendBirths
		ac.FaultyBirths = a.pendFaultyBirths
		ac.PreDetected = a.pendPreDetected
		ac.Decommissions = a.pendDecommissions
		ac.Escapes = a.pendEscapes
		ac.CumDetected = a.cumDetected
		ac.CumEscaped = a.cumEscapes
		if a.pop > 0 {
			ac.DetectionRate = float64(a.cumDetected) / float64(a.pop)
		}
		a.pendBirths, a.pendFaultyBirths, a.pendPreDetected = 0, 0, 0
		a.pendDecommissions, a.pendEscapes = 0, 0

		rec.Arches = append(rec.Arches, ac)
		rec.FleetSize += ac.Population
		rec.ActiveFaulty += ac.ActiveFaulty
		rec.Detected += ac.Detected + ac.PreDetected
		rec.CumDetected += ac.CumDetected
		rec.CumEscaped += ac.CumEscaped
	}
	// The campaign's detections are all observed: the strategy may now
	// evolve its suite for the next campaign (a serial step, keyed on the
	// campaign index).
	scr.EndRound(s.campaigns)

	// Test-cost budget under the configured strategy: each live processor's
	// dedicated round time plus any always-on overhead over the campaign
	// period (inline checkers screen by taxing production itself).
	cost := scr.Cost()
	rec.TestCostMinutes = float64(rec.FleetSize) *
		(cost.RoundMinutes + cost.AlwaysOnOverhead*s.cfg.CampaignPeriod.Minutes())

	// Defect evolution: the lifecycle cohort advances one regular period.
	for _, st := range s.cohort {
		if !st.Done() {
			st.Step()
		}
		rep := st.Report()
		rec.Lifecycle = append(rec.Lifecycle, LifecycleState{
			CPUID:      st.CPUID,
			Rounds:     rep.Rounds,
			Detections: rep.Detections,
			SDCs:       rep.SDCs,
			TestTime:   rep.TestTime,
			OnlineTime: rep.OnlineTime,
			State:      rep.FinalState.String(),
			Done:       st.Done(),
		})
	}

	// Render the campaign through the engine: entries are pure functions of
	// the already-advanced record (never mutators — a cache hit returns the
	// stored body without executing the closure), so -cache and -fanout
	// remain safe to compose.
	sections, rep, err := s.runner.Run(s.entries(&rec), s.cfg.Scale)
	if err != nil {
		s.err = err
		return
	}
	rec.Entries = len(sections)
	for _, sec := range sections {
		rec.Rendered += sec.Body
	}

	s.campaigns++
	s.mu.Lock()
	s.totals.Absorb(rep)
	s.history = append(s.history, rec)
	if s.cfg.Steps == 0 && len(s.history) > s.cfg.History {
		drop := len(s.history) - s.cfg.History
		s.history = append(s.history[:0:0], s.history[drop:]...)
		s.dropped += drop
	}
	s.mu.Unlock()
}

// entries builds the campaign's render entries. Names carry the campaign
// index and the config fingerprint so result-cache keys are unique per
// (config, campaign); a fan-out worker rejects these dynamic names at the
// handshake and the parent recomputes locally — graceful degradation, same
// bytes.
func (s *Service) entries(rec *CampaignRecord) []engine.Experiment {
	prefix := fmt.Sprintf("campaign %04d [%s]", rec.Index, s.fp)
	return []engine.Experiment{
		{Name: prefix + " fleet", Desc: "per-arch campaign outcome",
			Run: func(*engine.Ctx, engine.Scale) (engine.Result, error) { return renderFleet{rec}, nil }},
		{Name: prefix + " ripeness", Desc: "defect ripeness distribution",
			Run: func(*engine.Ctx, engine.Scale) (engine.Result, error) { return renderRipeness{rec}, nil }},
		{Name: prefix + " lifecycle", Desc: "lifecycle cohort state",
			Run: func(*engine.Ctx, engine.Scale) (engine.Result, error) { return renderLifecycle{rec}, nil }},
	}
}

// ripenessBucket maps ripeness in [0, 1] to its histogram bucket: four
// quarter-open buckets for developing defects and a final bucket for ripe
// ones.
func ripenessBucket(r float64) int {
	if r >= 1 {
		return ripenessBuckets - 1
	}
	b := int(r * float64(ripenessBuckets-1))
	if b >= ripenessBuckets-1 {
		b = ripenessBuckets - 2
	}
	return b
}

// StepCampaign advances virtual time through the next campaign (firing any
// birth/decommission events due before it) and returns that campaign's
// record.
func (s *Service) StepCampaign() (*CampaignRecord, error) {
	target := s.campaigns + 1
	for s.campaigns < target {
		if s.err != nil {
			return nil, s.err
		}
		if !s.clock.Step() {
			return nil, errors.New("serve: event queue drained — campaign ticker gone")
		}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec := s.history[len(s.history)-1]
	return &rec, nil
}

// Run drives the service: Steps campaigns (or until stop closes when Steps
// is 0), pacing virtual time against the wall when SimSpeed is set. It is
// the daemon loop cmd/sdcserve runs on its main goroutine.
func (s *Service) Run(stop <-chan struct{}) error {
	for done := 0; s.cfg.Steps == 0 || done < s.cfg.Steps; done++ {
		select {
		case <-stop:
			return nil
		default:
		}
		if _, err := s.StepCampaign(); err != nil {
			return err
		}
		if s.cfg.SimSpeed > 0 {
			wall := time.Duration(float64(s.cfg.CampaignPeriod) / s.cfg.SimSpeed)
			select {
			case <-stop:
				return nil
			case <-time.After(wall):
			}
		}
	}
	return nil
}

// Campaigns returns how many campaigns have completed.
func (s *Service) Campaigns() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dropped + len(s.history)
}

// archCounts distributes the population across the mix with largest-
// remainder rounding (the batch simulator's apportionment, restated here so
// service and batch fleets agree on per-arch populations).
func archCounts(n int, mix []fleet.ArchShare) []int {
	counts := make([]int, len(mix))
	fracs := make([]float64, len(mix))
	assigned := 0
	for i, m := range mix {
		exact := float64(n) * m.Share
		counts[i] = int(exact)
		assigned += counts[i]
		fracs[i] = exact - float64(counts[i])
	}
	for assigned < n {
		best := 0
		for i := 1; i < len(fracs); i++ {
			if fracs[i] > fracs[best] {
				best = i
			}
		}
		counts[best]++
		fracs[best] = -1
		assigned++
	}
	return counts
}
