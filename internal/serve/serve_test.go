package serve

import (
	"bytes"
	"testing"
	"time"

	"farron/internal/engine"
)

// testConfig keeps service tests fast: a small fleet still carries a
// dozen-odd tracked faulty CPUs at the default mix.
func testConfig(steps int) Config {
	return Config{
		FleetSize:      20_000,
		CampaignPeriod: 14 * 24 * time.Hour,
		Steps:          steps,
		Scale:          engine.QuickScale(),
	}
}

// runHistory builds a service at the given seed and worker budget, runs
// the configured campaigns and returns the marshalled history.
func runHistory(t *testing.T, seed uint64, workers int, cfg Config) []byte {
	t.Helper()
	runner := engine.NewRunner(engine.RunOptions{Seed: seed, Workers: workers})
	svc, err := New(runner, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Steps; i++ {
		if _, err := svc.StepCampaign(); err != nil {
			t.Fatal(err)
		}
	}
	b, err := svc.HistoryJSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestHistoryDeterministic is the service's determinism contract: at a
// fixed seed the full campaign history is byte-identical across runs and
// across worker budgets — the in-process form of the acceptance check CI's
// headless smoke runs against the sdcserve binary.
func TestHistoryDeterministic(t *testing.T) {
	cfg := testConfig(5)
	a := runHistory(t, 7, 1, cfg)
	b := runHistory(t, 7, 1, cfg)
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed, same workers: histories differ\nA: %d bytes\nB: %d bytes", len(a), len(b))
	}
	c := runHistory(t, 7, 4, cfg)
	if !bytes.Equal(a, c) {
		t.Fatalf("workers=1 vs workers=4: histories differ\nA: %d bytes\nC: %d bytes", len(a), len(c))
	}
	d := runHistory(t, 8, 1, cfg)
	if bytes.Equal(a, d) {
		t.Fatal("different seeds produced identical histories")
	}
}

func TestCampaignProgression(t *testing.T) {
	runner := engine.NewRunner(engine.RunOptions{Seed: 7, Workers: 2})
	cfg := testConfig(6)
	svc, err := New(runner, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var last *CampaignRecord
	for i := 0; i < cfg.Steps; i++ {
		rec, err := svc.StepCampaign()
		if err != nil {
			t.Fatal(err)
		}
		if rec.Index != i {
			t.Fatalf("campaign %d has index %d", i, rec.Index)
		}
		if want := time.Duration(i+1) * cfg.CampaignPeriod; rec.VirtualTime != want {
			t.Errorf("campaign %d at %v, want %v", i, rec.VirtualTime, want)
		}
		if rec.FleetSize != cfg.FleetSize {
			t.Errorf("campaign %d fleet size %d, want %d (replacement churn keeps it constant)",
				i, rec.FleetSize, cfg.FleetSize)
		}
		// The ripeness histogram covers exactly the still-tracked fleet.
		sum := 0
		for _, n := range rec.Ripeness {
			sum += n
		}
		if sum != rec.ActiveFaulty {
			t.Errorf("campaign %d ripeness histogram sums to %d, active faulty %d", i, sum, rec.ActiveFaulty)
		}
		if rec.Entries != 3 {
			t.Errorf("campaign %d ran %d render entries, want 3", i, rec.Entries)
		}
		if rec.Rendered == "" {
			t.Errorf("campaign %d has no rendering", i)
		}
		if len(rec.Lifecycle) == 0 {
			t.Errorf("campaign %d has no lifecycle cohort state", i)
		}
		if rec.TestCostMinutes <= 0 {
			t.Errorf("campaign %d test cost %v", i, rec.TestCostMinutes)
		}
		last = rec
	}
	if last.CumDetected == 0 {
		t.Error("no detections across the whole run (pre-production catches alone should show up)")
	}
	if last.ActiveFaulty == 0 {
		t.Error("no tracked faulty processors left — fleet too small for the test to mean anything")
	}
	if got := svc.Campaigns(); got != cfg.Steps {
		t.Errorf("Campaigns() = %d, want %d", got, cfg.Steps)
	}
	// Engine accounting accumulated across campaigns.
	m := svc.MetricsSnapshot()
	if m.Totals.Runs != cfg.Steps || m.Totals.Entries != 3*cfg.Steps {
		t.Errorf("totals = %+v, want %d runs / %d entries", m.Totals, cfg.Steps, 3*cfg.Steps)
	}
}

func TestFleetChurn(t *testing.T) {
	// A mean lifetime of ~7 campaigns forces visible churn within the run:
	// tracked CPUs decommission (some as escapes) and faulty births join.
	runner := engine.NewRunner(engine.RunOptions{Seed: 11, Workers: 1})
	cfg := testConfig(12)
	cfg.MeanLifetime = 7 * cfg.CampaignPeriod
	cfg.MeanOnset = 20 * cfg.CampaignPeriod // ripen slowly so some defects escape
	svc, err := New(runner, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var births, faultyBirths, decoms, escapes int
	for i := 0; i < cfg.Steps; i++ {
		rec, err := svc.StepCampaign()
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range rec.Arches {
			births += a.Births
			faultyBirths += a.FaultyBirths
			decoms += a.Decommissions
			escapes += a.Escapes
		}
		if rec.FleetSize != cfg.FleetSize {
			t.Fatalf("churn changed the fleet size: %d", rec.FleetSize)
		}
	}
	if births == 0 || faultyBirths == 0 {
		t.Errorf("no churn births (healthy %d, faulty %d)", births, faultyBirths)
	}
	if decoms == 0 {
		t.Error("no decommissions despite short lifetimes")
	}
	if escapes == 0 {
		t.Error("no escapes: every faulty CPU was caught before decommission, which the slow onset should prevent")
	}
}

func TestHistoryCapOnUnboundedRuns(t *testing.T) {
	runner := engine.NewRunner(engine.RunOptions{Seed: 7, Workers: 1})
	cfg := testConfig(0) // unbounded: the cap applies
	cfg.History = 3
	svc, err := New(runner, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := svc.StepCampaign(); err != nil {
			t.Fatal(err)
		}
	}
	if got := svc.Campaigns(); got != 5 {
		t.Errorf("Campaigns() = %d, want 5", got)
	}
	if _, ok := svc.CampaignAt(0); ok {
		t.Error("campaign 0 should have been evicted")
	}
	if _, ok := svc.CampaignAt(1); ok {
		t.Error("campaign 1 should have been evicted")
	}
	for i := 2; i < 5; i++ {
		rec, ok := svc.CampaignAt(i)
		if !ok {
			t.Fatalf("campaign %d missing from capped history", i)
		}
		if rec.Index != i {
			t.Errorf("campaign %d record has index %d", i, rec.Index)
		}
	}
	if _, ok := svc.CampaignAt(5); ok {
		t.Error("future campaign served")
	}
	st := svc.StatusSnapshot()
	if st.Campaigns != 5 || st.DroppedHistory != 2 {
		t.Errorf("status = %+v, want 5 campaigns / 2 dropped", st)
	}
}
