// Package ecc implements a SECDED (single-error-correct, double-error-
// detect) Hamming code over 64-bit words, the protection scheme of
// processor caches and ECC memory.
//
// It is the substrate for Observation 12's analysis: SECDED corrects one
// flipped bit and detects two, but the paper's SDC study shows multi-bit
// corruptions happen (Observation 8) — three or more flips can silently
// decode to the wrong word or mis-correct. And when a CPU computes a wrong
// value *before* encoding, the code protects the corruption faithfully.
package ecc

import "math/bits"

// DataBits is the protected word width.
const DataBits = 64

// ParityBits is the number of Hamming parity bits for 64 data bits (7)
// plus the overall parity bit for SECDED (1).
const ParityBits = 8

// Codeword is a 64-bit word plus its 8 check bits.
type Codeword struct {
	Data  uint64
	Check uint8
}

// positionMasks[i] is the set of data-bit positions covered by parity bit
// i (i in 0..6). Built at init from the classic Hamming construction:
// data bits occupy the non-power-of-two codeword positions 3,5,6,7,9,...
var positionMasks [7]uint64

func init() {
	// Map data bit d (0..63) to its Hamming codeword position (1-based,
	// skipping powers of two), then distribute into parity masks.
	pos := 1
	for d := 0; d < DataBits; d++ {
		pos++
		for pos&(pos-1) == 0 { // skip power-of-two (parity) positions
			pos++
		}
		for p := 0; p < 7; p++ {
			if pos&(1<<p) != 0 {
				positionMasks[p] |= 1 << d
			}
		}
	}
}

// dataPosition returns the Hamming codeword position of data bit d.
func dataPosition(d int) int {
	pos := 1
	for i := 0; i <= d; i++ {
		pos++
		for pos&(pos-1) == 0 {
			pos++
		}
	}
	return pos
}

// Encode computes the SECDED codeword of a 64-bit value.
func Encode(data uint64) Codeword {
	var check uint8
	for p := 0; p < 7; p++ {
		if bits.OnesCount64(data&positionMasks[p])&1 == 1 {
			check |= 1 << p
		}
	}
	// Overall parity over data plus the 7 Hamming bits.
	total := bits.OnesCount64(data) + bits.OnesCount8(check&0x7F)
	if total&1 == 1 {
		check |= 1 << 7
	}
	return Codeword{Data: data, Check: check}
}

// Result classifies a decode outcome.
type Result int

const (
	// OK: no error detected.
	OK Result = iota
	// Corrected: a single-bit error was corrected.
	Corrected
	// Detected: an uncorrectable (double-bit) error was detected.
	Detected
	// Miscorrected is never returned by Decode — it is the silent
	// failure mode Verify exposes: ≥3 flips that alias to a valid or
	// single-error syndrome and decode to the wrong data.
	Miscorrected
)

// String implements fmt.Stringer.
func (r Result) String() string {
	switch r {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case Detected:
		return "detected"
	case Miscorrected:
		return "miscorrected"
	default:
		return "unknown"
	}
}

// Decode checks and, if possible, corrects a (possibly corrupted) codeword.
// It returns the decoded data and the classification. Like real hardware,
// it cannot distinguish a mis-correcting ≥3-bit error from a genuine
// single-bit error.
func Decode(cw Codeword) (data uint64, res Result) {
	// Syndrome: which parity checks fail.
	var syndrome int
	for p := 0; p < 7; p++ {
		par := bits.OnesCount64(cw.Data&positionMasks[p]) & 1
		if cw.Check>>p&1 == 1 {
			par ^= 1
		}
		if par == 1 {
			syndrome |= 1 << p
		}
	}
	total := bits.OnesCount64(cw.Data) + bits.OnesCount8(cw.Check)
	overallParityError := total&1 == 1

	switch {
	case syndrome == 0 && !overallParityError:
		return cw.Data, OK
	case syndrome == 0 && overallParityError:
		// The overall parity bit itself flipped.
		return cw.Data, Corrected
	case overallParityError:
		// Odd number of flips with a non-zero syndrome: treat as a
		// single-bit error at the syndrome position and correct it.
		if syndrome&(syndrome-1) == 0 {
			// Error in a Hamming parity bit.
			return cw.Data, Corrected
		}
		for d := 0; d < DataBits; d++ {
			if dataPosition(d) == syndrome {
				return cw.Data ^ 1<<d, Corrected
			}
		}
		// Syndrome points outside the codeword: uncorrectable.
		return cw.Data, Detected
	default:
		// Even number of flips (≥2): detectable but not correctable.
		return cw.Data, Detected
	}
}

// Verify runs the full store-corrupt-load cycle: encode original, XOR the
// flip mask into the stored data bits, decode, and report what actually
// happened — including the silent Miscorrected case the hardware cannot
// see.
func Verify(original, flipMask uint64) (decoded uint64, res Result) {
	cw := Encode(original)
	cw.Data ^= flipMask
	decoded, res = Decode(cw)
	if decoded != original && (res == OK || res == Corrected) {
		return decoded, Miscorrected
	}
	return decoded, res
}

// VerifyPreEncoding models the Observation 12 datapath hazard: the CPU
// computes a wrong value *before* parity is generated. The code then
// faithfully protects the corrupted value — decode reports OK and returns
// garbage.
func VerifyPreEncoding(original, flipMask uint64) (decoded uint64, res Result) {
	corrupted := original ^ flipMask
	cw := Encode(corrupted)
	decoded, res = Decode(cw)
	if res == OK && decoded != original {
		return decoded, Miscorrected
	}
	return decoded, res
}
