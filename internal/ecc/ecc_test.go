package ecc

import (
	"testing"
	"testing/quick"

	"farron/internal/simrand"
)

func TestEncodeDecodeClean(t *testing.T) {
	f := func(data uint64) bool {
		decoded, res := Decode(Encode(data))
		return res == OK && decoded == data
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSingleBitCorrected(t *testing.T) {
	// Property: every single data-bit flip is corrected.
	rng := simrand.New(1)
	for trial := 0; trial < 500; trial++ {
		data := rng.Uint64()
		bit := rng.Intn(64)
		decoded, res := Verify(data, 1<<uint(bit))
		if res != Corrected {
			t.Fatalf("data %x bit %d: result %v, want corrected", data, bit, res)
		}
		if decoded != data {
			t.Fatalf("data %x bit %d: decoded %x", data, bit, decoded)
		}
	}
}

func TestSingleParityBitFlip(t *testing.T) {
	rng := simrand.New(2)
	for trial := 0; trial < 200; trial++ {
		data := rng.Uint64()
		cw := Encode(data)
		cw.Check ^= 1 << uint(rng.Intn(8))
		decoded, res := Decode(cw)
		if res != Corrected || decoded != data {
			t.Fatalf("parity flip: %v, decoded %x want %x", res, decoded, data)
		}
	}
}

func TestDoubleBitDetected(t *testing.T) {
	// Property: every double data-bit flip is detected (not corrected,
	// not silent).
	rng := simrand.New(3)
	for trial := 0; trial < 500; trial++ {
		data := rng.Uint64()
		b1 := rng.Intn(64)
		b2 := rng.Intn(64)
		if b1 == b2 {
			continue
		}
		_, res := Verify(data, 1<<uint(b1)|1<<uint(b2))
		if res != Detected {
			t.Fatalf("double flip %d,%d: result %v, want detected", b1, b2, res)
		}
	}
}

func TestTripleBitCanMiscorrect(t *testing.T) {
	// Observation 12: ≥3-bit corruptions (which Observation 8 shows are
	// real) can silently defeat SECDED — decoded data differs from the
	// original while the hardware believes it corrected a single error.
	rng := simrand.New(4)
	miscorrected := 0
	trials := 3000
	for trial := 0; trial < trials; trial++ {
		data := rng.Uint64()
		mask := uint64(0)
		for PopCountNotEqual(mask, 3) {
			mask |= 1 << uint(rng.Intn(64))
		}
		_, res := Verify(data, mask)
		if res == Miscorrected {
			miscorrected++
		}
		if res == OK {
			t.Fatalf("3-bit flip decoded as clean OK with matching data?")
		}
	}
	if miscorrected == 0 {
		t.Error("no 3-bit flip ever mis-corrected; SECDED would be magic")
	}
	t.Logf("3-bit flips silently mis-corrected: %d/%d (%.1f%%)",
		miscorrected, trials, 100*float64(miscorrected)/float64(trials))
}

// PopCountNotEqual reports whether mask has fewer than n bits set.
func PopCountNotEqual(mask uint64, n int) bool {
	c := 0
	for m := mask; m != 0; m &= m - 1 {
		c++
	}
	return c < n
}

func TestPreEncodingCorruptionUndetectable(t *testing.T) {
	// Observation 12: if the CPU computes the wrong value before parity
	// generation, ECC reports OK on garbage.
	rng := simrand.New(5)
	for trial := 0; trial < 200; trial++ {
		data := rng.Uint64()
		mask := uint64(1) << uint(rng.Intn(64))
		decoded, res := VerifyPreEncoding(data, mask)
		if res != Miscorrected {
			t.Fatalf("pre-encoding corruption: result %v, want silent miscorrection", res)
		}
		if decoded == data {
			t.Fatal("decoded equals original despite corruption")
		}
	}
}

func TestPositionMasksDisjointCoverage(t *testing.T) {
	// Every data bit must be covered by at least two parity bits
	// (otherwise a flip there would alias a parity-bit error).
	for d := 0; d < DataBits; d++ {
		cover := 0
		for p := 0; p < 7; p++ {
			if positionMasks[p]&(1<<d) != 0 {
				cover++
			}
		}
		if cover < 2 {
			t.Errorf("data bit %d covered by %d parity bits", d, cover)
		}
	}
}

func TestDataPositionsUnique(t *testing.T) {
	seen := map[int]bool{}
	for d := 0; d < DataBits; d++ {
		pos := dataPosition(d)
		if pos&(pos-1) == 0 {
			t.Errorf("data bit %d at power-of-two position %d", d, pos)
		}
		if seen[pos] {
			t.Errorf("duplicate position %d", pos)
		}
		seen[pos] = true
	}
}

func TestResultString(t *testing.T) {
	for r, s := range map[Result]string{
		OK: "ok", Corrected: "corrected", Detected: "detected", Miscorrected: "miscorrected",
	} {
		if r.String() != s {
			t.Errorf("%d.String() = %q", int(r), r.String())
		}
	}
}
