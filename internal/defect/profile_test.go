package defect

import (
	"math"
	"testing"

	"farron/internal/model"
	"farron/internal/simrand"
	"farron/internal/stats"
)

func TestLibraryMatchesTable3(t *testing.T) {
	lib := Library(simrand.New(1))
	if len(lib) != 10 {
		t.Fatalf("library has %d processors, want 10 (Table 3 subset)", len(lib))
	}
	want := map[string]struct {
		arch   model.MicroArch
		pcores int // defective
		errs   int
		class  model.DefectClass
		age    float64
	}{
		"MIX1":  {"M2", 16, 25, model.ClassComputation, 1.75},
		"MIX2":  {"M2", 16, 24, model.ClassComputation, 0.92},
		"SIMD1": {"M2", 1, 5, model.ClassComputation, 2.33},
		"SIMD2": {"M5", 1, 1, model.ClassComputation, 0.50},
		"FPU1":  {"M5", 1, 3, model.ClassComputation, 0.58},
		"FPU2":  {"M5", 1, 3, model.ClassComputation, 1.83},
		"FPU3":  {"M3", 1, 2, model.ClassComputation, 3.08},
		"FPU4":  {"M6", 1, 1, model.ClassComputation, 1.62},
		"CNST1": {"M2", 1, 9, model.ClassConsistency, 0.92},
		"CNST2": {"M3", 24, 8, model.ClassConsistency, 1.08},
	}
	for _, p := range lib {
		w, ok := want[p.CPUID]
		if !ok {
			t.Errorf("unexpected processor %s", p.CPUID)
			continue
		}
		if p.Arch != w.arch {
			t.Errorf("%s arch = %s, want %s", p.CPUID, p.Arch, w.arch)
		}
		if p.DefectivePCores != w.pcores {
			t.Errorf("%s #pcore = %d, want %d", p.CPUID, p.DefectivePCores, w.pcores)
		}
		if p.TargetErrCount != w.errs {
			t.Errorf("%s #err = %d, want %d", p.CPUID, p.TargetErrCount, w.errs)
		}
		if p.Class() != w.class {
			t.Errorf("%s class = %v, want %v", p.CPUID, p.Class(), w.class)
		}
		if p.AgeYears != w.age {
			t.Errorf("%s age = %v, want %v", p.CPUID, p.AgeYears, w.age)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.CPUID, err)
		}
	}
}

func TestLibraryFPUSharedSuspect(t *testing.T) {
	// Section 4.1: FPU1 and FPU2 share the defective arctangent
	// instruction fp-trig:17.
	lib := Library(simrand.New(1))
	suspect := model.InstrID{Class: model.InstrFPTrig, Variant: 17}
	for _, id := range []string{"FPU1", "FPU2"} {
		p := find(lib, id)
		if p == nil || !p.Defects[0].AffectedInstrs[suspect] {
			t.Errorf("%s missing shared arctangent suspect", id)
		}
	}
}

func find(ps []*Profile, id string) *Profile {
	for _, p := range ps {
		if p.CPUID == id {
			return p
		}
	}
	return nil
}

func TestStudySetComposition(t *testing.T) {
	set := StudySet(simrand.New(2))
	if len(set) != 27 {
		t.Fatalf("study set size %d, want 27", len(set))
	}
	comp, cons := 0, 0
	ids := map[string]bool{}
	for _, p := range set {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.CPUID, err)
		}
		if ids[p.CPUID] {
			t.Errorf("duplicate CPUID %s", p.CPUID)
		}
		ids[p.CPUID] = true
		switch p.Class() {
		case model.ClassComputation:
			comp++
		case model.ClassConsistency:
			cons++
		}
	}
	if comp != 19 || cons != 8 {
		t.Errorf("class split = %d/%d, want 19 computation / 8 consistency", comp, cons)
	}
}

func TestStudySetFig9AntiCorrelation(t *testing.T) {
	// Figure 9: log10(base frequency) vs minimum triggering temperature
	// across settings is strongly negatively correlated (paper: -0.8272).
	set := StudySet(simrand.New(3))
	var temps, logf []float64
	for _, p := range set {
		for _, d := range p.Defects {
			temps = append(temps, d.MinTempC)
			logf = append(logf, math.Log10(d.BaseFreqPerMin))
		}
	}
	r, err := stats.Pearson(temps, logf)
	if err != nil {
		t.Fatal(err)
	}
	if r > -0.6 {
		t.Errorf("Pearson(Tmin, log freq) = %v, want strongly negative (paper -0.83)", r)
	}
}

func TestStudySetDeterministic(t *testing.T) {
	a := StudySet(simrand.New(7))
	b := StudySet(simrand.New(7))
	for i := range a {
		if a[i].CPUID != b[i].CPUID || a[i].Arch != b[i].Arch ||
			a[i].Defects[0].MinTempC != b[i].Defects[0].MinTempC ||
			a[i].Defects[0].BaseFreqPerMin != b[i].Defects[0].BaseFreqPerMin {
			t.Fatalf("study set not deterministic at %d", i)
		}
	}
}

func TestStudySetHalfAllCores(t *testing.T) {
	// Observation 4: about half of faulty processors have all physical
	// cores defective.
	set := StudySet(simrand.New(4))
	all := 0
	for _, p := range set {
		if p.Defects[0].AllCores {
			all++
		}
	}
	if all < 7 || all > 20 {
		t.Errorf("all-core processors = %d/27, want about half", all)
	}
}

func TestFleetFaultyReproducible(t *testing.T) {
	rng := simrand.New(5)
	a := FleetFaulty(rng, "cpu-000123", "M8")
	b := FleetFaulty(rng, "cpu-000123", "M8")
	if a.CPUID != b.CPUID || a.Defects[0].MinTempC != b.Defects[0].MinTempC {
		t.Error("FleetFaulty not reproducible for same serial")
	}
	c := FleetFaulty(rng, "cpu-000124", "M8")
	if a.Defects[0].MinTempC == c.Defects[0].MinTempC &&
		a.Defects[0].BaseFreqPerMin == c.Defects[0].BaseFreqPerMin {
		t.Error("distinct serials produced identical defects")
	}
}

func TestFleetFaultyArchCores(t *testing.T) {
	rng := simrand.New(6)
	p := FleetFaulty(rng, "cpu-7", "M1")
	if p.Arch != "M1" {
		t.Errorf("arch = %s", p.Arch)
	}
	if p.TotalPCores != 8 {
		t.Errorf("M1 cores = %d, want 8", p.TotalPCores)
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
	// Defective cores within range.
	for _, d := range p.Defects {
		for _, c := range d.DefectiveCores(p.TotalPCores) {
			if c < 0 || c >= p.TotalPCores {
				t.Errorf("core %d out of range for M1", c)
			}
		}
	}
}

func TestProfileFeaturesAndDataTypes(t *testing.T) {
	lib := Library(simrand.New(1))
	mix1 := find(lib, "MIX1")
	feats := mix1.Features()
	if len(feats) != 3 {
		t.Errorf("MIX1 features = %v", feats)
	}
	dts := mix1.DataTypes()
	if len(dts) != 7 {
		t.Errorf("MIX1 datatypes = %v (want 7 per Table 3)", dts)
	}
	cnst1 := find(lib, "CNST1")
	if len(cnst1.DataTypes()) != 0 {
		t.Errorf("CNST1 datatypes = %v, want none (consistency)", cnst1.DataTypes())
	}
	if got := cnst1.Features(); len(got) != 2 {
		t.Errorf("CNST1 features = %v, want Cache+TrxMem", got)
	}
}

func TestProfileValidateRejects(t *testing.T) {
	lib := Library(simrand.New(1))
	p := find(lib, "FPU1")
	bad := *p
	bad.DefectivePCores = 5
	if err := bad.Validate(); err == nil {
		t.Error("mismatched DefectivePCores accepted")
	}
	bad2 := *p
	bad2.Defects = nil
	if err := bad2.Validate(); err == nil {
		t.Error("no-defect profile accepted")
	}
}

func TestTrickyDefectsExist(t *testing.T) {
	// SIMD2 and FPU4 are tricky: min trigger temp above typical
	// single-core test temperature, low frequency.
	lib := Library(simrand.New(1))
	for _, id := range []string{"SIMD2", "FPU4"} {
		d := find(lib, id).Defects[0]
		if d.MinTempC < 60 {
			t.Errorf("%s MinTemp = %v, want tricky (>=60)", id, d.MinTempC)
		}
		if d.BaseFreqPerMin > 0.1 {
			t.Errorf("%s base freq = %v, want low", id, d.BaseFreqPerMin)
		}
	}
	// MIX1 is apparent: detectable near idle temperatures.
	mix1 := find(lib, "MIX1").Defects[0]
	if mix1.MinTempC > 50 {
		t.Errorf("MIX1 MinTemp = %v, want apparent (<=50)", mix1.MinTempC)
	}
}
