package defect

import (
	"math"
	"testing"
	"testing/quick"

	"farron/internal/model"
	"farron/internal/simrand"
)

func testDefect() *Defect {
	return &Defect{
		ID:             "T-d0",
		Class:          model.ClassComputation,
		Features:       []model.Feature{model.FeatureFPU},
		DataTypes:      []model.DataType{model.DTFloat64},
		AffectedInstrs: instrSet(iid(model.InstrFPTrig, 17)),
		Cores:          []int{3},
		BaseFreqPerMin: 2,
		MinTempC:       50,
		TempSlope:      0.1,
		PatternProb:    0.8,
	}
}

func TestValidateOK(t *testing.T) {
	if err := testDefect().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Defect)
	}{
		{"empty id", func(d *Defect) { d.ID = "" }},
		{"no features", func(d *Defect) { d.Features = nil }},
		{"class mismatch", func(d *Defect) { d.Features = []model.Feature{model.FeatureCache} }},
		{"no datatypes", func(d *Defect) { d.DataTypes = nil }},
		{"no cores", func(d *Defect) { d.Cores = nil }},
		{"bad freq", func(d *Defect) { d.BaseFreqPerMin = 0 }},
		{"negative slope", func(d *Defect) { d.TempSlope = -1 }},
		{"bad pattern prob", func(d *Defect) { d.PatternProb = 1.5 }},
	}
	for _, c := range cases {
		d := testDefect()
		c.mutate(d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid defect", c.name)
		}
	}
}

func TestRateBelowMinTempIsZero(t *testing.T) {
	d := testDefect()
	if got := d.RatePerMin(3, 49.9, 1); got != 0 {
		t.Errorf("rate below MinTemp = %v, want 0", got)
	}
	if got := d.RatePerMin(3, 50, 1); got != 2 {
		t.Errorf("rate at MinTemp = %v, want 2", got)
	}
}

func TestRateExponentialInTemp(t *testing.T) {
	d := testDefect()
	r60 := d.RatePerMin(3, 60, 1)
	r50 := d.RatePerMin(3, 50, 1)
	// slope 0.1 decades/degC: +10 degC = 1 decade.
	if math.Abs(r60/r50-10) > 1e-9 {
		t.Errorf("10 degC ratio = %v, want 10", r60/r50)
	}
}

func TestRateScalesWithStress(t *testing.T) {
	d := testDefect()
	full := d.RatePerMin(3, 55, 1)
	tiny := d.RatePerMin(3, 55, 1e-4)
	if math.Abs(full/tiny-1e4) > 1e-6*1e4 {
		t.Errorf("stress ratio = %v, want 1e4", full/tiny)
	}
	if d.RatePerMin(3, 55, 0) != 0 {
		t.Error("zero stress should give zero rate")
	}
}

func TestRateWrongCoreIsZero(t *testing.T) {
	d := testDefect()
	if got := d.RatePerMin(4, 90, 1); got != 0 {
		t.Errorf("non-defective core rate = %v", got)
	}
}

func TestAllCoresMultipliers(t *testing.T) {
	rng := simrand.New(1)
	d := &Defect{
		ID: "A-d0", Class: model.ClassComputation,
		Features:       []model.Feature{model.FeatureALU},
		DataTypes:      []model.DataType{model.DTInt32},
		AffectedInstrs: instrSet(iid(model.InstrIntArith, 1)),
		AllCores:       true,
		CoreMult:       spreadCoreMult(rng, "A-d0", 16, 0),
		BaseFreqPerMin: 10, MinTempC: 45, TempSlope: 0.1,
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.CoreMultiplier(0) != 1 {
		t.Errorf("anchor multiplier = %v", d.CoreMultiplier(0))
	}
	// Multipliers should span orders of magnitude (Observation 4).
	minM, maxM := math.Inf(1), 0.0
	for c := 0; c < 16; c++ {
		m := d.CoreMultiplier(c)
		if m <= 0 || m > 1 {
			t.Fatalf("core %d multiplier %v out of (0,1]", c, m)
		}
		minM = math.Min(minM, m)
		maxM = math.Max(maxM, m)
	}
	if maxM/minM < 100 {
		t.Errorf("core multiplier spread %v, want orders of magnitude", maxM/minM)
	}
}

func TestObservedMinTemp(t *testing.T) {
	d := testDefect()
	// High stress: observable right at the physical threshold.
	if got := d.ObservedMinTemp(3, 1); got != 50 {
		t.Errorf("ObservedMinTemp(stress 1) = %v, want 50", got)
	}
	// Low stress raises the observed threshold.
	low := d.ObservedMinTemp(3, 1e-5)
	if low <= 50 {
		t.Errorf("low-stress observed threshold = %v, want > 50", low)
	}
	// Rate at that temperature is exactly measurable.
	rate := d.RatePerMin(3, low, 1e-5)
	if math.Abs(rate-MeasurableFreqPerMin) > 1e-9 {
		t.Errorf("rate at observed threshold = %v", rate)
	}
	// Non-defective core: never observable.
	if !math.IsInf(d.ObservedMinTemp(9, 1), 1) {
		t.Error("non-defective core should have +Inf threshold")
	}
}

func TestStress(t *testing.T) {
	d := testDefect()
	mix := map[model.InstrID]float64{
		iid(model.InstrFPTrig, 17): 50,
		iid(model.InstrFPArith, 3): 500, // unaffected
	}
	if got := d.Stress(mix, 200); got != 0.25 {
		t.Errorf("Stress = %v, want 0.25", got)
	}
	if got := d.Stress(nil, 200); got != 0 {
		t.Errorf("empty mix stress = %v", got)
	}
	if got := d.Stress(mix, 0); got != 0 {
		t.Errorf("zero nominal stress = %v", got)
	}
}

func TestCorruptorCachingAndGating(t *testing.T) {
	d := testDefect()
	rng := simrand.New(2)
	c1 := d.Corruptor(model.DTFloat64, rng)
	if c1 == nil {
		t.Fatal("nil corruptor for affected datatype")
	}
	c2 := d.Corruptor(model.DTFloat64, rng)
	if c1 != c2 {
		t.Error("corruptor not cached")
	}
	if d.Corruptor(model.DTInt32, rng) != nil {
		t.Error("corruptor for unaffected datatype should be nil")
	}
}

func TestCorruptorMasksDeterministic(t *testing.T) {
	d1, d2 := testDefect(), testDefect()
	c1 := d1.Corruptor(model.DTFloat64, simrand.New(5))
	c2 := d2.Corruptor(model.DTFloat64, simrand.New(5))
	p1, p2 := c1.Patterns(), c2.Patterns()
	if len(p1) != len(p2) {
		t.Fatalf("pattern counts differ: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i].Lo != p2[i].Lo || p1[i].Hi != p2[i].Hi {
			t.Errorf("pattern %d differs", i)
		}
	}
}

func TestSettingPatternProb(t *testing.T) {
	d := testDefect()
	rng := simrand.New(3)
	p1 := d.SettingPatternProb("tc-001", rng)
	p2 := d.SettingPatternProb("tc-001", rng)
	if p1 != p2 {
		t.Error("setting pattern prob not deterministic")
	}
	zeros, nonzero := 0, 0
	var lo, hi float64 = 1, 0
	for i := 0; i < 200; i++ {
		p := d.SettingPatternProb(model.Setting{TestcaseID: string(rune('a' + i%26)), ProcessorID: string(rune('A' + i/26))}.String(), rng)
		if p < 0 || p > 0.96 {
			t.Fatalf("prob %v out of [0,0.96]", p)
		}
		if p == 0 {
			zeros++
		} else {
			nonzero++
			lo = math.Min(lo, p)
			hi = math.Max(hi, p)
		}
	}
	if zeros == 0 {
		t.Error("no zero-pattern settings; Figure 6 has zeros")
	}
	if hi-lo < 0.3 {
		t.Errorf("setting prob spread [%v,%v] too narrow", lo, hi)
	}
}

func TestSortedInstrsDeterministic(t *testing.T) {
	d := &Defect{AffectedInstrs: instrSet(
		iid(model.InstrFPTrig, 5), iid(model.InstrIntArith, 40),
		iid(model.InstrFPTrig, 2), iid(model.InstrBitOp, 1),
	)}
	got := d.SortedInstrs()
	if len(got) != 4 {
		t.Fatalf("len = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if a.Class > b.Class || (a.Class == b.Class && a.Variant >= b.Variant) {
			t.Errorf("not sorted: %v before %v", a, b)
		}
	}
}

func TestDefectiveCores(t *testing.T) {
	d := testDefect()
	if got := d.DefectiveCores(8); len(got) != 1 || got[0] != 3 {
		t.Errorf("DefectiveCores = %v", got)
	}
	d.AllCores = true
	if got := d.DefectiveCores(4); len(got) != 4 || got[3] != 3 {
		t.Errorf("AllCores DefectiveCores = %v", got)
	}
}

func TestRateMonotoneProperty(t *testing.T) {
	// Property: occurrence rate is non-decreasing in both temperature
	// and stress (the exponential-with-saturation model).
	rng := simrand.New(77)
	f := func(t1Raw, t2Raw, s1Raw, s2Raw uint16) bool {
		d := &Defect{
			ID: "P-d0", Class: model.ClassComputation,
			Features:       []model.Feature{model.FeatureFPU},
			DataTypes:      []model.DataType{model.DTFloat64},
			AffectedInstrs: instrSet(iid(model.InstrFPArith, 1)),
			Cores:          []int{0},
			BaseFreqPerMin: rng.LogUniform(0.01, 100),
			MinTempC:       rng.Range(40, 70),
			TempSlope:      rng.Range(0.05, 0.25),
			SatDecades:     rng.Range(0.5, 3.5),
		}
		t1 := 40 + float64(t1Raw%500)/10
		t2 := 40 + float64(t2Raw%500)/10
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		s1 := float64(s1Raw%1000)/1000 + 1e-6
		s2 := float64(s2Raw%1000)/1000 + 1e-6
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		// Monotone in temperature at fixed stress.
		if d.RatePerMin(0, t1, s1) > d.RatePerMin(0, t2, s1)+1e-12 {
			return false
		}
		// Monotone in stress at fixed temperature.
		if d.RatePerMin(0, t2, s1) > d.RatePerMin(0, t2, s2)+1e-12 {
			return false
		}
		// Never exceeds the global cap.
		return d.RatePerMin(0, 100, 1e6) <= MaxFreqPerMin+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSaturationCapsRate(t *testing.T) {
	d := testDefect()
	d.SatDecades = 1.0
	// Ten degrees above threshold at slope 0.1 is exactly one decade:
	// further heating must not raise the rate.
	at10 := d.RatePerMin(3, 60, 1)
	at30 := d.RatePerMin(3, 80, 1)
	if at30 > at10+1e-12 {
		t.Errorf("rate grew past saturation: %v -> %v", at10, at30)
	}
	if math.Abs(at10-d.BaseFreqPerMin*10) > 1e-9 {
		t.Errorf("rate at saturation = %v, want %v", at10, d.BaseFreqPerMin*10)
	}
}

func TestObservedMinTempUnreachableUnderSaturation(t *testing.T) {
	d := testDefect()
	d.SatDecades = 1.0
	// A setting needing more than one decade of boost can never reach
	// the measurable threshold.
	s := MeasurableFreqPerMin / d.BaseFreqPerMin / 100 // needs 2 decades
	if !math.IsInf(d.ObservedMinTemp(3, s), 1) {
		t.Errorf("threshold reachable despite saturation: %v", d.ObservedMinTemp(3, s))
	}
}
