package defect

import (
	"fmt"
	"math"

	"farron/internal/model"
	"farron/internal/simrand"
)

// Profile describes one faulty processor: its hardware identity plus its
// defects. The library below reproduces the ten processors of Table 3; the
// full study set adds generated processors to reach the paper's 27
// extensively-studied faulty CPUs (19 computation + 8 consistency).
type Profile struct {
	// CPUID is the processor's anonymized name (e.g. "MIX1").
	CPUID string
	// Arch is the micro-architecture (Table 2/3 naming).
	Arch model.MicroArch
	// AgeYears is the processor age at study time (Table 3).
	AgeYears float64
	// TotalPCores is the number of physical cores in the package.
	TotalPCores int
	// ThreadsPerCore is the SMT width (logical cores per physical core).
	ThreadsPerCore int
	// DefectivePCores is Table 3's #pcore: how many physical cores are
	// defective.
	DefectivePCores int
	// TargetErrCount is Table 3's #err: how many toolchain testcases
	// fail on this processor. The testkit calibrates the defect's
	// affected-instruction set to reproduce it.
	TargetErrCount int
	// ImpactedWorkloads describes the real-world workloads affected
	// (Table 3 display text).
	ImpactedWorkloads []string
	// Defects lists the hardware defects.
	Defects []*Defect
}

// Class returns the profile's defect class (all defects of one processor
// share a class, Observation 5).
func (p *Profile) Class() model.DefectClass {
	if len(p.Defects) == 0 {
		return model.ClassComputation
	}
	return p.Defects[0].Class
}

// Features returns the union of defective features in display order.
func (p *Profile) Features() []model.Feature {
	var out []model.Feature
	for _, f := range model.AllFeatures() {
		for _, d := range p.Defects {
			if d.AffectsFeature(f) {
				out = append(out, f)
				break
			}
		}
	}
	return out
}

// DataTypes returns the union of affected datatypes in display order.
func (p *Profile) DataTypes() []model.DataType {
	var out []model.DataType
	for _, dt := range model.AllDataTypes() {
		for _, d := range p.Defects {
			if d.AffectsDataType(dt) {
				out = append(out, dt)
				break
			}
		}
	}
	return out
}

// Validate checks the profile and all its defects.
func (p *Profile) Validate() error {
	if p.CPUID == "" {
		return fmt.Errorf("profile: empty CPUID")
	}
	if p.TotalPCores <= 0 {
		return fmt.Errorf("profile %s: no cores", p.CPUID)
	}
	if len(p.Defects) == 0 {
		return fmt.Errorf("profile %s: no defects", p.CPUID)
	}
	class := p.Defects[0].Class
	defective := map[int]bool{}
	for _, d := range p.Defects {
		if err := d.Validate(); err != nil {
			return fmt.Errorf("profile %s: %w", p.CPUID, err)
		}
		if d.Class != class {
			return fmt.Errorf("profile %s: mixed defect classes (Observation 5 violated)", p.CPUID)
		}
		for _, c := range d.DefectiveCores(p.TotalPCores) {
			if c < 0 || c >= p.TotalPCores {
				return fmt.Errorf("profile %s: defect %s core %d out of range", p.CPUID, d.ID, c)
			}
			defective[c] = true
		}
	}
	if len(defective) != p.DefectivePCores {
		return fmt.Errorf("profile %s: %d defective cores, declared %d", p.CPUID, len(defective), p.DefectivePCores)
	}
	return nil
}

// SettingPatternProb returns the pattern-match probability for a specific
// testcase on this defect, spreading the defect's base PatternProb across
// settings the way Figure 6 shows (values from 0 to ~0.96). Deterministic
// per (defect, testcase).
func (d *Defect) SettingPatternProb(testcaseID string, rng *simrand.Source) float64 {
	r := rng.Derive("setting-patprob", d.ID, testcaseID)
	// A small fraction of settings exhibit no stable pattern at all
	// (zeros in Figure 6).
	if r.Bool(0.12) {
		return 0
	}
	p := d.PatternProb + r.Norm(0, 0.18)
	return math.Max(0, math.Min(p, 0.96))
}

// instrSet builds an AffectedInstrs set from explicit IDs.
func instrSet(ids ...model.InstrID) map[model.InstrID]bool {
	m := make(map[model.InstrID]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

// iid is shorthand for constructing a virtual instruction ID.
func iid(c model.InstrClass, v int) model.InstrID { return model.InstrID{Class: c, Variant: v} }

// spreadCoreMult assigns per-core rate multipliers spanning up to three
// orders of magnitude (Observation 4: same testcases fail on every core but
// at frequencies differing by orders of magnitude). Core "anchor" keeps
// multiplier 1 so the headline rates stay interpretable.
func spreadCoreMult(rng *simrand.Source, id string, nCores, anchor int) map[int]float64 {
	r := rng.Derive("coremult", id)
	m := make(map[int]float64, nCores)
	for c := 0; c < nCores; c++ {
		if c == anchor {
			m[c] = 1
			continue
		}
		m[c] = math.Pow(10, -r.Range(0, 3))
	}
	return m
}

// Library returns the ten named faulty processors of Table 3, with defect
// parameters calibrated so that the downstream experiments reproduce the
// paper's figures:
//
//   - MIX1/MIX2/CNST2 are all-core defects with order-of-magnitude per-core
//     rate spreads (Observation 4);
//   - FPU1/FPU2 share a defective arctangent virtual instruction
//     (fp-trig:17) — the Section 4.1 suspect;
//   - SIMD1's defective instruction is a vector fused multiply-add
//     (vec-muladd:9), which the toolchain pinpoints directly;
//   - SIMD2 and FPU4 are "tricky" defects: high minimum triggering
//     temperature, low base frequency (Figure 9's lower-right corner);
//   - CNST1 corrupts both cache coherence and transactional memory with no
//     attributable instruction (coherence is invisible to programs).
func Library(rng *simrand.Source) []*Profile {
	return []*Profile{
		{
			CPUID: "MIX1", Arch: "M2", AgeYears: 1.75,
			TotalPCores: 16, ThreadsPerCore: 2, DefectivePCores: 16, TargetErrCount: 25,
			ImpactedWorkloads: []string{
				"matrix calculation", "checksum calculation",
				"string manipulation", "large integer arithmetic",
			},
			Defects: []*Defect{{
				ID:    "MIX1-d0",
				Class: model.ClassComputation,
				Features: []model.Feature{
					model.FeatureALU, model.FeatureVecUnit, model.FeatureFPU,
				},
				DataTypes: []model.DataType{
					model.DTInt32, model.DTUint32, model.DTFloat32,
					model.DTFloat64, model.DTByte, model.DTBin16, model.DTBin32,
				},
				AffectedInstrs: instrSet(
					iid(model.InstrVecMulAdd, 3), iid(model.InstrIntArith, 11),
					iid(model.InstrFPArith, 21), iid(model.InstrBitOp, 7),
				),
				AllCores:       true,
				CoreMult:       spreadCoreMult(rng, "MIX1-d0", 16, 0),
				BaseFreqPerMin: 8, MinTempC: 46, TempSlope: 0.13, SatDecades: 3.2, UtilGain: 1.2,
				PatternProb: 0.62,
			}},
		},
		{
			CPUID: "MIX2", Arch: "M2", AgeYears: 0.92,
			TotalPCores: 16, ThreadsPerCore: 2, DefectivePCores: 16, TargetErrCount: 24,
			ImpactedWorkloads: []string{
				"matrix calculation", "checksum calculation",
				"bit operations", "hashing",
			},
			Defects: []*Defect{{
				ID:    "MIX2-d0",
				Class: model.ClassComputation,
				Features: []model.Feature{
					model.FeatureALU, model.FeatureVecUnit, model.FeatureFPU,
				},
				DataTypes: []model.DataType{
					model.DTInt16, model.DTInt32, model.DTUint32,
					model.DTFloat32, model.DTFloat64, model.DTBit,
					model.DTByte, model.DTBin16, model.DTBin32,
				},
				AffectedInstrs: instrSet(
					iid(model.InstrVecMisc, 14), iid(model.InstrIntArith, 5),
					iid(model.InstrBitOp, 19), iid(model.InstrFPArith, 8),
				),
				AllCores:       true,
				CoreMult:       spreadCoreMult(rng, "MIX2-d0", 16, 1),
				BaseFreqPerMin: 12, MinTempC: 44, TempSlope: 0.15, SatDecades: 3.2, UtilGain: 0.9,
				PatternProb: 0.58,
			}},
		},
		{
			CPUID: "SIMD1", Arch: "M2", AgeYears: 2.33,
			TotalPCores: 16, ThreadsPerCore: 2, DefectivePCores: 1, TargetErrCount: 5,
			ImpactedWorkloads: []string{"matrix calculation"},
			Defects: []*Defect{{
				ID:        "SIMD1-d0",
				Class:     model.ClassComputation,
				Features:  []model.Feature{model.FeatureVecUnit},
				DataTypes: []model.DataType{model.DTFloat32},
				// The toolchain preserves context here: a vector
				// instruction performing simultaneous multiply+add.
				AffectedInstrs: instrSet(iid(model.InstrVecMulAdd, 9)),
				Cores:          []int{5},
				BaseFreqPerMin: 30, MinTempC: 42, TempSlope: 0.10, SatDecades: 2.8, UtilGain: 0.6, ContextProb: 0.9,
				PatternProb: 0.82,
			}},
		},
		{
			CPUID: "SIMD2", Arch: "M5", AgeYears: 0.50,
			TotalPCores: 24, ThreadsPerCore: 2, DefectivePCores: 1, TargetErrCount: 1,
			ImpactedWorkloads: []string{"matrix calculation"},
			Defects: []*Defect{{
				ID:             "SIMD2-d0",
				Class:          model.ClassComputation,
				Features:       []model.Feature{model.FeatureVecUnit},
				DataTypes:      []model.DataType{model.DTFloat64},
				AffectedInstrs: instrSet(iid(model.InstrVecMulAdd, 27)),
				Cores:          []int{2},
				BaseFreqPerMin: 0.05, MinTempC: 62, TempSlope: 0.12, SatDecades: 1.0, UtilGain: 1.5,
				PatternProb: 0.7,
			}},
		},
		{
			CPUID: "FPU1", Arch: "M5", AgeYears: 0.58,
			TotalPCores: 24, ThreadsPerCore: 2, DefectivePCores: 1, TargetErrCount: 3,
			ImpactedWorkloads: []string{"floating-point computing", "mathematical function"},
			Defects: []*Defect{{
				ID:        "FPU1-d0",
				Class:     model.ClassComputation,
				Features:  []model.Feature{model.FeatureFPU},
				DataTypes: []model.DataType{model.DTFloat64, model.DTFloat64x},
				// Section 4.1: the arctangent instruction is the
				// suspect shared by FPU1 and FPU2.
				AffectedInstrs: instrSet(iid(model.InstrFPTrig, 17)),
				Cores:          []int{0},
				BaseFreqPerMin: 2, MinTempC: 48, TempSlope: 0.11, SatDecades: 2.8, UtilGain: 0.4, ContextProb: 0.15,
				PatternProb: 0.86,
			}},
		},
		{
			CPUID: "FPU2", Arch: "M5", AgeYears: 1.83,
			TotalPCores: 24, ThreadsPerCore: 2, DefectivePCores: 1, TargetErrCount: 3,
			ImpactedWorkloads: []string{"floating-point computing", "mathematical function"},
			Defects: []*Defect{{
				ID:             "FPU2-d0",
				Class:          model.ClassComputation,
				Features:       []model.Feature{model.FeatureFPU},
				DataTypes:      []model.DataType{model.DTFloat64, model.DTFloat64x},
				AffectedInstrs: instrSet(iid(model.InstrFPTrig, 17)),
				Cores:          []int{8},
				BaseFreqPerMin: 1.5, MinTempC: 47, TempSlope: 0.125, SatDecades: 3.2, UtilGain: 0.5, ContextProb: 0.15,
				PatternProb: 0.84,
			}},
		},
		{
			CPUID: "FPU3", Arch: "M3", AgeYears: 3.08,
			TotalPCores: 20, ThreadsPerCore: 2, DefectivePCores: 1, TargetErrCount: 2,
			ImpactedWorkloads: []string{"floating-point computing"},
			Defects: []*Defect{{
				ID:             "FPU3-d0",
				Class:          model.ClassComputation,
				Features:       []model.Feature{model.FeatureFPU},
				DataTypes:      []model.DataType{model.DTFloat64},
				AffectedInstrs: instrSet(iid(model.InstrFPArith, 30)),
				Cores:          []int{12},
				BaseFreqPerMin: 0.8, MinTempC: 50, TempSlope: 0.10, SatDecades: 2.8, UtilGain: 0.3,
				PatternProb: 0.75,
			}},
		},
		{
			CPUID: "FPU4", Arch: "M6", AgeYears: 1.62,
			TotalPCores: 28, ThreadsPerCore: 2, DefectivePCores: 1, TargetErrCount: 1,
			ImpactedWorkloads: []string{"floating-point computing"},
			Defects: []*Defect{{
				ID:             "FPU4-d0",
				Class:          model.ClassComputation,
				Features:       []model.Feature{model.FeatureFPU},
				DataTypes:      []model.DataType{model.DTFloat64},
				AffectedInstrs: instrSet(iid(model.InstrFPArith, 41)),
				Cores:          []int{19},
				BaseFreqPerMin: 0.02, MinTempC: 66, TempSlope: 0.15, SatDecades: 1.0, UtilGain: 1.0,
				PatternProb: 0.6,
			}},
		},
		{
			CPUID: "CNST1", Arch: "M2", AgeYears: 0.92,
			TotalPCores: 16, ThreadsPerCore: 2, DefectivePCores: 1, TargetErrCount: 9,
			ImpactedWorkloads: []string{"multi-thread lock", "transactional memory"},
			Defects: []*Defect{{
				ID:       "CNST1-d0",
				Class:    model.ClassConsistency,
				Features: []model.Feature{model.FeatureCache, model.FeatureTrxMem},
				// Cache coherence is invisible to programs; no single
				// instruction is attributable (Section 4.1). Seeds span
				// atomic and transactional traffic; calibration grows
				// the set across memory-traffic variants to Table 3's
				// error count.
				AffectedInstrs: instrSet(
					iid(model.InstrAtomic, 2), iid(model.InstrTrxRegion, 12),
				),
				Cores:          []int{3},
				BaseFreqPerMin: 5, MinTempC: 45, TempSlope: 0.10, SatDecades: 2.8, UtilGain: 1.8,
				PatternProb: 0, // consistency SDCs have no value pattern
			}},
		},
		{
			CPUID: "CNST2", Arch: "M3", AgeYears: 1.08,
			TotalPCores: 24, ThreadsPerCore: 2, DefectivePCores: 24, TargetErrCount: 8,
			ImpactedWorkloads: []string{"transactional memory"},
			Defects: []*Defect{{
				ID:       "CNST2-d0",
				Class:    model.ClassConsistency,
				Features: []model.Feature{model.FeatureTrxMem},
				// Section 4.1: instructions managing the transactional
				// region are the suspects.
				AffectedInstrs: instrSet(
					iid(model.InstrTrxRegion, 4), iid(model.InstrTrxRegion, 29),
				),
				AllCores:       true,
				CoreMult:       spreadCoreMult(rng, "CNST2-d0", 24, 2),
				BaseFreqPerMin: 1.2, MinTempC: 49, TempSlope: 0.12, SatDecades: 2.8, UtilGain: 1.4,
				PatternProb: 0,
			}},
		},
	}
}

// StudySet returns the paper's 27 extensively-studied faulty processors:
// the ten named Table 3 processors plus generated ones, preserving the
// paper's 19 computation / 8 consistency split and Figure 9's
// anti-correlation between base frequency and minimum triggering
// temperature.
func StudySet(rng *simrand.Source) []*Profile {
	out := Library(rng)
	// Named set: 8 computation + 2 consistency. Add 11 computation and
	// 6 consistency processors.
	gen := newGenerator(rng)
	for i := 0; i < 11; i++ {
		out = append(out, gen.study(fmt.Sprintf("COMP%d", i+1), model.ClassComputation))
	}
	for i := 0; i < 6; i++ {
		out = append(out, gen.study(fmt.Sprintf("CONS%d", i+1), model.ClassConsistency))
	}
	ensureDataTypeCoverage(out)
	return out
}

// ensureDataTypeCoverage guarantees the study set exercises every datatype
// the toolchain tests (Observation 6: "SDCs have been confirmed to affect
// operations on all tested data types"): any datatype not yet covered is
// added to a generated computation profile whose features can produce it.
func ensureDataTypeCoverage(profiles []*Profile) {
	covered := map[model.DataType]bool{}
	for _, p := range profiles {
		for _, dt := range p.DataTypes() {
			covered[dt] = true
		}
	}
	for _, dt := range model.AllDataTypes() {
		if covered[dt] {
			continue
		}
		// Spread the datatype across up to three capable profiles so
		// per-datatype statistics (Figures 4, 5, 7) aggregate several
		// independent defects' patterns, as the paper's do.
		added := 0
		for _, p := range profiles {
			if added >= 3 {
				break
			}
			if p.Class() != model.ClassComputation || !generated(p) {
				continue
			}
			pool, _ := datatypePool(p.Features())
			for _, cand := range pool {
				if cand == dt {
					p.Defects[0].DataTypes = append(p.Defects[0].DataTypes, dt)
					covered[dt] = true
					added++
					break
				}
			}
		}
	}
}

// generated reports whether the profile is a synthetic study profile (not
// one of the named Table 3 processors, whose datatype lists are fixed).
func generated(p *Profile) bool {
	return len(p.CPUID) > 4 && (p.CPUID[:4] == "COMP" || p.CPUID[:4] == "CONS")
}

// generator creates randomized faulty-processor profiles for the study set
// and the fleet population.
type generator struct {
	rng *simrand.Source
}

func newGenerator(rng *simrand.Source) *generator {
	return &generator{rng: rng.Derive("defect-generator")}
}

// archCores maps each micro-architecture to its core count and SMT width
// (newer architectures have more cores).
func archCores(arch model.MicroArch) (pcores, threads int) {
	switch arch {
	case "M1":
		return 8, 2
	case "M2":
		return 16, 2
	case "M3":
		return 20, 2
	case "M4":
		return 24, 2
	case "M5":
		return 24, 2
	case "M6":
		return 28, 2
	case "M7":
		return 32, 2
	case "M8":
		return 32, 2
	case "M9":
		return 36, 2
	default:
		return 16, 2
	}
}

// freqForMinTemp draws log10(λ₀) from the Figure 9 relation:
// log10 λ₀ ≈ 2.0 − 0.11·(Tmin − 40) + noise, Pearson r ≈ −0.83.
func (g *generator) freqForMinTemp(r *simrand.Source, minTemp float64) float64 {
	logf := 2.0 - 0.11*(minTemp-40) + r.Norm(0, 0.55)
	return math.Pow(10, logf)
}

// study generates one study-set profile of the given class.
func (g *generator) study(id string, class model.DefectClass) *Profile {
	r := g.rng.Derive("study", id)
	arch := model.AllMicroArchs()[r.Intn(9)]
	pcores, threads := archCores(arch)

	minTemp := r.Range(40, 75)
	base := g.freqForMinTemp(r, minTemp)

	var features []model.Feature
	var datatypes []model.DataType
	var classes []model.InstrClass
	if class == model.ClassComputation {
		pool := []model.Feature{model.FeatureALU, model.FeatureVecUnit, model.FeatureFPU}
		features = []model.Feature{pool[r.Intn(3)]}
		if r.Bool(0.3) {
			f2 := pool[r.Intn(3)]
			if f2 != features[0] {
				features = append(features, f2)
			}
		}
		// Datatypes must be producible by the defective features (an
		// ALU defect corrupts integer/bit results; FPU and vector-FP
		// defects corrupt floats). Observation 6's float dominance
		// comes from the weights: FP-capable features are both more
		// common and more float-heavy.
		dtPool, weights := datatypePool(features)
		n := 1 + r.Intn(4)
		if n > len(dtPool) {
			n = len(dtPool)
		}
		for len(datatypes) < n {
			i := r.WeightedChoice(weights)
			weights[i] = 0
			datatypes = append(datatypes, dtPool[i])
		}
		for _, f := range features {
			switch f {
			case model.FeatureALU:
				classes = append(classes, model.InstrIntArith, model.InstrBitOp)
			case model.FeatureVecUnit:
				classes = append(classes, model.InstrVecMulAdd, model.InstrVecMisc)
			case model.FeatureFPU:
				classes = append(classes, model.InstrFPArith, model.InstrFPTrig)
			}
		}
	} else {
		if r.Bool(0.5) {
			features = []model.Feature{model.FeatureCache}
			classes = []model.InstrClass{model.InstrAtomic, model.InstrLoadStore}
		} else {
			features = []model.Feature{model.FeatureTrxMem}
			classes = []model.InstrClass{model.InstrTrxRegion}
		}
		if r.Bool(0.25) {
			features = []model.Feature{model.FeatureCache, model.FeatureTrxMem}
			classes = []model.InstrClass{model.InstrAtomic, model.InstrLoadStore, model.InstrTrxRegion}
		}
	}

	instrs := map[model.InstrID]bool{}
	for _, c := range classes {
		n := 1 + r.Intn(2)
		for _, v := range r.PickN(model.InstrVariants, n) {
			instrs[model.InstrID{Class: c, Variant: v}] = true
		}
	}

	// Apparent defects (low threshold) saturate high; tricky ones (the
	// upper-right of Figure 9) saturate low, which is what lets them
	// escape single test rounds even under burn-in heat.
	sat := r.Range(2.0, 3.5)
	if minTemp > 58 {
		sat = r.Range(0.8, 1.8)
	}
	d := &Defect{
		ID:             id + "-d0",
		Class:          class,
		Features:       features,
		DataTypes:      datatypes,
		AffectedInstrs: instrs,
		BaseFreqPerMin: base,
		MinTempC:       minTemp,
		TempSlope:      r.Range(0.08, 0.2),
		SatDecades:     sat,
		UtilGain:       r.Range(0, 2),
		PatternProb:    0,
	}
	if class == model.ClassComputation {
		d.PatternProb = r.Range(0.3, 0.9)
	}

	// Observation 4: about half of faulty processors have all cores
	// defective.
	allCores := r.Bool(0.5)
	defective := 1
	if allCores {
		d.AllCores = true
		d.CoreMult = spreadCoreMult(g.rng, d.ID, pcores, r.Intn(pcores))
		defective = pcores
	} else {
		d.Cores = []int{r.Intn(pcores)}
	}

	return &Profile{
		CPUID: id, Arch: arch,
		AgeYears:    r.Range(0.3, 3.5),
		TotalPCores: pcores, ThreadsPerCore: threads,
		DefectivePCores:   defective,
		TargetErrCount:    1 + r.Intn(10),
		ImpactedWorkloads: []string{"synthetic study workload"},
		Defects:           []*Defect{d},
	}
}

// vulnerablePoolSize is how many virtual instructions per class a given
// micro-architecture's silicon is weak in. Section 6.1 observes that "a
// specific type or batch of CPUs may be vulnerable in the same way", which
// is why most testcases never fire (Observation 11): fleet defects cluster
// on a small arch-specific set of weak instructions.
const vulnerablePoolSize = 2

// vulnerablePool returns the arch's weak variants for an instruction class,
// deterministically from the generator seed.
func (g *generator) vulnerablePool(arch model.MicroArch, class model.InstrClass) []int {
	r := g.rng.Derive("vuln-pool", string(arch), class.String())
	return r.PickN(model.InstrVariants, vulnerablePoolSize)
}

// datatypePool returns the datatypes a defect with the given features can
// corrupt, with draw weights. The pools mirror the datatypes testcases of
// those features validate (testkit's feature→datatype map).
func datatypePool(features []model.Feature) (pool []model.DataType, weights []float64) {
	add := func(dt model.DataType, w float64) {
		for i, p := range pool {
			if p == dt {
				if w > weights[i] {
					weights[i] = w
				}
				return
			}
		}
		pool = append(pool, dt)
		weights = append(weights, w)
	}
	for _, f := range features {
		switch f {
		case model.FeatureALU:
			add(model.DTInt16, 0.8)
			add(model.DTInt32, 1.2)
			add(model.DTUint32, 0.9)
			add(model.DTBit, 0.5)
			add(model.DTByte, 0.8)
			add(model.DTBin8, 0.5)
			add(model.DTBin16, 0.6)
			add(model.DTBin32, 0.9)
			add(model.DTBin64, 0.7)
		case model.FeatureVecUnit:
			add(model.DTFloat32, 2.6)
			add(model.DTFloat64, 3.0)
			add(model.DTInt32, 1.0)
			add(model.DTUint32, 0.8)
			add(model.DTInt16, 0.6)
			add(model.DTBin32, 0.7)
			add(model.DTBin64, 0.6)
		case model.FeatureFPU:
			add(model.DTFloat32, 2.4)
			add(model.DTFloat64, 3.0)
			add(model.DTFloat64x, 1.4)
		}
	}
	return pool, weights
}

// FleetFaulty generates a faulty-processor profile for the fleet
// population: same machinery as the study set but keyed by processor serial
// so each faulty CPU in the million-CPU fleet is unique and reproducible,
// with affected instructions drawn from the arch's vulnerable pool.
func FleetFaulty(rng *simrand.Source, serial string, arch model.MicroArch) *Profile {
	g := newGenerator(rng)
	r := g.rng.Derive("fleet", serial)
	class := model.ClassComputation
	// Study set split 19/27 computation.
	if r.Bool(8.0 / 27.0) {
		class = model.ClassConsistency
	}
	p := g.study(serial, class)
	p.Arch = arch
	pcores, threads := archCores(arch)
	p.TotalPCores, p.ThreadsPerCore = pcores, threads
	d := p.Defects[0]
	// Re-draw the affected instructions from the arch's vulnerable pools
	// (batch clustering), preserving the classes the defect touches.
	clustered := map[model.InstrID]bool{}
	for _, id := range d.SortedInstrs() {
		pool := g.vulnerablePool(arch, id.Class)
		v := pool[r.Intn(len(pool))]
		clustered[model.InstrID{Class: id.Class, Variant: v}] = true
	}
	d.AffectedInstrs = clustered
	// Re-fit core scope to the arch's core count.
	if d.AllCores {
		d.CoreMult = spreadCoreMult(g.rng, d.ID, pcores, r.Intn(pcores))
		p.DefectivePCores = pcores
	} else {
		d.Cores = []int{r.Intn(pcores)}
		p.DefectivePCores = 1
	}
	return p
}
