package defect

import (
	"testing"

	"farron/internal/model"
	"farron/internal/simrand"
)

func TestCorruptorNarrowDatatypes(t *testing.T) {
	// 1-bit and 8-bit datatypes must not panic on multi-bit mask draws.
	d := &Defect{
		ID: "N-d0", Class: model.ClassComputation,
		Features:       []model.Feature{model.FeatureALU},
		DataTypes:      []model.DataType{model.DTBit, model.DTByte, model.DTBin8},
		AffectedInstrs: instrSet(iid(model.InstrBitOp, 1)),
		Cores:          []int{0},
		BaseFreqPerMin: 1, MinTempC: 45, TempSlope: 0.1, PatternProb: 0.8,
	}
	rng := simrand.New(1)
	for _, dt := range d.DataTypes {
		// Exercise many defect IDs to hit the multi-bit branches.
		for i := 0; i < 40; i++ {
			d2 := *d
			d2.ID = d.ID + string(rune('a'+i%26)) + string(rune('a'+i/26))
			d2.corruptors = nil
			c := d2.Corruptor(dt, rng)
			if c == nil {
				t.Fatalf("nil corruptor for %v", dt)
			}
		}
	}
}
