// Package defect parameterizes processor hardware defects: which features,
// instructions, cores and datatypes a defect corrupts, and how its SDC
// occurrence rate responds to temperature and instruction-usage stress
// (Sections 3-5 of the paper).
//
// The central quantity is the occurrence frequency λ (errors per minute) of
// a setting — a (testcase, processor, core) combination:
//
//	λ(T, s) = 0                                       if T < MinTempC
//	        = λ₀ · 10^{TempSlope·(T−MinTempC)} · s     otherwise
//
// where T is the core temperature and s is the relative usage stress of the
// defective instructions in the running workload. λ₀ anti-correlates with
// MinTempC across defects (Figure 9): defects that need heat are also rare.
package defect

import (
	"fmt"
	"math"
	"sort"

	"farron/internal/inject"
	"farron/internal/model"
	"farron/internal/simrand"
)

// MeasurableFreqPerMin is the occurrence frequency below which a setting is
// effectively unobservable in bounded tests (used to derive a setting's
// observed minimum triggering temperature).
const MeasurableFreqPerMin = 1e-3

// MaxFreqPerMin caps the occurrence frequency. The paper observes settings
// from 0.01 up to "hundreds of times per minute" (Observation 9); the
// exponential temperature response saturates — an instruction executed a
// bounded number of times per minute can only fail that often.
const MaxFreqPerMin = 500

// Defect describes one hardware defect on a processor.
type Defect struct {
	// ID is unique within the processor (e.g. "MIX1-d0").
	ID string
	// Class is computation or consistency.
	Class model.DefectClass
	// Features lists the processor features the defect corrupts. All
	// belong to Class (Observation 5).
	Features []model.Feature
	// DataTypes lists operand datatypes whose results can be corrupted.
	// Empty for consistency defects (their records carry no value
	// pattern, Section 4.2).
	DataTypes []model.DataType
	// AffectedInstrs is the set of defective virtual instructions.
	AffectedInstrs map[model.InstrID]bool

	// AllCores reports a defect present in every physical core
	// (Observation 4: about half of faulty processors).
	AllCores bool
	// Cores lists the defective physical cores when !AllCores.
	Cores []int
	// CoreMult scales the base rate per physical core. For AllCores
	// defects the multipliers span orders of magnitude (Observation 4),
	// making some defective cores very hard to detect. A missing entry
	// means multiplier 1.
	CoreMult map[int]float64

	// BaseFreqPerMin is λ₀: errors/minute at MinTempC under unit stress.
	BaseFreqPerMin float64
	// MinTempC is the hard minimum triggering temperature.
	MinTempC float64
	// TempSlope is the exponential response, in decades per ℃
	// (Observation 10 / Figure 8).
	TempSlope float64
	// SatDecades caps the exponential growth at λ₀·10^SatDecades: a
	// defective circuit fails at most as often as it is exercised, so
	// the temperature response saturates. Tricky defects saturate low —
	// that is why they need "both high temperature and long-term
	// testing" (Section 7.2) and escape one test round even at burn-in
	// heat. Zero means the generous default of 3.5 decades.
	SatDecades float64
	// UtilGain is the package-utilization sensitivity: the Section 5
	// separation experiment shows occurrence frequency rising with CPU
	// utilization even at constant temperature (shared power-delivery /
	// contention stress). The effective rate is multiplied by
	// 1 + UtilGain·pkgUtil.
	UtilGain float64
	// ContextProb is the probability the toolchain preserves execution
	// context for an SDC and reports the incorrect instruction directly
	// (Section 4.1; high for SIMD1, where a vector multiply-add was
	// pinpointed without statistical work).
	ContextProb float64

	// PatternProb is the probability an SDC matches one of the defect's
	// fixed bitflip masks (Figure 6).
	PatternProb float64

	corruptors map[model.DataType]*inject.Corruptor
}

// Validate checks internal consistency and returns a descriptive error.
func (d *Defect) Validate() error {
	if d.ID == "" {
		return fmt.Errorf("defect: empty ID")
	}
	if len(d.Features) == 0 {
		return fmt.Errorf("defect %s: no features", d.ID)
	}
	for _, f := range d.Features {
		if model.ClassOf(f) != d.Class {
			return fmt.Errorf("defect %s: feature %v not in class %v (Observation 5 violated)", d.ID, f, d.Class)
		}
	}
	if d.Class == model.ClassComputation && len(d.DataTypes) == 0 {
		return fmt.Errorf("defect %s: computation defect without datatypes", d.ID)
	}
	if !d.AllCores && len(d.Cores) == 0 {
		return fmt.Errorf("defect %s: no cores", d.ID)
	}
	if d.BaseFreqPerMin <= 0 {
		return fmt.Errorf("defect %s: non-positive base frequency", d.ID)
	}
	if d.TempSlope < 0 {
		return fmt.Errorf("defect %s: negative temperature slope", d.ID)
	}
	if d.PatternProb < 0 || d.PatternProb > 1 {
		return fmt.Errorf("defect %s: pattern probability out of range", d.ID)
	}
	return nil
}

// AffectsCore reports whether physical core idx is defective.
func (d *Defect) AffectsCore(idx int) bool {
	if d.AllCores {
		return true
	}
	for _, c := range d.Cores {
		if c == idx {
			return true
		}
	}
	return false
}

// AffectsFeature reports whether the defect corrupts feature f.
func (d *Defect) AffectsFeature(f model.Feature) bool {
	for _, x := range d.Features {
		if x == f {
			return true
		}
	}
	return false
}

// AffectsDataType reports whether results of datatype dt can be corrupted.
func (d *Defect) AffectsDataType(dt model.DataType) bool {
	for _, x := range d.DataTypes {
		if x == dt {
			return true
		}
	}
	return false
}

// CoreMultiplier returns the rate multiplier of physical core idx (1 when
// unset, 0 when the core is not defective at all).
func (d *Defect) CoreMultiplier(idx int) float64 {
	if !d.AffectsCore(idx) {
		return 0
	}
	if m, ok := d.CoreMult[idx]; ok {
		return m
	}
	return 1
}

// RatePerMin returns the SDC occurrence frequency (errors per minute) for
// physical core idx at core temperature tempC under relative instruction
// usage stress (1 = nominal heavy usage of the defective instructions;
// several orders of magnitude lower for workloads that touch them rarely).
func (d *Defect) RatePerMin(idx int, tempC, stress float64) float64 {
	if tempC < d.MinTempC || stress <= 0 {
		return 0
	}
	m := d.CoreMultiplier(idx)
	if m == 0 {
		return 0
	}
	expo := d.TempSlope * (tempC - d.MinTempC)
	if sat := d.satDecades(); expo > sat {
		expo = sat
	}
	rate := d.BaseFreqPerMin * m * math.Pow(10, expo) * stress
	return math.Min(rate, MaxFreqPerMin)
}

// satDecades returns the effective saturation (default 3.5 decades).
func (d *Defect) satDecades() float64 {
	if d.SatDecades > 0 {
		return d.SatDecades
	}
	return 3.5
}

// EffectiveSatDecades exposes the saturation ceiling RatePerMin applies —
// SatDecades, or the generous default when unset — so detection-plan
// compilers can precompute the rate coefficients bit-identically.
func (d *Defect) EffectiveSatDecades() float64 { return d.satDecades() }

// ObservedMinTemp returns the setting-level minimum triggering temperature:
// the lowest core temperature at which the setting's occurrence frequency
// reaches MeasurableFreqPerMin. Low-stress settings therefore show a higher
// observed threshold than the defect's physical MinTempC — the mechanism
// behind the per-setting spread of Figure 9.
func (d *Defect) ObservedMinTemp(idx int, stress float64) float64 {
	base := d.BaseFreqPerMin * d.CoreMultiplier(idx) * stress
	if base <= 0 {
		return math.Inf(1)
	}
	if base >= MeasurableFreqPerMin {
		return d.MinTempC
	}
	if d.TempSlope == 0 {
		return math.Inf(1)
	}
	// Solve base·10^{slope·(T-Tmin)} = measurable, respecting the
	// saturation ceiling: a setting whose saturated rate never reaches
	// the measurable threshold is unobservable at any temperature.
	decades := math.Log10(MeasurableFreqPerMin / base)
	if decades > d.satDecades() {
		return math.Inf(1)
	}
	return d.MinTempC + decades/d.TempSlope
}

// Stress computes the relative usage stress of the defect's instructions in
// a workload described by its instruction mix (usage count per loop
// iteration per virtual instruction), normalized by nominalUsage — the
// per-iteration usage a dedicated stress testcase would have.
func (d *Defect) Stress(mix map[model.InstrID]float64, nominalUsage float64) float64 {
	if nominalUsage <= 0 {
		return 0
	}
	total := 0.0
	for id, usage := range mix {
		if d.AffectedInstrs[id] {
			total += usage
		}
	}
	return total / nominalUsage
}

// Corruptor returns (building lazily) the corruptor for datatype dt, or nil
// if the defect does not affect dt. Masks are derived deterministically
// from the defect ID so a defect's bitflip patterns are stable across runs
// (Observation 8).
func (d *Defect) Corruptor(dt model.DataType, rng *simrand.Source) *inject.Corruptor {
	if !d.AffectsDataType(dt) {
		return nil
	}
	if d.corruptors == nil {
		d.corruptors = map[model.DataType]*inject.Corruptor{}
	}
	if c, ok := d.corruptors[dt]; ok {
		return c
	}
	mrng := rng.Derive("defect-masks", d.ID, dt.String())
	nPatterns := 1 + mrng.Intn(3)
	if !dt.Numeric() {
		// Non-numerical blobs accumulate more distinct patterns (one
		// per corrupted instruction combination, Observation 8), which
		// is what makes Figure 5's position distribution flat.
		nPatterns += dt.Bits() / 16
	}
	masks := make([]inject.Mask, 0, nPatterns)
	for i := 0; i < nPatterns; i++ {
		// Observation 8 / Figure 7: mostly single-bit masks, some
		// double, occasionally more — and the multi-bit masks carry
		// less selection weight.
		nbits := 1
		weight := mrng.Range(0.8, 2)
		switch {
		case mrng.Bool(0.04):
			nbits = 3
			weight = mrng.Range(0.1, 0.5)
		case mrng.Bool(0.12):
			nbits = 2
			weight = mrng.Range(0.2, 0.8)
		}
		if nbits > dt.Bits() {
			nbits = dt.Bits()
		}
		lo, hi := inject.GenerateMask(mrng, dt, nbits)
		masks = append(masks, inject.Mask{Lo: lo, Hi: hi, Weight: weight})
	}
	c := inject.NewCorruptor(dt, masks, d.PatternProb)
	d.corruptors[dt] = c
	return c
}

// SortedInstrs returns the affected instructions in deterministic order.
func (d *Defect) SortedInstrs() []model.InstrID {
	out := make([]model.InstrID, 0, len(d.AffectedInstrs))
	for id := range d.AffectedInstrs {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Class != out[j].Class {
			return out[i].Class < out[j].Class
		}
		return out[i].Variant < out[j].Variant
	})
	return out
}

// DefectiveCores returns the sorted list of defective physical cores given
// the processor's total core count.
func (d *Defect) DefectiveCores(totalCores int) []int {
	if d.AllCores {
		out := make([]int, totalCores)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := append([]int(nil), d.Cores...)
	sort.Ints(out)
	return out
}
