package experiments

import (
	"fmt"
	"math"
	"time"

	"farron/internal/fleet"
	"farron/internal/report"
	"farron/internal/stats"
	"farron/internal/testkit"
)

// ExposureResult quantifies the production exposure window of Section 3.1:
// "despite all SDC tests, we still encounter SDC issues… This can be
// attributed to the window between regular SDC tests and the
// non-determinism of reproducing SDCs." Defects that manifest in production
// (after pre-production screens) stay live until a group-test round
// catches them — weeks to months.
type ExposureResult struct {
	// Groups and GroupDur describe the schedule.
	Groups   int
	GroupDur time.Duration
	// Samples is the number of simulated defect onsets.
	Samples int
	// Detected counts onsets eventually caught within MaxRounds.
	Detected int
	// MeanDays / MedianDays / P95Days summarize the exposure
	// distribution (onset → detection).
	MeanDays, MedianDays, P95Days float64
	// MeanDetectProb is the per-round detection probability averaged
	// over the sampled defects.
	MeanDetectProb float64
}

// Exposure simulates nSamples latent defects manifesting at uniform times
// during a fleet cycle and measures how long each stays undetected under
// the group-testing schedule.
func Exposure(ctx *Context, groups int, groupDur time.Duration, nSamples int) *ExposureResult {
	sched := fleet.NewGroupSchedule(groups, groupDur)
	rng := ctx.Rng.Derive("exposure")
	out := &ExposureResult{Groups: groups, GroupDur: groupDur, Samples: nSamples}

	// Per-round detection probability per defect: one regular round at
	// the regular-stage temperature, aggregated over its failing
	// testcases (same analytics as the fleet pipeline).
	stage := fleet.DefaultStages()[3] // regular
	var probs []float64
	for _, p := range ctx.Study {
		pDet := 1.0
		miss := 1.0
		for _, d := range p.Defects {
			core := bestCoreOf(d, p.TotalPCores)
			for _, tc := range ctx.Failing(p) {
				if !testkit.DetectableBy(tc, d) {
					continue
				}
				stress := testkit.SettingStress(tc, d)
				rate := d.RatePerMin(core, stage.MeanTempC, stress)
				miss *= math.Exp(-rate * stage.PerTestcaseMin)
			}
		}
		pDet = 1 - miss
		probs = append(probs, pDet)
	}
	out.MeanDetectProb = stats.Mean(probs)

	var exposures []float64
	cycle := sched.CycleDur()
	for i := 0; i < nSamples; i++ {
		pDet := probs[i%len(probs)]
		machine := rng.Intn(1_000_000)
		onset := time.Duration(rng.Float64() * float64(cycle))
		exp, ok := sched.ExposureUntilDetection(rng, machine, onset, pDet, 40)
		if !ok {
			continue
		}
		out.Detected++
		exposures = append(exposures, exp.Hours()/24)
	}
	if len(exposures) > 0 {
		cdf := stats.NewCDF(exposures)
		out.MeanDays = stats.Mean(exposures)
		out.MedianDays = cdf.Quantile(0.5)
		out.P95Days = cdf.Quantile(0.95)
	}
	return out
}

// Render summarizes the exposure study.
func (r *ExposureResult) Render() string {
	t := report.NewTable(
		fmt.Sprintf("Exposure window — %d groups × %v (fleet cycle %v)",
			r.Groups, r.GroupDur, time.Duration(r.Groups)*r.GroupDur),
		"metric", "value")
	t.AddRow("defect onsets sampled", fmt.Sprintf("%d", r.Samples))
	t.AddRow("eventually detected", fmt.Sprintf("%d (%.0f%%)", r.Detected,
		100*float64(r.Detected)/float64(r.Samples)))
	t.AddRow("mean per-round detect prob", fmt.Sprintf("%.2f", r.MeanDetectProb))
	t.AddRow("mean exposure", fmt.Sprintf("%.0f days", r.MeanDays))
	t.AddRow("median exposure", fmt.Sprintf("%.0f days", r.MedianDays))
	t.AddRow("p95 exposure", fmt.Sprintf("%.0f days", r.P95Days))
	return t.String() + "services requiring high reliability need SDC tolerance in this window (Observation 2).\n"
}
