package experiments

import (
	"fmt"
	"time"

	"farron/internal/core"
	"farron/internal/engine"
	"farron/internal/report"
)

// LifecycleRow is one processor's long-horizon outcome.
type LifecycleRow struct {
	CPUID string
	// Farron outcome.
	Farron core.LifecycleReport
	// BaselineDeprecated reports whether the baseline strategy would
	// have retired the whole processor, and after which round.
	BaselineDeprecated bool
	BaselineRounds     int
	// CoresSaved is how many healthy cores Farron keeps serving that the
	// baseline would have retired.
	CoresSaved int
}

// LifecycleResult is the end-to-end workflow comparison over a simulated
// operating horizon: Figure 10's state machine exercised round after round.
type LifecycleResult struct {
	Rows    []LifecycleRow
	Horizon time.Duration
}

// Lifecycle runs a compressed-cadence lifecycle (test rounds every 12
// simulated hours instead of 90 days, keeping the online tick count
// tractable) for each evaluated processor under Farron, and the baseline
// policy alongside.
func Lifecycle(ctx *Context) *LifecycleResult {
	cfg := core.DefaultConfig()
	cfg.RegularPeriod = 12 * time.Hour
	lcCfg := core.LifecycleConfig{
		Farron:  cfg,
		App:     core.DefaultAppProfile(),
		Horizon: 4 * cfg.RegularPeriod,
	}
	out := &LifecycleResult{Horizon: lcCfg.Horizon}
	active := fleetActiveIDs(ctx)
	ids := evalProcessors()
	// Per-processor shards: runners and the lifecycle stream all derive
	// from (id, salt) keys, merged in table order.
	out.Rows = engine.MapPlain(ctx.Pool(), len(ids), func(i int) LifecycleRow {
		id := ids[i]
		p := ctx.Profile(id)

		rF := newRunnerFor(ctx, id, "lc-farron")
		far := core.New(cfg, rF, p.Features(), active)
		lc := core.NewLifecycle(lcCfg, far, ctx.Rng.Derive("lc", id))
		rep := lc.Run()

		// Baseline: one round decides — any detection retires the whole
		// processor.
		rB := newRunnerFor(ctx, id, "lc-baseline")
		base := core.NewBaseline(rB, time.Minute)
		baseRound := base.RegularRound()
		baseDep := rB.Processor().Deprecated()

		saved := 0
		if baseDep && !rep.Deprecated {
			saved = p.TotalPCores - rep.MaskedCores
		}
		_ = baseRound
		return LifecycleRow{
			CPUID:              id,
			Farron:             rep,
			BaselineDeprecated: baseDep,
			BaselineRounds:     1,
			CoresSaved:         saved,
		}
	})
	return out
}

// TotalCoresSaved sums the fail-in-place benefit.
func (r *LifecycleResult) TotalCoresSaved() int {
	t := 0
	for _, row := range r.Rows {
		t += row.CoresSaved
	}
	return t
}

// Render draws the lifecycle comparison.
func (r *LifecycleResult) Render() string {
	t := report.NewTable(
		fmt.Sprintf("Lifecycle — Figure 10 workflow over %v (compressed cadence)", r.Horizon),
		"CPU", "final state", "rounds", "masked", "SDCs", "backoff s/h", "baseline", "cores saved")
	for _, row := range r.Rows {
		baseline := "kept"
		if row.BaselineDeprecated {
			baseline = "retired whole CPU"
		}
		t.AddRow(row.CPUID,
			row.Farron.FinalState.String(),
			fmt.Sprintf("%d", row.Farron.Rounds),
			fmt.Sprintf("%d", row.Farron.MaskedCores),
			fmt.Sprintf("%d", row.Farron.SDCs),
			fmt.Sprintf("%.3f", row.Farron.Backoff.BackoffSecondsPerHour()),
			baseline,
			fmt.Sprintf("%d", row.CoresSaved))
	}
	return t.String() + fmt.Sprintf("healthy cores kept in service by fine-grained decommission: %d\n",
		r.TotalCoresSaved())
}
