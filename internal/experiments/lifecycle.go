package experiments

import (
	"fmt"
	"time"

	"farron/internal/core"
	"farron/internal/engine"
	"farron/internal/report"
)

// LifecycleRow is one processor's long-horizon outcome.
type LifecycleRow struct {
	CPUID string
	// Farron outcome.
	Farron core.LifecycleReport
	// BaselineDeprecated reports whether the baseline strategy would
	// have retired the whole processor, and after which round.
	BaselineDeprecated bool
	BaselineRounds     int
	// CoresSaved is how many healthy cores Farron keeps serving that the
	// baseline would have retired.
	CoresSaved int
}

// LifecycleResult is the end-to-end workflow comparison over a simulated
// operating horizon: Figure 10's state machine exercised round after round.
type LifecycleResult struct {
	Rows    []LifecycleRow
	Horizon time.Duration
}

// lifecycleRounds is the horizon of the one-shot Lifecycle experiment, in
// regular periods.
const lifecycleRounds = 4

// lifecycleModelConfig is the compressed-cadence configuration shared by
// the one-shot experiment and the incremental stepper: test rounds every 12
// simulated hours instead of 90 days, keeping the online tick count
// tractable. rounds sets the horizon in regular periods; values < 1 take
// the experiment's default.
func lifecycleModelConfig(rounds int) core.LifecycleConfig {
	cfg := core.DefaultConfig()
	cfg.RegularPeriod = 12 * time.Hour
	if rounds < 1 {
		rounds = lifecycleRounds
	}
	return core.LifecycleConfig{
		Farron:  cfg,
		App:     core.DefaultAppProfile(),
		Horizon: time.Duration(rounds) * cfg.RegularPeriod,
	}
}

// LifecycleStepper is the exported defect-evolution step of the lifecycle
// model: one evaluated processor's Figure 10 workflow, advanced one regular
// period at a time instead of run over the whole horizon in one call. The
// continuous screening service steps one per study processor each campaign;
// TestLifecycleStepperMatchesRun pins that stepping is draw-sequence
// identical to the one-shot Lifecycle experiment at equal total steps.
type LifecycleStepper struct {
	// CPUID is the stepped processor.
	CPUID string
	lc    *core.Lifecycle
}

// NewLifecycleStepper builds the stepper for a study processor over a
// horizon of rounds regular periods (rounds < 1 takes the one-shot
// experiment's horizon). Construction mirrors the experiment's per-row
// setup exactly — same runner salt, same lifecycle substream — so a stepper
// and the experiment row for the same processor describe the same world.
func NewLifecycleStepper(ctx *Context, id string, rounds int) *LifecycleStepper {
	lcCfg := lifecycleModelConfig(rounds)
	p := ctx.Profile(id)
	rF := newRunnerFor(ctx, id, "lc-farron")
	far := core.New(lcCfg.Farron, rF, p.Features(), fleetActiveIDs(ctx))
	return &LifecycleStepper{
		CPUID: id,
		lc:    core.NewLifecycle(lcCfg, far, ctx.Rng.Derive("lc", id)),
	}
}

// Step advances one regular period (online span, test round, validation on
// detection); it returns false once the horizon is reached or the
// processor is deprecated.
func (s *LifecycleStepper) Step() bool { return s.lc.StepRound() }

// Done reports whether the model can advance no further.
func (s *LifecycleStepper) Done() bool { return s.lc.Done() }

// Report snapshots the aggregate lifecycle report so far.
func (s *LifecycleStepper) Report() core.LifecycleReport { return s.lc.Report() }

// Run drives the stepper to completion — the one-shot composition.
func (s *LifecycleStepper) Run() core.LifecycleReport { return s.lc.Run() }

// LifecycleCohort builds a stepper per evaluated study processor (the six
// Figure 11 / Table 4 CPUs), in table order. The continuous screening
// service advances the cohort one round per campaign, so defect evolution
// in the long-lived fleet reuses the exact lifecycle model the one-shot
// experiment evaluates.
func LifecycleCohort(ctx *Context, rounds int) []*LifecycleStepper {
	ids := evalProcessors()
	out := make([]*LifecycleStepper, len(ids))
	for i, id := range ids {
		out[i] = NewLifecycleStepper(ctx, id, rounds)
	}
	return out
}

// Lifecycle runs the compressed-cadence lifecycle for each evaluated
// processor under Farron, and the baseline policy alongside.
func Lifecycle(ctx *Context) *LifecycleResult {
	lcCfg := lifecycleModelConfig(0)
	out := &LifecycleResult{Horizon: lcCfg.Horizon}
	ids := evalProcessors()
	// Per-processor shards: runners and the lifecycle stream all derive
	// from (id, salt) keys, merged in table order.
	out.Rows = engine.MapPlain(ctx.Pool(), len(ids), func(i int) LifecycleRow {
		id := ids[i]
		p := ctx.Profile(id)

		rep := NewLifecycleStepper(ctx, id, 0).Run()

		// Baseline: one round decides — any detection retires the whole
		// processor.
		rB := newRunnerFor(ctx, id, "lc-baseline")
		base := core.NewBaseline(rB, time.Minute)
		baseRound := base.RegularRound()
		baseDep := rB.Processor().Deprecated()

		saved := 0
		if baseDep && !rep.Deprecated {
			saved = p.TotalPCores - rep.MaskedCores
		}
		_ = baseRound
		return LifecycleRow{
			CPUID:              id,
			Farron:             rep,
			BaselineDeprecated: baseDep,
			BaselineRounds:     1,
			CoresSaved:         saved,
		}
	})
	return out
}

// TotalCoresSaved sums the fail-in-place benefit.
func (r *LifecycleResult) TotalCoresSaved() int {
	t := 0
	for _, row := range r.Rows {
		t += row.CoresSaved
	}
	return t
}

// Render draws the lifecycle comparison.
func (r *LifecycleResult) Render() string {
	t := report.NewTable(
		fmt.Sprintf("Lifecycle — Figure 10 workflow over %v (compressed cadence)", r.Horizon),
		"CPU", "final state", "rounds", "masked", "SDCs", "backoff s/h", "baseline", "cores saved")
	for _, row := range r.Rows {
		baseline := "kept"
		if row.BaselineDeprecated {
			baseline = "retired whole CPU"
		}
		t.AddRow(row.CPUID,
			row.Farron.FinalState.String(),
			fmt.Sprintf("%d", row.Farron.Rounds),
			fmt.Sprintf("%d", row.Farron.MaskedCores),
			fmt.Sprintf("%d", row.Farron.SDCs),
			fmt.Sprintf("%.3f", row.Farron.Backoff.BackoffSecondsPerHour()),
			baseline,
			fmt.Sprintf("%d", row.CoresSaved))
	}
	return t.String() + fmt.Sprintf("healthy cores kept in service by fine-grained decommission: %d\n",
		r.TotalCoresSaved())
}
