package experiments

import (
	"fmt"
	"time"

	"farron/internal/report"
	"farron/internal/testkit"
)

// AnomaliesResult reproduces the three "counter-intuitive cases" of
// Observation 10 that the paper traced back to temperature:
//
//  1. other-core behaviour: a defective core only errs when neighbours are
//     busy (shared cooling);
//  2. remaining heat: testcase Y fails only when the hot testcase X ran
//     first;
//  3. toolchain update: a more efficient framework lowered some occurrence
//     frequencies.
type AnomaliesResult struct {
	// ProcessorID/TestcaseID name the probed setting; MinTempC is its
	// defect's triggering threshold.
	ProcessorID, TestcaseID string
	MinTempC                float64
	// BusyNeighbours: records observed in a fixed window with 0 vs many
	// busy neighbour cores (no temperature pinning — the heat coupling
	// is the mechanism).
	BusyIdle, BusyLoaded   int
	BusyIdleT, BusyLoadedT float64
	// RemainingHeat: records of testcase Y from idle vs right after the
	// hot testcase X.
	YFromIdle, YAfterX int
	// ToolchainUpdate: records and peak temperature under the old
	// (nominal) and updated (efficient) frameworks.
	OldRecords, NewRecords int
	OldMaxT, NewMaxT       float64
}

// anomalyProbe is the chosen (processor, defect, testcase, core) setting.
type anomalyProbe struct {
	id   string
	core int
	tc   *testkit.Testcase
}

// pickAnomalyProbe chooses the study setting that makes the thermal
// anomalies most measurable: a tricky defect (threshold above single-core
// operating temperature, so heat is the trigger) with the highest saturated
// single-threaded occurrence rate.
func pickAnomalyProbe(ctx *Context) (*anomalyProbe, error) {
	var best *anomalyProbe
	bestRate := 0.0
	for _, p := range ctx.Study {
		for _, d := range p.Defects {
			if d.MinTempC < 56 || d.MinTempC > 72 {
				continue // not heat-gated, or unreachable
			}
			core := bestCoreOf(d, p.TotalPCores)
			for _, tc := range ctx.Failing(p) {
				if tc.MultiThreaded || !testkit.DetectableBy(tc, d) {
					continue
				}
				stress := testkit.SettingStress(tc, d)
				rate := d.RatePerMin(core, 95, stress) // saturated regime
				if rate > bestRate {
					bestRate = rate
					best = &anomalyProbe{id: p.CPUID, core: core, tc: tc}
				}
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("experiments: no tricky single-threaded setting in the study set")
	}
	return best, nil
}

// Anomalies measures all three effects on the most measurable tricky
// setting in the study set.
func Anomalies(ctx *Context) (*AnomaliesResult, error) {
	probe, err := pickAnomalyProbe(ctx)
	if err != nil {
		return nil, err
	}
	id, y := probe.id, probe.tc
	p := ctx.Profile(id)
	out := &AnomaliesResult{ProcessorID: id, TestcaseID: y.ID, MinTempC: p.Defects[0].MinTempC}
	const window = 2 * time.Hour

	// 1. Busy neighbours.
	rIdle := newRunnerFor(ctx, id, "anom-idle")
	resIdle := rIdle.Run(y, testkit.RunOpts{Core: probe.core, Duration: window})
	out.BusyIdle, out.BusyIdleT = len(resIdle.Records), resIdle.MeanTempC

	rBusy := newRunnerFor(ctx, id, "anom-busy")
	resBusy := rBusy.Run(y, testkit.RunOpts{Core: probe.core, Duration: window, ExtraStressCores: p.TotalPCores - 1})
	out.BusyLoaded, out.BusyLoadedT = len(resBusy.Records), resBusy.MeanTempC

	// 2. Remaining heat: alternate the hot testcase X with short Y slots,
	// aggregated over cycles (each Y slot rides X's residual heat).
	var x *testkit.Testcase
	for _, tc := range ctx.Suite.Testcases {
		if tc.MultiThreaded && (x == nil || tc.HeatIntensity > x.HeatIntensity) {
			x = tc
		}
	}
	const cycles = 12
	rCold := newRunnerFor(ctx, id, "anom-cold")
	rHot := newRunnerFor(ctx, id, "anom-hot")
	for c := 0; c < cycles; c++ {
		// Cold side: idle gap instead of X, then Y.
		rCold.Thermal().ClearLoads()
		rCold.Thermal().Step(15 * time.Minute)
		out.YFromIdle += len(rCold.Run(y, testkit.RunOpts{Core: probe.core, Duration: 3 * time.Minute}).Records)
		// Hot side: X first, then Y immediately.
		rHot.Run(x, testkit.RunOpts{Core: probe.core, Duration: 15 * time.Minute, BurnIn: true})
		out.YAfterX += len(rHot.Run(y, testkit.RunOpts{Core: probe.core, Duration: 3 * time.Minute}).Records)
	}

	// 3. Toolchain update.
	sel := func(tc *testkit.Testcase) bool { return tc.ID == y.ID }
	rOld := newRunnerFor(ctx, id, "anom-old")
	old := testkit.NewFramework(rOld).Execute(testkit.Spec{
		Select: sel, PerTestcase: window, BurnIn: true, EfficiencyScale: 1,
	}, ctx.Rng.Derive("anom-old"))
	rNew := newRunnerFor(ctx, id, "anom-new")
	upd := testkit.NewFramework(rNew).Execute(testkit.Spec{
		Select: sel, PerTestcase: window, BurnIn: true, EfficiencyScale: 0.12,
	}, ctx.Rng.Derive("anom-new"))
	out.OldRecords, out.OldMaxT = len(old[0].Records), old[0].MaxTempC
	out.NewRecords, out.NewMaxT = len(upd[0].Records), upd[0].MaxTempC
	return out, nil
}

// Render draws the anomaly table.
func (r *AnomaliesResult) Render() string {
	t := report.NewTable(fmt.Sprintf("Observation 10 anomalies — %s %s (tricky, Tmin %.0f degC)",
		r.ProcessorID, r.TestcaseID, r.MinTempC),
		"anomaly", "condition A", "condition B")
	t.AddRow("busy neighbours",
		fmt.Sprintf("alone: %d SDCs @ %.1f degC", r.BusyIdle, r.BusyIdleT),
		fmt.Sprintf("23 busy: %d SDCs @ %.1f degC", r.BusyLoaded, r.BusyLoadedT))
	t.AddRow("remaining heat",
		fmt.Sprintf("Y from idle: %d SDCs", r.YFromIdle),
		fmt.Sprintf("Y after hot X: %d SDCs", r.YAfterX))
	t.AddRow("toolchain update",
		fmt.Sprintf("old framework: %d SDCs, peak %.1f degC", r.OldRecords, r.OldMaxT),
		fmt.Sprintf("efficient: %d SDCs, peak %.1f degC", r.NewRecords, r.NewMaxT))
	return t.String()
}
