package experiments

import (
	"testing"
)

// TestDeterministicRenders guards the reproducibility contract: two fresh
// contexts from the same seed must render byte-identical experiment output.
// Any accidental dependence on map iteration order, wall-clock time or
// global state shows up here.
func TestDeterministicRenders(t *testing.T) {
	a := NewContext(424242)
	b := NewContext(424242)

	type render struct {
		name string
		fn   func(*Context) string
	}
	renders := []render{
		{"table3", func(c *Context) string { return Table3(c).Render() }},
		{"fig2", func(c *Context) string { return Fig2(c).Render() }},
		{"fig3", func(c *Context) string { return Fig3(c).Render() }},
		{"fig6", func(c *Context) string { return Fig6(c, 120).Render() }},
		{"fig7", func(c *Context) string { return Fig7(c, 150).Render() }},
		{"fig9", func(c *Context) string {
			r, err := Fig9(c)
			if err != nil {
				t.Fatal(err)
			}
			return r.Render()
		}},
		{"obs9", func(c *Context) string { return Obs9(c, 62).Render() }},
	}
	for _, r := range renders {
		outA := r.fn(a)
		outB := r.fn(b)
		if outA != outB {
			t.Errorf("%s: renders differ across identical seeds\n--- A ---\n%s\n--- B ---\n%s",
				r.name, outA, outB)
		}
	}
}

// TestSeedsActuallyMatter is the counterpart: distinct seeds must yield
// distinct study sets (no accidental constant world).
func TestSeedsActuallyMatter(t *testing.T) {
	a := NewContext(1)
	b := NewContext(2)
	same := true
	for i := range a.Study {
		if a.Study[i].Defects[0].MinTempC != b.Study[i].Defects[0].MinTempC {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical study sets")
	}
}
