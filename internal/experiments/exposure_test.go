package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestExposureWindow(t *testing.T) {
	day := 24 * time.Hour
	res := Exposure(sharedCtx, 6, 14*day, 2000)
	if res.Detected == 0 {
		t.Fatal("no defects ever detected")
	}
	// Escapes must exist: tricky defects dodge regular rounds — the
	// Section 2.2 incidents.
	if res.Detected == res.Samples {
		t.Error("every defect detected; the paper's escape window requires misses")
	}
	// The mean exposure must be weeks-to-months (the cycle is 12 weeks).
	if res.MeanDays < 14 || res.MeanDays > 400 {
		t.Errorf("mean exposure = %.0f days, want weeks-to-months", res.MeanDays)
	}
	if res.P95Days < res.MedianDays {
		t.Errorf("p95 %v < median %v", res.P95Days, res.MedianDays)
	}
	// More groups (longer fleet cycle) must lengthen exposure.
	resLong := Exposure(sharedCtx, 12, 14*day, 2000)
	if resLong.MeanDays <= res.MeanDays {
		t.Errorf("doubling the cycle shortened exposure: %.0f -> %.0f days",
			res.MeanDays, resLong.MeanDays)
	}
	if !strings.Contains(res.Render(), "exposure") {
		t.Error("render malformed")
	}
}
