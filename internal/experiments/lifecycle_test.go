package experiments

import (
	"reflect"
	"strings"
	"testing"

	"farron/internal/core"
)

// TestLifecycleStepperMatchesRun pins the incremental-advance contract: a
// lifecycle model stepped campaign by campaign (with snapshots taken
// between steps) is draw-sequence identical to the one-shot run at equal
// total steps — same rounds, same detections, same SDC counts, same state
// transitions at the same virtual times.
func TestLifecycleStepperMatchesRun(t *testing.T) {
	for _, id := range evalProcessors() {
		oneShot := NewLifecycleStepper(sharedCtx, id, 0).Run()

		stepped := NewLifecycleStepper(sharedCtx, id, 0)
		steps := 0
		for stepped.Step() {
			steps++
			// Mid-run snapshots must not perturb the stream.
			_ = stepped.Report()
			if steps > 100 {
				t.Fatalf("%s: stepper did not terminate", id)
			}
		}
		if got := stepped.Report(); !reflect.DeepEqual(got, oneShot) {
			t.Errorf("%s: stepped report diverges from one-shot run\nstepped:  %+v\none-shot: %+v",
				id, got, oneShot)
		}
		if stepped.Done() != true {
			t.Errorf("%s: Done() = false after Step() returned false", id)
		}
	}
}

// TestLifecycleStepperLongerHorizon: a wider horizon consumes more rounds
// for a processor that survives (defects keep developing over lifetime).
func TestLifecycleStepperLongerHorizon(t *testing.T) {
	// FPU1 masks a single core and keeps serving in the 4-round test.
	short := NewLifecycleStepper(sharedCtx, "FPU1", 0).Run()
	long := NewLifecycleStepper(sharedCtx, "FPU1", 12).Run()
	if short.Deprecated {
		t.Skip("FPU1 deprecated at short horizon; extension not observable")
	}
	if long.Rounds <= short.Rounds {
		t.Errorf("12-round horizon ran %d rounds, short ran %d", long.Rounds, short.Rounds)
	}
	if long.OnlineTime <= short.OnlineTime {
		t.Errorf("long horizon online %v not above short %v", long.OnlineTime, short.OnlineTime)
	}
}

func TestLifecycleComparison(t *testing.T) {
	res := Lifecycle(sharedCtx)
	if len(res.Rows) != 6 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		switch row.CPUID {
		case "MIX1", "MIX2", "CNST2":
			// All-core defects: both strategies retire the processor.
			if row.Farron.FinalState != core.StateDeprecated {
				t.Errorf("%s: Farron final state = %v, want deprecated", row.CPUID, row.Farron.FinalState)
			}
		case "SIMD1", "FPU1", "FPU2", "CNST1":
			// Single-core defects: Farron masks and keeps serving.
			if row.Farron.Deprecated {
				t.Errorf("%s: Farron deprecated a single-core defect", row.CPUID)
			}
			if row.Farron.MaskedCores != 1 {
				t.Errorf("%s: masked %d cores", row.CPUID, row.Farron.MaskedCores)
			}
			if row.Farron.SDCs != 0 {
				t.Errorf("%s: app absorbed %d SDCs after masking", row.CPUID, row.Farron.SDCs)
			}
		}
	}
	// The baseline retires whole processors whenever it detects (it can
	// miss a weak defect in its cold 2.5s-per-core slots — exactly the
	// Figure 11 coverage gap); Farron's fail-in-place dividend must show
	// on the CPUs the baseline did catch.
	if res.TotalCoresSaved() < 20 {
		t.Errorf("total cores saved = %d, want the fail-in-place dividend", res.TotalCoresSaved())
	}
	if !strings.Contains(res.Render(), "cores saved") {
		t.Error("render malformed")
	}
}
