package experiments

import (
	"strings"
	"testing"

	"farron/internal/core"
)

func TestLifecycleComparison(t *testing.T) {
	res := Lifecycle(sharedCtx)
	if len(res.Rows) != 6 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		switch row.CPUID {
		case "MIX1", "MIX2", "CNST2":
			// All-core defects: both strategies retire the processor.
			if row.Farron.FinalState != core.StateDeprecated {
				t.Errorf("%s: Farron final state = %v, want deprecated", row.CPUID, row.Farron.FinalState)
			}
		case "SIMD1", "FPU1", "FPU2", "CNST1":
			// Single-core defects: Farron masks and keeps serving.
			if row.Farron.Deprecated {
				t.Errorf("%s: Farron deprecated a single-core defect", row.CPUID)
			}
			if row.Farron.MaskedCores != 1 {
				t.Errorf("%s: masked %d cores", row.CPUID, row.Farron.MaskedCores)
			}
			if row.Farron.SDCs != 0 {
				t.Errorf("%s: app absorbed %d SDCs after masking", row.CPUID, row.Farron.SDCs)
			}
		}
	}
	// The baseline retires whole processors whenever it detects (it can
	// miss a weak defect in its cold 2.5s-per-core slots — exactly the
	// Figure 11 coverage gap); Farron's fail-in-place dividend must show
	// on the CPUs the baseline did catch.
	if res.TotalCoresSaved() < 20 {
		t.Errorf("total cores saved = %d, want the fail-in-place dividend", res.TotalCoresSaved())
	}
	if !strings.Contains(res.Render(), "cores saved") {
		t.Error("render malformed")
	}
}
