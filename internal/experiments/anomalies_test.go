package experiments

import (
	"strings"
	"testing"
)

func TestAnomalies(t *testing.T) {
	res, err := Anomalies(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	// Busy neighbours raise the defective core's temperature and so its
	// occurrence count (the defect is private; the heatsink is not).
	if res.BusyLoadedT <= res.BusyIdleT {
		t.Errorf("busy neighbours did not heat core: %.1f vs %.1f", res.BusyLoadedT, res.BusyIdleT)
	}
	if res.BusyLoaded <= res.BusyIdle {
		t.Errorf("busy neighbours: %d SDCs vs %d alone", res.BusyLoaded, res.BusyIdle)
	}
	// Remaining heat: Y after hot X fails more than from idle.
	if res.YAfterX <= res.YFromIdle {
		t.Errorf("remaining heat: after X %d vs idle %d", res.YAfterX, res.YFromIdle)
	}
	// Toolchain update: cooler framework, fewer SDCs.
	if res.NewMaxT >= res.OldMaxT {
		t.Errorf("efficient framework not cooler: %.1f vs %.1f", res.NewMaxT, res.OldMaxT)
	}
	if res.NewRecords >= res.OldRecords {
		t.Errorf("efficient framework records %d >= old %d", res.NewRecords, res.OldRecords)
	}
	if !strings.Contains(res.Render(), "remaining heat") {
		t.Error("render malformed")
	}
}
