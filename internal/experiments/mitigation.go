package experiments

import (
	"fmt"
	"math"
	"time"

	"farron/internal/core"
	"farron/internal/cpu"
	"farron/internal/engine"
	"farron/internal/report"
	"farron/internal/testkit"
	"farron/internal/thermal"
)

// evalProcessors are the six faulty processors of Figure 11 and Table 4.
func evalProcessors() []string {
	return []string{"MIX1", "SIMD1", "FPU1", "FPU2", "CNST1", "CNST2"}
}

// CoverageRow is one processor's Figure 11 pair.
type CoverageRow struct {
	CPUID            string
	Farron, Baseline float64
	// FarronDur and BaselineDur are the round durations behind the
	// 1.02 h vs 10.55 h claim.
	FarronDur, BaselineDur time.Duration
}

// Fig11Result is Figure 11: one-round regular-testing coverage.
type Fig11Result struct {
	Rows []CoverageRow
}

// newRunnerFor builds a fresh runner for a study processor.
func newRunnerFor(ctx *Context, id, salt string) *testkit.Runner {
	p := ctx.Profile(id)
	proc := cpu.FromProfile(p)
	pkg := thermal.New(thermal.DefaultConfig(), proc.PhysCores, ctx.Rng.Derive("mit", id, salt))
	return testkit.NewRunner(ctx.Suite, proc, pkg)
}

// fleetActiveIDs feeds Farron's active-priority history: every testcase
// that ever detected an error across the study fleet.
func fleetActiveIDs(ctx *Context) []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range ctx.Study {
		for _, tc := range ctx.Failing(p) {
			if !seen[tc.ID] {
				seen[tc.ID] = true
				out = append(out, tc.ID)
			}
		}
	}
	return out
}

// Fig11 runs one regular round under Farron and under the baseline for each
// evaluated processor and compares coverage.
func Fig11(ctx *Context) *Fig11Result {
	active := fleetActiveIDs(ctx)
	ids := evalProcessors()
	// Each processor's pair of rounds owns per-(id, salt) substreams, so
	// the six evaluations are independent shards merged in table order.
	rows := engine.MapPlain(ctx.Pool(), len(ids), func(i int) CoverageRow {
		id := ids[i]
		known := ctx.KnownErrs(id)
		p := ctx.Profile(id)

		rF := newRunnerFor(ctx, id, "farron")
		far := core.New(core.DefaultConfig(), rF, p.Features(), active)
		farRound := far.RegularRound()

		rB := newRunnerFor(ctx, id, "baseline")
		base := core.NewBaseline(rB, time.Minute)
		baseRound := base.RegularRound()

		return CoverageRow{
			CPUID:       id,
			Farron:      farRound.Coverage(known),
			Baseline:    baseRound.Coverage(known),
			FarronDur:   farRound.Duration,
			BaselineDur: baseRound.Duration,
		}
	})
	return &Fig11Result{Rows: rows}
}

// MeanDurations returns the average Farron and baseline round durations
// (paper: 1.02 h vs 10.55 h).
func (r *Fig11Result) MeanDurations() (farron, baseline time.Duration) {
	if len(r.Rows) == 0 {
		return 0, 0
	}
	var f, b time.Duration
	for _, row := range r.Rows {
		f += row.FarronDur
		b += row.BaselineDur
	}
	n := time.Duration(len(r.Rows))
	return f / n, b / n
}

// Render draws Figure 11 plus the round-duration comparison.
func (r *Fig11Result) Render() string {
	t := report.NewTable("Figure 11 — regular testing coverage (one round)",
		"CPU", "Farron", "Baseline", "Farron round", "Baseline round")
	for _, row := range r.Rows {
		t.AddRow(row.CPUID,
			fmt.Sprintf("%.2f", row.Farron),
			fmt.Sprintf("%.2f", row.Baseline),
			row.FarronDur.Round(time.Minute).String(),
			row.BaselineDur.Round(time.Minute).String())
	}
	f, b := r.MeanDurations()
	return t.String() + fmt.Sprintf(
		"mean round duration: Farron %.2f h (paper 1.02 h), baseline %.2f h (paper 10.55 h)\n",
		f.Hours(), b.Hours())
}

// OverheadRow is one processor's Table 4 line.
type OverheadRow struct {
	CPUID string
	// TestOverhead is round duration over the 3-month period.
	TestOverhead float64
	// ControlOverhead is workload-backoff time over online time.
	ControlOverhead float64
	// Total is their sum.
	Total float64
	// BackoffSecondsPerHour is the paper's 0.864 s/h companion metric.
	BackoffSecondsPerHour float64
	// MaxOnlineTempC verifies the under-59°C claim.
	MaxOnlineTempC float64
	// OnlineSDCs counts corruptions the protected application absorbed.
	OnlineSDCs int
	// UnprotectedSDCs counts corruptions without temperature control.
	UnprotectedSDCs int
}

// Table4Result is Table 4: Farron overhead versus the baseline's 0.488%.
type Table4Result struct {
	Rows             []OverheadRow
	BaselineOverhead float64
	// PaperBaseline is the published 0.488%.
	PaperBaseline float64
}

// trickiestStress returns the stress of the processor's hardest-to-cover
// setting: the failing testcase with the highest finite observed minimum
// triggering temperature. These are the settings Section 7.2 simulates
// "using our toolchain for hours" — errors that need both high temperature
// and long-term testing, which regular rounds cannot fully cover and
// Farron's temperature control must protect against.
func trickiestStress(ctx *Context, id string) float64 {
	p := ctx.Profile(id)
	best := 0.0
	bestT := -1.0
	for _, d := range p.Defects {
		core := bestCoreOf(d, p.TotalPCores)
		for _, tc := range ctx.Failing(p) {
			if !testkit.DetectableBy(tc, d) {
				continue
			}
			s := testkit.SettingStress(tc, d)
			tmin := d.ObservedMinTemp(core, s)
			if math.IsInf(tmin, 0) {
				continue
			}
			if tmin > bestT {
				bestT = tmin
				best = s
			}
		}
	}
	return best
}

// Table4 measures per-processor testing and temperature-control overhead.
// onlineDur is the simulated online time per processor.
func Table4(ctx *Context, onlineDur time.Duration) *Table4Result {
	out := &Table4Result{
		BaselineOverhead: core.TestOverhead(time.Duration(testkit.SuiteSize)*time.Minute, 90*24*time.Hour),
		PaperBaseline:    0.00488,
	}
	active := fleetActiveIDs(ctx)
	ids := evalProcessors()
	// Six independent per-processor shards: all randomness comes from
	// per-(id, salt) substreams, merged in table order.
	out.Rows = engine.MapPlain(ctx.Pool(), len(ids), func(i int) OverheadRow {
		id := ids[i]
		p := ctx.Profile(id)

		// Regular-round testing overhead.
		rF := newRunnerFor(ctx, id, "t4-round")
		far := core.New(core.DefaultConfig(), rF, p.Features(), active)
		round := far.RegularRound()
		testOv := core.TestOverhead(round.Duration, 90*24*time.Hour)

		// Online temperature-control overhead: the protected workload
		// is the one affected by the processor's hardest-to-cover
		// setting (Section 7.2's simulation of impacted workloads).
		app := core.DefaultAppProfile()
		app.Stress = trickiestStress(ctx, id)
		rO := newRunnerFor(ctx, id, "t4-online")
		farOnline := core.New(core.DefaultConfig(), rO, p.Features(), active)
		online := farOnline.Online(onlineDur, app, true, ctx.Rng.Derive("t4", id, "p"))

		rU := newRunnerFor(ctx, id, "t4-unprot")
		farU := core.New(core.DefaultConfig(), rU, p.Features(), active)
		unprot := farU.Online(onlineDur, app, false, ctx.Rng.Derive("t4", id, "u"))

		ctrl := online.Backoff.Overhead()
		return OverheadRow{
			CPUID:                 id,
			TestOverhead:          testOv,
			ControlOverhead:       ctrl,
			Total:                 testOv + ctrl,
			BackoffSecondsPerHour: online.Backoff.BackoffSecondsPerHour(),
			MaxOnlineTempC:        online.Backoff.MaxTempC,
			OnlineSDCs:            online.SDCs,
			UnprotectedSDCs:       unprot.SDCs,
		}
	})
	return out
}

// Render draws Table 4.
func (r *Table4Result) Render() string {
	t := report.NewTable("Table 4 — Farron overhead vs baseline",
		"CPU", "test", "control", "total", "backoff s/h", "max temp", "SDCs (prot/unprot)")
	for _, row := range r.Rows {
		t.AddRow(row.CPUID,
			report.Percent(row.TestOverhead),
			report.Percent(row.ControlOverhead),
			report.Percent(row.Total),
			fmt.Sprintf("%.3f", row.BackoffSecondsPerHour),
			fmt.Sprintf("%.1f", row.MaxOnlineTempC),
			fmt.Sprintf("%d/%d", row.OnlineSDCs, row.UnprotectedSDCs))
	}
	return t.String() + fmt.Sprintf("baseline test overhead: %s (paper %s)\n",
		report.Percent(r.BaselineOverhead), report.Percent(r.PaperBaseline))
}
