package experiments

import (
	"testing"

	"farron/internal/engine"
)

// TestCompiledMatchesReference diffs the full registry's rendered output
// between a production context (compiled suite indexes, detection plans,
// runner fast paths) and a reference context that pins every retained
// naive implementation. The two must be byte-identical: the hot-path
// compilation is a pure evaluation-order optimization and the simrand
// draw sequence is its invariant.
func TestCompiledMatchesReference(t *testing.T) {
	exps := Registry()
	sc := parallelTestScale()

	run := func(ctx *Context, label string) map[string]string {
		sections, _, err := engine.NewRunnerCtx(ctx, engine.RunOptions{}).Run(exps, sc)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		out := make(map[string]string, len(sections))
		for _, s := range sections {
			out[s.Name] = s.Body
		}
		return out
	}

	compiled := run(engine.NewCtxWorkers(7, 1), "compiled")
	reference := run(engine.NewReferenceCtx(7, 1), "reference")
	if len(compiled) != len(reference) {
		t.Fatalf("section count differs: compiled %d, reference %d", len(compiled), len(reference))
	}
	for name, want := range reference {
		if got := compiled[name]; got != want {
			t.Errorf("%s: compiled output differs from reference\n--- reference ---\n%s\n--- compiled ---\n%s",
				name, want, got)
		}
	}
}
