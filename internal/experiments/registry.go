package experiments

import (
	"farron/internal/engine"
)

// Registry returns every experiment of the paper's evaluation as engine
// registry entries, in report order. Section names match the bench report
// headings. Each Run is a pure function of (ctx, scale) — drivers take all
// randomness from substreams of ctx.Rng — so the engine may execute entries
// concurrently against one shared frozen context.
func Registry() []engine.Experiment {
	study := []string{engine.GroupStudy}
	fl := []string{engine.GroupFleet}
	mit := []string{engine.GroupMitigation}
	entries := []engine.Experiment{
		{
			Name: "Table 1", Desc: "failure rate by test timing", Groups: fl,
			Run: func(ctx *engine.Ctx, sc engine.Scale) (engine.Result, error) {
				return Table1(ctx, sc.Population, sc.Strategy)
			},
		},
		{
			Name: "Table 2", Desc: "failure rate by micro-architecture", Groups: fl,
			Run: func(ctx *engine.Ctx, sc engine.Scale) (engine.Result, error) {
				return Table2(ctx, sc.Population, sc.Strategy)
			},
		},
		{
			Name: "Table 3", Desc: "studied faulty-processor inventory", Groups: study,
			Run: func(ctx *engine.Ctx, sc engine.Scale) (engine.Result, error) {
				return Table3(ctx), nil
			},
		},
		{
			Name: "Figure 2", Desc: "faulty-feature proportions", Groups: study,
			Run: func(ctx *engine.Ctx, sc engine.Scale) (engine.Result, error) {
				return Fig2(ctx), nil
			},
		},
		{
			Name: "Figure 3", Desc: "affected-datatype proportions", Groups: study,
			Run: func(ctx *engine.Ctx, sc engine.Scale) (engine.Result, error) {
				return Fig3(ctx), nil
			},
		},
		{
			Name: "Figure 4", Desc: "bitflip positions and precision losses", Groups: study,
			Run: func(ctx *engine.Ctx, sc engine.Scale) (engine.Result, error) {
				return Fig4(ctx, sc.Records), nil
			},
		},
		{
			Name: "Figure 5", Desc: "bitflips of non-numerical datatypes", Groups: study,
			Run: func(ctx *engine.Ctx, sc engine.Scale) (engine.Result, error) {
				return Fig5(ctx, sc.Records), nil
			},
		},
		{
			Name: "Figure 6", Desc: "bitflip-pattern proportions per setting", Groups: study,
			Run: func(ctx *engine.Ctx, sc engine.Scale) (engine.Result, error) {
				return Fig6(ctx, sc.Fig6Records), nil
			},
		},
		{
			Name: "Figure 7", Desc: "flipped-bit counts among pattern SDCs", Groups: study,
			Run: func(ctx *engine.Ctx, sc engine.Scale) (engine.Result, error) {
				return Fig7(ctx, sc.Fig7Records), nil
			},
		},
		{
			Name: "Figure 8", Desc: "occurrence frequency vs temperature", Groups: study,
			Run: func(ctx *engine.Ctx, sc engine.Scale) (engine.Result, error) {
				return Fig8(ctx)
			},
		},
		{
			Name: "Figure 9", Desc: "frequency at minimum triggering temperature", Groups: study,
			Run: func(ctx *engine.Ctx, sc engine.Scale) (engine.Result, error) {
				return Fig9(ctx)
			},
		},
		{
			Name: "Observation 9", Desc: "per-setting frequency distribution", Groups: study,
			Run: func(ctx *engine.Ctx, sc engine.Scale) (engine.Result, error) {
				return Obs9(ctx, sc.RefTempC), nil
			},
		},
		{
			Name: "Observation 11", Desc: "ineffective testcases in production", Groups: fl,
			Run: func(ctx *engine.Ctx, sc engine.Scale) (engine.Result, error) {
				return Obs11(ctx, sc.SubPopulation, sc.Strategy)
			},
		},
		{
			Name: "Figure 11", Desc: "regular-testing coverage Farron vs baseline", Groups: mit,
			Run: func(ctx *engine.Ctx, sc engine.Scale) (engine.Result, error) {
				return Fig11(ctx), nil
			},
		},
		{
			Name: "Table 4", Desc: "Farron overhead vs baseline", Groups: mit,
			Run: func(ctx *engine.Ctx, sc engine.Scale) (engine.Result, error) {
				return Table4(ctx, sc.Online), nil
			},
		},
		{
			Name: "Observation 12", Desc: "fault-tolerance techniques vs SDCs", Groups: mit,
			Run: func(ctx *engine.Ctx, sc engine.Scale) (engine.Result, error) {
				return Obs12(ctx, sc.Obs12Records), nil
			},
		},
		{
			Name: "Ablation", Desc: "contribution of Farron's design choices", Groups: mit,
			Run: func(ctx *engine.Ctx, sc engine.Scale) (engine.Result, error) {
				return Ablation(ctx), nil
			},
		},
		{
			Name: "Section 5 separation", Desc: "stress/temperature separation", Groups: study,
			Run: func(ctx *engine.Ctx, sc engine.Scale) (engine.Result, error) {
				return Separation(ctx)
			},
		},
		{
			Name: "Section 4.1 attribution", Desc: "statistical instruction attribution", Groups: study,
			Run: func(ctx *engine.Ctx, sc engine.Scale) (engine.Result, error) {
				return Attribution(ctx), nil
			},
		},
		{
			Name: "Observation 10 anomalies", Desc: "counter-intuitive thermal cases", Groups: study,
			Run: func(ctx *engine.Ctx, sc engine.Scale) (engine.Result, error) {
				return Anomalies(ctx)
			},
		},
		{
			Name: "Lifecycle", Desc: "Figure 10 workflow over an operating horizon", Groups: mit,
			Run: func(ctx *engine.Ctx, sc engine.Scale) (engine.Result, error) {
				return Lifecycle(ctx), nil
			},
		},
		{
			Name: "Exposure window", Desc: "production exposure between test rounds", Groups: fl,
			Run: func(ctx *engine.Ctx, sc engine.Scale) (engine.Result, error) {
				return Exposure(ctx, sc.ExposureGroups, sc.ExposureGroupDur, sc.ExposureSamples), nil
			},
		},
	}
	return append(entries, sweepEntries(mit)...)
}
