package experiments

import (
	"fmt"
	"strings"

	"farron/internal/fleet"
	"farron/internal/model"
	"farron/internal/report"
)

// Table1Result reproduces Table 1: failure rate by test timing.
type Table1Result struct {
	// Measured rates (fraction of the population) per stage, plus total.
	Measured map[model.Stage]float64
	Total    float64
	// Paper holds the published values for side-by-side comparison.
	Paper      map[model.Stage]float64
	PaperTotal float64
	// Detected and Population give the raw counts.
	Detected   int
	Population int
	// PreProductionShare is the fraction of detections before
	// production (paper: 90.36%).
	PreProductionShare float64
}

// paperTable1 are the published per-stage rates (fractions).
func paperTable1() map[model.Stage]float64 {
	return map[model.Stage]float64{
		model.StageFactory:    0.776e-4,
		model.StageDatacenter: 0.180e-4,
		model.StageReinstall:  2.306e-4,
		model.StageRegular:    0.348e-4,
	}
}

// Table1 runs the fleet pipeline at the given population size under the
// given screening strategy ("" means the default) and measures the
// per-stage detection rates.
func Table1(ctx *Context, population int, strategy string) (*Table1Result, error) {
	cfg := fleet.DefaultConfig()
	cfg.Processors = population
	cfg.Seed = ctx.Seed
	cfg.Workers = ctx.Workers
	cfg.Strategy = strategy
	sim, err := fleet.NewSimulator(cfg, ctx.Suite)
	if err != nil {
		return nil, err
	}
	res := sim.Run()
	out := &Table1Result{
		Measured:   map[model.Stage]float64{},
		Paper:      paperTable1(),
		PaperTotal: 3.61e-4,
		Detected:   res.DetectedTotal(),
		Population: res.Population,
		Total:      res.OverallRate(),
	}
	pre := 0
	for _, s := range model.AllStages() {
		out.Measured[s] = res.StageRate(s)
		if s.PreProduction() {
			pre += res.DetectedByStage[s]
		}
	}
	if res.DetectedTotal() > 0 {
		out.PreProductionShare = float64(pre) / float64(res.DetectedTotal())
	}
	return out, nil
}

// Render produces the Table 1 text.
func (r *Table1Result) Render() string {
	t := report.NewTable(
		fmt.Sprintf("Table 1 — failure rate by test timing (%d CPUs, %d detected)", r.Population, r.Detected),
		"timing", "measured", "paper")
	for _, s := range model.AllStages() {
		t.AddRow(s.String(), report.PerTenThousand(r.Measured[s]), report.PerTenThousand(r.Paper[s]))
	}
	t.AddRow("total", report.PerTenThousand(r.Total), report.PerTenThousand(r.PaperTotal))
	return t.String() + fmt.Sprintf("pre-production share: %.2f%% (paper 90.36%%)\n", r.PreProductionShare*100)
}

// Table2Result reproduces Table 2: failure rate per micro-architecture.
type Table2Result struct {
	Measured map[model.MicroArch]float64
	Paper    map[model.MicroArch]float64
	// Average is the population-weighted measured mean.
	Average    float64
	Population int
}

// paperTable2 are the published per-arch rates (fractions).
func paperTable2() map[model.MicroArch]float64 {
	return map[model.MicroArch]float64{
		"M1": 4.619e-4, "M2": 0.352e-4, "M3": 2.649e-4,
		"M4": 0.082e-4, "M5": 0.759e-4, "M6": 3.251e-4,
		"M7": 1.599e-4, "M8": 9.290e-4, "M9": 4.646e-4,
	}
}

// Table2 measures per-architecture detected failure rates under the given
// screening strategy ("" means the default).
func Table2(ctx *Context, population int, strategy string) (*Table2Result, error) {
	cfg := fleet.DefaultConfig()
	cfg.Processors = population
	cfg.Seed = ctx.Seed
	cfg.Workers = ctx.Workers
	cfg.Strategy = strategy
	sim, err := fleet.NewSimulator(cfg, ctx.Suite)
	if err != nil {
		return nil, err
	}
	res := sim.Run()
	out := &Table2Result{
		Measured:   map[model.MicroArch]float64{},
		Paper:      paperTable2(),
		Average:    res.OverallRate(),
		Population: res.Population,
	}
	for arch, ar := range res.ByArch {
		out.Measured[arch] = ar.FailureRate()
	}
	return out, nil
}

// Render produces the Table 2 text.
func (r *Table2Result) Render() string {
	t := report.NewTable(
		fmt.Sprintf("Table 2 — failure rate by micro-architecture (%d CPUs)", r.Population),
		"arch", "measured", "paper")
	for _, a := range model.AllMicroArchs() {
		t.AddRow(string(a), report.PerTenThousand(r.Measured[a]), report.PerTenThousand(r.Paper[a]))
	}
	t.AddRow("avg", report.PerTenThousand(r.Average), report.PerTenThousand(3.61e-4))
	return t.String()
}

// Table3Row is one processor's inventory line.
type Table3Row struct {
	CPUID     string
	Arch      model.MicroArch
	AgeYears  float64
	PCores    int // defective physical cores
	PaperErrs int
	// MeasuredErrs is the calibrated failing-testcase count re-measured
	// through the suite.
	MeasuredErrs int
	Class        model.DefectClass
	Workloads    []string
	DataTypes    []model.DataType
}

// Table3Result reproduces Table 3's faulty-processor inventory.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 re-derives each library processor's error inventory.
func Table3(ctx *Context) *Table3Result {
	var out Table3Result
	for _, p := range ctx.Library {
		out.Rows = append(out.Rows, Table3Row{
			CPUID:        p.CPUID,
			Arch:         p.Arch,
			AgeYears:     p.AgeYears,
			PCores:       p.DefectivePCores,
			PaperErrs:    p.TargetErrCount,
			MeasuredErrs: len(ctx.Failing(p)),
			Class:        p.Class(),
			Workloads:    p.ImpactedWorkloads,
			DataTypes:    p.DataTypes(),
		})
	}
	return &out
}

// Render produces the Table 3 text.
func (r *Table3Result) Render() string {
	t := report.NewTable("Table 3 — studied faulty processors",
		"CPU", "arch", "age(Y)", "#pcore", "#err", "#err(paper)", "type", "impacted workloads", "datatypes")
	for _, row := range r.Rows {
		dts := make([]string, len(row.DataTypes))
		for i, d := range row.DataTypes {
			dts[i] = d.String()
		}
		t.AddRow(row.CPUID, string(row.Arch),
			fmt.Sprintf("%.2f", row.AgeYears),
			fmt.Sprintf("%d", row.PCores),
			fmt.Sprintf("%d", row.MeasuredErrs),
			fmt.Sprintf("%d", row.PaperErrs),
			row.Class.String(),
			strings.Join(row.Workloads, "; "),
			strings.Join(dts, "; "))
	}
	return t.String()
}
