package experiments

import (
	"fmt"
	"math"
	"time"

	"farron/internal/cpu"
	"farron/internal/defect"
	"farron/internal/engine"
	"farron/internal/fleet"
	"farron/internal/report"
	"farron/internal/stats"
	"farron/internal/testkit"
	"farron/internal/thermal"
)

// SweepPoint is one temperature measurement of a setting.
type SweepPoint struct {
	TempC float64
	// FreqPerMin is the measured occurrence frequency.
	FreqPerMin float64
	// Records and Minutes give the raw evidence.
	Records int
	Minutes float64
}

// Fig8Setting is one Figure 8 panel: a (processor, core, testcase) setting
// swept across temperatures.
type Fig8Setting struct {
	ProcessorID string
	Core        int
	TestcaseID  string
	Points      []SweepPoint
	// Fit is the least-squares fit of log10(freq) against temperature;
	// the paper's panels have Pearson r of 0.79, 0.92 and 0.89.
	Fit stats.LinFit
}

// Fig8Result is Figure 8: occurrence frequency vs temperature.
type Fig8Result struct {
	Settings []Fig8Setting
}

// fig8Procs are the processors of Figure 8's three panels, with the
// defective core the paper measured.
func fig8Procs() []struct {
	id   string
	core int
} {
	return []struct {
		id   string
		core int
	}{{"MIX1", 0}, {"MIX2", 1}, {"FPU2", 8}}
}

// Fig8 sweeps each panel's setting across an 11-degree range starting just
// above the setting's observed minimum triggering temperature, measuring
// occurrence frequency at each pinned temperature via the stress-preheat
// methodology of Section 5.
func Fig8(ctx *Context) (*Fig8Result, error) {
	procs := fig8Procs()
	// Each panel owns its thermal package and a per-CPUID substream, so the
	// three sweeps are independent shards.
	settings, err := engine.MapErr(ctx.Pool(), len(procs), func(i int) (*Fig8Setting, error) {
		pc := procs[i]
		p := ctx.Profile(pc.id)
		if p == nil {
			return nil, fmt.Errorf("experiments: profile %s missing", pc.id)
		}
		d := p.Defects[0]
		tc := pickSweepTestcase(ctx, p, d, pc.core)
		if tc == nil {
			return nil, fmt.Errorf("experiments: no sweepable testcase for %s", pc.id)
		}
		return sweepSetting(ctx, p, d, tc, pc.core)
	})
	if err != nil {
		return nil, err
	}
	out := &Fig8Result{}
	for _, s := range settings {
		out.Settings = append(out.Settings, *s)
	}
	return out, nil
}

// pickSweepTestcase chooses the failing testcase whose observed threshold
// is most measurable (a mid-stress setting: not so hot it is unreachable,
// not so frequent the curve saturates instantly).
func pickSweepTestcase(ctx *Context, p *defect.Profile, d *defect.Defect, core int) *testkit.Testcase {
	var best *testkit.Testcase
	bestScore := math.Inf(1)
	for _, tc := range ctx.Failing(p) {
		if !testkit.DetectableBy(tc, d) {
			continue
		}
		stress := testkit.SettingStress(tc, d)
		tmin := d.ObservedMinTemp(core, stress)
		if math.IsInf(tmin, 0) || tmin > 80 {
			continue
		}
		// Prefer thresholds in the 45-70 band (measurable on a live
		// package) with moderate starting rates.
		score := math.Abs(tmin - 55)
		if score < bestScore {
			bestScore = score
			best = tc
		}
	}
	return best
}

// sweepSetting measures occurrence frequency at pinned temperatures.
func sweepSetting(ctx *Context, p *defect.Profile, d *defect.Defect, tc *testkit.Testcase, core int) (*Fig8Setting, error) {
	proc := cpu.FromProfile(p)
	pkg := thermal.New(thermal.DefaultConfig(), proc.PhysCores, ctx.Rng.Derive("fig8", p.CPUID))
	runner := testkit.NewRunner(ctx.Suite, proc, pkg)
	stress := testkit.SettingStress(tc, d)
	t0 := d.ObservedMinTemp(core, stress) + 1
	set := &Fig8Setting{ProcessorID: p.CPUID, Core: core, TestcaseID: tc.ID}

	var xs, ys []float64
	for i := 0; i <= 10; i++ {
		temp := t0 + float64(i)
		expected := d.RatePerMin(core, temp, stress)
		// Enough test time for ≥ ~25 expected events, bounded.
		dur := 25 * time.Minute
		if expected > 0 {
			dur = time.Duration(25 / expected * float64(time.Minute))
		}
		if dur < 5*time.Minute {
			dur = 5 * time.Minute
		}
		if dur > 8*time.Hour {
			dur = 8 * time.Hour
		}
		res := runner.Run(tc, testkit.RunOpts{
			Core: core, Duration: dur, FixedTempC: &temp,
		})
		minutes := dur.Minutes()
		freq := float64(len(res.Records)) / minutes
		set.Points = append(set.Points, SweepPoint{
			TempC: temp, FreqPerMin: freq,
			Records: len(res.Records), Minutes: minutes,
		})
		if freq > 0 {
			xs = append(xs, temp)
			ys = append(ys, math.Log10(freq))
		}
	}
	if len(xs) >= 3 {
		fit, err := stats.FitLine(xs, ys)
		if err != nil {
			return nil, err
		}
		set.Fit = fit
	}
	return set, nil
}

// Render draws the Figure 8 panels.
func (r *Fig8Result) Render() string {
	var out string
	for _, s := range r.Settings {
		var xs, ys []float64
		for _, pt := range s.Points {
			if pt.FreqPerMin > 0 {
				xs = append(xs, pt.TempC)
				ys = append(ys, math.Log10(pt.FreqPerMin))
			}
		}
		out += report.Scatter(
			fmt.Sprintf("Figure 8 — %s pcore%d %s: log10(freq/min) vs temp, r=%.4f",
				s.ProcessorID, s.Core, s.TestcaseID, s.Fit.R),
			xs, ys, 12, 50)
	}
	return out
}

// Fig9Point is one setting's (minimum triggering temperature, frequency).
type Fig9Point struct {
	ProcessorID string
	TestcaseID  string
	Core        int
	MinTempC    float64
	FreqPerMin  float64
}

// Fig9Result is Figure 9: frequency at the minimum triggering temperature
// across settings (paper fit: Pearson r = −0.8272).
type Fig9Result struct {
	Points   []Fig9Point
	PearsonR float64
	PaperR   float64
}

// Fig9 enumerates study settings' observed minimum triggering temperatures
// and the frequency there. Like the paper's measurement, it covers the
// settings that reproduce within practical test time — each defect's
// higher-stress settings; settings orders of magnitude below a defect's
// strongest never accumulate enough records to be characterized.
func Fig9(ctx *Context) (*Fig9Result, error) {
	out := &Fig9Result{PaperR: -0.8272}
	// Profiles are independent analytic shards; merge in study order.
	perProfile := engine.MapPlain(ctx.Pool(), len(ctx.Study), func(i int) []Fig9Point {
		p := ctx.Study[i]
		var pts []Fig9Point
		for _, d := range p.Defects {
			core := bestCoreOf(d, p.TotalPCores)
			failing := ctx.Failing(p)
			maxStress := 0.0
			for _, tc := range failing {
				if !testkit.DetectableBy(tc, d) {
					continue
				}
				if s := testkit.SettingStress(tc, d); s > maxStress {
					maxStress = s
				}
			}
			for _, tc := range failing {
				if !testkit.DetectableBy(tc, d) {
					continue
				}
				stress := testkit.SettingStress(tc, d)
				if stress < maxStress/20 {
					continue // does not reproduce in practical time
				}
				tmin := d.ObservedMinTemp(core, stress)
				if math.IsInf(tmin, 0) || tmin > 78 {
					continue // unobservable on a live package
				}
				freq := d.RatePerMin(core, tmin, stress)
				if freq <= 0 {
					continue
				}
				pts = append(pts, Fig9Point{
					ProcessorID: p.CPUID, TestcaseID: tc.ID, Core: core,
					MinTempC: tmin, FreqPerMin: freq,
				})
			}
		}
		return pts
	})
	var xs, ys []float64
	for _, pts := range perProfile {
		for _, pt := range pts {
			out.Points = append(out.Points, pt)
			xs = append(xs, pt.MinTempC)
			ys = append(ys, math.Log10(pt.FreqPerMin))
		}
	}
	r, err := stats.Pearson(xs, ys)
	if err != nil {
		return nil, err
	}
	out.PearsonR = r
	return out, nil
}

// Render draws the Figure 9 scatter.
func (r *Fig9Result) Render() string {
	var xs, ys []float64
	for _, p := range r.Points {
		xs = append(xs, p.MinTempC)
		ys = append(ys, math.Log10(p.FreqPerMin))
	}
	return report.Scatter(
		fmt.Sprintf("Figure 9 — log10(freq/min) vs min triggering temp, %d settings, r=%.4f (paper %.4f)",
			len(r.Points), r.PearsonR, r.PaperR),
		xs, ys, 14, 56)
}

func bestCoreOf(d *defect.Defect, total int) int {
	best, bestM := 0, 0.0
	for _, c := range d.DefectiveCores(total) {
		if m := d.CoreMultiplier(c); m > bestM {
			best, bestM = c, m
		}
	}
	return best
}

// Obs9Result quantifies Observation 9: the distribution of per-setting
// occurrence frequencies (51.2% of settings above once per minute).
type Obs9Result struct {
	// Freqs are per-setting frequencies at the reference burn-in test
	// temperature.
	Freqs []float64
	// ShareAboveOncePerMin is the paper's 51.2% headline.
	ShareAboveOncePerMin float64
	// Min and Max bound the observed range (paper: 0.01 to hundreds).
	Min, Max float64
	RefTempC float64
}

// Obs9 evaluates setting frequencies at the testing temperature.
func Obs9(ctx *Context, refTempC float64) *Obs9Result {
	out := &Obs9Result{RefTempC: refTempC, Min: math.Inf(1)}
	above := 0
	// Per-profile analytic shards, merged in study order.
	perProfile := engine.MapPlain(ctx.Pool(), len(ctx.Study), func(i int) []float64 {
		p := ctx.Study[i]
		var freqs []float64
		for _, d := range p.Defects {
			core := bestCoreOf(d, p.TotalPCores)
			for _, tc := range ctx.Failing(p) {
				if !testkit.DetectableBy(tc, d) {
					continue
				}
				stress := testkit.SettingStress(tc, d)
				f := d.RatePerMin(core, refTempC, stress)
				if f < defect.MeasurableFreqPerMin {
					continue // not a measurable setting
				}
				freqs = append(freqs, f)
			}
		}
		return freqs
	})
	for _, freqs := range perProfile {
		for _, f := range freqs {
			out.Freqs = append(out.Freqs, f)
			if f > 1 {
				above++
			}
			out.Min = math.Min(out.Min, f)
			out.Max = math.Max(out.Max, f)
		}
	}
	if len(out.Freqs) > 0 {
		out.ShareAboveOncePerMin = float64(above) / float64(len(out.Freqs))
	}
	return out
}

// Render summarizes Observation 9.
func (r *Obs9Result) Render() string {
	return fmt.Sprintf(
		"Observation 9 — %d settings at %.0f degC: freq range [%.3g, %.3g]/min; %.1f%% above 1/min (paper 51.2%%)\n",
		len(r.Freqs), r.RefTempC, r.Min, r.Max, r.ShareAboveOncePerMin*100)
}

// Obs11Result quantifies Observation 11: ineffective testcases in a
// production environment with tens of thousands of CPUs (paper: 560/633
// detected nothing).
type Obs11Result struct {
	Population       int
	FaultyCount      int
	Effective        int
	Ineffective      int
	PaperIneffective int
}

// Obs11 screens a sub-fleet under the given screening strategy ("" means
// the default) and counts testcases that never fired.
func Obs11(ctx *Context, population int, strategy string) (*Obs11Result, error) {
	cfg := fleet.DefaultConfig()
	cfg.Processors = population
	cfg.Seed = ctx.Seed
	cfg.Workers = ctx.Workers
	cfg.Strategy = strategy
	sim, err := fleet.NewSimulator(cfg, ctx.Suite)
	if err != nil {
		return nil, err
	}
	res := sim.Run()
	// Detailed logs: replay each detected faulty processor's failing set.
	// The replays are read-only suite scans, one shard per faulty CPU.
	perCPU := engine.MapPlain(ctx.Pool(), len(res.FaultyProfiles), func(i int) []*testkit.Testcase {
		return ctx.Failing(res.FaultyProfiles[i])
	})
	effective := map[string]bool{}
	for _, failing := range perCPU {
		for _, tc := range failing {
			effective[tc.ID] = true
		}
	}
	return &Obs11Result{
		Population:       population,
		FaultyCount:      len(res.FaultyProfiles),
		Effective:        len(effective),
		Ineffective:      testkit.SuiteSize - len(effective),
		PaperIneffective: 560,
	}, nil
}

// Render summarizes Observation 11.
func (r *Obs11Result) Render() string {
	return fmt.Sprintf(
		"Observation 11 — %d CPUs, %d faulty: %d/633 testcases effective, %d ineffective (paper %d)\n",
		r.Population, r.FaultyCount, r.Effective, r.Ineffective, r.PaperIneffective)
}
