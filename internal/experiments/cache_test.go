package experiments

import (
	"testing"

	"farron/internal/engine"
	"farron/internal/engine/cache"
)

// TestCacheColdWarmByteEquality is the result cache's acceptance test over
// the real evaluation: the full registry at QuickScale runs twice into a
// temp cache directory, and the warm run must be byte-identical to the
// cold run with every registry entry served from cache. This is the
// committed form of the ISSUE's warm-run contract — caching may change
// wall time, never bytes.
func TestCacheColdWarmByteEquality(t *testing.T) {
	rc, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	exps := Registry()
	sc := engine.QuickScale()

	run := func() ([]engine.Section, *engine.RunReport) {
		ctx := NewContext(20260805)
		sections, rep, err := engine.NewRunnerCtx(ctx, engine.RunOptions{Cache: rc}).Run(exps, sc)
		if err != nil {
			t.Fatal(err)
		}
		return sections, rep
	}

	cold, coldRep := run()
	if coldRep.CacheHits != 0 || coldRep.CacheMisses != len(exps) {
		t.Errorf("cold run: hits=%d misses=%d, want 0/%d", coldRep.CacheHits, coldRep.CacheMisses, len(exps))
	}

	warm, warmRep := run()
	if warmRep.CacheHits != len(exps) || warmRep.CacheMisses != 0 {
		t.Errorf("warm run: hits=%d misses=%d, want %d/0", warmRep.CacheHits, warmRep.CacheMisses, len(exps))
	}
	if len(warm) != len(cold) {
		t.Fatalf("warm run rendered %d sections, cold %d", len(warm), len(cold))
	}
	for i := range cold {
		if cold[i] != warm[i] {
			t.Errorf("%s: warm body differs from cold body", cold[i].Name)
		}
	}
	for _, et := range warmRep.Experiments {
		if !et.CacheHit {
			t.Errorf("%s: not served from cache on the warm run", et.Name)
		}
		if et.Name == "" {
			t.Error("warm run left an unnamed timing slot")
		}
	}
}
