// The strategy sweep: the Table 4 / Figure 11 cost-vs-detection question
// re-asked across every pluggable screening strategy instead of just
// Farron vs baseline. Each strategy screens the same sub-fleet — identical
// generated defect population, independent detection randomness — and
// reports what it caught, what escaped, and what the screening cost in
// machine time. One registry entry per strategy (plus a header entry), so
// each strategy's result is cached under its own content address and a
// rerun that adds a strategy recomputes only the new row.

package experiments

import (
	"fmt"

	"farron/internal/engine"
	"farron/internal/fleet"
	"farron/internal/model"
)

// sweepCols lays out the sweep table; header and rows render in separate
// registry entries, so both must share one format. Neither ends in a
// newline: the section writer terminates every body, so a trailing newline
// here would open a blank line between the table's rows.
const (
	sweepHeadFmt = "%-9s %9s %7s %8s %8s %8s %8s %8s %12s %10s %12s"
	sweepRowFmt  = "%-9s %9d %7d %8d %8d %8d %8d %7.2f%% %12.1f %9.4f%% %11.3fx"
)

// SweepHeader is the sweep's title entry: the strategy rows render beneath
// it in registry order, forming one aligned table in the group CLIs.
type SweepHeader struct {
	Population int
}

// Render draws the sweep title and column header.
func (r *SweepHeader) Render() string {
	return fmt.Sprintf("Strategy sweep — cost vs detection across screening strategies (%d CPUs)\n", r.Population) +
		fmt.Sprintf(sweepHeadFmt,
			"strategy", "pop", "faulty", "det", "pre", "reg", "esc", "rate",
			"min/round", "overhead", "vs-baseline")
}

// SweepResult is one strategy's sweep row.
type SweepResult struct {
	Strategy   string
	Population int
	Faulty     int
	// Detected splits into pre-production and regular-round catches;
	// Escaped is what nothing caught.
	Detected        int
	PreDetected     int
	RegularDetected int
	Escaped         int
	// RoundCostMinutes is the strategy's dedicated test time per CPU per
	// regular round; OverheadFraction is the Table 4 metric (round cost
	// over the regular period, plus any always-on inline overhead);
	// RelativeCost is that overhead against the toolchain baseline's.
	RoundCostMinutes float64
	OverheadFraction float64
	RelativeCost     float64
}

// StrategySweep screens a sub-fleet under one strategy and packages the
// cost-vs-detection row. All strategies screen the same generated defect
// population (profiles derive from serials, not from the strategy), so
// rows differ only in what the strategy caught and what it cost.
func StrategySweep(ctx *Context, population int, strategy string) (*SweepResult, error) {
	cfg := fleet.DefaultConfig()
	cfg.Processors = population
	cfg.Seed = ctx.Seed
	cfg.Workers = ctx.Workers
	cfg.Strategy = strategy
	sim, err := fleet.NewSimulator(cfg, ctx.Suite)
	if err != nil {
		return nil, err
	}
	res := sim.Run()
	out := &SweepResult{
		Strategy:   res.Strategy,
		Population: res.Population,
		Faulty:     res.FaultyTotal,
		Detected:   res.DetectedTotal(),
		Escaped:    res.Escaped,
	}
	for _, s := range model.AllStages() {
		if s.PreProduction() {
			out.PreDetected += res.DetectedByStage[s]
		}
	}
	out.RegularDetected = out.Detected - out.PreDetected

	cost := sim.Screener().Cost()
	out.RoundCostMinutes = cost.RoundMinutes
	out.OverheadFraction = cost.OverheadFraction(cfg.RegularPeriodMin)
	// The cost yardstick: the full equal-allocation kit round (Table 4's
	// published 0.488% baseline overhead).
	baseline := fleet.CostModel{RoundMinutes: sim.KitRoundMinutes()}.OverheadFraction(cfg.RegularPeriodMin)
	if baseline > 0 {
		out.RelativeCost = out.OverheadFraction / baseline
	}
	return out, nil
}

// Render draws the strategy's table row.
func (r *SweepResult) Render() string {
	rate := 0.0
	if r.Faulty > 0 {
		rate = float64(r.Detected) / float64(r.Faulty)
	}
	return fmt.Sprintf(sweepRowFmt,
		r.Strategy, r.Population, r.Faulty, r.Detected, r.PreDetected,
		r.RegularDetected, r.Escaped, rate*100,
		r.RoundCostMinutes, r.OverheadFraction*100, r.RelativeCost)
}

// sweepEntries builds the sweep's registry entries: the header, then one
// entry per strategy named under engine.SweepNamePrefix — the naming
// contract the bench report's per-strategy cost rows parse.
func sweepEntries(groups []string) []engine.Experiment {
	entries := []engine.Experiment{{
		Name: "Strategy sweep", Desc: "cost vs detection across screening strategies", Groups: groups,
		Run: func(ctx *engine.Ctx, sc engine.Scale) (engine.Result, error) {
			return &SweepHeader{Population: sc.SubPopulation}, nil
		},
	}}
	for _, strategy := range fleet.Strategies() {
		strategy := strategy
		entries = append(entries, engine.Experiment{
			Name:   engine.SweepNamePrefix + strategy + "]",
			Desc:   "strategy sweep row: " + strategy,
			Groups: groups,
			Run: func(ctx *engine.Ctx, sc engine.Scale) (engine.Result, error) {
				return StrategySweep(ctx, sc.SubPopulation, strategy)
			},
		})
	}
	return entries
}
