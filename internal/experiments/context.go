// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver returns a structured result carrying both
// the measured values and the paper's reference values, plus a Render
// method producing the terminal figure. The engine registry (registry.go)
// exposes the drivers to the CLIs; drivers take all randomness from
// substreams of ctx.Rng so the registry can run them concurrently.
package experiments

import "farron/internal/engine"

// Context is the shared simulation state every experiment runs against. It
// is the engine's frozen context: immutable after construction, indexed by
// CPUID, safe to share across shards (see internal/engine).
type Context = engine.Ctx

// NewContext builds the shared state for a seed.
func NewContext(seed uint64) *Context { return engine.NewCtx(seed) }
