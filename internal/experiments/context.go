// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver returns a structured result carrying both
// the measured values and the paper's reference values, plus a Render
// method producing the terminal figure. The bench harness at the repository
// root wraps these drivers one-to-one.
package experiments

import (
	"farron/internal/defect"
	"farron/internal/simrand"
	"farron/internal/testkit"
)

// Context carries the shared simulation state every experiment runs
// against: the deterministic seed, the 633-testcase suite, and the
// calibrated faulty-processor sets.
type Context struct {
	Seed uint64
	Rng  *simrand.Source
	// Suite is the toolchain testcase suite.
	Suite *testkit.Suite
	// Library is the ten named Table 3 processors, calibrated.
	Library []*defect.Profile
	// Study is the full 27-processor study set, calibrated.
	Study []*defect.Profile
}

// NewContext builds the shared state for a seed. Calibration aligns every
// profile's failing-testcase count with its Table 3 target.
func NewContext(seed uint64) *Context {
	rng := simrand.New(seed)
	suite := testkit.NewSuite(rng)
	ctx := &Context{Seed: seed, Rng: rng, Suite: suite}
	ctx.Study = defect.StudySet(rng)
	for _, p := range ctx.Study {
		suite.CalibrateProfile(p)
	}
	// The named library is the leading slice of the study set.
	for _, p := range ctx.Study {
		switch p.CPUID {
		case "MIX1", "MIX2", "SIMD1", "SIMD2", "FPU1", "FPU2", "FPU3", "FPU4", "CNST1", "CNST2":
			ctx.Library = append(ctx.Library, p)
		}
	}
	return ctx
}

// Profile returns a study profile by CPUID, or nil.
func (c *Context) Profile(id string) *defect.Profile {
	for _, p := range c.Study {
		if p.CPUID == id {
			return p
		}
	}
	return nil
}

// KnownErrs returns the calibrated failing-testcase IDs of a processor.
func (c *Context) KnownErrs(id string) []string {
	p := c.Profile(id)
	if p == nil {
		return nil
	}
	var out []string
	for _, tc := range c.Suite.FailingTestcases(p) {
		out = append(out, tc.ID)
	}
	return out
}
