package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"farron/internal/model"
)

// sharedCtx is built once: context construction calibrates 27 profiles.
var sharedCtx = NewContext(20250705)

func TestContextComposition(t *testing.T) {
	if len(sharedCtx.Library) != 10 {
		t.Errorf("library size = %d", len(sharedCtx.Library))
	}
	if len(sharedCtx.Study) != 27 {
		t.Errorf("study size = %d", len(sharedCtx.Study))
	}
	if sharedCtx.Profile("MIX1") == nil || sharedCtx.Profile("nope") != nil {
		t.Error("Profile lookup broken")
	}
	if len(sharedCtx.KnownErrs("FPU1")) < 3 {
		t.Errorf("FPU1 known errors = %v", sharedCtx.KnownErrs("FPU1"))
	}
}

func TestTable1Shape(t *testing.T) {
	res, err := Table1(sharedCtx, 300_000, "")
	if err != nil {
		t.Fatal(err)
	}
	// Re-install must dominate; pre-production share high.
	if res.Measured[model.StageReinstall] <= res.Measured[model.StageFactory] {
		t.Errorf("re-install %v not above factory %v",
			res.Measured[model.StageReinstall], res.Measured[model.StageFactory])
	}
	if res.Measured[model.StageReinstall] <= res.Measured[model.StageDatacenter] {
		t.Error("re-install not above datacenter")
	}
	if res.PreProductionShare < 0.75 {
		t.Errorf("pre-production share = %v (paper 0.90)", res.PreProductionShare)
	}
	if res.Total < 2.2e-4 || res.Total > 5e-4 {
		t.Errorf("total rate = %v, want ~3.61e-4", res.Total)
	}
	if !strings.Contains(res.Render(), "re-install") {
		t.Error("render missing stages")
	}
}

func TestTable2Shape(t *testing.T) {
	res, err := Table2(sharedCtx, 400_000, "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Measured["M8"] <= res.Measured["M4"] {
		t.Errorf("M8 %v not above M4 %v", res.Measured["M8"], res.Measured["M4"])
	}
	if res.Measured["M8"] <= res.Measured["M2"] {
		t.Error("M8 not above M2")
	}
	// Every arch must have been populated.
	for _, a := range model.AllMicroArchs() {
		if _, ok := res.Measured[a]; !ok {
			t.Errorf("missing arch %s", a)
		}
	}
	if !strings.Contains(res.Render(), "M8") {
		t.Error("render missing archs")
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	res := Table3(sharedCtx)
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.MeasuredErrs < row.PaperErrs || row.MeasuredErrs > row.PaperErrs+2 {
			t.Errorf("%s: measured #err %d vs paper %d", row.CPUID, row.MeasuredErrs, row.PaperErrs)
		}
	}
	out := res.Render()
	for _, id := range []string{"MIX1", "CNST2", "matrix calculation"} {
		if !strings.Contains(out, id) {
			t.Errorf("render missing %q", id)
		}
	}
}

func TestFig2Proportions(t *testing.T) {
	res := Fig2(sharedCtx)
	sum := 0.0
	for _, f := range model.AllFeatures() {
		p := res.Proportions[f]
		if p < 0 || p > 1 {
			t.Errorf("%v proportion = %v", f, p)
		}
		if p == 0 {
			t.Errorf("%v has zero faulty processors; every feature appears in the paper", f)
		}
		sum += p
	}
	// Overlapping features: sum exceeds 1 (Section 4.1).
	if sum <= 1 {
		t.Errorf("feature proportions sum %v, want > 1 (shared components)", sum)
	}
}

func TestFig3FloatsDominate(t *testing.T) {
	res := Fig3(sharedCtx)
	f64 := res.Proportions[model.DTFloat64]
	for _, dt := range []model.DataType{model.DTInt16, model.DTBit, model.DTBin8, model.DTBin64} {
		if res.Proportions[dt] >= f64 {
			t.Errorf("%v proportion %v >= f64 %v (Observation 6 violated)", dt, res.Proportions[dt], f64)
		}
	}
}

func TestFig4BitflipShape(t *testing.T) {
	res := Fig4(sharedCtx, 4000)
	for _, dt := range fig4Types() {
		st := res.Stats[dt]
		if st == nil || st.Records == 0 {
			t.Fatalf("%v: no records", dt)
		}
		bits := dt.Bits()
		// MSB region must be rare (Observation 7).
		msb, total := 0, 0
		for i := 0; i < bits; i++ {
			n := st.PosZeroToOne[i] + st.PosOneToZero[i]
			total += n
			if i >= bits*9/10 {
				msb += n
			}
		}
		if total == 0 {
			t.Fatalf("%v: no flips", dt)
		}
		if frac := float64(msb) / float64(total); frac > 0.05 {
			t.Errorf("%v: MSB flip share %v, want rare", dt, frac)
		}
		// Direction near 51% (Observation 7).
		if math.Abs(st.ZeroToOneShare-0.51) > 0.12 {
			t.Errorf("%v: 0->1 share %v", dt, st.ZeroToOneShare)
		}
	}
	// Precision losses: float64 overwhelmingly tiny; int32 often huge.
	f64q := res.LossQuantiles[model.DTFloat64]
	if f64q == nil || f64q["p999"] > 1e-3 {
		t.Errorf("f64 p999 loss = %v, paper: 99.9%% under 2e-4", f64q["p999"])
	}
	if f64q != nil && f64q["p50"] > 1e-6 {
		t.Errorf("f64 median loss = %v, want tiny", f64q["p50"])
	}
	i32q := res.LossQuantiles[model.DTInt32]
	if i32q == nil || i32q["p90"] < 0.5 {
		t.Errorf("i32 p90 loss = %v, paper: 40%% above 1.0", i32q["p90"])
	}
	if r := res.Render(); !strings.Contains(r, "f64") {
		t.Error("render missing datatypes")
	}
}

func TestFig5Uniformity(t *testing.T) {
	res := Fig5(sharedCtx, 4000)
	for _, dt := range fig5Types() {
		st := res.Stats[dt]
		if st == nil || st.Records == 0 {
			t.Fatalf("%v: no records", dt)
		}
		bits := dt.Bits()
		msb, total := 0, 0
		for i := 0; i < bits; i++ {
			n := st.PosZeroToOne[i] + st.PosOneToZero[i]
			total += n
			if i >= bits*3/4 {
				msb += n
			}
		}
		// For non-numerical data all positions are comparable
		// (Figure 5): the top quarter should hold roughly a quarter.
		frac := float64(msb) / float64(total)
		if frac < 0.10 || frac > 0.45 {
			t.Errorf("%v: top-quarter share %v, want ~0.25 (uniform)", dt, frac)
		}
	}
}

func TestFig6HeatmapShape(t *testing.T) {
	res := Fig6(sharedCtx, 400)
	if len(res.RowLabels) == 0 || len(res.ColLabels) != 5 {
		t.Fatalf("shape %dx%d", len(res.RowLabels), len(res.ColLabels))
	}
	var valid, high int
	for _, row := range res.Values {
		for _, v := range row {
			if math.IsNaN(v) {
				continue
			}
			valid++
			if v < 0 || v > 1 {
				t.Fatalf("proportion %v out of range", v)
			}
			if v > 0.5 {
				high++
			}
		}
	}
	if valid < 10 {
		t.Errorf("only %d valid settings", valid)
	}
	// Many settings show strong patterns (Figure 6's dark cells).
	if high == 0 {
		t.Error("no setting has pattern proportion > 0.5")
	}
	if !strings.Contains(res.Render(), "MIX1") {
		t.Error("render missing processors")
	}
}

func TestFig7MostlySingleBit(t *testing.T) {
	res := Fig7(sharedCtx, 600)
	multiBitTypes := 0
	for _, dt := range fig7Types() {
		p := res.Proportions[dt]
		sum := p[0] + p[1] + p[2]
		if sum == 0 {
			t.Errorf("%v: no pattern SDCs", dt)
			continue
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%v: proportions sum %v", dt, sum)
		}
		if p[0] < 0.6 {
			t.Errorf("%v: single-bit share %v, want dominant (paper 0.72-0.98)", dt, p[0])
		}
		if p[1]+p[2] > 0 {
			multiBitTypes++
		}
	}
	// Observation 8: a considerable number of SDCs flip 2+ bits — at
	// least some datatypes must show multi-bit patterns.
	if multiBitTypes < 2 {
		t.Errorf("multi-bit patterns in %d/5 datatypes, want >= 2", multiBitTypes)
	}
}

func TestFig8LogLinear(t *testing.T) {
	res, err := Fig8(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Settings) != 3 {
		t.Fatalf("%d settings", len(res.Settings))
	}
	for _, s := range res.Settings {
		if s.Fit.Slope <= 0 {
			t.Errorf("%s: slope %v, want positive (freq grows with temp)", s.ProcessorID, s.Fit.Slope)
		}
		if s.Fit.R < 0.75 {
			t.Errorf("%s: r = %v, paper panels are 0.79-0.92", s.ProcessorID, s.Fit.R)
		}
		if len(s.Points) != 11 {
			t.Errorf("%s: %d points", s.ProcessorID, len(s.Points))
		}
	}
	if !strings.Contains(res.Render(), "pcore") {
		t.Error("render missing settings")
	}
}

func TestFig9AntiCorrelation(t *testing.T) {
	res, err := Fig9(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 20 {
		t.Fatalf("only %d settings", len(res.Points))
	}
	if res.PearsonR > -0.5 {
		t.Errorf("r = %v, want strongly negative (paper %.4f)", res.PearsonR, res.PaperR)
	}
	// Range checks: paper spans ~40-75 degC and ~0.001-100 /min.
	minT, maxT := math.Inf(1), math.Inf(-1)
	for _, p := range res.Points {
		minT = math.Min(minT, p.MinTempC)
		maxT = math.Max(maxT, p.MinTempC)
	}
	if maxT-minT < 15 {
		t.Errorf("Tmin span [%v, %v] too narrow", minT, maxT)
	}
}

func TestObs9Reproducibility(t *testing.T) {
	res := Obs9(sharedCtx, 62)
	if len(res.Freqs) < 20 {
		t.Fatalf("%d settings", len(res.Freqs))
	}
	if res.ShareAboveOncePerMin < 0.25 || res.ShareAboveOncePerMin > 0.8 {
		t.Errorf("share above 1/min = %v (paper 0.512)", res.ShareAboveOncePerMin)
	}
	if res.Max/res.Min < 1e3 {
		t.Errorf("frequency range [%v, %v] too narrow (paper: 0.01 to hundreds)", res.Min, res.Max)
	}
}

func TestObs11Ineffective(t *testing.T) {
	res, err := Obs11(sharedCtx, 40_000, "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Effective == 0 {
		t.Fatal("no effective testcases")
	}
	if res.Ineffective < 500 {
		t.Errorf("ineffective = %d/633, paper 560", res.Ineffective)
	}
	if !strings.Contains(res.Render(), "633") {
		t.Error("render malformed")
	}
}

func TestFig11FarronWins(t *testing.T) {
	res := Fig11(sharedCtx)
	if len(res.Rows) != 6 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Farron < row.Baseline {
			t.Errorf("%s: Farron %.2f < baseline %.2f", row.CPUID, row.Farron, row.Baseline)
		}
		if row.Farron < 0.5 {
			t.Errorf("%s: Farron coverage %.2f too low", row.CPUID, row.Farron)
		}
	}
	f, b := res.MeanDurations()
	if f.Hours() > 3 {
		t.Errorf("Farron mean round %.2f h, paper 1.02 h", f.Hours())
	}
	if b.Hours() < 9 || b.Hours() > 12 {
		t.Errorf("baseline mean round %.2f h, paper 10.55 h", b.Hours())
	}
	if f*3 >= b {
		t.Errorf("Farron %.2fh not ≪ baseline %.2fh", f.Hours(), b.Hours())
	}
}

func TestTable4Overheads(t *testing.T) {
	res := Table4(sharedCtx, 24*time.Hour)
	if len(res.Rows) != 6 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	if math.Abs(res.BaselineOverhead-0.00488) > 0.0001 {
		t.Errorf("baseline overhead = %v", res.BaselineOverhead)
	}
	for _, row := range res.Rows {
		if row.Total >= res.BaselineOverhead {
			t.Errorf("%s: Farron total %.4f%% not below baseline %.4f%%",
				row.CPUID, row.Total*100, res.BaselineOverhead*100)
		}
		if row.TestOverhead <= 0 {
			t.Errorf("%s: zero test overhead", row.CPUID)
		}
		if row.ControlOverhead > 0.02 {
			t.Errorf("%s: control overhead %.4f%% too high", row.CPUID, row.ControlOverhead*100)
		}
	}
	if !strings.Contains(res.Render(), "baseline") {
		t.Error("render malformed")
	}
}
