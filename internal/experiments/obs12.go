package experiments

import (
	"fmt"
	"math"

	"farron/internal/ecc"
	"farron/internal/erasure"
	"farron/internal/inject"
	"farron/internal/model"
	"farron/internal/predict"
	"farron/internal/redundancy"
	"farron/internal/report"
	"farron/internal/simrand"
	"farron/internal/workload"
)

// Obs12Result quantifies Observation 12: how each existing fault-tolerance
// technique fares against the SDC characteristics measured in the study.
type Obs12Result struct {
	// ECC outcomes over study-set bitflip records packed into 64-bit
	// words (post-write corruption).
	ECCCorrected, ECCDetected, ECCMiscorrected float64
	// ECCPreEncodingBlind is the fraction of pre-encoding corruptions
	// ECC reported as clean (always ~1: the parity protects garbage).
	ECCPreEncodingBlind float64
	// ECPropagation is the fraction of reconstructions poisoned by one
	// silently corrupted surviving shard (always 1 when the shard is
	// used).
	ECPropagation float64
	// PredictRecall is the range-detector's recall on float64 SDCs with
	// a 5% tolerance (Observation 7 says it is poor).
	PredictRecall float64
	// RedundancyDetect is dual-execution's detection rate on
	// independent-replica corruption; RedundancyCost is its work factor.
	RedundancyDetect float64
	RedundancyCost   float64
	// RedundancySharedCoreEscape is the silent-escape rate when both
	// replicas share the defective core (deterministic patterns agree).
	RedundancySharedCoreEscape float64
	// ChecksumFalseAlarm is the false invalid-data report rate when the
	// checksum instruction itself is defective (the Section 2.2 flood).
	ChecksumFalseAlarm float64
	// Records is the evidence base size.
	Records int
}

// Obs12 runs every technique against corruption drawn from the study set's
// defect models.
func Obs12(ctx *Context, records int) *Obs12Result {
	out := &Obs12Result{}
	rng := ctx.Rng.Derive("obs12")

	// The five technique evaluations each own a named substream of the
	// obs12 stream and write disjoint result fields, so they run as
	// independent shards on the pool.
	techniques := []func(){
		func() {
			// --- ECC against study bitflip masks (64-bit words) -------
			var corrected, detected, miscorrected, total int
			erng := rng.Derive("ecc")
			masks := sampleMasks(ctx, model.DTBin64, records, erng)
			for _, mask := range masks {
				if mask == 0 {
					continue
				}
				data := erng.Uint64()
				_, res := ecc.Verify(data, mask)
				total++
				switch res {
				case ecc.Corrected:
					corrected++
				case ecc.Detected:
					detected++
				case ecc.Miscorrected:
					miscorrected++
				}
			}
			if total > 0 {
				out.ECCCorrected = float64(corrected) / float64(total)
				out.ECCDetected = float64(detected) / float64(total)
				out.ECCMiscorrected = float64(miscorrected) / float64(total)
			}
			out.Records = total

			// Pre-encoding corruption: ECC is blind by construction;
			// measure to confirm.
			blind := 0
			const preTrials = 500
			for i := 0; i < preTrials; i++ {
				_, res := ecc.VerifyPreEncoding(erng.Uint64(), 1<<uint(erng.Intn(64)))
				if res == ecc.Miscorrected {
					blind++
				}
			}
			out.ECCPreEncodingBlind = float64(blind) / preTrials
		},
		func() {
			// --- EC propagation ---------------------------------------
			out.ECPropagation = ecPropagationRate(rng.Derive("ec"), 200)
		},
		func() {
			// --- Prediction-based detection on float64 SDCs -----------
			out.PredictRecall = predictRecall(ctx, rng.Derive("predict"), records)
		},
		func() {
			// --- Redundancy -------------------------------------------
			var sIndep, sShared redundancy.Stats
			rrng := rng.Derive("redundancy")
			hookA := redundancy.RandomCorrupt(rrng.Derive("a"), 0.3, 1<<9)
			hookShared := redundancy.RandomCorrupt(rrng.Derive("s"), 1, 1<<9)
			detectedRuns, corruptedRuns := 0, 0
			for i := 0; i < 500; i++ {
				in := rrng.Uint64()
				_, ok := redundancy.DualExecute(redundancy.ChecksumWork, in,
					[2]workload.CorruptFn{hookA, nil}, &sIndep)
				if !ok {
					detectedRuns++
					corruptedRuns++
				}
				_, _ = redundancy.DualExecute(redundancy.ChecksumWork, in,
					[2]workload.CorruptFn{hookShared, hookShared}, &sShared)
			}
			if corruptedRuns+sIndep.SilentEscapes > 0 {
				out.RedundancyDetect = float64(detectedRuns) / float64(detectedRuns+sIndep.SilentEscapes)
			}
			out.RedundancyCost = sIndep.CostFactor()
			out.RedundancySharedCoreEscape = float64(sShared.SilentEscapes) / float64(sShared.Executions)
		},
		func() {
			// --- Checksum self-corruption (the Section 2.2 flood) -----
			crng := rng.Derive("crc")
			hook := func(dt model.DataType, lo uint64, hi uint16) (uint64, uint16, bool) {
				if dt == model.DTUint32 && crng.Bool(0.01) {
					return lo ^ 1<<7, hi, true
				}
				return lo, hi, false
			}
			rep := workload.ChecksumService(crng, 5000, 64, hook)
			out.ChecksumFalseAlarm = float64(rep.MismatchReports) / float64(rep.Requests)
		},
	}
	ctx.Pool().Run(len(techniques), func(i int) { techniques[i]() })

	return out
}

// sampleMasks regenerates flip masks the way collectRecords does, returning
// the raw 64-bit masks.
func sampleMasks(ctx *Context, dt model.DataType, n int, rng *simrand.Source) []uint64 {
	var sources []*struct {
		c    *inject.Corruptor
		prob float64
	}
	for _, p := range ctx.Study {
		for _, d := range p.Defects {
			if !d.AffectsDataType(dt) {
				continue
			}
			c := d.Corruptor(dt, ctx.Rng)
			for i, tc := range ctx.Failing(p) {
				if i >= 3 {
					break
				}
				sources = append(sources, &struct {
					c    *inject.Corruptor
					prob float64
				}{c, d.SettingPatternProb(tc.ID, ctx.Rng)})
			}
		}
	}
	if len(sources) == 0 {
		return nil
	}
	masks := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		s := sources[i%len(sources)]
		expLo, expHi := inject.RandomValue(rng, dt)
		actLo, _ := s.c.CorruptWithProb(rng, s.prob, expLo, expHi)
		masks = append(masks, expLo^actLo)
	}
	return masks
}

// ecPropagationRate measures how often a corrupted surviving shard poisons
// reconstruction.
func ecPropagationRate(rng *simrand.Source, trials int) float64 {
	code, err := erasure.New(6, 3)
	if err != nil {
		panic(err)
	}
	poisoned := 0
	for t := 0; t < trials; t++ {
		data := make([][]byte, code.K)
		for i := range data {
			data[i] = make([]byte, 32)
			for b := range data[i] {
				data[i][b] = byte(rng.Uint64())
			}
		}
		shards, err := code.Encode(data)
		if err != nil {
			panic(err)
		}
		// Lose a data shard, silently corrupt the parity shard that
		// reconstruction will read (the first surviving parity row —
		// the propagation hazard only needs the corrupt shard to
		// participate, which in production it eventually does).
		lost := rng.Intn(code.K)
		orig := append([]byte(nil), data[lost]...)
		shards[lost] = nil
		shards[code.K][rng.Intn(32)] ^= byte(1 << uint(rng.Intn(8)))
		got, err := code.Reconstruct(shards)
		if err != nil {
			panic(err)
		}
		if !bytesEqual(got[lost], orig) {
			poisoned++
		}
	}
	return float64(poisoned) / float64(trials)
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// predictRecall evaluates the range detector on a smooth series corrupted
// with study-set float64 flips.
func predictRecall(ctx *Context, rng *simrand.Source, n int) float64 {
	masks := sampleMasks(ctx, model.DTFloat64, n, rng)
	if len(masks) == 0 {
		return 0
	}
	series := make([]float64, n)
	corrupted := make([]bool, n)
	mi := 0
	for i := range series {
		x := float64(i) * 0.01
		v := 100 + 10*math.Sin(x) + 0.5*x
		if i > 10 && rng.Bool(0.1) && mi < len(masks) && masks[mi] != 0 {
			v = math.Float64frombits(math.Float64bits(v) ^ masks[mi])
			corrupted[i] = true
			mi++
		}
		series[i] = v
	}
	d := predict.NewRangeDetector(0.05)
	rep := predict.Evaluate(d, series, corrupted)
	return rep.Recall()
}

// Render draws the Observation 12 comparison table.
func (r *Obs12Result) Render() string {
	t := report.NewTable("Observation 12 — fault-tolerance techniques vs real CPU SDCs",
		"technique", "outcome against study SDCs")
	t.AddRow("ECC (SECDED)", fmt.Sprintf(
		"corrected %.0f%%, detected %.0f%%, silently mis-corrected %.1f%% (multi-bit patterns)",
		r.ECCCorrected*100, r.ECCDetected*100, r.ECCMiscorrected*100))
	t.AddRow("ECC, pre-parity corruption", fmt.Sprintf(
		"blind: %.0f%% of corruptions reported clean", r.ECCPreEncodingBlind*100))
	t.AddRow("Erasure coding", fmt.Sprintf(
		"%.0f%% of reconstructions poisoned by one corrupt shard", r.ECPropagation*100))
	t.AddRow("Range prediction (5%)", fmt.Sprintf(
		"recall %.1f%% on float64 SDCs (fraction-bit flips escape)", r.PredictRecall*100))
	t.AddRow("Dual execution", fmt.Sprintf(
		"detects %.0f%% (independent replicas), cost %.1fx; %.0f%% silent when replicas share the defective core",
		r.RedundancyDetect*100, r.RedundancyCost, r.RedundancySharedCoreEscape*100))
	t.AddRow("End-to-end checksum", fmt.Sprintf(
		"defective checksum instruction: %.2f%% false invalid-data reports", r.ChecksumFalseAlarm*100))
	return t.String()
}
