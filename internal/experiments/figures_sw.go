package experiments

import (
	"fmt"
	"math"
	"sort"

	"farron/internal/defect"
	"farron/internal/engine"
	"farron/internal/inject"
	"farron/internal/model"
	"farron/internal/report"
	"farron/internal/stats"
)

// Fig2Result is Figure 2: proportion of faulty processors per feature.
type Fig2Result struct {
	Proportions map[model.Feature]float64
	N           int
}

// Fig2 measures the per-feature proportions over the study set. The sum
// exceeds 1 because defects can span shared components of several features
// (e.g. MIX1's FPU+vector combination).
func Fig2(ctx *Context) *Fig2Result {
	out := &Fig2Result{Proportions: map[model.Feature]float64{}, N: len(ctx.Study)}
	for _, p := range ctx.Study {
		for _, f := range p.Features() {
			out.Proportions[f] += 1 / float64(out.N)
		}
	}
	return out
}

// Render draws the Figure 2 bar chart.
func (r *Fig2Result) Render() string {
	labels := make([]string, 0, model.NumFeatures)
	values := make([]float64, 0, model.NumFeatures)
	for _, f := range model.AllFeatures() {
		labels = append(labels, f.String())
		values = append(values, r.Proportions[f])
	}
	return report.Bars(
		fmt.Sprintf("Figure 2 — proportion of processors with a faulty feature (n=%d)", r.N),
		labels, values, 40)
}

// Fig3Result is Figure 3: proportion of faulty processors per affected
// operation datatype.
type Fig3Result struct {
	Proportions map[model.DataType]float64
	N           int
}

// Fig3 measures per-datatype proportions over the computation-defect study
// processors.
func Fig3(ctx *Context) *Fig3Result {
	out := &Fig3Result{Proportions: map[model.DataType]float64{}, N: len(ctx.Study)}
	for _, p := range ctx.Study {
		for _, dt := range p.DataTypes() {
			out.Proportions[dt] += 1 / float64(out.N)
		}
	}
	return out
}

// Render draws the Figure 3 bar chart.
func (r *Fig3Result) Render() string {
	var labels []string
	var values []float64
	for _, dt := range model.AllDataTypes() {
		labels = append(labels, dt.String())
		values = append(values, r.Proportions[dt])
	}
	return report.Bars(
		fmt.Sprintf("Figure 3 — proportion of processors per affected datatype (n=%d)", r.N),
		labels, values, 40)
}

// BitflipStats aggregates Figure 4/5 statistics for one datatype.
type BitflipStats struct {
	DataType model.DataType
	// PosZeroToOne and PosOneToZero count flips per bit position by
	// direction.
	PosZeroToOne, PosOneToZero []int
	// ZeroToOneShare is the overall 0→1 fraction (paper: 51.08%).
	ZeroToOneShare float64
	// Losses are the relative precision losses (numerical types only).
	Losses []float64
	// Records is the number of SDC records aggregated.
	Records int
}

// collectRecords synthesizes n SDC records for dt by driving the study
// set's corruptors the way the runner does, and aggregates flip statistics.
func collectRecords(ctx *Context, dt model.DataType, n int) *BitflipStats {
	bits := dt.Bits()
	st := &BitflipStats{
		DataType:     dt,
		PosZeroToOne: make([]int, bits),
		PosOneToZero: make([]int, bits),
	}
	// Corruptors of every study defect affecting dt, with representative
	// setting pattern probabilities.
	type src struct {
		c    *inject.Corruptor
		prob float64
	}
	var sources []src
	for _, p := range ctx.Study {
		for _, d := range p.Defects {
			if !d.AffectsDataType(dt) {
				continue
			}
			c := d.Corruptor(dt, ctx.Rng)
			for i, tc := range ctx.Failing(p) {
				if i >= 3 {
					break
				}
				sources = append(sources, src{c, d.SettingPatternProb(tc.ID, ctx.Rng)})
			}
		}
	}
	if len(sources) == 0 {
		return st
	}
	rng := ctx.Rng.Derive("fig45", dt.String())
	var z2o, total int
	for i := 0; i < n; i++ {
		s := sources[i%len(sources)]
		expLo, expHi := inject.RandomValue(rng, dt)
		actLo, actHi := s.c.CorruptWithProb(rng, s.prob, expLo, expHi)
		maskLo := expLo ^ actLo
		maskHi := expHi ^ actHi
		for pos := 0; pos < bits; pos++ {
			if !inject.BitAt(maskLo, maskHi, pos) {
				continue
			}
			total++
			if inject.BitAt(expLo, expHi, pos) {
				st.PosOneToZero[pos]++
			} else {
				st.PosZeroToOne[pos]++
				z2o++
			}
		}
		if dt.Numeric() {
			loss := inject.RelativeLoss(dt, expLo, actLo, expHi, actHi)
			if !math.IsNaN(loss) {
				st.Losses = append(st.Losses, loss)
			}
		}
		st.Records++
	}
	if total > 0 {
		st.ZeroToOneShare = float64(z2o) / float64(total)
	}
	return st
}

// Fig4Result is Figure 4: bitflip positions and precision-loss CDFs for
// numerical datatypes.
type Fig4Result struct {
	Stats map[model.DataType]*BitflipStats
	// LossQuantiles summarizes the paper's headline loss claims.
	LossQuantiles map[model.DataType]map[string]float64
}

// fig4Types are the datatypes of Figure 4.
func fig4Types() []model.DataType {
	return []model.DataType{model.DTInt32, model.DTFloat32, model.DTFloat64, model.DTFloat64x}
}

// Fig4 gathers per-position flip histograms and loss CDFs. The datatypes
// are independent shards: each collectRecords call derives its own
// per-datatype substream, so they run in parallel.
func Fig4(ctx *Context, recordsPerType int) *Fig4Result {
	out := &Fig4Result{
		Stats:         map[model.DataType]*BitflipStats{},
		LossQuantiles: map[model.DataType]map[string]float64{},
	}
	types := fig4Types()
	sts := engine.MapPlain(ctx.Pool(), len(types), func(i int) *BitflipStats {
		return collectRecords(ctx, types[i], recordsPerType)
	})
	for i, dt := range types {
		st := sts[i]
		out.Stats[dt] = st
		if len(st.Losses) > 0 {
			cdf := stats.NewCDF(st.Losses)
			out.LossQuantiles[dt] = map[string]float64{
				"p50":  cdf.Quantile(0.5),
				"p90":  cdf.Quantile(0.9),
				"p999": cdf.Quantile(0.999),
			}
		}
	}
	return out
}

// Render draws the Figure 4 histograms and CDFs.
func (r *Fig4Result) Render() string {
	var out string
	for _, dt := range fig4Types() {
		st := r.Stats[dt]
		if st == nil || st.Records == 0 {
			continue
		}
		out += renderFlipHistogram(fmt.Sprintf("Figure 4 — bitflips of %s (%d records)", dt, st.Records), st)
		if len(st.Losses) > 0 {
			logs := make([]float64, 0, len(st.Losses))
			for _, l := range st.Losses {
				if l > 0 && !math.IsInf(l, 0) {
					logs = append(logs, math.Log10(l))
				}
			}
			cdf := stats.NewCDF(logs)
			xs, ps := cdf.Points(12)
			out += report.CDFPlot(fmt.Sprintf("Figure 4 — precision losses of %s (log10)", dt), xs, ps, 40)
		}
		out += "\n"
	}
	return out
}

func renderFlipHistogram(title string, st *BitflipStats) string {
	bits := len(st.PosZeroToOne)
	// Bucket positions into 8 groups for terminal display.
	groups := 8
	labels := make([]string, groups)
	values := make([]float64, groups)
	total := 0
	for i := 0; i < bits; i++ {
		total += st.PosZeroToOne[i] + st.PosOneToZero[i]
	}
	for g := 0; g < groups; g++ {
		lo := g * bits / groups
		hi := (g+1)*bits/groups - 1
		labels[g] = fmt.Sprintf("bit %2d-%2d", lo, hi)
		sum := 0
		for i := lo; i <= hi; i++ {
			sum += st.PosZeroToOne[i] + st.PosOneToZero[i]
		}
		if total > 0 {
			values[g] = float64(sum) / float64(total)
		}
	}
	return report.Bars(title+fmt.Sprintf(" (0→1 share %.2f%%)", st.ZeroToOneShare*100), labels, values, 40)
}

// Fig5Result is Figure 5: bitflips of non-numerical datatypes (uniform
// positions).
type Fig5Result struct {
	Stats map[model.DataType]*BitflipStats
}

// fig5Types are the datatypes of Figure 5.
func fig5Types() []model.DataType {
	return []model.DataType{model.DTBin32, model.DTBin64}
}

// Fig5 gathers flip-position statistics for binary blobs, one parallel
// shard per datatype like Fig4.
func Fig5(ctx *Context, recordsPerType int) *Fig5Result {
	out := &Fig5Result{Stats: map[model.DataType]*BitflipStats{}}
	types := fig5Types()
	sts := engine.MapPlain(ctx.Pool(), len(types), func(i int) *BitflipStats {
		return collectRecords(ctx, types[i], recordsPerType)
	})
	for i, dt := range types {
		out.Stats[dt] = sts[i]
	}
	return out
}

// Render draws the Figure 5 histograms.
func (r *Fig5Result) Render() string {
	var out string
	for _, dt := range fig5Types() {
		st := r.Stats[dt]
		if st == nil || st.Records == 0 {
			continue
		}
		out += renderFlipHistogram(fmt.Sprintf("Figure 5 — bitflips of %s (%d records)", dt, st.Records), st)
	}
	return out
}

// Fig6Result is Figure 6: per-setting proportion of SDC records matching a
// bitflip pattern.
type Fig6Result struct {
	// RowLabels are testcase letters (A..Q); ColLabels are processors.
	RowLabels, ColLabels []string
	// Values[row][col] is the pattern proportion, NaN when the testcase
	// does not fail on that processor.
	Values [][]float64
}

// fig6Processors are the Figure 6 columns.
func fig6Processors() []string { return []string{"MIX1", "MIX2", "SIMD1", "FPU1", "FPU2"} }

// Fig6 measures pattern proportions per (testcase, processor) setting by
// generating recordsPerSetting records through each setting's corruptor.
func Fig6(ctx *Context, recordsPerSetting int) *Fig6Result {
	procs := fig6Processors()
	// Union of failing testcases across the five processors, capped at
	// 17 rows (A..Q).
	rowIDs := []string{}
	seen := map[string]bool{}
	for _, id := range procs {
		for _, tcID := range ctx.KnownErrs(id) {
			if !seen[tcID] {
				seen[tcID] = true
				rowIDs = append(rowIDs, tcID)
			}
		}
	}
	sort.Strings(rowIDs)
	if len(rowIDs) > 17 {
		rowIDs = rowIDs[:17]
	}
	out := &Fig6Result{ColLabels: procs}
	for i, tcID := range rowIDs {
		out.RowLabels = append(out.RowLabels, fmt.Sprintf("%c(%s)", 'A'+i, tcID))
	}
	// Each (testcase, processor) setting is an independent shard with its
	// own substream, so rows fill in parallel and the heatmap is identical
	// at any worker count.
	out.Values = engine.MapPlain(ctx.Pool(), len(rowIDs), func(i int) []float64 {
		tcID := rowIDs[i]
		row := make([]float64, len(procs))
		for j, procID := range procs {
			row[j] = math.NaN()
			p := ctx.Profile(procID)
			d := failingDefect(ctx, p, tcID)
			if d == nil || len(d.DataTypes) == 0 {
				continue
			}
			dt := commonType(ctx, tcID, d)
			if dt < 0 {
				continue
			}
			c := d.Corruptor(dt, ctx.Rng)
			prob := d.SettingPatternProb(tcID, ctx.Rng)
			rng := ctx.Rng.Derive("fig6", tcID, procID)
			match := 0
			for k := 0; k < recordsPerSetting; k++ {
				expLo, expHi := inject.RandomValue(rng, dt)
				actLo, actHi := c.CorruptWithProb(rng, prob, expLo, expHi)
				if matchesPattern(c, expLo^actLo, expHi^actHi) {
					match++
				}
			}
			row[j] = float64(match) / float64(recordsPerSetting)
		}
		return row
	})
	return out
}

// failingDefect returns the profile's defect detectable by testcase tcID,
// or nil.
func failingDefect(ctx *Context, p *defect.Profile, tcID string) *defect.Defect {
	tc := ctx.Suite.ByID(tcID)
	if tc == nil || p == nil {
		return nil
	}
	for _, d := range p.Defects {
		for id := range d.AffectedInstrs {
			if tc.UsesInstr(id) {
				return d
			}
		}
	}
	return nil
}

// commonType returns a datatype both the testcase checks and the defect
// corrupts, or -1.
func commonType(ctx *Context, tcID string, d *defect.Defect) model.DataType {
	tc := ctx.Suite.ByID(tcID)
	for _, dt := range tc.DataTypes {
		if d.AffectsDataType(dt) {
			return dt
		}
	}
	return -1
}

func matchesPattern(c *inject.Corruptor, maskLo uint64, maskHi uint16) bool {
	for _, m := range c.Patterns() {
		if m.Lo == maskLo && m.Hi == maskHi {
			return true
		}
	}
	return false
}

// Render draws the Figure 6 heatmap.
func (r *Fig6Result) Render() string {
	return report.Heatmap("Figure 6 — proportion of SDCs with bitflip patterns",
		r.RowLabels, r.ColLabels, r.Values)
}

// Fig7Result is Figure 7: distribution of flipped-bit counts among
// pattern-bearing SDCs.
type Fig7Result struct {
	// Proportions[dt][k] is the share of pattern SDCs with k flipped
	// bits (k in 1, 2, 3 where 3 means ">2").
	Proportions map[model.DataType][3]float64
}

// fig7Types are the datatypes of Figure 7.
func fig7Types() []model.DataType {
	return []model.DataType{
		model.DTFloat32, model.DTFloat64, model.DTFloat64x, model.DTInt32, model.DTBin8,
	}
}

// Fig7 measures flipped-bit multiplicity within each defect's fixed
// patterns, weighted by pattern selection probability.
func Fig7(ctx *Context, recordsPerType int) *Fig7Result {
	out := &Fig7Result{Proportions: map[model.DataType][3]float64{}}
	types := fig7Types()
	// One shard per datatype, each with its own substream.
	props := engine.MapPlain(ctx.Pool(), len(types), func(i int) [3]float64 {
		dt := types[i]
		rng := ctx.Rng.Derive("fig7", dt.String())
		counts := [3]int{}
		total := 0
		for _, p := range ctx.Study {
			for _, d := range p.Defects {
				if !d.AffectsDataType(dt) {
					continue
				}
				c := d.Corruptor(dt, ctx.Rng)
				// Sample pattern picks.
				for k := 0; k < recordsPerType; k++ {
					expLo, expHi := inject.RandomValue(rng, dt)
					actLo, actHi := c.CorruptWithProb(rng, 1, expLo, expHi)
					n := inject.PopCount(expLo^actLo, expHi^actHi)
					switch {
					case n == 1:
						counts[0]++
					case n == 2:
						counts[1]++
					default:
						counts[2]++
					}
					total++
				}
			}
		}
		if total == 0 {
			return [3]float64{}
		}
		return [3]float64{
			float64(counts[0]) / float64(total),
			float64(counts[1]) / float64(total),
			float64(counts[2]) / float64(total),
		}
	})
	for i, dt := range types {
		out.Proportions[dt] = props[i]
	}
	return out
}

// Render draws the Figure 7 grouped bars.
func (r *Fig7Result) Render() string {
	t := report.NewTable("Figure 7 — flipped-bit count among pattern SDCs",
		"datatype", "1 bit", "2 bits", ">2 bits")
	for _, dt := range fig7Types() {
		p := r.Proportions[dt]
		t.AddRow(dt.String(),
			fmt.Sprintf("%.2f", p[0]), fmt.Sprintf("%.2f", p[1]), fmt.Sprintf("%.2f", p[2]))
	}
	return t.String()
}
