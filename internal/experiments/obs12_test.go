package experiments

import (
	"strings"
	"testing"
)

func TestObs12TechniqueComparison(t *testing.T) {
	res := Obs12(sharedCtx, 2000)
	if res.Records < 1000 {
		t.Fatalf("evidence base too small: %d", res.Records)
	}
	// Most study SDCs are single-bit (Figure 7): ECC corrects the
	// majority.
	if res.ECCCorrected < 0.6 {
		t.Errorf("ECC corrected share = %.2f, want majority", res.ECCCorrected)
	}
	// But multi-bit patterns exist, and some defeat SECDED silently
	// (Observation 12's ECC critique) or at least only get detected.
	if res.ECCDetected+res.ECCMiscorrected == 0 {
		t.Error("no multi-bit outcomes at all")
	}
	// Pre-parity corruption is invisible to ECC — always.
	if res.ECCPreEncodingBlind < 0.999 {
		t.Errorf("pre-encoding blindness = %.3f, want 1.0", res.ECCPreEncodingBlind)
	}
	// EC propagates corruption into reconstructed data — always, when
	// the corrupt shard participates.
	if res.ECPropagation < 0.999 {
		t.Errorf("EC propagation = %.3f, want 1.0", res.ECPropagation)
	}
	// Observation 7: the range detector misses most float SDCs.
	if res.PredictRecall > 0.35 {
		t.Errorf("prediction recall = %.2f, want poor", res.PredictRecall)
	}
	// Redundancy works (and costs 2x) against independent replicas...
	if res.RedundancyDetect < 0.99 {
		t.Errorf("redundancy detect = %.2f", res.RedundancyDetect)
	}
	if res.RedundancyCost != 2 {
		t.Errorf("redundancy cost = %.1fx", res.RedundancyCost)
	}
	// ...but is silent when replicas share the deterministic defect.
	if res.RedundancySharedCoreEscape < 0.99 {
		t.Errorf("shared-core escape = %.2f, want ~1", res.RedundancySharedCoreEscape)
	}
	// The checksum flood: ~1% defective-instruction rate surfaces as
	// ~1% false alarms.
	if res.ChecksumFalseAlarm < 0.005 || res.ChecksumFalseAlarm > 0.02 {
		t.Errorf("checksum false alarms = %.4f", res.ChecksumFalseAlarm)
	}
	if !strings.Contains(res.Render(), "Erasure coding") {
		t.Error("render missing techniques")
	}
}

func TestAblationShape(t *testing.T) {
	res := Ablation(sharedCtx)
	if len(res.Rows) != 9 {
		t.Fatalf("%d rows, want 3 variants x 3 processors", len(res.Rows))
	}
	full := res.CoverageOf("full")
	noBurn := res.CoverageOf("no-burn-in")
	noPrio := res.CoverageOf("no-prioritization")
	if full < noBurn {
		t.Errorf("full %.2f below no-burn-in %.2f", full, noBurn)
	}
	if full < noPrio {
		t.Errorf("full %.2f below no-prioritization %.2f", full, noPrio)
	}
	if full < 0.5 {
		t.Errorf("full coverage = %.2f", full)
	}
	if !strings.Contains(res.Render(), "no-burn-in") {
		t.Error("render malformed")
	}
}
