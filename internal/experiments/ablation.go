package experiments

import (
	"fmt"

	"farron/internal/defect"
	"time"

	"farron/internal/core"
	"farron/internal/engine"
	"farron/internal/report"
	"farron/internal/testkit"
)

// AblationRow is one Farron variant's measurement on one processor.
type AblationRow struct {
	Variant  string
	CPUID    string
	Coverage float64
	Duration time.Duration
}

// AblationResult isolates the contribution of each Farron design choice
// (Section 7.1): testcase prioritization, the burn-in testing environment,
// and the equal-duration strawman at Farron's budget.
type AblationResult struct {
	Rows []AblationRow
}

// ablationProcessors keeps the ablation fast but representative: one
// multi-feature all-core defect, one pinpoint defect, one consistency
// defect.
func ablationProcessors() []string { return []string{"MIX1", "FPU2", "CNST1"} }

// Ablation measures one regular round per variant per processor. The three
// processors are independent shards (per-(id, salt) runner substreams),
// merged in processor order.
func Ablation(ctx *Context) *AblationResult {
	active := fleetActiveIDs(ctx)
	ids := ablationProcessors()
	perProc := engine.MapPlain(ctx.Pool(), len(ids), func(i int) []AblationRow {
		id := ids[i]
		known := ctx.KnownErrs(id)
		p := ctx.Profile(id)

		var rows []AblationRow
		record := func(variant string, rep *core.RoundReport) {
			rows = append(rows, AblationRow{
				Variant:  variant,
				CPUID:    id,
				Coverage: rep.Coverage(known),
				Duration: rep.Duration,
			})
		}

		rFull := newRunnerFor(ctx, id, "abl-full")
		far := core.New(core.DefaultConfig(), rFull, p.Features(), active)
		record("full", far.RegularRound())

		// Burn-in ablated: the same prioritized plan, but each testcase
		// visits cores one at a time with its duration split across
		// them — the package never reaches production temperatures.
		rCold := newRunnerFor(ctx, id, "abl-cold")
		record("no-burn-in", coldPrioritizedRound(rCold, p, active))

		rEq := newRunnerFor(ctx, id, "abl-eq")
		record("no-prioritization", equalDurationRound(rEq, core.DefaultConfig()))
		return rows
	})
	out := &AblationResult{}
	for _, rows := range perProc {
		out.Rows = append(out.Rows, rows...)
	}
	return out
}

// coldPrioritizedRound runs Farron's prioritized plan without the burn-in
// environment: each testcase's duration is split across cores tested one at
// a time, so the package stays near single-core temperatures (the
// pre-Farron testing style).
func coldPrioritizedRound(r *testkit.Runner, p *defect.Profile, active []string) *core.RoundReport {
	planner := core.NewPlanner(core.DefaultPlannerConfig(), r.Suite(), p.Features())
	for _, id := range active {
		planner.MarkActive(id)
	}
	rep := &core.RoundReport{
		DetectedTestcases: map[string]bool{},
		FailedCores:       map[int]bool{},
	}
	cores := r.Processor().ActiveCores()
	for _, alloc := range planner.Plan(1) {
		per := alloc.Duration / time.Duration(len(cores))
		if per <= 0 {
			per = time.Second
		}
		for _, c := range cores {
			absorbAblation(rep, r.Run(alloc.Testcase, testkit.RunOpts{Core: c, Duration: per}))
		}
	}
	return rep
}

// absorbAblation folds one run into an ablation round report, scanning the
// columnar core column when the compiled path provides it.
func absorbAblation(rep *core.RoundReport, res testkit.RunResult) {
	rep.Duration += res.Duration
	if res.MaxTempC > rep.MaxTempC {
		rep.MaxTempC = res.MaxTempC
	}
	if !res.Failed {
		return
	}
	rep.DetectedTestcases[res.TestcaseID] = true
	if cols := res.Columns; cols != nil {
		for _, c := range cols.Core {
			rep.FailedCores[c] = true
		}
		return
	}
	for _, rec := range res.Records {
		rep.FailedCores[rec.Core] = true
	}
}

// equalDurationRound spends roughly Farron's one-hour budget spread equally
// over all 633 testcases with burn-in — prioritization ablated, everything
// else kept.
func equalDurationRound(r *testkit.Runner, cfg core.Config) *core.RoundReport {
	rep := &core.RoundReport{
		DetectedTestcases: map[string]bool{},
		FailedCores:       map[int]bool{},
	}
	per := time.Hour / time.Duration(testkit.SuiteSize)
	cores := r.Processor().ActiveCores()
	for _, tc := range r.Suite().Testcases {
		absorbAblation(rep, r.RunParallel(tc, cores, testkit.RunOpts{
			Duration: per,
			BurnIn:   !cfg.DisableBurnIn,
		}))
	}
	return rep
}

// CoverageOf returns a variant's mean coverage across processors.
func (r *AblationResult) CoverageOf(variant string) float64 {
	var sum float64
	n := 0
	for _, row := range r.Rows {
		if row.Variant == variant {
			sum += row.Coverage
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Render draws the ablation table.
func (r *AblationResult) Render() string {
	t := report.NewTable("Ablation — contribution of Farron's design choices (one regular round)",
		"variant", "CPU", "coverage", "round")
	for _, row := range r.Rows {
		t.AddRow(row.Variant, row.CPUID,
			fmt.Sprintf("%.2f", row.Coverage),
			row.Duration.Round(time.Minute).String())
	}
	return t.String() + fmt.Sprintf(
		"mean coverage: full %.2f, no-burn-in %.2f, no-prioritization %.2f\n",
		r.CoverageOf("full"), r.CoverageOf("no-burn-in"), r.CoverageOf("no-prioritization"))
}
