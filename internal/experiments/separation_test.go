package experiments

import (
	"strings"
	"testing"

	"farron/internal/model"
)

func TestSeparationUtilizationEffect(t *testing.T) {
	res, err := Separation(sharedCtx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("%d points", len(res.Points))
	}
	// Frequency must rise with utilization at constant temperature
	// (Section 5's counter-intuitive finding, separated from heat).
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if last.FreqPerMin <= first.FreqPerMin {
		t.Errorf("freq at util %.2f (%v/min) not above util %.2f (%v/min)",
			last.MeanUtil, last.FreqPerMin, first.MeanUtil, first.FreqPerMin)
	}
	if res.UtilFreqCorrelation < 0.7 {
		t.Errorf("util/freq correlation = %v, want strong", res.UtilFreqCorrelation)
	}
	if !strings.Contains(res.Render(), "pinned") {
		t.Error("render malformed")
	}
}

func TestAttributionFindsSuspects(t *testing.T) {
	res := Attribution(sharedCtx)
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !row.Hit {
			t.Errorf("%s: attribution missed all true defective instructions (ranked %v, truth %v)",
				row.ProcessorID, row.Ranked, row.TrueDefective)
		}
	}
	// FPU1's arctangent variant is the canonical Section 4.1 result.
	fpu1 := res.Rows[0]
	suspect := model.InstrID{Class: model.InstrFPTrig, Variant: 17}
	found := false
	for _, s := range fpu1.Ranked {
		if s.ID == suspect {
			found = true
		}
	}
	if !found {
		t.Error("FPU1 attribution did not surface the arctangent suspect")
	}
	// Observation 10: failing testcases use the instruction far more
	// heavily than passing ones that also touch it.
	if fpu1.FailingUsage > 0 && fpu1.FailingUsage/(fpu1.PassingUsage+1) < 10 {
		t.Errorf("usage ratio = %.1f, want orders of magnitude",
			fpu1.FailingUsage/(fpu1.PassingUsage+1))
	}
	if !strings.Contains(res.Render(), "FPU1") {
		t.Error("render malformed")
	}
}
