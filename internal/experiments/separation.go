package experiments

import (
	"fmt"
	"math"
	"time"

	"farron/internal/engine"
	"farron/internal/model"
	"farron/internal/report"
	"farron/internal/stats"
	"farron/internal/testkit"
)

// SeparationPoint is one utilization measurement at pinned temperature.
type SeparationPoint struct {
	BusyCores  int
	MeanUtil   float64
	FreqPerMin float64
}

// SeparationResult reproduces the Section 5 stress/temperature separation
// experiment: stress other cores with the stress toolchain while testing
// the target core at a pinned temperature — occurrence frequency rises with
// CPU utilization even though temperature is unchanged.
type SeparationResult struct {
	ProcessorID string
	Core        int
	TestcaseID  string
	TempC       float64
	Points      []SeparationPoint
	// UtilFreqCorrelation is Pearson r between utilization and
	// frequency.
	UtilFreqCorrelation float64
}

// Separation runs the experiment on FPU2's defective core.
func Separation(ctx *Context) (*SeparationResult, error) {
	const id = "FPU2"
	p := ctx.Profile(id)
	if p == nil {
		return nil, fmt.Errorf("experiments: profile %s missing", id)
	}
	d := p.Defects[0]
	core := 8
	// The probe must be single-threaded: a multi-threaded testcase
	// occupies every core itself, leaving no utilization contrast.
	var tc *testkit.Testcase
	bestScore := math.Inf(1)
	for _, cand := range ctx.Failing(p) {
		if cand.MultiThreaded || !testkit.DetectableBy(cand, d) {
			continue
		}
		s := testkit.SettingStress(cand, d)
		tmin := d.ObservedMinTemp(core, s)
		if math.IsInf(tmin, 0) || tmin > 80 {
			continue
		}
		if score := math.Abs(tmin - 55); score < bestScore {
			bestScore = score
			tc = cand
		}
	}
	if tc == nil {
		return nil, fmt.Errorf("experiments: no sweepable testcase for %s", id)
	}
	stress := testkit.SettingStress(tc, d)
	// A temperature comfortably above the setting's threshold so the
	// base frequency is measurable.
	temp := d.ObservedMinTemp(core, stress) + 8

	out := &SeparationResult{ProcessorID: id, Core: core, TestcaseID: tc.ID, TempC: temp}
	runner := newRunnerFor(ctx, id, "separation")
	var utils, freqs []float64
	for _, busy := range []int{0, 4, 8, 16, 23} {
		// Long enough for a solid count at the base rate.
		base := d.RatePerMin(core, temp, stress)
		dur := 30 * time.Minute
		if base > 0 {
			dur = time.Duration(300 / base * float64(time.Minute))
		}
		if dur < 30*time.Minute {
			dur = 30 * time.Minute
		}
		if dur > 240*time.Hour {
			dur = 240 * time.Hour
		}
		res := runner.Run(tc, testkit.RunOpts{
			Core:             core,
			Duration:         dur,
			FixedTempC:       &temp,
			ExtraStressCores: busy,
		})
		util := (1.0 + float64(busy)) / float64(p.TotalPCores)
		freq := float64(len(res.Records)) / dur.Minutes()
		out.Points = append(out.Points, SeparationPoint{
			BusyCores: busy, MeanUtil: util, FreqPerMin: freq,
		})
		utils = append(utils, util)
		freqs = append(freqs, freq)
	}
	r, err := stats.Pearson(utils, freqs)
	if err != nil {
		return nil, err
	}
	out.UtilFreqCorrelation = r
	return out, nil
}

// Render draws the separation table.
func (r *SeparationResult) Render() string {
	t := report.NewTable(
		fmt.Sprintf("Section 5 separation — %s pcore%d %s at pinned %.0f degC",
			r.ProcessorID, r.Core, r.TestcaseID, r.TempC),
		"busy cores", "pkg util", "freq/min")
	for _, pt := range r.Points {
		t.AddRow(fmt.Sprintf("%d", pt.BusyCores),
			fmt.Sprintf("%.2f", pt.MeanUtil),
			fmt.Sprintf("%.4f", pt.FreqPerMin))
	}
	return t.String() + fmt.Sprintf(
		"utilization/frequency correlation r = %.3f (temperature held constant)\n",
		r.UtilFreqCorrelation)
}

// AttributionRow is one processor's Section 4.1 suspect-analysis outcome.
type AttributionRow struct {
	ProcessorID string
	// Ranked is the statistical suspicion ranking (top candidates).
	Ranked []testkit.SuspectScore
	// TrueDefective is the defect's actual instruction set.
	TrueDefective []model.InstrID
	// Hit reports whether a truly defective instruction ranks in the
	// top candidates.
	Hit bool
	// FailingUsage/PassingUsage come from the top-ranked true hit
	// (Observation 10's orders-of-magnitude usage gap).
	FailingUsage, PassingUsage float64
}

// AttributionResult reproduces the Section 4.1 statistical
// instruction-attribution study.
type AttributionResult struct {
	Rows []AttributionRow
}

// Attribution instruments the toolchain (Pin-style) against three named
// processors: FPU1 and CNST2 via statistical ranking, SIMD1 via the
// toolchain's preserved context (Section 4.1 reports exactly this split).
func Attribution(ctx *Context) *AttributionResult {
	hot := 68.0
	probes := []struct {
		id      string
		core    int
		feature model.Feature
		context bool
	}{
		{"FPU1", 0, model.FeatureFPU, false},
		{"SIMD1", 5, model.FeatureVecUnit, true},
		{"CNST2", 2, model.FeatureTrxMem, false},
	}
	// The probes run against separate runners with per-id substreams —
	// three independent shards merged in probe order.
	rows := engine.MapPlain(ctx.Pool(), len(probes), func(i int) AttributionRow {
		probe := probes[i]
		p := ctx.Profile(probe.id)
		d := p.Defects[0]
		runner := newRunnerFor(ctx, probe.id, "attrib")
		var results []testkit.RunResult
		for _, tc := range ctx.Suite.ByFeature(probe.feature) {
			// Clone: results are read after later runs reset the
			// runner's arena.
			results = append(results, runner.Run(tc, testkit.RunOpts{
				Core: probe.core, Duration: 8 * time.Minute, FixedTempC: &hot,
			}).Clone())
		}
		row := AttributionRow{
			ProcessorID:   probe.id,
			TrueDefective: d.SortedInstrs(),
		}
		truth := map[model.InstrID]bool{}
		for _, iid := range row.TrueDefective {
			truth[iid] = true
		}
		if probe.context {
			// The toolchain preserved context: read the reported
			// instruction straight from the records.
			for _, id := range testkit.ContextSuspects(results) {
				row.Ranked = append(row.Ranked, testkit.SuspectScore{ID: id})
				if truth[id] {
					row.Hit = true
				}
			}
		} else {
			row.Ranked = testkit.RankSuspects(results, 5)
			for _, s := range row.Ranked {
				if truth[s.ID] {
					row.Hit = true
					if row.FailingUsage == 0 {
						row.FailingUsage, row.PassingUsage = s.FailingMean, s.PassingMean
					}
				}
			}
		}
		return row
	})
	return &AttributionResult{Rows: rows}
}

// Render draws the attribution table.
func (r *AttributionResult) Render() string {
	t := report.NewTable("Section 4.1 — statistical instruction attribution (Pin-style)",
		"CPU", "hit", "top suspect", "usage failing/passing")
	for _, row := range r.Rows {
		ratio := "-"
		if row.FailingUsage > 0 {
			ratio = fmt.Sprintf("%.0fx", row.FailingUsage/math.Max(row.PassingUsage, 1))
		}
		top := "-"
		if len(row.Ranked) > 0 {
			top = row.Ranked[0].ID.String()
		}
		t.AddRow(row.ProcessorID,
			fmt.Sprintf("%v", row.Hit),
			top,
			ratio)
	}
	return t.String()
}
