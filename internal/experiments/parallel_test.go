package experiments

import (
	"testing"

	"farron/internal/engine"
)

// parallelTestScale shrinks the quick scale further so the tier-1 suite can
// afford to run the full pipeline twice (serial and parallel).
func parallelTestScale() engine.Scale {
	sc := engine.QuickScale()
	sc.Population = 20_000
	sc.Records = 600
	sc.Obs12Records = 300
	return sc
}

// TestWorkerCountDoesNotChangeResults is the engine's acceptance test: the
// rendered output of a run must be byte-identical at -workers=1 and
// -workers=8. It covers one experiment per layer the refactor touched — the
// fleet pipeline (Table 1), an experiment sweep (Figure 4) and the
// mitigation evaluation (Observation 12) — and, through the engine runner,
// the registry's own concurrent dispatch.
func TestWorkerCountDoesNotChangeResults(t *testing.T) {
	names := map[string]bool{"Table 1": true, "Figure 4": true, "Observation 12": true}
	var exps []engine.Experiment
	for _, e := range Registry() {
		if names[e.Name] {
			exps = append(exps, e)
		}
	}
	if len(exps) != len(names) {
		t.Fatalf("registry matched %d of %d experiments", len(exps), len(names))
	}

	run := func(workers int) map[string]string {
		ctx := NewContext(7)
		ctx.Workers = workers
		sections, _, err := engine.NewRunnerCtx(ctx, engine.RunOptions{}).Run(exps, parallelTestScale())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		out := make(map[string]string, len(sections))
		for _, s := range sections {
			out[s.Name] = s.Body
		}
		return out
	}

	serial := run(1)
	parallel := run(8)
	for name, want := range serial {
		if got := parallel[name]; got != want {
			t.Errorf("%s: workers=8 output differs from workers=1\n--- serial ---\n%s\n--- parallel ---\n%s",
				name, want, got)
		}
	}
}

// TestRegistryGroupsCoverEveryExperiment: every entry belongs to exactly one
// CLI group, so the three commands partition the registry without overlap
// or gaps.
func TestRegistryGroupsCoverEveryExperiment(t *testing.T) {
	groups := []string{engine.GroupFleet, engine.GroupStudy, engine.GroupMitigation}
	seen := map[string]bool{}
	for _, e := range Registry() {
		if seen[e.Name] {
			t.Errorf("duplicate registry entry %q", e.Name)
		}
		seen[e.Name] = true
		n := 0
		for _, g := range groups {
			if e.InGroup(g) {
				n++
			}
		}
		if n != 1 {
			t.Errorf("%s belongs to %d groups, want exactly 1", e.Name, n)
		}
	}
	if len(seen) < 20 {
		t.Errorf("registry has only %d entries", len(seen))
	}
}
