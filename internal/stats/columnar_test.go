package stats

import (
	"testing"

	"farron/internal/simrand"
)

func TestSumMatchesMean(t *testing.T) {
	rng := simrand.New(41)
	xs := make([]float64, 501)
	for i := range xs {
		xs[i] = rng.Range(-5, 5)
	}
	if got, want := Sum(xs), Mean(xs)*float64(len(xs)); got != want {
		t.Errorf("Sum = %v, Mean*n = %v", got, want)
	}
	if Sum(nil) != 0 {
		t.Errorf("Sum(nil) = %v", Sum(nil))
	}
}

func TestCountTrue(t *testing.T) {
	if got := CountTrue([]bool{true, false, true, true, false}); got != 3 {
		t.Errorf("CountTrue = %d, want 3", got)
	}
	if got := CountTrue(nil); got != 0 {
		t.Errorf("CountTrue(nil) = %d", got)
	}
}

func TestMinMax(t *testing.T) {
	if _, _, ok := MinMax(nil); ok {
		t.Error("MinMax(nil) reported ok")
	}
	lo, hi, ok := MinMax([]float64{3, -1, 7, 0.5})
	if !ok || lo != -1 || hi != 7 {
		t.Errorf("MinMax = %v/%v/%v, want -1/7/true", lo, hi, ok)
	}
	lo, hi, ok = MinMax([]float64{42})
	if !ok || lo != 42 || hi != 42 {
		t.Errorf("MinMax single = %v/%v/%v", lo, hi, ok)
	}
}

// TestStatsColumnarAllocs pins the columnar reductions at zero heap
// allocations: they are the per-run aggregation primitives of the
// column-oriented record pipeline and must not add per-call garbage on top
// of the arena-backed columns they consume.
func TestStatsColumnarAllocs(t *testing.T) {
	rng := simrand.New(43)
	xs := make([]float64, 4096)
	bs := make([]bool, 4096)
	for i := range xs {
		xs[i] = rng.Float64()
		bs[i] = rng.Bool(0.5)
	}
	var sink float64
	var n int
	allocs := testing.AllocsPerRun(100, func() {
		sink = Sum(xs)
		n = CountTrue(bs)
		lo, hi, _ := MinMax(xs)
		sink += lo + hi
	})
	if allocs != 0 {
		t.Errorf("columnar reductions allocate %v objects, want 0", allocs)
	}
	_ = sink
	_ = n
}

func BenchmarkStatsColumnar(b *testing.B) {
	rng := simrand.New(44)
	xs := make([]float64, 4096)
	bs := make([]bool, 4096)
	for i := range xs {
		xs[i] = rng.Float64()
		bs[i] = rng.Bool(0.5)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += Sum(xs)
		sink += float64(CountTrue(bs))
		lo, hi, _ := MinMax(xs)
		sink += lo + hi
	}
	_ = sink
}
