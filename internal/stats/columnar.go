// Columnar aggregation helpers: tight zero-allocation reductions over the
// plain slices a column-oriented record layout exposes (model.RecordColumns
// and friends). Row-oriented consumers pay a struct walk per record; these
// walk one contiguous slice per statistic, which is both cache-friendly and
// free of per-call heap traffic — pinned by TestStatsColumnarAllocs.
package stats

// Sum returns the sum of xs, 0 for an empty slice.
func Sum(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}

// CountTrue returns the number of true values in bs.
func CountTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// MinMax returns the minimum and maximum of xs; ok is false for an empty
// slice (lo and hi are then zero).
func MinMax(xs []float64) (lo, hi float64, ok bool) {
	if len(xs) == 0 {
		return 0, 0, false
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi, true
}
