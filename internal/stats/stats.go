// Package stats provides the small statistical toolkit the study needs:
// moments, Pearson correlation, least-squares linear fits, empirical CDFs,
// histograms and binomial confidence intervals. Everything is implemented
// directly (stdlib math only) so results are fully reproducible.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned when a statistic needs more samples than
// were provided.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance, or 0 when fewer than
// two samples are given.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It returns an error if the slices differ in length, have fewer than two
// points, or either series is constant.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: Pearson length mismatch")
	}
	n := len(xs)
	if n < 2 {
		return 0, ErrInsufficientData
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: Pearson on constant series")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// LinFit holds a least-squares line y = Intercept + Slope*x along with the
// fit's Pearson correlation coefficient R.
type LinFit struct {
	Slope, Intercept, R float64
}

// FitLine computes the ordinary least-squares fit of ys against xs.
func FitLine(xs, ys []float64) (LinFit, error) {
	if len(xs) != len(ys) {
		return LinFit{}, errors.New("stats: FitLine length mismatch")
	}
	n := len(xs)
	if n < 2 {
		return LinFit{}, ErrInsufficientData
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx float64
	for i := 0; i < n; i++ {
		dx := xs[i] - mx
		sxy += dx * (ys[i] - my)
		sxx += dx * dx
	}
	if sxx == 0 {
		return LinFit{}, errors.New("stats: FitLine on constant x")
	}
	slope := sxy / sxx
	r, err := Pearson(xs, ys)
	if err != nil {
		return LinFit{}, err
	}
	return LinFit{Slope: slope, Intercept: my - slope*mx, R: r}, nil
}

// Eval returns the fitted value at x.
func (f LinFit) Eval(x float64) float64 { return f.Intercept + f.Slope*x }

// CDF is an empirical cumulative distribution function over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the sample (which is copied).
func NewCDF(xs []float64) *CDF {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the sample size.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X <= x), the fraction of samples not exceeding x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (0 <= q <= 1) by nearest-rank.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	i := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return c.sorted[i]
}

// Points returns up to n (x, P(X<=x)) pairs evenly spread through the
// sample, suitable for plotting the CDF.
func (c *CDF) Points(n int) (xs, ps []float64) {
	m := len(c.sorted)
	if m == 0 || n <= 0 {
		return nil, nil
	}
	if n > m {
		n = m
	}
	xs = make([]float64, n)
	ps = make([]float64, n)
	for i := 0; i < n; i++ {
		j := (i*(m-1) + (n-1)/2) / max(n-1, 1)
		if n == 1 {
			j = m - 1
		}
		xs[i] = c.sorted[j]
		ps[i] = float64(j+1) / float64(m)
	}
	return xs, ps
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Histogram counts samples into equal-width bins over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	// Under and Over count samples falling outside [Lo, Hi).
	Under, Over int
	total       int
}

// NewHistogram creates a histogram with n bins spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.Counts) { // float edge case
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of samples recorded (including out-of-range).
func (h *Histogram) Total() int { return h.total }

// Proportions returns each bin's share of all recorded samples.
func (h *Histogram) Proportions() []float64 {
	ps := make([]float64, len(h.Counts))
	if h.total == 0 {
		return ps
	}
	for i, c := range h.Counts {
		ps[i] = float64(c) / float64(h.total)
	}
	return ps
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Counter tallies integer-keyed occurrences (e.g. bitflips per position).
type Counter struct {
	counts map[int]int
	total  int
}

// NewCounter returns an empty Counter.
func NewCounter() *Counter { return &Counter{counts: map[int]int{}} }

// Add increments key by delta.
func (c *Counter) Add(key, delta int) {
	c.counts[key] += delta
	c.total += delta
}

// Get returns the count for key.
func (c *Counter) Get(key int) int { return c.counts[key] }

// Total returns the sum of all counts.
func (c *Counter) Total() int { return c.total }

// Proportion returns key's share of the total, or 0 when empty.
func (c *Counter) Proportion(key int) float64 {
	if c.total == 0 {
		return 0
	}
	return float64(c.counts[key]) / float64(c.total)
}

// Keys returns all keys in ascending order.
func (c *Counter) Keys() []int {
	ks := make([]int, 0, len(c.counts))
	for k := range c.counts {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

// BinomialCI returns the Wilson score interval for a proportion with
// successes k out of n trials at ~95% confidence (z = 1.96).
func BinomialCI(k, n int) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	const z = 1.96
	p := float64(k) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Log10 returns log10(x), or -inf guarded to a large negative sentinel for
// x <= 0 so plots of log-frequencies never produce NaN.
func Log10(x float64) float64 {
	if x <= 0 {
		return -300
	}
	return math.Log10(x)
}
