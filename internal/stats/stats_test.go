package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n-1: sum sq dev = 32, /7
	want := 32.0 / 7.0
	if got := Variance(xs); !almostEq(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if got := StdDev(xs); !almostEq(got, math.Sqrt(want), 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
	if Variance([]float64{5}) != 0 {
		t.Error("Variance of single sample should be 0")
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil || !almostEq(r, 1, 1e-12) {
		t.Errorf("Pearson = %v, %v; want 1", r, err)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, err = Pearson(xs, neg)
	if err != nil || !almostEq(r, -1, 1e-12) {
		t.Errorf("Pearson = %v, %v; want -1", r, err)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Error("Pearson with one point should error")
	}
	if _, err := Pearson([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("Pearson length mismatch should error")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("Pearson on constant series should error")
	}
}

func TestFitLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 1 + 2x
	f, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Slope, 2, 1e-12) || !almostEq(f.Intercept, 1, 1e-12) || !almostEq(f.R, 1, 1e-12) {
		t.Errorf("FitLine = %+v", f)
	}
	if got := f.Eval(10); !almostEq(got, 21, 1e-12) {
		t.Errorf("Eval(10) = %v", got)
	}
}

func TestFitLineNoisy(t *testing.T) {
	// A noisy but strongly correlated series should recover slope sign
	// and a high R.
	xs := make([]float64, 50)
	ys := make([]float64, 50)
	for i := range xs {
		xs[i] = float64(i)
		noise := math.Sin(float64(i) * 12.9898)
		ys[i] = 3 - 0.5*xs[i] + noise
	}
	f, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if f.Slope > -0.4 || f.Slope < -0.6 {
		t.Errorf("Slope = %v, want ~-0.5", f.Slope)
	}
	if f.R > -0.9 {
		t.Errorf("R = %v, want strongly negative", f.R)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5})
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.2}, {2.5, 0.4}, {5, 1}, {100, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); !almostEq(got, tc.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if got := c.Quantile(0.5); got != 3 {
		t.Errorf("median = %v, want 3", got)
	}
	if got := c.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v", got)
	}
	if got := c.Quantile(1); got != 5 {
		t.Errorf("Quantile(1) = %v", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if got := c.At(5); got != 0 {
		t.Errorf("empty CDF At = %v", got)
	}
	if !math.IsNaN(c.Quantile(0.5)) {
		t.Error("empty CDF Quantile should be NaN")
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		c := NewCDF(raw)
		probe := append([]float64{}, raw...)
		sort.Float64s(probe)
		prev := 0.0
		for _, x := range probe {
			p := c.At(x)
			if p < prev || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	xs, ps := c.Points(5)
	if len(xs) != 5 || len(ps) != 5 {
		t.Fatalf("Points returned %d/%d", len(xs), len(ps))
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] || ps[i] < ps[i-1] {
			t.Errorf("Points not monotone: %v %v", xs, ps)
		}
	}
	if ps[len(ps)-1] != 1 {
		t.Errorf("last point P = %v, want 1", ps[len(ps)-1])
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.99, -1, 10, 11} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("Under/Over = %d/%d", h.Under, h.Over)
	}
	wantCounts := []int{2, 1, 1, 0, 1}
	for i, w := range wantCounts {
		if h.Counts[i] != w {
			t.Errorf("bin %d = %d, want %d", i, h.Counts[i], w)
		}
	}
	ps := h.Proportions()
	if !almostEq(ps[0], 0.25, 1e-12) {
		t.Errorf("proportion bin0 = %v", ps[0])
	}
	if got := h.BinCenter(0); !almostEq(got, 1, 1e-12) {
		t.Errorf("BinCenter(0) = %v", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram with hi<=lo should panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Add(3, 2)
	c.Add(1, 1)
	c.Add(3, 1)
	if c.Total() != 4 {
		t.Errorf("Total = %d", c.Total())
	}
	if c.Get(3) != 3 {
		t.Errorf("Get(3) = %d", c.Get(3))
	}
	if !almostEq(c.Proportion(3), 0.75, 1e-12) {
		t.Errorf("Proportion(3) = %v", c.Proportion(3))
	}
	keys := c.Keys()
	if len(keys) != 2 || keys[0] != 1 || keys[1] != 3 {
		t.Errorf("Keys = %v", keys)
	}
	empty := NewCounter()
	if empty.Proportion(0) != 0 {
		t.Error("empty Counter Proportion should be 0")
	}
}

func TestBinomialCI(t *testing.T) {
	lo, hi := BinomialCI(50, 100)
	if lo >= 0.5 || hi <= 0.5 {
		t.Errorf("CI [%v,%v] should contain 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Errorf("CI width %v too wide for n=100", hi-lo)
	}
	lo, hi = BinomialCI(0, 0)
	if lo != 0 || hi != 1 {
		t.Errorf("CI with n=0 = [%v,%v]", lo, hi)
	}
	lo, hi = BinomialCI(0, 10)
	if lo != 0 {
		t.Errorf("CI lower bound for k=0 = %v", lo)
	}
	lo, hi = BinomialCI(10, 10)
	if hi != 1 {
		t.Errorf("CI upper bound for k=n = %v", hi)
	}
}

func TestBinomialCIContainsTruth(t *testing.T) {
	// Property: interval is within [0,1] and lo <= p̂ <= hi.
	f := func(kRaw, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		k := int(kRaw) % (n + 1)
		lo, hi := BinomialCI(k, n)
		p := float64(k) / float64(n)
		return lo >= 0 && hi <= 1 && lo <= p+1e-9 && hi >= p-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLog10(t *testing.T) {
	if got := Log10(100); !almostEq(got, 2, 1e-12) {
		t.Errorf("Log10(100) = %v", got)
	}
	if got := Log10(0); got != -300 {
		t.Errorf("Log10(0) = %v", got)
	}
	if got := Log10(-5); got != -300 {
		t.Errorf("Log10(-5) = %v", got)
	}
}
