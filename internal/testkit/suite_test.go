package testkit

import (
	"testing"

	"farron/internal/model"
	"farron/internal/simrand"
)

func TestSuiteSize(t *testing.T) {
	s := NewSuite(simrand.New(1))
	if len(s.Testcases) != SuiteSize {
		t.Fatalf("suite size = %d, want %d", len(s.Testcases), SuiteSize)
	}
}

func TestSuiteDeterministic(t *testing.T) {
	a := NewSuite(simrand.New(42))
	b := NewSuite(simrand.New(42))
	for i := range a.Testcases {
		ta, tb := a.Testcases[i], b.Testcases[i]
		if ta.ID != tb.ID || ta.Feature != tb.Feature || ta.HeatIntensity != tb.HeatIntensity {
			t.Fatalf("suite not deterministic at %d", i)
		}
		if len(ta.Mix) != len(tb.Mix) {
			t.Fatalf("mix differs at %d", i)
		}
		for id, u := range ta.Mix {
			if tb.Mix[id] != u {
				t.Fatalf("mix usage differs at %d/%v", i, id)
			}
		}
	}
}

func TestSuiteFeatureDistribution(t *testing.T) {
	s := NewSuite(simrand.New(2))
	counts := map[model.Feature]int{}
	for _, tc := range s.Testcases {
		counts[tc.Feature]++
	}
	want := map[model.Feature]int{
		model.FeatureALU: 140, model.FeatureVecUnit: 120,
		model.FeatureFPU: 150, model.FeatureCache: 120,
		model.FeatureTrxMem: 103,
	}
	for f, w := range want {
		if counts[f] != w {
			t.Errorf("%v testcases = %d, want %d", f, counts[f], w)
		}
	}
}

func TestConsistencyTestcasesMultithreaded(t *testing.T) {
	s := NewSuite(simrand.New(3))
	for _, tc := range s.Testcases {
		if (tc.Feature == model.FeatureCache || tc.Feature == model.FeatureTrxMem) && !tc.MultiThreaded {
			t.Errorf("%s targets %v but is single-threaded", tc.ID, tc.Feature)
		}
	}
}

func TestSuiteIDsUniqueAndResolvable(t *testing.T) {
	s := NewSuite(simrand.New(4))
	seen := map[string]bool{}
	for _, tc := range s.Testcases {
		if seen[tc.ID] {
			t.Fatalf("duplicate testcase ID %s", tc.ID)
		}
		seen[tc.ID] = true
		if s.ByID(tc.ID) != tc {
			t.Fatalf("ByID(%s) broken", tc.ID)
		}
	}
	if s.ByID("nope") != nil {
		t.Error("ByID of unknown should be nil")
	}
}

func TestMixUsageSpreadsOrders(t *testing.T) {
	// Observation 10 requires usage stress spanning orders of magnitude
	// across testcases.
	s := NewSuite(simrand.New(5))
	minU, maxU := 1e18, 0.0
	for _, tc := range s.Testcases {
		for id, u := range tc.Mix {
			if id.Class == model.InstrBranch {
				continue
			}
			if u < minU {
				minU = u
			}
			if u > maxU {
				maxU = u
			}
		}
	}
	if maxU/minU < 1e3 {
		t.Errorf("usage spread = %g, want orders of magnitude", maxU/minU)
	}
}

func TestFPUDatatypesAreFloats(t *testing.T) {
	s := NewSuite(simrand.New(6))
	for _, tc := range s.ByFeature(model.FeatureFPU) {
		if len(tc.DataTypes) == 0 {
			t.Errorf("%s has no datatypes", tc.ID)
		}
		for _, dt := range tc.DataTypes {
			if !dt.Float() {
				t.Errorf("%s checks non-float %v", tc.ID, dt)
			}
		}
	}
}

func TestConsistencyTestcasesHaveNoDatatypes(t *testing.T) {
	s := NewSuite(simrand.New(7))
	for _, f := range []model.Feature{model.FeatureCache, model.FeatureTrxMem} {
		for _, tc := range s.ByFeature(f) {
			if len(tc.DataTypes) != 0 {
				t.Errorf("%s (%v) has datatypes %v", tc.ID, f, tc.DataTypes)
			}
		}
	}
}

func TestInstrUsers(t *testing.T) {
	s := NewSuite(simrand.New(8))
	// Pick an instruction from a known testcase and confirm lookup.
	var probe model.InstrID
	found := false
	for id := range s.Testcases[0].Mix {
		probe = id
		found = true
		break
	}
	if !found {
		t.Fatal("testcase 0 has empty mix")
	}
	users := s.InstrUsers(probe)
	hit := false
	for _, tc := range users {
		if tc == s.Testcases[0] {
			hit = true
		}
		if !tc.UsesInstr(probe) {
			t.Errorf("%s listed but does not use %v", tc.ID, probe)
		}
	}
	if !hit {
		t.Error("InstrUsers missed a known user")
	}
}

func TestByFeatureCovers(t *testing.T) {
	s := NewSuite(simrand.New(9))
	total := 0
	for _, f := range model.AllFeatures() {
		total += len(s.ByFeature(f))
	}
	if total != SuiteSize {
		t.Errorf("ByFeature partitions %d, want %d", total, SuiteSize)
	}
}

func TestSortedIDs(t *testing.T) {
	s := NewSuite(simrand.New(10))
	ids := s.SortedIDs()
	if len(ids) != SuiteSize {
		t.Fatalf("SortedIDs len = %d", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("not sorted: %s >= %s", ids[i-1], ids[i])
		}
	}
}
