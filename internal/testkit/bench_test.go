package testkit

import (
	"testing"
	"time"

	"farron/internal/cpu"
	"farron/internal/defect"
	"farron/internal/simrand"
	"farron/internal/thermal"
)

func BenchmarkSuiteGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		NewSuite(simrand.New(uint64(i + 1)))
	}
}

func BenchmarkCalibrateLibrary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := simrand.New(uint64(i + 1))
		suite := NewSuite(rng)
		for _, p := range defect.Library(rng) {
			suite.CalibrateProfile(p)
		}
	}
}

func BenchmarkRunTestcase(b *testing.B) {
	rng := simrand.New(9)
	suite := NewSuite(rng)
	lib := defect.Library(rng)
	var prof *defect.Profile
	for _, p := range lib {
		suite.CalibrateProfile(p)
		if p.CPUID == "FPU2" {
			prof = p
		}
	}
	proc := cpu.FromProfile(prof)
	pkg := thermal.New(thermal.DefaultConfig(), proc.PhysCores, rng.Derive("b"))
	r := NewRunner(suite, proc, pkg)
	tc := suite.FailingTestcases(prof)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Run(tc, RunOpts{Core: 8, Duration: time.Minute})
	}
}
