package testkit

import (
	"testing"
	"time"

	"farron/internal/cpu"
	"farron/internal/defect"
	"farron/internal/simrand"
	"farron/internal/thermal"
)

func BenchmarkSuiteGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		NewSuite(simrand.New(uint64(i + 1)))
	}
}

func BenchmarkCalibrateLibrary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := simrand.New(uint64(i + 1))
		suite := NewSuite(rng)
		for _, p := range defect.Library(rng) {
			suite.CalibrateProfile(p)
		}
	}
}

func BenchmarkRunTestcase(b *testing.B) {
	r, tc := benchRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Run(tc, RunOpts{Core: 8, Duration: time.Minute})
	}
}

// benchRunner builds the FPU2 runner fixture the runner benchmarks and the
// allocation regression share.
func benchRunner(tb testing.TB) (*Runner, *Testcase) {
	tb.Helper()
	rng := simrand.New(9)
	suite := NewSuite(rng)
	lib := defect.Library(rng)
	var prof *defect.Profile
	for _, p := range lib {
		suite.CalibrateProfile(p)
		if p.CPUID == "FPU2" {
			prof = p
		}
	}
	proc := cpu.FromProfile(prof)
	pkg := thermal.New(thermal.DefaultConfig(), proc.PhysCores, rng.Derive("b"))
	return NewRunner(suite, proc, pkg), suite.FailingTestcases(prof)[0]
}

// BenchmarkRunnerStep measures a single-step Run — the unit of work the
// compiled fast path optimizes (one thermal step, one flat-mix walk, one
// compiled defect plan).
func BenchmarkRunnerStep(b *testing.B) {
	r, tc := benchRunner(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Run(tc, RunOpts{Core: 8, Duration: stepSlice})
	}
}

// TestRunStepAllocs pins the compiled Run path at zero steady-state
// allocations for a single-step run: every container lives in the
// Runner's arena (result slices, columns, the InstrCounts map, the
// compiled plan, the substream key buffer), so once warmed nothing is
// allocated per run. AllocsPerRun warms with one untimed call, which
// builds the arena and the per-testcase plan cache.
func TestRunStepAllocs(t *testing.T) {
	r, tc := benchRunner(t)
	allocs := testing.AllocsPerRun(100, func() {
		r.Run(tc, RunOpts{Core: 8, Duration: stepSlice})
	})
	if allocs != 0 {
		t.Errorf("single-step Run allocates %v objects, want 0", allocs)
	}
}
