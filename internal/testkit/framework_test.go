package testkit

import (
	"testing"
	"time"

	"farron/internal/model"
	"farron/internal/simrand"
)

func TestFrameworkSelection(t *testing.T) {
	f := newFixture(t)
	r := f.runner(t, "FPU3")
	fw := NewFramework(r)
	results := fw.Execute(Spec{
		Select:      func(tc *Testcase) bool { return tc.Feature == model.FeatureFPU },
		PerTestcase: 10 * time.Second,
	}, simrand.New(1))
	if len(results) != 150 {
		t.Errorf("selected %d testcases, want the 150 FPU ones", len(results))
	}
}

func TestFrameworkOrderPolicies(t *testing.T) {
	f := newFixture(t)
	r := f.runner(t, "FPU3")
	fw := NewFramework(r)
	sel := func(tc *Testcase) bool { return tc.Feature == model.FeatureVecUnit }

	suiteOrder := fw.Execute(Spec{Select: sel, PerTestcase: time.Second}, simrand.New(2))
	shuffled := fw.Execute(Spec{Select: sel, Order: OrderShuffled, PerTestcase: time.Second}, simrand.New(2))
	if len(suiteOrder) != len(shuffled) {
		t.Fatal("order policies changed selection")
	}
	diff := 0
	for i := range suiteOrder {
		if suiteOrder[i].TestcaseID != shuffled[i].TestcaseID {
			diff++
		}
	}
	if diff == 0 {
		t.Error("shuffle produced suite order")
	}

	byHeat := fw.Execute(Spec{Select: sel, Order: OrderByHeat, PerTestcase: time.Second}, simrand.New(2))
	for i := 1; i < len(byHeat); i++ {
		a := f.suite.ByID(byHeat[i-1].TestcaseID)
		b := f.suite.ByID(byHeat[i].TestcaseID)
		if a.HeatIntensity < b.HeatIntensity {
			t.Fatalf("OrderByHeat not descending at %d", i)
		}
	}
}

func TestFrameworkConcurrencyControl(t *testing.T) {
	f := newFixture(t)
	rOne := f.runner(t, "FPU3")
	one := NewFramework(rOne).Execute(Spec{
		Select:      func(tc *Testcase) bool { return tc.ID == "tc-001" },
		PerTestcase: 5 * time.Minute,
		Concurrency: 1,
	}, simrand.New(3))
	rAll := f.runner(t, "FPU3")
	all := NewFramework(rAll).Execute(Spec{
		Select:      func(tc *Testcase) bool { return tc.ID == "tc-001" },
		PerTestcase: 5 * time.Minute,
	}, simrand.New(3))
	if all[0].MaxTempC <= one[0].MaxTempC {
		t.Errorf("all-core run (%.1f) not hotter than single-core (%.1f)",
			all[0].MaxTempC, one[0].MaxTempC)
	}
}

func TestToolchainUpdateAnomaly(t *testing.T) {
	// Observation 10: "after updating to use a higher version of the
	// detection toolchain, the occurrence frequency of some SDCs
	// decreased… the updated toolchain uses a more efficient framework,
	// which reduced the heat generated."
	f := newFixture(t)
	// SIMD2 is the right probe: a tricky defect whose rate saturates a
	// few degrees above its 62degC threshold, so it is temperature-
	// sensitive exactly where framework efficiency moves the package.
	failingSet := map[string]bool{}
	for _, tc := range f.suite.FailingTestcases(f.profiles["SIMD2"]) {
		failingSet[tc.ID] = true
	}
	sel := func(tc *Testcase) bool { return failingSet[tc.ID] }

	rOld := f.runner(t, "SIMD2")
	old := NewFramework(rOld).Execute(Spec{
		Select: sel, PerTestcase: 3 * time.Hour, BurnIn: true, EfficiencyScale: 1,
	}, simrand.New(4))
	rNew := f.runner(t, "SIMD2")
	upd := NewFramework(rNew).Execute(Spec{
		Select: sel, PerTestcase: 3 * time.Hour, BurnIn: true, EfficiencyScale: 0.25,
	}, simrand.New(4))

	var oldRecords, newRecords, oldMax, newMax = 0, 0, 0.0, 0.0
	for i := range old {
		oldRecords += len(old[i].Records)
		newRecords += len(upd[i].Records)
		if old[i].MaxTempC > oldMax {
			oldMax = old[i].MaxTempC
		}
		if upd[i].MaxTempC > newMax {
			newMax = upd[i].MaxTempC
		}
	}
	if newMax >= oldMax {
		t.Errorf("efficient framework ran hotter: %.1f vs %.1f", newMax, oldMax)
	}
	if oldRecords == 0 {
		t.Skip("defect not triggered under the old framework at this seed")
	}
	if newRecords >= oldRecords {
		t.Errorf("efficient framework did not reduce SDC occurrences: %d vs %d",
			newRecords, oldRecords)
	}
}

func TestRemainingHeatAnomaly(t *testing.T) {
	// Observation 10: "errors in testcase Y occur when testcase X is
	// executed prior to testcase Y, and fail to occur with reversed
	// order" — X's heat lingers into Y's window.
	f := newFixture(t)
	p := f.profiles["SIMD2"] // tricky: needs 62 degC
	failing := f.suite.FailingTestcases(p)
	d := p.Defects[0]
	var y *Testcase
	bestStress := 0.0
	for _, cand := range failing {
		if s := SettingStress(cand, d); s > bestStress {
			bestStress = s
			y = cand
		}
	}
	if y == nil {
		t.Fatal("no failing testcase")
	}
	// X: a synthetic hot testcase — hottest multithreaded one.
	var x *Testcase
	for _, tc := range f.suite.Testcases {
		if tc.MultiThreaded && (x == nil || tc.HeatIntensity > x.HeatIntensity) {
			x = tc
		}
	}

	// Each trial shifts the runner's virtual clock by a unique amount so
	// the per-run random streams differ across trials (streams are keyed
	// by accumulated test time).
	yAfterX := func(trial int) int {
		r := f.runner(t, "SIMD2")
		r.Run(x, RunOpts{Core: 2, Duration: 20*time.Minute + time.Duration(trial)*time.Second, BurnIn: true})
		res := r.Run(y, RunOpts{Core: 2, Duration: 2 * time.Minute})
		return len(res.Records)
	}
	yFromIdle := func(trial int) int {
		r := f.runner(t, "SIMD2")
		r.Run(f.suite.Testcases[0], RunOpts{Core: 0, Duration: time.Duration(trial+1) * time.Second})
		res := r.Run(y, RunOpts{Core: 2, Duration: 2 * time.Minute})
		return len(res.Records)
	}

	afterHot := 0
	afterCold := 0
	// Aggregate several trials: the effect is probabilistic.
	for trial := 0; trial < 8; trial++ {
		afterHot += yAfterX(trial)
		afterCold += yFromIdle(trial)
	}
	if afterHot == 0 {
		t.Skip("remaining heat never triggered SIMD2 at this seed")
	}
	if afterCold >= afterHot {
		t.Errorf("order X,Y produced %d records vs Y-first %d; remaining heat should matter",
			afterHot, afterCold)
	}
}
