package testkit

import (
	"sort"

	"farron/internal/defect"
	"farron/internal/model"
)

// FailingTestcases returns the testcases that can detect at least one of
// the profile's defects (the processor's #err set of Table 3), in suite
// order. With the suite's inverted instruction index it marks only the
// testcases sharing an instruction with some defect and confirms those; a
// reference suite falls back to the full 633×defects scan.
func (s *Suite) FailingTestcases(p *defect.Profile) []*Testcase {
	if s.instrUsers == nil {
		return s.failingTestcasesScan(p)
	}
	marks := make([]bool, len(s.Testcases))
	n := 0
	for _, d := range p.Defects {
		for id := range d.AffectedInstrs {
			for _, tc := range s.instrUsers[id] {
				if !marks[tc.ord] {
					marks[tc.ord] = true
					n++
				}
			}
		}
	}
	out := make([]*Testcase, 0, n)
	for _, tc := range s.Testcases {
		if !marks[tc.ord] {
			continue
		}
		for _, d := range p.Defects {
			if DetectableBy(tc, d) {
				out = append(out, tc)
				break
			}
		}
	}
	return out
}

// failingTestcasesScan is the retained naive FailingTestcases: a full scan
// of the suite against every defect.
func (s *Suite) failingTestcasesScan(p *defect.Profile) []*Testcase {
	var out []*Testcase
	for _, tc := range s.Testcases {
		for _, d := range p.Defects {
			if DetectableBy(tc, d) {
				out = append(out, tc)
				break
			}
		}
	}
	return out
}

// CalibrateProfile grows the profile's affected-instruction sets until the
// number of failing testcases reaches the profile's TargetErrCount
// (Table 3's #err). Seed instructions (e.g. FPU1/FPU2's shared arctangent
// variant) are preserved; additional variants are chosen greedily from the
// classes the defect already touches, preferring additions that close the
// remaining gap without overshooting. It returns the resulting failing
// count.
//
// Table 3's error counts are measurements of real silicon; calibration is
// how the simulation encodes those measurements so every downstream
// experiment (coverage, prioritization, suspect attribution) sees the same
// testcase-failure structure the paper saw.
func (s *Suite) CalibrateProfile(p *defect.Profile) int {
	count := len(s.FailingTestcases(p))
	if count >= p.TargetErrCount {
		return count
	}
	d := primaryDefect(p)
	classes := defectClasses(d)
	for count < p.TargetErrCount {
		gap := p.TargetErrCount - count
		id, gain := s.bestVariant(p, d, classes, gap)
		if gain == 0 {
			break // no variant adds coverage
		}
		d.AffectedInstrs[id] = true
		count += gain
		if gain > gap {
			break // minimal overshoot accepted
		}
	}
	return count
}

// primaryDefect returns the defect calibration extends (profiles in this
// study carry one defect; with several, the first is grown).
func primaryDefect(p *defect.Profile) *defect.Defect { return p.Defects[0] }

// defectClasses lists the instruction classes the defect's current
// affected set touches (its plausible physical blast radius).
func defectClasses(d *defect.Defect) []model.InstrClass {
	seen := map[model.InstrClass]bool{}
	var out []model.InstrClass
	for _, id := range d.SortedInstrs() {
		if !seen[id.Class] {
			seen[id.Class] = true
			out = append(out, id.Class)
		}
	}
	return out
}

// bestVariant finds the unaffected variant whose addition yields the most
// new failing testcases without exceeding gap; if every candidate
// overshoots, the smallest-gain one is returned. gain 0 means no candidate
// helps.
func (s *Suite) bestVariant(p *defect.Profile, d *defect.Defect, classes []model.InstrClass, gap int) (model.InstrID, int) {
	type cand struct {
		id   model.InstrID
		gain int
	}
	var cands []cand
	for _, cl := range classes {
		for v := 0; v < model.InstrVariants; v++ {
			id := model.InstrID{Class: cl, Variant: v}
			if d.AffectedInstrs[id] {
				continue
			}
			g := s.gainOf(p, d, id)
			if g > 0 {
				cands = append(cands, cand{id, g})
			}
		}
	}
	if len(cands) == 0 {
		return model.InstrID{}, 0
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].gain != cands[j].gain {
			return cands[i].gain > cands[j].gain
		}
		if cands[i].id.Class != cands[j].id.Class {
			return cands[i].id.Class < cands[j].id.Class
		}
		return cands[i].id.Variant < cands[j].id.Variant
	})
	// Best candidate fitting inside the gap, else the overall smallest.
	for _, c := range cands {
		if c.gain <= gap {
			return c.id, c.gain
		}
	}
	smallest := cands[len(cands)-1]
	return smallest.id, smallest.gain
}

// gainOf counts testcases that would newly fail if id were added to d.
func (s *Suite) gainOf(p *defect.Profile, d *defect.Defect, id model.InstrID) int {
	failing := map[string]bool{}
	for _, tc := range s.FailingTestcases(p) {
		failing[tc.ID] = true
	}
	gain := 0
	for _, tc := range s.InstrUsers(id) {
		if failing[tc.ID] {
			continue
		}
		// Would this testcase detect d with the variant added?
		if d.Class == model.ClassConsistency && !tc.MultiThreaded {
			continue
		}
		if d.Class == model.ClassComputation {
			ok := false
			for _, dt := range tc.DataTypes {
				if d.AffectsDataType(dt) {
					ok = true
					break
				}
			}
			if !ok {
				continue
			}
		}
		gain++
	}
	return gain
}

// CalibrateAll calibrates every profile and returns achieved counts by
// CPUID.
func (s *Suite) CalibrateAll(profiles []*defect.Profile) map[string]int {
	out := make(map[string]int, len(profiles))
	for _, p := range profiles {
		out[p.CPUID] = s.CalibrateProfile(p)
	}
	return out
}
