package testkit

import (
	"time"

	"farron/internal/simrand"
)

// OrderPolicy controls testcase execution order (Section 2.3: the framework
// "controls their execution order").
type OrderPolicy int

const (
	// OrderSuite runs testcases in suite order.
	OrderSuite OrderPolicy = iota
	// OrderShuffled runs them in a seeded random order. Order matters on
	// real hardware: a hot testcase leaves heat behind for its successor
	// (the remaining-heat anomaly of Observation 10).
	OrderShuffled
	// OrderByHeat runs the hottest testcases first — a worst-case
	// thermal schedule.
	OrderByHeat
)

// Spec is a user specification for one framework execution (Section 2.3:
// "According to a user's specification, the framework selects the testcases
// to be performed and controls their execution order, resource allocation
// (such as CPU time and concurrency) during testing").
type Spec struct {
	// Select filters testcases (nil = all).
	Select func(*Testcase) bool
	// Order is the execution order policy.
	Order OrderPolicy
	// PerTestcase is the CPU-time allocation per testcase.
	PerTestcase time.Duration
	// Concurrency is how many cores run each testcase simultaneously
	// (0 = every active core).
	Concurrency int
	// BurnIn loads all cores regardless of concurrency.
	BurnIn bool
	// EfficiencyScale scales the framework's own power draw (1 =
	// nominal). The paper's toolchain-update anomaly: "the updated
	// toolchain uses a more efficient framework, which reduced the heat
	// generated" — and with it, some SDC occurrence frequencies.
	EfficiencyScale float64
}

// Framework drives a runner according to a Spec.
type Framework struct {
	runner *Runner
}

// NewFramework wraps a runner.
func NewFramework(r *Runner) *Framework { return &Framework{runner: r} }

// Execute runs the spec and returns per-testcase results in execution
// order.
func (f *Framework) Execute(spec Spec, rng *simrand.Source) []RunResult {
	if spec.PerTestcase <= 0 {
		spec.PerTestcase = time.Minute
	}
	if spec.EfficiencyScale > 0 {
		f.runner.Thermal().SetFrameworkScale(spec.EfficiencyScale)
		defer f.runner.Thermal().SetFrameworkScale(1)
	}

	// Selection.
	var tcs []*Testcase
	for _, tc := range f.runner.Suite().Testcases {
		if spec.Select == nil || spec.Select(tc) {
			tcs = append(tcs, tc)
		}
	}

	// Ordering.
	switch spec.Order {
	case OrderShuffled:
		r := rng.Derive("framework-order")
		r.Shuffle(len(tcs), func(i, j int) { tcs[i], tcs[j] = tcs[j], tcs[i] })
	case OrderByHeat:
		// Stable selection sort by heat descending (small n; keeps the
		// implementation dependency-free and deterministic).
		for i := 0; i < len(tcs); i++ {
			best := i
			for j := i + 1; j < len(tcs); j++ {
				if tcs[j].HeatIntensity > tcs[best].HeatIntensity {
					best = j
				}
			}
			tcs[i], tcs[best] = tcs[best], tcs[i]
		}
	}

	// Resource allocation and execution.
	cores := f.runner.Processor().ActiveCores()
	if spec.Concurrency > 0 && spec.Concurrency < len(cores) {
		cores = cores[:spec.Concurrency]
	}
	results := make([]RunResult, 0, len(tcs))
	for _, tc := range tcs {
		// Clone: each result must survive the arena reset of the next run.
		results = append(results, f.runner.RunParallel(tc, cores, RunOpts{
			Duration: spec.PerTestcase,
			BurnIn:   spec.BurnIn,
		}).Clone())
	}
	return results
}
