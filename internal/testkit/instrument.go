package testkit

import (
	"sort"

	"farron/internal/model"
	"farron/internal/stats"
)

// SuspectReport is the output of the statistical instruction-attribution
// method of Section 4.1: instrument the toolchain (Pin-style) to count each
// instruction's executions per testcase, then intersect the failing
// testcases' instruction sets and subtract the passing ones'.
type SuspectReport struct {
	// Suspects are instructions used by every failing testcase and by no
	// passing testcase — the strongest candidates.
	Suspects []model.InstrID
	// WeakSuspects are used by every failing testcase but also by some
	// passing ones (possible low-stress escapes, Observation 10).
	WeakSuspects []model.InstrID
	// FailingCount and PassingCount describe the evidence base.
	FailingCount, PassingCount int
}

// AttributeSuspects narrows down suspected instructions from run results:
// results must cover multiple testcases on one processor (some failed, some
// passed). Instructions appearing in all failing runs are suspects; those
// additionally absent from all passing runs are strong suspects.
//
// The method mirrors the paper's: "we instrument the toolchain to catch the
// number of times each type of instruction is executed during each testcase
// via Pin. This method helps us narrow down the scope of suspected
// instructions."
func AttributeSuspects(results []RunResult) SuspectReport {
	var rep SuspectReport
	inAllFailing := map[model.InstrID]bool{}
	inAnyPassing := map[model.InstrID]bool{}
	first := true
	for _, res := range results {
		if res.Failed {
			rep.FailingCount++
			present := map[model.InstrID]bool{}
			for id, n := range res.InstrCounts {
				if n > 0 {
					present[id] = true
				}
			}
			if first {
				for id := range present {
					inAllFailing[id] = true
				}
				first = false
			} else {
				for id := range inAllFailing {
					if !present[id] {
						delete(inAllFailing, id)
					}
				}
			}
		} else {
			rep.PassingCount++
			for id, n := range res.InstrCounts {
				if n > 0 {
					inAnyPassing[id] = true
				}
			}
		}
	}
	ids := make([]model.InstrID, 0, len(inAllFailing))
	for id := range inAllFailing {
		ids = append(ids, id)
	}
	sortInstrs(ids)
	for _, id := range ids {
		if inAnyPassing[id] {
			rep.WeakSuspects = append(rep.WeakSuspects, id)
		} else {
			rep.Suspects = append(rep.Suspects, id)
		}
	}
	return rep
}

func sortInstrs(ids []model.InstrID) {
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Class != ids[j].Class {
			return ids[i].Class < ids[j].Class
		}
		return ids[i].Variant < ids[j].Variant
	})
}

// SuspectScore ranks one instruction's statistical suspicion.
type SuspectScore struct {
	ID model.InstrID
	// FailingMean and PassingMean are mean per-run usage counts.
	FailingMean, PassingMean float64
	// FailingRuns counts failing runs that used the instruction at all.
	FailingRuns int
	// Score is FailingMean / (PassingMean + 1): instructions hammered by
	// failing runs and barely touched by passing ones float to the top.
	Score float64
}

// RankSuspects scores every instruction seen in failing runs and returns
// the topK by score. Unlike the strict intersection of AttributeSuspects,
// ranking handles defects spanning several instructions where different
// testcases trigger different variants — the statistical narrowing the
// paper performs when no instruction is common to all failures.
func RankSuspects(results []RunResult, topK int) []SuspectScore {
	type acc struct {
		fSum, pSum float64
		fRuns      int
	}
	byInstr := map[model.InstrID]*acc{}
	var fN, pN int
	for _, res := range results {
		if res.Failed {
			fN++
		} else {
			pN++
		}
		for id, n := range res.InstrCounts {
			a := byInstr[id]
			if a == nil {
				a = &acc{}
				byInstr[id] = a
			}
			if res.Failed {
				a.fSum += n
				if n > 0 {
					a.fRuns++
				}
			} else {
				a.pSum += n
			}
		}
	}
	if fN == 0 {
		return nil
	}
	ids := make([]model.InstrID, 0, len(byInstr))
	for id := range byInstr {
		ids = append(ids, id)
	}
	sortInstrs(ids)
	var out []SuspectScore
	for _, id := range ids {
		a := byInstr[id]
		if a.fRuns == 0 {
			continue
		}
		s := SuspectScore{
			ID:          id,
			FailingMean: a.fSum / float64(fN),
			FailingRuns: a.fRuns,
		}
		if pN > 0 {
			s.PassingMean = a.pSum / float64(pN)
		}
		s.Score = s.FailingMean / (s.PassingMean + 1)
		out = append(out, s)
	}
	// Presence across failing runs is the primary evidence: a defect's
	// instruction appears in every testcase that fails through it, while
	// a single failing run's private instructions appear once. The usage
	// ratio breaks ties.
	sort.Slice(out, func(i, j int) bool {
		if out[i].FailingRuns != out[j].FailingRuns {
			return out[i].FailingRuns > out[j].FailingRuns
		}
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		a, b := out[i].ID, out[j].ID
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		return a.Variant < b.Variant
	})
	if topK > 0 && len(out) > topK {
		out = out[:topK]
	}
	return out
}

// ContextSuspects extracts the instructions the toolchain pointed at
// directly via preserved context (the SIMD1 path of Section 4.1), most
// frequent first.
func ContextSuspects(results []RunResult) []model.InstrID {
	counts := map[model.InstrID]int{}
	for _, res := range results {
		// Compiled-path results carry columns: scan the two relevant
		// columns instead of walking whole records, skipping results with
		// no preserved context at all in one flat pass.
		if cols := res.Columns; cols != nil {
			if stats.CountTrue(cols.HasContext) == 0 {
				continue
			}
			for i, has := range cols.HasContext {
				if has {
					counts[cols.ContextInstr[i]]++
				}
			}
			continue
		}
		for _, rec := range res.Records {
			if rec.HasContext {
				counts[rec.ContextInstr]++
			}
		}
	}
	out := make([]model.InstrID, 0, len(counts))
	for id := range counts {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		if counts[out[i]] != counts[out[j]] {
			return counts[out[i]] > counts[out[j]]
		}
		a, b := out[i], out[j]
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		return a.Variant < b.Variant
	})
	return out
}

// UsageRatio compares how heavily failing vs passing testcases used an
// instruction — the "instruction usage stress" evidence of Observation 10
// (failed testcases use the defective instruction orders of magnitude more
// than passing ones that also touch it). It returns the mean per-run usage
// in failing and passing runs.
func UsageRatio(results []RunResult, id model.InstrID) (failingMean, passingMean float64) {
	var fSum, pSum float64
	var fN, pN int
	for _, res := range results {
		n := res.InstrCounts[id]
		if res.Failed {
			fSum += n
			fN++
		} else {
			pSum += n
			pN++
		}
	}
	if fN > 0 {
		failingMean = fSum / float64(fN)
	}
	if pN > 0 {
		passingMean = pSum / float64(pN)
	}
	return failingMean, passingMean
}
