package testkit

import (
	"fmt"
	"sort"
	"strings"

	"farron/internal/model"
)

// Fingerprint renders every field of every testcase deterministically (map
// keys sorted), so any change to the generated suite — a new field, a
// different generation algorithm, a mutation slipping past the freeze —
// shows up as a different string. Two consumers rely on it: the testkit
// immutability test diffs it across calibration to pin the frozen-suite
// contract, and the engine's result cache folds it into every cache key so
// a suite-generation change invalidates all cached experiment results.
func (s *Suite) Fingerprint() string {
	var b strings.Builder
	for _, tc := range s.Testcases {
		fmt.Fprintf(&b, "%s|%s|%v|%v|%.17g|%v|%d|%.17g|",
			tc.ID, tc.Name, tc.Feature, tc.DataTypes, tc.HeatIntensity,
			tc.MultiThreaded, tc.Complexity, tc.IterPerSec)
		ids := make([]model.InstrID, 0, len(tc.Mix))
		for id := range tc.Mix {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool {
			if ids[i].Class != ids[j].Class {
				return ids[i].Class < ids[j].Class
			}
			return ids[i].Variant < ids[j].Variant
		})
		for _, id := range ids {
			fmt.Fprintf(&b, "%v=%.17g,", id, tc.Mix[id])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
