package testkit

import (
	"time"

	"farron/internal/model"
)

// runRNGBlock is the block-buffer size (in uint64 draws) the compiled run
// paths attach to their per-run substream. Runs draw tens to a few hundred
// values; 64 amortizes the per-draw call overhead while bounding the
// discarded tail (at most 63 pre-drawn values die with the substream when
// the run ends — the substream is re-derived before its next use, so the
// observed sequence is unaffected).
const runRNGBlock = 64

// runArena is the per-Runner reusable storage behind the compiled run
// paths: every slice and map a run needs is kept here and reset — not
// reallocated — between runs, which is what drives TestRunStepAllocs to
// zero. A Runner is owned by one goroutine, so the arena needs no locking.
//
// Reset contract: a RunResult returned by Run/RunParallel aliases the
// arena (Records, Columns, InstrCounts); it is valid until the next
// Run/RunParallel call on the same Runner. Callers that retain results
// across runs must Clone them. The reference paths (runReference,
// runParallelReference) never touch the arena — they allocate fresh
// storage every run, so the compiled-vs-reference equality tests would
// catch any aliasing bug in the compiled paths.
type runArena struct {
	// counts accumulates per-flat-mix-entry instruction executions.
	counts []float64
	// plan holds the run's compiled defect entries (see compileRun).
	plan []runDefect
	// rows is the row-form record storage RunResult.Records points into.
	rows []model.SDCRecord
	// cols is the columnar record storage, built natively during the run.
	cols model.RecordColumns
	// instrs is the InstrCounts map, cleared (not reallocated) per run.
	instrs map[model.InstrID]float64
	// keyBuf holds the formatted virtual-clock stamp for substream
	// derivation (see appendDuration).
	keyBuf []byte
	// rngBuf is the block buffer attached to the run substream.
	rngBuf []uint64
}

// floatCounts returns a zeroed float64 slice of length n backed by the
// arena.
func (a *runArena) floatCounts(n int) []float64 {
	if cap(a.counts) < n {
		a.counts = make([]float64, n)
	}
	a.counts = a.counts[:n]
	for i := range a.counts {
		a.counts[i] = 0
	}
	return a.counts
}

// instrCounts fills the arena's InstrCounts map from the flat mix and the
// accumulated per-entry counts, reusing the map's buckets across runs.
func (a *runArena) instrCounts(flat []InstrUsage, counts []float64) map[model.InstrID]float64 {
	if a.instrs == nil {
		a.instrs = make(map[model.InstrID]float64, len(flat))
	} else {
		clear(a.instrs)
	}
	for i := range flat {
		a.instrs[flat[i].Instr] = counts[i]
	}
	return a.instrs
}

// appendDuration appends time.Duration(d).String() to dst byte-for-byte
// without allocating. Run/RunParallel key their per-run substream on the
// virtual-clock stamp; the stdlib String call was the last per-run string
// allocation, and the derivation hash is byte-sensitive, so this must
// reproduce the stdlib format exactly (TestAppendDurationMatchesStdlib
// pins it against the real String over a structured + randomized sweep).
func appendDuration(dst []byte, d time.Duration) []byte {
	var buf [32]byte
	w := len(buf)
	u := uint64(d)
	neg := d < 0
	if neg {
		u = -u
	}
	if u < uint64(time.Second) {
		// Sub-second: value scaled to a leading unit of ns/µs/ms.
		if u == 0 {
			return append(dst, '0', 's')
		}
		var prec int
		w--
		buf[w] = 's'
		w--
		switch {
		case u < uint64(time.Microsecond):
			prec = 0
			buf[w] = 'n'
		case u < uint64(time.Millisecond):
			prec = 3
			// U+00B5 'µ' is two bytes.
			w--
			copy(buf[w:], "µ")
		default:
			prec = 6
			buf[w] = 'm'
		}
		w, u = fmtFrac(buf[:w], u, prec)
		w = fmtInt(buf[:w], u)
	} else {
		w--
		buf[w] = 's'
		w, u = fmtFrac(buf[:w], u, 9)
		w = fmtInt(buf[:w], u%60)
		u /= 60
		if u > 0 {
			w--
			buf[w] = 'm'
			w = fmtInt(buf[:w], u%60)
			u /= 60
			if u > 0 {
				w--
				buf[w] = 'h'
				w = fmtInt(buf[:w], u)
			}
		}
	}
	if neg {
		w--
		buf[w] = '-'
	}
	return append(dst, buf[w:]...)
}

// fmtFrac writes the prec trailing decimal digits of v (with leading '.')
// into the tail of buf, omitting trailing zeros — and the '.' when the
// whole fraction is zero. It returns the new write index and v scaled
// down by 10^prec.
func fmtFrac(buf []byte, v uint64, prec int) (nw int, nv uint64) {
	w := len(buf)
	printed := false
	for i := 0; i < prec; i++ {
		digit := v % 10
		printed = printed || digit != 0
		if printed {
			w--
			buf[w] = byte(digit) + '0'
		}
		v /= 10
	}
	if printed {
		w--
		buf[w] = '.'
	}
	return w, v
}

// fmtInt writes v in decimal into the tail of buf and returns the new
// write index.
func fmtInt(buf []byte, v uint64) int {
	w := len(buf)
	if v == 0 {
		w--
		buf[w] = '0'
		return w
	}
	for v > 0 {
		w--
		buf[w] = byte(v%10) + '0'
		v /= 10
	}
	return w
}
