// Package testkit implements the SDC detection toolchain of Section 2.3: a
// suite of 633 testcases plus a framework that selects testcases, controls
// their execution order and resource allocation, runs them against a
// processor on a thermal model, and checks for SDC occurrences.
//
// Testcases simulate cloud workloads at three complexity tiers (instruction
// loops, library calls, application logic). Each carries a per-virtual-
// instruction usage mix; a defect is detectable by a testcase when their
// instruction sets overlap — and the usage magnitude sets the setting's
// occurrence frequency (the "instruction usage stress" triggering condition
// of Observation 10).
package testkit

import (
	"fmt"
	"sort"

	"farron/internal/model"
	"farron/internal/simrand"
)

// SuiteSize is the number of testcases in the manufacturer's toolchain.
const SuiteSize = 633

// NominalUsage is the per-iteration usage count of a dedicated stress
// testcase's primary instruction; stress values are relative to it.
const NominalUsage = 300

// Complexity tiers of Section 2.3.
const (
	// ComplexityLoop executes a specific instruction within a loop.
	ComplexityLoop = 1
	// ComplexityLibrary calls functions in libraries.
	ComplexityLibrary = 2
	// ComplexityApp invokes application logics.
	ComplexityApp = 3
)

// Testcase is one toolchain workload.
//
//sdclint:frozen written only during suite generation and buildIndex
type Testcase struct {
	// ID is the stable identifier ("tc-001".."tc-633").
	ID string
	// Name is a human-readable description.
	Name string
	// Feature is the processor feature the testcase targets.
	Feature model.Feature
	// DataTypes are the operand datatypes whose results the testcase
	// checks (empty for pure consistency testcases).
	DataTypes []model.DataType
	// Mix is usage count per loop iteration per virtual instruction.
	Mix map[model.InstrID]float64
	// HeatIntensity scales the testcase's power draw (thermal model).
	HeatIntensity float64
	// MultiThreaded testcases run threads on several cores and can
	// detect consistency defects (Section 4.1: consistency SDCs need
	// multi-threaded tests).
	MultiThreaded bool
	// Complexity is the tier (loop / library / application).
	Complexity int
	// IterPerSec is loop iterations per second (instrumentation counts).
	IterPerSec float64

	// flatMix is Mix flattened into a slice sorted by instruction, built
	// once by Suite.buildIndex (nil in a reference suite); ord is the
	// testcase's position in Suite.Testcases. Both are hot-path indexes,
	// invisible to Fingerprint and the cache keys derived from it.
	flatMix []InstrUsage
	ord     int
}

// UsesInstr reports whether the testcase exercises the virtual instruction.
func (tc *Testcase) UsesInstr(id model.InstrID) bool { return tc.Mix[id] > 0 }

// ChecksDataType reports whether the testcase validates results of dt.
func (tc *Testcase) ChecksDataType(dt model.DataType) bool {
	for _, d := range tc.DataTypes {
		if d == dt {
			return true
		}
	}
	return false
}

// Suite is the full toolchain testcase collection.
//
// A Suite is immutable once NewSuite returns: generation and index
// construction (buildIndex) are the only phases that write Testcases, byID,
// the testcases' fields or the query indexes. Calibration
// (CalibrateProfile) and queries (FailingTestcases, ByFeature, InstrUsers)
// mutate profiles, allocate fresh slices or return shared read-only index
// slices, never writing the suite — the parallel engine shares one Suite
// across every shard of a run without copies or locks on the strength of
// this contract, and the immutability test (immutability_test.go) pins it.
//
//sdclint:frozen immutable after NewSuite; shared lock-free across shards
type Suite struct {
	Testcases []*Testcase
	byID      map[string]*Testcase
	rng       *simrand.Source

	// instrUsers and byFeature are the buildIndex query indexes (nil in a
	// reference suite); reference marks a NewReferenceSuite construction,
	// which pins every consumer to the retained naive scan paths.
	instrUsers map[model.InstrID][]*Testcase
	byFeature  map[model.Feature][]*Testcase
	reference  bool
}

// featurePlan is the per-feature testcase allocation (sums to SuiteSize).
var featurePlan = []struct {
	feature model.Feature
	count   int
}{
	{model.FeatureALU, 140},
	{model.FeatureVecUnit, 120},
	{model.FeatureFPU, 150},
	{model.FeatureCache, 120},
	{model.FeatureTrxMem, 103},
}

// classesFor maps a feature to the instruction classes its testcases draw
// their primary instructions from.
func classesFor(f model.Feature) []model.InstrClass {
	switch f {
	case model.FeatureALU:
		return []model.InstrClass{model.InstrIntArith, model.InstrBitOp}
	case model.FeatureVecUnit:
		return []model.InstrClass{model.InstrVecMulAdd, model.InstrVecMisc}
	case model.FeatureFPU:
		return []model.InstrClass{model.InstrFPArith, model.InstrFPTrig}
	case model.FeatureCache:
		return []model.InstrClass{model.InstrLoadStore, model.InstrAtomic}
	case model.FeatureTrxMem:
		return []model.InstrClass{model.InstrTrxRegion, model.InstrAtomic}
	default:
		return nil
	}
}

// datatypesFor maps a feature to the datatype pool its testcases validate.
func datatypesFor(f model.Feature) []model.DataType {
	switch f {
	case model.FeatureALU:
		return []model.DataType{
			model.DTInt16, model.DTInt32, model.DTUint32, model.DTBit,
			model.DTByte, model.DTBin8, model.DTBin16, model.DTBin32, model.DTBin64,
		}
	case model.FeatureVecUnit:
		return []model.DataType{
			model.DTFloat32, model.DTFloat64, model.DTInt32, model.DTUint32,
			model.DTBin32, model.DTBin64, model.DTInt16,
		}
	case model.FeatureFPU:
		return []model.DataType{model.DTFloat32, model.DTFloat64, model.DTFloat64x}
	default:
		return nil
	}
}

// NewSuite generates the deterministic 633-testcase suite from a seed.
func NewSuite(rng *simrand.Source) *Suite {
	return newSuite(rng, false)
}

// NewReferenceSuite is NewSuite with the compiled hot-path indexes left
// unbuilt: every query and run over the returned suite takes the naive
// scan implementations the indexes replaced, byte-for-byte the pre-
// compilation behavior. The compiled-vs-reference determinism test diffs
// full-registry output across the two constructions; production code
// always uses NewSuite.
func NewReferenceSuite(rng *simrand.Source) *Suite {
	return newSuite(rng, true)
}

func newSuite(rng *simrand.Source, reference bool) *Suite {
	s := &Suite{byID: map[string]*Testcase{}, rng: rng.Derive("testkit-suite"), reference: reference}
	n := 0
	for _, fp := range featurePlan {
		for i := 0; i < fp.count; i++ {
			n++
			tc := s.generate(n, fp.feature)
			s.Testcases = append(s.Testcases, tc)
			s.byID[tc.ID] = tc
		}
	}
	if len(s.Testcases) != SuiteSize {
		panic(fmt.Sprintf("testkit: generated %d testcases, want %d", len(s.Testcases), SuiteSize))
	}
	if !reference {
		s.buildIndex()
	}
	return s
}

// Reference reports whether the suite was built by NewReferenceSuite and
// therefore pins the naive scan paths.
func (s *Suite) Reference() bool { return s.reference }

// generate builds testcase number n for the feature.
func (s *Suite) generate(n int, f model.Feature) *Testcase {
	id := fmt.Sprintf("tc-%03d", n)
	r := s.rng.Derive("tc", id)

	complexity := 1 + r.Intn(3)
	classes := classesFor(f)

	mix := map[model.InstrID]float64{}
	// Primary instructions: a few variants of the feature's classes with
	// heavy usage; deeper-tier testcases touch more variants with more
	// spread-out usage.
	nPrimary := 1 + r.Intn(2+complexity)
	for i := 0; i < nPrimary; i++ {
		id := model.InstrID{
			Class:   classes[r.Intn(len(classes))],
			Variant: r.Intn(model.InstrVariants),
		}
		// Usage spans many orders of magnitude across testcases — the
		// "instruction usage stress" spread of Observation 10: failed
		// testcases use a defective instruction several orders of
		// magnitude more than other testcases that merely touch it,
		// and the low-usage settings are the ones with raised observed
		// triggering temperatures (MIX1's testcase C needed 59 ℃).
		mix[id] += r.LogUniform(1e-4, float64(NominalUsage)*2)
	}
	// Background control-flow traffic every testcase executes but never
	// validates. Confined to the branch class so a defect in a compute
	// or memory feature cannot alias into an unrelated testcase.
	mix[model.InstrID{Class: model.InstrBranch, Variant: r.Intn(model.InstrVariants)}] = r.Range(10, 80)
	if complexity >= ComplexityLibrary {
		bg := model.InstrID{Class: model.InstrBranch, Variant: r.Intn(model.InstrVariants)}
		mix[bg] += r.Range(5, 40)
	}

	dtPool := datatypesFor(f)
	var dts []model.DataType
	if len(dtPool) > 0 {
		k := 1 + r.Intn(3)
		if k > len(dtPool) {
			k = len(dtPool)
		}
		for _, i := range r.PickN(len(dtPool), k) {
			dts = append(dts, dtPool[i])
		}
	}

	multi := f == model.FeatureCache || f == model.FeatureTrxMem || r.Bool(0.2)

	name := fmt.Sprintf("%s-%s-%d", f, tierName(complexity), n)
	return &Testcase{
		ID: id, Name: name, Feature: f,
		DataTypes:     dts,
		Mix:           mix,
		HeatIntensity: r.Range(0.5, 1.3),
		MultiThreaded: multi,
		Complexity:    complexity,
		IterPerSec:    r.LogUniform(1e3, 1e6) / float64(complexity),
	}
}

func tierName(c int) string {
	switch c {
	case ComplexityLoop:
		return "loop"
	case ComplexityLibrary:
		return "lib"
	default:
		return "app"
	}
}

// ByID returns a testcase by its ID, or nil.
func (s *Suite) ByID(id string) *Testcase { return s.byID[id] }

// ByFeature returns the testcases targeting feature f, in suite order.
// The returned slice is an index shared across callers — do not mutate.
func (s *Suite) ByFeature(f model.Feature) []*Testcase {
	if s.byFeature != nil {
		return s.byFeature[f]
	}
	var out []*Testcase
	for _, tc := range s.Testcases {
		if tc.Feature == f {
			out = append(out, tc)
		}
	}
	return out
}

// InstrUsers returns the testcases whose mix includes the virtual
// instruction, in suite order. The returned slice is an index shared
// across callers — do not mutate.
func (s *Suite) InstrUsers(id model.InstrID) []*Testcase {
	if s.instrUsers != nil {
		return s.instrUsers[id]
	}
	var out []*Testcase
	for _, tc := range s.Testcases {
		if tc.UsesInstr(id) {
			out = append(out, tc)
		}
	}
	return out
}

// Rng exposes the suite's derived random source for components (the runner,
// corruptor masks) that must stay consistent with the suite's seed.
func (s *Suite) Rng() *simrand.Source { return s.rng }

// SortedIDs returns all testcase IDs sorted.
func (s *Suite) SortedIDs() []string {
	ids := make([]string, len(s.Testcases))
	for i, tc := range s.Testcases {
		ids[i] = tc.ID
	}
	sort.Strings(ids)
	return ids
}
