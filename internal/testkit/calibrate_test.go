package testkit

import (
	"testing"
	"time"

	"farron/internal/defect"
	"farron/internal/model"
	"farron/internal/simrand"
)

func TestCalibrateLibraryHitsTable3(t *testing.T) {
	rng := simrand.New(2001)
	suite := NewSuite(rng)
	lib := defect.Library(rng)
	for _, p := range lib {
		got := suite.CalibrateProfile(p)
		// Calibration must land on the Table 3 error count, allowing
		// +2 for unavoidable overshoot when one variant spans several
		// testcases.
		if got < p.TargetErrCount || got > p.TargetErrCount+2 {
			t.Errorf("%s: calibrated #err = %d, want %d(+2)", p.CPUID, got, p.TargetErrCount)
		}
		// Recount independently.
		if recount := len(suite.FailingTestcases(p)); recount != got {
			t.Errorf("%s: recount %d != calibrated %d", p.CPUID, recount, got)
		}
	}
}

func TestCalibratePreservesSeeds(t *testing.T) {
	rng := simrand.New(2002)
	suite := NewSuite(rng)
	lib := defect.Library(rng)
	suspect := model.InstrID{Class: model.InstrFPTrig, Variant: 17}
	for _, p := range lib {
		suite.CalibrateProfile(p)
		if p.CPUID == "FPU1" || p.CPUID == "FPU2" {
			if !p.Defects[0].AffectedInstrs[suspect] {
				t.Errorf("%s lost its arctangent seed", p.CPUID)
			}
		}
	}
}

func TestCalibrateIdempotentWhenSatisfied(t *testing.T) {
	rng := simrand.New(2003)
	suite := NewSuite(rng)
	p := defect.Library(rng)[0]
	first := suite.CalibrateProfile(p)
	size := len(p.Defects[0].AffectedInstrs)
	second := suite.CalibrateProfile(p)
	if second != first {
		t.Errorf("second calibration changed count %d -> %d", first, second)
	}
	if len(p.Defects[0].AffectedInstrs) != size {
		t.Error("second calibration grew the instruction set")
	}
}

func TestCalibrateAll(t *testing.T) {
	rng := simrand.New(2004)
	suite := NewSuite(rng)
	lib := defect.Library(rng)
	counts := suite.CalibrateAll(lib)
	if len(counts) != len(lib) {
		t.Fatalf("counts for %d profiles, want %d", len(counts), len(lib))
	}
	for _, p := range lib {
		if counts[p.CPUID] < p.TargetErrCount {
			t.Errorf("%s under target: %d < %d", p.CPUID, counts[p.CPUID], p.TargetErrCount)
		}
	}
}

func TestObservation11MostTestcasesIneffective(t *testing.T) {
	// Observation 11 is measured on "a production environment with tens
	// of thousands of CPUs" — at a 3.61-per-10k rate, roughly a dozen
	// faulty processors — and finds 560/633 testcases detected nothing.
	// Fleet defects cluster on arch-vulnerable instructions (Section 6.1:
	// a batch is vulnerable in the same way), so the effective set stays
	// small.
	rng := simrand.New(2005)
	suite := NewSuite(rng)
	effective := map[string]bool{}
	// A 30k-CPU environment dominated by three arch batches.
	archs := []model.MicroArch{"M8", "M1", "M6"}
	for i := 0; i < 14; i++ {
		p := defect.FleetFaulty(rng, settingID(i), archs[i%len(archs)])
		for _, tc := range suite.FailingTestcases(p) {
			effective[tc.ID] = true
		}
	}
	ineffective := SuiteSize - len(effective)
	if ineffective < 500 {
		t.Errorf("ineffective testcases = %d/633, want the large majority (paper: 560)", ineffective)
	}
	if ineffective == SuiteSize {
		t.Error("no testcase is effective; detection is broken")
	}
}

func settingID(i int) string {
	return "fleet-cpu-" + string(rune('a'+i/26)) + string(rune('a'+i%26))
}

func TestAttributeSuspectsFindsArctangent(t *testing.T) {
	// Reproduce the Section 4.1 result: running all FPU testcases on
	// FPU1 and attributing suspects statistically should surface the
	// arctangent variant.
	f := newFixture(t)
	r := f.runner(t, "FPU1")
	var results []RunResult
	hot := 60.0
	for _, tc := range f.suite.ByFeature(model.FeatureFPU) {
		// Clone: accumulated results must survive later runs' arena
		// resets.
		results = append(results, r.Run(tc, RunOpts{
			Core: 0, Duration: 3 * time.Minute, FixedTempC: &hot,
		}).Clone())
	}
	rep := AttributeSuspects(results)
	if rep.FailingCount == 0 {
		t.Fatal("no failing runs")
	}
	suspect := model.InstrID{Class: model.InstrFPTrig, Variant: 17}
	found := false
	for _, id := range append(rep.Suspects, rep.WeakSuspects...) {
		if id == suspect {
			found = true
		}
	}
	if !found {
		t.Errorf("arctangent suspect not attributed; suspects=%v weak=%v",
			rep.Suspects, rep.WeakSuspects)
	}
}

func TestAttributeSuspectsEmptyOnNoFailures(t *testing.T) {
	rep := AttributeSuspects([]RunResult{
		{Failed: false, InstrCounts: map[model.InstrID]float64{{Class: model.InstrBranch, Variant: 1}: 10}},
	})
	if len(rep.Suspects) != 0 || rep.FailingCount != 0 || rep.PassingCount != 1 {
		t.Errorf("unexpected report %+v", rep)
	}
}

func TestUsageRatio(t *testing.T) {
	id := model.InstrID{Class: model.InstrFPTrig, Variant: 17}
	results := []RunResult{
		{Failed: true, InstrCounts: map[model.InstrID]float64{id: 1000}},
		{Failed: true, InstrCounts: map[model.InstrID]float64{id: 3000}},
		{Failed: false, InstrCounts: map[model.InstrID]float64{id: 2}},
	}
	f, p := UsageRatio(results, id)
	if f != 2000 || p != 2 {
		t.Errorf("UsageRatio = %v/%v", f, p)
	}
}
