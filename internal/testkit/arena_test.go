package testkit

import (
	"math"
	"reflect"
	"testing"
	"time"

	"farron/internal/simrand"
)

// TestAppendDurationMatchesStdlib pins appendDuration byte-for-byte
// against time.Duration.String: the per-run substream keys hash these
// bytes, so any divergence silently changes every draw of the run.
func TestAppendDurationMatchesStdlib(t *testing.T) {
	structured := []time.Duration{
		0, 1, -1, 999, 1000, 1001, 999_999, 1_000_000, 1_000_001,
		999_999_999, time.Second, time.Second + 1,
		1500 * time.Millisecond, 59 * time.Second, time.Minute,
		time.Minute + 30*time.Second, 61 * time.Minute, time.Hour,
		90*time.Minute + 12*time.Second + 345*time.Nanosecond,
		26 * time.Hour, 1000 * time.Hour, 5 * time.Microsecond,
		-5 * time.Microsecond, -90 * time.Minute,
		time.Duration(math.MaxInt64), time.Duration(math.MinInt64),
	}
	for _, d := range structured {
		got := string(appendDuration(nil, d))
		if want := d.String(); got != want {
			t.Errorf("appendDuration(%d) = %q, want %q", int64(d), got, want)
		}
	}
	// Randomized sweep across magnitudes (log-uniform so sub-second
	// formats get coverage too).
	rng := simrand.New(1234)
	for i := 0; i < 20000; i++ {
		mag := rng.LogUniform(1, float64(math.MaxInt64)/2)
		d := time.Duration(int64(mag))
		if rng.Bool(0.5) {
			d = -d
		}
		got := string(appendDuration(nil, d))
		if want := d.String(); got != want {
			t.Fatalf("appendDuration(%d) = %q, want %q", int64(d), got, want)
		}
	}
	// Appending must preserve the prefix.
	if got := string(appendDuration([]byte("x:"), time.Second)); got != "x:1s" {
		t.Errorf("prefix append = %q", got)
	}
}

// TestRunResultAliasesArenaUntilNextRun pins the arena reset contract:
// a compiled result's Records/Columns/InstrCounts alias the Runner's
// arena and are rewritten by the next run, while Clone detaches them.
func TestRunResultAliasesArenaUntilNextRun(t *testing.T) {
	tb, tc := benchRunner(t)
	hot := 85.0
	opts := RunOpts{Core: 8, Duration: time.Hour, FixedTempC: &hot}

	first := tb.Run(tc, opts)
	if !first.Failed || first.Columns == nil {
		t.Fatalf("fixture run produced no records (failed=%v cols=%v)", first.Failed, first.Columns)
	}
	snapshot := first.Clone()
	if !reflect.DeepEqual(snapshot.Records, first.Records) {
		t.Fatal("Clone changed record content")
	}
	if snapshot.Columns.Len() != first.Columns.Len() {
		t.Fatal("Clone changed column length")
	}

	second := tb.Run(tc, opts)
	// The arena was reset: both results alias the same storage.
	if len(first.Records) > 0 && len(second.Records) > 0 &&
		&first.Records[0] != &second.Records[0] {
		t.Fatal("expected compiled results to share the arena's record storage")
	}
	// The clone survived.
	if !reflect.DeepEqual(snapshot.Records, snapshot.Columns.AppendRowsTo(nil)) {
		t.Fatal("cloned rows and columns disagree after arena reset")
	}
	for i := range snapshot.Records {
		if snapshot.Records[i].TestcaseID != tc.ID {
			t.Fatal("cloned record corrupted by subsequent run")
		}
	}
}

// TestColumnsMatchRows verifies the compiled path's columnar records are
// exactly its row records, for both Run and RunParallel.
func TestColumnsMatchRows(t *testing.T) {
	tb, tc := benchRunner(t)
	hot := 85.0
	res := tb.Run(tc, RunOpts{Core: 8, Duration: time.Hour, FixedTempC: &hot})
	if res.Columns == nil {
		t.Fatal("compiled Run returned nil Columns")
	}
	if len(res.Records) == 0 {
		t.Fatal("fixture run produced no records; the equality check would be vacuous")
	}
	if got := res.Columns.AppendRowsTo(nil); !reflect.DeepEqual(got, res.Records) {
		t.Fatalf("Run columns != rows: %d vs %d records", len(got), len(res.Records))
	}
	resP := tb.RunParallel(tc, []int{2, 8, 9}, RunOpts{Duration: time.Hour, FixedTempC: &hot})
	if resP.Columns == nil {
		t.Fatal("compiled RunParallel returned nil Columns")
	}
	if got := resP.Columns.AppendRowsTo(nil); !reflect.DeepEqual(got, resP.Records) {
		t.Fatalf("RunParallel columns != rows: %d vs %d records", len(got), len(resP.Records))
	}
}

// TestPatternProbMemoized pins the hoisted setting pattern probability:
// the cached per-(testcase, defect) value must equal a fresh derivation —
// the substream is keyed only on loop-invariant IDs and never advances
// the parent, so memoizing it across runs is draw-sequence-neutral.
func TestPatternProbMemoized(t *testing.T) {
	tb, tc := benchRunner(t)
	p := tb.planFor(tc)
	if len(p.defects) == 0 {
		t.Fatal("fixture testcase compiled to an empty plan")
	}
	for i := range p.defects {
		e := &p.defects[i]
		if fresh := e.d.SettingPatternProb(tc.ID, tb.suite.rng); e.patProb != fresh {
			t.Errorf("defect %s: cached patProb %v != fresh %v", e.d.ID, e.patProb, fresh)
		}
	}
	// And the cache returns the same plan on re-lookup.
	if tb.planFor(tc) != p {
		t.Error("planFor rebuilt a cached plan")
	}
}
