package testkit

import (
	"testing"

	"farron/internal/defect"
	"farron/internal/model"
	"farron/internal/simrand"
)

// TestSuiteImmutableAfterGeneration pins the contract the parallel engine
// relies on: calibration and failing-set queries mutate profiles, never the
// suite, so one Suite can be shared read-only by every shard of a parallel
// run (see DESIGN.md "Execution engine & parallelism").
func TestSuiteImmutableAfterGeneration(t *testing.T) {
	rng := simrand.New(99)
	s := NewSuite(rng)
	before := s.Fingerprint()

	for _, p := range defect.StudySet(rng) {
		s.CalibrateProfile(p)
		s.FailingTestcases(p)
		for _, d := range p.Defects {
			for _, dt := range model.AllDataTypes() {
				if d.AffectsDataType(dt) {
					d.Corruptor(dt, rng)
				}
			}
		}
	}

	if after := s.Fingerprint(); after != before {
		t.Error("suite testcases changed during calibration; the engine shares the suite across shards read-only")
	}
}
