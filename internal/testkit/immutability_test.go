package testkit

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"farron/internal/defect"
	"farron/internal/model"
	"farron/internal/simrand"
)

// suiteFingerprint renders every field of every testcase deterministically
// (map keys sorted), so any mutation of the suite shows up as a diff.
func suiteFingerprint(s *Suite) string {
	var b strings.Builder
	for _, tc := range s.Testcases {
		fmt.Fprintf(&b, "%s|%s|%v|%v|%.17g|%v|%d|%.17g|",
			tc.ID, tc.Name, tc.Feature, tc.DataTypes, tc.HeatIntensity,
			tc.MultiThreaded, tc.Complexity, tc.IterPerSec)
		ids := make([]model.InstrID, 0, len(tc.Mix))
		for id := range tc.Mix {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool {
			if ids[i].Class != ids[j].Class {
				return ids[i].Class < ids[j].Class
			}
			return ids[i].Variant < ids[j].Variant
		})
		for _, id := range ids {
			fmt.Fprintf(&b, "%v=%.17g,", id, tc.Mix[id])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestSuiteImmutableAfterGeneration pins the contract the parallel engine
// relies on: calibration and failing-set queries mutate profiles, never the
// suite, so one Suite can be shared read-only by every shard of a parallel
// run (see DESIGN.md "Execution engine & parallelism").
func TestSuiteImmutableAfterGeneration(t *testing.T) {
	rng := simrand.New(99)
	s := NewSuite(rng)
	before := suiteFingerprint(s)

	for _, p := range defect.StudySet(rng) {
		s.CalibrateProfile(p)
		s.FailingTestcases(p)
		for _, d := range p.Defects {
			for _, dt := range model.AllDataTypes() {
				if d.AffectsDataType(dt) {
					d.Corruptor(dt, rng)
				}
			}
		}
	}

	if after := suiteFingerprint(s); after != before {
		t.Error("suite testcases changed during calibration; the engine shares the suite across shards read-only")
	}
}
