package testkit

import (
	"testing"
	"time"

	"farron/internal/cpu"
	"farron/internal/defect"
	"farron/internal/model"
	"farron/internal/simrand"
	"farron/internal/thermal"
)

// fixture builds a calibrated library, suite and a runner for one named
// processor.
type fixture struct {
	suite    *Suite
	profiles map[string]*defect.Profile
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	rng := simrand.New(1001)
	suite := NewSuite(rng)
	f := &fixture{suite: suite, profiles: map[string]*defect.Profile{}}
	for _, p := range defect.Library(rng) {
		suite.CalibrateProfile(p)
		f.profiles[p.CPUID] = p
	}
	return f
}

func (f *fixture) runner(t *testing.T, cpuid string) *Runner {
	t.Helper()
	p, ok := f.profiles[cpuid]
	if !ok {
		t.Fatalf("no profile %s", cpuid)
	}
	proc := cpu.FromProfile(p)
	pkg := thermal.New(thermal.DefaultConfig(), proc.PhysCores, f.suite.Rng().Derive("thermal", cpuid))
	return NewRunner(f.suite, proc, pkg)
}

func TestHealthyProcessorNeverFails(t *testing.T) {
	f := newFixture(t)
	proc := cpu.NewHealthy("healthy-1", "M3", 20, 2)
	pkg := thermal.New(thermal.DefaultConfig(), 20, simrand.New(5))
	r := NewRunner(f.suite, proc, pkg)
	for i, tc := range f.suite.Testcases[:50] {
		res := r.Run(tc, RunOpts{Core: i % 20, Duration: 30 * time.Second})
		if res.Failed {
			t.Fatalf("healthy processor failed %s", tc.ID)
		}
	}
}

func TestApparentDefectDetected(t *testing.T) {
	f := newFixture(t)
	r := f.runner(t, "SIMD1")
	// SIMD1's defective core is 5 with a high-frequency apparent defect.
	failing := f.suite.FailingTestcases(f.profiles["SIMD1"])
	if len(failing) == 0 {
		t.Fatal("no failing testcases after calibration")
	}
	res := r.Run(failing[0], RunOpts{Core: 5, Duration: 10 * time.Minute, BurnIn: true})
	if !res.Failed {
		t.Errorf("apparent defect not detected in 10min burn-in run (mean temp %.1f)", res.MeanTempC)
	}
	for _, rec := range res.Records {
		if rec.DataType != model.DTFloat32 {
			t.Errorf("SIMD1 record datatype = %v, want f32", rec.DataType)
		}
		if rec.Expected == rec.Actual && rec.ExpectedHi == rec.ActualHi {
			t.Error("record has no corruption")
		}
		if rec.Core != 5 || rec.ProcessorID != "SIMD1" {
			t.Errorf("record identity wrong: %+v", rec)
		}
	}
}

func TestWrongCoreNotDetected(t *testing.T) {
	f := newFixture(t)
	r := f.runner(t, "SIMD1")
	failing := f.suite.FailingTestcases(f.profiles["SIMD1"])
	res := r.Run(failing[0], RunOpts{Core: 6, Duration: 10 * time.Minute, BurnIn: true})
	if res.Failed {
		t.Error("defect detected on non-defective core")
	}
}

func TestTrickyDefectNeedsHeat(t *testing.T) {
	f := newFixture(t)
	r := f.runner(t, "SIMD2")
	failing := f.suite.FailingTestcases(f.profiles["SIMD2"])
	if len(failing) == 0 {
		t.Fatal("SIMD2 has no failing testcases")
	}
	// Pick the highest-stress failing testcase so the hot run's expected
	// event count is meaningful.
	d := f.profiles["SIMD2"].Defects[0]
	var tc *Testcase
	bestStress := 0.0
	for _, cand := range failing {
		if s := SettingStress(cand, d); s > bestStress {
			bestStress = s
			tc = cand
		}
	}
	// Cold, single-core short test: SIMD2 (Tmin 62) cannot trigger.
	cold := r.Run(tc, RunOpts{Core: 2, Duration: 5 * time.Minute})
	if cold.Failed {
		t.Errorf("tricky defect triggered at %.1f degC mean", cold.MeanTempC)
	}
	// Pinned hot temperature, long enough for ~25 expected events
	// (tricky defects need high temperature AND long-term testing).
	hot := 75.0
	rate := d.RatePerMin(2, hot, bestStress)
	if rate <= 0 {
		t.Fatal("zero rate at 75 degC on the defective core")
	}
	dur := time.Duration(25 / rate * float64(time.Minute))
	if dur < 30*time.Minute {
		dur = 30 * time.Minute
	}
	if dur > 72*time.Hour {
		dur = 72 * time.Hour
	}
	long := r.Run(tc, RunOpts{Core: 2, Duration: dur, FixedTempC: &hot})
	if !long.Failed {
		t.Errorf("tricky defect not triggered at 75 degC pinned over %v (rate %.4g/min)", dur, rate)
	}
}

func TestConsistencyDefectNeedsMultithread(t *testing.T) {
	f := newFixture(t)
	p := f.profiles["CNST1"]
	d := p.Defects[0]
	for _, tc := range f.suite.Testcases {
		if !tc.MultiThreaded && DetectableBy(tc, d) {
			t.Errorf("single-threaded %s detects consistency defect", tc.ID)
		}
	}
	// Consistency records carry no value pattern.
	r := f.runner(t, "CNST1")
	failing := f.suite.FailingTestcases(p)
	if len(failing) == 0 {
		t.Fatal("CNST1 has no failing testcases")
	}
	res := r.Run(failing[0], RunOpts{Core: 3, Duration: 10 * time.Minute, BurnIn: true})
	for _, rec := range res.Records {
		if !rec.Consistency {
			t.Error("consistency record not marked")
		}
		if rec.Expected != 0 || rec.Actual != 0 {
			t.Error("consistency record carries value pattern")
		}
	}
}

func TestBurnInRaisesTemperature(t *testing.T) {
	f := newFixture(t)
	r := f.runner(t, "FPU1")
	tc := f.suite.ByFeature(model.FeatureFPU)[0]
	plain := r.Run(tc, RunOpts{Core: 0, Duration: 5 * time.Minute})
	r2 := f.runner(t, "FPU1")
	burn := r2.Run(tc, RunOpts{Core: 0, Duration: 5 * time.Minute, BurnIn: true})
	if tc.MultiThreaded {
		t.Skip("testcase is multithreaded; burn-in indistinct")
	}
	if burn.MaxTempC <= plain.MaxTempC {
		t.Errorf("burn-in max temp %.1f not above plain %.1f", burn.MaxTempC, plain.MaxTempC)
	}
}

func TestExtraStressCoresHeat(t *testing.T) {
	f := newFixture(t)
	r := f.runner(t, "FPU1")
	var single *Testcase
	for _, tc := range f.suite.ByFeature(model.FeatureFPU) {
		if !tc.MultiThreaded {
			single = tc
			break
		}
	}
	if single == nil {
		t.Fatal("no single-threaded FPU testcase")
	}
	alone := r.Run(single, RunOpts{Core: 0, Duration: 5 * time.Minute})
	r2 := f.runner(t, "FPU1")
	stressed := r2.Run(single, RunOpts{Core: 0, Duration: 5 * time.Minute, ExtraStressCores: 20})
	if stressed.MeanTempC <= alone.MeanTempC+5 {
		t.Errorf("stress cores raised temp only %.1f -> %.1f", alone.MeanTempC, stressed.MeanTempC)
	}
}

func TestFixedTempPinsTemperature(t *testing.T) {
	f := newFixture(t)
	r := f.runner(t, "FPU2")
	tcs := f.suite.FailingTestcases(f.profiles["FPU2"])
	temp := 52.0
	res := r.Run(tcs[0], RunOpts{Core: 8, Duration: 2 * time.Minute, FixedTempC: &temp})
	if res.MeanTempC != temp || res.MaxTempC != temp {
		t.Errorf("pinned temps = %.1f/%.1f, want %.1f", res.MeanTempC, res.MaxTempC, temp)
	}
	for _, rec := range res.Records {
		if rec.Temperature != temp {
			t.Errorf("record temp = %.1f", rec.Temperature)
		}
	}
}

func TestInstrumentationCounts(t *testing.T) {
	f := newFixture(t)
	r := f.runner(t, "FPU1")
	tc := f.suite.Testcases[0]
	res := r.Run(tc, RunOpts{Core: 0, Duration: time.Minute})
	if len(res.InstrCounts) != len(tc.Mix) {
		t.Errorf("instr counts cover %d instrs, mix has %d", len(res.InstrCounts), len(tc.Mix))
	}
	for id, usage := range tc.Mix {
		want := usage * tc.IterPerSec * 60
		got := res.InstrCounts[id]
		if got < want*0.99 || got > want*1.01 {
			t.Errorf("count(%v) = %g, want ~%g", id, got, want)
		}
	}
}

func TestRunAllAndFailedTestcases(t *testing.T) {
	f := newFixture(t)
	r := f.runner(t, "MIX2")
	// Short equal-duration sweep on the anchor core (multiplier 1).
	results := r.RunAll(1, 10*time.Second, true)
	if len(results) != SuiteSize {
		t.Fatalf("RunAll returned %d results", len(results))
	}
	failed := FailedTestcases(results)
	if len(failed) == 0 {
		t.Error("MIX2 sweep detected nothing")
	}
	// Every failed testcase must be in the calibrated failing set.
	allowed := map[string]bool{}
	for _, tc := range f.suite.FailingTestcases(f.profiles["MIX2"]) {
		allowed[tc.ID] = true
	}
	for _, id := range failed {
		if !allowed[id] {
			t.Errorf("unexpected failing testcase %s", id)
		}
	}
}

func TestRunnerDefaultsDuration(t *testing.T) {
	f := newFixture(t)
	r := f.runner(t, "FPU3")
	res := r.Run(f.suite.Testcases[0], RunOpts{Core: 0})
	if res.Duration != time.Minute {
		t.Errorf("default duration = %v", res.Duration)
	}
}

func TestNewRunnerPanicsOnSmallThermal(t *testing.T) {
	f := newFixture(t)
	proc := cpu.NewHealthy("h", "M3", 20, 2)
	pkg := thermal.New(thermal.DefaultConfig(), 4, simrand.New(1))
	defer func() {
		if recover() == nil {
			t.Error("undersized thermal package accepted")
		}
	}()
	NewRunner(f.suite, proc, pkg)
}
