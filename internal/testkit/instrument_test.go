package testkit

import (
	"testing"
	"time"

	"farron/internal/model"
)

func iidOf(c model.InstrClass, v int) model.InstrID { return model.InstrID{Class: c, Variant: v} }

func TestRankSuspectsPrefersSharedFailingInstr(t *testing.T) {
	shared := iidOf(model.InstrFPTrig, 17)
	privA := iidOf(model.InstrBranch, 3)
	privB := iidOf(model.InstrBranch, 40)
	popular := iidOf(model.InstrFPArith, 1)
	results := []RunResult{
		{Failed: true, InstrCounts: map[model.InstrID]float64{shared: 1e6, privA: 5e7, popular: 1e5}},
		{Failed: true, InstrCounts: map[model.InstrID]float64{shared: 2e6, privB: 8e7, popular: 2e5}},
		{Failed: false, InstrCounts: map[model.InstrID]float64{popular: 3e5}},
		{Failed: false, InstrCounts: map[model.InstrID]float64{popular: 1e5, shared: 10}},
	}
	ranked := RankSuspects(results, 3)
	if len(ranked) == 0 {
		t.Fatal("no suspects")
	}
	if ranked[0].ID != shared {
		t.Errorf("top suspect = %v, want the instruction shared by all failing runs", ranked[0].ID)
	}
	if ranked[0].FailingRuns != 2 {
		t.Errorf("failing runs = %d", ranked[0].FailingRuns)
	}
	if ranked[0].FailingMean != 1.5e6 {
		t.Errorf("failing mean = %v", ranked[0].FailingMean)
	}
}

func TestRankSuspectsNoFailures(t *testing.T) {
	results := []RunResult{
		{Failed: false, InstrCounts: map[model.InstrID]float64{iidOf(model.InstrBranch, 1): 5}},
	}
	if got := RankSuspects(results, 5); got != nil {
		t.Errorf("expected nil, got %v", got)
	}
}

func TestRankSuspectsTopK(t *testing.T) {
	counts := map[model.InstrID]float64{}
	for v := 0; v < 10; v++ {
		counts[iidOf(model.InstrIntArith, v)] = float64(v + 1)
	}
	results := []RunResult{{Failed: true, InstrCounts: counts}}
	if got := RankSuspects(results, 4); len(got) != 4 {
		t.Errorf("topK = %d results", len(got))
	}
	if got := RankSuspects(results, 0); len(got) != 10 {
		t.Errorf("topK=0 should return all, got %d", len(got))
	}
}

func TestContextSuspects(t *testing.T) {
	a := iidOf(model.InstrVecMulAdd, 9)
	b := iidOf(model.InstrVecMulAdd, 30)
	results := []RunResult{
		{Records: []model.SDCRecord{
			{HasContext: true, ContextInstr: a},
			{HasContext: true, ContextInstr: a},
			{HasContext: true, ContextInstr: b},
			{HasContext: false},
		}},
	}
	got := ContextSuspects(results)
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Errorf("ContextSuspects = %v", got)
	}
	if got := ContextSuspects(nil); len(got) != 0 {
		t.Errorf("empty input = %v", got)
	}
}

// TestContextSuspectsColumnarMatchesRows runs the compiled path (which
// carries both row and columnar record forms) and checks the columnar
// ContextSuspects branch agrees with the row walk on the same result.
func TestContextSuspectsColumnarMatchesRows(t *testing.T) {
	f := newFixture(t)
	r := f.runner(t, "SIMD1")
	failing := f.suite.FailingTestcases(f.profiles["SIMD1"])
	hot := 60.0
	res := r.Run(failing[0], RunOpts{Core: 5, Duration: 10 * time.Minute, FixedTempC: &hot})
	if res.Columns == nil || res.Columns.Len() == 0 {
		t.Fatal("compiled run produced no columns")
	}
	viaCols := ContextSuspects([]RunResult{res})
	rows := res
	rows.Columns = nil
	viaRows := ContextSuspects([]RunResult{rows})
	if len(viaCols) != len(viaRows) {
		t.Fatalf("columnar %v vs rows %v", viaCols, viaRows)
	}
	for i := range viaCols {
		if viaCols[i] != viaRows[i] {
			t.Fatalf("columnar %v vs rows %v", viaCols, viaRows)
		}
	}
	if len(viaCols) == 0 {
		t.Error("no context suspects from a SIMD1 run")
	}
}

func TestContextRecordsProduced(t *testing.T) {
	// SIMD1 has ContextProb 0.9: most of its records must carry the
	// incorrect-instruction context, and the context must be a truly
	// defective instruction used by the testcase.
	f := newFixture(t)
	r := f.runner(t, "SIMD1")
	d := f.profiles["SIMD1"].Defects[0]
	failing := f.suite.FailingTestcases(f.profiles["SIMD1"])
	hot := 60.0
	res := r.Run(failing[0], RunOpts{Core: 5, Duration: 10 * time.Minute, FixedTempC: &hot})
	if len(res.Records) == 0 {
		t.Fatal("no records")
	}
	withCtx := 0
	for _, rec := range res.Records {
		if rec.HasContext {
			withCtx++
			if !d.AffectedInstrs[rec.ContextInstr] {
				t.Fatalf("context instruction %v not defective", rec.ContextInstr)
			}
			tc := f.suite.ByID(rec.TestcaseID)
			if !tc.UsesInstr(rec.ContextInstr) {
				t.Fatalf("context instruction %v not used by %s", rec.ContextInstr, rec.TestcaseID)
			}
		}
	}
	frac := float64(withCtx) / float64(len(res.Records))
	if frac < 0.8 {
		t.Errorf("context fraction = %.2f, want ~0.9", frac)
	}
}
