// Hot-path compilation, suite side (see DESIGN.md "Hot-path compilation"):
// the suite-build-time indexes that turn the screening and runner inner
// loops from map scans into slice walks. Everything here is precomputed
// once in NewSuite and read-only afterwards, so it rides on the suite's
// immutability contract; a suite built by NewReferenceSuite skips the
// indexes entirely and every consumer falls back to the retained naive
// scan, which is what the compiled-vs-reference determinism test diffs
// against.

package testkit

import (
	"sort"

	"farron/internal/defect"
	"farron/internal/model"
)

// InstrUsage is one entry of a testcase's flattened instruction mix: a
// virtual instruction and its per-iteration usage count.
type InstrUsage struct {
	Instr model.InstrID
	Usage float64
}

// flattenMix flattens a usage-mix map into a slice sorted by instruction
// (class, then variant). The fixed order is what lets flat-mix consumers
// iterate without the map-order hazards the naive paths dodge per call.
func flattenMix(mix map[model.InstrID]float64) []InstrUsage {
	out := make([]InstrUsage, 0, len(mix))
	for id, usage := range mix {
		out = append(out, InstrUsage{Instr: id, Usage: usage})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Instr.Class != out[j].Instr.Class {
			return out[i].Instr.Class < out[j].Instr.Class
		}
		return out[i].Instr.Variant < out[j].Instr.Variant
	})
	return out
}

// FlatMix returns the testcase's mix flattened into a slice sorted by
// instruction. For suite testcases the slice is built once at construction
// and shared — callers must not mutate it.
func (tc *Testcase) FlatMix() []InstrUsage {
	if tc.flatMix != nil {
		return tc.flatMix
	}
	return flattenMix(tc.Mix)
}

// buildIndex precomputes the suite's query indexes after generation: each
// testcase's flattened mix and suite position, the instruction → users
// inverted index behind InstrUsers and FailingTestcases, and the feature →
// testcases index behind ByFeature. NewReferenceSuite skips this.
func (s *Suite) buildIndex() {
	s.instrUsers = map[model.InstrID][]*Testcase{}
	s.byFeature = map[model.Feature][]*Testcase{}
	for i, tc := range s.Testcases {
		tc.ord = i
		tc.flatMix = flattenMix(tc.Mix)
		s.byFeature[tc.Feature] = append(s.byFeature[tc.Feature], tc)
		for _, u := range tc.flatMix {
			if u.Usage > 0 {
				s.instrUsers[u.Instr] = append(s.instrUsers[u.Instr], tc)
			}
		}
	}
}

// detectableFlat is DetectableBy over the flattened mix: identical result,
// no map iteration — the overlap test walks the testcase's few mix entries
// with point lookups into the defect's affected set instead of ranging it.
func detectableFlat(tc *Testcase, d *defect.Defect) bool {
	if d.Class == model.ClassConsistency && !tc.MultiThreaded {
		return false
	}
	overlap := false
	for i := range tc.flatMix {
		u := &tc.flatMix[i]
		if u.Usage > 0 && d.AffectedInstrs[u.Instr] {
			overlap = true
			break
		}
	}
	if !overlap {
		return false
	}
	if d.Class == model.ClassComputation {
		for _, dt := range tc.DataTypes {
			if d.AffectsDataType(dt) {
				return true
			}
		}
		return false
	}
	return true
}

// settingStressFlat is Defect.Stress over the flattened mix. The affected
// usages are summed in the flat (sorted) order; the committed golden
// outputs and the cross-process fan-out equality pin that the sum is
// order-insensitive for every setting in play, and the compiled-vs-
// reference determinism test re-checks it against the map-order sum.
func settingStressFlat(tc *Testcase, d *defect.Defect) float64 {
	total := 0.0
	for i := range tc.flatMix {
		if d.AffectedInstrs[tc.flatMix[i].Instr] {
			total += tc.flatMix[i].Usage
		}
	}
	return total / NominalUsage
}
