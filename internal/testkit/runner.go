package testkit

import (
	"maps"
	"math"
	"time"

	"farron/internal/cpu"
	"farron/internal/defect"
	"farron/internal/inject"
	"farron/internal/model"
	"farron/internal/simrand"
	"farron/internal/thermal"
)

// RunOpts controls one testcase execution.
type RunOpts struct {
	// Core is the physical core under test.
	Core int
	// Duration is the test length.
	Duration time.Duration
	// BurnIn loads every core during the test to raise temperature
	// (Farron's testing-environment emphasis, Section 7.1).
	BurnIn bool
	// FixedTempC, when non-nil, pins the core temperature (the
	// stress-preheat methodology of Section 5 for temperature sweeps).
	FixedTempC *float64
	// ExtraStressCores loads this many other cores at full utilization
	// without testing them (the stress-vs-temperature separation
	// experiment of Section 5).
	ExtraStressCores int
}

// RunResult is the outcome of one testcase execution.
//
// Results of the compiled paths (Run/RunParallel on a non-reference suite)
// alias the Runner's arena: Records, Columns and InstrCounts are valid
// until the next Run/RunParallel call on the same Runner. Callers that
// retain results across runs must Clone them first. Reference-suite
// results are freshly allocated and never invalidated.
type RunResult struct {
	TestcaseID string
	Core       int
	Records    []model.SDCRecord
	// Columns is the columnar (structure-of-arrays) form of Records,
	// built natively by the compiled run paths for the stats pipeline.
	// It is nil on the reference paths, which stay row-oriented.
	Columns *model.RecordColumns
	// Failed is true when at least one SDC was observed.
	Failed bool
	// MeanTempC and MaxTempC summarize the core temperature during the
	// run.
	MeanTempC, MaxTempC float64
	Duration            time.Duration
	// InstrCounts is the Pin-style instrumentation: executions per
	// virtual instruction during the run (Section 4.1).
	InstrCounts map[model.InstrID]float64
}

// Clone returns a deep copy that stays valid after the owning Runner's
// arena is reset by its next run.
func (res RunResult) Clone() RunResult {
	if res.Records != nil {
		res.Records = append([]model.SDCRecord(nil), res.Records...)
	}
	res.InstrCounts = maps.Clone(res.InstrCounts)
	res.Columns = res.Columns.Clone()
	return res
}

// Runner executes testcases on a processor with a thermal model.
type Runner struct {
	suite *Suite
	proc  *cpu.Processor
	pkg   *thermal.Package
	now   time.Duration
	// scratch is the reusable substream the compiled run paths derive
	// into (one derivation per run, no allocation). A Runner is owned by
	// one goroutine, so reuse is safe.
	scratch simrand.Source
	// plans caches the per-testcase compiled defect plans (everything
	// about a (testcase, defect) pair that is independent of run options
	// and package utilization). Keyed by testcase pointer: suite
	// testcases are frozen after construction.
	plans map[*Testcase]*tcPlan
	// arena is the reusable per-run storage (see runArena).
	arena runArena
}

// NewRunner creates a runner. The thermal package must have at least as
// many cores as the processor.
func NewRunner(suite *Suite, proc *cpu.Processor, pkg *thermal.Package) *Runner {
	if pkg.NCores() < proc.PhysCores {
		panic("testkit: thermal package smaller than processor")
	}
	return &Runner{suite: suite, proc: proc, pkg: pkg, plans: map[*Testcase]*tcPlan{}}
}

// Suite returns the runner's testcase suite.
func (r *Runner) Suite() *Suite { return r.suite }

// Processor returns the processor under test.
func (r *Runner) Processor() *cpu.Processor { return r.proc }

// Thermal returns the thermal package.
func (r *Runner) Thermal() *thermal.Package { return r.pkg }

// Now returns accumulated simulated test time.
func (r *Runner) Now() time.Duration { return r.now }

// stepSlice is the simulation granularity of a test run.
const stepSlice = 5 * time.Second

// DetectableBy reports whether the defect is in-principle detectable by the
// testcase: their instruction sets overlap, and — for computation defects —
// the testcase validates one of the corrupted datatypes, while consistency
// defects additionally need a multi-threaded testcase (Section 4.1).
// Suite testcases answer from the flattened mix; testcases of a reference
// suite scan the maps naively.
func DetectableBy(tc *Testcase, d *defect.Defect) bool {
	if tc.flatMix != nil {
		return detectableFlat(tc, d)
	}
	if d.Class == model.ClassConsistency && !tc.MultiThreaded {
		return false
	}
	overlap := false
	for id := range d.AffectedInstrs {
		if tc.UsesInstr(id) {
			overlap = true
			break
		}
	}
	if !overlap {
		return false
	}
	if d.Class == model.ClassComputation {
		for _, dt := range tc.DataTypes {
			if d.AffectsDataType(dt) {
				return true
			}
		}
		return false
	}
	return true
}

// SettingStress returns the testcase's usage stress for the defect.
func SettingStress(tc *Testcase, d *defect.Defect) float64 {
	if tc.flatMix != nil {
		return settingStressFlat(tc, d)
	}
	return d.Stress(tc.Mix, NominalUsage)
}

// commonDataTypes returns datatypes both the testcase checks and the defect
// corrupts, in display order.
func commonDataTypes(tc *Testcase, d *defect.Defect) []model.DataType {
	var out []model.DataType
	for _, dt := range tc.DataTypes {
		if d.AffectsDataType(dt) {
			out = append(out, dt)
		}
	}
	return out
}

// runDefect is one compiled per-run defect entry: the defects that can
// consume a draw this run (detectable by the testcase, positive effective
// stress, a positive core multiplier on some processor core), with the
// temperature-independent rate factors and the per-record lookups
// (common datatypes, context instructions, the setting's pattern
// probability) hoisted out of the step loop. bms[c] is
// BaseFreqPerMin·CoreMultiplier(c) indexed by physical core id — the
// leading factor of Defect.RatePerMin in its exact association, so
// compiled rates are bit-identical to naive ones.
type runDefect struct {
	d         *defect.Defect
	bms       []float64
	stress    float64
	minTempC  float64
	slope     float64
	sat       float64
	dts       []model.DataType
	ctxInstrs []model.InstrID
	patProb   float64
}

// tcDefect is the cached, utilization-independent part of a runDefect:
// everything determined by the (testcase, defect) pair alone. The
// per-run compileRun pass only folds in the package utilization.
type tcDefect struct {
	d          *defect.Defect
	bms        []float64 // BaseFreqPerMin·CoreMultiplier(c) per phys core
	baseStress float64   // SettingStress(tc, d), before the util factor
	utilGain   float64
	minTempC   float64
	slope      float64
	sat        float64
	dts        []model.DataType
	ctxInstrs  []model.InstrID
	patProb    float64
}

// tcPlan is the per-testcase compiled defect plan a Runner caches across
// runs.
type tcPlan struct {
	defects []tcDefect
}

// planFor returns the cached compiled plan for tc, building it on first
// use. Dropped defects can never consume a draw for this testcase on this
// processor: not detectable, identically-zero setting stress, or a zero
// core multiplier on every physical core — the naive loop never drew for
// their zero rates (Poisson(0) consumes nothing), so caching is
// draw-sequence-neutral.
//
// Caching also fixes a shardkey-adjacent waste: the old per-run compile
// re-derived the ("setting-patprob", defect, testcase) substream on every
// run even though its keys — and therefore its value — are loop-invariant
// across runs (derivation never advances the parent stream).
// TestPatternProbMemoized pins the hoisted value against a fresh
// derivation.
func (r *Runner) planFor(tc *Testcase) *tcPlan {
	if p, ok := r.plans[tc]; ok {
		return p
	}
	defects := r.proc.Defects()
	p := &tcPlan{defects: make([]tcDefect, 0, len(defects))}
	for _, d := range defects {
		if !DetectableBy(tc, d) {
			continue
		}
		base := SettingStress(tc, d)
		if base == 0 {
			continue
		}
		bms := make([]float64, r.proc.PhysCores)
		detectableCore := false
		for c := 0; c < r.proc.PhysCores; c++ {
			if m := d.CoreMultiplier(c); m > 0 {
				bms[c] = d.BaseFreqPerMin * m
				detectableCore = true
			}
		}
		if !detectableCore {
			continue
		}
		e := tcDefect{
			d: d, bms: bms, baseStress: base, utilGain: d.UtilGain,
			minTempC: d.MinTempC, slope: d.TempSlope, sat: d.EffectiveSatDecades(),
			patProb: d.SettingPatternProb(tc.ID, r.suite.rng),
		}
		if d.Class == model.ClassComputation {
			e.dts = commonDataTypes(tc, d)
		}
		if d.ContextProb > 0 {
			for _, id := range d.SortedInstrs() {
				if tc.UsesInstr(id) {
					e.ctxInstrs = append(e.ctxInstrs, id)
				}
			}
		}
		p.defects = append(p.defects, e)
	}
	r.plans[tc] = p
	return p
}

// compileRun builds the run's defect plan in the arena from the cached
// per-testcase plan: only the effective stress depends on the run, via the
// package utilization — constant for the whole run, since loads are
// configured before the step loop and only cleared after it. Entries whose
// effective stress is non-positive are skipped exactly as the naive loop
// skips their zero rates.
func (r *Runner) compileRun(tc *Testcase) []runDefect {
	p := r.planFor(tc)
	util := r.pkg.MeanUtil()
	plan := r.arena.plan[:0]
	for i := range p.defects {
		e := &p.defects[i]
		stress := e.baseStress * (1 + e.utilGain*util)
		if stress <= 0 {
			continue
		}
		plan = append(plan, runDefect{
			d: e.d, bms: e.bms, stress: stress,
			minTempC: e.minTempC, slope: e.slope, sat: e.sat,
			dts: e.dts, ctxInstrs: e.ctxInstrs, patProb: e.patProb,
		})
	}
	r.arena.plan = plan
	return plan
}

// sampleEvents draws the step's SDC event count for one compiled defect on
// one physical core — Poisson at the exact naive rate, no draw when the
// rate is zero (temperature below the trigger, or this core not
// defective).
func (rd *runDefect) sampleEvents(rng *simrand.Source, core int, coreTemp, minutes float64) int {
	bm := rd.bms[core]
	if bm == 0 || coreTemp < rd.minTempC {
		return 0
	}
	expo := rd.slope * (coreTemp - rd.minTempC)
	if expo > rd.sat {
		expo = rd.sat
	}
	rate := math.Min(bm*math.Pow(10, expo)*rd.stress, defect.MaxFreqPerMin)
	return rng.Poisson(rate * minutes)
}

// Run executes the testcase under the given options and returns the result.
// The thermal package's state carries over between runs (remaining heat,
// Observation 10), as it does on real hardware.
//
// This is the compiled fast path: the per-step map ranges and per-record
// derivations of the naive loop are hoisted into a flat mix walk and a
// compiled defect plan, draw-for-draw identical to runReference (the
// retained naive implementation a reference suite pins).
func (r *Runner) Run(tc *Testcase, opts RunOpts) RunResult {
	if r.suite.reference {
		return r.runReference(tc, opts)
	}
	if opts.Duration <= 0 {
		opts.Duration = time.Minute
	}
	res := RunResult{
		TestcaseID: tc.ID,
		Core:       opts.Core,
		Duration:   opts.Duration,
	}
	a := &r.arena
	rng := &r.scratch
	// Distinct runs of the same setting must differ: key on the virtual
	// clock, formatted into the arena (byte-identical to the stdlib
	// Duration string the naive path hashes).
	a.keyBuf = appendDuration(a.keyBuf[:0], r.now)
	r.suite.rng.DeriveIntoBytes(rng, a.keyBuf, "run", r.proc.ID, tc.ID)
	if a.rngBuf == nil {
		a.rngBuf = make([]uint64, runRNGBlock)
	}
	rng.SetBlock(a.rngBuf)

	r.pkg.ClearLoads()
	r.pkg.SetLoad(opts.Core, 1, tc.HeatIntensity)
	if tc.MultiThreaded || opts.BurnIn {
		for c := 0; c < r.proc.PhysCores; c++ {
			r.pkg.SetLoad(c, 1, tc.HeatIntensity)
		}
	}
	for c, loaded := 0, 0; c < r.proc.PhysCores && loaded < opts.ExtraStressCores; c++ {
		if c == opts.Core {
			continue
		}
		r.pkg.SetLoad(c, 1, 1.3)
		loaded++
	}

	flat := tc.FlatMix()
	counts := a.floatCounts(len(flat))
	plan := r.compileRun(tc)
	a.cols.Reset()
	a.rows = a.rows[:0]

	var tempSum float64
	steps := 0
	for elapsed := time.Duration(0); elapsed < opts.Duration; elapsed += stepSlice {
		slice := stepSlice
		if rem := opts.Duration - elapsed; rem < slice {
			slice = rem
		}
		var coreTemp float64
		if opts.FixedTempC != nil {
			coreTemp = *opts.FixedTempC
			r.pkg.ForceTemp(*opts.FixedTempC)
		} else {
			r.pkg.Step(slice)
			coreTemp = r.pkg.CoreTempC(opts.Core)
		}
		tempSum += coreTemp
		steps++
		if coreTemp > res.MaxTempC {
			res.MaxTempC = coreTemp
		}

		// Instrumentation accounting over the flattened mix.
		iters := tc.IterPerSec * slice.Seconds()
		for i := range flat {
			counts[i] += flat[i].Usage * iters
		}

		// SDC event sampling over the compiled defect plan.
		minutes := slice.Minutes()
		for pi := range plan {
			rd := &plan[pi]
			n := rd.sampleEvents(rng, opts.Core, coreTemp, minutes)
			for i := 0; i < n; i++ {
				rec := r.makeRecordFast(rng, tc, rd, opts.Core, coreTemp, r.now+elapsed)
				a.cols.Append(&rec)
				a.rows = append(a.rows, rec)
			}
		}
	}
	r.pkg.ClearLoads()
	r.now += opts.Duration
	if steps > 0 {
		res.MeanTempC = tempSum / float64(steps)
	}
	res.InstrCounts = a.instrCounts(flat, counts)
	if len(a.rows) > 0 {
		res.Records = a.rows
	}
	res.Columns = &a.cols
	res.Failed = len(res.Records) > 0
	return res
}

// runReference is the retained naive Run implementation (reference suites
// pin it): per-step map ranges and per-record derivations, the behavior
// the compiled path must reproduce draw-for-draw.
func (r *Runner) runReference(tc *Testcase, opts RunOpts) RunResult {
	if opts.Duration <= 0 {
		opts.Duration = time.Minute
	}
	res := RunResult{
		TestcaseID:  tc.ID,
		Core:        opts.Core,
		Duration:    opts.Duration,
		InstrCounts: map[model.InstrID]float64{},
	}
	rng := r.suite.rng.Derive("run", r.proc.ID, tc.ID,
		// Distinct runs of the same setting must differ.
		time.Duration(r.now).String())

	// Configure thermal load: the tested core runs the testcase; a
	// multi-threaded testcase occupies every core; burn-in loads all
	// cores regardless.
	r.pkg.ClearLoads()
	r.pkg.SetLoad(opts.Core, 1, tc.HeatIntensity)
	if tc.MultiThreaded || opts.BurnIn {
		for c := 0; c < r.proc.PhysCores; c++ {
			r.pkg.SetLoad(c, 1, tc.HeatIntensity)
		}
	}
	for c, loaded := 0, 0; c < r.proc.PhysCores && loaded < opts.ExtraStressCores; c++ {
		if c == opts.Core {
			continue
		}
		r.pkg.SetLoad(c, 1, 1.3)
		loaded++
	}

	var tempSum float64
	steps := 0
	for elapsed := time.Duration(0); elapsed < opts.Duration; elapsed += stepSlice {
		slice := stepSlice
		if rem := opts.Duration - elapsed; rem < slice {
			slice = rem
		}
		var coreTemp float64
		if opts.FixedTempC != nil {
			coreTemp = *opts.FixedTempC
			r.pkg.ForceTemp(*opts.FixedTempC)
		} else {
			r.pkg.Step(slice)
			coreTemp = r.pkg.CoreTempC(opts.Core)
		}
		tempSum += coreTemp
		steps++
		if coreTemp > res.MaxTempC {
			res.MaxTempC = coreTemp
		}

		// Instrumentation accounting.
		iters := tc.IterPerSec * slice.Seconds()
		for id, usage := range tc.Mix {
			res.InstrCounts[id] += usage * iters
		}

		// SDC event sampling per defect.
		minutes := slice.Minutes()
		for _, d := range r.proc.Defects() {
			if !DetectableBy(tc, d) {
				continue
			}
			// Instruction-usage stress scaled by package utilization
			// (the Section 5 separation experiment: frequency rises
			// with CPU utilization even at constant temperature).
			stress := SettingStress(tc, d) * (1 + d.UtilGain*r.pkg.MeanUtil())
			rate := d.RatePerMin(opts.Core, coreTemp, stress)
			n := rng.Poisson(rate * minutes)
			for i := 0; i < n; i++ {
				res.Records = append(res.Records,
					r.makeRecord(rng, tc, d, opts.Core, coreTemp, r.now+elapsed))
			}
		}
	}
	r.pkg.ClearLoads()
	r.now += opts.Duration
	if steps > 0 {
		res.MeanTempC = tempSum / float64(steps)
	}
	res.Failed = len(res.Records) > 0
	return res
}

// makeRecordFast is makeRecord over a compiled runDefect: the context
// instruction list, common datatypes and setting pattern probability come
// from the plan instead of being re-derived per record. The rng draws are
// the same calls with the same arguments in the same order as makeRecord.
func (r *Runner) makeRecordFast(rng *simrand.Source, tc *Testcase, rd *runDefect, core int, tempC float64, when time.Duration) model.SDCRecord {
	d := rd.d
	rec := model.SDCRecord{
		ProcessorID: r.proc.ID,
		Core:        core,
		TestcaseID:  tc.ID,
		Temperature: tempC,
		When:        when,
	}
	// The toolchain sometimes preserves context and points at the
	// incorrect instruction (Section 4.1).
	if d.ContextProb > 0 && rng.Bool(d.ContextProb) {
		if len(rd.ctxInstrs) > 0 {
			rec.HasContext = true
			rec.ContextInstr = rd.ctxInstrs[rng.Intn(len(rd.ctxInstrs))]
		}
	}
	if d.Class == model.ClassConsistency {
		rec.Consistency = true
		return rec
	}
	dt := rd.dts[rng.Intn(len(rd.dts))]
	rec.DataType = dt

	corr := d.Corruptor(dt, r.suite.rng)
	expLo, expHi := inject.RandomValue(rng, dt)
	actLo, actHi := corr.CorruptWithProb(rng, rd.patProb, expLo, expHi)
	rec.Expected, rec.ExpectedHi = expLo, expHi
	rec.Actual, rec.ActualHi = actLo, actHi
	return rec
}

// makeRecord produces one SDC record for a (testcase, defect) event.
func (r *Runner) makeRecord(rng *simrand.Source, tc *Testcase, d *defect.Defect, core int, tempC float64, when time.Duration) model.SDCRecord {
	rec := model.SDCRecord{
		ProcessorID: r.proc.ID,
		Core:        core,
		TestcaseID:  tc.ID,
		Temperature: tempC,
		When:        when,
	}
	// The toolchain sometimes preserves context and points at the
	// incorrect instruction (Section 4.1).
	if d.ContextProb > 0 && rng.Bool(d.ContextProb) {
		var used []model.InstrID
		for _, id := range d.SortedInstrs() {
			if tc.UsesInstr(id) {
				used = append(used, id)
			}
		}
		if len(used) > 0 {
			rec.HasContext = true
			rec.ContextInstr = used[rng.Intn(len(used))]
		}
	}
	if d.Class == model.ClassConsistency {
		rec.Consistency = true
		return rec
	}
	dts := commonDataTypes(tc, d)
	dt := dts[rng.Intn(len(dts))]
	rec.DataType = dt

	corr := d.Corruptor(dt, r.suite.rng)
	expLo, expHi := inject.RandomValue(rng, dt)
	prob := d.SettingPatternProb(tc.ID, r.suite.rng)
	actLo, actHi := corr.CorruptWithProb(rng, prob, expLo, expHi)
	rec.Expected, rec.ExpectedHi = expLo, expHi
	rec.Actual, rec.ActualHi = actLo, actHi
	return rec
}

// RunParallel executes the testcase simultaneously on every listed core
// (one thread per core, the way datacenter diagnostics like OpenDCDiag
// fan a testcase across the machine). All listed cores are loaded for the
// full duration; SDC events are sampled per core at its own temperature.
// The result aggregates records across cores; Failed is true when any core
// failed. Temperatures summarize the hottest listed core.
//
// Like Run, this is the compiled fast path; a reference suite pins the
// retained naive runParallelReference.
func (r *Runner) RunParallel(tc *Testcase, cores []int, opts RunOpts) RunResult {
	if r.suite.reference {
		return r.runParallelReference(tc, cores, opts)
	}
	if len(cores) == 0 {
		panic("testkit: RunParallel with no cores")
	}
	if opts.Duration <= 0 {
		opts.Duration = time.Minute
	}
	res := RunResult{
		TestcaseID: tc.ID,
		Core:       cores[0],
		Duration:   opts.Duration,
	}
	a := &r.arena
	rng := &r.scratch
	a.keyBuf = appendDuration(a.keyBuf[:0], r.now)
	r.suite.rng.DeriveIntoBytes(rng, a.keyBuf, "runp", r.proc.ID, tc.ID)
	if a.rngBuf == nil {
		a.rngBuf = make([]uint64, runRNGBlock)
	}
	rng.SetBlock(a.rngBuf)

	r.pkg.ClearLoads()
	for _, c := range cores {
		r.pkg.SetLoad(c, 1, tc.HeatIntensity)
	}
	if opts.BurnIn {
		for c := 0; c < r.proc.PhysCores; c++ {
			r.pkg.SetLoad(c, 1, tc.HeatIntensity)
		}
	}

	flat := tc.FlatMix()
	counts := a.floatCounts(len(flat))
	plan := r.compileRun(tc)
	a.cols.Reset()
	a.rows = a.rows[:0]

	var tempSum float64
	steps := 0
	for elapsed := time.Duration(0); elapsed < opts.Duration; elapsed += stepSlice {
		slice := stepSlice
		if rem := opts.Duration - elapsed; rem < slice {
			slice = rem
		}
		if opts.FixedTempC != nil {
			r.pkg.ForceTemp(*opts.FixedTempC)
		} else {
			r.pkg.Step(slice)
		}
		var hottest float64
		minutes := slice.Minutes()
		for _, c := range cores {
			coreTemp := r.pkg.CoreTempC(c)
			if opts.FixedTempC != nil {
				coreTemp = *opts.FixedTempC
			}
			if coreTemp > hottest {
				hottest = coreTemp
			}
			for pi := range plan {
				rd := &plan[pi]
				n := rd.sampleEvents(rng, c, coreTemp, minutes)
				for i := 0; i < n; i++ {
					rec := r.makeRecordFast(rng, tc, rd, c, coreTemp, r.now+elapsed)
					a.cols.Append(&rec)
					a.rows = append(a.rows, rec)
				}
			}
		}
		tempSum += hottest
		steps++
		if hottest > res.MaxTempC {
			res.MaxTempC = hottest
		}
		iters := tc.IterPerSec * slice.Seconds() * float64(len(cores))
		for i := range flat {
			counts[i] += flat[i].Usage * iters
		}
	}
	r.pkg.ClearLoads()
	r.now += opts.Duration
	if steps > 0 {
		res.MeanTempC = tempSum / float64(steps)
	}
	res.InstrCounts = a.instrCounts(flat, counts)
	if len(a.rows) > 0 {
		res.Records = a.rows
	}
	res.Columns = &a.cols
	res.Failed = len(res.Records) > 0
	return res
}

// runParallelReference is the retained naive RunParallel implementation
// (reference suites pin it).
func (r *Runner) runParallelReference(tc *Testcase, cores []int, opts RunOpts) RunResult {
	if len(cores) == 0 {
		panic("testkit: RunParallel with no cores")
	}
	if opts.Duration <= 0 {
		opts.Duration = time.Minute
	}
	res := RunResult{
		TestcaseID:  tc.ID,
		Core:        cores[0],
		Duration:    opts.Duration,
		InstrCounts: map[model.InstrID]float64{},
	}
	rng := r.suite.rng.Derive("runp", r.proc.ID, tc.ID, time.Duration(r.now).String())

	r.pkg.ClearLoads()
	for _, c := range cores {
		r.pkg.SetLoad(c, 1, tc.HeatIntensity)
	}
	if opts.BurnIn {
		for c := 0; c < r.proc.PhysCores; c++ {
			r.pkg.SetLoad(c, 1, tc.HeatIntensity)
		}
	}

	var tempSum float64
	steps := 0
	for elapsed := time.Duration(0); elapsed < opts.Duration; elapsed += stepSlice {
		slice := stepSlice
		if rem := opts.Duration - elapsed; rem < slice {
			slice = rem
		}
		if opts.FixedTempC != nil {
			r.pkg.ForceTemp(*opts.FixedTempC)
		} else {
			r.pkg.Step(slice)
		}
		var hottest float64
		minutes := slice.Minutes()
		for _, c := range cores {
			coreTemp := r.pkg.CoreTempC(c)
			if opts.FixedTempC != nil {
				coreTemp = *opts.FixedTempC
			}
			if coreTemp > hottest {
				hottest = coreTemp
			}
			for _, d := range r.proc.Defects() {
				if !DetectableBy(tc, d) {
					continue
				}
				stress := SettingStress(tc, d) * (1 + d.UtilGain*r.pkg.MeanUtil())
				rate := d.RatePerMin(c, coreTemp, stress)
				n := rng.Poisson(rate * minutes)
				for i := 0; i < n; i++ {
					res.Records = append(res.Records,
						r.makeRecord(rng, tc, d, c, coreTemp, r.now+elapsed))
				}
			}
		}
		tempSum += hottest
		steps++
		if hottest > res.MaxTempC {
			res.MaxTempC = hottest
		}
		iters := tc.IterPerSec * slice.Seconds() * float64(len(cores))
		for id, usage := range tc.Mix {
			res.InstrCounts[id] += usage * iters
		}
	}
	r.pkg.ClearLoads()
	r.now += opts.Duration
	if steps > 0 {
		res.MeanTempC = tempSum / float64(steps)
	}
	res.Failed = len(res.Records) > 0
	return res
}

// RunAll executes every testcase in the suite sequentially on the given
// core with equal duration each — the baseline large-scale test procedure
// of Section 2.4. It returns all results.
func (r *Runner) RunAll(core int, perTestcase time.Duration, burnIn bool) []RunResult {
	results := make([]RunResult, 0, len(r.suite.Testcases))
	for _, tc := range r.suite.Testcases {
		// Clone: each result must survive the arena reset of the next run.
		results = append(results, r.Run(tc, RunOpts{
			Core: core, Duration: perTestcase, BurnIn: burnIn,
		}).Clone())
	}
	return results
}

// FailedTestcases extracts the IDs of failed testcases from results.
func FailedTestcases(results []RunResult) []string {
	var out []string
	seen := map[string]bool{}
	for _, res := range results {
		if res.Failed && !seen[res.TestcaseID] {
			seen[res.TestcaseID] = true
			out = append(out, res.TestcaseID)
		}
	}
	return out
}
