package workload

import (
	"hash/crc32"
	"hash/fnv"
	"math"
	"testing"
	"testing/quick"

	"farron/internal/model"
	"farron/internal/simrand"
)

// flipBit0 is a corruption hook flipping the lowest bit, always.
func flipBit0(dt model.DataType, lo uint64, hi uint16) (uint64, uint16, bool) {
	return lo ^ 1, hi, true
}

func TestCRC32MatchesStdlib(t *testing.T) {
	cases := [][]byte{
		nil, {}, []byte("a"), []byte("hello, world"),
		[]byte("123456789"), make([]byte, 1000),
	}
	rng := simrand.New(1)
	big := make([]byte, 4096)
	for i := range big {
		big[i] = byte(rng.Uint64())
	}
	cases = append(cases, big)
	for _, c := range cases {
		if got, want := CRC32(c), crc32.ChecksumIEEE(c); got != want {
			t.Errorf("CRC32(%d bytes) = %08x, want %08x", len(c), got, want)
		}
	}
}

func TestCRC32CheckValue(t *testing.T) {
	// The canonical CRC-32/IEEE check value.
	if got := CRC32([]byte("123456789")); got != 0xCBF43926 {
		t.Errorf("check value = %08x, want CBF43926", got)
	}
}

func TestCRC32Property(t *testing.T) {
	f := func(data []byte) bool {
		return CRC32(data) == crc32.ChecksumIEEE(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCRC32Faulty(t *testing.T) {
	data := []byte("payload")
	sum, corrupted := CRC32Faulty(data, nil)
	if corrupted || sum != CRC32(data) {
		t.Error("healthy CRC32Faulty differs")
	}
	sum, corrupted = CRC32Faulty(data, flipBit0)
	if !corrupted || sum == CRC32(data) {
		t.Error("corruption hook not applied")
	}
}

func TestFNV64MatchesStdlib(t *testing.T) {
	for _, s := range []string{"", "a", "metadata-key", "longer input with spaces"} {
		h := fnv.New64a()
		h.Write([]byte(s))
		if got := FNV64([]byte(s)); got != h.Sum64() {
			t.Errorf("FNV64(%q) = %x, want %x", s, got, h.Sum64())
		}
	}
}

func TestMatMulCorrectness(t *testing.T) {
	// 2x2 known product.
	a := []float64{1, 2, 3, 4}
	b := []float64{5, 6, 7, 8}
	c, corrupted := MatMul64(a, b, 2, nil)
	want := []float64{19, 22, 43, 50}
	if corrupted != 0 {
		t.Errorf("healthy run corrupted %d", corrupted)
	}
	for i := range want {
		if c[i] != want[i] {
			t.Errorf("c[%d] = %v, want %v", i, c[i], want[i])
		}
	}
	if m := MatMulVerify(a, b, c, 2); m != 0 {
		t.Errorf("verify mismatches = %d", m)
	}
}

func TestMatMulCorruptionDetectedByRedundancy(t *testing.T) {
	rng := simrand.New(2)
	n := 8
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	for i := range a {
		a[i] = rng.Float64()
		b[i] = rng.Float64()
	}
	hook := func(dt model.DataType, lo uint64, hi uint16) (uint64, uint16, bool) {
		if rng.Bool(0.1) {
			return lo ^ 1<<30, hi, true
		}
		return lo, hi, false
	}
	c, corrupted := MatMul64(a, b, n, hook)
	if corrupted == 0 {
		t.Fatal("no corruption injected")
	}
	if m := MatMulVerify(a, b, c, n); m != corrupted {
		t.Errorf("redundancy detected %d of %d corruptions", m, corrupted)
	}
}

func TestMatMulPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("size mismatch accepted")
		}
	}()
	MatMul64([]float64{1}, []float64{1, 2}, 2, nil)
}

func TestArcTanAccuracy(t *testing.T) {
	for _, x := range []float64{0, 0.1, 0.5, 0.99, 1, 2, 10, 1e6, -0.3, -5, 0.7} {
		got := ArcTan(x)
		want := math.Atan(x)
		if math.Abs(got-want) > 1e-14*(1+math.Abs(want)) {
			t.Errorf("ArcTan(%v) = %.17g, want %.17g", x, got, want)
		}
	}
	if !math.IsNaN(ArcTan(math.NaN())) {
		t.Error("ArcTan(NaN) not NaN")
	}
}

func TestArcTanProperty(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		got := ArcTan(x)
		want := math.Atan(x)
		return math.Abs(got-want) <= 1e-13*(1+math.Abs(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArcTanFaultySmallLoss(t *testing.T) {
	// A mid-fraction flip in the 80-bit intermediate barely moves the
	// result (Observation 7): accuracy-based detection would miss it.
	hook := func(dt model.DataType, lo uint64, hi uint16) (uint64, uint16, bool) {
		if dt != model.DTFloat64x {
			return lo, hi, false
		}
		return lo ^ 1<<30, hi, true
	}
	v, corrupted := ArcTanFaulty(0.8, hook)
	if !corrupted {
		t.Fatal("hook not applied")
	}
	rel := math.Abs(v-math.Atan(0.8)) / math.Atan(0.8)
	if rel == 0 || rel > 1e-6 {
		t.Errorf("relative loss = %g, want tiny but non-zero", rel)
	}
	healthy, corrupted := ArcTanFaulty(0.8, nil)
	if corrupted || math.Abs(healthy-math.Atan(0.8)) > 1e-14 {
		t.Error("healthy path wrong")
	}
}

func TestFloat80HelpersRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return math.IsNaN(float80Value(float80Bits(x).lo, float80Bits(x).hi))
		}
		b := float80Bits(x)
		return float80Value(b.lo, b.hi) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBigIntAddMul(t *testing.T) {
	a := BigFromUint64(0xFFFFFFFFFFFFFFFF)
	b := BigFromUint64(2)
	sum := a.Add(b)
	// 2^64-1 + 2 = 2^64+1 = limbs [1, 0, 1]
	if len(sum) != 3 || sum[0] != 1 || sum[1] != 0 || sum[2] != 1 {
		t.Errorf("sum limbs = %v", sum)
	}
	prod, corrupted := a.Mul(b, nil)
	if corrupted != 0 {
		t.Error("healthy mul corrupted")
	}
	// (2^64-1)*2 = 2^65-2 = limbs [0xFFFFFFFE, 0xFFFFFFFF, 1]
	if len(prod) != 3 || prod[0] != 0xFFFFFFFE || prod[1] != 0xFFFFFFFF || prod[2] != 1 {
		t.Errorf("prod limbs = %v", prod)
	}
}

func TestBigIntMulCommutes(t *testing.T) {
	f := func(x, y uint64) bool {
		a, b := BigFromUint64(x), BigFromUint64(y)
		p1, _ := a.Mul(b, nil)
		p2, _ := b.Mul(a, nil)
		return p1.Equal(p2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBigIntResidueCheck(t *testing.T) {
	rng := simrand.New(3)
	for i := 0; i < 50; i++ {
		a := BigFromUint64(rng.Uint64())
		b := BigFromUint64(rng.Uint64())
		c, _ := a.Mul(b, nil)
		if !CheckMulResidue(a, b, c) {
			t.Fatalf("residue check failed on healthy product")
		}
		// Corrupt one limb: residue check must catch it.
		if len(c) > 0 {
			bad := append(BigInt{}, c...)
			bad[rng.Intn(len(bad))] ^= 1 << 7
			if CheckMulResidue(a, b, bad) {
				t.Errorf("residue check missed corruption")
			}
		}
	}
}

func TestBigIntMulCorruption(t *testing.T) {
	a, b := BigFromUint64(1<<40|12345), BigFromUint64(987654321)
	c, corrupted := a.Mul(b, flipBit0)
	if corrupted == 0 {
		t.Fatal("no corruption applied")
	}
	ref, _ := a.Mul(b, nil)
	if c.Equal(ref) {
		t.Error("corrupted product equals reference")
	}
}

func TestBigIntModPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Mod(0) accepted")
		}
	}()
	BigFromUint64(5).Mod(0)
}

func TestBigIntZero(t *testing.T) {
	z := BigFromUint64(0)
	if len(z) != 0 {
		t.Errorf("zero = %v", z)
	}
	p, _ := z.Mul(BigFromUint64(99), nil)
	if len(p) != 0 {
		t.Errorf("0*99 = %v", p)
	}
	if z.Mod(7) != 0 {
		t.Error("0 mod 7 != 0")
	}
}

func TestReverseString(t *testing.T) {
	out, corrupted := ReverseString([]byte("abc"), nil)
	if string(out) != "cba" || corrupted != 0 {
		t.Errorf("reverse = %q (%d)", out, corrupted)
	}
	if !StringRoundTripOK([]byte("hello"), nil) {
		t.Error("healthy round trip failed")
	}
	if StringRoundTripOK([]byte("hello"), flipBit0) {
		t.Error("corrupted round trip passed")
	}
}

func TestMulmod(t *testing.T) {
	cases := []struct{ a, b, m, want uint64 }{
		{3, 4, 5, 2},
		{1 << 60, 1 << 60, (1 << 61) - 1, 1 << 59},
		{0, 99, 7, 0},
	}
	for _, c := range cases {
		if got := mulmod(c.a, c.b, c.m); got != c.want {
			t.Errorf("mulmod(%d,%d,%d) = %d, want %d", c.a, c.b, c.m, got, c.want)
		}
	}
}
