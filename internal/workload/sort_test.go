package workload

import (
	"sort"
	"testing"
	"testing/quick"

	"farron/internal/model"
	"farron/internal/simrand"
)

func randomData(rng *simrand.Source, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(rng.Uint64() % 10000)
	}
	return out
}

func TestMergeSortHealthy(t *testing.T) {
	rng := simrand.New(1)
	for trial := 0; trial < 20; trial++ {
		data := randomData(rng, 200)
		out, comps := MergeSort(data, nil)
		if comps == 0 {
			t.Fatal("no comparisons")
		}
		audit := AuditSort(data, out)
		if !audit.Ordered || !audit.Permutation {
			t.Fatalf("healthy merge sort failed audit: %+v", audit)
		}
	}
}

func TestQuickSortHealthy(t *testing.T) {
	rng := simrand.New(2)
	for trial := 0; trial < 20; trial++ {
		data := randomData(rng, 200)
		out, _ := QuickSort(data, nil)
		audit := AuditSort(data, out)
		if !audit.Ordered || !audit.Permutation {
			t.Fatalf("healthy quick sort failed audit: %+v", audit)
		}
	}
}

func TestSortMatchesStdlibProperty(t *testing.T) {
	f := func(raw []int64) bool {
		m, _ := MergeSort(raw, nil)
		q, _ := QuickSort(raw, nil)
		want := append([]int64(nil), raw...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if m[i] != want[i] || q[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCorruptComparatorDisorders(t *testing.T) {
	rng := simrand.New(3)
	frng := rng.Derive("f")
	hook := func(dt model.DataType, lo uint64, hi uint16) (uint64, uint16, bool) {
		if dt == model.DTBit && frng.Bool(0.01) {
			return lo ^ 1, hi, true
		}
		return lo, hi, false
	}
	data := randomData(rng, 500)
	out, _ := MergeSort(data, hook)
	audit := AuditSort(data, out)
	if audit.Ordered {
		t.Error("1% comparison corruption left output ordered")
	}
	// Merge sort's structure never drops elements, even with a lying
	// comparator — the corruption is purely a reordering (plausible
	// output, the dangerous kind).
	if !audit.Permutation {
		t.Error("merge sort lost elements under comparison corruption")
	}
}

func TestSortService(t *testing.T) {
	rep := SortService(simrand.New(4), 100, 300, 0.005)
	if rep.CorruptComparisons == 0 {
		t.Fatal("no corruptions fired")
	}
	if rep.Disordered == 0 {
		t.Error("no disordered runs despite corruption")
	}
	if rep.LostElements != 0 {
		t.Errorf("merge sort lost elements in %d runs", rep.LostElements)
	}
	healthy := SortService(simrand.New(5), 50, 300, 0)
	if healthy.Disordered != 0 || healthy.CorruptComparisons != 0 {
		t.Errorf("healthy service: %+v", healthy)
	}
}

func TestAuditSortDetectsLoss(t *testing.T) {
	in := []int64{1, 2, 3}
	a := AuditSort(in, []int64{1, 2})
	if a.Permutation {
		t.Error("length mismatch passed permutation audit")
	}
	a = AuditSort(in, []int64{1, 2, 4})
	if a.Permutation {
		t.Error("element substitution passed permutation audit")
	}
	a = AuditSort(in, []int64{3, 2, 1})
	if a.Ordered {
		t.Error("reversed output passed ordering audit")
	}
	if !a.Permutation {
		t.Error("reversal failed permutation audit")
	}
}

func TestQuickSortSafeUnderCorruption(t *testing.T) {
	// A lying comparator must never crash or hang quicksort, whatever it
	// returns (the output may be disordered — that is the point).
	rng := simrand.New(6)
	frng := rng.Derive("f")
	hook := func(dt model.DataType, lo uint64, hi uint16) (uint64, uint16, bool) {
		if dt == model.DTBit && frng.Bool(0.05) {
			return lo ^ 1, hi, true
		}
		return lo, hi, false
	}
	for trial := 0; trial < 30; trial++ {
		data := randomData(rng, 300)
		out, _ := QuickSort(data, hook)
		if len(out) != len(data) {
			t.Fatalf("quicksort changed length: %d", len(out))
		}
	}
}
