package workload

import (
	"farron/internal/model"
	"farron/internal/simrand"
)

// Sorting under corruption: the related-work line of fault-injection
// studies on sorting algorithms ([32] in the paper). A defective comparison
// (the ALU producing a wrong flag) silently reorders output; unlike a
// checksum workload the result is *plausible* — every element survives —
// so only an explicit sortedness audit catches it.

// corruptLess wraps an int64 comparison through the corruption hook: the
// hook flips the comparison outcome (a corrupted ALU flag) when it fires.
func corruptLess(corrupt CorruptFn, a, b int64) bool {
	less := a < b
	if corrupt == nil {
		return less
	}
	v := uint64(0)
	if less {
		v = 1
	}
	nv, _, ok := corrupt(model.DTBit, v, 0)
	if !ok {
		return less
	}
	return nv&1 == 1
}

// MergeSort sorts data (copied) with the possibly-corrupted comparator and
// returns the result plus the number of comparisons performed.
func MergeSort(data []int64, corrupt CorruptFn) (out []int64, comparisons int) {
	out = append([]int64(nil), data...)
	buf := make([]int64, len(out))
	var sortRange func(lo, hi int)
	sortRange = func(lo, hi int) {
		if hi-lo < 2 {
			return
		}
		mid := (lo + hi) / 2
		sortRange(lo, mid)
		sortRange(mid, hi)
		i, j, k := lo, mid, lo
		for i < mid && j < hi {
			comparisons++
			if corruptLess(corrupt, out[j], out[i]) {
				buf[k] = out[j]
				j++
			} else {
				buf[k] = out[i]
				i++
			}
			k++
		}
		for i < mid {
			buf[k] = out[i]
			i++
			k++
		}
		for j < hi {
			buf[k] = out[j]
			j++
			k++
		}
		copy(out[lo:hi], buf[lo:hi])
	}
	sortRange(0, len(out))
	return out, comparisons
}

// QuickSort sorts data (copied) with the possibly-corrupted comparator.
func QuickSort(data []int64, corrupt CorruptFn) (out []int64, comparisons int) {
	out = append([]int64(nil), data...)
	var sortRange func(lo, hi int)
	sortRange = func(lo, hi int) {
		if hi-lo < 2 {
			return
		}
		pivot := out[(lo+hi)/2]
		i, j := lo, hi-1
		for i <= j {
			// Bounds guards keep the scans safe even when a corrupted
			// comparator lies about the pivot relation.
			for i < hi {
				comparisons++
				if !corruptLess(corrupt, out[i], pivot) {
					break
				}
				i++
			}
			for j >= lo {
				comparisons++
				if !corruptLess(corrupt, pivot, out[j]) {
					break
				}
				j--
			}
			if i <= j {
				out[i], out[j] = out[j], out[i]
				i++
				j--
			}
		}
		sortRange(lo, j+1)
		sortRange(i, hi)
	}
	sortRange(0, len(out))
	return out, comparisons
}

// SortAudit checks the two post-conditions a sorting service can assert:
// output is ordered, and output is a permutation of the input (multiset
// equality via a commutative accumulator plus length).
type SortAudit struct {
	Ordered     bool
	Permutation bool
}

// AuditSort verifies output against input.
func AuditSort(input, output []int64) SortAudit {
	a := SortAudit{Ordered: true, Permutation: len(input) == len(output)}
	for i := 1; i < len(output); i++ {
		if output[i-1] > output[i] {
			a.Ordered = false
			break
		}
	}
	if a.Permutation {
		var sumIn, sumOut, xorIn, xorOut uint64
		for _, v := range input {
			sumIn += uint64(v)
			xorIn ^= uint64(v)
		}
		for _, v := range output {
			sumOut += uint64(v)
			xorOut ^= uint64(v)
		}
		a.Permutation = sumIn == sumOut && xorIn == xorOut
	}
	return a
}

// SortReport summarizes the sorting-service scenario.
type SortReport struct {
	Runs int
	// Disordered counts runs whose output failed the ordering audit;
	// LostElements counts runs failing the permutation audit.
	Disordered, LostElements int
	// CorruptComparisons counts hook firings.
	CorruptComparisons int
}

// SortService sorts random arrays through a possibly-defective comparator
// and audits every result. Comparison corruption reorders output (caught
// only by the ordering audit); merge sort never loses elements even under
// corruption — a property the tests pin down.
func SortService(rng *simrand.Source, runs, size int, flipProb float64) SortReport {
	var rep SortReport
	frng := rng.Derive("sort-fault")
	var hook CorruptFn
	if flipProb > 0 {
		hook = func(dt model.DataType, lo uint64, hi uint16) (uint64, uint16, bool) {
			if dt == model.DTBit && frng.Bool(flipProb) {
				return lo ^ 1, hi, true
			}
			return lo, hi, false
		}
	}
	for r := 0; r < runs; r++ {
		data := make([]int64, size)
		for i := range data {
			data[i] = int64(rng.Uint64() % 100000)
		}
		before := rep.CorruptComparisons
		out, _ := MergeSort(data, countingHook(hook, &rep.CorruptComparisons))
		_ = before
		audit := AuditSort(data, out)
		rep.Runs++
		if !audit.Ordered {
			rep.Disordered++
		}
		if !audit.Permutation {
			rep.LostElements++
		}
	}
	return rep
}

// countingHook wraps a hook to count firings.
func countingHook(h CorruptFn, counter *int) CorruptFn {
	if h == nil {
		return nil
	}
	return func(dt model.DataType, lo uint64, hi uint16) (uint64, uint16, bool) {
		nl, nh, ok := h(dt, lo, hi)
		if ok {
			*counter++
		}
		return nl, nh, ok
	}
}
