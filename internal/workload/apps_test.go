package workload

import (
	"testing"

	"farron/internal/model"
	"farron/internal/simrand"
)

func TestChecksumServiceHealthy(t *testing.T) {
	rng := simrand.New(1)
	rep := ChecksumService(rng, 500, 64, nil)
	if rep.Requests != 500 {
		t.Errorf("requests = %d", rep.Requests)
	}
	if rep.Corruptions != 0 || rep.MismatchReports != 0 || rep.SilentAccepts != 0 {
		t.Errorf("healthy service reported errors: %+v", rep)
	}
}

func TestChecksumServiceFaulty(t *testing.T) {
	rng := simrand.New(2)
	frng := rng.Derive("fault")
	hook := func(dt model.DataType, lo uint64, hi uint16) (uint64, uint16, bool) {
		if dt == model.DTUint32 && frng.Bool(0.05) {
			return lo ^ 1<<9, hi, true
		}
		return lo, hi, false
	}
	rep := ChecksumService(rng, 2000, 64, hook)
	if rep.Corruptions == 0 {
		t.Fatal("no corruptions injected")
	}
	// Every corrupted checksum is a false invalid-data report — the
	// production flood of Section 2.2.
	if rep.MismatchReports != rep.Corruptions {
		t.Errorf("mismatches = %d, corruptions = %d", rep.MismatchReports, rep.Corruptions)
	}
	if rep.SilentAccepts != 0 {
		t.Errorf("single-bit checksum corruption silently accepted %d times", rep.SilentAccepts)
	}
}

func TestSharedBufferHealthy(t *testing.T) {
	rng := simrand.New(3)
	rep := SharedBuffer(rng, 200, 8, 0)
	if rep.StaleReads != 0 || rep.ChecksumErrors != 0 {
		t.Errorf("healthy coherence produced errors: %+v", rep)
	}
	if rep.Handoffs != 200 {
		t.Errorf("handoffs = %d", rep.Handoffs)
	}
}

func TestSharedBufferDefectiveCoherence(t *testing.T) {
	rng := simrand.New(4)
	rep := SharedBuffer(rng, 500, 8, 0.02)
	if rep.DroppedInvalSum == 0 {
		t.Fatal("no invalidations dropped")
	}
	if rep.StaleReads == 0 {
		t.Error("dropped invalidations produced no stale reads")
	}
	if rep.ChecksumErrors == 0 {
		t.Error("stale reads produced no checksum mismatches (the Section 2.2 symptom)")
	}
	// The checksum catches most but not necessarily all stale reads
	// (a stale checksum word alone also mismatches); sanity-bound it.
	if rep.ChecksumErrors > rep.Handoffs {
		t.Errorf("checksum errors %d exceed handoffs", rep.ChecksumErrors)
	}
}

func TestMetaStoreHealthy(t *testing.T) {
	rng := simrand.New(5)
	rep := MetaStore(rng, 2000, 0)
	if rep.AssertionFailures != 0 || rep.ZeroSizeFiles != 0 {
		t.Errorf("healthy metadata service failed audit: %+v", rep)
	}
}

func TestMetaStoreTornCommits(t *testing.T) {
	rng := simrand.New(6)
	rep := MetaStore(rng, 3000, 0.05)
	if rep.AssertionFailures == 0 {
		t.Error("torn commits never broke the directory invariant")
	}
}

func TestPutUint64(t *testing.T) {
	b := make([]byte, 8)
	putUint64(b, 0x0102030405060708)
	want := []byte{8, 7, 6, 5, 4, 3, 2, 1}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("byte %d = %d, want %d", i, b[i], want[i])
		}
	}
}
