package workload

import (
	"farron/internal/mesi"
	"farron/internal/simrand"
	"farron/internal/stm"
)

// ChecksumReport summarizes a run of the checksum storage service.
type ChecksumReport struct {
	// Requests is the number of client requests processed.
	Requests int
	// Corruptions is the number of injected SDCs.
	Corruptions int
	// MismatchReports is how many requests the service flagged as
	// invalid-data errors. On a faulty CPU these are false alarms: the
	// data is fine, the checksum instruction lied (the paper's first
	// production case, which triggered repeated requests and hurt
	// performance).
	MismatchReports int
	// SilentAccepts is how many corrupted checksums happened to still
	// verify (corruption before the parity was recorded, Observation 12).
	SilentAccepts int
}

// ChecksumService simulates the Section 2.2 storage application: each
// request packs a payload, computes its CRC at write time (through the
// possibly-faulty CPU), then verifies at read time on a healthy path.
func ChecksumService(rng *simrand.Source, requests, payloadLen int, corrupt CorruptFn) ChecksumReport {
	var rep ChecksumReport
	payload := make([]byte, payloadLen)
	for r := 0; r < requests; r++ {
		for i := range payload {
			payload[i] = byte(rng.Uint64())
		}
		sum, corrupted := CRC32Faulty(payload, corrupt)
		rep.Requests++
		if corrupted {
			rep.Corruptions++
		}
		// Read path (healthy verifier, e.g. the client side).
		if CRC32(payload) != sum {
			rep.MismatchReports++
		} else if corrupted {
			rep.SilentAccepts++
		}
	}
	return rep
}

// SharedBufferReport summarizes the cache-coherence scenario.
type SharedBufferReport struct {
	Handoffs        int
	StaleReads      int
	ChecksumErrors  int
	DroppedInvalSum uint64
}

// SharedBuffer simulates the Section 2.2 coherence case: a client thread on
// one core packs data and its checksum into a ring of shared buffers read
// by a daemon thread on another core. With a defective coherence
// implementation (invalidations dropped with probability dropProb) the
// daemon sometimes reads a mix of old and new words, and the checksum
// catches the mismatch. The ring rotation means poisoned (stale) lines are
// eventually evicted, so corruption is intermittent — exactly the
// hard-to-debug symptom the paper describes.
func SharedBuffer(rng *simrand.Source, handoffs, words int, dropProb float64) SharedBufferReport {
	const ringSlots = 4
	sys := mesi.NewSystem(2, (words+1)*ringSlots*2)
	if dropProb > 0 {
		frng := rng.Derive("coherence-fault")
		sys.SetFault(func(target int, addr uint64) bool {
			return target == 1 && frng.Bool(dropProb)
		})
	}
	const clientCore, daemonCore = 0, 1
	var rep SharedBufferReport
	buf := make([]byte, words*8)
	written := make([]uint64, words)
	for h := 0; h < handoffs; h++ {
		base := uint64(h%ringSlots) * uint64(words+1)
		// Client writes payload words then the checksum word.
		for w := 0; w < words; w++ {
			v := rng.Uint64()
			written[w] = v
			sys.Write(clientCore, base+uint64(w), v)
		}
		// Compute checksum over what the client wrote (its own coherent
		// view, which is authoritative).
		for w := 0; w < words; w++ {
			v := sys.Read(clientCore, base+uint64(w))
			putUint64(buf[w*8:], v)
		}
		sum := CRC32(buf)
		sys.Write(clientCore, base+uint64(words), uint64(sum))

		// Daemon reads everything from its own core.
		stale := false
		for w := 0; w < words; w++ {
			v := sys.Read(daemonCore, base+uint64(w))
			if v != written[w] {
				stale = true
			}
			putUint64(buf[w*8:], v)
		}
		gotSum := uint32(sys.Read(daemonCore, base+uint64(words)))
		rep.Handoffs++
		if stale {
			rep.StaleReads++
		}
		if CRC32(buf) != gotSum {
			rep.ChecksumErrors++
		}
	}
	rep.DroppedInvalSum = sys.Stats().DroppedInvalidation
	return rep
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// MetaStoreReport summarizes the metadata-service scenario.
type MetaStoreReport struct {
	Operations        int
	AssertionFailures int
	ZeroSizeFiles     int
}

// MetaStore simulates the Section 2.2 metadata case (and Meta's lost-files
// case): a file-metadata service keeps (fileID → size) records plus a
// directory count inside transactional memory. Healthy hardware preserves
// the invariant "directory count == number of live files and no live file
// has size zero"; a defective transactional region (torn commits with
// probability tornProb) breaks it, surfacing as assertion failures and
// zero-size files.
func MetaStore(rng *simrand.Source, ops int, tornProb float64) MetaStoreReport {
	const maxFiles = 64
	// Layout: word 0 = directory count; words 1..maxFiles = file sizes
	// (0 = absent).
	store := stm.New(1 + maxFiles)
	if tornProb > 0 {
		frng := rng.Derive("trx-fault")
		store.SetFault(func() stm.FaultKind {
			if frng.Bool(tornProb) {
				return stm.FaultTornCommit
			}
			return stm.FaultNone
		})
	}
	var rep MetaStoreReport
	for op := 0; op < ops; op++ {
		slot := 1 + rng.Intn(maxFiles)
		create := rng.Bool(0.6)
		size := 1 + uint64(rng.Intn(1<<20))
		_ = store.Atomically(func(tx *stm.Tx) error {
			cur, err := tx.Load(slot)
			if err != nil {
				return err
			}
			count, err := tx.Load(0)
			if err != nil {
				return err
			}
			if create && cur == 0 {
				tx.Store(slot, size)
				tx.Store(0, count+1)
			} else if !create && cur != 0 {
				tx.Store(slot, 0)
				tx.Store(0, count-1)
			}
			return nil
		})
		rep.Operations++
	}
	// Post-hoc audit: the service's assertions.
	live := 0
	for slot := 1; slot <= maxFiles; slot++ {
		if store.ReadDirect(slot) != 0 {
			live++
		}
	}
	count := store.ReadDirect(0)
	if uint64(live) != count {
		rep.AssertionFailures++
	}
	// "Misjudged file size to be zero": a torn commit can decrement the
	// count without clearing the slot or vice versa; count-slot skew is
	// the visible wreckage. Count files the directory believes exist
	// beyond the live set as zero-size sightings.
	if count > uint64(live) {
		rep.ZeroSizeFiles = int(count) - live
	}
	return rep
}
