package workload

import (
	"testing"

	"farron/internal/simrand"
)

func BenchmarkCRC32(b *testing.B) {
	data := make([]byte, 4096)
	rng := simrand.New(1)
	for i := range data {
		data[i] = byte(rng.Uint64())
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink = CRC32(data)
	}
	_ = sink
}

func BenchmarkFNV64(b *testing.B) {
	data := make([]byte, 1024)
	b.SetBytes(int64(len(data)))
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = FNV64(data)
	}
	_ = sink
}

func BenchmarkMatMul64(b *testing.B) {
	const n = 32
	rng := simrand.New(2)
	a := make([]float64, n*n)
	c := make([]float64, n*n)
	for i := range a {
		a[i] = rng.Float64()
		c[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul64(a, c, n, nil)
	}
}

func BenchmarkArcTan(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = ArcTan(float64(i%100) * 0.07)
	}
	_ = sink
}

func BenchmarkBigIntMul(b *testing.B) {
	x := BigFromUint64(0xDEADBEEFCAFEBABE)
	y := BigFromUint64(0x123456789ABCDEF0)
	// Grow to ~16 limbs each.
	for i := 0; i < 3; i++ {
		x, _ = x.Mul(x, nil)
		y, _ = y.Mul(y, nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Mul(y, nil)
	}
}

func BenchmarkHashMapPutGet(b *testing.B) {
	m := NewHashMap(1<<16, nil)
	keys := make([][]byte, 1024)
	rng := simrand.New(3)
	for i := range keys {
		keys[i] = make([]byte, 16)
		for j := range keys[i] {
			keys[i][j] = byte(rng.Uint64())
		}
		m.Put(keys[i], uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get(keys[i%len(keys)])
	}
}
