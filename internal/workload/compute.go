// Package workload implements genuine computations — checksums, hashing,
// matrix algebra, transcendental series, big-integer arithmetic and string
// manipulation — with an injection hook through which a processor defect
// corrupts results. The application scenarios of Section 2.2 (checksum
// mismatch floods, inconsistent shared buffers, metadata assertion
// failures) are built from these pieces in apps.go.
//
// Every computation here verifies its own output the way a production
// system would (end-to-end checksum, duplicate execution, algebraic check,
// tolerance test), so the package demonstrates which defenses catch which
// corruptions — the subject of Observation 12.
package workload

import (
	"math"

	"farron/internal/model"
)

// CorruptFn mutates a result bit pattern of the given datatype; ok reports
// whether a corruption was applied. A nil CorruptFn models healthy
// hardware.
type CorruptFn func(dt model.DataType, lo uint64, hi uint16) (newLo uint64, newHi uint16, ok bool)

// maybeCorrupt applies fn if non-nil.
func maybeCorrupt(fn CorruptFn, dt model.DataType, lo uint64, hi uint16) (uint64, uint16, bool) {
	if fn == nil {
		return lo, hi, false
	}
	return fn(dt, lo, hi)
}

// --- CRC32 (our own table-driven implementation, IEEE polynomial) ---

// crcTable is the IEEE CRC-32 lookup table, built at init.
var crcTable [256]uint32

func init() {
	const poly = 0xEDB88320
	for i := range crcTable {
		c := uint32(i)
		for k := 0; k < 8; k++ {
			if c&1 == 1 {
				c = poly ^ c>>1
			} else {
				c >>= 1
			}
		}
		crcTable[i] = c
	}
}

// CRC32 computes the IEEE CRC-32 of data (reflected, init/final 0xFFFFFFFF),
// matching the standard Ethernet/zlib checksum.
func CRC32(data []byte) uint32 {
	c := ^uint32(0)
	for _, b := range data {
		c = crcTable[byte(c)^b] ^ c>>8
	}
	return ^c
}

// CRC32Faulty computes CRC32 but passes the final value through the
// corruption hook — modeling the paper's first production case, where a
// checksum-calculation instruction gave wrong results intermittently.
func CRC32Faulty(data []byte, corrupt CorruptFn) (sum uint32, corrupted bool) {
	good := CRC32(data)
	lo, _, ok := maybeCorrupt(corrupt, model.DTUint32, uint64(good), 0)
	return uint32(lo), ok
}

// --- FNV-1a hashing (our own implementation) ---

// FNV64 computes the 64-bit FNV-1a hash of data.
func FNV64(data []byte) uint64 {
	const offset = 14695981039346656037
	const prime = 1099511628211
	h := uint64(offset)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

// FNV64Faulty hashes with the corruption hook applied to the result (the
// defective-hashing production case: a hash map's bucket choice goes wrong).
func FNV64Faulty(data []byte, corrupt CorruptFn) (h uint64, corrupted bool) {
	good := FNV64(data)
	lo, _, ok := maybeCorrupt(corrupt, model.DTBin64, good, 0)
	return lo, ok
}

// --- Matrix multiplication ---

// MatMul64 multiplies two n×n float64 matrices (row-major), passing each
// output element through the corruption hook. It returns the product and
// the number of corrupted elements.
func MatMul64(a, b []float64, n int, corrupt CorruptFn) (c []float64, corrupted int) {
	if len(a) != n*n || len(b) != n*n {
		panic("workload: matrix size mismatch")
	}
	c = make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for k := 0; k < n; k++ {
				sum += a[i*n+k] * b[k*n+j]
			}
			lo, _, ok := maybeCorrupt(corrupt, model.DTFloat64, math.Float64bits(sum), 0)
			if ok {
				corrupted++
				sum = math.Float64frombits(lo)
			}
			c[i*n+j] = sum
		}
	}
	return c, corrupted
}

// MatMulVerify re-executes the multiplication (redundancy-based detection,
// Section 6.2) and returns the number of mismatching elements.
func MatMulVerify(a, b, c []float64, n int) (mismatches int) {
	ref, _ := MatMul64(a, b, n, nil)
	for i := range ref {
		if ref[i] != c[i] && !(math.IsNaN(ref[i]) && math.IsNaN(c[i])) {
			mismatches++
		}
	}
	return mismatches
}

// --- Arctangent via series (the FPU1/FPU2 defective math function) ---

// ArcTan approximates atan(x) with an argument-reduced Euler series,
// accurate to ~1e-15 over the real line. It is the "complex math function"
// computed by the defective floating-point instruction in FPU1/FPU2.
func ArcTan(x float64) float64 {
	if math.IsNaN(x) {
		return x
	}
	neg := x < 0
	if neg {
		x = -x
	}
	invert := x > 1
	if invert {
		x = 1 / x
	}
	// Further reduce via atan(x) = atan(y) + atan((x-y)/(1+x*y)) with
	// y = 0.5 when x > 0.5, keeping the series argument small.
	var base float64
	if x > 0.5 {
		const y = 0.5
		base = atanSeries(y)
		x = (x - y) / (1 + x*y)
	}
	r := base + atanSeries(x)
	if invert {
		r = math.Pi/2 - r
	}
	if neg {
		r = -r
	}
	return r
}

// atanSeries is the Euler transform of the arctangent series, converging
// fast for |x| <= ~0.6.
func atanSeries(x float64) float64 {
	x2 := x * x
	w := x2 / (1 + x2)
	term := x / (1 + x2)
	sum := term
	for n := 1; n < 40; n++ {
		term *= w * 2 * float64(n) / (2*float64(n) + 1)
		sum += term
		if math.Abs(term) < 1e-18*math.Abs(sum) {
			break
		}
	}
	return sum
}

// ArcTanFaulty evaluates ArcTan through the corruption hook (datatype
// float64x: the x87 extended-precision path of the defective instruction).
func ArcTanFaulty(x float64, corrupt CorruptFn) (v float64, corrupted bool) {
	good := ArcTan(x)
	// The extended-precision intermediate is what the defect flips.
	// Convert through the 80-bit representation, corrupt, convert back.
	f80lo, f80hi, ok := func() (uint64, uint16, bool) {
		if corrupt == nil {
			return 0, 0, false
		}
		f := float80Bits(good)
		return maybeCorrupt(corrupt, model.DTFloat64x, f.lo, f.hi)
	}()
	if !ok {
		return good, false
	}
	return float80Value(f80lo, f80hi), true
}

// float80 conversion helpers (duplicated minimally from inject to keep the
// workload substrate dependency-light; inject owns the authoritative
// implementation and the tests cross-check the two).
type f80 struct {
	lo uint64
	hi uint16
}

func float80Bits(f float64) f80 {
	bits := math.Float64bits(f)
	sign := uint16(bits >> 63)
	exp := int((bits >> 52) & 0x7FF)
	frac := bits & ((1 << 52) - 1)
	switch {
	case exp == 0x7FF:
		return f80{lo: 1<<63 | frac<<11, hi: sign<<15 | 0x7FFF}
	case exp == 0 && frac == 0:
		return f80{hi: sign << 15}
	case exp == 0:
		e := -1022
		for frac&(1<<52) == 0 {
			frac <<= 1
			e--
		}
		frac &= (1 << 52) - 1
		return f80{lo: 1<<63 | frac<<11, hi: sign<<15 | uint16(e+16383)}
	default:
		return f80{lo: 1<<63 | frac<<11, hi: sign<<15 | uint16(exp-1023+16383)}
	}
}

func float80Value(lo uint64, hi uint16) float64 {
	sign := hi >> 15
	exp := int(hi & 0x7FFF)
	if exp == 0x7FFF {
		if lo<<1 == 0 {
			return math.Inf(1 - 2*int(sign))
		}
		return math.NaN()
	}
	if lo == 0 {
		if sign == 1 {
			return math.Copysign(0, -1)
		}
		return 0
	}
	for lo&(1<<63) == 0 {
		lo <<= 1
		exp--
	}
	v := math.Ldexp(float64(lo)/(1<<63), exp-16383)
	if sign == 1 {
		v = -v
	}
	return v
}

// --- Big-integer arithmetic (large integer workload of MIX1) ---

// BigInt is an arbitrary-precision unsigned integer as little-endian
// 32-bit limbs.
type BigInt []uint32

// BigFromUint64 builds a BigInt from a uint64.
func BigFromUint64(v uint64) BigInt {
	if v == 0 {
		return BigInt{}
	}
	if v>>32 == 0 {
		return BigInt{uint32(v)}
	}
	return BigInt{uint32(v), uint32(v >> 32)}
}

// norm strips leading zero limbs.
func (a BigInt) norm() BigInt {
	n := len(a)
	for n > 0 && a[n-1] == 0 {
		n--
	}
	return a[:n]
}

// Add returns a+b.
func (a BigInt) Add(b BigInt) BigInt {
	if len(a) < len(b) {
		a, b = b, a
	}
	out := make(BigInt, len(a)+1)
	var carry uint64
	for i := range a {
		s := uint64(a[i]) + carry
		if i < len(b) {
			s += uint64(b[i])
		}
		out[i] = uint32(s)
		carry = s >> 32
	}
	out[len(a)] = uint32(carry)
	return out.norm()
}

// Mul returns a*b (schoolbook), passing each output limb through the
// corruption hook.
func (a BigInt) Mul(b BigInt, corrupt CorruptFn) (BigInt, int) {
	if len(a) == 0 || len(b) == 0 {
		return BigInt{}, 0
	}
	out := make(BigInt, len(a)+len(b))
	for i := range a {
		var carry uint64
		for j := range b {
			t := uint64(a[i])*uint64(b[j]) + uint64(out[i+j]) + carry
			out[i+j] = uint32(t)
			carry = t >> 32
		}
		out[i+len(b)] += uint32(carry)
	}
	corrupted := 0
	for i := range out {
		lo, _, ok := maybeCorrupt(corrupt, model.DTUint32, uint64(out[i]), 0)
		if ok {
			out[i] = uint32(lo)
			corrupted++
		}
	}
	return out.norm(), corrupted
}

// Mod returns a mod m for small m (algebraic residue check: the classic
// "casting out nines" corruption detector).
func (a BigInt) Mod(m uint64) uint64 {
	if m == 0 {
		panic("workload: mod by zero")
	}
	var r uint64
	for i := len(a) - 1; i >= 0; i-- {
		// r = (r·2^32 + limb) mod m without 64-bit overflow.
		r = (mulmod(r, 1<<32, m) + uint64(a[i])%m) % m
	}
	return r
}

// Equal reports limb-wise equality after normalization.
func (a BigInt) Equal(b BigInt) bool {
	a, b = a.norm(), b.norm()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CheckMulResidue verifies c == a*b via residues mod a 61-bit prime. It
// catches most corruptions but — like any checksum computed after the fact
// (Observation 12) — passes if the corruption hit before residues were
// taken.
func CheckMulResidue(a, b, c BigInt) bool {
	const p = (1 << 61) - 1
	ra, rb, rc := a.Mod(p), b.Mod(p), c.Mod(p)
	return mulmod(ra, rb, p) == rc
}

// mulmod computes (a*b) mod m via binary decomposition (m < 2^62).
func mulmod(a, b, m uint64) uint64 {
	a %= m
	b %= m
	var r uint64
	for b > 0 {
		if b&1 == 1 {
			r = (r + a) % m
		}
		a = (a << 1) % m
		b >>= 1
	}
	return r
}

// --- String manipulation (MIX1's string workload) ---

// ReverseString returns s reversed bytewise, passing each byte through the
// corruption hook.
func ReverseString(s []byte, corrupt CorruptFn) (out []byte, corrupted int) {
	out = make([]byte, len(s))
	for i, b := range s {
		lo, _, ok := maybeCorrupt(corrupt, model.DTByte, uint64(b), 0)
		if ok {
			b = byte(lo)
			corrupted++
		}
		out[len(s)-1-i] = b
	}
	return out, corrupted
}

// StringRoundTripOK reverses twice and compares: duplicate-execution
// detection for the string workload.
func StringRoundTripOK(s []byte, corrupt CorruptFn) bool {
	once, _ := ReverseString(s, corrupt)
	twice, _ := ReverseString(once, nil)
	if len(twice) != len(s) {
		return false
	}
	for i := range s {
		if twice[i] != s[i] {
			return false
		}
	}
	return true
}
