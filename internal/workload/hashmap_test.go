package workload

import (
	"fmt"
	"testing"

	"farron/internal/simrand"
)

func TestHashMapBasics(t *testing.T) {
	m := NewHashMap(64, nil)
	for i := 0; i < 40; i++ {
		key := []byte(fmt.Sprintf("key-%03d", i))
		if !m.Put(key, uint64(i)) {
			t.Fatalf("Put %d failed", i)
		}
	}
	if m.Len() != 40 {
		t.Errorf("Len = %d", m.Len())
	}
	for i := 0; i < 40; i++ {
		v, ok := m.Get([]byte(fmt.Sprintf("key-%03d", i)))
		if !ok || v != uint64(i) {
			t.Fatalf("Get %d = %d,%v", i, v, ok)
		}
	}
	if _, ok := m.Get([]byte("absent")); ok {
		t.Error("absent key found")
	}
}

func TestHashMapUpdate(t *testing.T) {
	m := NewHashMap(16, nil)
	m.Put([]byte("k"), 1)
	m.Put([]byte("k"), 2)
	if m.Len() != 1 {
		t.Errorf("Len = %d after update", m.Len())
	}
	if v, _ := m.Get([]byte("k")); v != 2 {
		t.Errorf("value = %d", v)
	}
}

func TestHashMapFull(t *testing.T) {
	m := NewHashMap(16, nil) // size 16, capacity 12
	inserted := 0
	for i := 0; i < 20; i++ {
		if m.Put([]byte(fmt.Sprintf("k%d", i)), 1) {
			inserted++
		}
	}
	if inserted >= 20 {
		t.Error("load-factor guard never triggered")
	}
}

func TestHashMapServiceHealthy(t *testing.T) {
	rep := HashMapService(simrand.New(1), 500, nil)
	if rep.LostKeys != 0 || rep.HashCorruptions != 0 {
		t.Errorf("healthy service lost keys: %+v", rep)
	}
	if rep.Inserted != 500 {
		t.Errorf("inserted = %d", rep.Inserted)
	}
}

func TestHashMapServiceDefectiveHashing(t *testing.T) {
	// The Section 2.2 metadata case: defective hashing makes inserted
	// keys unfindable — the assertion failures the application saw.
	rng := simrand.New(2)
	// The flipped bit must land inside the bucket-index bits (table of
	// 4096 buckets → bits 0-11) for the corruption to change placement.
	hook := HashCorruptHook(rng.Derive("fault"), 0.02, 1<<5)
	rep := HashMapService(rng, 2000, hook)
	if rep.HashCorruptions == 0 {
		t.Fatal("no hash corruptions injected")
	}
	if rep.LostKeys == 0 {
		t.Error("defective hashing lost no keys")
	}
	// Losses bounded by corruption count: each corrupt hash affects at
	// most one key's insert or audit lookup.
	if rep.LostKeys > rep.HashCorruptions {
		t.Errorf("lost %d > corruptions %d", rep.LostKeys, rep.HashCorruptions)
	}
}
