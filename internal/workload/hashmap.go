package workload

import (
	"farron/internal/model"
	"farron/internal/simrand"
)

// HashMap is an open-addressing (linear probing) hash table keyed by byte
// strings, hashing through the possibly-faulty CPU. It is the substrate of
// the paper's third production case: "the application used a hash map to
// manage its metadata, and defective hashing calculation in a faulty
// processor affected its metadata service", surfacing as assertion
// failures.
type HashMap struct {
	keys    [][]byte
	values  []uint64
	used    []bool
	n       int
	corrupt CorruptFn
	// HashCorruptions counts hook firings.
	HashCorruptions int
}

// NewHashMap creates a table with the given bucket count (rounded up to a
// power of two) and corruption hook (nil = healthy).
func NewHashMap(buckets int, corrupt CorruptFn) *HashMap {
	size := 16
	for size < buckets {
		size <<= 1
	}
	return &HashMap{
		keys:    make([][]byte, size),
		values:  make([]uint64, size),
		used:    make([]bool, size),
		corrupt: corrupt,
	}
}

// hash computes the bucket index through the (possibly faulty) CPU.
func (m *HashMap) hash(key []byte) int {
	h, corrupted := FNV64Faulty(key, m.corrupt)
	if corrupted {
		m.HashCorruptions++
	}
	return int(h & uint64(len(m.keys)-1))
}

// Put inserts or updates a key. It returns false when the table is full.
func (m *HashMap) Put(key []byte, value uint64) bool {
	if m.n >= len(m.keys)*3/4 {
		return false
	}
	i := m.hash(key)
	for m.used[i] {
		if bytesEq(m.keys[i], key) {
			m.values[i] = value
			return true
		}
		i = (i + 1) & (len(m.keys) - 1)
	}
	m.keys[i] = append([]byte(nil), key...)
	m.values[i] = value
	m.used[i] = true
	m.n++
	return true
}

// Get looks a key up. With a defective hash, a key inserted under one
// (corrupt) hash may be unfindable under the correct one — and vice versa:
// the silent metadata loss of the production case.
func (m *HashMap) Get(key []byte) (uint64, bool) {
	i := m.hash(key)
	for probes := 0; probes < len(m.keys); probes++ {
		if !m.used[i] {
			return 0, false
		}
		if bytesEq(m.keys[i], key) {
			return m.values[i], true
		}
		i = (i + 1) & (len(m.keys) - 1)
	}
	return 0, false
}

// Len returns the number of live entries.
func (m *HashMap) Len() int { return m.n }

func bytesEq(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// HashMapReport summarizes the metadata-service scenario.
type HashMapReport struct {
	Inserted int
	// LostKeys are keys the service inserted but can no longer find —
	// the assertion failures of the production incident.
	LostKeys int
	// HashCorruptions counts defective hash computations.
	HashCorruptions int
}

// HashMapService inserts n metadata keys and then audits every one of them,
// counting lookups that fail despite a successful insert.
func HashMapService(rng *simrand.Source, n int, corrupt CorruptFn) HashMapReport {
	m := NewHashMap(n*2, corrupt)
	keys := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		key := make([]byte, 16)
		for b := range key {
			key[b] = byte(rng.Uint64())
		}
		if m.Put(key, uint64(i)) {
			keys = append(keys, key)
		}
	}
	rep := HashMapReport{Inserted: len(keys)}
	for _, key := range keys {
		if _, ok := m.Get(key); !ok {
			rep.LostKeys++
		}
	}
	rep.HashCorruptions = m.HashCorruptions
	return rep
}

// HashCorruptHook builds the standard defective-hashing hook: flips a fixed
// mask in bin64 hash results with probability p.
func HashCorruptHook(rng *simrand.Source, p float64, mask uint64) CorruptFn {
	return func(dt model.DataType, lo uint64, hi uint16) (uint64, uint16, bool) {
		if dt != model.DTBin64 || !rng.Bool(p) {
			return lo, hi, false
		}
		return lo ^ mask, hi, true
	}
}
