package engine

import (
	"math"
	"testing"
)

func TestSimulateShardsSerialIsSum(t *testing.T) {
	costs := []float64{3, 1, 4, 1, 5}
	if got := SimulateShards(costs, 1); got != 14 {
		t.Errorf("serial makespan = %v, want 14", got)
	}
	// Clamps below 1.
	if got := SimulateShards(costs, 0); got != 14 {
		t.Errorf("workers=0 makespan = %v, want 14", got)
	}
}

func TestSimulateShardsFIFOAssignment(t *testing.T) {
	// FIFO on 2 workers: w0←3, w1←1, w1←4 (idle at 1), w0←1 (idle at 3),
	// w0←5 (idle at 4) → busy = [9, 5], makespan 9.
	costs := []float64{3, 1, 4, 1, 5}
	if got := SimulateShards(costs, 2); got != 9 {
		t.Errorf("2-worker makespan = %v, want 9", got)
	}
}

func TestSimulateShardsBounds(t *testing.T) {
	costs := []float64{0.5, 2.5, 1.0, 0.25, 3.0, 0.75}
	total := 8.0
	maxCost := 3.0
	for _, w := range []int{1, 2, 3, 4, 8, 100} {
		got := SimulateShards(costs, w)
		if got < maxCost-1e-12 {
			t.Errorf("workers=%d makespan %v below max entry cost %v", w, got, maxCost)
		}
		if got > total+1e-12 {
			t.Errorf("workers=%d makespan %v above serial total %v", w, got, total)
		}
		if lower := total / float64(w); got < lower-1e-12 {
			t.Errorf("workers=%d makespan %v below perfect split %v", w, got, lower)
		}
	}
	// More workers than entries: makespan is the max cost.
	if got := SimulateShards(costs, 100); got != maxCost {
		t.Errorf("overprovisioned makespan = %v, want %v", got, maxCost)
	}
}

func TestSimulateShardsEdgeCases(t *testing.T) {
	if got := SimulateShards(nil, 4); got != 0 {
		t.Errorf("empty costs makespan = %v", got)
	}
	// Negative costs are clamped to zero, never subtract.
	if got := SimulateShards([]float64{2, -1, 3}, 1); got != 5 {
		t.Errorf("negative-cost makespan = %v, want 5", got)
	}
}

func TestShardBenchLadder(t *testing.T) {
	costs := []float64{3, 1, 4, 1, 5}
	pts := ShardBench(costs, []int{1, 2, 4})
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[0].Workers != 1 || pts[0].SimWallSecs != 14 || pts[0].Speedup != 1 {
		t.Errorf("serial point = %+v", pts[0])
	}
	if pts[1].Workers != 2 || pts[1].SimWallSecs != 9 {
		t.Errorf("2-worker point = %+v", pts[1])
	}
	if math.Abs(pts[1].Speedup-14.0/9.0) > 1e-12 {
		t.Errorf("2-worker speedup = %v", pts[1].Speedup)
	}
	// Speedup is monotone non-decreasing in workers for FIFO over a fixed
	// cost vector... not guaranteed in general for list scheduling, but it
	// must never drop below 1.
	for _, p := range pts {
		if p.Speedup < 1-1e-12 {
			t.Errorf("workers=%d speedup %v below 1", p.Workers, p.Speedup)
		}
	}
	if ShardBench(nil, []int{1, 2}) != nil {
		t.Error("empty costs should produce no ladder")
	}
}

func TestEntryCostsAndAbsorb(t *testing.T) {
	rep := &RunReport{Experiments: []ExperimentTiming{
		{Name: "a", WallSeconds: 1.5, OutputBytes: 10},
		{Name: "b", WallSeconds: 0.5, OutputBytes: 20, CacheHit: true},
		{Name: "c", WallSeconds: 0.25, Error: "boom"},
	}}
	rep.WallSeconds = 2.0
	rep.CacheHits = 1
	rep.CacheMisses = 2

	costs := rep.EntryCosts()
	if len(costs) != 3 || costs[0] != 1.5 || costs[1] != 0.5 || costs[2] != 0.25 {
		t.Errorf("EntryCosts = %v", costs)
	}

	var tot RunTotals
	tot.Absorb(rep)
	tot.Absorb(rep)
	tot.Absorb(nil) // must be a no-op
	if tot.Runs != 2 || tot.Entries != 6 || tot.Errors != 2 {
		t.Errorf("totals = %+v", tot)
	}
	if tot.WallSeconds != 4.0 || tot.CacheHits != 2 || tot.CacheMisses != 4 {
		t.Errorf("totals accounting = %+v", tot)
	}
	if tot.OutputBytes != 60 {
		t.Errorf("output bytes = %d", tot.OutputBytes)
	}
}
