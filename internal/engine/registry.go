package engine

import (
	"fmt"
	"time"
)

// Result is what an experiment driver returns: structured values plus a
// terminal rendering. Every driver result in internal/experiments satisfies
// it.
type Result interface {
	Render() string
}

// Scale bundles every experiment's size knobs so one registry entry can be
// driven at paper scale, CLI-flag scale or quick smoke scale.
type Scale struct {
	// Population is the fleet size for Table 1 / Table 2 (paper: >1e6).
	Population int
	// SubPopulation is the Observation 11 detailed-log sub-fleet.
	SubPopulation int
	// Records is the SDC record count per datatype for Figures 4-5.
	Records int
	// Fig6Records / Fig7Records are the per-setting sample counts.
	Fig6Records int
	Fig7Records int
	// RefTempC is the Observation 9 reference test temperature.
	RefTempC float64
	// Online is the simulated online time per processor for Table 4.
	Online time.Duration
	// Obs12Records sizes the fault-tolerance evidence base.
	Obs12Records int
	// ExposureGroups / ExposureGroupDur / ExposureSamples configure the
	// exposure-window study.
	ExposureGroups   int
	ExposureGroupDur time.Duration
	ExposureSamples  int
}

// DefaultScale is the paper-scale configuration sdcbench runs.
func DefaultScale() Scale {
	return Scale{
		Population:       1_000_000,
		SubPopulation:    40_000,
		Records:          10_000,
		Fig6Records:      500,
		Fig7Records:      1000,
		RefTempC:         62,
		Online:           72 * time.Hour,
		Obs12Records:     10_000,
		ExposureGroups:   6,
		ExposureGroupDur: 14 * 24 * time.Hour,
		ExposureSamples:  5000,
	}
}

// QuickScale shrinks every knob for smoke runs (CI's parallel smoke and the
// determinism tests): every experiment still executes end to end, just over
// less evidence.
func QuickScale() Scale {
	return Scale{
		Population:       60_000,
		SubPopulation:    20_000,
		Records:          1500,
		Fig6Records:      120,
		Fig7Records:      150,
		RefTempC:         62,
		Online:           6 * time.Hour,
		Obs12Records:     800,
		ExposureGroups:   6,
		ExposureGroupDur: 14 * 24 * time.Hour,
		ExposureSamples:  500,
	}
}

// Experiment groups: which CLI surfaces run which registry entries.
const (
	// GroupFleet is the fleet-scale pipeline study (sdcfleet).
	GroupFleet = "fleet"
	// GroupStudy is the detailed per-processor study (sdcstudy).
	GroupStudy = "study"
	// GroupMitigation is the Farron evaluation (farronctl).
	GroupMitigation = "mitigation"
)

// Experiment is one registry entry: a named driver for one table, figure or
// observation of the paper's evaluation. Run must be a pure function of
// (ctx, scale) — all randomness via substreams of ctx.Rng — so entries can
// execute concurrently against one shared frozen Ctx.
type Experiment struct {
	// Name is the section heading ("Table 1", "Figure 8", …).
	Name string
	// Desc is a one-line description for registry listings.
	Desc string
	// Groups are the CLI surfaces that include this experiment.
	Groups []string
	// Run executes the driver at the given scale.
	Run func(ctx *Ctx, sc Scale) (Result, error)
}

// InGroup reports whether the experiment belongs to the group.
func (e *Experiment) InGroup(group string) bool {
	for _, g := range e.Groups {
		if g == group {
			return true
		}
	}
	return false
}

// Filter returns the registry entries belonging to group, in registry
// order. An empty group selects everything.
func Filter(exps []Experiment, group string) []Experiment {
	if group == "" {
		return exps
	}
	var out []Experiment
	for _, e := range exps {
		if e.InGroup(group) {
			out = append(out, e)
		}
	}
	return out
}

// Section is one rendered experiment of a run.
type Section struct {
	Name string
	Body string
}

// RunExperiments executes the registry entries concurrently (bounded by
// ctx.Workers) against the shared frozen context and returns the rendered
// sections in registry order, together with the run's accounting. Rendered
// output is byte-identical at any worker count; only the timings in the
// report vary. If any experiment fails, the error of the earliest failing
// registry entry is returned (deterministic regardless of scheduling).
func RunExperiments(ctx *Ctx, exps []Experiment, sc Scale) ([]Section, *RunReport, error) {
	rep := newRunReport(ctx, len(exps))
	pool := ctx.Pool()
	sections, err := MapErr(pool, len(exps), func(i int) (Section, error) {
		e := exps[i]
		start := stampStart()
		res, err := e.Run(ctx, sc)
		if err != nil {
			return Section{}, fmt.Errorf("%s: %w", e.Name, err)
		}
		body := res.Render()
		rep.Experiments[i] = ExperimentTiming{
			Name:        e.Name,
			WallSeconds: start.Seconds(),
			OutputBytes: len(body),
		}
		return Section{Name: e.Name, Body: body}, nil
	})
	rep.finish()
	if err != nil {
		return nil, rep, err
	}
	return sections, rep, nil
}
