package engine

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"farron/internal/engine/cache"
)

// Result is what an experiment driver returns: structured values plus a
// terminal rendering. Every driver result in internal/experiments satisfies
// it.
type Result interface {
	Render() string
}

// DefaultStrategy names the screening strategy assumed when a Scale omits
// one: the paper's Farron tool. The strategy vocabulary itself lives in
// internal/fleet (Strategies); the engine only needs the default so the
// transport layers can normalize empty values without importing fleet.
const DefaultStrategy = "farron"

// SweepNamePrefix prefixes the per-strategy entries of the strategy-sweep
// experiment ("Strategy sweep [farron]", …). It is the naming convention
// shared between internal/experiments (which registers the entries) and the
// bench report (which extracts per-strategy cost rows from entries named
// this way) — a string contract, so neither package imports the other.
const SweepNamePrefix = "Strategy sweep ["

// Scale bundles every experiment's size knobs so one registry entry can be
// driven at paper scale, CLI-flag scale or quick smoke scale.
type Scale struct {
	// Population is the fleet size for Table 1 / Table 2 (paper: >1e6).
	Population int
	// Strategy is the screening strategy fleet experiments run under
	// (-screener; empty means DefaultStrategy). It is part of the Scale
	// so it hashes into every cache key and rides the fan-out hello to
	// remote workers.
	Strategy string
	// SubPopulation is the Observation 11 detailed-log sub-fleet.
	SubPopulation int
	// Records is the SDC record count per datatype for Figures 4-5.
	Records int
	// Fig6Records / Fig7Records are the per-setting sample counts.
	Fig6Records int
	Fig7Records int
	// RefTempC is the Observation 9 reference test temperature.
	RefTempC float64
	// Online is the simulated online time per processor for Table 4.
	Online time.Duration
	// Obs12Records sizes the fault-tolerance evidence base.
	Obs12Records int
	// ExposureGroups / ExposureGroupDur / ExposureSamples configure the
	// exposure-window study.
	ExposureGroups   int
	ExposureGroupDur time.Duration
	ExposureSamples  int
}

// DefaultScale is the paper-scale configuration sdcbench runs.
func DefaultScale() Scale {
	return Scale{
		Population:       1_000_000,
		Strategy:         DefaultStrategy,
		SubPopulation:    40_000,
		Records:          10_000,
		Fig6Records:      500,
		Fig7Records:      1000,
		RefTempC:         62,
		Online:           72 * time.Hour,
		Obs12Records:     10_000,
		ExposureGroups:   6,
		ExposureGroupDur: 14 * 24 * time.Hour,
		ExposureSamples:  5000,
	}
}

// QuickScale shrinks every knob for smoke runs (CI's parallel smoke and the
// determinism tests): every experiment still executes end to end, just over
// less evidence.
func QuickScale() Scale {
	return Scale{
		Population:       60_000,
		Strategy:         DefaultStrategy,
		SubPopulation:    20_000,
		Records:          1500,
		Fig6Records:      120,
		Fig7Records:      150,
		RefTempC:         62,
		Online:           6 * time.Hour,
		Obs12Records:     800,
		ExposureGroups:   6,
		ExposureGroupDur: 14 * 24 * time.Hour,
		ExposureSamples:  500,
	}
}

// Experiment groups: which CLI surfaces run which registry entries.
const (
	// GroupFleet is the fleet-scale pipeline study (sdcfleet).
	GroupFleet = "fleet"
	// GroupStudy is the detailed per-processor study (sdcstudy).
	GroupStudy = "study"
	// GroupMitigation is the Farron evaluation (farronctl).
	GroupMitigation = "mitigation"
)

// Experiment is one registry entry: a named driver for one table, figure or
// observation of the paper's evaluation. Run must be a pure function of
// (ctx, scale) — all randomness via substreams of ctx.Rng — so entries can
// execute concurrently against one shared frozen Ctx.
type Experiment struct {
	// Name is the section heading ("Table 1", "Figure 8", …).
	Name string
	// Desc is a one-line description for registry listings.
	Desc string
	// Groups are the CLI surfaces that include this experiment.
	Groups []string
	// Run executes the driver at the given scale.
	Run func(ctx *Ctx, sc Scale) (Result, error)
}

// InGroup reports whether the experiment belongs to the group.
func (e *Experiment) InGroup(group string) bool {
	for _, g := range e.Groups {
		if g == group {
			return true
		}
	}
	return false
}

// Filter returns the registry entries belonging to group, in registry
// order. An empty group selects everything.
func Filter(exps []Experiment, group string) []Experiment {
	if group == "" {
		return exps
	}
	var out []Experiment
	for _, e := range exps {
		if e.InGroup(group) {
			out = append(out, e)
		}
	}
	return out
}

// Section is one rendered experiment of a run.
type Section struct {
	Name string
	Body string
}

// runFingerprint is the code/suite half of every cache key: a hash of the
// run's registry entry names plus the frozen suite fingerprint. The name
// list invalidates cached results when the registry composition changes (a
// proxy for a code change to the evaluation); the suite fingerprint
// invalidates them when suite generation changes. Different registry
// subsets (the per-CLI groups) therefore form distinct cache namespaces —
// deliberately conservative invalidation.
func runFingerprint(ctx *Ctx, exps []Experiment) string {
	parts := make([]string, 0, len(exps)+1)
	parts = append(parts, ctx.Suite.Fingerprint())
	for _, e := range exps {
		parts = append(parts, e.Name)
	}
	return cache.Key(parts...)
}

// entryKey is the content address of one experiment result. The scale is
// hashed through its canonical JSON encoding (struct field order, so any
// added knob invalidates old entries); the worker budget is deliberately
// absent.
func entryKey(seed uint64, name string, sc Scale, fingerprint string) string {
	scb, err := json.Marshal(sc)
	if err != nil {
		// Scale is plain numbers; Marshal cannot fail on it. If it ever
		// does, disable caching for the entry rather than aliasing keys.
		return cache.Key(name, strconv.FormatUint(seed, 10), "unhashable-scale", fingerprint, err.Error())
	}
	return cache.Key(name, strconv.FormatUint(seed, 10), string(scb), fingerprint)
}

// WriteSections renders a run's sections to w in registry order: with
// headed true each section gets a "== name ==" heading (the sdcbench
// report format), otherwise bodies are emitted back to back (the per-group
// CLIs). The first write error is returned so callers notice truncated
// reports (full disk, closed pipe) instead of silently shipping them.
func WriteSections(w io.Writer, sections []Section, headed bool) error {
	for _, s := range sections {
		var err error
		if headed {
			_, err = fmt.Fprintf(w, "== %s ==\n%s\n", s.Name, s.Body)
		} else {
			_, err = fmt.Fprintln(w, s.Body)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
