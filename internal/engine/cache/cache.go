// Package cache is a content-addressed, on-disk result cache for the
// experiment engine. The paper's production workflow re-runs the same
// 633-testcase evaluation over the whole fleet on every policy change (§3,
// §7); the reproduction's equivalent is regenerating every table and figure
// on every sdcbench run even though each registry entry is a pure function
// of (seed, scale). The cache keys a rendered experiment result on a
// SHA-256 over everything that result is a function of — experiment name,
// seed, a canonical hash of the Scale struct, and a code/suite fingerprint
// — so any change to the inputs misses cleanly and the warm path can never
// serve stale bytes.
//
// Two properties are load-bearing for the determinism contract:
//
//   - The worker budget is not key material and cached values carry no
//     trace of it: a warm run is byte-identical to a cold run at any
//     -workers value, exactly like two cold runs.
//   - The cache is advisory. A corrupt, truncated or unreadable entry is a
//     miss (the result is recomputed and the entry overwritten), and a
//     failed store is ignored; no cache state ever turns into a run error
//     or leaks into rendered output. File paths and mtimes are never read
//     into results — only the verified payload bytes.
package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// entrySchema versions the on-disk format; bump on any layout change so old
// files read as misses instead of mis-parsing.
const entrySchema = "farron-cache/v1"

// Entry is one cached experiment result: the rendered section body plus the
// accounting of the run that produced it. WallSeconds is the original
// compute cost, preserved so warm-run reports still show what the entry
// costs to regenerate (and therefore what the hit saved).
type Entry struct {
	// Name is the registry entry name ("Table 1", "Figure 8", …).
	Name string `json:"name"`
	// Body is the rendered Section body, byte-exact.
	Body string `json:"body"`
	// WallSeconds is the wall time of the original computation.
	WallSeconds float64 `json:"wall_seconds"`
}

// file is the on-disk envelope around Entry. Schema, key echo and body
// digest exist purely for validation: any mismatch demotes the file to a
// miss.
type file struct {
	Schema string `json:"schema"`
	Key    string `json:"key"`
	Entry  Entry  `json:"entry"`
	// BodySHA256 is the hex digest of Entry.Body. JSON that truncates at a
	// token boundary can still unmarshal; the digest catches every partial
	// or bit-flipped body regardless of where the damage landed.
	BodySHA256 string `json:"body_sha256"`
}

// Cache is a directory of content-addressed entries, one file per key. It
// carries no in-memory state, so one Cache may be shared by every shard of
// a parallel run; distinct keys never collide and same-key writers each
// stage into a private temp file before an atomic rename, so the last
// writer wins whole.
type Cache struct {
	dir string
}

// Open returns a cache rooted at dir, creating the directory if needed.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("result cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// Key derives a content address from its identifying parts. Each part is
// length-prefixed before hashing so field boundaries cannot alias
// ("ab"+"c" vs "a"+"bc") and the digest is a pure function of the part
// sequence. Callers supply everything the cached value depends on — for
// experiment results that is (name, seed, canonical scale hash, code/suite
// fingerprint) and deliberately not the worker count.
func Key(parts ...string) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// path maps a key to its entry file.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Load returns the entry stored under key, or ok=false on any miss:
// absent, unreadable, wrong schema, wrong key echo, or a body that fails
// its digest. Damage is indistinguishable from absence by design — the
// caller recomputes and Store overwrites the bad file.
func (c *Cache) Load(key string) (Entry, bool) {
	if c == nil {
		return Entry{}, false
	}
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return Entry{}, false
	}
	var f file
	if err := json.Unmarshal(b, &f); err != nil {
		return Entry{}, false
	}
	if f.Schema != entrySchema || f.Key != key {
		return Entry{}, false
	}
	sum := sha256.Sum256([]byte(f.Entry.Body))
	if hex.EncodeToString(sum[:]) != f.BodySHA256 {
		return Entry{}, false
	}
	return f.Entry, true
}

// Store writes the entry under key. The write goes to a same-directory
// temp file first and is renamed into place, so a reader never observes a
// half-written entry — at worst it observes the old file or none. Errors
// are returned for the caller to ignore or count; a failed store must
// never fail the run that produced the result.
func (c *Cache) Store(key string, e Entry) error {
	if c == nil {
		return nil
	}
	sum := sha256.Sum256([]byte(e.Body))
	b, err := json.MarshalIndent(file{
		Schema:     entrySchema,
		Key:        key,
		Entry:      e,
		BodySHA256: hex.EncodeToString(sum[:]),
	}, "", "  ")
	if err != nil {
		return fmt.Errorf("result cache: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		return fmt.Errorf("result cache: %w", err)
	}
	_, werr := tmp.Write(append(b, '\n'))
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), c.path(key))
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("result cache: %w", werr)
	}
	return nil
}
