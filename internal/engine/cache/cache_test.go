package cache

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestKeyLengthPrefixPreventsAliasing(t *testing.T) {
	if Key("ab", "c") == Key("a", "bc") {
		t.Error("Key aliases across part boundaries")
	}
	if Key("x") == Key("x", "") {
		t.Error("Key ignores empty trailing parts")
	}
	if Key("x") != Key("x") {
		t.Error("Key is not deterministic")
	}
}

func TestStoreLoadRoundtrip(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("Table 1", "7", "scale", "fp")
	want := Entry{Name: "Table 1", Body: "rendered body\nline 2\n", WallSeconds: 1.25}
	if err := c.Store(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Load(key)
	if !ok {
		t.Fatal("stored entry did not load")
	}
	if got != want {
		t.Errorf("roundtrip mismatch: got %+v want %+v", got, want)
	}
	if _, ok := c.Load(Key("Table 1", "8", "scale", "fp")); ok {
		t.Error("different key loaded a stored entry")
	}
}

// TestCorruptEntriesAreMisses pins the degradation policy: damaged files
// must read as misses, never as errors or as wrong bytes.
func TestCorruptEntriesAreMisses(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("Figure 4", "7", "scale", "fp")
	ent := Entry{Name: "Figure 4", Body: strings.Repeat("the rendered figure\n", 20), WallSeconds: 0.5}
	if err := c.Store(key, ent); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key+".json")

	corruptions := []struct {
		name string
		do   func(t *testing.T)
	}{
		{"truncated", func(t *testing.T) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"not json", func(t *testing.T) {
			if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"body bitflip", func(t *testing.T) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Flip a byte inside the body region; the digest must catch it
			// even though the JSON still parses.
			i := strings.Index(string(b), "rendered")
			if i < 0 {
				t.Fatal("body text not found in entry file")
			}
			b[i] = 'R'
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"wrong key echo", func(t *testing.T) {
			other := Key("Figure 5", "7", "scale", "fp")
			if err := c.Store(other, ent); err != nil {
				t.Fatal(err)
			}
			b, err := os.ReadFile(filepath.Join(dir, other+".json"))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			if err := c.Store(key, ent); err != nil {
				t.Fatal(err)
			}
			tc.do(t)
			if _, ok := c.Load(key); ok {
				t.Fatal("corrupt entry loaded as a hit")
			}
			// Recompute-and-overwrite restores the entry.
			if err := c.Store(key, ent); err != nil {
				t.Fatal(err)
			}
			if got, ok := c.Load(key); !ok || got != ent {
				t.Fatal("overwritten entry did not load back")
			}
		})
	}
}

func TestNilCacheIsInert(t *testing.T) {
	var c *Cache
	if _, ok := c.Load("deadbeef"); ok {
		t.Error("nil cache reported a hit")
	}
	if err := c.Store("deadbeef", Entry{}); err != nil {
		t.Error("nil cache store errored")
	}
}
