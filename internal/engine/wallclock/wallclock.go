// Package wallclock is the repository's only sanctioned wall-clock access.
//
// The determinism contract (DESIGN.md §5, machine-enforced by sdclint's
// detrand analyzer) bans time.Now throughout the simulation: a result that
// depends on the wall clock is not a function of its seed. Measuring how
// long a run took, however, is not simulation — it is accounting about the
// run, and the perf trajectory of the engine needs real timings. This
// package quarantines that one legitimate use. detrand permits time.Now
// here and nowhere else, and separately forbids importing this package from
// simulation code: only the orchestration layer (internal/engine and the
// cmd/ binaries) may consume it, so a measurement can never leak back into
// simulated behaviour.
package wallclock

import "time"

// Stamp is an opaque instant captured at Start. It deliberately exposes no
// absolute time — only distances between stamps — so callers cannot branch
// simulation logic on the clock.
type Stamp struct {
	t time.Time
}

// Start captures the current instant.
func Start() Stamp { return Stamp{t: time.Now()} }

// Seconds returns the wall time elapsed since the stamp was taken.
func (s Stamp) Seconds() float64 { return time.Since(s.t).Seconds() }

// Date returns the current date as YYYY-MM-DD, for naming run artifacts
// (e.g. BENCH_<date>.json). Artifact names are operational metadata, not
// simulation inputs.
func Date() string { return time.Now().Format("2006-01-02") }
