package engine

// Simulated multi-shard benchmark. The BENCH_*.json trajectory is recorded
// on whatever machine runs sdcbench — historically a single-core container
// (num_cpu: 1), where pool and fan-out speedups physically cannot show up
// in measured wall time. The engine's scheduling, however, is deterministic
// and cheap to model: Pool.Run hands entry i to the next worker that goes
// idle (a FIFO work queue), so given the run's measured per-entry costs the
// makespan at any worker count is a pure computation. ShardBench replays
// that schedule for a ladder of worker counts and reports the simulated
// wall time and speedup — so parallel gains land in BENCH_*.json as data,
// not just in determinism tests, regardless of the benchmark host.

// ShardPoint is one simulated worker count: the makespan the pool's FIFO
// schedule achieves over the measured entry costs, and the speedup against
// the serial makespan (the plain sum of costs).
type ShardPoint struct {
	Workers     int     `json:"workers"`
	SimWallSecs float64 `json:"sim_wall_seconds"`
	Speedup     float64 `json:"speedup"`
}

// SimulateShards returns the makespan of running entries with the given
// costs (seconds) on `workers` workers under the pool's FIFO discipline:
// entry i starts on the earliest-available worker, in index order — exactly
// the assignment Pool.Run's shared atomic counter produces when per-entry
// cost dominates scheduling noise. workers < 1 is clamped to 1.
func SimulateShards(costs []float64, workers int) float64 {
	if workers < 1 {
		workers = 1
	}
	if len(costs) == 0 {
		return 0
	}
	if workers > len(costs) {
		workers = len(costs)
	}
	busy := make([]float64, workers)
	for _, c := range costs {
		if c < 0 {
			c = 0
		}
		// Earliest-available worker takes the next entry.
		min := 0
		for w := 1; w < workers; w++ {
			if busy[w] < busy[min] {
				min = w
			}
		}
		busy[min] += c
	}
	makespan := 0.0
	for _, b := range busy {
		if b > makespan {
			makespan = b
		}
	}
	return makespan
}

// ShardBench simulates the FIFO schedule over costs for each worker count
// and returns the ladder, speedups normalized to the 1-worker makespan.
func ShardBench(costs []float64, workerCounts []int) []ShardPoint {
	if len(costs) == 0 || len(workerCounts) == 0 {
		return nil
	}
	serial := SimulateShards(costs, 1)
	out := make([]ShardPoint, 0, len(workerCounts))
	for _, w := range workerCounts {
		sim := SimulateShards(costs, w)
		sp := ShardPoint{Workers: w, SimWallSecs: sim}
		if sim > 0 {
			sp.Speedup = serial / sim
		}
		out = append(out, sp)
	}
	return out
}

// EntryCosts extracts the measured per-entry wall costs of a run, in entry
// order — the cost vector ShardBench schedules. Cache hits carry their
// original compute cost, so a warm run still benches the full workload.
func (r *RunReport) EntryCosts() []float64 {
	costs := make([]float64, len(r.Experiments))
	for i := range r.Experiments {
		costs[i] = r.Experiments[i].WallSeconds
	}
	return costs
}

// StrategyBench is one screening strategy's measured cost in a run — the
// accounting of its "Strategy sweep [<name>]" registry entry, so the
// strategy-sweep cost comparison lands in BENCH_*.json as committed data.
type StrategyBench struct {
	Strategy    string  `json:"strategy"`
	WallSeconds float64 `json:"wall_seconds"`
	OutputBytes int     `json:"output_bytes"`
	CacheHit    bool    `json:"cache_hit"`
}

// StrategyRows extracts the per-strategy sweep rows of a run by the
// SweepNamePrefix naming contract, in entry (registry) order. Empty when
// the run's scale filtered the sweep out.
func (r *RunReport) StrategyRows() []StrategyBench {
	var rows []StrategyBench
	for i := range r.Experiments {
		e := &r.Experiments[i]
		name, ok := sweepStrategy(e.Name)
		if !ok {
			continue
		}
		rows = append(rows, StrategyBench{
			Strategy:    name,
			WallSeconds: e.WallSeconds,
			OutputBytes: e.OutputBytes,
			CacheHit:    e.CacheHit,
		})
	}
	return rows
}

// SweepCosts is the cost vector of the sweep's per-strategy entries alone —
// the ladder input for SweepShardBench, so the sweep's parallel makespan is
// simulated from measured costs even on a single-core benchmark host.
func (r *RunReport) SweepCosts() []float64 {
	var costs []float64
	for i := range r.Experiments {
		if _, ok := sweepStrategy(r.Experiments[i].Name); ok {
			costs = append(costs, r.Experiments[i].WallSeconds)
		}
	}
	return costs
}

// sweepStrategy parses a registry entry name against the sweep's naming
// contract ("Strategy sweep [<strategy>]"), returning the strategy name.
func sweepStrategy(name string) (string, bool) {
	if len(name) <= len(SweepNamePrefix)+1 ||
		name[:len(SweepNamePrefix)] != SweepNamePrefix ||
		name[len(name)-1] != ']' {
		return "", false
	}
	return name[len(SweepNamePrefix) : len(name)-1], true
}
