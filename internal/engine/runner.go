package engine

import (
	"errors"
	"fmt"
	"runtime"

	"farron/internal/engine/cache"
)

// RunOptions configures a Runner: the seed and worker budget the context is
// built from, the result cache, and the multi-process fan-out.
type RunOptions struct {
	// Seed is the simulation seed the runner builds its context from.
	Seed uint64
	// Workers is the in-process worker budget; values below 1 default to
	// GOMAXPROCS. It affects wall time, never results.
	Workers int
	// Cache is the content-addressed result cache; nil disables caching.
	Cache *cache.Cache
	// Fanout is the worker-process count (subprocesses or cluster daemon
	// connections); values below 2 run in-process unless a Distributor is
	// set at Fanout 1 (a single-host cluster run still distributes).
	Fanout int
	// Distributor is the transport a distributed run moves shards over,
	// required when Fanout > 1. It lives behind an interface so the only
	// packages allowed to spawn subprocesses or dial sockets
	// (internal/engine/fanout and internal/engine/cluster, policed by
	// sdclint) stay out of the engine's import graph.
	Distributor Distributor
}

// Distributor fans registry entries out across worker processes and merges
// what comes back in shard order. Implementations must degrade, never
// corrupt: an entry a worker fails to return is recomputed locally, so the
// merged output is byte-identical to an in-process run.
type Distributor interface {
	Distribute(ctx *Ctx, exps []Experiment, sc Scale, procs int) (*DistResult, error)
}

// DistResult is a Distributor's merged outcome, indexed like the Experiment
// slice it was handed: Sections and Entries hold one slot per entry in
// shard order, Procs the per-worker-process accounting, and Recomputed the
// number of entries re-run locally after a worker loss.
type DistResult struct {
	Sections   []Section
	Entries    []ExperimentTiming
	Procs      []WorkerProc
	Recomputed int
}

// Runner executes registry entries against a shared frozen context under
// one RunOptions bundle: cache and fan-out are options, not separate entry
// points.
type Runner struct {
	opts RunOptions
	ctx  *Ctx
}

// NewRunner builds a runner; the context is constructed lazily on first
// use, so flag errors surface before the expensive calibration starts.
func NewRunner(opts RunOptions) *Runner {
	if opts.Workers < 1 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{opts: opts}
}

// Ctx returns the runner's shared frozen context, building it on first use
// from the configured seed and worker budget.
func (r *Runner) Ctx() *Ctx {
	if r.ctx == nil {
		r.ctx = NewCtxWorkers(r.opts.Seed, r.opts.Workers)
	}
	return r.ctx
}

// Run executes the registry entries and returns the rendered sections in
// registry order plus the run's accounting. Rendered output is
// byte-identical at any worker budget and any fan-out width: entries are
// pure functions of (ctx, scale), cached bodies are byte-exact renderings,
// and a fan-out merge is slot-indexed by shard. Cache hits are served
// before distribution, so a fan-out run only ships misses to workers. If
// any entry fails, the error of the earliest failing entry is returned
// (deterministic regardless of scheduling) with nil sections.
func (r *Runner) Run(exps []Experiment, sc Scale) ([]Section, *RunReport, error) {
	ctx := r.Ctx()
	rep := newRunReport(ctx, len(exps))
	// Name every slot up front so partial accounting after a failed or
	// skipped entry still says which entry each slot belongs to.
	for i := range exps {
		rep.Experiments[i].Name = exps[i].Name
	}
	// Distribution is in play above one worker process, or at exactly one
	// when a Distributor is configured — a single-host `-hosts` run still
	// ships its shards over the transport rather than computing locally.
	distributed := r.opts.Fanout > 1 || (r.opts.Fanout == 1 && r.opts.Distributor != nil)
	if distributed {
		rep.Fanout = r.opts.Fanout
	}

	rc := r.opts.Cache
	sections := make([]Section, len(exps))
	errs := make([]error, len(exps))
	var keys []string
	pending := make([]int, 0, len(exps))
	if rc != nil {
		fp := runFingerprint(ctx, exps)
		keys = make([]string, len(exps))
		for i, e := range exps {
			keys[i] = entryKey(ctx.Seed, e.Name, sc, fp)
			if ent, ok := rc.Load(keys[i]); ok {
				rep.Experiments[i] = ExperimentTiming{
					Name:        e.Name,
					WallSeconds: ent.WallSeconds,
					OutputBytes: len(ent.Body),
					CacheHit:    true,
				}
				sections[i] = Section{Name: e.Name, Body: ent.Body}
				continue
			}
			pending = append(pending, i)
		}
	} else {
		for i := range exps {
			pending = append(pending, i)
		}
	}

	switch {
	case len(pending) == 0:
		// Everything served from cache.
	case distributed:
		if r.opts.Distributor == nil {
			rep.finish()
			return nil, rep, errors.New("engine: RunOptions.Fanout > 1 requires a Distributor (internal/engine/fanout)")
		}
		sub := make([]Experiment, len(pending))
		for j, i := range pending {
			sub[j] = exps[i]
		}
		dr, err := r.opts.Distributor.Distribute(ctx, sub, sc, r.opts.Fanout)
		if err != nil {
			rep.finish()
			return nil, rep, fmt.Errorf("engine: fan-out: %w", err)
		}
		rep.WorkerProcs = dr.Procs
		rep.RecomputedShards = dr.Recomputed
		for j, i := range pending {
			sections[i] = dr.Sections[j]
			rep.Experiments[i] = dr.Entries[j]
			if msg := dr.Entries[j].Error; msg != "" {
				errs[i] = errors.New(msg)
			}
		}
	default:
		pool := ctx.Pool()
		pool.Run(len(pending), func(j int) {
			i := pending[j]
			e := exps[i]
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			startAlloc, startMallocs := ms.TotalAlloc, ms.Mallocs
			start := stampStart()
			res, err := e.Run(ctx, sc)
			if err != nil {
				rep.Experiments[i].WallSeconds = start.Seconds()
				rep.Experiments[i].Error = err.Error()
				errs[i] = err
				return
			}
			body := res.Render()
			runtime.ReadMemStats(&ms)
			rep.Experiments[i] = ExperimentTiming{
				Name:        e.Name,
				WallSeconds: start.Seconds(),
				OutputBytes: len(body),
				AllocBytes:  ms.TotalAlloc - startAlloc,
				Mallocs:     ms.Mallocs - startMallocs,
			}
			sections[i] = Section{Name: e.Name, Body: body}
		})
	}

	if rc != nil {
		for _, i := range pending {
			if errs[i] != nil {
				continue
			}
			// Best-effort: the result is already computed, so a store
			// failure (full disk, read-only dir) must not fail the run; a
			// torn file is re-detected by Load's digest check and treated
			// as a miss.
			//sdclint:ignore errsink best-effort cache population; failure only costs a recompute
			_ = rc.Store(keys[i], cache.Entry{
				Name:        exps[i].Name,
				Body:        sections[i].Body,
				WallSeconds: rep.Experiments[i].WallSeconds,
			})
		}
		for i := range rep.Experiments {
			if rep.Experiments[i].CacheHit {
				rep.CacheHits++
			} else {
				rep.CacheMisses++
			}
		}
	}
	rep.finish()
	for i, err := range errs {
		if err != nil {
			return nil, rep, fmt.Errorf("%s: %w", exps[i].Name, err)
		}
	}
	return sections, rep, nil
}

// NewRunnerCtx builds a runner over a prebuilt context — the entry point
// for contexts a plain seed cannot reconstruct, such as a reference context
// pinning naive implementations or a test context with an adjusted worker
// budget. Seed and worker budget come from the context; opts supplies the
// rest (cache, fan-out).
func NewRunnerCtx(ctx *Ctx, opts RunOptions) *Runner {
	opts.Seed = ctx.Seed
	opts.Workers = ctx.Workers
	return &Runner{opts: opts, ctx: ctx}
}
