// Package engine is the deterministic parallel execution engine: a sharded
// worker pool, an experiment registry, and per-run accounting. It exists so
// fleet-scale simulation can use every core the way the paper's production
// toolchain tests >1M CPUs concurrently (§3) — without giving up the
// repository's bit-for-bit reproducibility contract.
//
// Determinism under parallelism rests on two rules, both machine-enforced
// by sdclint (srcshare) and exercised by the tier-1 determinism tests:
//
//  1. Shard-substream ownership. Work is split into shards whose count is a
//     function of the problem, never of the worker count. Each shard draws
//     its randomness from its own simrand substream, derived as
//     Derive(purpose, shardKey) from an immutable parent seed — so the
//     values a shard sees do not depend on which worker ran it, or when.
//  2. Deterministic merge. Shard results land in a slot indexed by shard
//     ID and are reduced in shard order after the barrier, so aggregation
//     never observes scheduling order.
//
// Under these rules a run with -workers=N is byte-identical to -workers=1;
// the worker count changes wall time and nothing else.
package engine

import (
	"strconv"
	"sync"
	"sync/atomic"

	"farron/internal/simrand"
)

// Pool is a bounded executor for shard-granular work. The zero value is not
// usable; construct with NewPool. A Pool carries no state between calls and
// is safe for concurrent use.
type Pool struct {
	workers int
}

// NewPool returns a pool running at most workers goroutines per call.
// workers < 1 is clamped to 1 (strictly serial execution on the caller's
// goroutine — the reference against which parallel runs must be identical).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// Run executes fn(0) … fn(n-1), each exactly once, using at most
// p.workers goroutines, and returns once all calls complete. With one
// worker (or one shard) it runs serially on the caller's goroutine.
// fn must not depend on execution order across indices.
func (p *Pool) Run(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ShardKey is the canonical substream key of shard i: shard substreams are
// derived as parent.Derive(purpose, ShardKey(i)), which ties the stream to
// the shard's identity rather than to any scheduling accident.
func ShardKey(i int) string { return "shard#" + strconv.Itoa(i) }

// Map applies fn to shards 0 … n-1 on the pool and returns the results in
// shard order. Each shard owns the substream parent.Derive(purpose,
// ShardKey(i)); fn must take all randomness from that substream (never from
// parent directly) so the output is independent of the worker count.
func Map[T any](p *Pool, parent *simrand.Source, purpose string, n int, fn func(rng *simrand.Source, i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	p.Run(n, func(i int) {
		out[i] = fn(parent.Derive(purpose, ShardKey(i)), i)
	})
	return out
}

// MapKeyed is Map with caller-chosen shard keys (e.g. a CPU serial or a
// datatype name): shard i owns parent.Derive(purpose, keys[i]). Stable
// domain keys keep a shard's substream identical even when the shard set
// grows or shrinks between runs.
func MapKeyed[T any](p *Pool, parent *simrand.Source, purpose string, keys []string, fn func(rng *simrand.Source, i int) T) []T {
	if len(keys) == 0 {
		return nil
	}
	out := make([]T, len(keys))
	p.Run(len(keys), func(i int) {
		out[i] = fn(parent.Derive(purpose, keys[i]), i)
	})
	return out
}

// MapPlain is Map for shards that consume no randomness.
func MapPlain[T any](p *Pool, n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	p.Run(n, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// MapErr is MapPlain for fallible shards. All shards run to completion;
// if any failed, the error of the lowest-indexed failing shard is returned
// (lowest-index, not first-observed, so the reported error is
// deterministic) together with the partial results.
func MapErr[T any](p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	errs := make([]error, n)
	p.Run(n, func(i int) {
		out[i], errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
