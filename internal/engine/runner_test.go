package engine

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"farron/internal/engine/cache"
)

func openCache(t *testing.T, dir string) *cache.Cache {
	t.Helper()
	rc, err := cache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return rc
}

// stubDistributor satisfies Distributor without spawning anything: it runs
// the entries in-process and records what it was asked to do, so the
// Runner's fan-out plumbing (cache-before-distribution, merge, accounting)
// is testable inside the engine package — the real subprocess transport has
// its own tests in internal/engine/fanout.
type stubDistributor struct {
	calls    int
	gotProcs int
	gotNames []string
	fail     bool
}

func (d *stubDistributor) Distribute(ctx *Ctx, exps []Experiment, sc Scale, procs int) (*DistResult, error) {
	d.calls++
	d.gotProcs = procs
	d.gotNames = nil
	for _, e := range exps {
		d.gotNames = append(d.gotNames, e.Name)
	}
	if d.fail {
		return nil, errors.New("transport down")
	}
	dr := &DistResult{
		Sections: make([]Section, len(exps)),
		Entries:  make([]ExperimentTiming, len(exps)),
		Procs:    []WorkerProc{{ID: 0, Pid: 12345, Entries: len(exps)}},
	}
	for i, e := range exps {
		res, err := e.Run(ctx, sc)
		if err != nil {
			dr.Entries[i] = ExperimentTiming{Name: e.Name, Error: err.Error()}
			continue
		}
		body := res.Render()
		dr.Sections[i] = Section{Name: e.Name, Body: body}
		dr.Entries[i] = ExperimentTiming{Name: e.Name, OutputBytes: len(body)}
	}
	return dr, nil
}

func TestRunnerFanoutMatchesInProcess(t *testing.T) {
	exps := fakeExps()
	sc := QuickScale()
	want, _ := mustRun(t, NewCtxWorkers(7, 2), exps, sc, nil)

	stub := &stubDistributor{}
	r := NewRunner(RunOptions{Seed: 7, Workers: 2, Fanout: 3, Distributor: stub})
	got, rep, err := r.Run(exps, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !sectionsEqual(want, got) {
		t.Error("fan-out sections differ from in-process sections")
	}
	if stub.calls != 1 || stub.gotProcs != 3 {
		t.Errorf("distributor saw %d call(s) at %d procs, want 1 call at 3", stub.calls, stub.gotProcs)
	}
	if rep.Fanout != 3 {
		t.Errorf("report fanout = %d, want 3", rep.Fanout)
	}
	if len(rep.WorkerProcs) != 1 || rep.WorkerProcs[0].Entries != len(exps) {
		t.Errorf("report worker_procs = %+v, want one proc with %d entries", rep.WorkerProcs, len(exps))
	}
}

func TestRunnerFanoutRequiresDistributor(t *testing.T) {
	r := NewRunner(RunOptions{Seed: 7, Workers: 1, Fanout: 2})
	_, _, err := r.Run(fakeExps(), QuickScale())
	if err == nil || !strings.Contains(err.Error(), "Distributor") {
		t.Fatalf("Fanout without a Distributor returned %v, want a Distributor error", err)
	}
}

func TestRunnerFanoutTransportErrorFailsRun(t *testing.T) {
	stub := &stubDistributor{fail: true}
	r := NewRunner(RunOptions{Seed: 7, Workers: 1, Fanout: 2, Distributor: stub})
	_, rep, err := r.Run(fakeExps(), QuickScale())
	if err == nil || !strings.Contains(err.Error(), "transport down") {
		t.Fatalf("transport failure returned %v, want the transport error", err)
	}
	// Partial accounting still names every slot.
	for i, et := range rep.Experiments {
		if et.Name == "" {
			t.Errorf("entry %d unnamed after transport failure", i)
		}
	}
}

// TestRunnerCacheHitsSkipDistribution pins the fan-out/cache composition:
// a fully warm cache leaves nothing to distribute, and a partially warm one
// ships only the misses to workers.
func TestRunnerCacheHitsSkipDistribution(t *testing.T) {
	dir := t.TempDir()
	exps := fakeExps()
	sc := QuickScale()
	warm := func() *stubDistributor {
		rc := openCache(t, dir)
		stub := &stubDistributor{}
		r := NewRunner(RunOptions{Seed: 7, Workers: 2, Cache: rc, Fanout: 2, Distributor: stub})
		if _, _, err := r.Run(exps, sc); err != nil {
			t.Fatal(err)
		}
		return stub
	}

	cold := warm()
	if cold.calls != 1 || len(cold.gotNames) != len(exps) {
		t.Errorf("cold run distributed %v in %d call(s), want all %d entries once", cold.gotNames, cold.calls, len(exps))
	}
	if hot := warm(); hot.calls != 0 {
		t.Errorf("fully warm run still called the distributor %d time(s)", hot.calls)
	}

	// Damage one entry: exactly that entry goes back out to the workers.
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) != len(exps) {
		t.Fatalf("cache holds %d entries (err %v), want %d", len(entries), err, len(exps))
	}
	b, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(entries[0], b[:len(b)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if part := warm(); part.calls != 1 || len(part.gotNames) != 1 {
		t.Errorf("partially warm run distributed %v in %d call(s), want exactly the 1 miss", part.gotNames, part.calls)
	}
}

// TestNewRunnerCtxMatchesNewRunner: a runner over a prebuilt context must
// produce identical sections and accounting to one built from the same
// seed and worker budget — NewRunnerCtx only changes who constructs the
// context, never what runs.
func TestNewRunnerCtxMatchesNewRunner(t *testing.T) {
	exps := fakeExps()
	sc := QuickScale()
	ctx := NewCtxWorkers(7, 2)
	wrapped, wrappedRep, err := NewRunnerCtx(ctx, RunOptions{}).Run(exps, sc)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(RunOptions{Seed: 7, Workers: 2})
	direct, directRep, err := r.Run(exps, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !sectionsEqual(wrapped, direct) {
		t.Error("NewRunnerCtx sections differ from NewRunner sections")
	}
	if wrappedRep.Seed != directRep.Seed || wrappedRep.Workers != directRep.Workers {
		t.Errorf("report identity differs: ctx-runner seed=%d workers=%d, runner seed=%d workers=%d",
			wrappedRep.Seed, wrappedRep.Workers, directRep.Seed, directRep.Workers)
	}
}

// TestRunnerEntryErrorIsLowestIndexed: with several failing entries the
// reported error is the earliest registry slot, regardless of scheduling.
func TestRunnerEntryErrorIsLowestIndexed(t *testing.T) {
	mkFail := func(name string) Experiment {
		return Experiment{
			Name: name, Desc: "fails", Groups: []string{GroupStudy},
			Run: func(ctx *Ctx, sc Scale) (Result, error) {
				return nil, fmt.Errorf("%s exploded", name)
			},
		}
	}
	exps := append(fakeExps(), mkFail("Fail X"), mkFail("Fail Y"))
	r := NewRunner(RunOptions{Seed: 7, Workers: 4})
	_, _, err := r.Run(exps, QuickScale())
	if err == nil || !strings.Contains(err.Error(), "Fail X") {
		t.Fatalf("got error %v, want the lowest-indexed failure (Fail X)", err)
	}
}
