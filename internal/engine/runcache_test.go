package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"farron/internal/engine/cache"
)

type fakeResult string

func (r fakeResult) Render() string { return string(r) }

// fakeExps is a tiny registry whose rendered bodies are pure functions of
// (seed, scale) — the same contract real entries satisfy — so cache
// behaviour can be tested without running real drivers.
func fakeExps() []Experiment {
	mk := func(name string) Experiment {
		return Experiment{
			Name: name, Desc: "fake", Groups: []string{GroupStudy},
			Run: func(ctx *Ctx, sc Scale) (Result, error) {
				return fakeResult(fmt.Sprintf("%s seed=%d pop=%d\n", name, ctx.Seed, sc.Population)), nil
			},
		}
	}
	return []Experiment{mk("Fake A"), mk("Fake B")}
}

func sectionsEqual(a, b []Section) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func mustRun(t *testing.T, ctx *Ctx, exps []Experiment, sc Scale, rc *cache.Cache) ([]Section, *RunReport) {
	t.Helper()
	sections, rep, err := NewRunnerCtx(ctx, RunOptions{Cache: rc}).Run(exps, sc)
	if err != nil {
		t.Fatal(err)
	}
	return sections, rep
}

func TestRunCacheWarmRunHitsAndMatches(t *testing.T) {
	rc, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewCtxWorkers(7, 2)
	exps := fakeExps()
	sc := QuickScale()

	cold, coldRep := mustRun(t, ctx, exps, sc, rc)
	if coldRep.CacheHits != 0 || coldRep.CacheMisses != len(exps) {
		t.Errorf("cold run: hits=%d misses=%d, want 0/%d", coldRep.CacheHits, coldRep.CacheMisses, len(exps))
	}
	warm, warmRep := mustRun(t, ctx, exps, sc, rc)
	if warmRep.CacheHits != len(exps) || warmRep.CacheMisses != 0 {
		t.Errorf("warm run: hits=%d misses=%d, want %d/0", warmRep.CacheHits, warmRep.CacheMisses, len(exps))
	}
	if !sectionsEqual(cold, warm) {
		t.Error("warm sections differ from cold sections")
	}
	for i, et := range warmRep.Experiments {
		if !et.CacheHit {
			t.Errorf("warm entry %d (%s) not marked cache_hit", i, et.Name)
		}
		if et.WallSeconds != coldRep.Experiments[i].WallSeconds {
			t.Errorf("warm entry %d lost the original compute timing", i)
		}
	}
}

// TestRunCacheWorkersNeverEnterKeys pins the determinism-contract corner:
// -workers must influence neither cache keys nor cached bytes, so a run at
// one budget warms the cache for every other budget.
func TestRunCacheWorkersNeverEnterKeys(t *testing.T) {
	rc, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	exps := fakeExps()
	sc := QuickScale()

	cold, _ := mustRun(t, NewCtxWorkers(7, 1), exps, sc, rc)
	warm, warmRep := mustRun(t, NewCtxWorkers(7, 8), exps, sc, rc)
	if warmRep.CacheHits != len(exps) {
		t.Errorf("workers=8 run after workers=1 warm-up: hits=%d, want %d", warmRep.CacheHits, len(exps))
	}
	if !sectionsEqual(cold, warm) {
		t.Error("cached bytes differ across worker budgets")
	}
}

func TestRunCacheKeySensitivity(t *testing.T) {
	rc, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	exps := fakeExps()
	sc := QuickScale()
	mustRun(t, NewCtxWorkers(7, 2), exps, sc, rc)

	// A different seed must miss everything (both directly and through the
	// suite fingerprint).
	if _, rep := mustRun(t, NewCtxWorkers(8, 2), exps, sc, rc); rep.CacheHits != 0 {
		t.Errorf("seed change still hit %d entries", rep.CacheHits)
	}
	// Any scale change must miss everything.
	scaled := sc
	scaled.Population++
	if _, rep := mustRun(t, NewCtxWorkers(7, 2), exps, scaled, rc); rep.CacheHits != 0 {
		t.Errorf("scale change still hit %d entries", rep.CacheHits)
	}
	// A registry-composition change shifts the run fingerprint.
	if _, rep := mustRun(t, NewCtxWorkers(7, 2), exps[:1], sc, rc); rep.CacheHits != 0 {
		t.Errorf("registry change still hit %d entries", rep.CacheHits)
	}
	// The unchanged run still hits.
	if _, rep := mustRun(t, NewCtxWorkers(7, 2), exps, sc, rc); rep.CacheHits != len(exps) {
		t.Errorf("unchanged run hit %d of %d", rep.CacheHits, len(exps))
	}
}

// TestRunCacheCorruptEntryRecomputes truncates one on-disk entry and
// requires a silent recompute that overwrites the damage.
func TestRunCacheCorruptEntryRecomputes(t *testing.T) {
	dir := t.TempDir()
	rc, err := cache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewCtxWorkers(7, 2)
	exps := fakeExps()
	sc := QuickScale()

	cold, _ := mustRun(t, ctx, exps, sc, rc)
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) != len(exps) {
		t.Fatalf("cache dir holds %d entries (err %v), want %d", len(entries), err, len(exps))
	}
	b, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(entries[0], b[:len(b)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	out, rep := mustRun(t, ctx, exps, sc, rc)
	if !sectionsEqual(cold, out) {
		t.Error("recomputed run differs from the original")
	}
	if rep.CacheHits != len(exps)-1 || rep.CacheMisses != 1 {
		t.Errorf("after corruption: hits=%d misses=%d, want %d/1", rep.CacheHits, rep.CacheMisses, len(exps)-1)
	}
	// The recompute overwrote the damaged file: next run is all hits.
	if _, rep := mustRun(t, ctx, exps, sc, rc); rep.CacheHits != len(exps) {
		t.Errorf("damaged entry was not overwritten: hits=%d, want %d", rep.CacheHits, len(exps))
	}
}

// TestRunReportNamesAndErrorsOnFailure pins partial accounting: a failing
// entry must leave a fully-named Experiments slice with the failure
// recorded, not zero-valued slots.
func TestRunReportNamesAndErrorsOnFailure(t *testing.T) {
	exps := fakeExps()
	exps = append(exps, Experiment{
		Name: "Fake Broken", Desc: "always fails", Groups: []string{GroupStudy},
		Run: func(ctx *Ctx, sc Scale) (Result, error) {
			return nil, fmt.Errorf("synthetic failure")
		},
	})
	ctx := NewCtxWorkers(7, 2)
	_, rep, err := NewRunnerCtx(ctx, RunOptions{}).Run(exps, QuickScale())
	if err == nil {
		t.Fatal("run with a broken entry did not fail")
	}
	for i, et := range rep.Experiments {
		if et.Name != exps[i].Name {
			t.Errorf("entry %d: name %q, want %q", i, et.Name, exps[i].Name)
		}
	}
	broken := rep.Experiments[len(exps)-1]
	if broken.Error == "" {
		t.Error("failed entry has no error recorded")
	}
	for _, et := range rep.Experiments[:len(exps)-1] {
		if et.Error != "" {
			t.Errorf("healthy entry %q carries error %q", et.Name, et.Error)
		}
	}
}
