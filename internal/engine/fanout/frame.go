package fanout

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"farron/internal/engine"
)

// Wire protocol: every message is a frame — a 4-byte big-endian length
// followed by that many bytes of JSON. The parent opens a worker's stream
// with one hello frame, then sends order frames; the worker answers each
// order with one result frame per entry. Closing the worker's stdin is the
// shutdown signal.

const (
	// frameSchema names the protocol version. The hello frame carries it so
	// a parent and a mismatched worker binary fail loudly at the handshake
	// instead of exchanging garbage.
	frameSchema = "farron-fanout/v1"
	// maxFrame bounds a frame body. Rendered sections are kilobytes; a
	// length beyond this is a corrupt or hostile stream, not a big report.
	maxFrame = 64 << 20
)

// hello is the stream-opening frame: everything a worker needs to rebuild
// the parent's frozen context (seed, worker budget) and run its shards at
// the parent's scale. Names echoes the parent's registry entry names so a
// worker running a different registry refuses the stream at the handshake.
type hello struct {
	Schema  string       `json:"schema"`
	Seed    uint64       `json:"seed"`
	Workers int          `json:"workers"`
	Scale   engine.Scale `json:"scale"`
	Names   []string     `json:"names"`
}

// order assigns the shard range [Lo, Hi) of registry entries to a worker.
type order struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// result carries one rendered entry back: the shard index and name (echoed
// for mismatch detection), the rendered body and the compute timing, or the
// driver's error.
type result struct {
	Index       int     `json:"index"`
	Name        string  `json:"name"`
	Body        string  `json:"body"`
	WallSeconds float64 `json:"wall_seconds"`
	Err         string  `json:"err,omitempty"`
}

// writeFrame marshals v and emits header and body through a single Write
// call, so a frame boundary never splits across writes (the worker-kill
// tests count frames by counting writes).
func writeFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if len(body) > maxFrame {
		return fmt.Errorf("fanout: %d-byte frame exceeds the %d-byte bound", len(body), maxFrame)
	}
	buf := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(buf, uint32(len(body)))
	copy(buf[4:], body)
	_, err = w.Write(buf)
	return err
}

// readFrame reads one frame into v. A clean end of stream between frames
// surfaces as io.EOF; an end of stream inside a frame as
// io.ErrUnexpectedEOF.
func readFrame(r io.Reader, v any) error {
	var head [4]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(head[:])
	if n > maxFrame {
		return fmt.Errorf("fanout: %d-byte frame exceeds the %d-byte bound", n, maxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	return json.Unmarshal(body, v)
}
