package fanout

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
	"time"

	"farron/internal/engine"
	"farron/internal/engine/wire"
)

// fixtureHello builds the hello the fixture registry expects.
func fixtureHello(seed uint64) wire.Hello {
	exps := fakeRegistry()
	names := make([]string, len(exps))
	for i, e := range exps {
		names[i] = e.Name
	}
	return wire.Hello{Schema: wire.Schema, Seed: seed, Workers: 1, Scale: engine.QuickScale(), Names: names}
}

// countFDs counts this process's open file descriptors via /proc.
func countFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("no /proc fd table on this platform: %v", err)
	}
	return len(ents)
}

// TestStartWorkerSpawnFailureLeaksNoPipes is the regression test for the
// startWorker error paths: a spawn that fails after the stdin/stdout pipes
// are created must close them. Before the fix, every failed spawn leaked
// pipe descriptors, so a degraded run against a bad argv bled fds; the test
// hammers the failure path and requires a stable fd count.
func TestStartWorkerSpawnFailureLeaksNoPipes(t *testing.T) {
	h := fixtureHello(7)
	argv := []string{"/nonexistent/farron-fanout-worker"}
	// One warm-up call so any lazily-created runtime fds (pipes for child
	// reaping etc.) exist before the baseline is taken.
	if _, err := startWorker(argv, nil, h); err == nil {
		t.Fatal("startWorker succeeded with a nonexistent argv")
	}
	before := countFDs(t)
	for i := 0; i < 32; i++ {
		if _, err := startWorker(argv, nil, h); err == nil {
			t.Fatal("startWorker succeeded with a nonexistent argv")
		}
	}
	after := countFDs(t)
	if after > before+2 {
		t.Errorf("fd count grew from %d to %d across 32 failed spawns; pipes are leaking", before, after)
	}
}

// TestRoundTripTimerExpiryKeepsCompletedResult is the regression test for
// the kill-timer race: when the read has already succeeded but the entry
// timer fires at the boundary, timer.Stop returns false — and the old code
// discarded the valid result as a timeout, recomputing a shard it already
// held. The test forces that exact interleaving: the result frame is
// pre-buffered so the read succeeds instantly, while a 1ns timeout
// guarantees the timer has expired before Stop is called.
func TestRoundTripTimerExpiryKeepsCompletedResult(t *testing.T) {
	opts := helperOptions("fake")
	w, err := startWorker(opts.Command, opts.Env, fixtureHello(7))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = w.shutdown(false) })

	// Pre-buffer a complete, matching result frame: the transport read
	// returns it immediately, long after the 1ns timer expired.
	var buf bytes.Buffer
	want := wire.Result{Index: 0, Name: "Fix A", Body: "held result\n"}
	if err := wire.WriteFrame(&buf, want); err != nil {
		t.Fatal(err)
	}
	w.stdout = io.NopCloser(&buf)

	res, err := w.roundTrip(0, time.Nanosecond)
	if err != nil {
		t.Fatalf("roundTrip discarded a completed result as a timeout: %v", err)
	}
	if res.Index != want.Index || res.Name != want.Name || res.Body != want.Body {
		t.Errorf("roundTrip returned %+v, want %+v", res, want)
	}
}

// TestRoundTripTimeoutStillKillsStalledWorker: the race fix must not weaken
// the timeout itself — a worker that never answers is killed, the read
// fails when the dead worker's pipe closes, and the error names the
// timeout, not the bare EOF.
func TestRoundTripTimeoutStillKillsStalledWorker(t *testing.T) {
	opts := helperOptions("fake", "FANOUT_HELPER_STALL=1")
	w, err := startWorker(opts.Command, opts.Env, fixtureHello(7))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = w.shutdown(false) })

	_, err = w.roundTrip(0, 50*time.Millisecond)
	if err == nil {
		t.Fatal("stalled roundTrip returned a result")
	}
	if !strings.Contains(err.Error(), "timeout") {
		t.Errorf("stalled roundTrip failed with %q, want a timeout error", err)
	}
}
