package fanout

import (
	"errors"
	"fmt"
	"io"

	"farron/internal/engine"
)

// Serve runs the hidden -fanout-worker mode: it reads the hello and then
// work orders from in, executes the ordered registry entries, and writes
// one result frame per entry to out. exps must be the same registry slice
// the parent runs (same binary, same group filter); the hello's name echo
// verifies that and Serve refuses a mismatched stream, which the parent
// absorbs by recomputing locally.
//
// The worker rebuilds the frozen context from the hello's seed and worker
// budget — context construction is deterministic, so the rebuilt context
// matches the parent's and every shard substream is identical wherever the
// shard runs. Serve returns nil on a clean shutdown (EOF on in).
func Serve(in io.Reader, out io.Writer, exps []engine.Experiment) error {
	var h hello
	if err := readFrame(in, &h); err != nil {
		return fmt.Errorf("fanout worker: reading hello: %w", err)
	}
	if h.Schema != frameSchema {
		return fmt.Errorf("fanout worker: protocol %q, want %q", h.Schema, frameSchema)
	}
	if len(h.Names) != len(exps) {
		return fmt.Errorf("fanout worker: parent runs %d entries, this binary has %d — registry mismatch",
			len(h.Names), len(exps))
	}
	for i, name := range h.Names {
		if exps[i].Name != name {
			return fmt.Errorf("fanout worker: entry %d is %q here but %q in the parent — registry mismatch",
				i, exps[i].Name, name)
		}
	}
	ctx := engine.NewCtxWorkers(h.Seed, h.Workers)
	for {
		var o order
		if err := readFrame(in, &o); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("fanout worker: reading order: %w", err)
		}
		if o.Lo < 0 || o.Hi > len(exps) || o.Lo >= o.Hi {
			return fmt.Errorf("fanout worker: order [%d,%d) out of range", o.Lo, o.Hi)
		}
		for i := o.Lo; i < o.Hi; i++ {
			if err := writeFrame(out, runOne(ctx, exps[i], i, h.Scale)); err != nil {
				return fmt.Errorf("fanout worker: writing result: %w", err)
			}
		}
	}
}
