package fanout

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"testing"
	"time"

	"farron/internal/engine"
	"farron/internal/engine/wire"
)

// ---- fixture registry --------------------------------------------------
//
// fakeRegistry must be a pure function of (seed, scale) and identical in
// the parent and in the re-exec'ed helper process — the same contract the
// real registry satisfies. Each entry draws from its own substream so the
// fixtures also exercise the shard-substream scheme across the process
// boundary.

type textResult string

func (r textResult) Render() string { return string(r) }

func fakeRegistry() []engine.Experiment {
	mk := func(name string) engine.Experiment {
		return engine.Experiment{
			Name: name, Desc: "fan-out fixture", Groups: []string{engine.GroupStudy},
			Run: func(ctx *engine.Ctx, sc engine.Scale) (engine.Result, error) {
				rng := ctx.Rng.Derive("fanout-fixture", name)
				return textResult(fmt.Sprintf("%s seed=%d pop=%d draw=%d\n",
					name, ctx.Seed, sc.Population, rng.Uint64())), nil
			},
		}
	}
	return []engine.Experiment{
		mk("Fix A"), mk("Fix B"), mk("Fix C"), mk("Fix D"), mk("Fix E"), mk("Fix F"),
	}
}

// ---- worker helper process ---------------------------------------------

// TestFanoutWorkerHelper is not a test: it is the worker subprocess the
// coordinator tests re-exec (the standard helper-process pattern). The
// FANOUT_HELPER variable selects the registry to serve; FANOUT_HELPER_DIE_AFTER
// kills the process after writing that many result frames, simulating a
// mid-run worker crash.
func TestFanoutWorkerHelper(t *testing.T) {
	mode := os.Getenv("FANOUT_HELPER")
	if mode == "" {
		t.Skip("helper process for the coordinator tests; not a test")
	}
	var exps []engine.Experiment
	switch mode {
	case "fake":
		exps = fakeRegistry()
	case "paper":
		exps = paperSubset()
	default:
		fmt.Fprintf(os.Stderr, "unknown FANOUT_HELPER mode %q\n", mode)
		os.Exit(2)
	}
	out := io.Writer(os.Stdout)
	if n, _ := strconv.Atoi(os.Getenv("FANOUT_HELPER_DIE_AFTER")); n > 0 {
		out = &dyingWriter{w: os.Stdout, remaining: n}
	}
	if os.Getenv("FANOUT_HELPER_STALL") != "" {
		out = &stallWriter{w: out}
	}
	if err := wire.Serve(os.Stdin, out, exps); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Exit before the test framework prints its PASS banner to stdout.
	os.Exit(0)
}

// dyingWriter crashes the process after n writes. wire.Serve emits exactly
// one Write per result frame (the Encoder's single-Write property), so n
// counts completed result frames.
type dyingWriter struct {
	w         io.Writer
	remaining int
}

func (d *dyingWriter) Write(p []byte) (int, error) {
	if d.remaining <= 0 {
		os.Exit(3)
	}
	d.remaining--
	return d.w.Write(p)
}

// stallWriter simulates a wedged worker: every result write sleeps far past
// any test's entry timeout, so only the coordinator's kill timer can end
// the round trip.
type stallWriter struct {
	w io.Writer
}

func (s *stallWriter) Write(p []byte) (int, error) {
	time.Sleep(30 * time.Second)
	return s.w.Write(p)
}

// helperOptions returns coordinator options that re-exec this test binary
// as the worker, entering TestFanoutWorkerHelper in the given mode.
func helperOptions(mode string, extraEnv ...string) Options {
	return Options{
		Command: []string{os.Args[0], "-test.run=TestFanoutWorkerHelper$"},
		Env:     append([]string{"FANOUT_HELPER=" + mode}, extraEnv...),
	}
}

// captureLog routes the std logger into a buffer for the duration of the
// test, so assertions can grep coordinator log lines.
func captureLog(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	prev := log.Writer()
	log.SetOutput(&buf)
	t.Cleanup(func() { log.SetOutput(prev) })
	return &buf
}

// ---- coordinator end to end --------------------------------------------

// inProcessReference renders the fixture registry without fan-out — the
// byte-exact reference every distributed run must match.
func inProcessReference(t *testing.T, exps []engine.Experiment, sc engine.Scale) []engine.Section {
	t.Helper()
	r := engine.NewRunner(engine.RunOptions{Seed: 7, Workers: 1})
	sections, _, err := r.Run(exps, sc)
	if err != nil {
		t.Fatal(err)
	}
	return sections
}

func diffSections(t *testing.T, want, got []engine.Section) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("section count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("section %d (%s): fan-out bytes differ\n--- in-process ---\n%s\n--- fan-out ---\n%s",
				i, want[i].Name, want[i].Body, got[i].Body)
		}
	}
}

func TestDistributeMatchesInProcess(t *testing.T) {
	exps := fakeRegistry()
	sc := engine.QuickScale()
	want := inProcessReference(t, exps, sc)

	c := New(helperOptions("fake"))
	dr, err := c.Distribute(engine.NewCtxWorkers(7, 1), exps, sc, 2)
	if err != nil {
		t.Fatal(err)
	}
	diffSections(t, want, dr.Sections)
	if dr.Recomputed != 0 {
		t.Errorf("healthy run recomputed %d shard(s)", dr.Recomputed)
	}
	if len(dr.Procs) != 2 {
		t.Fatalf("got %d worker procs, want 2", len(dr.Procs))
	}
	served := 0
	for _, p := range dr.Procs {
		if p.Pid == 0 {
			t.Errorf("worker %d has no pid", p.ID)
		}
		if p.ExitError != "" {
			t.Errorf("worker %d exited with %q", p.ID, p.ExitError)
		}
		served += p.Entries
	}
	if served != len(exps) {
		t.Errorf("workers served %d entries, want %d", served, len(exps))
	}
}

// TestDistributeWorkerKillRecomputesLocally is the graceful-degradation
// guarantee: every worker dies after its first result frame, and the
// coordinator must deliver byte-identical output anyway by recomputing the
// lost shards locally.
func TestDistributeWorkerKillRecomputesLocally(t *testing.T) {
	exps := fakeRegistry()
	sc := engine.QuickScale()
	want := inProcessReference(t, exps, sc)
	logs := captureLog(t)

	c := New(helperOptions("fake", "FANOUT_HELPER_DIE_AFTER=1"))
	dr, err := c.Distribute(engine.NewCtxWorkers(7, 1), exps, sc, 2)
	if err != nil {
		t.Fatal(err)
	}
	diffSections(t, want, dr.Sections)
	if dr.Recomputed == 0 {
		t.Error("killed workers lost no shards; the crash path was not exercised")
	}
	lost := 0
	for _, p := range dr.Procs {
		lost += p.Lost
	}
	if lost == 0 {
		t.Error("no worker reported a lost shard")
	}
	if !bytes.Contains(logs.Bytes(), []byte("recomputing")) {
		t.Errorf("coordinator log lacks the recomputed-shard line:\n%s", logs)
	}
	t.Logf("coordinator log after worker kill:\n%s", logs)
}

// TestDistributeSpawnFailureDegradesToLocal: when no worker can start at
// all, the whole run degrades to local compute — still byte-identical.
func TestDistributeSpawnFailureDegradesToLocal(t *testing.T) {
	exps := fakeRegistry()
	sc := engine.QuickScale()
	want := inProcessReference(t, exps, sc)
	logs := captureLog(t)

	c := New(Options{Command: []string{"/nonexistent/farron-fanout-worker"}})
	dr, err := c.Distribute(engine.NewCtxWorkers(7, 1), exps, sc, 2)
	if err != nil {
		t.Fatal(err)
	}
	diffSections(t, want, dr.Sections)
	if dr.Recomputed != len(exps) {
		t.Errorf("recomputed %d shard(s), want all %d", dr.Recomputed, len(exps))
	}
	for _, p := range dr.Procs {
		if p.ExitError == "" {
			t.Errorf("worker %d should carry a spawn error", p.ID)
		}
	}
	if !bytes.Contains(logs.Bytes(), []byte("failed to start")) {
		t.Errorf("coordinator log lacks the spawn-failure line:\n%s", logs)
	}
}

// TestRunnerFanoutEndToEnd drives the full stack the CLIs use — Runner with
// a Coordinator distributor — against the in-process reference.
func TestRunnerFanoutEndToEnd(t *testing.T) {
	exps := fakeRegistry()
	sc := engine.QuickScale()
	want := inProcessReference(t, exps, sc)

	r := engine.NewRunner(engine.RunOptions{
		Seed: 7, Workers: 1, Fanout: 2, Distributor: New(helperOptions("fake")),
	})
	got, rep, err := r.Run(exps, sc)
	if err != nil {
		t.Fatal(err)
	}
	diffSections(t, want, got)
	if rep.Fanout != 2 || len(rep.WorkerProcs) != 2 {
		t.Errorf("report fanout=%d with %d procs, want 2/2", rep.Fanout, len(rep.WorkerProcs))
	}
}
