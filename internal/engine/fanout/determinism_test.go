package fanout

import (
	"testing"

	"farron/internal/engine"
	"farron/internal/experiments"
)

// paperSubset returns the cross-layer determinism trio from the real
// registry — the fleet pipeline (Table 1), an experiment sweep (Figure 4)
// and the mitigation evaluation (Observation 12). Both the parent and the
// re-exec'ed worker (FANOUT_HELPER=paper) construct it from the registry,
// which is exactly how production workers rebuild their work list.
func paperSubset() []engine.Experiment {
	names := map[string]bool{"Table 1": true, "Figure 4": true, "Observation 12": true}
	var exps []engine.Experiment
	for _, e := range experiments.Registry() {
		if names[e.Name] {
			exps = append(exps, e)
		}
	}
	return exps
}

// paperTestScale shrinks the quick scale so tier-1 can afford to run the
// paper trio twice (serial reference plus a two-process fan-out).
func paperTestScale() engine.Scale {
	sc := engine.QuickScale()
	sc.Population = 20_000
	sc.Records = 600
	sc.Obs12Records = 300
	return sc
}

// TestFanoutMatchesSerialOnPaperExperiments is the acceptance test from the
// determinism contract: `-fanout 2` must render Table 1, Figure 4 and
// Observation 12 byte-identically to a serial in-process run, with the
// worker processes rebuilding their Ctx from the seed alone.
func TestFanoutMatchesSerialOnPaperExperiments(t *testing.T) {
	exps := paperSubset()
	if len(exps) != 3 {
		t.Fatalf("registry matched %d of 3 paper experiments", len(exps))
	}
	sc := paperTestScale()

	serial := engine.NewRunner(engine.RunOptions{Seed: 7, Workers: 1})
	want, _, err := serial.Run(exps, sc)
	if err != nil {
		t.Fatal(err)
	}

	fan := engine.NewRunner(engine.RunOptions{
		Seed: 7, Workers: 1, Fanout: 2, Distributor: New(helperOptions("paper")),
	})
	got, rep, err := fan.Run(exps, sc)
	if err != nil {
		t.Fatal(err)
	}
	diffSections(t, want, got)
	if rep.Fanout != 2 {
		t.Errorf("report fanout = %d, want 2", rep.Fanout)
	}
	if rep.RecomputedShards != 0 {
		t.Errorf("healthy fan-out recomputed %d shard(s)", rep.RecomputedShards)
	}
}
