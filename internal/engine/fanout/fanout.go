// Package fanout is the multi-process shard-distribution layer of the
// execution engine: it fans registry entries out across N worker
// subprocesses (re-execs of the current binary in the hidden -fanout-worker
// mode), streams work orders and rendered results over stdin/stdout as
// length-prefixed JSON frames, and merges what comes back in shard order.
// The paper's vendor toolchain screens >1M production CPUs by distributing
// testcases across many machines (§3); fan-out is the reproduction's
// version of that scale-out, kept under the same determinism contract the
// in-process pool guarantees:
//
//   - Workers rebuild the frozen context from the same seed, so a shard's
//     substreams (Derive(purpose, ShardKey)) are identical wherever it runs.
//   - The transport moves only (seed, worker budget, scale, shard ranges)
//     out and rendered shard results back; nothing scheduling-dependent
//     enters a result.
//   - The merge is slot-indexed by shard, and any shard a worker fails to
//     return — crash, timeout, protocol error, spawn failure — is
//     recomputed locally by the parent. Fan-out therefore degrades to
//     slower, never to wrong: a -fanout N run is byte-identical to
//     -workers=1.
//
// This is also the repository's subprocess quarantine: sdclint (detrand)
// restricts importing os/exec to this package, mirroring the wallclock
// quarantine, so nothing else in the tree can shell out.
package fanout

import (
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"farron/internal/engine"
	"farron/internal/engine/wallclock"
)

// WorkerFlag is the hidden CLI flag that switches a re-exec'ed experiment
// binary into worker mode (cliflags registers it; Serve implements it).
const WorkerFlag = "-fanout-worker"

// Options configure a Coordinator.
type Options struct {
	// Command is the argv worker subprocesses are launched with; empty
	// means re-exec the current binary with WorkerFlag appended.
	Command []string
	// Env appends variables to the workers' inherited environment (the
	// tests use it to steer their helper process; a deployment can use it
	// for e.g. a GOMAXPROCS override).
	Env []string
	// EntryTimeout kills a worker that takes longer than this on a single
	// entry (0 disables); the lost entry is recomputed locally.
	EntryTimeout time.Duration
}

// Coordinator implements engine.Distributor over re-exec'ed worker
// subprocesses. A Coordinator carries no state between calls and is safe
// for sequential reuse.
type Coordinator struct {
	opts Options
}

// New returns a coordinator with the given options.
func New(opts Options) *Coordinator { return &Coordinator{opts: opts} }

var _ engine.Distributor = (*Coordinator)(nil)

// Distribute runs exps across up to procs worker subprocesses and returns
// the merged sections in shard order. Shards are dispatched dynamically —
// each worker pulls the next undealt entry — which balances load without
// affecting output: results land in slots indexed by shard. Every shard no
// worker returned is recomputed locally on the parent's pool, so the only
// hard failure is a caller error; worker trouble degrades to local compute.
func (c *Coordinator) Distribute(ctx *engine.Ctx, exps []engine.Experiment, sc engine.Scale, procs int) (*engine.DistResult, error) {
	n := len(exps)
	if procs > n {
		procs = n
	}
	argv := c.opts.Command
	if len(argv) == 0 {
		exe, err := os.Executable()
		if err != nil {
			// Nothing to re-exec: degrade to computing every shard locally
			// rather than failing the run.
			log.Printf("fanout: cannot locate own binary (%v); running all %d shard(s) in-process", err, n)
			argv = nil
		} else {
			argv = []string{exe, WorkerFlag}
		}
	}

	names := make([]string, n)
	for i, e := range exps {
		names[i] = e.Name
	}
	h := hello{Schema: frameSchema, Seed: ctx.Seed, Workers: ctx.Workers, Scale: sc, Names: names}

	// results is slot-per-shard: worker goroutines fill disjoint indices,
	// the dispenser hands each index out exactly once.
	results := make([]*result, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	var mu sync.Mutex // guards procStats
	var procStats []engine.WorkerProc
	if argv != nil {
		for p := 0; p < procs && int(next.Load()) < n; p++ {
			w, err := startWorker(argv, c.opts.Env, h)
			if err != nil {
				log.Printf("fanout: worker %d failed to start: %v", p, err)
				mu.Lock()
				procStats = append(procStats, engine.WorkerProc{ID: p, ExitError: err.Error()})
				mu.Unlock()
				continue
			}
			wg.Add(1)
			go func(p int, w *worker) {
				defer wg.Done()
				st := c.drain(w, exps, results, &next)
				st.ID = p
				mu.Lock()
				procStats = append(procStats, st)
				mu.Unlock()
			}(p, w)
		}
	}
	wg.Wait()
	// Stats arrive in completion order; report them in spawn order.
	sort.Slice(procStats, func(i, j int) bool { return procStats[i].ID < procStats[j].ID })

	// Recompute every shard no worker returned — crashed, timed out,
	// mis-addressed or never dispatched. Entries are pure functions of
	// (ctx, scale), so the local rerun is byte-identical to what the worker
	// would have sent.
	var lost []int
	for i, r := range results {
		if r == nil {
			lost = append(lost, i)
		}
	}
	if len(lost) > 0 {
		log.Printf("fanout: recomputing %d lost shard(s) locally: %v", len(lost), lost)
		pool := ctx.Pool()
		pool.Run(len(lost), func(j int) {
			i := lost[j]
			r := runOne(ctx, exps[i], i, sc)
			results[i] = &r
		})
	}

	dr := &engine.DistResult{
		Sections:   make([]engine.Section, n),
		Entries:    make([]engine.ExperimentTiming, n),
		Procs:      procStats,
		Recomputed: len(lost),
	}
	for i, r := range results {
		dr.Sections[i] = engine.Section{Name: r.Name, Body: r.Body}
		dr.Entries[i] = engine.ExperimentTiming{
			Name:        r.Name,
			WallSeconds: r.WallSeconds,
			OutputBytes: len(r.Body),
			Error:       r.Err,
		}
	}
	return dr, nil
}

// drain feeds shard indices to one worker until the dispenser runs dry or
// the worker fails, and returns the worker's accounting. On failure the
// in-flight shard stays unfilled in results; the caller recomputes it.
func (c *Coordinator) drain(w *worker, exps []engine.Experiment, results []*result, next *atomic.Int64) engine.WorkerProc {
	st := engine.WorkerProc{Pid: w.cmd.Process.Pid}
	start := wallclock.Start()
	clean := false
	defer func() {
		if err := w.shutdown(clean); err != nil && st.ExitError == "" {
			st.ExitError = err.Error()
		}
		st.WallSeconds = start.Seconds()
	}()
	n := len(exps)
	for {
		i := int(next.Add(1)) - 1
		if i >= n {
			clean = true
			return st
		}
		res, err := w.roundTrip(i, c.opts.EntryTimeout)
		if err != nil {
			st.Lost++
			st.ExitError = err.Error()
			log.Printf("fanout: worker pid %d lost shard %d (%s): %v", st.Pid, i, exps[i].Name, err)
			return st
		}
		if res.Index != i || res.Name != exps[i].Name {
			st.Lost++
			st.ExitError = fmt.Sprintf("protocol mismatch: got shard %d (%q), want %d (%q)",
				res.Index, res.Name, i, exps[i].Name)
			log.Printf("fanout: worker pid %d: %s", st.Pid, st.ExitError)
			return st
		}
		results[i] = res
		st.Entries++
	}
}

// runOne executes one registry entry and packages it as a result frame; it
// is the single compute path shared by the worker loop and the parent's
// lost-shard recompute, so both produce identical bytes.
func runOne(ctx *engine.Ctx, e engine.Experiment, i int, sc engine.Scale) result {
	start := wallclock.Start()
	res, err := e.Run(ctx, sc)
	if err != nil {
		return result{Index: i, Name: e.Name, WallSeconds: start.Seconds(), Err: err.Error()}
	}
	return result{Index: i, Name: e.Name, Body: res.Render(), WallSeconds: start.Seconds()}
}

// worker is one live subprocess and its frame streams.
type worker struct {
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	stdout io.ReadCloser
}

// startWorker launches argv, wires the frame pipes and sends the hello.
// The worker's stderr passes through to the parent's, so worker-side
// failures surface in the parent's log.
func startWorker(argv, env []string, h hello) (*worker, error) {
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Stderr = os.Stderr
	if len(env) > 0 {
		cmd.Env = append(os.Environ(), env...)
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	w := &worker{cmd: cmd, stdin: stdin, stdout: stdout}
	if err := writeFrame(stdin, h); err != nil {
		err = fmt.Errorf("sending hello: %w", err)
		if serr := w.shutdown(false); serr != nil {
			err = errors.Join(err, serr)
		}
		return nil, err
	}
	return w, nil
}

// roundTrip sends one single-shard order and reads its result. A non-zero
// timeout arms a kill timer around the read: a worker that exceeds it is
// killed, the read fails, and the shard is recomputed locally.
func (w *worker) roundTrip(i int, timeout time.Duration) (*result, error) {
	if err := writeFrame(w.stdin, order{Lo: i, Hi: i + 1}); err != nil {
		return nil, err
	}
	var timer *time.Timer
	if timeout > 0 {
		timer = time.AfterFunc(timeout, func() { _ = w.cmd.Process.Kill() })
	}
	var res result
	err := readFrame(w.stdout, &res)
	if timer != nil && !timer.Stop() {
		return nil, fmt.Errorf("killed after exceeding the %v entry timeout", timeout)
	}
	if err != nil {
		return nil, err
	}
	return &res, nil
}

// shutdown ends the subprocess: a clean shutdown closes stdin (the EOF is
// the worker's exit signal), an unclean one kills outright so a wedged
// worker cannot hang the run, and both reap the process. A failed stdin
// close on the clean path would leave the worker without its exit signal,
// so it downgrades to a kill and the close error is surfaced.
func (w *worker) shutdown(clean bool) error {
	cerr := w.stdin.Close()
	if !clean || cerr != nil {
		_ = w.cmd.Process.Kill()
	}
	if err := w.cmd.Wait(); err != nil {
		return err
	}
	if clean {
		return cerr
	}
	return nil
}
