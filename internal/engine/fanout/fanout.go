// Package fanout is the multi-process shard-distribution layer of the
// execution engine: it fans registry entries out across N worker
// subprocesses (re-execs of the current binary in the hidden -fanout-worker
// mode), streams work orders and rendered results over stdin/stdout as
// length-prefixed JSON frames (internal/engine/wire), and merges what comes
// back in shard order. The paper's vendor toolchain screens >1M production
// CPUs by distributing testcases across many machines (§3); fan-out is the
// reproduction's single-host version of that scale-out (its host-spanning
// sibling is internal/engine/cluster, same frames over TCP), kept under the
// same determinism contract the in-process pool guarantees:
//
//   - Workers rebuild the frozen context from the same seed, so a shard's
//     substreams (Derive(purpose, ShardKey)) are identical wherever it runs.
//   - The transport moves only (seed, worker budget, scale, shard ranges)
//     out and rendered shard results back; nothing scheduling-dependent
//     enters a result.
//   - The merge is slot-indexed by shard, and any shard a worker fails to
//     return — crash, timeout, protocol error, spawn failure — is
//     recomputed locally by the parent. Fan-out therefore degrades to
//     slower, never to wrong: a -fanout N run is byte-identical to
//     -workers=1.
//
// This is also the repository's subprocess quarantine: sdclint (detrand)
// restricts importing os/exec to this package, mirroring the wallclock
// quarantine, so nothing else in the tree can shell out.
package fanout

import (
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"farron/internal/engine"
	"farron/internal/engine/wallclock"
	"farron/internal/engine/wire"
)

// WorkerFlag is the hidden CLI flag that switches a re-exec'ed experiment
// binary into worker mode (cliflags registers it; wire.Serve implements it).
const WorkerFlag = "-fanout-worker"

// Options configure a Coordinator.
type Options struct {
	// Command is the argv worker subprocesses are launched with; empty
	// means re-exec the current binary with WorkerFlag appended.
	Command []string
	// Env appends variables to the workers' inherited environment (the
	// tests use it to steer their helper process; a deployment can use it
	// for e.g. a GOMAXPROCS override).
	Env []string
	// EntryTimeout kills a worker that takes longer than this on a single
	// entry (0 disables); the lost entry is recomputed locally.
	EntryTimeout time.Duration
}

// Coordinator implements engine.Distributor over re-exec'ed worker
// subprocesses. A Coordinator carries no state between calls and is safe
// for sequential reuse.
type Coordinator struct {
	opts Options
}

// New returns a coordinator with the given options.
func New(opts Options) *Coordinator { return &Coordinator{opts: opts} }

var _ engine.Distributor = (*Coordinator)(nil)

// Distribute runs exps across up to procs worker subprocesses and returns
// the merged sections in shard order. Shards are dispatched dynamically —
// each worker pulls the next undealt entry — which balances load without
// affecting output: results land in slots indexed by shard. Every shard no
// worker returned is recomputed locally on the parent's pool, so the only
// hard failure is a caller error; worker trouble degrades to local compute.
func (c *Coordinator) Distribute(ctx *engine.Ctx, exps []engine.Experiment, sc engine.Scale, procs int) (*engine.DistResult, error) {
	n := len(exps)
	if procs > n {
		procs = n
	}
	argv := c.opts.Command
	if len(argv) == 0 {
		exe, err := os.Executable()
		if err != nil {
			// Nothing to re-exec: degrade to computing every shard locally
			// rather than failing the run.
			log.Printf("fanout: cannot locate own binary (%v); running all %d shard(s) in-process", err, n)
			argv = nil
		} else {
			argv = []string{exe, WorkerFlag}
		}
	}

	names := make([]string, n)
	for i, e := range exps {
		names[i] = e.Name
	}
	h := wire.Hello{Schema: wire.Schema, Seed: ctx.Seed, Workers: ctx.Workers, Scale: sc, Names: names}

	// results is slot-per-shard: worker goroutines fill disjoint indices,
	// the dispenser hands each index out exactly once.
	results := make([]*wire.Result, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	var mu sync.Mutex // guards procStats
	var procStats []engine.WorkerProc
	if argv != nil {
		for p := 0; p < procs && int(next.Load()) < n; p++ {
			w, err := startWorker(argv, c.opts.Env, h)
			if err != nil {
				log.Printf("fanout: worker %d failed to start: %v", p, err)
				mu.Lock()
				procStats = append(procStats, engine.WorkerProc{ID: p, ExitError: err.Error()})
				mu.Unlock()
				continue
			}
			wg.Add(1)
			go func(p int, w *worker) {
				defer wg.Done()
				st := c.drain(w, exps, results, &next)
				st.ID = p
				mu.Lock()
				procStats = append(procStats, st)
				mu.Unlock()
			}(p, w)
		}
	}
	wg.Wait()
	// Stats arrive in completion order; report them in spawn order.
	sort.Slice(procStats, func(i, j int) bool { return procStats[i].ID < procStats[j].ID })

	// Recompute every shard no worker returned — crashed, timed out,
	// mis-addressed or never dispatched.
	recomputed := wire.RecomputeLost("fanout", ctx, exps, sc, results)
	return wire.Collect(results, procStats, recomputed), nil
}

// drain feeds shard indices to one worker until the dispenser runs dry or
// the worker fails, and returns the worker's accounting. On failure the
// in-flight shard stays unfilled in results; the caller recomputes it.
func (c *Coordinator) drain(w *worker, exps []engine.Experiment, results []*wire.Result, next *atomic.Int64) engine.WorkerProc {
	st := engine.WorkerProc{Pid: w.cmd.Process.Pid}
	start := wallclock.Start()
	clean := false
	defer func() {
		if err := w.shutdown(clean); err != nil && st.ExitError == "" {
			st.ExitError = err.Error()
		}
		st.WallSeconds = start.Seconds()
	}()
	clean = wire.Drain(fmt.Sprintf("fanout: worker pid %d", st.Pid), exps, results, next, &st,
		func(i int) (*wire.Result, error) { return w.roundTrip(i, c.opts.EntryTimeout) })
	return st
}

// worker is one live subprocess and its frame streams. enc is the worker's
// reusable frame encoder over stdin: one scratch buffer per worker, one
// Write per frame.
type worker struct {
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	stdout io.ReadCloser
	enc    *wire.Encoder
}

// startWorker launches argv, wires the frame pipes and sends the hello.
// The worker's stderr passes through to the parent's, so worker-side
// failures surface in the parent's log. Every early-exit path releases what
// it already acquired: a failed StdoutPipe or Start closes the open pipe
// ends (nothing to reap — the process never started), and a failed hello
// shuts the spawned worker down, so a degraded spawn loop cannot bleed
// descriptors across a long run.
func startWorker(argv, env []string, h wire.Hello) (*worker, error) {
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Stderr = os.Stderr
	if len(env) > 0 {
		cmd.Env = append(os.Environ(), env...)
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, errors.Join(err, stdin.Close())
	}
	if err := cmd.Start(); err != nil {
		return nil, errors.Join(err, stdin.Close(), stdout.Close())
	}
	w := &worker{cmd: cmd, stdin: stdin, stdout: stdout, enc: wire.NewEncoder(stdin)}
	if err := w.enc.Encode(h); err != nil {
		err = fmt.Errorf("sending hello: %w", err)
		if serr := w.shutdown(false); serr != nil {
			err = errors.Join(err, serr)
		}
		return nil, err
	}
	return w, nil
}

// roundTrip sends one single-shard order and reads its result. A non-zero
// timeout arms a kill timer around the read: a worker that exceeds it is
// killed, the read fails, and the shard is recomputed locally. When the
// read succeeds at the same moment the timer fires (Stop returns false on
// the boundary), the result in hand is valid and is kept — the kill only
// costs the worker's remaining shards, never a completed one.
func (w *worker) roundTrip(i int, timeout time.Duration) (*wire.Result, error) {
	if err := w.enc.Encode(wire.Order{Lo: i, Hi: i + 1}); err != nil {
		return nil, err
	}
	var timer *time.Timer
	if timeout > 0 {
		timer = time.AfterFunc(timeout, func() { _ = w.cmd.Process.Kill() })
	}
	var res wire.Result
	err := wire.ReadFrame(w.stdout, &res)
	timedOut := timer != nil && !timer.Stop()
	if err != nil {
		if timedOut {
			return nil, fmt.Errorf("killed after exceeding the %v entry timeout", timeout)
		}
		return nil, err
	}
	return &res, nil
}

// shutdown ends the subprocess: a clean shutdown closes stdin (the EOF is
// the worker's exit signal), an unclean one kills outright so a wedged
// worker cannot hang the run, and both reap the process. A failed stdin
// close on the clean path would leave the worker without its exit signal,
// so it downgrades to a kill and the close error is surfaced.
func (w *worker) shutdown(clean bool) error {
	cerr := w.stdin.Close()
	if !clean || cerr != nil {
		_ = w.cmd.Process.Kill()
	}
	if err := w.cmd.Wait(); err != nil {
		return err
	}
	if clean {
		return cerr
	}
	return nil
}
