// Package cliflags hoists the flag surface shared by the experiment
// commands (seed, worker budget, run scale, result cache, multi-process
// fan-out, cluster distribution) into a single RunConfig consumed by
// engine.Runner, so engine-wide flags are declared — and threaded into the
// engine — once instead of per command.
package cliflags

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"farron/internal/engine"
	"farron/internal/engine/cache"
	"farron/internal/engine/cluster"
	"farron/internal/engine/fanout"
	"farron/internal/engine/wire"
	"farron/internal/fleet"
)

// RunConfig is the shared experiment flag set: every experiment CLI gets
// the same -seed, -workers, -quick, -cache, -cache-dir, -fanout, -hosts,
// -serve and (hidden from normal use) -fanout-worker flags with identical
// semantics, and turns the parsed values into an engine.Runner via Runner.
type RunConfig struct {
	Seed     uint64
	Workers  int
	Quick    bool
	Cache    bool
	CacheDir string
	// Screener is the -screener screening strategy fleet experiments run
	// under (one of fleet.Strategies). It rides engine.Scale into every
	// cache key and fan-out hello; a cluster daemon (-serve) pins it and
	// refuses parents running a different strategy.
	Screener string
	// Fanout is the worker-subprocess count of -fanout; values below 2 run
	// in-process.
	Fanout int
	// Hosts is the -hosts cluster fleet: a comma-separated host:port list
	// of worker daemons to distribute the run over. Empty disables cluster
	// distribution; -hosts and -fanout are mutually exclusive.
	Hosts string
	// Serve is the -serve daemon address: when set, the command binds it
	// and serves the frame protocol over TCP (ServeDaemon) instead of
	// running a report.
	Serve string
	// FanoutWorker is the internal -fanout-worker mode a -fanout parent
	// re-execs this binary in: serve framed work orders on stdin/stdout
	// (ServeWorker) instead of running a report.
	FanoutWorker bool
	// CPUProfile and MemProfile are pprof output paths (-cpuprofile,
	// -memprofile); empty disables the profile. Profiling never affects
	// results — only simrand draws do.
	CPUProfile string
	MemProfile string
}

// DefaultCacheDir is where -cache keeps entries unless -cache-dir says
// otherwise.
const DefaultCacheDir = ".farron-cache"

// Register installs the shared flags on fs and returns the destination
// struct (valid after fs.Parse).
func Register(fs *flag.FlagSet) *RunConfig {
	c := &RunConfig{}
	fs.Uint64Var(&c.Seed, "seed", 1, "simulation seed")
	fs.IntVar(&c.Workers, "workers", runtime.GOMAXPROCS(0),
		"parallel worker count; results are identical at any value")
	fs.BoolVar(&c.Quick, "quick", false,
		"run at smoke scale (smaller populations and record counts)")
	fs.BoolVar(&c.Cache, "cache", false,
		"reuse experiment results from the content-addressed result cache; warm output is byte-identical to cold")
	fs.StringVar(&c.CacheDir, "cache-dir", DefaultCacheDir,
		"result cache directory used by -cache")
	fs.StringVar(&c.Screener, "screener", engine.DefaultStrategy,
		"screening strategy for fleet experiments: farron, baseline, silifuzz or ithica")
	fs.IntVar(&c.Fanout, "fanout", 0,
		"distribute experiments across this many worker subprocesses; output is byte-identical to -workers=1")
	fs.StringVar(&c.Hosts, "hosts", "",
		"distribute experiments across these worker daemons (comma-separated host:port list started with -serve); output is byte-identical to -workers=1")
	fs.StringVar(&c.Serve, "serve", "",
		"run as a cluster worker daemon on this listen address (host:port) instead of running a report")
	fs.BoolVar(&c.FanoutWorker, "fanout-worker", false,
		"internal: serve fan-out work orders on stdin/stdout (how -fanout re-execs this binary)")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "",
		"write a pprof CPU profile of the run to this file")
	fs.StringVar(&c.MemProfile, "memprofile", "",
		"write a pprof allocation profile to this file at exit")
	return c
}

// ServeConfig is the flag surface specific to the continuous screening
// service (cmd/sdcserve): where to listen, how often campaigns fire on the
// virtual clock, how virtual time is paced against wall time, and how many
// campaigns a headless run executes before exiting.
type ServeConfig struct {
	// Addr is the -serve-addr listen address of the HTTP status API; empty
	// runs headless (no listener), which is how CI and the determinism
	// tests drive the service.
	Addr string
	// CampaignPeriod is the virtual time between screening campaigns.
	CampaignPeriod time.Duration
	// SimSpeed paces the simulation: virtual seconds advanced per wall
	// second. 0 (the default) runs unpaced — virtual time free-runs as fast
	// as campaigns compute, the only mode where results can be compared
	// byte-for-byte across hosts.
	SimSpeed float64
	// Steps caps the run at this many campaigns, then exits cleanly; 0 runs
	// until interrupted. Headless determinism checks set it.
	Steps int
	// History caps how many past campaigns the in-memory history keeps when
	// Steps is 0 (unbounded runs must not grow without bound); Steps > 0
	// keeps everything so the full history can be diffed.
	History int
}

// RegisterServe installs the service flags on fs alongside Register's
// shared set and returns the destination struct (valid after fs.Parse).
func RegisterServe(fs *flag.FlagSet) *ServeConfig {
	c := &ServeConfig{}
	fs.StringVar(&c.Addr, "serve-addr", "",
		"HTTP status API listen address (empty: headless, no listener)")
	fs.DurationVar(&c.CampaignPeriod, "campaign-period", 14*24*time.Hour,
		"virtual time between screening campaigns")
	fs.Float64Var(&c.SimSpeed, "sim-speed", 0,
		"virtual seconds advanced per wall second (0: unpaced, free-running)")
	fs.IntVar(&c.Steps, "steps", 0,
		"run this many campaigns then exit (0: run until interrupted)")
	fs.IntVar(&c.History, "history", 1024,
		"campaigns of history kept in memory on unbounded runs (-steps=0)")
	return c
}

// StartProfiles starts CPU profiling when -cpuprofile is set and returns a
// stop function that finishes the CPU profile and snapshots -memprofile.
// Commands call it right after flag parsing and invoke stop on every exit
// path (it is idempotent); with neither flag set both calls are no-ops.
func (c *RunConfig) StartProfiles() (stop func() error, err error) {
	var cpuFile *os.File
	if c.CPUProfile != "" {
		cpuFile, err = os.Create(c.CPUProfile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			if cerr := cpuFile.Close(); cerr != nil {
				return nil, errors.Join(err, cerr)
			}
			return nil, err
		}
	}
	done := false
	return func() error {
		if done {
			return nil
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if c.MemProfile == "" {
			return nil
		}
		f, err := os.Create(c.MemProfile)
		if err != nil {
			return err
		}
		defer f.Close() // backstop; success path closes below
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			return fmt.Errorf("write %s: %w", c.MemProfile, err)
		}
		return f.Close()
	}, nil
}

// WorkerMode reports whether this process was re-exec'ed as a fan-out
// worker and must call ServeWorker with its registry slice instead of
// running a report.
func (c *RunConfig) WorkerMode() bool { return c.FanoutWorker }

// ServeWorker runs the -fanout-worker frame protocol over the process's
// stdin and stdout against the command's registry slice. The slice must
// match the parent's (it does by construction: the worker is a re-exec of
// the same binary applying the same group filter); a mismatch is refused
// at the handshake and the parent recomputes locally.
func (c *RunConfig) ServeWorker(exps []engine.Experiment) error {
	return wire.Serve(os.Stdin, os.Stdout, exps)
}

// DaemonMode reports whether this process was started as a cluster worker
// daemon (-serve) and must call ServeDaemon with its registry slice instead
// of running a report.
func (c *RunConfig) DaemonMode() bool { return c.Serve != "" }

// ServeDaemon binds the -serve address and serves the frame protocol over
// TCP until killed, pinned to the daemon's own -screener strategy. The
// registry slice must match each parent's (it does when fleet hosts deploy
// the same binary); a registry or strategy skew is refused per connection
// at the handshake and that parent recomputes locally.
func (c *RunConfig) ServeDaemon(exps []engine.Experiment) error {
	if err := c.validScreener(); err != nil {
		return err
	}
	return cluster.ListenAndServe(c.Serve, exps, fleet.NormalizeStrategy(c.Screener))
}

// validScreener rejects unknown -screener values before any run starts.
func (c *RunConfig) validScreener() error {
	if !fleet.ValidStrategy(c.Screener) {
		return fmt.Errorf("cliflags: unknown -screener %q (want one of %v)", c.Screener, fleet.Strategies())
	}
	return nil
}

// Runner builds the engine.Runner for the flagged configuration: the seed
// and worker budget, the result cache under -cache, the subprocess
// distributor under -fanout, and the cluster distributor under -hosts (one
// daemon connection per listed host).
func (c *RunConfig) Runner() (*engine.Runner, error) {
	if err := c.validScreener(); err != nil {
		return nil, err
	}
	rc, err := c.ResultCache()
	if err != nil {
		return nil, err
	}
	opts := engine.RunOptions{Seed: c.Seed, Workers: c.Workers, Cache: rc, Fanout: c.Fanout}
	if c.Hosts != "" {
		if c.Fanout > 1 {
			return nil, errors.New("cliflags: -hosts and -fanout are mutually exclusive; pick one transport")
		}
		hosts, err := cluster.ParseHosts(c.Hosts)
		if err != nil {
			return nil, err
		}
		opts.Fanout = len(hosts)
		opts.Distributor = cluster.New(cluster.Options{Hosts: hosts})
	} else if c.Fanout > 1 {
		opts.Distributor = fanout.New(fanout.Options{})
	}
	return engine.NewRunner(opts), nil
}

// Scale returns the run scale selected by the flags: QuickScale under
// -quick, DefaultScale otherwise, carrying the -screener strategy.
func (c *RunConfig) Scale() engine.Scale {
	sc := engine.DefaultScale()
	if c.Quick {
		sc = engine.QuickScale()
	}
	sc.Strategy = fleet.NormalizeStrategy(c.Screener)
	return sc
}

// ResultCache opens the result cache selected by the flags, or returns nil
// (caching disabled) when -cache is off.
func (c *RunConfig) ResultCache() (*cache.Cache, error) {
	if !c.Cache {
		return nil, nil
	}
	return cache.Open(c.CacheDir)
}
