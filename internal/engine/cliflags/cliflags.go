// Package cliflags hoists the flag surface shared by the experiment
// commands (seed, worker budget, run scale) so engine-wide flags are
// declared once instead of per command.
package cliflags

import (
	"flag"
	"runtime"

	"farron/internal/engine"
)

// Common is the shared experiment flag set: every experiment CLI gets the
// same -seed, -workers and -quick flags with identical semantics.
type Common struct {
	Seed    uint64
	Workers int
	Quick   bool
}

// Register installs the shared flags on fs and returns the destination
// struct (valid after fs.Parse).
func Register(fs *flag.FlagSet) *Common {
	c := &Common{}
	fs.Uint64Var(&c.Seed, "seed", 1, "simulation seed")
	fs.IntVar(&c.Workers, "workers", runtime.GOMAXPROCS(0),
		"parallel worker count; results are identical at any value")
	fs.BoolVar(&c.Quick, "quick", false,
		"run at smoke scale (smaller populations and record counts)")
	return c
}

// Context builds the engine context at the flagged seed and worker budget.
func (c *Common) Context() *engine.Ctx {
	ctx := engine.NewCtx(c.Seed)
	ctx.Workers = c.Workers
	return ctx
}

// Scale returns the run scale selected by the flags: QuickScale under
// -quick, DefaultScale otherwise.
func (c *Common) Scale() engine.Scale {
	if c.Quick {
		return engine.QuickScale()
	}
	return engine.DefaultScale()
}
