// Package cliflags hoists the flag surface shared by the experiment
// commands (seed, worker budget, run scale, result cache) so engine-wide
// flags are declared once instead of per command.
package cliflags

import (
	"flag"
	"runtime"

	"farron/internal/engine"
	"farron/internal/engine/cache"
)

// Common is the shared experiment flag set: every experiment CLI gets the
// same -seed, -workers, -quick, -cache and -cache-dir flags with identical
// semantics.
type Common struct {
	Seed     uint64
	Workers  int
	Quick    bool
	Cache    bool
	CacheDir string
}

// DefaultCacheDir is where -cache keeps entries unless -cache-dir says
// otherwise.
const DefaultCacheDir = ".farron-cache"

// Register installs the shared flags on fs and returns the destination
// struct (valid after fs.Parse).
func Register(fs *flag.FlagSet) *Common {
	c := &Common{}
	fs.Uint64Var(&c.Seed, "seed", 1, "simulation seed")
	fs.IntVar(&c.Workers, "workers", runtime.GOMAXPROCS(0),
		"parallel worker count; results are identical at any value")
	fs.BoolVar(&c.Quick, "quick", false,
		"run at smoke scale (smaller populations and record counts)")
	fs.BoolVar(&c.Cache, "cache", false,
		"reuse experiment results from the content-addressed result cache; warm output is byte-identical to cold")
	fs.StringVar(&c.CacheDir, "cache-dir", DefaultCacheDir,
		"result cache directory used by -cache")
	return c
}

// Context builds the engine context at the flagged seed and worker budget.
// The budget is passed into construction, so calibration and freeze honor
// -workers too (construction output is identical at any budget; only wall
// time varies).
func (c *Common) Context() *engine.Ctx {
	return engine.NewCtxWorkers(c.Seed, c.Workers)
}

// Scale returns the run scale selected by the flags: QuickScale under
// -quick, DefaultScale otherwise.
func (c *Common) Scale() engine.Scale {
	if c.Quick {
		return engine.QuickScale()
	}
	return engine.DefaultScale()
}

// ResultCache opens the result cache selected by the flags, or returns nil
// (caching disabled) when -cache is off.
func (c *Common) ResultCache() (*cache.Cache, error) {
	if !c.Cache {
		return nil, nil
	}
	return cache.Open(c.CacheDir)
}
