package engine

import (
	"runtime"

	"farron/internal/defect"
	"farron/internal/model"
	"farron/internal/simrand"
	"farron/internal/testkit"
)

// Ctx carries the shared simulation state every experiment runs against:
// the deterministic seed, the 633-testcase suite, and the calibrated
// faulty-processor sets, plus the indexes that make per-record lookups O(1)
// and the worker budget of the parallel engine.
//
// Construction is the only mutating phase. NewCtx generates the suite,
// calibrates every study profile against its Table 3 target and freezes the
// profiles' lazily-derived state (corruptor pattern tables); from then on
// the whole context is immutable and may be shared by every shard of a
// parallel run without copies or locks (see the immutability test in
// internal/testkit and DESIGN.md "Execution engine & parallelism").
//
//sdclint:frozen immutable after NewCtx; shared lock-free across shards
type Ctx struct {
	Seed uint64
	Rng  *simrand.Source
	// Suite is the toolchain testcase suite, immutable after NewSuite.
	Suite *testkit.Suite
	// Library is the ten named Table 3 processors, calibrated.
	Library []*defect.Profile
	// Study is the full 27-processor study set, calibrated.
	Study []*defect.Profile
	// Workers is the worker budget parallel drivers run under; NewCtx
	// defaults it to GOMAXPROCS, NewCtxWorkers takes it explicitly. It
	// affects wall time, never results — construction included.
	Workers int

	profiles map[string]*defect.Profile
	failing  map[string][]*testkit.Testcase
	known    map[string][]string
}

// libraryIDs are the named Table 3 processors, in study-set order.
var libraryIDs = map[string]bool{
	"MIX1": true, "MIX2": true, "SIMD1": true, "SIMD2": true,
	"FPU1": true, "FPU2": true, "FPU3": true, "FPU4": true,
	"CNST1": true, "CNST2": true,
}

// NewCtx builds the shared state for a seed at the GOMAXPROCS worker
// budget. Calibration aligns every profile's failing-testcase count with
// its Table 3 target; profiles are calibrated in parallel (each
// calibration touches only its own profile and reads the immutable suite,
// so the result is identical at any worker count).
func NewCtx(seed uint64) *Ctx {
	return NewCtxWorkers(seed, runtime.GOMAXPROCS(0))
}

// NewCtxWorkers is NewCtx under an explicit worker budget. The budget
// bounds the construction phases (parallel calibration and freeze) as well
// as everything the context later runs, so -workers=1 really is strictly
// serial from the first goroutine; budgets below 1 are clamped to 1. The
// constructed context is byte-identical at any budget.
func NewCtxWorkers(seed uint64, workers int) *Ctx {
	return newCtx(seed, workers, false, nil)
}

// NewReferenceCtx is NewCtxWorkers over a reference suite
// (testkit.NewReferenceSuite): every downstream query and run takes the
// retained naive scan paths instead of the compiled hot paths. The
// compiled-vs-reference determinism test diffs full-registry output across
// the two constructions; production code always uses NewCtx/NewCtxWorkers.
func NewReferenceCtx(seed uint64, workers int) *Ctx {
	return newCtx(seed, workers, true, nil)
}

// newCtx is the shared constructor. wrap, non-nil only in tests, decorates
// the shard functions handed to the construction-phase pool runs so a test
// can observe construction concurrency (the worker-budget regression test
// counts peak active shards through it).
func newCtx(seed uint64, workers int, reference bool, wrap func(func(int)) func(int)) *Ctx {
	if workers < 1 {
		workers = 1
	}
	rng := simrand.New(seed)
	var suite *testkit.Suite
	if reference {
		suite = testkit.NewReferenceSuite(rng)
	} else {
		suite = testkit.NewSuite(rng)
	}
	c := &Ctx{
		Seed:    seed,
		Rng:     rng,
		Suite:   suite,
		Workers: workers,
	}
	pool := c.Pool()
	run := func(n int, fn func(int)) {
		if wrap != nil {
			fn = wrap(fn)
		}
		pool.Run(n, fn)
	}
	c.Study = defect.StudySet(rng)
	run(len(c.Study), func(i int) {
		suite.CalibrateProfile(c.Study[i])
	})
	// The named library is the leading slice of the study set.
	for _, p := range c.Study {
		if libraryIDs[p.CPUID] {
			c.Library = append(c.Library, p)
		}
	}
	c.freeze(run)
	return c
}

// freeze finalizes the calibrated profiles for shared-read use: it forces
// every lazily-derived corruptor pattern table into existence (keyed off
// the root Rng, so the tables match what any serial caller would have
// derived) and builds the CPUID indexes. After freeze, no code path mutates
// a study profile or the suite.
func (c *Ctx) freeze(run func(int, func(int))) {
	run(len(c.Study), func(i int) {
		p := c.Study[i]
		for _, d := range p.Defects {
			for _, dt := range model.AllDataTypes() {
				if d.AffectsDataType(dt) {
					d.Corruptor(dt, c.Rng)
				}
			}
		}
	})
	c.profiles = make(map[string]*defect.Profile, len(c.Study))
	c.failing = make(map[string][]*testkit.Testcase, len(c.Study))
	c.known = make(map[string][]string, len(c.Study))
	for _, p := range c.Study {
		c.profiles[p.CPUID] = p
		failing := c.Suite.FailingTestcases(p)
		c.failing[p.CPUID] = failing
		ids := make([]string, len(failing))
		for i, tc := range failing {
			ids[i] = tc.ID
		}
		c.known[p.CPUID] = ids
	}
}

// Pool returns an executor sized to the context's worker budget.
func (c *Ctx) Pool() *Pool { return NewPool(c.Workers) }

// Profile returns a study profile by CPUID, or nil. O(1).
func (c *Ctx) Profile(id string) *defect.Profile { return c.profiles[id] }

// KnownErrs returns the calibrated failing-testcase IDs of a study
// processor, in suite order. The returned slice is shared and must not be
// mutated. O(1).
func (c *Ctx) KnownErrs(id string) []string { return c.known[id] }

// Failing returns the testcases that detect at least one of the profile's
// defects, in suite order. For study profiles this is an O(1) index lookup;
// foreign profiles (e.g. fleet-generated ones) fall back to a suite scan.
// The returned slice is shared and must not be mutated.
func (c *Ctx) Failing(p *defect.Profile) []*testkit.Testcase {
	if cached, ok := c.failing[p.CPUID]; ok {
		return cached
	}
	return c.Suite.FailingTestcases(p)
}
