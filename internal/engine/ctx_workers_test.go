package engine

import (
	"strings"
	"sync/atomic"
	"testing"
)

// ctxFingerprint renders everything construction derives — the suite, the
// study-set calibration and the failing-set indexes — so two contexts can
// be compared byte-for-byte.
func ctxFingerprint(c *Ctx) string {
	var b strings.Builder
	b.WriteString(c.Suite.Fingerprint())
	for _, p := range c.Study {
		b.WriteString(p.CPUID)
		b.WriteByte(':')
		b.WriteString(strings.Join(c.KnownErrs(p.CPUID), ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// TestNewCtxWorkersRespectsBudget is the regression test for the
// construction-phase worker bug: cliflags used to set ctx.Workers only
// after NewCtx had already run calibration and freeze at the GOMAXPROCS
// default, so -workers=1 still spawned GOMAXPROCS goroutines during
// construction. The counting hook wraps every shard function the
// construction pool runs and records peak concurrency; it must never
// exceed the budget.
func TestNewCtxWorkersRespectsBudget(t *testing.T) {
	for _, budget := range []int{1, 2} {
		var active, peak atomic.Int64
		wrap := func(fn func(int)) func(int) {
			return func(i int) {
				cur := active.Add(1)
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
				fn(i)
				active.Add(-1)
			}
		}
		ctx := newCtx(5, budget, false, wrap)
		if got := peak.Load(); got > int64(budget) {
			t.Errorf("budget %d: construction ran %d shards concurrently", budget, got)
		}
		if ctx.Workers != budget {
			t.Errorf("budget %d: ctx.Workers = %d", budget, ctx.Workers)
		}
	}
}

// TestCtxConstructionIdenticalAcrossBudgets pins the other half of the
// contract: the budget changes construction wall time, never the
// constructed state.
func TestCtxConstructionIdenticalAcrossBudgets(t *testing.T) {
	serial := NewCtxWorkers(11, 1)
	parallel := NewCtxWorkers(11, 8)
	if ctxFingerprint(serial) != ctxFingerprint(parallel) {
		t.Error("construction output differs between workers=1 and workers=8")
	}
}

func TestNewCtxWorkersClampsBudget(t *testing.T) {
	if got := NewCtxWorkers(5, 0).Workers; got != 1 {
		t.Errorf("workers=0 clamped to %d, want 1", got)
	}
}
