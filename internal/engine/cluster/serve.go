package cluster

import (
	"errors"
	"fmt"
	"log"
	"net"

	"farron/internal/engine"
	"farron/internal/engine/wire"
)

// ListenAndServe binds addr and runs a worker daemon until the listener
// fails. This is the `-serve :port` entry point: one process, one bound
// socket, serving any number of parents over its lifetime. It never returns
// nil — a daemon has no natural end short of being killed. The daemon pins
// the screening strategy it was started with (empty accepts any): a parent
// running a different -screener is refused at the handshake, because a
// daemon fleet of mixed strategies would otherwise hand one run results
// from different screening regimes.
func ListenAndServe(addr string, exps []engine.Experiment, strategy string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	log.Printf("cluster: worker daemon listening on %s (%d registry entries, strategy %s)",
		ln.Addr(), len(exps), strategyLabel(strategy))
	return Serve(ln, exps, strategy)
}

// strategyLabel renders the pinned strategy for the startup log line.
func strategyLabel(strategy string) string {
	if strategy == "" {
		return "any"
	}
	return strategy
}

// Serve accepts parent connections from ln and speaks the worker side of
// the frame protocol (wire.ServeStrategy) on each, concurrently. A
// per-connection failure — protocol violation, registry mismatch, strategy
// skew, dropped parent — costs that connection a log line and nothing else;
// the daemon stays up for the next parent. Serve returns nil when ln is
// closed (the test harness's shutdown path) and the accept error otherwise.
func Serve(ln net.Listener, exps []engine.Experiment, strategy string) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("cluster: accept: %w", err)
		}
		go func(conn net.Conn) {
			// The session error is logged before the close so the two lines
			// read in cause-then-cleanup order.
			if err := wire.ServeStrategy(conn, conn, exps, strategy); err != nil {
				log.Printf("cluster: session from %s: %v", conn.RemoteAddr(), err)
			}
			if err := conn.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("cluster: closing session from %s: %v", conn.RemoteAddr(), err)
			}
		}(conn)
	}
}
