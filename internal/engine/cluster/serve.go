package cluster

import (
	"errors"
	"fmt"
	"log"
	"net"

	"farron/internal/engine"
	"farron/internal/engine/wire"
)

// ListenAndServe binds addr and runs a worker daemon until the listener
// fails. This is the `-serve :port` entry point: one process, one bound
// socket, serving any number of parents over its lifetime. It never returns
// nil — a daemon has no natural end short of being killed.
func ListenAndServe(addr string, exps []engine.Experiment) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	log.Printf("cluster: worker daemon listening on %s (%d registry entries)", ln.Addr(), len(exps))
	return Serve(ln, exps)
}

// Serve accepts parent connections from ln and speaks the worker side of
// the frame protocol (wire.Serve) on each, concurrently. A per-connection
// failure — protocol violation, registry mismatch, dropped parent — costs
// that connection a log line and nothing else; the daemon stays up for the
// next parent. Serve returns nil when ln is closed (the test harness's
// shutdown path) and the accept error otherwise.
func Serve(ln net.Listener, exps []engine.Experiment) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("cluster: accept: %w", err)
		}
		go func(conn net.Conn) {
			// The session error is logged before the close so the two lines
			// read in cause-then-cleanup order.
			if err := wire.Serve(conn, conn, exps); err != nil {
				log.Printf("cluster: session from %s: %v", conn.RemoteAddr(), err)
			}
			if err := conn.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("cluster: closing session from %s: %v", conn.RemoteAddr(), err)
			}
		}(conn)
	}
}
