// Package cluster is the host-spanning shard-distribution layer of the
// execution engine: long-lived worker daemons (`<cli> -serve :port`) accept
// TCP connections and speak the exact farron-fanout/v2 hello/order/result
// frame protocol (internal/engine/wire) the single-host fan-out speaks over
// stdin/stdout, and a parent-side Coordinator (selected by `-hosts
// a:port,b:port`) implements engine.Distributor over those connections. The
// paper's screening campaigns run against a >1M-CPU production population —
// a fleet of hosts, not one box (§3) — and this package is that step: the
// same registry binary deployed across machines, driven by one parent.
//
// The fan-out guarantees carry over unchanged because the protocol does:
//
//   - A daemon rebuilds the frozen context from the hello's seed and worker
//     budget, so a shard's substreams are identical wherever it runs; a
//     daemon built from a skewed registry refuses the stream at the hello
//     handshake (the connection closes and the parent recomputes locally).
//   - Results land in slots indexed by shard and merge in shard order, so
//     `-hosts ...` output is byte-identical to `-workers=1`.
//   - Every shard the fleet fails to return — dead host, dropped
//     connection, entry timeout, refusal — is recomputed locally by the
//     parent. A cluster run degrades to slower, never to wrong.
//
// Scheduling is cache-aware by composition: engine.Runner serves
// content-addressed cache hits (internal/engine/cache) before invoking any
// Distributor and stores every distributed result on return, so the parent
// ships only cold entries to the fleet and a warm cluster run distributes
// nothing — each (seed, scale, entry) is computed exactly once fleet-wide
// per cache lifetime.
//
// This package is also the repository's raw-socket quarantine: sdclint
// (detrand) restricts importing net to this package and internal/serve (the
// status API's listener), so no simulation code can grow a network
// dependency.
package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"log"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"farron/internal/engine"
	"farron/internal/engine/wallclock"
	"farron/internal/engine/wire"
)

// DefaultDialTimeout bounds how long the coordinator waits for a daemon to
// accept before writing the host off as dead (its shards go to the rest of
// the fleet or to the local recompute).
const DefaultDialTimeout = 5 * time.Second

// Options configure a Coordinator.
type Options struct {
	// Hosts lists the worker daemons' listen addresses (host:port).
	Hosts []string
	// EntryTimeout drops a connection whose daemon takes longer than this
	// on a single entry (0 disables); the lost entry is recomputed locally.
	EntryTimeout time.Duration
	// DialTimeout bounds the per-host connection attempt; 0 means
	// DefaultDialTimeout.
	DialTimeout time.Duration
}

// ParseHosts splits a -hosts flag value (comma-separated host:port list)
// into its addresses, validating each one.
func ParseHosts(s string) ([]string, error) {
	var hosts []string
	for _, h := range strings.Split(s, ",") {
		h = strings.TrimSpace(h)
		if h == "" {
			continue
		}
		if _, _, err := net.SplitHostPort(h); err != nil {
			return nil, fmt.Errorf("cluster: -hosts entry %q: %w", h, err)
		}
		hosts = append(hosts, h)
	}
	if len(hosts) == 0 {
		return nil, errors.New("cluster: -hosts names no worker daemons")
	}
	return hosts, nil
}

// Coordinator implements engine.Distributor over TCP connections to
// long-lived worker daemons. A Coordinator carries no state between calls
// and is safe for sequential reuse; each Distribute dials fresh
// connections, so a daemon that died between runs costs recompute time, not
// correctness.
type Coordinator struct {
	opts Options
}

// New returns a coordinator for the given fleet.
func New(opts Options) *Coordinator { return &Coordinator{opts: opts} }

var _ engine.Distributor = (*Coordinator)(nil)

// Distribute runs exps across the fleet and returns the merged sections in
// shard order. One connection is dialed per host (capped at procs and at
// the entry count); shards are dispatched dynamically — each connection
// pulls the next undealt entry — which balances load across hosts of
// different speeds without affecting output, because results land in slots
// indexed by shard. Every shard the fleet fails to return is recomputed
// locally on the parent's pool, so the only hard failure is a caller error;
// fleet trouble degrades to local compute.
func (c *Coordinator) Distribute(ctx *engine.Ctx, exps []engine.Experiment, sc engine.Scale, procs int) (*engine.DistResult, error) {
	n := len(exps)
	hosts := c.opts.Hosts
	if procs > 0 && procs < len(hosts) {
		hosts = hosts[:procs]
	}
	if len(hosts) > n {
		hosts = hosts[:n]
	}

	names := make([]string, n)
	for i, e := range exps {
		names[i] = e.Name
	}
	h := wire.Hello{Schema: wire.Schema, Seed: ctx.Seed, Workers: ctx.Workers, Scale: sc, Names: names}

	// results is slot-per-shard: connection goroutines fill disjoint
	// indices, the dispenser hands each index out exactly once.
	results := make([]*wire.Result, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	var mu sync.Mutex // guards procStats
	var procStats []engine.WorkerProc
	for p, host := range hosts {
		if int(next.Load()) >= n {
			break
		}
		w, err := dialWorker(host, c.opts.DialTimeout, h)
		if err != nil {
			log.Printf("cluster: worker %s unreachable: %v", host, err)
			mu.Lock()
			procStats = append(procStats, engine.WorkerProc{ID: p, Host: host, ExitError: err.Error()})
			mu.Unlock()
			continue
		}
		wg.Add(1)
		go func(p int, w *conn) {
			defer wg.Done()
			st := c.drain(w, exps, results, &next)
			st.ID = p
			mu.Lock()
			procStats = append(procStats, st)
			mu.Unlock()
		}(p, w)
	}
	wg.Wait()
	// Stats arrive in completion order; report them in dial order.
	sort.Slice(procStats, func(i, j int) bool { return procStats[i].ID < procStats[j].ID })

	recomputed := wire.RecomputeLost("cluster", ctx, exps, sc, results)
	return wire.Collect(results, procStats, recomputed), nil
}

// drain feeds shard indices to one daemon connection until the dispenser
// runs dry or the connection fails, and returns the connection's
// accounting. On failure the in-flight shard stays unfilled in results; the
// caller recomputes it.
func (c *Coordinator) drain(w *conn, exps []engine.Experiment, results []*wire.Result, next *atomic.Int64) engine.WorkerProc {
	st := engine.WorkerProc{Host: w.host}
	start := wallclock.Start()
	clean := false
	defer func() {
		if err := w.shutdown(); err != nil && clean && st.ExitError == "" {
			st.ExitError = err.Error()
		}
		st.WallSeconds = start.Seconds()
	}()
	clean = wire.Drain(fmt.Sprintf("cluster: worker %s", w.host), exps, results, next, &st,
		func(i int) (*wire.Result, error) { return w.roundTrip(i, c.opts.EntryTimeout) })
	return st
}

// conn is one live daemon connection and its frame streams. enc is the
// connection's reusable frame encoder: one scratch buffer per connection,
// one Write per frame.
type conn struct {
	host string
	c    net.Conn
	rd   *bufio.Reader
	enc  *wire.Encoder
}

// dialWorker connects to a daemon and sends the hello. A dial or hello
// failure closes whatever was opened — a dead host costs one log line and
// its shards, never a descriptor.
func dialWorker(host string, dialTimeout time.Duration, h wire.Hello) (*conn, error) {
	if dialTimeout <= 0 {
		dialTimeout = DefaultDialTimeout
	}
	nc, err := net.DialTimeout("tcp", host, dialTimeout)
	if err != nil {
		return nil, err
	}
	w := &conn{host: host, c: nc, rd: bufio.NewReader(nc), enc: wire.NewEncoder(nc)}
	if err := w.enc.Encode(h); err != nil {
		return nil, errors.Join(fmt.Errorf("sending hello: %w", err), nc.Close())
	}
	return w, nil
}

// roundTrip sends one single-shard order and reads its result. A non-zero
// timeout arms a drop timer around the read: a daemon that exceeds it loses
// its connection (closing it is the TCP analogue of the fan-out's worker
// kill), the read fails, and the shard is recomputed locally. When the read
// succeeds at the same moment the timer fires (Stop returns false on the
// boundary), the result in hand is valid and is kept — the drop only costs
// the connection's remaining shards, never a completed one.
func (w *conn) roundTrip(i int, timeout time.Duration) (*wire.Result, error) {
	if err := w.enc.Encode(wire.Order{Lo: i, Hi: i + 1}); err != nil {
		return nil, err
	}
	var timer *time.Timer
	if timeout > 0 {
		timer = time.AfterFunc(timeout, func() {
			if cerr := w.c.Close(); cerr != nil {
				log.Printf("cluster: worker %s: dropping timed-out connection: %v", w.host, cerr)
			}
		})
	}
	var res wire.Result
	err := wire.ReadFrame(w.rd, &res)
	timedOut := timer != nil && !timer.Stop()
	if err != nil {
		if timedOut {
			return nil, fmt.Errorf("connection dropped after exceeding the %v entry timeout", timeout)
		}
		return nil, err
	}
	return &res, nil
}

// shutdown closes the connection; the daemon reads the EOF as the session's
// end and stays up for the next parent. Closing an already-dropped
// connection (entry timeout) reports net.ErrClosed, which drain ignores on
// unclean exits — the round-trip error already tells the story.
func (w *conn) shutdown() error {
	return w.c.Close()
}
