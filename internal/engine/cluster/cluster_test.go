package cluster

import (
	"bytes"
	"fmt"
	"log"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"farron/internal/engine"
	"farron/internal/engine/cache"
	"farron/internal/engine/wire"
)

// ---- fixture registry --------------------------------------------------
//
// Like the fan-out fixtures, each entry is a pure function of (seed, scale)
// drawing from its own substream. The daemons here run in-process (goroutine
// accept loops over loopback), which exercises the full TCP transport while
// staying hermetic; wire.Serve rebuilds the context from the hello exactly
// as an out-of-process daemon would.

type textResult string

func (r textResult) Render() string { return string(r) }

func fakeRegistry() []engine.Experiment {
	mk := func(name string) engine.Experiment {
		return engine.Experiment{
			Name: name, Desc: "cluster fixture", Groups: []string{engine.GroupStudy},
			Run: func(ctx *engine.Ctx, sc engine.Scale) (engine.Result, error) {
				rng := ctx.Rng.Derive("cluster-fixture", name)
				return textResult(fmt.Sprintf("%s seed=%d pop=%d draw=%d\n",
					name, ctx.Seed, sc.Population, rng.Uint64())), nil
			},
		}
	}
	return []engine.Experiment{
		mk("Clu A"), mk("Clu B"), mk("Clu C"), mk("Clu D"), mk("Clu E"), mk("Clu F"),
	}
}

// skewedRegistry is a registry whose names disagree with fakeRegistry — the
// stand-in for a daemon built from a different binary version.
func skewedRegistry() []engine.Experiment {
	exps := fakeRegistry()
	exps[0].Name = "Clu A (skewed)"
	return exps
}

// ---- in-process daemons ------------------------------------------------

// startDaemon runs a worker daemon on an ephemeral loopback port and
// returns its address. The listener closes with the test.
func startDaemon(t *testing.T, exps []engine.Experiment) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() { _ = Serve(ln, exps, "") }()
	return ln.Addr().String()
}

// deadHost returns a loopback address guaranteed to refuse connections: the
// port was bound and released, so nothing listens there.
func deadHost(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
	return addr
}

// dyingConn drops the connection after n result writes, simulating a daemon
// that dies mid-session. wire.Serve emits exactly one Write per result
// frame (the Encoder's single-Write property), so n counts completed
// results.
type dyingConn struct {
	net.Conn
	remaining int
}

func (d *dyingConn) Write(p []byte) (int, error) {
	if d.remaining <= 0 {
		_ = d.Conn.Close()
		return 0, net.ErrClosed
	}
	d.remaining--
	return d.Conn.Write(p)
}

// startDyingDaemon serves sessions whose connection drops after n results.
func startDyingDaemon(t *testing.T, exps []engine.Experiment, n int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				_ = wire.Serve(conn, &dyingConn{Conn: conn, remaining: n}, exps)
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// stallConn wedges every result write far past any test's entry timeout, so
// only the coordinator's connection-drop timer can end the round trip.
type stallConn struct {
	net.Conn
}

func (s *stallConn) Write(p []byte) (int, error) {
	time.Sleep(30 * time.Second)
	return s.Conn.Write(p)
}

// startStallingDaemon serves sessions that accept orders but never answer
// in time.
func startStallingDaemon(t *testing.T, exps []engine.Experiment) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				_ = wire.Serve(conn, &stallConn{Conn: conn}, exps)
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// captureLog routes the std logger into a buffer for the duration of the
// test, so assertions can grep coordinator and daemon log lines.
func captureLog(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	prev := log.Writer()
	log.SetOutput(&buf)
	t.Cleanup(func() { log.SetOutput(prev) })
	return &buf
}

// ---- reference and diff ------------------------------------------------

// inProcessReference renders the fixture registry without distribution —
// the byte-exact reference every cluster run must match.
func inProcessReference(t *testing.T, exps []engine.Experiment, sc engine.Scale) []engine.Section {
	t.Helper()
	r := engine.NewRunner(engine.RunOptions{Seed: 7, Workers: 1})
	sections, _, err := r.Run(exps, sc)
	if err != nil {
		t.Fatal(err)
	}
	return sections
}

func diffSections(t *testing.T, want, got []engine.Section) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("section count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("section %d (%s): cluster bytes differ\n--- in-process ---\n%s\n--- cluster ---\n%s",
				i, want[i].Name, want[i].Body, got[i].Body)
		}
	}
}

// ---- ParseHosts --------------------------------------------------------

func TestParseHosts(t *testing.T) {
	hosts, err := ParseHosts(" a:1, b:2 ,,c:3 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 3 || hosts[0] != "a:1" || hosts[1] != "b:2" || hosts[2] != "c:3" {
		t.Errorf("ParseHosts = %v", hosts)
	}
	if _, err := ParseHosts("noport"); err == nil {
		t.Error("ParseHosts accepted an entry without a port")
	}
	if _, err := ParseHosts(" , "); err == nil {
		t.Error("ParseHosts accepted an empty host list")
	}
}

// ---- coordinator end to end --------------------------------------------

// TestDistributeMatchesInProcess is the core determinism pin: a two-daemon
// loopback cluster run is byte-identical to -workers=1.
func TestDistributeMatchesInProcess(t *testing.T) {
	exps := fakeRegistry()
	sc := engine.QuickScale()
	want := inProcessReference(t, exps, sc)

	hosts := []string{startDaemon(t, exps), startDaemon(t, exps)}
	c := New(Options{Hosts: hosts})
	dr, err := c.Distribute(engine.NewCtxWorkers(7, 1), exps, sc, len(hosts))
	if err != nil {
		t.Fatal(err)
	}
	diffSections(t, want, dr.Sections)
	if dr.Recomputed != 0 {
		t.Errorf("healthy run recomputed %d shard(s)", dr.Recomputed)
	}
	if len(dr.Procs) != 2 {
		t.Fatalf("got %d worker conns, want 2", len(dr.Procs))
	}
	served := 0
	for _, p := range dr.Procs {
		if p.Host == "" {
			t.Errorf("worker %d has no host", p.ID)
		}
		if p.ExitError != "" {
			t.Errorf("worker %d exited with %q", p.ID, p.ExitError)
		}
		served += p.Entries
	}
	if served != len(exps) {
		t.Errorf("daemons served %d entries, want %d", served, len(exps))
	}
}

// TestDistributeDaemonKillRecomputes is the graceful-degradation guarantee:
// every daemon connection drops after its first result, and the coordinator
// must deliver byte-identical output anyway by recomputing the lost shards
// locally.
func TestDistributeDaemonKillRecomputes(t *testing.T) {
	exps := fakeRegistry()
	sc := engine.QuickScale()
	want := inProcessReference(t, exps, sc)
	logs := captureLog(t)

	hosts := []string{startDyingDaemon(t, exps, 1), startDyingDaemon(t, exps, 1)}
	c := New(Options{Hosts: hosts})
	dr, err := c.Distribute(engine.NewCtxWorkers(7, 1), exps, sc, len(hosts))
	if err != nil {
		t.Fatal(err)
	}
	diffSections(t, want, dr.Sections)
	if dr.Recomputed == 0 {
		t.Error("dying daemons lost no shards; the drop path was not exercised")
	}
	lost := 0
	for _, p := range dr.Procs {
		lost += p.Lost
	}
	if lost == 0 {
		t.Error("no worker connection reported a lost shard")
	}
	if !bytes.Contains(logs.Bytes(), []byte("recomputing")) {
		t.Errorf("coordinator log lacks the recomputed-shard line:\n%s", logs)
	}
	t.Logf("coordinator log after daemon drop:\n%s", logs)
}

// TestDistributeDeadHostsDegradeToLocal: when no daemon is reachable at
// all, the whole run degrades to local compute — still byte-identical.
func TestDistributeDeadHostsDegradeToLocal(t *testing.T) {
	exps := fakeRegistry()
	sc := engine.QuickScale()
	want := inProcessReference(t, exps, sc)
	logs := captureLog(t)

	c := New(Options{
		Hosts:       []string{deadHost(t), deadHost(t)},
		DialTimeout: 2 * time.Second,
	})
	dr, err := c.Distribute(engine.NewCtxWorkers(7, 1), exps, sc, 2)
	if err != nil {
		t.Fatal(err)
	}
	diffSections(t, want, dr.Sections)
	if dr.Recomputed != len(exps) {
		t.Errorf("recomputed %d shard(s), want all %d", dr.Recomputed, len(exps))
	}
	for _, p := range dr.Procs {
		if p.ExitError == "" {
			t.Errorf("worker %d should carry a dial error", p.ID)
		}
	}
	if !bytes.Contains(logs.Bytes(), []byte("unreachable")) {
		t.Errorf("coordinator log lacks the unreachable-host line:\n%s", logs)
	}
}

// TestDistributeRegistryMismatchRecovers: a daemon built from a skewed
// registry refuses the stream at the hello handshake; the parent loses
// those shards and recomputes them — output stays byte-identical.
func TestDistributeRegistryMismatchRecovers(t *testing.T) {
	exps := fakeRegistry()
	sc := engine.QuickScale()
	want := inProcessReference(t, exps, sc)
	logs := captureLog(t)

	c := New(Options{Hosts: []string{startDaemon(t, skewedRegistry())}})
	dr, err := c.Distribute(engine.NewCtxWorkers(7, 1), exps, sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	diffSections(t, want, dr.Sections)
	if dr.Recomputed != len(exps) {
		t.Errorf("recomputed %d shard(s), want all %d after the refusal", dr.Recomputed, len(exps))
	}
	if !bytes.Contains(logs.Bytes(), []byte("registry mismatch")) {
		t.Errorf("daemon log lacks the registry-mismatch refusal:\n%s", logs)
	}
	if !bytes.Contains(logs.Bytes(), []byte("recomputing")) {
		t.Errorf("coordinator log lacks the recomputed-shard line:\n%s", logs)
	}
}

// TestDistributeEntryTimeoutDropsConnection: a daemon that wedges on an
// entry loses its connection after EntryTimeout and the shard is recomputed
// locally; the error names the timeout, not the bare read failure.
func TestDistributeEntryTimeoutDropsConnection(t *testing.T) {
	exps := fakeRegistry()
	sc := engine.QuickScale()
	want := inProcessReference(t, exps, sc)
	logs := captureLog(t)

	c := New(Options{
		Hosts:        []string{startStallingDaemon(t, exps)},
		EntryTimeout: 50 * time.Millisecond,
	})
	dr, err := c.Distribute(engine.NewCtxWorkers(7, 1), exps, sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	diffSections(t, want, dr.Sections)
	if dr.Recomputed != len(exps) {
		t.Errorf("recomputed %d shard(s), want all %d after the drop", dr.Recomputed, len(exps))
	}
	if !bytes.Contains(logs.Bytes(), []byte("entry timeout")) {
		t.Errorf("coordinator log lacks the entry-timeout line:\n%s", logs)
	}
}

// ---- runner integration ------------------------------------------------

// TestRunnerClusterEndToEnd drives the full stack the CLIs use — Runner
// with a cluster Coordinator — against the in-process reference.
func TestRunnerClusterEndToEnd(t *testing.T) {
	exps := fakeRegistry()
	sc := engine.QuickScale()
	want := inProcessReference(t, exps, sc)

	hosts := []string{startDaemon(t, exps), startDaemon(t, exps)}
	r := engine.NewRunner(engine.RunOptions{
		Seed: 7, Workers: 1, Fanout: len(hosts), Distributor: New(Options{Hosts: hosts}),
	})
	got, rep, err := r.Run(exps, sc)
	if err != nil {
		t.Fatal(err)
	}
	diffSections(t, want, got)
	if rep.Fanout != 2 || len(rep.WorkerProcs) != 2 {
		t.Errorf("report fanout=%d with %d procs, want 2/2", rep.Fanout, len(rep.WorkerProcs))
	}
	for _, p := range rep.WorkerProcs {
		if p.Host == "" {
			t.Errorf("worker %d report lacks its host", p.ID)
		}
	}
}

// TestRunnerSingleHostStillDistributes: `-hosts one:port` means Fanout 1
// with a Distributor, and the run must ship shards over the transport
// rather than silently computing locally.
func TestRunnerSingleHostStillDistributes(t *testing.T) {
	exps := fakeRegistry()
	sc := engine.QuickScale()
	want := inProcessReference(t, exps, sc)

	host := startDaemon(t, exps)
	r := engine.NewRunner(engine.RunOptions{
		Seed: 7, Workers: 1, Fanout: 1, Distributor: New(Options{Hosts: []string{host}}),
	})
	got, rep, err := r.Run(exps, sc)
	if err != nil {
		t.Fatal(err)
	}
	diffSections(t, want, got)
	if len(rep.WorkerProcs) != 1 || rep.WorkerProcs[0].Entries != len(exps) {
		t.Errorf("single-host run did not distribute: procs=%+v", rep.WorkerProcs)
	}
}

// countingListener counts accepted connections — the probe for the
// cache-aware scheduling pin below.
type countingListener struct {
	net.Listener
	accepts atomic.Int64
}

func (c *countingListener) Accept() (net.Conn, error) {
	conn, err := c.Listener.Accept()
	if err == nil {
		c.accepts.Add(1)
	}
	return conn, err
}

// TestRunnerWarmCacheDistributesZero pins cache-aware scheduling end to end
// over real TCP: a cold cluster run computes each entry exactly once
// fleet-wide and populates the cache; the warm rerun serves every entry
// from cache and dials no daemon at all.
func TestRunnerWarmCacheDistributesZero(t *testing.T) {
	exps := fakeRegistry()
	sc := engine.QuickScale()
	want := inProcessReference(t, exps, sc)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	cl := &countingListener{Listener: ln}
	go func() { _ = Serve(cl, exps, "") }()

	rc, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := engine.RunOptions{
		Seed: 7, Workers: 1, Cache: rc,
		Fanout: 1, Distributor: New(Options{Hosts: []string{ln.Addr().String()}}),
	}

	got, rep, err := engine.NewRunner(opts).Run(exps, sc)
	if err != nil {
		t.Fatal(err)
	}
	diffSections(t, want, got)
	if rep.CacheMisses != len(exps) {
		t.Fatalf("cold run had %d misses, want %d", rep.CacheMisses, len(exps))
	}
	cold := cl.accepts.Load()
	if cold == 0 {
		t.Fatal("cold run dialed no daemon; the cluster path was not exercised")
	}
	if n := rep.WorkerProcs[0].Entries; n != len(exps) {
		t.Errorf("cold run distributed %d entries, want each of the %d exactly once", n, len(exps))
	}

	got, rep, err = engine.NewRunner(opts).Run(exps, sc)
	if err != nil {
		t.Fatal(err)
	}
	diffSections(t, want, got)
	if rep.CacheHits != len(exps) {
		t.Errorf("warm run had %d hits, want %d", rep.CacheHits, len(exps))
	}
	if warm := cl.accepts.Load(); warm != cold {
		t.Errorf("warm run dialed %d new connection(s); a fully warm run must distribute nothing", warm-cold)
	}
	if len(rep.WorkerProcs) != 0 {
		t.Errorf("warm run reported %d worker conns, want none", len(rep.WorkerProcs))
	}
}
