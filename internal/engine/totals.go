package engine

// RunTotals accumulates RunReport accounting across many Runner.Run calls.
// A batch CLI runs the registry once and ships one RunReport; the
// continuous screening service runs a campaign per tick, so its operational
// metrics are the accumulation over every campaign so far, not the last
// invocation's. Absorb folds one report in; the struct is plain data and
// marshals as the service's /metrics payload.
//
// Wall-clock and allocation fields are operational metadata (measured via
// the wallclock quarantine inside the engine) — they belong in /metrics and
// never in deterministic campaign history.
type RunTotals struct {
	// Runs counts absorbed reports (campaigns, for the service).
	Runs int `json:"runs"`
	// Entries / Errors / OutputBytes sum the per-entry accounting.
	Entries     int `json:"entries"`
	Errors      int `json:"errors"`
	OutputBytes int `json:"output_bytes"`
	// WallSeconds / AllocBytes / Mallocs sum whole-run accounting.
	WallSeconds float64 `json:"wall_seconds"`
	AllocBytes  uint64  `json:"alloc_bytes"`
	Mallocs     uint64  `json:"mallocs"`
	// CacheHits / CacheMisses sum the result-cache counters.
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
	// RecomputedShards sums fan-out losses recovered locally.
	RecomputedShards int `json:"recomputed_shards"`
}

// Absorb folds one run's report into the totals.
func (t *RunTotals) Absorb(r *RunReport) {
	if r == nil {
		return
	}
	t.Runs++
	t.WallSeconds += r.WallSeconds
	t.AllocBytes += r.AllocBytes
	t.Mallocs += r.Mallocs
	t.CacheHits += r.CacheHits
	t.CacheMisses += r.CacheMisses
	t.RecomputedShards += r.RecomputedShards
	for i := range r.Experiments {
		e := &r.Experiments[i]
		t.Entries++
		t.OutputBytes += e.OutputBytes
		if e.Error != "" {
			t.Errors++
		}
	}
}
