// Package wire is the shard-distribution frame protocol shared by the
// engine's two transports: the multi-process fan-out
// (internal/engine/fanout, frames over a subprocess's stdin/stdout) and the
// TCP cluster fleet (internal/engine/cluster, the same frames over a
// socket). It holds everything both coordinators and both worker ends agree
// on — the frame encoding, the hello/order/result message types, the
// worker-side serve loop, and the coordinator-side drain/recompute/merge
// helpers — so the transports differ only in how bytes move, never in what
// they mean. The package itself opens no pipes and no sockets; it reads and
// writes through plain io.Reader/io.Writer, which is what keeps it outside
// both the os/exec and the net lint quarantines.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"farron/internal/engine"
)

// Wire protocol: every message is a frame — a 4-byte big-endian length
// followed by that many bytes of JSON. The parent opens a worker's stream
// with one hello frame, then sends order frames; the worker answers each
// order with one result frame per entry. Closing the stream toward the
// worker (stdin for a subprocess, the connection for a daemon) is the
// shutdown signal.

const (
	// Schema names the protocol version. The hello frame carries it so a
	// parent and a mismatched worker binary fail loudly at the handshake
	// instead of exchanging garbage. v2 added Scale.Strategy: a v1 worker
	// would silently drop the strategy and compute default-strategy
	// results for a silifuzz parent, so the version fences it off.
	Schema = "farron-fanout/v2"
	// MaxFrame bounds a frame body. Rendered sections are kilobytes; a
	// length beyond this is a corrupt or hostile stream, not a big report.
	MaxFrame = 64 << 20
)

// Hello is the stream-opening frame: everything a worker needs to rebuild
// the parent's frozen context (seed, worker budget) and run its shards at
// the parent's scale. Names echoes the parent's registry entry names so a
// worker running a different registry refuses the stream at the handshake.
type Hello struct {
	Schema  string       `json:"schema"`
	Seed    uint64       `json:"seed"`
	Workers int          `json:"workers"`
	Scale   engine.Scale `json:"scale"`
	Names   []string     `json:"names"`
}

// Order assigns the shard range [Lo, Hi) of registry entries to a worker.
type Order struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Result carries one rendered entry back: the shard index and name (echoed
// for mismatch detection), the rendered body and the compute timing, or the
// driver's error.
type Result struct {
	Index       int     `json:"index"`
	Name        string  `json:"name"`
	Body        string  `json:"body"`
	WallSeconds float64 `json:"wall_seconds"`
	Err         string  `json:"err,omitempty"`
}

// Encoder emits frames to one stream through a reusable scratch buffer, so
// the steady state of a long run allocates no header+body staging per frame.
// Each frame still leaves through a single Write call — a frame boundary
// never splits across writes, which the worker-kill tests count on to equate
// writes with completed frames. An Encoder is not safe for concurrent use;
// coordinators hold one per worker stream and workers one per connection,
// which is exactly the protocol's one-writer-per-stream shape.
type Encoder struct {
	w   io.Writer
	buf []byte
}

// NewEncoder returns an encoder writing frames to w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

// Encode marshals v and emits one frame.
func (e *Encoder) Encode(v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if len(body) > MaxFrame {
		return fmt.Errorf("wire: %d-byte frame exceeds the %d-byte bound", len(body), MaxFrame)
	}
	need := 4 + len(body)
	if cap(e.buf) < need {
		e.buf = make([]byte, need)
	}
	buf := e.buf[:need]
	binary.BigEndian.PutUint32(buf, uint32(len(body)))
	copy(buf[4:], body)
	_, err = e.w.Write(buf)
	return err
}

// WriteFrame marshals v and emits one frame through a throwaway encoder —
// the one-shot convenience for handshakes and tests; hot paths hold an
// Encoder instead.
func WriteFrame(w io.Writer, v any) error {
	return NewEncoder(w).Encode(v)
}

// ReadFrame reads one frame into v. A clean end of stream between frames
// surfaces as io.EOF; an end of stream inside a frame — mid-header or
// mid-body — as io.ErrUnexpectedEOF. The body is read through a growing
// buffer bounded by what actually arrives, so a lying length prefix on a
// truncated stream cannot commit the reader to a giant allocation.
func ReadFrame(r io.Reader, v any) error {
	var head [4]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(head[:])
	if n > MaxFrame {
		return fmt.Errorf("wire: %d-byte frame exceeds the %d-byte bound", n, MaxFrame)
	}
	var body bytes.Buffer
	m, err := io.Copy(&body, io.LimitReader(r, int64(n)))
	if err != nil {
		return err
	}
	if m < int64(n) {
		return io.ErrUnexpectedEOF
	}
	return json.Unmarshal(body.Bytes(), v)
}
