package wire

import (
	"fmt"
	"log"
	"sync/atomic"

	"farron/internal/engine"
)

// Coordinator-side helpers shared by both transports. A coordinator fans
// registry entries out by handing each worker stream a Drain loop over one
// common dispenser, then heals whatever the fleet failed to return with
// RecomputeLost and packages the slot-indexed results with Collect. The
// shape guarantees the determinism contract regardless of transport:
// results land in slots indexed by shard, losses degrade to local compute,
// and the merge is shard-ordered, never arrival-ordered.

// Drain feeds shard indices from the dispenser to one worker stream until
// the dispenser runs dry or the transport fails, recording the worker's
// accounting in st. rt round-trips a single shard index through the
// transport. On failure the in-flight shard stays unfilled in results (the
// caller recomputes it) and Drain returns false; draining the dispenser
// returns true — the transport's clean-shutdown signal. label prefixes the
// loss log lines ("fanout: worker pid 4242", "cluster: worker host:port").
func Drain(label string, exps []engine.Experiment, results []*Result, next *atomic.Int64, st *engine.WorkerProc, rt func(i int) (*Result, error)) bool {
	n := len(exps)
	for {
		i := int(next.Add(1)) - 1
		if i >= n {
			return true
		}
		res, err := rt(i)
		if err != nil {
			st.Lost++
			st.ExitError = err.Error()
			log.Printf("%s lost shard %d (%s): %v", label, i, exps[i].Name, err)
			return false
		}
		if res.Index != i || res.Name != exps[i].Name {
			st.Lost++
			st.ExitError = fmt.Sprintf("protocol mismatch: got shard %d (%q), want %d (%q)",
				res.Index, res.Name, i, exps[i].Name)
			log.Printf("%s: %s", label, st.ExitError)
			return false
		}
		results[i] = res
		st.Entries++
	}
}

// RecomputeLost fills every nil result slot by running the entry locally on
// the parent's pool and returns how many it recomputed. Entries are pure
// functions of (ctx, scale), so the local rerun is byte-identical to what a
// worker would have sent — distribution degrades to slower, never to wrong.
// prefix names the transport in the log line CI greps ("fanout",
// "cluster").
func RecomputeLost(prefix string, ctx *engine.Ctx, exps []engine.Experiment, sc engine.Scale, results []*Result) int {
	var lost []int
	for i, r := range results {
		if r == nil {
			lost = append(lost, i)
		}
	}
	if len(lost) == 0 {
		return 0
	}
	log.Printf("%s: recomputing %d lost shard(s) locally: %v", prefix, len(lost), lost)
	pool := ctx.Pool()
	pool.Run(len(lost), func(j int) {
		i := lost[j]
		r := RunOne(ctx, exps[i], i, sc)
		results[i] = &r
	})
	return len(lost)
}

// Collect packages fully-populated results (every slot non-nil, i.e. after
// RecomputeLost) as the engine's merged distribution outcome.
func Collect(results []*Result, procs []engine.WorkerProc, recomputed int) *engine.DistResult {
	dr := &engine.DistResult{
		Sections:   make([]engine.Section, len(results)),
		Entries:    make([]engine.ExperimentTiming, len(results)),
		Procs:      procs,
		Recomputed: recomputed,
	}
	for i, r := range results {
		dr.Sections[i] = engine.Section{Name: r.Name, Body: r.Body}
		dr.Entries[i] = engine.ExperimentTiming{
			Name:        r.Name,
			WallSeconds: r.WallSeconds,
			OutputBytes: len(r.Body),
			Error:       r.Err,
		}
	}
	return dr
}
