package wire

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"farron/internal/engine"
)

type textResult string

func (r textResult) Render() string { return string(r) }

// wireRegistry is a pure-function fixture registry: the same contract the
// real registry satisfies, small enough for handshake tests.
func wireRegistry() []engine.Experiment {
	mk := func(name string) engine.Experiment {
		return engine.Experiment{
			Name: name, Desc: "wire fixture", Groups: []string{engine.GroupStudy},
			Run: func(ctx *engine.Ctx, sc engine.Scale) (engine.Result, error) {
				rng := ctx.Rng.Derive("wire-fixture", name)
				return textResult(fmt.Sprintf("%s seed=%d draw=%d\n", name, ctx.Seed, rng.Uint64())), nil
			},
		}
	}
	return []engine.Experiment{mk("Wire A"), mk("Wire B")}
}

func TestServeRefusesRegistryMismatch(t *testing.T) {
	exps := wireRegistry()
	var in, out bytes.Buffer
	h := Hello{Schema: Schema, Seed: 7, Workers: 1, Scale: engine.QuickScale(),
		Names: []string{"Not", "The Same Registry"}}
	if err := WriteFrame(&in, h); err != nil {
		t.Fatal(err)
	}
	err := Serve(&in, &out, exps)
	if err == nil || !strings.Contains(err.Error(), "registry mismatch") {
		t.Fatalf("mismatched hello returned %v, want a registry mismatch error", err)
	}
}

func TestServeRefusesWrongSchema(t *testing.T) {
	var in, out bytes.Buffer
	if err := WriteFrame(&in, Hello{Schema: "farron-fanout/v0"}); err != nil {
		t.Fatal(err)
	}
	err := Serve(&in, &out, wireRegistry())
	if err == nil || !strings.Contains(err.Error(), "protocol") {
		t.Fatalf("wrong schema returned %v, want a protocol error", err)
	}
}

// TestServeAnswersOrders drives a full in-memory session: hello, two
// single-shard orders, EOF — and checks each result frame echoes its shard
// and renders the same bytes a local run produces.
func TestServeAnswersOrders(t *testing.T) {
	exps := wireRegistry()
	sc := engine.QuickScale()
	var in, out bytes.Buffer
	names := []string{"Wire A", "Wire B"}
	h := Hello{Schema: Schema, Seed: 7, Workers: 1, Scale: sc, Names: names}
	for _, v := range []any{h, Order{Lo: 1, Hi: 2}, Order{Lo: 0, Hi: 1}} {
		if err := WriteFrame(&in, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := Serve(&in, &out, exps); err != nil {
		t.Fatalf("clean session returned %v", err)
	}
	ctx := engine.NewCtxWorkers(7, 1)
	for _, wantIdx := range []int{1, 0} {
		var res Result
		if err := ReadFrame(&out, &res); err != nil {
			t.Fatal(err)
		}
		want := RunOne(ctx, exps[wantIdx], wantIdx, sc)
		if res.Index != want.Index || res.Name != want.Name || res.Body != want.Body {
			t.Errorf("shard %d: served %+v, want %+v", wantIdx, res, want)
		}
	}
}

// TestServeStrategyPinsScreeningStrategy: a pinned daemon refuses a parent
// running a different screening strategy at the handshake (mixed-strategy
// fleets must degrade to local recompute, never skew results), accepts a
// matching parent, and treats the empty hello strategy as the default.
func TestServeStrategyPinsScreeningStrategy(t *testing.T) {
	exps := wireRegistry()
	names := []string{"Wire A", "Wire B"}
	hello := func(strategy string) Hello {
		sc := engine.QuickScale()
		sc.Strategy = strategy
		return Hello{Schema: Schema, Seed: 7, Workers: 1, Scale: sc, Names: names}
	}

	var in, out bytes.Buffer
	if err := WriteFrame(&in, hello("silifuzz")); err != nil {
		t.Fatal(err)
	}
	err := ServeStrategy(&in, &out, exps, engine.DefaultStrategy)
	if err == nil || !strings.Contains(err.Error(), "strategy skew") {
		t.Fatalf("skewed hello returned %v, want a strategy-skew error", err)
	}

	// A matching strategy — and an empty hello strategy against a daemon
	// pinned to the default — both serve cleanly to EOF.
	for _, h := range []Hello{hello("silifuzz"), hello("")} {
		pin := h.Scale.Strategy
		if pin == "" {
			pin = engine.DefaultStrategy
		}
		in.Reset()
		out.Reset()
		if err := WriteFrame(&in, h); err != nil {
			t.Fatal(err)
		}
		if err := ServeStrategy(&in, &out, exps, pin); err != nil {
			t.Fatalf("matching hello (strategy %q) returned %v", h.Scale.Strategy, err)
		}
	}
}

func TestServeRefusesOutOfRangeOrder(t *testing.T) {
	exps := wireRegistry()
	var in, out bytes.Buffer
	h := Hello{Schema: Schema, Seed: 7, Workers: 1, Scale: engine.QuickScale(),
		Names: []string{"Wire A", "Wire B"}}
	for _, v := range []any{h, Order{Lo: 1, Hi: 9}} {
		if err := WriteFrame(&in, v); err != nil {
			t.Fatal(err)
		}
	}
	err := Serve(&in, &out, exps)
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range order returned %v, want a range error", err)
	}
}
