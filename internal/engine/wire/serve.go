package wire

import (
	"errors"
	"fmt"
	"io"

	"farron/internal/engine"
	"farron/internal/engine/wallclock"
)

// Serve runs the worker side of the protocol: it reads the hello and then
// work orders from in, executes the ordered registry entries, and writes
// one result frame per entry to out. exps must be the same registry slice
// the parent runs (same binary, same group filter); the hello's name echo
// verifies that and Serve refuses a mismatched stream, which the parent
// absorbs by recomputing locally. Both transports end here: the fan-out
// worker serves its stdin/stdout, a cluster daemon serves each accepted
// connection.
//
// The worker rebuilds the frozen context from the hello's seed and worker
// budget — context construction is deterministic, so the rebuilt context
// matches the parent's and every shard substream is identical wherever the
// shard runs. Serve returns nil on a clean shutdown (EOF on in).
//
// Serve accepts any screening strategy the hello's scale names — the
// fan-out path, where the worker is a re-exec of the same binary and runs
// whatever the parent runs. Long-lived cluster daemons pin their flagged
// strategy through ServeStrategy instead, so a fleet of -screener=farron
// daemons refuses a silifuzz parent at the handshake rather than mixing
// strategies across a run (the parent absorbs the refusal by recomputing
// locally — degraded, never skewed).
func Serve(in io.Reader, out io.Writer, exps []engine.Experiment) error {
	return ServeStrategy(in, out, exps, "")
}

// ServeStrategy is Serve pinned to one screening strategy; empty accepts
// any. Strategy names are compared after normalization (an empty hello
// strategy means engine.DefaultStrategy).
func ServeStrategy(in io.Reader, out io.Writer, exps []engine.Experiment, strategy string) error {
	var h Hello
	if err := ReadFrame(in, &h); err != nil {
		return fmt.Errorf("worker: reading hello: %w", err)
	}
	if h.Schema != Schema {
		return fmt.Errorf("worker: protocol %q, want %q", h.Schema, Schema)
	}
	if strategy != "" && normalizeStrategy(h.Scale.Strategy) != normalizeStrategy(strategy) {
		return fmt.Errorf("worker: parent runs strategy %q, this daemon is pinned to %q — strategy skew",
			normalizeStrategy(h.Scale.Strategy), normalizeStrategy(strategy))
	}
	if len(h.Names) != len(exps) {
		return fmt.Errorf("worker: parent runs %d entries, this binary has %d — registry mismatch",
			len(h.Names), len(exps))
	}
	for i, name := range h.Names {
		if exps[i].Name != name {
			return fmt.Errorf("worker: entry %d is %q here but %q in the parent — registry mismatch",
				i, exps[i].Name, name)
		}
	}
	ctx := engine.NewCtxWorkers(h.Seed, h.Workers)
	enc := NewEncoder(out)
	for {
		var o Order
		if err := ReadFrame(in, &o); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("worker: reading order: %w", err)
		}
		if o.Lo < 0 || o.Hi > len(exps) || o.Lo >= o.Hi {
			return fmt.Errorf("worker: order [%d,%d) out of range", o.Lo, o.Hi)
		}
		for i := o.Lo; i < o.Hi; i++ {
			if err := enc.Encode(RunOne(ctx, exps[i], i, h.Scale)); err != nil {
				return fmt.Errorf("worker: writing result: %w", err)
			}
		}
	}
}

// normalizeStrategy maps an empty strategy name to the engine default so
// pinning and hello values compare by meaning, not spelling.
func normalizeStrategy(s string) string {
	if s == "" {
		return engine.DefaultStrategy
	}
	return s
}

// RunOne executes one registry entry and packages it as a result frame; it
// is the single compute path shared by the worker loop and the parents'
// lost-shard recompute, so both produce identical bytes.
func RunOne(ctx *engine.Ctx, e engine.Experiment, i int, sc engine.Scale) Result {
	start := wallclock.Start()
	res, err := e.Run(ctx, sc)
	if err != nil {
		return Result{Index: i, Name: e.Name, WallSeconds: start.Seconds(), Err: err.Error()}
	}
	return Result{Index: i, Name: e.Name, Body: res.Render(), WallSeconds: start.Seconds()}
}
