package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"farron/internal/engine"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Hello{Schema: Schema, Seed: 42, Workers: 3, Scale: engine.QuickScale(), Names: []string{"a", "b"}}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out Hello
	if err := ReadFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if out.Seed != in.Seed || out.Workers != in.Workers || len(out.Names) != 2 || out.Scale != in.Scale {
		t.Errorf("round trip lost data: %+v", out)
	}
	// The drained stream yields a clean EOF, the worker's shutdown signal.
	if err := ReadFrame(&buf, &out); err != io.EOF {
		t.Errorf("empty stream read returned %v, want io.EOF", err)
	}
}

func TestFrameLengthBound(t *testing.T) {
	head := []byte{0xff, 0xff, 0xff, 0xff}
	var o Order
	err := ReadFrame(bytes.NewReader(head), &o)
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("oversized frame length returned %v, want a bound error", err)
	}
}

// TestReadFrameEOFClassification pins the decoder's end-of-stream contract:
// a stream that ends cleanly between frames is io.EOF (the shutdown
// signal), a stream that ends inside a frame — mid-header or mid-body — is
// io.ErrUnexpectedEOF (a loss). The coordinators branch on exactly this
// distinction, so it is pinned as a table.
func TestReadFrameEOFClassification(t *testing.T) {
	var full bytes.Buffer
	if err := WriteFrame(&full, Order{Lo: 1, Hi: 2}); err != nil {
		t.Fatal(err)
	}
	frame := full.Bytes()
	cases := []struct {
		name  string
		input []byte
		want  error
	}{
		{"empty stream", nil, io.EOF},
		{"one header byte", frame[:1], io.ErrUnexpectedEOF},
		{"three header bytes", frame[:3], io.ErrUnexpectedEOF},
		{"header only", frame[:4], io.ErrUnexpectedEOF},
		{"body cut mid-way", frame[:len(frame)-2], io.ErrUnexpectedEOF},
		{"body one byte short", frame[:len(frame)-1], io.ErrUnexpectedEOF},
		{"complete frame", frame, nil},
	}
	for _, c := range cases {
		var o Order
		if err := ReadFrame(bytes.NewReader(c.input), &o); err != c.want {
			t.Errorf("%s: ReadFrame returned %v, want %v", c.name, err, c.want)
		}
	}
}

// TestReadFrameRejectsNonJSONBody: a frame whose body is not valid JSON is
// a decode error, not a panic and not a silent zero value.
func TestReadFrameRejectsNonJSONBody(t *testing.T) {
	body := []byte("}{ not json")
	buf := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(buf, uint32(len(body)))
	copy(buf[4:], body)
	var o Order
	if err := ReadFrame(bytes.NewReader(buf), &o); err == nil {
		t.Error("non-JSON frame body decoded without error")
	}
}

// countingWriter counts Write calls — the frame-boundary contract says one
// frame is exactly one Write.
type countingWriter struct {
	writes int
	bytes  bytes.Buffer
}

func (c *countingWriter) Write(p []byte) (int, error) {
	c.writes++
	return c.bytes.Write(p)
}

// TestEncoderSingleWritePerFrame pins the contract the worker-kill tests
// count on: every frame leaves through exactly one Write call, scratch
// buffer reuse notwithstanding.
func TestEncoderSingleWritePerFrame(t *testing.T) {
	var cw countingWriter
	enc := NewEncoder(&cw)
	const frames = 5
	for i := 0; i < frames; i++ {
		if err := enc.Encode(Result{Index: i, Name: "x", Body: strings.Repeat("b", 100*i)}); err != nil {
			t.Fatal(err)
		}
	}
	if cw.writes != frames {
		t.Errorf("%d frames took %d writes, want one write per frame", frames, cw.writes)
	}
	for i := 0; i < frames; i++ {
		var r Result
		if err := ReadFrame(&cw.bytes, &r); err != nil {
			t.Fatalf("frame %d unreadable: %v", i, err)
		}
		if r.Index != i {
			t.Errorf("frame %d decoded with index %d", i, r.Index)
		}
	}
}

// TestEncoderReusesScratch pins the hot-path property the per-worker
// encoder exists for: once warm, encoding a same-sized frame performs no
// header+body staging allocation (the json.Marshal body is measured apart).
func TestEncoderReusesScratch(t *testing.T) {
	enc := NewEncoder(io.Discard)
	frame := Result{Index: 1, Name: "warm", Body: strings.Repeat("b", 4<<10)}
	if err := enc.Encode(frame); err != nil { // warm the scratch
		t.Fatal(err)
	}
	marshal := testing.AllocsPerRun(50, func() {
		if _, err := json.Marshal(frame); err != nil {
			t.Fatal(err)
		}
	})
	encode := testing.AllocsPerRun(50, func() {
		if err := enc.Encode(frame); err != nil {
			t.Fatal(err)
		}
	})
	// A warm Encode may allocate only what Marshal itself allocates; the
	// 4+len(body) staging buffer must come from the scratch.
	if encode > marshal {
		t.Errorf("warm Encode allocates %.1f/op vs %.1f/op for bare Marshal; staging buffer is not reused", encode, marshal)
	}
}

// FuzzReadFrame drives the length-prefix decoder with arbitrary streams:
// truncated headers, lying lengths, non-JSON bodies. The decoder must never
// panic, and any complete well-formed frame must survive a re-encode round
// trip.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0, 0, 0, 2, '{'})             // body shorter than the prefix
	f.Add([]byte{0, 0, 0, 2, 'n', 'o'})        // non-JSON body
	f.Add([]byte{0x7f, 0xff, 0xff, 0xff, 'x'}) // huge length, tiny stream
	var valid bytes.Buffer
	if err := WriteFrame(&valid, Result{Index: 3, Name: "seed", Body: "corpus"}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		var raw json.RawMessage
		err := ReadFrame(bytes.NewReader(data), &raw)
		if err != nil {
			return
		}
		// A frame the decoder accepted must re-encode into a frame the
		// decoder accepts again with the same body.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, raw); err != nil {
			t.Fatalf("re-encoding accepted frame: %v", err)
		}
		var again json.RawMessage
		if err := ReadFrame(&buf, &again); err != nil {
			t.Fatalf("re-decoding re-encoded frame: %v", err)
		}
		// Re-encoding compacts, so compare compact forms.
		var want bytes.Buffer
		if err := json.Compact(&want, raw); err != nil {
			t.Fatalf("compacting accepted frame: %v", err)
		}
		if !bytes.Equal(want.Bytes(), again) {
			t.Fatalf("frame body changed across a round trip: %q vs %q", want.Bytes(), again)
		}
	})
}
