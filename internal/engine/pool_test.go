package engine

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"farron/internal/simrand"
)

// TestPoolRunEachIndexOnce checks the executor's contract under real
// concurrency: every index runs exactly once, at any worker count. Run this
// package under -race (make check, CI) to validate the synchronization.
func TestPoolRunEachIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		const n = 500
		var calls [n]atomic.Int32
		NewPool(workers).Run(n, func(i int) {
			calls[i].Add(1)
		})
		for i := range calls {
			if got := calls[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

// TestMapWorkerCountInvariance is the engine's core determinism property:
// shard substreams are a function of (parent, purpose, shard ID), so Map
// yields identical values at any worker count.
func TestMapWorkerCountInvariance(t *testing.T) {
	run := func(workers int) []float64 {
		parent := simrand.New(11)
		return Map(NewPool(workers), parent, "invariance", 64, func(rng *simrand.Source, i int) float64 {
			// Consume several draws so divergence would compound.
			v := 0.0
			for k := 0; k < 10; k++ {
				v += rng.Float64()
			}
			return v
		})
	}
	serial := run(1)
	for _, workers := range []int{2, 8} {
		if got := run(workers); !reflect.DeepEqual(got, serial) {
			t.Fatalf("workers=%d: Map results differ from serial run", workers)
		}
	}
}

// TestMapDoesNotAdvanceParent pins the property the whole scheme rests on:
// deriving shard substreams never mutates the parent source, so a Map call
// is invisible to subsequent draws from the parent.
func TestMapDoesNotAdvanceParent(t *testing.T) {
	a := simrand.New(7)
	b := simrand.New(7)
	Map(NewPool(8), a, "probe", 32, func(rng *simrand.Source, i int) float64 {
		return rng.Float64()
	})
	for k := 0; k < 8; k++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: parent advanced by Map (%d vs %d)", k, av, bv)
		}
	}
}

// TestMapErrLowestIndexWins: the reported error must be the lowest-indexed
// failure, not the first one a worker happened to observe.
func TestMapErrLowestIndexWins(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	out, err := MapErr(NewPool(8), 16, func(i int) (int, error) {
		switch i {
		case 3:
			return 0, errLow
		case 11:
			return 0, errHigh
		default:
			return i * i, nil
		}
	})
	if !errors.Is(err, errLow) {
		t.Fatalf("err = %v, want the lowest-indexed failure", err)
	}
	// All shards still ran to completion.
	if out[15] != 225 {
		t.Fatalf("shard 15 result = %d, want 225", out[15])
	}
}

func TestNewPoolClampsWorkers(t *testing.T) {
	for _, w := range []int{-3, 0, 1} {
		if got := NewPool(w).Workers(); got != 1 {
			t.Errorf("NewPool(%d).Workers() = %d, want 1", w, got)
		}
	}
	if got := NewPool(6).Workers(); got != 6 {
		t.Errorf("NewPool(6).Workers() = %d", got)
	}
}

func TestShardKeyStable(t *testing.T) {
	if ShardKey(0) != "shard#0" || ShardKey(42) != "shard#42" {
		t.Errorf("ShardKey changed: %q, %q — shard substreams depend on this exact format",
			ShardKey(0), ShardKey(42))
	}
}

// TestMapKeyedUsesDomainKeys: a shard keyed by a stable domain key keeps its
// substream when the shard set is reordered or grows.
func TestMapKeyedUsesDomainKeys(t *testing.T) {
	parent := simrand.New(5)
	draw := func(keys []string) map[string]uint64 {
		out := map[string]uint64{}
		vals := MapKeyed(NewPool(4), parent, "keyed", keys, func(rng *simrand.Source, i int) uint64 {
			return rng.Uint64()
		})
		for i, k := range keys {
			out[k] = vals[i]
		}
		return out
	}
	small := draw([]string{"b", "a"})
	big := draw([]string{"a", "b", "c"})
	if small["a"] != big["a"] || small["b"] != big["b"] {
		t.Error("per-key substreams changed when the shard set changed")
	}
}
