package engine

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"

	"farron/internal/engine/wallclock"
)

// stampStart captures a wall-clock stamp for run accounting. Wall time is
// operational metadata about a run, never an input to it; all clock access
// goes through the quarantined wallclock package (see its doc).
func stampStart() wallclock.Stamp { return wallclock.Start() }

// ExperimentTiming is the accounting of one registry entry in a run. Name
// is populated for every entry before execution starts, so a failed run
// still attributes every slot; a failed entry carries its error text and a
// cache hit carries the original compute timing with CacheHit set.
type ExperimentTiming struct {
	Name        string  `json:"name"`
	WallSeconds float64 `json:"wall_seconds"`
	OutputBytes int     `json:"output_bytes"`
	// CacheHit marks entries served from the result cache; WallSeconds is
	// then the wall time of the original computation, not of the load.
	CacheHit bool `json:"cache_hit"`
	// Error is the entry's failure, empty on success. Failed entries keep
	// their measured wall time so partial accounting stays meaningful.
	Error string `json:"error,omitempty"`
	// AllocBytes / Mallocs are the process-wide heap-allocation deltas
	// (runtime.MemStats cumulative counters) measured around this entry's
	// in-process execution. Exact at Workers=1; at higher worker budgets
	// concurrent entries' allocations bleed into each other's windows, so
	// the values are attribution hints, not per-entry truth (the run-level
	// totals in RunReport stay exact either way). Zero for cache hits and
	// distributed entries, whose allocations happen elsewhere.
	AllocBytes uint64 `json:"alloc_bytes,omitempty"`
	Mallocs    uint64 `json:"mallocs,omitempty"`
}

// WorkerProc is the accounting of one distributed worker — a fan-out
// subprocess (identified by Pid) or a cluster daemon connection (identified
// by Host): how many registry entries it returned, how many it was assigned
// but lost (crash, timeout, protocol error — the parent recomputes those
// locally), how long it lived and how it exited.
type WorkerProc struct {
	ID int `json:"id"`
	// Pid is the subprocess id (fan-out workers); zero for cluster workers.
	Pid int `json:"pid,omitempty"`
	// Host is the daemon address (cluster workers); empty for subprocesses.
	Host    string `json:"host,omitempty"`
	Entries int    `json:"entries"`
	// Lost counts entries assigned to this worker that never came back;
	// each one is recomputed locally, so losses cost wall time, never
	// correctness.
	Lost        int     `json:"lost,omitempty"`
	WallSeconds float64 `json:"wall_seconds"`
	// ExitError is the worker's abnormal end (spawn failure, crash, kill),
	// empty for a clean shutdown.
	ExitError string `json:"exit_error,omitempty"`
}

// RunReport is the machine-readable accounting of one Runner.Run call:
// what ran, at what seed and worker budget, how long it took and how much it
// allocated. sdcbench -json writes it to BENCH_<date>.json so the perf
// trajectory of the engine accumulates data points in-tree.
type RunReport struct {
	Schema      string  `json:"schema"`
	Date        string  `json:"date"`
	Seed        uint64  `json:"seed"`
	Workers     int     `json:"workers"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	NumCPU      int     `json:"num_cpu"`
	Quick       bool    `json:"quick"`
	WallSeconds float64 `json:"wall_seconds"`
	AllocBytes  uint64  `json:"alloc_bytes"`
	Mallocs     uint64  `json:"mallocs"`
	// CacheHits / CacheMisses are the run-level result-cache counts (both
	// zero when the run had no cache), so BENCH_*.json shows what caching
	// saved.
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
	// Fanout is the worker-subprocess count of a fan-out run (0 when the
	// run stayed in-process); WorkerProcs carries the per-process
	// accounting and RecomputedShards the entries re-run locally after a
	// worker loss.
	Fanout           int          `json:"fanout,omitempty"`
	RecomputedShards int          `json:"recomputed_shards,omitempty"`
	WorkerProcs      []WorkerProc `json:"worker_procs,omitempty"`
	// ShardBench is the simulated multi-shard ladder (shardbench.go): the
	// makespan the pool's schedule achieves over this run's measured entry
	// costs at each worker count — how parallel speedups get *measured*
	// into BENCH_*.json even on a single-core benchmark host.
	ShardBench []ShardPoint `json:"shard_bench,omitempty"`
	// StrategyBench is the per-screening-strategy cost accounting parsed
	// from the strategy sweep's registry entries (StrategyRows), and
	// SweepShardBench the ShardBench ladder over just those entries — the
	// sweep's simulated parallel makespan across strategies.
	StrategyBench   []StrategyBench    `json:"strategy_bench,omitempty"`
	SweepShardBench []ShardPoint       `json:"sweep_shard_bench,omitempty"`
	Experiments     []ExperimentTiming `json:"experiments"`

	start        wallclock.Stamp
	startMemised bool
	startMallocs uint64
	startAlloc   uint64
}

// newRunReport opens the accounting for a run of n experiments.
func newRunReport(ctx *Ctx, n int) *RunReport {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return &RunReport{
		Schema:       "farron-bench/v1",
		Date:         wallclock.Date(),
		Seed:         ctx.Seed,
		Workers:      ctx.Workers,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		Experiments:  make([]ExperimentTiming, n),
		start:        wallclock.Start(),
		startMemised: true,
		startMallocs: ms.Mallocs,
		startAlloc:   ms.TotalAlloc,
	}
}

// finish closes the accounting: total wall time and allocation deltas over
// the whole run (cumulative counters, so concurrent experiments are summed,
// not sampled).
func (r *RunReport) finish() {
	r.WallSeconds = r.start.Seconds()
	if r.startMemised {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		r.AllocBytes = ms.TotalAlloc - r.startAlloc
		r.Mallocs = ms.Mallocs - r.startMallocs
	}
}

// WriteJSON emits the report as indented JSON.
func (r *RunReport) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", b)
	return err
}
