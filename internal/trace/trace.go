// Package trace persists and analyzes SDC records: the study's raw
// evidence ("we have run tens of millions of tests and collected more than
// ten thousand SDC records"). Records are stored as JSON lines so the
// corpus can be re-analyzed, diffed and shared without re-running the
// simulation.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"farron/internal/model"
)

// record is the serialized form of one SDC record.
type record struct {
	Processor   string  `json:"processor"`
	Core        int     `json:"core"`
	Testcase    string  `json:"testcase"`
	DataType    string  `json:"datatype,omitempty"`
	Expected    uint64  `json:"expected,omitempty"`
	Actual      uint64  `json:"actual,omitempty"`
	ExpectedHi  uint16  `json:"expected_hi,omitempty"`
	ActualHi    uint16  `json:"actual_hi,omitempty"`
	TempC       float64 `json:"temp_c"`
	WhenSeconds float64 `json:"when_s"`
	Consistency bool    `json:"consistency,omitempty"`
	Context     string  `json:"context_instr,omitempty"`
}

// dtByName maps datatype names back to values.
var dtByName = func() map[string]model.DataType {
	m := map[string]model.DataType{}
	for _, dt := range model.AllDataTypes() {
		m[dt.String()] = dt
	}
	return m
}()

// Write serializes records as JSON lines.
func Write(w io.Writer, records []model.SDCRecord) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range records {
		r := &records[i]
		out := record{
			Processor:   r.ProcessorID,
			Core:        r.Core,
			Testcase:    r.TestcaseID,
			TempC:       r.Temperature,
			WhenSeconds: r.When.Seconds(),
			Consistency: r.Consistency,
		}
		if !r.Consistency {
			out.DataType = r.DataType.String()
			out.Expected, out.Actual = r.Expected, r.Actual
			out.ExpectedHi, out.ActualHi = r.ExpectedHi, r.ActualHi
		}
		if r.HasContext {
			out.Context = r.ContextInstr.String()
		}
		if err := enc.Encode(&out); err != nil {
			return fmt.Errorf("trace: encode record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Read parses a JSON-lines record stream.
func Read(r io.Reader) ([]model.SDCRecord, error) {
	var out []model.SDCRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		m := model.SDCRecord{
			ProcessorID: rec.Processor,
			Core:        rec.Core,
			TestcaseID:  rec.Testcase,
			Temperature: rec.TempC,
			When:        time.Duration(rec.WhenSeconds * float64(time.Second)),
			Consistency: rec.Consistency,
		}
		if !rec.Consistency {
			dt, ok := dtByName[rec.DataType]
			if !ok {
				return nil, fmt.Errorf("trace: line %d: unknown datatype %q", line, rec.DataType)
			}
			m.DataType = dt
			m.Expected, m.Actual = rec.Expected, rec.Actual
			m.ExpectedHi, m.ActualHi = rec.ExpectedHi, rec.ActualHi
		}
		out = append(out, m)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return out, nil
}

// Summary aggregates a record corpus.
type Summary struct {
	Total       int
	Consistency int
	// ByProcessor, ByTestcase and ByDataType count records per key.
	ByProcessor map[string]int
	ByTestcase  map[string]int
	ByDataType  map[model.DataType]int
	// Settings is the number of distinct (processor, testcase, core)
	// combinations.
	Settings int
	// TempMin/TempMax bound the corruption temperatures.
	TempMin, TempMax float64
}

// Summarize scans a corpus.
func Summarize(records []model.SDCRecord) Summary {
	s := Summary{
		ByProcessor: map[string]int{},
		ByTestcase:  map[string]int{},
		ByDataType:  map[model.DataType]int{},
		TempMin:     1e9,
		TempMax:     -1e9,
	}
	settings := map[model.Setting]bool{}
	for i := range records {
		r := &records[i]
		s.Total++
		if r.Consistency {
			s.Consistency++
		} else {
			s.ByDataType[r.DataType]++
		}
		s.ByProcessor[r.ProcessorID]++
		s.ByTestcase[r.TestcaseID]++
		settings[model.Setting{ProcessorID: r.ProcessorID, TestcaseID: r.TestcaseID, Core: r.Core}] = true
		if r.Temperature < s.TempMin {
			s.TempMin = r.Temperature
		}
		if r.Temperature > s.TempMax {
			s.TempMax = r.Temperature
		}
	}
	s.Settings = len(settings)
	if s.Total == 0 {
		s.TempMin, s.TempMax = 0, 0
	}
	return s
}

// String renders the summary.
func (s Summary) String() string {
	procs := make([]string, 0, len(s.ByProcessor))
	for p := range s.ByProcessor {
		procs = append(procs, p)
	}
	sort.Strings(procs)
	out := fmt.Sprintf("%d records (%d consistency) across %d settings, %d processors, temps %.1f-%.1f degC",
		s.Total, s.Consistency, s.Settings, len(procs), s.TempMin, s.TempMax)
	return out
}
