package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"farron/internal/model"
)

func sampleRecords() []model.SDCRecord {
	return []model.SDCRecord{
		{
			ProcessorID: "FPU1", Core: 0, TestcaseID: "tc-301",
			DataType: model.DTFloat64, Expected: 0x4001, Actual: 0x4003,
			Temperature: 58.5, When: 90 * time.Second,
		},
		{
			ProcessorID: "FPU1", Core: 0, TestcaseID: "tc-301",
			DataType: model.DTFloat64x, Expected: 7, Actual: 5,
			ExpectedHi: 0x3FFF, ActualHi: 0x3FFF,
			Temperature: 61.2, When: 95 * time.Second,
			HasContext:   true,
			ContextInstr: model.InstrID{Class: model.InstrFPTrig, Variant: 17},
		},
		{
			ProcessorID: "CNST1", Core: 3, TestcaseID: "tc-500",
			Consistency: true, Temperature: 55, When: 10 * time.Second,
		},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		w, g := recs[i], got[i]
		if g.ProcessorID != w.ProcessorID || g.Core != w.Core || g.TestcaseID != w.TestcaseID {
			t.Errorf("record %d identity mismatch: %+v vs %+v", i, g, w)
		}
		if g.Consistency != w.Consistency {
			t.Errorf("record %d consistency mismatch", i)
		}
		if !w.Consistency {
			if g.DataType != w.DataType || g.Expected != w.Expected || g.Actual != w.Actual ||
				g.ExpectedHi != w.ExpectedHi || g.ActualHi != w.ActualHi {
				t.Errorf("record %d payload mismatch: %+v vs %+v", i, g, w)
			}
		}
		if g.Temperature != w.Temperature || g.When != w.When {
			t.Errorf("record %d context mismatch", i)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(strings.NewReader(`{"processor":"x","datatype":"nope"}` + "\n")); err == nil {
		t.Error("unknown datatype accepted")
	}
}

func TestReadSkipsEmptyLines(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleRecords()[:1]); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("\n")
	got, err := Read(&buf)
	if err != nil || len(got) != 1 {
		t.Errorf("got %d, %v", len(got), err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(sampleRecords())
	if s.Total != 3 || s.Consistency != 1 {
		t.Errorf("total/consistency = %d/%d", s.Total, s.Consistency)
	}
	if s.Settings != 2 {
		t.Errorf("settings = %d, want 2", s.Settings)
	}
	if s.ByProcessor["FPU1"] != 2 || s.ByProcessor["CNST1"] != 1 {
		t.Errorf("by processor = %v", s.ByProcessor)
	}
	if s.ByDataType[model.DTFloat64] != 1 {
		t.Errorf("by datatype = %v", s.ByDataType)
	}
	if s.TempMin != 55 || s.TempMax != 61.2 {
		t.Errorf("temps = %v-%v", s.TempMin, s.TempMax)
	}
	if !strings.Contains(s.String(), "3 records") {
		t.Errorf("summary string = %q", s.String())
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Total != 0 || s.TempMin != 0 || s.TempMax != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}
