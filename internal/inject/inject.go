// Package inject implements the bitflip engine of the study: which bit
// positions flip, in which direction, in what multiplicities (the bitflip
// patterns of Observation 8), and what relative precision loss each flip
// causes under the datatype's encoding (Observation 7).
//
// All flips operate on a (lo uint64, hi uint16) raw pattern: lo carries the
// low 64 bits of the value right-aligned, hi carries bits 64-79 for the
// 80-bit extended floats and is zero otherwise.
package inject

import (
	"math"

	"farron/internal/model"
	"farron/internal/simrand"
)

// ZeroToOneBias is the global probability that a flip goes 0->1. The paper
// measures 51.08% (Observation 7) — no strong global tendency.
const ZeroToOneBias = 0.5108

// PositionWeights returns the per-bit flip weight profile of a datatype.
//
// Numerical datatypes follow the location-preference model of Observation 7:
// flips concentrate in the middle of the word and fall off toward both
// ends, with a much harder cutoff at the most-significant end. For floats
// the computation logic of the fraction part is the complex (vulnerable)
// one, so sign and exponent bits are suppressed to near zero — which is why
// float SDCs cause only minor precision losses. Non-numerical (bin*)
// datatypes are uniform (Figure 5).
func PositionWeights(dt model.DataType) []float64 {
	n := dt.Bits()
	w := make([]float64, n)
	if !dt.Numeric() {
		for i := range w {
			w[i] = 1
		}
		return w
	}
	const negligible = 1e-7
	if dt.Float() {
		// Bump over the fraction bits only; the top of the fraction,
		// the exponent and the sign are strongly suppressed.
		fb := FractionBits(dt)
		peak := 0.42 * float64(fb)
		width := 0.20 * float64(fb)
		for i := 0; i < n; i++ {
			if i >= fb {
				w[i] = negligible // exponent/sign/integer bit
				continue
			}
			d := (float64(i) - peak) / width
			w[i] = math.Exp(-0.5 * d * d)
			if frac := float64(i) / float64(fb); frac > 0.62 {
				w[i] *= math.Exp(-80 * (frac - 0.62))
			}
			if w[i] < negligible {
				w[i] = negligible
			}
		}
		return w
	}
	// Integers: mid-word bump with hard suppression of the top quarter.
	peak := 0.45 * float64(n-1)
	width := 0.28 * float64(n)
	for i := 0; i < n; i++ {
		d := (float64(i) - peak) / width
		w[i] = math.Exp(-0.5 * d * d)
		if frac := float64(i) / float64(n-1); frac > 0.75 {
			w[i] *= math.Exp(-40 * (frac - 0.75))
		}
		if w[i] < negligible {
			w[i] = negligible
		}
	}
	return w
}

// SamplePosition draws a flip position for the datatype from its weight
// profile.
func SamplePosition(rng *simrand.Source, dt model.DataType) int {
	return rng.WeightedChoice(PositionWeights(dt))
}

// SampleDirectedPosition draws a flip position preferring bits whose current
// value allows a flip in the desired direction (zeroToOne). It makes a
// bounded number of attempts and then returns the last sampled position
// regardless, so it always terminates even for all-ones or all-zero values.
func SampleDirectedPosition(rng *simrand.Source, dt model.DataType, lo uint64, hi uint16, zeroToOne bool) int {
	pos := 0
	for attempt := 0; attempt < 8; attempt++ {
		pos = SamplePosition(rng, dt)
		if BitAt(lo, hi, pos) != zeroToOne {
			// Bit is 0 and we want 0->1 (or 1 and we want 1->0).
			return pos
		}
	}
	return pos
}

// BitAt returns bit pos of the (lo, hi) pattern as a bool (true = 1).
func BitAt(lo uint64, hi uint16, pos int) bool {
	if pos < 64 {
		return lo>>uint(pos)&1 == 1
	}
	return hi>>uint(pos-64)&1 == 1
}

// FlipBit returns the pattern with bit pos inverted.
func FlipBit(lo uint64, hi uint16, pos int) (uint64, uint16) {
	if pos < 64 {
		return lo ^ 1<<uint(pos), hi
	}
	return lo, hi ^ 1<<uint(pos-64)
}

// ApplyMask XORs a flip mask into the pattern. Applying the same mask twice
// restores the original value (masks are involutions).
func ApplyMask(lo uint64, hi uint16, maskLo uint64, maskHi uint16) (uint64, uint16) {
	return lo ^ maskLo, hi ^ maskHi
}

// PopCount returns the number of set bits across the 80-bit pattern.
func PopCount(lo uint64, hi uint16) int {
	return popcount64(lo) + popcount64(uint64(hi))
}

func popcount64(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// GenerateMask builds a fixed bitflip-pattern mask with nbits distinct
// positions drawn from the datatype's weight profile (Observation 8: a
// defect flips fixed positions).
func GenerateMask(rng *simrand.Source, dt model.DataType, nbits int) (lo uint64, hi uint16) {
	if nbits <= 0 || nbits > dt.Bits() {
		panic("inject: invalid mask bit count")
	}
	chosen := map[int]bool{}
	for len(chosen) < nbits {
		p := SamplePosition(rng, dt)
		if !chosen[p] {
			chosen[p] = true
			lo, hi = FlipBit(lo, hi, p)
		}
	}
	return lo, hi
}

// RandomValue produces a plausible operand value for the datatype, as the
// expected (golden) result of a corrupted operation. Floats are drawn
// log-uniformly over several decades with random sign; integers uniformly;
// blobs uniformly over their width.
func RandomValue(rng *simrand.Source, dt model.DataType) (lo uint64, hi uint16) {
	switch dt {
	case model.DTFloat32:
		v := rng.LogUniform(1e-3, 1e6)
		if rng.Bool(0.5) {
			v = -v
		}
		return uint64(math.Float32bits(float32(v))), 0
	case model.DTFloat64:
		v := rng.LogUniform(1e-6, 1e9)
		if rng.Bool(0.5) {
			v = -v
		}
		return math.Float64bits(v), 0
	case model.DTFloat64x:
		v := rng.LogUniform(1e-6, 1e9)
		if rng.Bool(0.5) {
			v = -v
		}
		f := Float80FromFloat64(v)
		return f.Sig, f.SE
	case model.DTInt16:
		// Workload integers are counters, sizes and indices: magnitudes
		// are log-uniform, which is why integer SDCs often exceed 100%
		// relative loss (Observation 7 / Figure 4e).
		v := int64(rng.LogUniform(1, 1<<14))
		if rng.Bool(0.3) {
			v = -v
		}
		return uint64(uint16(v)), 0
	case model.DTInt32:
		v := int64(rng.LogUniform(1, 1<<30))
		if rng.Bool(0.3) {
			v = -v
		}
		return uint64(uint32(v)), 0
	case model.DTUint32:
		return uint64(uint32(rng.LogUniform(1, 1<<31))), 0
	case model.DTBin32:
		return uint64(uint32(rng.Uint64())), 0
	case model.DTBit:
		return uint64(rng.Intn(2)), 0
	case model.DTByte, model.DTBin8:
		return uint64(uint8(rng.Uint64())), 0
	case model.DTBin16:
		return uint64(uint16(rng.Uint64())), 0
	case model.DTBin64:
		return rng.Uint64(), 0
	default:
		return rng.Uint64() & ((1 << uint(dt.Bits())) - 1), 0
	}
}

// RelativeLoss computes the relative precision loss |actual-expected| /
// |expected| under the datatype's interpretation (Observation 7 / Figure 4
// e-h). For non-numerical datatypes it returns NaN: "loss" is undefined for
// opaque blobs. A zero expected value with a non-zero actual yields +Inf.
func RelativeLoss(dt model.DataType, expLo, actLo uint64, expHi, actHi uint16) float64 {
	switch dt {
	case model.DTFloat32:
		e := float64(math.Float32frombits(uint32(expLo)))
		a := float64(math.Float32frombits(uint32(actLo)))
		return relLoss(e, a)
	case model.DTFloat64:
		return relLoss(math.Float64frombits(expLo), math.Float64frombits(actLo))
	case model.DTFloat64x:
		e := Float80FromBits(expHi, expLo).Float64()
		a := Float80FromBits(actHi, actLo).Float64()
		return relLoss(e, a)
	case model.DTInt16:
		return relLoss(float64(int16(expLo)), float64(int16(actLo)))
	case model.DTInt32:
		return relLoss(float64(int32(expLo)), float64(int32(actLo)))
	case model.DTUint32:
		return relLoss(float64(uint32(expLo)), float64(uint32(actLo)))
	default:
		return math.NaN()
	}
}

func relLoss(expected, actual float64) float64 {
	if math.IsNaN(expected) || math.IsNaN(actual) {
		return math.NaN()
	}
	diff := math.Abs(actual - expected)
	if diff == 0 {
		return 0
	}
	if expected == 0 {
		return math.Inf(1)
	}
	return diff / math.Abs(expected)
}

// FractionBitLossBound returns the maximum possible relative loss from
// flipping fraction bit pos (0 = least significant fraction bit) of the
// given float datatype, per the IEEE-754 argument of Observation 7: with an
// implicit (or explicit) leading 1, flipping fraction bit pos changes the
// value by at most 2^(pos-fracBits) relative to the significand, which is
// >= 1.
func FractionBitLossBound(dt model.DataType, pos int) float64 {
	var fracBits int
	switch dt {
	case model.DTFloat32:
		fracBits = 23
	case model.DTFloat64:
		fracBits = 52
	case model.DTFloat64x:
		fracBits = 63 // explicit integer bit at 63
	default:
		return math.NaN()
	}
	if pos < 0 || pos >= fracBits {
		return math.NaN()
	}
	return math.Ldexp(1, pos-fracBits)
}

// FractionBits returns the index range [0, n) of fraction bits for a float
// datatype (positions within the raw pattern that belong to the fraction).
func FractionBits(dt model.DataType) int {
	switch dt {
	case model.DTFloat32:
		return 23
	case model.DTFloat64:
		return 52
	case model.DTFloat64x:
		return 63
	default:
		return 0
	}
}

// Corruptor draws corrupted results for a defect's pattern set. Pattern
// masks fire with their configured probabilities; the remainder of SDCs use
// a random single-bit (occasionally multi-bit) flip from the positional
// model.
type Corruptor struct {
	dt model.DataType
	// patterns are fixed masks with selection weights; patternProb is the
	// total probability that some pattern (rather than a random flip)
	// is used.
	patterns    []Mask
	patternProb float64
	// patternWeights and posWeights cache the selection-weight slices that
	// CorruptWithProb would otherwise rebuild on every call (a corruptor is
	// consulted once per SDC record; the weights never change).
	patternWeights []float64
	posWeights     []float64
}

// Mask is one fixed bitflip pattern with its relative weight among patterns.
type Mask struct {
	Lo     uint64
	Hi     uint16
	Weight float64
}

// NewCorruptor builds a Corruptor. patternProb is the probability an SDC
// record matches one of the fixed patterns (the per-setting values plotted
// in Figure 6).
func NewCorruptor(dt model.DataType, patterns []Mask, patternProb float64) *Corruptor {
	if patternProb < 0 || patternProb > 1 {
		panic("inject: patternProb out of range")
	}
	if len(patterns) == 0 {
		patternProb = 0
	}
	weights := make([]float64, len(patterns))
	for i, p := range patterns {
		weights[i] = p.Weight
	}
	return &Corruptor{
		dt: dt, patterns: patterns, patternProb: patternProb,
		patternWeights: weights, posWeights: PositionWeights(dt),
	}
}

// DataType returns the corruptor's operand datatype.
func (c *Corruptor) DataType() model.DataType { return c.dt }

// Patterns returns the fixed masks.
func (c *Corruptor) Patterns() []Mask { return c.patterns }

// PatternProb returns the probability an SDC matches a fixed pattern.
func (c *Corruptor) PatternProb() float64 { return c.patternProb }

// Corrupt takes an expected bit pattern and returns the corrupted one.
func (c *Corruptor) Corrupt(rng *simrand.Source, expLo uint64, expHi uint16) (actLo uint64, actHi uint16) {
	return c.CorruptWithProb(rng, c.patternProb, expLo, expHi)
}

// CorruptWithProb is Corrupt with a per-call pattern probability override.
// The paper's Figure 6 shows the pattern-match proportion varying per
// (testcase, processor) setting; callers pass the setting-specific value.
func (c *Corruptor) CorruptWithProb(rng *simrand.Source, patternProb float64, expLo uint64, expHi uint16) (actLo uint64, actHi uint16) {
	if len(c.patterns) == 0 {
		patternProb = 0
	}
	if patternProb > 0 && rng.Bool(patternProb) {
		m := c.patterns[rng.WeightedChoice(c.patternWeights)]
		return ApplyMask(expLo, expHi, m.Lo, m.Hi)
	}
	// Off-pattern flip: direction-biased single bit, with a small chance
	// of a second correlated flip (Observation 8: multi-bit SDCs exist).
	zeroToOne := rng.Bool(ZeroToOneBias)
	pos := c.sampleDirectedPosition(rng, expLo, expHi, zeroToOne)
	actLo, actHi = FlipBit(expLo, expHi, pos)
	if rng.Bool(0.06) {
		pos2 := rng.WeightedChoice(c.posWeights)
		if pos2 != pos {
			actLo, actHi = FlipBit(actLo, actHi, pos2)
		}
	}
	return actLo, actHi
}

// sampleDirectedPosition is SampleDirectedPosition over the corruptor's
// cached weight profile — the same draws without rebuilding the profile
// per attempt.
func (c *Corruptor) sampleDirectedPosition(rng *simrand.Source, lo uint64, hi uint16, zeroToOne bool) int {
	pos := 0
	for attempt := 0; attempt < 8; attempt++ {
		pos = rng.WeightedChoice(c.posWeights)
		if BitAt(lo, hi, pos) != zeroToOne {
			return pos
		}
	}
	return pos
}
