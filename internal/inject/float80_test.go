package inject

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFloat80RoundTripExact(t *testing.T) {
	cases := []float64{
		0, 1, -1, 0.5, 2, 1e10, -3.14159, 1e-300, math.MaxFloat64,
		math.SmallestNonzeroFloat64, // subnormal
		-math.SmallestNonzeroFloat64,
		5e-324 * 7, // subnormal multiple
	}
	for _, f := range cases {
		got := Float80FromFloat64(f).Float64()
		if got != f && !(f == 0 && got == 0) {
			t.Errorf("round trip %g -> %g", f, got)
		}
	}
}

func TestFloat80RoundTripProperty(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return Float80FromFloat64(x).IsNaN()
		}
		return Float80FromFloat64(x).Float64() == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat80Specials(t *testing.T) {
	inf := Float80FromFloat64(math.Inf(1))
	if !math.IsInf(inf.Float64(), 1) {
		t.Error("+Inf round trip failed")
	}
	ninf := Float80FromFloat64(math.Inf(-1))
	if !math.IsInf(ninf.Float64(), -1) {
		t.Error("-Inf round trip failed")
	}
	nan := Float80FromFloat64(math.NaN())
	if !nan.IsNaN() || !math.IsNaN(nan.Float64()) {
		t.Error("NaN round trip failed")
	}
	negZero := Float80FromFloat64(math.Copysign(0, -1))
	if !math.Signbit(negZero.Float64()) {
		t.Error("-0 sign lost")
	}
}

func TestFloat80IntegerBitSet(t *testing.T) {
	// Every normal value must have the explicit integer bit set.
	for _, f := range []float64{1, 2, 3, 0.1, 1e100, -42} {
		f80 := Float80FromFloat64(f)
		if f80.Sig&(1<<63) == 0 {
			t.Errorf("integer bit clear for %g", f)
		}
	}
}

func TestFloat80UnnormalNormalization(t *testing.T) {
	// A pattern with the integer bit flipped off (an "unnormal", which a
	// bitflip can produce) must still convert to a sensible float64.
	one := Float80FromFloat64(1.0)
	corrupted := Float80{SE: one.SE, Sig: one.Sig&^(1<<63) | 1<<62}
	v := corrupted.Float64()
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("unnormal converted to %v", v)
	}
	if v != 0.5 {
		t.Errorf("unnormal 0.1xxx * 2^0 = %v, want 0.5", v)
	}
}

func TestFloat80Bits(t *testing.T) {
	f := Float80FromFloat64(1.0)
	hi, lo := f.Bits()
	if hi != 16383 { // sign 0, exponent = bias
		t.Errorf("SE of 1.0 = %d, want 16383", hi)
	}
	if lo != 1<<63 {
		t.Errorf("Sig of 1.0 = %x, want integer bit only", lo)
	}
	back := Float80FromBits(hi, lo)
	if back.Float64() != 1.0 {
		t.Error("FromBits round trip failed")
	}
}

func TestFloat80FractionFlipSmallLoss(t *testing.T) {
	// Flipping a mid-fraction bit of an 80-bit float must change the
	// value by < 2^(pos-63) relatively (Observation 7).
	orig := 12345.6789
	f := Float80FromFloat64(orig)
	for pos := 40; pos < 60; pos++ {
		c := Float80{SE: f.SE, Sig: f.Sig ^ 1<<uint(pos)}
		rel := math.Abs(c.Float64()-orig) / math.Abs(orig)
		bound := math.Ldexp(1, pos-63)
		if rel > bound {
			t.Errorf("pos %d: rel loss %g > bound %g", pos, rel, bound)
		}
	}
}
