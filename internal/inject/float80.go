package inject

import "math"

// Float80 models the x87 80-bit extended-precision format: 1 sign bit and a
// 15-bit biased exponent in SE, and a 64-bit significand (with an explicit
// integer bit, bit 63) in Sig. The paper's float64x datatype (Figure 4d/4h)
// uses this representation.
type Float80 struct {
	// SE packs sign (bit 15) and biased exponent (bits 0-14).
	SE uint16
	// Sig is the significand including the explicit integer bit (bit 63).
	Sig uint64
}

const (
	float80Bias    = 16383
	float80ExpMask = 0x7FFF
)

// Float80FromFloat64 converts a float64 to its exact Float80 representation
// (every float64 is representable exactly in the 80-bit format).
func Float80FromFloat64(f float64) Float80 {
	bits := math.Float64bits(f)
	sign := uint16(bits >> 63)
	exp := int((bits >> 52) & 0x7FF)
	frac := bits & ((1 << 52) - 1)

	switch {
	case exp == 0x7FF: // Inf or NaN
		se := sign<<15 | float80ExpMask
		if frac == 0 {
			return Float80{SE: se, Sig: 1 << 63} // infinity
		}
		return Float80{SE: se, Sig: 1<<63 | frac<<11} // NaN, payload preserved
	case exp == 0 && frac == 0: // zero
		return Float80{SE: sign << 15, Sig: 0}
	case exp == 0: // subnormal double: normalize
		e := -1022
		for frac&(1<<52) == 0 {
			frac <<= 1
			e--
		}
		frac &= (1 << 52) - 1
		return Float80{
			SE:  sign<<15 | uint16(e+float80Bias),
			Sig: 1<<63 | frac<<11,
		}
	default:
		return Float80{
			SE:  sign<<15 | uint16(exp-1023+float80Bias),
			Sig: 1<<63 | frac<<11,
		}
	}
}

// Float64 converts back to float64, rounding the significand to nearest-even.
func (f Float80) Float64() float64 {
	sign := f.SE >> 15
	exp := int(f.SE & float80ExpMask)

	if exp == float80ExpMask {
		if f.Sig<<1 == 0 { // integer bit only => infinity
			return math.Inf(1 - 2*int(sign))
		}
		return math.NaN()
	}
	if f.Sig == 0 {
		if sign == 1 {
			return math.Copysign(0, -1)
		}
		return 0
	}
	// Normalize an unnormal (integer bit clear) significand.
	sig := f.Sig
	for sig&(1<<63) == 0 {
		sig <<= 1
		exp--
	}
	// value = sig/2^63 * 2^(exp-bias)
	mant := float64(sig) / (1 << 63)
	v := math.Ldexp(mant, exp-float80Bias)
	if sign == 1 {
		v = -v
	}
	return v
}

// Bits returns the raw (hi, lo) bit pattern: hi carries bits 64-79 (SE),
// lo carries bits 0-63 (the significand).
func (f Float80) Bits() (hi uint16, lo uint64) { return f.SE, f.Sig }

// Float80FromBits reassembles a Float80 from its raw pattern.
func Float80FromBits(hi uint16, lo uint64) Float80 { return Float80{SE: hi, Sig: lo} }

// IsNaN reports whether f is a NaN.
func (f Float80) IsNaN() bool {
	return f.SE&float80ExpMask == float80ExpMask && f.Sig<<1 != 0
}
