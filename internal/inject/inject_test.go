package inject

import (
	"math"
	"testing"
	"testing/quick"

	"farron/internal/model"
	"farron/internal/simrand"
)

func TestPositionWeightsShape(t *testing.T) {
	for _, dt := range []model.DataType{model.DTInt32, model.DTFloat32, model.DTFloat64, model.DTFloat64x} {
		w := PositionWeights(dt)
		n := dt.Bits()
		if len(w) != n {
			t.Fatalf("%v: %d weights, want %d", dt, len(w), n)
		}
		// MSB weight must be far below the peak (Observation 7).
		peak := 0.0
		for _, x := range w {
			if x > peak {
				peak = x
			}
		}
		if w[n-1] > peak/50 {
			t.Errorf("%v: MSB weight %g not suppressed vs peak %g", dt, w[n-1], peak)
		}
		// The bump peaks inside the fraction (floats) / mid-word (ints).
		var hot int
		if dt.Float() {
			hot = int(0.42 * float64(FractionBits(dt)))
		} else {
			hot = n / 2
		}
		if w[hot] < peak/3 {
			t.Errorf("%v: bump weight %g at bit %d too low vs peak %g", dt, w[hot], hot, peak)
		}
	}
}

func TestPositionWeightsFloatEncodingAware(t *testing.T) {
	// Sign and exponent bits of floats are vanishingly unlikely to flip
	// — the mechanism behind Observation 7's tiny float losses.
	cases := []struct {
		dt       model.DataType
		expStart int
	}{
		{model.DTFloat32, 23},
		{model.DTFloat64, 52},
		{model.DTFloat64x, 63},
	}
	for _, c := range cases {
		w := PositionWeights(c.dt)
		peak := 0.0
		for _, x := range w {
			if x > peak {
				peak = x
			}
		}
		for i := c.expStart; i < len(w); i++ {
			if w[i] > peak*1e-4 {
				t.Errorf("%v: exponent/sign bit %d weight %g not negligible", c.dt, i, w[i])
			}
		}
	}
}

func TestPositionWeightsUniformForBlobs(t *testing.T) {
	for _, dt := range []model.DataType{model.DTBin32, model.DTBin64, model.DTBin16, model.DTByte} {
		w := PositionWeights(dt)
		for i, x := range w {
			if x != 1 {
				t.Errorf("%v bit %d weight %g, want 1 (uniform)", dt, i, x)
			}
		}
	}
}

func TestSamplePositionAvoidsMSB(t *testing.T) {
	rng := simrand.New(1)
	msbHits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		p := SamplePosition(rng, model.DTFloat64)
		if p < 0 || p >= 64 {
			t.Fatalf("position out of range: %d", p)
		}
		if p >= 60 {
			msbHits++
		}
	}
	if frac := float64(msbHits) / n; frac > 0.01 {
		t.Errorf("top-4-bit flips fraction = %v, want rare", frac)
	}
}

func TestBitAtFlipBit(t *testing.T) {
	lo, hi := uint64(0), uint16(0)
	lo, hi = FlipBit(lo, hi, 5)
	if !BitAt(lo, hi, 5) || lo != 32 {
		t.Errorf("FlipBit(5): lo=%x", lo)
	}
	lo, hi = FlipBit(lo, hi, 70)
	if !BitAt(lo, hi, 70) || hi != 1<<6 {
		t.Errorf("FlipBit(70): hi=%x", hi)
	}
	lo, hi = FlipBit(lo, hi, 5)
	if BitAt(lo, hi, 5) {
		t.Error("double flip did not restore")
	}
}

func TestApplyMaskInvolution(t *testing.T) {
	f := func(lo uint64, hi uint16, mLo uint64, mHi uint16) bool {
		l1, h1 := ApplyMask(lo, hi, mLo, mHi)
		l2, h2 := ApplyMask(l1, h1, mLo, mHi)
		return l2 == lo && h2 == hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPopCount(t *testing.T) {
	if got := PopCount(0b1011, 0); got != 3 {
		t.Errorf("PopCount = %d", got)
	}
	if got := PopCount(0, 0xFFFF); got != 16 {
		t.Errorf("PopCount hi = %d", got)
	}
	if got := PopCount(math.MaxUint64, 0xFFFF); got != 80 {
		t.Errorf("PopCount full = %d", got)
	}
}

func TestGenerateMask(t *testing.T) {
	rng := simrand.New(2)
	for _, nbits := range []int{1, 2, 3} {
		lo, hi := GenerateMask(rng, model.DTFloat64, nbits)
		if got := PopCount(lo, hi); got != nbits {
			t.Errorf("mask with %d bits has popcount %d", nbits, got)
		}
	}
}

func TestGenerateMaskPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("GenerateMask(0 bits) should panic")
		}
	}()
	GenerateMask(simrand.New(1), model.DTFloat64, 0)
}

func TestRandomValueInRange(t *testing.T) {
	rng := simrand.New(3)
	for _, dt := range model.AllDataTypes() {
		for i := 0; i < 100; i++ {
			lo, hi := RandomValue(rng, dt)
			bits := dt.Bits()
			if bits <= 64 && bits < 64 && lo>>uint(bits) != 0 {
				t.Errorf("%v value %x exceeds %d bits", dt, lo, bits)
			}
			if bits <= 64 && hi != 0 {
				t.Errorf("%v has non-zero hi bits", dt)
			}
		}
	}
}

func TestRandomValueFloatsFinite(t *testing.T) {
	rng := simrand.New(4)
	for i := 0; i < 1000; i++ {
		lo, _ := RandomValue(rng, model.DTFloat64)
		v := math.Float64frombits(lo)
		if math.IsNaN(v) || math.IsInf(v, 0) || v == 0 {
			t.Fatalf("bad float64 value %v", v)
		}
		lo32, _ := RandomValue(rng, model.DTFloat32)
		v32 := math.Float32frombits(uint32(lo32))
		if math.IsNaN(float64(v32)) || math.IsInf(float64(v32), 0) || v32 == 0 {
			t.Fatalf("bad float32 value %v", v32)
		}
	}
}

func TestRelativeLossFloat64FractionSmall(t *testing.T) {
	// Flipping fraction bits of a float64 gives a loss bounded by
	// 2^(pos-52) (Observation 7).
	exp := math.Float64bits(987.654321)
	for pos := 20; pos < 52; pos++ {
		act := exp ^ 1<<uint(pos)
		loss := RelativeLoss(model.DTFloat64, exp, act, 0, 0)
		bound := FractionBitLossBound(model.DTFloat64, pos)
		if loss > bound {
			t.Errorf("pos %d: loss %g > bound %g", pos, loss, bound)
		}
	}
}

func TestRelativeLossInt32CanBeHuge(t *testing.T) {
	// For a small integer, a mid-position flip is a >100% loss.
	exp := uint64(uint32(3))
	act := exp ^ 1<<20
	loss := RelativeLoss(model.DTInt32, exp, act, 0, 0)
	if loss < 1 {
		t.Errorf("int32 small-value loss = %v, want > 100%%", loss)
	}
}

func TestRelativeLossZeroExpected(t *testing.T) {
	loss := RelativeLoss(model.DTInt32, 0, 4, 0, 0)
	if !math.IsInf(loss, 1) {
		t.Errorf("loss with zero expected = %v, want +Inf", loss)
	}
	if got := RelativeLoss(model.DTInt32, 7, 7, 0, 0); got != 0 {
		t.Errorf("identical values loss = %v", got)
	}
}

func TestRelativeLossNonNumericNaN(t *testing.T) {
	if !math.IsNaN(RelativeLoss(model.DTBin32, 1, 2, 0, 0)) {
		t.Error("bin32 loss should be NaN")
	}
}

func TestRelativeLossFloat80(t *testing.T) {
	f := Float80FromFloat64(1234.5)
	cLo := f.Sig ^ 1<<40
	loss := RelativeLoss(model.DTFloat64x, f.Sig, cLo, f.SE, f.SE)
	if loss <= 0 || loss > math.Ldexp(1, 40-63) {
		t.Errorf("float80 fraction flip loss = %g", loss)
	}
}

func TestFractionBitLossBound(t *testing.T) {
	if got := FractionBitLossBound(model.DTFloat32, 22); got != 0.5 {
		t.Errorf("f32 bit22 bound = %v, want 0.5", got)
	}
	if got := FractionBitLossBound(model.DTFloat64, 0); got != math.Ldexp(1, -52) {
		t.Errorf("f64 bit0 bound = %v", got)
	}
	if !math.IsNaN(FractionBitLossBound(model.DTInt32, 5)) {
		t.Error("int bound should be NaN")
	}
	if !math.IsNaN(FractionBitLossBound(model.DTFloat64, 52)) {
		t.Error("out-of-fraction bound should be NaN")
	}
}

func TestCorruptorPatternsDominate(t *testing.T) {
	rng := simrand.New(5)
	mask := Mask{Lo: 1 << 30, Weight: 1}
	c := NewCorruptor(model.DTFloat64, []Mask{mask}, 0.9)
	matches := 0
	const n = 5000
	for i := 0; i < n; i++ {
		expLo, expHi := RandomValue(rng, model.DTFloat64)
		actLo, actHi := c.Corrupt(rng, expLo, expHi)
		if actLo == expLo && actHi == expHi {
			t.Fatal("corruption produced identical value")
		}
		if actLo^expLo == mask.Lo && actHi == expHi {
			matches++
		}
	}
	frac := float64(matches) / n
	if frac < 0.85 || frac > 0.95 {
		t.Errorf("pattern match fraction = %v, want ~0.9", frac)
	}
}

func TestCorruptorMultiPattern(t *testing.T) {
	rng := simrand.New(6)
	masks := []Mask{
		{Lo: 1 << 10, Weight: 3},
		{Lo: 1<<20 | 1<<21, Weight: 1},
	}
	c := NewCorruptor(model.DTInt32, masks, 1.0)
	count := map[uint64]int{}
	for i := 0; i < 8000; i++ {
		expLo, _ := RandomValue(rng, model.DTInt32)
		actLo, _ := c.Corrupt(rng, expLo, 0)
		count[actLo^expLo]++
	}
	if len(count) != 2 {
		t.Fatalf("saw %d distinct masks, want 2", len(count))
	}
	ratio := float64(count[1<<10]) / float64(count[1<<20|1<<21])
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("mask weight ratio = %v, want ~3", ratio)
	}
}

func TestCorruptorNoPatterns(t *testing.T) {
	rng := simrand.New(7)
	c := NewCorruptor(model.DTFloat32, nil, 0.5) // prob forced to 0
	if c.PatternProb() != 0 {
		t.Errorf("patternProb = %v, want 0 with no patterns", c.PatternProb())
	}
	oneBit, twoBit := 0, 0
	for i := 0; i < 3000; i++ {
		expLo, expHi := RandomValue(rng, model.DTFloat32)
		actLo, actHi := c.Corrupt(rng, expLo, expHi)
		switch PopCount(actLo^expLo, actHi^expHi) {
		case 1:
			oneBit++
		case 2:
			twoBit++
		}
	}
	if oneBit < 2500 {
		t.Errorf("single-bit flips = %d/3000, want dominant", oneBit)
	}
	if twoBit == 0 {
		t.Error("no multi-bit flips observed; Observation 8 needs some")
	}
}

func TestCorruptorDirectionBias(t *testing.T) {
	rng := simrand.New(8)
	c := NewCorruptor(model.DTBin64, nil, 0)
	zeroToOne, total := 0, 0
	for i := 0; i < 20000; i++ {
		expLo, expHi := RandomValue(rng, model.DTBin64)
		actLo, actHi := c.Corrupt(rng, expLo, expHi)
		mask := actLo ^ expLo
		for pos := 0; pos < 64; pos++ {
			if mask>>uint(pos)&1 == 1 {
				total++
				if expLo>>uint(pos)&1 == 0 {
					zeroToOne++
				}
			}
		}
		_ = actHi
	}
	frac := float64(zeroToOne) / float64(total)
	if math.Abs(frac-ZeroToOneBias) > 0.02 {
		t.Errorf("0->1 fraction = %v, want ~%v", frac, ZeroToOneBias)
	}
}

func TestNewCorruptorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewCorruptor with bad prob should panic")
		}
	}()
	NewCorruptor(model.DTInt32, nil, 1.5)
}

func TestSampleDirectedPosition(t *testing.T) {
	rng := simrand.New(9)
	// All-zero value: requesting 0->1 must always find a zero bit.
	for i := 0; i < 100; i++ {
		pos := SampleDirectedPosition(rng, model.DTInt32, 0, 0, true)
		if pos < 0 || pos >= 32 {
			t.Fatalf("pos = %d", pos)
		}
	}
	// All-ones value with 0->1 requested cannot succeed but must
	// terminate.
	pos := SampleDirectedPosition(rng, model.DTInt32, 0xFFFFFFFF, 0, true)
	if pos < 0 || pos >= 32 {
		t.Fatalf("pos = %d", pos)
	}
}
