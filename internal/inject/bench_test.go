package inject

import (
	"testing"

	"farron/internal/model"
	"farron/internal/simrand"
)

func BenchmarkSamplePosition(b *testing.B) {
	rng := simrand.New(1)
	for i := 0; i < b.N; i++ {
		SamplePosition(rng, model.DTFloat64)
	}
}

func BenchmarkCorrupt(b *testing.B) {
	rng := simrand.New(2)
	mrng := simrand.New(3)
	lo, hi := GenerateMask(mrng, model.DTFloat64, 1)
	c := NewCorruptor(model.DTFloat64, []Mask{{Lo: lo, Hi: hi, Weight: 1}}, 0.8)
	for i := 0; i < b.N; i++ {
		expLo, expHi := RandomValue(rng, model.DTFloat64)
		c.Corrupt(rng, expLo, expHi)
	}
}

func BenchmarkFloat80RoundTrip(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = Float80FromFloat64(float64(i) * 1.7).Float64()
	}
	_ = sink
}
