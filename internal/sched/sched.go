// Package sched provides the discrete-event simulation core: a virtual
// clock, an event queue ordered by time, and periodic tasks. It is the only
// source of time in the simulation — nothing reads the wall clock — which
// makes every experiment reproducible.
package sched

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled callback.
type Event struct {
	// At is the virtual time the event fires.
	At time.Duration
	// Name describes the event for tracing.
	Name string
	// Fn runs when the event fires. It may schedule further events.
	Fn func(now time.Duration)

	seq   uint64 // tie-break so equal-time events run FIFO
	index int    // heap bookkeeping
}

// eventQueue implements heap.Interface ordered by (At, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Clock is a discrete-event simulation clock. The zero value is not usable;
// call NewClock.
type Clock struct {
	now   time.Duration
	queue eventQueue
	seq   uint64
}

// NewClock returns a clock at virtual time zero with an empty queue.
func NewClock() *Clock {
	c := &Clock{}
	heap.Init(&c.queue)
	return c
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// panics: it would silently reorder causality.
func (c *Clock) At(at time.Duration, name string, fn func(now time.Duration)) *Event {
	if at < c.now {
		panic(fmt.Sprintf("sched: scheduling %q at %v before now %v", name, at, c.now))
	}
	e := &Event{At: at, Name: name, Fn: fn, seq: c.seq}
	c.seq++
	heap.Push(&c.queue, e)
	return e
}

// After schedules fn to run d after the current time.
func (c *Clock) After(d time.Duration, name string, fn func(now time.Duration)) *Event {
	return c.At(c.now+d, name, fn)
}

// Cancel removes a pending event. Canceling an already-fired or
// already-canceled event is a no-op.
func (c *Clock) Cancel(e *Event) {
	if e == nil || e.index < 0 || e.index >= len(c.queue) || c.queue[e.index] != e {
		return
	}
	heap.Remove(&c.queue, e.index)
}

// Pending returns the number of queued events.
func (c *Clock) Pending() int { return len(c.queue) }

// Step fires the next event, advancing the clock to its time. It returns
// false if the queue is empty.
func (c *Clock) Step() bool {
	if len(c.queue) == 0 {
		return false
	}
	e := heap.Pop(&c.queue).(*Event)
	c.now = e.At
	e.Fn(c.now)
	return true
}

// RunUntil fires events in order until the queue is empty or the next event
// is after deadline; the clock is then advanced to exactly deadline.
func (c *Clock) RunUntil(deadline time.Duration) {
	for len(c.queue) > 0 && c.queue[0].At <= deadline {
		c.Step()
	}
	if deadline > c.now {
		c.now = deadline
	}
}

// Run fires events until the queue is empty.
func (c *Clock) Run() {
	for c.Step() {
	}
}

// Advance moves the clock forward by d without firing any events scheduled
// in between. Use only when the caller knows no events are pending in the
// interval (it panics otherwise, to catch causality bugs). Negative d
// panics too: virtual time is monotone, rewinding it would silently
// reorder causality the same way scheduling in the past would.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sched: Advance(%v) would move the clock backward", d))
	}
	target := c.now + d
	if len(c.queue) > 0 && c.queue[0].At < target {
		panic(fmt.Sprintf("sched: Advance(%v) would skip event %q at %v", d, c.queue[0].Name, c.queue[0].At))
	}
	c.now = target
}

// Ticker runs a callback at a fixed period until stopped.
type Ticker struct {
	clock  *Clock
	period time.Duration
	fn     func(now time.Duration)
	ev     *Event
	stop   bool
}

// Every schedules fn to run every period, first at now+period.
func (c *Clock) Every(period time.Duration, name string, fn func(now time.Duration)) *Ticker {
	if period <= 0 {
		panic("sched: non-positive ticker period")
	}
	t := &Ticker{clock: c, period: period, fn: fn}
	var tick func(now time.Duration)
	tick = func(now time.Duration) {
		if t.stop {
			return
		}
		t.fn(now)
		if !t.stop {
			t.ev = c.At(now+period, name, tick)
		}
	}
	t.ev = c.At(c.now+period, name, tick)
	return t
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	t.stop = true
	t.clock.Cancel(t.ev)
}
