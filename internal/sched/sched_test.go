package sched

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	c := NewClock()
	var order []string
	c.At(3*time.Second, "c", func(time.Duration) { order = append(order, "c") })
	c.At(1*time.Second, "a", func(time.Duration) { order = append(order, "a") })
	c.At(2*time.Second, "b", func(time.Duration) { order = append(order, "b") })
	c.Run()
	if got := order; len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("order = %v", got)
	}
	if c.Now() != 3*time.Second {
		t.Errorf("Now = %v", c.Now())
	}
}

func TestEqualTimeFIFO(t *testing.T) {
	c := NewClock()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.At(time.Second, "e", func(time.Duration) { order = append(order, i) })
	}
	c.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events out of FIFO order: %v", order)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	c := NewClock()
	c.At(time.Second, "x", func(time.Duration) {})
	c.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past should panic")
		}
	}()
	c.At(500*time.Millisecond, "past", func(time.Duration) {})
}

func TestAfter(t *testing.T) {
	c := NewClock()
	fired := time.Duration(-1)
	c.At(time.Second, "first", func(now time.Duration) {
		c.After(2*time.Second, "second", func(now time.Duration) { fired = now })
	})
	c.Run()
	if fired != 3*time.Second {
		t.Errorf("After fired at %v, want 3s", fired)
	}
}

func TestCancel(t *testing.T) {
	c := NewClock()
	fired := false
	e := c.At(time.Second, "x", func(time.Duration) { fired = true })
	c.Cancel(e)
	c.Run()
	if fired {
		t.Error("canceled event fired")
	}
	// Double cancel and cancel-after-fire must be safe.
	c.Cancel(e)
	e2 := c.At(c.Now()+time.Second, "y", func(time.Duration) {})
	c.Run()
	c.Cancel(e2)
}

func TestRunUntil(t *testing.T) {
	c := NewClock()
	var fired []time.Duration
	for _, d := range []time.Duration{1, 2, 3, 4} {
		c.At(d*time.Second, "e", func(now time.Duration) { fired = append(fired, now) })
	}
	c.RunUntil(2500 * time.Millisecond)
	if len(fired) != 2 {
		t.Errorf("fired %d events, want 2", len(fired))
	}
	if c.Now() != 2500*time.Millisecond {
		t.Errorf("Now = %v, want 2.5s", c.Now())
	}
	if c.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", c.Pending())
	}
	c.Run()
	if len(fired) != 4 {
		t.Errorf("after Run fired %d, want 4", len(fired))
	}
}

func TestAdvance(t *testing.T) {
	c := NewClock()
	c.Advance(5 * time.Second)
	if c.Now() != 5*time.Second {
		t.Errorf("Now = %v", c.Now())
	}
	c.At(10*time.Second, "x", func(time.Duration) {})
	defer func() {
		if recover() == nil {
			t.Error("Advance skipping an event should panic")
		}
	}()
	c.Advance(20 * time.Second)
}

func TestTicker(t *testing.T) {
	c := NewClock()
	var ticks []time.Duration
	tk := c.Every(time.Second, "tick", func(now time.Duration) {
		ticks = append(ticks, now)
		if len(ticks) == 3 {
			// Stop from inside the callback.
			// (The ticker must not reschedule after Stop.)
		}
	})
	c.RunUntil(3500 * time.Millisecond)
	tk.Stop()
	c.RunUntil(10 * time.Second)
	if len(ticks) != 3 {
		t.Errorf("got %d ticks, want 3: %v", len(ticks), ticks)
	}
	for i, tm := range ticks {
		want := time.Duration(i+1) * time.Second
		if tm != want {
			t.Errorf("tick %d at %v, want %v", i, tm, want)
		}
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	c := NewClock()
	count := 0
	var tk *Ticker
	tk = c.Every(time.Second, "tick", func(now time.Duration) {
		count++
		if count == 2 {
			tk.Stop()
		}
	})
	c.RunUntil(10 * time.Second)
	if count != 2 {
		t.Errorf("ticker fired %d times after in-callback Stop, want 2", count)
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Every(0) should panic")
		}
	}()
	NewClock().Every(0, "bad", func(time.Duration) {})
}

func TestStepEmpty(t *testing.T) {
	c := NewClock()
	if c.Step() {
		t.Error("Step on empty queue returned true")
	}
}

func TestCancelAlreadyFired(t *testing.T) {
	// A handle to a fired event is stale: its heap slot may since have been
	// reused by a live event. Cancel must recognize the staleness and leave
	// the live event untouched.
	c := NewClock()
	e1 := c.At(time.Second, "old", func(time.Duration) {})
	c.Run()
	fired := false
	c.At(2*time.Second, "new", func(time.Duration) { fired = true })
	c.Cancel(e1) // stale handle, same heap slot now occupied
	if c.Pending() != 1 {
		t.Fatalf("stale Cancel evicted a live event: Pending = %d", c.Pending())
	}
	c.Run()
	if !fired {
		t.Error("live event did not fire after stale Cancel")
	}
	// A canceled handle is equally stale: double-cancel with the slot reused.
	e3 := c.At(3*time.Second, "gone", func(time.Duration) {})
	c.Cancel(e3)
	fired = false
	c.At(3*time.Second, "live", func(time.Duration) { fired = true })
	c.Cancel(e3)
	c.Run()
	if !fired {
		t.Error("live event did not fire after double Cancel of its slot's previous tenant")
	}
}

func TestTickerStopRacesPendingTick(t *testing.T) {
	// The stopper is scheduled before the ticker, so at the shared timestamp
	// it runs first (FIFO by seq) while the tick is still pending in the
	// queue. Stop must kill that pending tick, not defer it.
	c := NewClock()
	count := 0
	var tk *Ticker
	c.At(time.Second, "stopper", func(time.Duration) { tk.Stop() })
	tk = c.Every(time.Second, "tick", func(time.Duration) { count++ })
	c.Run()
	if count != 0 {
		t.Errorf("tick fired %d times after same-time Stop, want 0", count)
	}
	if c.Pending() != 0 {
		t.Errorf("Pending = %d after Stop, want 0", c.Pending())
	}
}

func TestTickerStopAfterSameTimeTick(t *testing.T) {
	// Mirror race: the stopper is scheduled after the ticker, so the tick at
	// the shared timestamp fires first and reschedules; Stop must then cancel
	// the rescheduled tick.
	c := NewClock()
	count := 0
	tk := c.Every(time.Second, "tick", func(time.Duration) { count++ })
	c.At(time.Second, "stopper", func(time.Duration) { tk.Stop() })
	c.Run()
	if count != 1 {
		t.Errorf("tick fired %d times, want exactly the pre-Stop tick", count)
	}
	if c.Pending() != 0 {
		t.Errorf("Pending = %d after Stop, want 0", c.Pending())
	}
	tk.Stop() // double Stop must be a no-op
}

func TestTickerCadenceAcrossAdvance(t *testing.T) {
	// Mixing RunUntil and Advance must not drift the cadence: ticks stay on
	// the period grid even when Advance lands exactly on a tick time.
	c := NewClock()
	var ticks []time.Duration
	c.Every(time.Second, "tick", func(now time.Duration) { ticks = append(ticks, now) })
	c.RunUntil(1500 * time.Millisecond) // tick at 1s, clock at 1.5s
	c.Advance(500 * time.Millisecond)   // lands exactly on the 2s tick: allowed
	if c.Now() != 2*time.Second {
		t.Fatalf("Now = %v after Advance onto tick time", c.Now())
	}
	c.RunUntil(4 * time.Second)
	want := []time.Duration{1 * time.Second, 2 * time.Second, 3 * time.Second, 4 * time.Second}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Errorf("tick %d at %v, want %v", i, ticks[i], want[i])
		}
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	c := NewClock()
	c.Advance(time.Second)
	defer func() {
		if recover() == nil {
			t.Error("negative Advance should panic")
		}
	}()
	c.Advance(-time.Millisecond)
}

func TestNestedScheduling(t *testing.T) {
	// Events scheduled during Run at the same time still execute.
	c := NewClock()
	depth := 0
	var recurse func(now time.Duration)
	recurse = func(now time.Duration) {
		depth++
		if depth < 5 {
			c.At(now, "same-time", recurse)
		}
	}
	c.At(time.Second, "start", recurse)
	c.Run()
	if depth != 5 {
		t.Errorf("depth = %d, want 5", depth)
	}
}
