package sched

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	c := NewClock()
	var order []string
	c.At(3*time.Second, "c", func(time.Duration) { order = append(order, "c") })
	c.At(1*time.Second, "a", func(time.Duration) { order = append(order, "a") })
	c.At(2*time.Second, "b", func(time.Duration) { order = append(order, "b") })
	c.Run()
	if got := order; len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("order = %v", got)
	}
	if c.Now() != 3*time.Second {
		t.Errorf("Now = %v", c.Now())
	}
}

func TestEqualTimeFIFO(t *testing.T) {
	c := NewClock()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.At(time.Second, "e", func(time.Duration) { order = append(order, i) })
	}
	c.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events out of FIFO order: %v", order)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	c := NewClock()
	c.At(time.Second, "x", func(time.Duration) {})
	c.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past should panic")
		}
	}()
	c.At(500*time.Millisecond, "past", func(time.Duration) {})
}

func TestAfter(t *testing.T) {
	c := NewClock()
	fired := time.Duration(-1)
	c.At(time.Second, "first", func(now time.Duration) {
		c.After(2*time.Second, "second", func(now time.Duration) { fired = now })
	})
	c.Run()
	if fired != 3*time.Second {
		t.Errorf("After fired at %v, want 3s", fired)
	}
}

func TestCancel(t *testing.T) {
	c := NewClock()
	fired := false
	e := c.At(time.Second, "x", func(time.Duration) { fired = true })
	c.Cancel(e)
	c.Run()
	if fired {
		t.Error("canceled event fired")
	}
	// Double cancel and cancel-after-fire must be safe.
	c.Cancel(e)
	e2 := c.At(c.Now()+time.Second, "y", func(time.Duration) {})
	c.Run()
	c.Cancel(e2)
}

func TestRunUntil(t *testing.T) {
	c := NewClock()
	var fired []time.Duration
	for _, d := range []time.Duration{1, 2, 3, 4} {
		c.At(d*time.Second, "e", func(now time.Duration) { fired = append(fired, now) })
	}
	c.RunUntil(2500 * time.Millisecond)
	if len(fired) != 2 {
		t.Errorf("fired %d events, want 2", len(fired))
	}
	if c.Now() != 2500*time.Millisecond {
		t.Errorf("Now = %v, want 2.5s", c.Now())
	}
	if c.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", c.Pending())
	}
	c.Run()
	if len(fired) != 4 {
		t.Errorf("after Run fired %d, want 4", len(fired))
	}
}

func TestAdvance(t *testing.T) {
	c := NewClock()
	c.Advance(5 * time.Second)
	if c.Now() != 5*time.Second {
		t.Errorf("Now = %v", c.Now())
	}
	c.At(10*time.Second, "x", func(time.Duration) {})
	defer func() {
		if recover() == nil {
			t.Error("Advance skipping an event should panic")
		}
	}()
	c.Advance(20 * time.Second)
}

func TestTicker(t *testing.T) {
	c := NewClock()
	var ticks []time.Duration
	tk := c.Every(time.Second, "tick", func(now time.Duration) {
		ticks = append(ticks, now)
		if len(ticks) == 3 {
			// Stop from inside the callback.
			// (The ticker must not reschedule after Stop.)
		}
	})
	c.RunUntil(3500 * time.Millisecond)
	tk.Stop()
	c.RunUntil(10 * time.Second)
	if len(ticks) != 3 {
		t.Errorf("got %d ticks, want 3: %v", len(ticks), ticks)
	}
	for i, tm := range ticks {
		want := time.Duration(i+1) * time.Second
		if tm != want {
			t.Errorf("tick %d at %v, want %v", i, tm, want)
		}
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	c := NewClock()
	count := 0
	var tk *Ticker
	tk = c.Every(time.Second, "tick", func(now time.Duration) {
		count++
		if count == 2 {
			tk.Stop()
		}
	})
	c.RunUntil(10 * time.Second)
	if count != 2 {
		t.Errorf("ticker fired %d times after in-callback Stop, want 2", count)
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Every(0) should panic")
		}
	}()
	NewClock().Every(0, "bad", func(time.Duration) {})
}

func TestStepEmpty(t *testing.T) {
	c := NewClock()
	if c.Step() {
		t.Error("Step on empty queue returned true")
	}
}

func TestNestedScheduling(t *testing.T) {
	// Events scheduled during Run at the same time still execute.
	c := NewClock()
	depth := 0
	var recurse func(now time.Duration)
	recurse = func(now time.Duration) {
		depth++
		if depth < 5 {
			c.At(now, "same-time", recurse)
		}
	}
	c.At(time.Second, "start", recurse)
	c.Run()
	if depth != 5 {
		t.Errorf("depth = %d, want 5", depth)
	}
}
