package lint

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestMainNoPackages: a pattern matching no Go packages is a clean exit
// with a clear message, not a panic or an error.
func TestMainNoPackages(t *testing.T) {
	var out, errOut strings.Builder
	code := Main([]string{"./testdata/empty/..."}, &out, &errOut)
	if code != ExitClean {
		t.Fatalf("exit = %d, want %d (stderr: %s)", code, ExitClean, errOut.String())
	}
	if !strings.Contains(out.String(), "no Go packages found") {
		t.Fatalf("stdout = %q, want a 'no Go packages found' message", out.String())
	}
}

// TestMainFindings: pointing the CLI at dirty testdata yields exit 1 and
// positioned diagnostics.
func TestMainFindings(t *testing.T) {
	var out, errOut strings.Builder
	code := Main([]string{"-analyzers", "globalmut", "./testdata/src/globalmut"}, &out, &errOut)
	if code != ExitFindings {
		t.Fatalf("exit = %d, want %d (stderr: %s)", code, ExitFindings, errOut.String())
	}
	if !strings.Contains(out.String(), "globalmut.go:") || !strings.Contains(out.String(), "counter") {
		t.Fatalf("stdout = %q, want positioned globalmut findings", out.String())
	}
}

// TestMainCleanTarget: a clean package exits 0 with no output.
func TestMainCleanTarget(t *testing.T) {
	var out, errOut strings.Builder
	code := Main([]string{"../simrand"}, &out, &errOut)
	if code != ExitClean {
		t.Fatalf("exit = %d, want %d\nstdout: %s\nstderr: %s", code, ExitClean, out.String(), errOut.String())
	}
	if out.String() != "" {
		t.Fatalf("stdout = %q, want empty", out.String())
	}
}

func TestMainUnknownAnalyzer(t *testing.T) {
	var out, errOut strings.Builder
	if code := Main([]string{"-analyzers", "nope", "./..."}, &out, &errOut); code != ExitError {
		t.Fatalf("exit = %d, want %d", code, ExitError)
	}
	if !strings.Contains(errOut.String(), "unknown analyzer") {
		t.Fatalf("stderr = %q, want unknown-analyzer error", errOut.String())
	}
}

func TestMainList(t *testing.T) {
	var out, errOut strings.Builder
	if code := Main([]string{"-list"}, &out, &errOut); code != ExitClean {
		t.Fatalf("exit = %d, want %d", code, ExitClean)
	}
	for _, name := range []string{"detrand", "maporder", "globalmut", "srcshare",
		"frozenmut", "errsink", "shardkey"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

// TestMainJSON: -json emits a parseable array with the documented fields,
// still exits 1 on findings, and is byte-identical across invocations (the
// CI smoke relies on that determinism).
func TestMainJSON(t *testing.T) {
	run := func() (string, int) {
		var out, errOut strings.Builder
		code := Main([]string{"-json", "-analyzers", "globalmut", "./testdata/src/globalmut"}, &out, &errOut)
		return out.String(), code
	}
	first, code := run()
	if code != ExitFindings {
		t.Fatalf("exit = %d, want %d", code, ExitFindings)
	}
	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(first), &findings); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, first)
	}
	if len(findings) == 0 {
		t.Fatal("-json output has no findings for dirty testdata")
	}
	for _, f := range findings {
		if f.File == "" || f.Line == 0 || f.Analyzer != "globalmut" || f.Message == "" {
			t.Fatalf("malformed finding: %+v", f)
		}
	}
	if second, _ := run(); second != first {
		t.Fatalf("-json output differs between invocations:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
}

// TestMainJSONClean: a clean target yields an empty array, not null.
func TestMainJSONClean(t *testing.T) {
	var out, errOut strings.Builder
	if code := Main([]string{"-json", "../simrand"}, &out, &errOut); code != ExitClean {
		t.Fatalf("exit = %d, want %d\nstderr: %s", code, ExitClean, errOut.String())
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Fatalf("stdout = %q, want %q", out.String(), "[]")
	}
}
