package lint

import (
	"strings"
	"testing"
)

// TestMainNoPackages: a pattern matching no Go packages is a clean exit
// with a clear message, not a panic or an error.
func TestMainNoPackages(t *testing.T) {
	var out, errOut strings.Builder
	code := Main([]string{"./testdata/empty/..."}, &out, &errOut)
	if code != ExitClean {
		t.Fatalf("exit = %d, want %d (stderr: %s)", code, ExitClean, errOut.String())
	}
	if !strings.Contains(out.String(), "no Go packages found") {
		t.Fatalf("stdout = %q, want a 'no Go packages found' message", out.String())
	}
}

// TestMainFindings: pointing the CLI at dirty testdata yields exit 1 and
// positioned diagnostics.
func TestMainFindings(t *testing.T) {
	var out, errOut strings.Builder
	code := Main([]string{"-analyzers", "globalmut", "./testdata/src/globalmut"}, &out, &errOut)
	if code != ExitFindings {
		t.Fatalf("exit = %d, want %d (stderr: %s)", code, ExitFindings, errOut.String())
	}
	if !strings.Contains(out.String(), "globalmut.go:") || !strings.Contains(out.String(), "counter") {
		t.Fatalf("stdout = %q, want positioned globalmut findings", out.String())
	}
}

// TestMainCleanTarget: a clean package exits 0 with no output.
func TestMainCleanTarget(t *testing.T) {
	var out, errOut strings.Builder
	code := Main([]string{"../simrand"}, &out, &errOut)
	if code != ExitClean {
		t.Fatalf("exit = %d, want %d\nstdout: %s\nstderr: %s", code, ExitClean, out.String(), errOut.String())
	}
	if out.String() != "" {
		t.Fatalf("stdout = %q, want empty", out.String())
	}
}

func TestMainUnknownAnalyzer(t *testing.T) {
	var out, errOut strings.Builder
	if code := Main([]string{"-analyzers", "nope", "./..."}, &out, &errOut); code != ExitError {
		t.Fatalf("exit = %d, want %d", code, ExitError)
	}
	if !strings.Contains(errOut.String(), "unknown analyzer") {
		t.Fatalf("stderr = %q, want unknown-analyzer error", errOut.String())
	}
}

func TestMainList(t *testing.T) {
	var out, errOut strings.Builder
	if code := Main([]string{"-list"}, &out, &errOut); code != ExitClean {
		t.Fatalf("exit = %d, want %d", code, ExitClean)
	}
	for _, name := range []string{"detrand", "maporder", "globalmut", "srcshare"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}
