package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ShardKey flags simrand Derive/DeriveInto calls inside loops whose key
// arguments are all loop-invariant — the PR 2 re-keying class. Deriving
// hashes the keys against the parent's immutable creation seed, so a loop
// body that derives with keys that never mention the loop entity produces
// the *identical* substream every iteration: every shard, testcase or CPU
// silently replays one entity's randomness, which skews populations without
// failing any determinism check (the output is still bit-identical per
// seed — just wrong).
//
// The analysis is lexical per loop: the variant set is the loop's iteration
// variables, every variable assigned per iteration (loop-carried updates to
// outer variables, state writes through fields/elements, arguments mutated
// by callees per the interprocedural summaries), closed over simple
// assignment dataflow. A Derive/DeriveInto whose receiver and keys use no
// variant variable is reported. Receivers that themselves vary per
// iteration (tc.Rng().Derive(...) in a range over testcases) make the
// derivation per-entity even with constant keys, so those are not flagged.
var ShardKey = &Analyzer{
	Name: "shardkey",
	Doc:  "flag simrand Derive/DeriveInto in loops whose keys are loop-invariant (identical substream every iteration)",
	Run:  runShardKey,
}

func runShardKey(pass *Pass) {
	info := pass.Pkg.Info
	reported := make(map[token.Pos]bool)
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := info.Defs[fd.Name].(*types.Func)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch loop := n.(type) {
				case *ast.ForStmt:
					body = loop.Body
				case *ast.RangeStmt:
					body = loop.Body
				default:
					return true
				}
				variant := pass.Mod.loopVariantObjs(n, fn, info)
				checkLoopDerives(pass, body, variant, reported, info)
				return true
			})
		}
	}
}

// checkLoopDerives reports Derive/DeriveInto calls in the loop body whose
// receiver and keys are all invariant with respect to the loop.
func checkLoopDerives(pass *Pass, body *ast.BlockStmt, variant map[types.Object]bool, reported map[token.Pos]bool, info *types.Info) {
	ast.Inspect(body, func(n ast.Node) bool {
		// Nested loops run their own check with their own variant set; a
		// derive down there that repeats per *inner* iteration is the inner
		// loop's finding, and descending with the outer set would misjudge
		// inner iteration variables as invariant.
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := info.Selections[sel]
		if s == nil || s.Kind() != types.MethodVal || !isSimrandSource(s.Recv()) {
			return true
		}
		name := sel.Sel.Name
		if name != "Derive" && name != "DeriveInto" {
			return true
		}
		if reported[call.Pos()] {
			return true
		}
		keys := call.Args
		if name == "DeriveInto" {
			if len(keys) == 0 {
				return true
			}
			keys = keys[1:] // args[0] is dst, not a key
		}
		if usesAnyObj(sel.X, variant, info) {
			return true // per-entity receiver: derivation varies anyway
		}
		for _, k := range keys {
			if usesAnyObj(k, variant, info) {
				return true
			}
		}
		reported[call.Pos()] = true
		pass.Reportf(call.Pos(),
			"%s inside this loop uses only loop-invariant keys, so every iteration derives the identical substream; key it by the loop entity (ID, index) or hoist the derivation out of the loop",
			name)
		return true
	})
}

// loopVariantObjs computes the set of variables whose value can differ
// across iterations of the loop: iteration variables, loop-carried
// assignments, mutated state, callee-mutated arguments, and the dataflow
// closure over per-iteration initializations.
func (m *Module) loopVariantObjs(loop ast.Node, fn *types.Func, info *types.Info) map[types.Object]bool {
	variant := make(map[types.Object]bool)
	var body *ast.BlockStmt

	addIdent := func(e ast.Expr) {
		if id, ok := unparen(e).(*ast.Ident); ok && id.Name != "_" {
			if obj := info.ObjectOf(id); obj != nil {
				variant[obj] = true
			}
		}
	}

	switch l := loop.(type) {
	case *ast.RangeStmt:
		body = l.Body
		addIdent(l.Key)
		if l.Value != nil {
			addIdent(l.Value)
		}
	case *ast.ForStmt:
		body = l.Body
		// Init-declared variables updated in Post ("for i := 0; ...; i++")
		// are handled below by the carried-assignment rule, since Init
		// declarations sit lexically outside Body.
		for _, st := range []ast.Stmt{l.Init, l.Post} {
			markLoopWrites(st, body, variant, info, addIdent)
		}
	}

	markLoopWrites(body, body, variant, info, addIdent)

	// Arguments mutated by callees inside the body (sort on a shared slice,
	// DeriveInto scratch state, a method advancing a held source).
	if node := m.Funcs[fn]; node != nil {
		for _, cs := range node.calls {
			if cs.call.Pos() < body.Pos() || cs.call.End() > body.End() {
				continue
			}
			m.forEachMutatedArg(cs, info, func(arg ast.Expr) {
				if v := refRootVar(arg, info); v != nil {
					variant[v] = true
				}
			})
		}
	}

	// Dataflow closure: a variable (re)initialized each iteration from a
	// variant right-hand side is variant ("key := ids[i]"); one initialized
	// from invariants is not ("salt := prefix"). Iterate to a fixed point
	// for chained assignments.
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			st, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			fromVariant := false
			for _, rhs := range st.Rhs {
				if usesAnyObj(rhs, variant, info) {
					fromVariant = true
				}
			}
			if !fromVariant {
				return true
			}
			for _, lhs := range st.Lhs {
				if id, ok := unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
					if obj := info.ObjectOf(id); obj != nil && !variant[obj] {
						variant[obj] = true
						changed = true
					}
				}
			}
			return true
		})
	}
	return variant
}

// markLoopWrites seeds the variant set from the write statements in n:
// assignments to variables declared outside the loop body are loop-carried
// (unconditionally variant — "i++", "cursor = next"), and writes through
// fields or elements mutate state observed across iterations.
func markLoopWrites(n ast.Node, body *ast.BlockStmt, variant map[types.Object]bool, info *types.Info, addIdent func(ast.Expr)) {
	if n == nil {
		return
	}
	declaredInBody := func(e ast.Expr) bool {
		id, ok := unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		obj := info.ObjectOf(id)
		return obj != nil && obj.Pos() >= body.Pos() && obj.Pos() <= body.End()
	}
	ast.Inspect(n, func(nn ast.Node) bool {
		switch st := nn.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if _, isIdent := unparen(lhs).(*ast.Ident); isIdent {
					// Bare rebind: loop-carried only if the variable
					// outlives the iteration (declared outside the body).
					// Per-iteration re-declarations are left to dataflow.
					if st.Tok != token.DEFINE && !declaredInBody(lhs) {
						addIdent(lhs)
					}
					continue
				}
				// Compound lvalue: state mutated per iteration.
				if root := rootIdent(lhs, info); root != nil {
					addIdent(root)
				}
			}
		case *ast.IncDecStmt:
			if _, isIdent := unparen(st.X).(*ast.Ident); isIdent && !declaredInBody(st.X) {
				addIdent(st.X)
			} else if root := rootIdent(st.X, info); root != nil && !isIdentExpr(st.X) {
				addIdent(root)
			}
		case *ast.RangeStmt:
			// Nested range assigning existing variables.
			if st.Tok == token.ASSIGN {
				addIdent(st.Key)
				if st.Value != nil {
					addIdent(st.Value)
				}
			}
		}
		return true
	})
}

func isIdentExpr(e ast.Expr) bool {
	_, ok := unparen(e).(*ast.Ident)
	return ok
}

// usesAnyObj reports whether the expression mentions any object in set.
func usesAnyObj(e ast.Expr, set map[types.Object]bool, info *types.Info) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil && set[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}
