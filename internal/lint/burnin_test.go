package lint

import (
	"path/filepath"
	"testing"
)

// TestBurnInWholeModule runs every analyzer over the entire module and
// requires zero findings: the determinism contract is part of tier-1
// verification, not an optional extra. A new violation anywhere in the tree
// fails this test with the offending position.
func TestBurnInWholeModule(t *testing.T) {
	abs, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	root, _, err := findModule(abs)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("burn-in loaded only %d packages; pattern expansion is broken", len(pkgs))
	}
	for _, d := range Run(pkgs, All()) {
		t.Errorf("%s", d)
	}
}
