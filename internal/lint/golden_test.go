package lint

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite analyzer golden files")

// runGolden loads testdata/src/<name>, runs a single analyzer, and compares
// the (suppression-filtered, sorted) diagnostics against the package's
// expect.golden file. Each testdata package mixes true positives with clean
// negatives, so an exact match demonstrates both detection and restraint.
// Fixtures spanning several packages (cross-package summary propagation,
// layer-scoped policies) list their package dirs in subdirs; every dir is
// loaded as a root so the module facts cover all of them, and the golden
// file lives at the fixture root.
func runGolden(t *testing.T, a *Analyzer, name string, subdirs ...string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	dirs := []string{dir}
	if len(subdirs) > 0 {
		dirs = nil
		for _, sd := range subdirs {
			dirs = append(dirs, filepath.Join(dir, filepath.FromSlash(sd)))
		}
	}
	pkgs, err := Load(".", dirs...)
	if err != nil {
		t.Fatalf("load %s: %v", dirs, err)
	}
	diags := Run(pkgs, []*Analyzer{a})
	var buf bytes.Buffer
	for _, d := range diags {
		fmt.Fprintf(&buf, "%s:%d:%d: %s: %s\n",
			filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	golden := filepath.Join(dir, "expect.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with: go test ./internal/lint -run Golden -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("%s diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", name, buf.Bytes(), want)
	}
	if len(diags) == 0 {
		t.Errorf("%s testdata produced no findings; want at least one true positive", name)
	}
}

func TestDetrandGolden(t *testing.T) { runGolden(t, Detrand, "detrand") }

// TestDetrandHTTPGolden pins the network quarantine's exact diagnostics
// across all three policy positions (quarantine itself, simulation code,
// cmd layer) in one load, golden-style.
func TestDetrandHTTPGolden(t *testing.T) {
	runGolden(t, Detrand, "httpq", "internal/serve", "internal/sim", "cmd/tool")
}

// TestDetrandNetGolden pins the raw-socket quarantine's exact diagnostics
// across all four policy positions (both sanctioned transport edges,
// simulation code, cmd layer) in one load, golden-style.
func TestDetrandNetGolden(t *testing.T) {
	runGolden(t, Detrand, "netq", "internal/engine/cluster", "internal/serve", "internal/sim", "cmd/tool")
}
func TestMapOrderGolden(t *testing.T)  { runGolden(t, MapOrder, "maporder") }
func TestGlobalMutGolden(t *testing.T) { runGolden(t, GlobalMut, "globalmut") }
func TestSrcShareGolden(t *testing.T)  { runGolden(t, SrcShare, "srcshare") }
func TestFrozenMutGolden(t *testing.T) { runGolden(t, FrozenMut, "frozenmut") }
func TestShardKeyGolden(t *testing.T)  { runGolden(t, ShardKey, "shardkey") }

// TestFrozenMutCrossPackageGolden pins the interprocedural half of
// frozenmut: the frozen type, its constructors and its accessor summaries
// live in state; every finding is in user.
func TestFrozenMutCrossPackageGolden(t *testing.T) {
	runGolden(t, FrozenMut, "frozenmutx", "state", "user")
}

// TestErrSinkGolden spans three packages: the in-scope report package with
// the findings, the helper package whose WriterError summary crosses the
// package boundary, and an out-of-scope package proving the layer scoping.
func TestErrSinkGolden(t *testing.T) {
	runGolden(t, ErrSink, "errsink",
		"internal/engine/wio", "internal/report", "internal/sim")
}
