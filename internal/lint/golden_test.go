package lint

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite analyzer golden files")

// runGolden loads testdata/src/<name>, runs a single analyzer, and compares
// the (suppression-filtered, sorted) diagnostics against the package's
// expect.golden file. Each testdata package mixes true positives with clean
// negatives, so an exact match demonstrates both detection and restraint.
func runGolden(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkgs, err := Load(".", dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	diags := Run(pkgs, []*Analyzer{a})
	var buf bytes.Buffer
	for _, d := range diags {
		fmt.Fprintf(&buf, "%s:%d:%d: %s: %s\n",
			filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	golden := filepath.Join(dir, "expect.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with: go test ./internal/lint -run Golden -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("%s diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", name, buf.Bytes(), want)
	}
	if len(diags) == 0 {
		t.Errorf("%s testdata produced no findings; want at least one true positive", name)
	}
}

func TestDetrandGolden(t *testing.T)   { runGolden(t, Detrand, "detrand") }
func TestMapOrderGolden(t *testing.T)  { runGolden(t, MapOrder, "maporder") }
func TestGlobalMutGolden(t *testing.T) { runGolden(t, GlobalMut, "globalmut") }
func TestSrcShareGolden(t *testing.T)  { runGolden(t, SrcShare, "srcshare") }
