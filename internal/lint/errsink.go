package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrSink flags discarded error results on output write paths — the PR 3
// silent-truncation class, where a full disk or closed pipe loses report
// bytes without any run failing. A write-path call is a Write/Close/Flush/
// Sync-shaped method, an fmt.Fprint*/io.Copy/os.WriteFile call, or a module
// function whose interprocedural summary says its error result can carry a
// failed write (WriterError). Discarding means calling as a bare statement
// or blanking every error result with "_".
//
// The analyzer is scoped to the layers that produce run artifacts — the
// cmd/ CLIs, internal/report and the internal/engine subtree — so
// simulation-layer code that legitimately ignores, say, a strings.Builder
// is never in scope. Exemptions inside the scope: writes to the process
// streams os.Stdout/os.Stderr and to io.Discard, infallible in-memory
// writers (bytes.Buffer, strings.Builder, hash.Hash), and "defer x.Close()"
// — the sanctioned backstop idiom, which must stay paired with a checked
// Close on the success path (the pattern cliflags and sdcbench use).
var ErrSink = &Analyzer{
	Name: "errsink",
	Doc:  "flag discarded error results from io write/close/flush paths in report-producing layers",
	Run:  runErrSink,
}

// errsinkLayers are the import-path layers in scope for errsink, matched by
// path segment the same way the wallclock quarantine is, so the policy also
// binds inside the analyzer's testdata packages.
var errsinkLayers = []string{"cmd", "internal/report", "internal/engine"}

func errsinkInScope(path string) bool {
	for _, layer := range errsinkLayers {
		if path == layer || strings.HasSuffix(path, "/"+layer) {
			return true
		}
		if strings.Contains(path+"/", "/"+layer+"/") {
			return true
		}
	}
	return false
}

// writeMethodNames are method names treated as io write paths when they
// return an error: the io.Writer/Closer/Flusher method set plus the
// WriterTo/ReaderFrom fast paths bufio and friends dispatch to.
var writeMethodNames = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"WriteTo":     true,
	"ReadFrom":    true,
	"Close":       true,
	"Flush":       true,
	"Sync":        true,
}

// isWritePathCall reports whether the call's error result can carry a failed
// io write/close/flush. Shared with the interprocedural WriterError summary,
// which is how the fact crosses function and package boundaries.
func (m *Module) isWritePathCall(call *ast.CallExpr, info *types.Info) bool {
	if !callReturnsError(call, info) {
		return false
	}
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil && sel.Kind() == types.MethodVal {
			fn := sel.Obj().(*types.Func)
			if writeMethodNames[fn.Name()] && !infallibleWriterType(sel.Recv()) {
				return true
			}
			if sum := m.summaryOf(fn); sum != nil && sum.WriterError {
				return true
			}
			return false
		}
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return false
		}
		if fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "fmt":
				if strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0 &&
					!terminalStream(call.Args[0], info) && !infallibleWriterExpr(call.Args[0], info) {
					return true
				}
			case "io":
				switch fn.Name() {
				case "Copy", "CopyN", "CopyBuffer", "WriteString":
					return true
				}
			case "os":
				if fn.Name() == "WriteFile" {
					return true
				}
			}
		}
		if sum := m.summaryOf(fn); sum != nil && sum.WriterError {
			return true
		}
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			if sum := m.summaryOf(fn); sum != nil && sum.WriterError {
				return true
			}
		}
	}
	return false
}

// callReturnsError reports whether the call has at least one error result.
func callReturnsError(call *ast.CallExpr, info *types.Info) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

// infallibleWriterType reports whether a receiver type's write methods never
// fail: the in-memory writers bytes.Buffer and strings.Builder, and
// hash.Hash implementations (identified structurally by their Sum +
// BlockSize method pair, since hash.Hash is an interface).
func infallibleWriterType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() + "." + obj.Name() {
			case "bytes.Buffer", "strings.Builder":
				return true
			}
		}
	}
	recv := t
	if _, isIface := t.Underlying().(*types.Interface); !isIface {
		recv = types.NewPointer(t) // pointer method set; *interface has none
	}
	hasMethod := func(name string) bool {
		obj, _, _ := types.LookupFieldOrMethod(recv, true, nil, name)
		_, ok := obj.(*types.Func)
		return ok
	}
	return hasMethod("Sum") && hasMethod("BlockSize")
}

func infallibleWriterExpr(e ast.Expr, info *types.Info) bool {
	return infallibleWriterType(info.TypeOf(e))
}

// terminalStream reports whether the expression is one of the process
// streams (os.Stdout, os.Stderr) or io.Discard: CLI chatter to the terminal
// is not a run artifact, and enforcing checks there would only breed
// blanket ignores.
func terminalStream(e ast.Expr, info *types.Info) bool {
	sel, ok := unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "os.Stdout", "os.Stderr", "io.Discard":
		return true
	}
	return false
}

func runErrSink(pass *Pass) {
	if !errsinkInScope(pass.Pkg.ImportPath) {
		return
	}
	m := pass.Mod
	info := pass.Pkg.Info
	report := func(call *ast.CallExpr) {
		pass.Reportf(call.Pos(),
			"error result of %s discarded; a failed write or close here silently truncates output — handle the error (or annotate //sdclint:ignore errsink with a reason)",
			types.ExprString(call.Fun))
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok && m.isWritePathCall(call, info) {
					report(call)
				}
			case *ast.DeferStmt:
				// "defer f.Close()" is the sanctioned backstop for the
				// early-error paths — legitimate exactly because the
				// success path must also call a *checked* Close. Any other
				// deferred write-path discard (Flush, Sync, a summary-
				// carrying helper) still loses bytes.
				if sel, ok := unparen(st.Call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
					return true
				}
				if m.isWritePathCall(st.Call, info) {
					report(st.Call)
				}
			case *ast.AssignStmt:
				if len(st.Rhs) != 1 {
					return true
				}
				call, ok := unparen(st.Rhs[0]).(*ast.CallExpr)
				if !ok || !m.isWritePathCall(call, info) {
					return true
				}
				if errorResultsAllBlank(st, call, info) {
					report(call)
				}
			}
			return true
		})
	}
}

// errorResultsAllBlank reports whether every error result of the call is
// assigned to the blank identifier ("_ = w.Flush()", "n, _ := w.Write(b)").
func errorResultsAllBlank(st *ast.AssignStmt, call *ast.CallExpr, info *types.Info) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	isBlank := func(i int) bool {
		if i >= len(st.Lhs) {
			return false
		}
		id, ok := st.Lhs[i].(*ast.Ident)
		return ok && id.Name == "_"
	}
	if tuple, ok := t.(*types.Tuple); ok {
		sawError := false
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				sawError = true
				if !isBlank(i) {
					return false
				}
			}
		}
		return sawError
	}
	return isErrorType(t) && isBlank(0)
}
