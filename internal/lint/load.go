package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// ErrNoPackages is returned by Load when the patterns match no Go packages.
// The CLI treats it as a clean (exit 0) outcome rather than a failure.
var ErrNoPackages = errors.New("no Go packages found")

// Package is one parsed and type-checked package of the module under
// analysis. Test files (_test.go) are not loaded: the determinism contract
// governs simulation code, and tests legitimately exercise concurrency
// patterns (e.g. racing a shared Source on purpose) that the analyzers
// forbid elsewhere.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Load enumerates, parses and type-checks the packages matching patterns.
// Relative patterns resolve against baseDir, which must lie inside a Go
// module (a go.mod is found by walking up from it). A pattern is either a
// directory ("./internal/simrand") or a recursive form ("./..."); recursive
// walks skip testdata, vendor and hidden directories, while a direct
// directory pattern may name anything — including a testdata package, which
// is how the analyzer tests load their fixtures.
func Load(baseDir string, patterns ...string) ([]*Package, error) {
	absBase, err := filepath.Abs(baseDir)
	if err != nil {
		return nil, err
	}
	modRoot, modPath, err := findModule(absBase)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(absBase, patterns)
	if err != nil {
		return nil, err
	}
	if len(dirs) == 0 {
		return nil, ErrNoPackages
	}

	l := &loader{
		fset:    token.NewFileSet(),
		modRoot: modRoot,
		modPath: modPath,
		byDir:   make(map[string]*Package),
		loading: make(map[string]bool),
	}
	l.std = importer.ForCompiler(l.fset, "gc", nil)

	var pkgs []*Package
	for _, dir := range dirs {
		p, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// expandPatterns resolves CLI-style package patterns to package directories
// (directories containing at least one non-test .go file).
func expandPatterns(baseDir string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." {
			pat, recursive = ".", true
		} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			pat, recursive = rest, true
			if pat == "" {
				pat = "/"
			}
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(baseDir, dir)
		}
		fi, err := os.Stat(dir)
		if err != nil {
			return nil, fmt.Errorf("lint: pattern %q: %w", pat, err)
		}
		if !fi.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q is not a directory", pat)
		}
		if !recursive {
			if has, err := hasGoFiles(dir); err != nil {
				return nil, err
			} else if has {
				add(dir)
			}
			continue
		}
		err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != dir && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if has, err := hasGoFiles(path); err != nil {
				return err
			} else if has {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains a loadable Go file.
func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && loadableGoFile(e.Name()) {
			return true, nil
		}
	}
	return false, nil
}

func loadableGoFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// loader type-checks module packages on demand, serving as the
// types.Importer for intra-module imports and delegating the standard
// library to the toolchain's export-data importer.
type loader struct {
	fset    *token.FileSet
	modRoot string
	modPath string
	std     types.Importer
	byDir   map[string]*Package
	loading map[string]bool
}

func (l *loader) loadDir(dir string) (*Package, error) {
	if p, ok := l.byDir[dir]; ok {
		return p, nil
	}
	if l.loading[dir] {
		return nil, fmt.Errorf("lint: import cycle through %s", dir)
	}
	l.loading[dir] = true
	defer delete(l.loading, dir)

	importPath, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !loadableGoFile(e.Name()) {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(l.fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if buildIgnored(f) {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no loadable Go files in %s", dir)
	}
	name := files[0].Name.Name
	for _, f := range files[1:] {
		if f.Name.Name != name {
			return nil, fmt.Errorf("lint: %s: found packages %s and %s", dir, name, f.Name.Name)
		}
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []string
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	tpkg, _ := conf.Check(importPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		const max = 10
		if len(typeErrs) > max {
			typeErrs = append(typeErrs[:max], fmt.Sprintf("... and %d more", len(typeErrs)-max))
		}
		return nil, fmt.Errorf("lint: type errors in %s:\n\t%s", importPath, strings.Join(typeErrs, "\n\t"))
	}

	p := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.byDir[dir] = p
	return p, nil
}

// importPathFor maps a directory inside the module to its import path.
func (l *loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.modRoot, dir)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.modPath)
	}
	if rel == "." {
		return l.modPath, nil
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// Import implements types.Importer: module-local paths are type-checked
// from source; everything else (the standard library) comes from the
// toolchain importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if rel, ok := modRelative(l.modPath, path); ok {
		p, err := l.loadDir(filepath.Join(l.modRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// modRelative returns the module-relative part of an import path, if the
// path belongs to the module.
func modRelative(modPath, importPath string) (string, bool) {
	if importPath == modPath {
		return ".", true
	}
	if rest, ok := strings.CutPrefix(importPath, modPath+"/"); ok {
		return rest, true
	}
	return "", false
}

// buildIgnored reports whether the file carries a "//go:build ignore"
// constraint (the only build-tag form this repo uses, on generator-style
// helper files, if any).
func buildIgnored(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() > f.Package {
			break
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if text == "//go:build ignore" || strings.HasPrefix(text, "// +build ignore") {
				return true
			}
		}
	}
	return false
}
