package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SrcShare enforces the Source-per-goroutine rule documented on
// simrand.Source: a Source is not safe for concurrent use, so a goroutine
// must own a Derived substream rather than share its creator's stream. The
// analyzer flags a simrand.Source captured by the closure of a go
// statement — the sharing pattern that becomes a data race (and a
// nondeterministic draw order even if externally synchronized) the moment
// the ROADMAP's sharded/concurrent execution lands. Passing a Source into
// the goroutine as an argument is the sanctioned ownership handoff and is
// not flagged.
var SrcShare = &Analyzer{
	Name: "srcshare",
	Doc:  "flag *simrand.Source captured by go-statement closures; each goroutine must Derive its own substream",
	Run:  runSrcShare,
}

func runSrcShare(pass *Pass) {
	info := pass.Pkg.Info
	seen := make(map[token.Pos]bool)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				switch x := m.(type) {
				case *ast.Ident:
					obj, ok := info.Uses[x].(*types.Var)
					if !ok || obj.IsField() || !isSimrandSource(obj.Type()) {
						return true
					}
					if capturedBy(obj, lit) && !seen[x.Pos()] {
						seen[x.Pos()] = true
						pass.Reportf(x.Pos(), "goroutine closure captures %s (%s), sharing it with its creator; a Source is not concurrency-safe — give the goroutine its own Derived substream", obj.Name(), obj.Type())
					}
				case *ast.SelectorExpr:
					// A Source reached through a captured struct (w.src).
					tv, ok := info.Types[x]
					if !ok || !isSimrandSource(tv.Type) {
						return true
					}
					root := rootIdent(x, info)
					if root == nil {
						return true
					}
					obj, ok := info.Uses[root].(*types.Var)
					if !ok || obj.IsField() {
						return true
					}
					if capturedBy(obj, lit) && !seen[x.Pos()] {
						seen[x.Pos()] = true
						pass.Reportf(x.Pos(), "goroutine closure reaches %s through captured %s, sharing the Source with its creator; give the goroutine its own Derived substream", types.ExprString(x), root.Name)
					}
				}
				return true
			})
			return true
		})
	}
}

// capturedBy reports whether obj is declared outside lit, i.e. the closure
// captures it (package-level Sources count: they are shared with everyone).
func capturedBy(obj *types.Var, lit *ast.FuncLit) bool {
	return obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()
}
